file(REMOVE_RECURSE
  "CMakeFiles/fig6_offloading.dir/bench_util.cpp.o"
  "CMakeFiles/fig6_offloading.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig6_offloading.dir/fig6_offloading.cpp.o"
  "CMakeFiles/fig6_offloading.dir/fig6_offloading.cpp.o.d"
  "fig6_offloading"
  "fig6_offloading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_offloading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
