# Empty dependencies file for fig6_offloading.
# This may be replaced when dependencies are built.
