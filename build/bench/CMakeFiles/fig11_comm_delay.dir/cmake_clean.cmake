file(REMOVE_RECURSE
  "CMakeFiles/fig11_comm_delay.dir/bench_util.cpp.o"
  "CMakeFiles/fig11_comm_delay.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig11_comm_delay.dir/fig11_comm_delay.cpp.o"
  "CMakeFiles/fig11_comm_delay.dir/fig11_comm_delay.cpp.o.d"
  "fig11_comm_delay"
  "fig11_comm_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_comm_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
