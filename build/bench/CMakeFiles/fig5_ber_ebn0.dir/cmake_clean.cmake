file(REMOVE_RECURSE
  "CMakeFiles/fig5_ber_ebn0.dir/bench_util.cpp.o"
  "CMakeFiles/fig5_ber_ebn0.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig5_ber_ebn0.dir/fig5_ber_ebn0.cpp.o"
  "CMakeFiles/fig5_ber_ebn0.dir/fig5_ber_ebn0.cpp.o.d"
  "fig5_ber_ebn0"
  "fig5_ber_ebn0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ber_ebn0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
