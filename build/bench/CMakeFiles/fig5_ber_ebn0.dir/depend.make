# Empty dependencies file for fig5_ber_ebn0.
# This may be replaced when dependencies are built.
