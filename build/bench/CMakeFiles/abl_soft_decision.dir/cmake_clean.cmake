file(REMOVE_RECURSE
  "CMakeFiles/abl_soft_decision.dir/abl_soft_decision.cpp.o"
  "CMakeFiles/abl_soft_decision.dir/abl_soft_decision.cpp.o.d"
  "CMakeFiles/abl_soft_decision.dir/bench_util.cpp.o"
  "CMakeFiles/abl_soft_decision.dir/bench_util.cpp.o.d"
  "abl_soft_decision"
  "abl_soft_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_soft_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
