# Empty dependencies file for abl_soft_decision.
# This may be replaced when dependencies are built.
