file(REMOVE_RECURSE
  "CMakeFiles/table1_field_test.dir/bench_util.cpp.o"
  "CMakeFiles/table1_field_test.dir/bench_util.cpp.o.d"
  "CMakeFiles/table1_field_test.dir/table1_field_test.cpp.o"
  "CMakeFiles/table1_field_test.dir/table1_field_test.cpp.o.d"
  "table1_field_test"
  "table1_field_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
