# Empty compiler generated dependencies file for table1_field_test.
# This may be replaced when dependencies are built.
