# Empty compiler generated dependencies file for fig10_compute_delay.
# This may be replaced when dependencies are built.
