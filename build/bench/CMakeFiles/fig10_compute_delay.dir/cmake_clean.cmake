file(REMOVE_RECURSE
  "CMakeFiles/fig10_compute_delay.dir/bench_util.cpp.o"
  "CMakeFiles/fig10_compute_delay.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig10_compute_delay.dir/fig10_compute_delay.cpp.o"
  "CMakeFiles/fig10_compute_delay.dir/fig10_compute_delay.cpp.o.d"
  "fig10_compute_delay"
  "fig10_compute_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_compute_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
