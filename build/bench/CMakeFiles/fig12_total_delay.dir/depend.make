# Empty dependencies file for fig12_total_delay.
# This may be replaced when dependencies are built.
