file(REMOVE_RECURSE
  "CMakeFiles/fig12_total_delay.dir/bench_util.cpp.o"
  "CMakeFiles/fig12_total_delay.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig12_total_delay.dir/fig12_total_delay.cpp.o"
  "CMakeFiles/fig12_total_delay.dir/fig12_total_delay.cpp.o.d"
  "fig12_total_delay"
  "fig12_total_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_total_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
