file(REMOVE_RECURSE
  "CMakeFiles/table2_sensor_filter.dir/bench_util.cpp.o"
  "CMakeFiles/table2_sensor_filter.dir/bench_util.cpp.o.d"
  "CMakeFiles/table2_sensor_filter.dir/table2_sensor_filter.cpp.o"
  "CMakeFiles/table2_sensor_filter.dir/table2_sensor_filter.cpp.o.d"
  "table2_sensor_filter"
  "table2_sensor_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sensor_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
