# Empty dependencies file for table2_sensor_filter.
# This may be replaced when dependencies are built.
