# Empty dependencies file for security_eavesdropper.
# This may be replaced when dependencies are built.
