file(REMOVE_RECURSE
  "CMakeFiles/security_eavesdropper.dir/bench_util.cpp.o"
  "CMakeFiles/security_eavesdropper.dir/bench_util.cpp.o.d"
  "CMakeFiles/security_eavesdropper.dir/security_eavesdropper.cpp.o"
  "CMakeFiles/security_eavesdropper.dir/security_eavesdropper.cpp.o.d"
  "security_eavesdropper"
  "security_eavesdropper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_eavesdropper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
