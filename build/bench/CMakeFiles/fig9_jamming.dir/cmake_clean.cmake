file(REMOVE_RECURSE
  "CMakeFiles/fig9_jamming.dir/bench_util.cpp.o"
  "CMakeFiles/fig9_jamming.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig9_jamming.dir/fig9_jamming.cpp.o"
  "CMakeFiles/fig9_jamming.dir/fig9_jamming.cpp.o.d"
  "fig9_jamming"
  "fig9_jamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_jamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
