# Empty compiler generated dependencies file for fig9_jamming.
# This may be replaced when dependencies are built.
