# Empty compiler generated dependencies file for filters_savings.
# This may be replaced when dependencies are built.
