file(REMOVE_RECURSE
  "CMakeFiles/filters_savings.dir/bench_util.cpp.o"
  "CMakeFiles/filters_savings.dir/bench_util.cpp.o.d"
  "CMakeFiles/filters_savings.dir/filters_savings.cpp.o"
  "CMakeFiles/filters_savings.dir/filters_savings.cpp.o.d"
  "filters_savings"
  "filters_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filters_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
