# Empty dependencies file for fig7_ber_distance.
# This may be replaced when dependencies are built.
