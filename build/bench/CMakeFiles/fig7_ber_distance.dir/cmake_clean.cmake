file(REMOVE_RECURSE
  "CMakeFiles/fig7_ber_distance.dir/bench_util.cpp.o"
  "CMakeFiles/fig7_ber_distance.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig7_ber_distance.dir/fig7_ber_distance.cpp.o"
  "CMakeFiles/fig7_ber_distance.dir/fig7_ber_distance.cpp.o.d"
  "fig7_ber_distance"
  "fig7_ber_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ber_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
