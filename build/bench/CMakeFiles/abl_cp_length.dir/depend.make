# Empty dependencies file for abl_cp_length.
# This may be replaced when dependencies are built.
