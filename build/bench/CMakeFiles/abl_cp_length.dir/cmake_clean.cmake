file(REMOVE_RECURSE
  "CMakeFiles/abl_cp_length.dir/abl_cp_length.cpp.o"
  "CMakeFiles/abl_cp_length.dir/abl_cp_length.cpp.o.d"
  "CMakeFiles/abl_cp_length.dir/bench_util.cpp.o"
  "CMakeFiles/abl_cp_length.dir/bench_util.cpp.o.d"
  "abl_cp_length"
  "abl_cp_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cp_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
