# Empty dependencies file for abl_equalizer.
# This may be replaced when dependencies are built.
