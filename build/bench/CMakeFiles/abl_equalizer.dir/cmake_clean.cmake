file(REMOVE_RECURSE
  "CMakeFiles/abl_equalizer.dir/abl_equalizer.cpp.o"
  "CMakeFiles/abl_equalizer.dir/abl_equalizer.cpp.o.d"
  "CMakeFiles/abl_equalizer.dir/bench_util.cpp.o"
  "CMakeFiles/abl_equalizer.dir/bench_util.cpp.o.d"
  "abl_equalizer"
  "abl_equalizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_equalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
