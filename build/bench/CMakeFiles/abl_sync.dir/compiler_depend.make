# Empty compiler generated dependencies file for abl_sync.
# This may be replaced when dependencies are built.
