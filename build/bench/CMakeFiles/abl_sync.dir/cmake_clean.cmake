file(REMOVE_RECURSE
  "CMakeFiles/abl_sync.dir/abl_sync.cpp.o"
  "CMakeFiles/abl_sync.dir/abl_sync.cpp.o.d"
  "CMakeFiles/abl_sync.dir/bench_util.cpp.o"
  "CMakeFiles/abl_sync.dir/bench_util.cpp.o.d"
  "abl_sync"
  "abl_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
