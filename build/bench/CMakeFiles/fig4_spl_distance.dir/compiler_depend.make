# Empty compiler generated dependencies file for fig4_spl_distance.
# This may be replaced when dependencies are built.
