file(REMOVE_RECURSE
  "CMakeFiles/fig4_spl_distance.dir/bench_util.cpp.o"
  "CMakeFiles/fig4_spl_distance.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig4_spl_distance.dir/fig4_spl_distance.cpp.o"
  "CMakeFiles/fig4_spl_distance.dir/fig4_spl_distance.cpp.o.d"
  "fig4_spl_distance"
  "fig4_spl_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_spl_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
