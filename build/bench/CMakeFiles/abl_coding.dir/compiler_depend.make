# Empty compiler generated dependencies file for abl_coding.
# This may be replaced when dependencies are built.
