file(REMOVE_RECURSE
  "CMakeFiles/abl_coding.dir/abl_coding.cpp.o"
  "CMakeFiles/abl_coding.dir/abl_coding.cpp.o.d"
  "CMakeFiles/abl_coding.dir/bench_util.cpp.o"
  "CMakeFiles/abl_coding.dir/bench_util.cpp.o.d"
  "abl_coding"
  "abl_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
