file(REMOVE_RECURSE
  "CMakeFiles/modem_sweep_test.dir/modem_sweep_test.cpp.o"
  "CMakeFiles/modem_sweep_test.dir/modem_sweep_test.cpp.o.d"
  "modem_sweep_test"
  "modem_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modem_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
