# Empty dependencies file for modem_sweep_test.
# This may be replaced when dependencies are built.
