file(REMOVE_RECURSE
  "CMakeFiles/datagram_test.dir/datagram_test.cpp.o"
  "CMakeFiles/datagram_test.dir/datagram_test.cpp.o.d"
  "datagram_test"
  "datagram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
