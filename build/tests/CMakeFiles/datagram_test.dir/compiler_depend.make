# Empty compiler generated dependencies file for datagram_test.
# This may be replaced when dependencies are built.
