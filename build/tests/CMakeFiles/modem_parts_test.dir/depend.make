# Empty dependencies file for modem_parts_test.
# This may be replaced when dependencies are built.
