file(REMOVE_RECURSE
  "CMakeFiles/modem_parts_test.dir/modem_parts_test.cpp.o"
  "CMakeFiles/modem_parts_test.dir/modem_parts_test.cpp.o.d"
  "modem_parts_test"
  "modem_parts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modem_parts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
