# Empty compiler generated dependencies file for subchannel_test.
# This may be replaced when dependencies are built.
