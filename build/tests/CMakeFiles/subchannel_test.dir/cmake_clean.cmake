file(REMOVE_RECURSE
  "CMakeFiles/subchannel_test.dir/subchannel_test.cpp.o"
  "CMakeFiles/subchannel_test.dir/subchannel_test.cpp.o.d"
  "subchannel_test"
  "subchannel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subchannel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
