file(REMOVE_RECURSE
  "CMakeFiles/modem_loopback_test.dir/modem_loopback_test.cpp.o"
  "CMakeFiles/modem_loopback_test.dir/modem_loopback_test.cpp.o.d"
  "modem_loopback_test"
  "modem_loopback_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modem_loopback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
