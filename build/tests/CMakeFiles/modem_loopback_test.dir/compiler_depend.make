# Empty compiler generated dependencies file for modem_loopback_test.
# This may be replaced when dependencies are built.
