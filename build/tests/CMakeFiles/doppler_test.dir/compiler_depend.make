# Empty compiler generated dependencies file for doppler_test.
# This may be replaced when dependencies are built.
