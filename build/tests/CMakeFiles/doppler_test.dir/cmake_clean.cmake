file(REMOVE_RECURSE
  "CMakeFiles/doppler_test.dir/doppler_test.cpp.o"
  "CMakeFiles/doppler_test.dir/doppler_test.cpp.o.d"
  "doppler_test"
  "doppler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
