file(REMOVE_RECURSE
  "CMakeFiles/wearlock_modem.dir/modem/adaptive.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/adaptive.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/coding.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/coding.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/constellation.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/constellation.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/datagram.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/datagram.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/demodulator.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/demodulator.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/detector.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/detector.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/equalizer.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/equalizer.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/frame.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/frame.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/modem.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/modem.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/modulator.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/modulator.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/nlos.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/nlos.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/snr.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/snr.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/streaming.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/streaming.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/subchannel.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/subchannel.cpp.o.d"
  "CMakeFiles/wearlock_modem.dir/modem/sync.cpp.o"
  "CMakeFiles/wearlock_modem.dir/modem/sync.cpp.o.d"
  "libwearlock_modem.a"
  "libwearlock_modem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlock_modem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
