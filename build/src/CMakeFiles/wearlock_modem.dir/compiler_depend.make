# Empty compiler generated dependencies file for wearlock_modem.
# This may be replaced when dependencies are built.
