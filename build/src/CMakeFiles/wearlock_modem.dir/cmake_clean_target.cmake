file(REMOVE_RECURSE
  "libwearlock_modem.a"
)
