
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modem/adaptive.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/adaptive.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/adaptive.cpp.o.d"
  "/root/repo/src/modem/coding.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/coding.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/coding.cpp.o.d"
  "/root/repo/src/modem/constellation.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/constellation.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/constellation.cpp.o.d"
  "/root/repo/src/modem/datagram.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/datagram.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/datagram.cpp.o.d"
  "/root/repo/src/modem/demodulator.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/demodulator.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/demodulator.cpp.o.d"
  "/root/repo/src/modem/detector.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/detector.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/detector.cpp.o.d"
  "/root/repo/src/modem/equalizer.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/equalizer.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/equalizer.cpp.o.d"
  "/root/repo/src/modem/frame.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/frame.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/frame.cpp.o.d"
  "/root/repo/src/modem/modem.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/modem.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/modem.cpp.o.d"
  "/root/repo/src/modem/modulator.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/modulator.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/modulator.cpp.o.d"
  "/root/repo/src/modem/nlos.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/nlos.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/nlos.cpp.o.d"
  "/root/repo/src/modem/snr.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/snr.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/snr.cpp.o.d"
  "/root/repo/src/modem/streaming.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/streaming.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/streaming.cpp.o.d"
  "/root/repo/src/modem/subchannel.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/subchannel.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/subchannel.cpp.o.d"
  "/root/repo/src/modem/sync.cpp" "src/CMakeFiles/wearlock_modem.dir/modem/sync.cpp.o" "gcc" "src/CMakeFiles/wearlock_modem.dir/modem/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wearlock_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wearlock_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wearlock_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
