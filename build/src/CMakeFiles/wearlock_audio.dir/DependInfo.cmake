
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/medium.cpp" "src/CMakeFiles/wearlock_audio.dir/audio/medium.cpp.o" "gcc" "src/CMakeFiles/wearlock_audio.dir/audio/medium.cpp.o.d"
  "/root/repo/src/audio/microphone.cpp" "src/CMakeFiles/wearlock_audio.dir/audio/microphone.cpp.o" "gcc" "src/CMakeFiles/wearlock_audio.dir/audio/microphone.cpp.o.d"
  "/root/repo/src/audio/noise.cpp" "src/CMakeFiles/wearlock_audio.dir/audio/noise.cpp.o" "gcc" "src/CMakeFiles/wearlock_audio.dir/audio/noise.cpp.o.d"
  "/root/repo/src/audio/propagation.cpp" "src/CMakeFiles/wearlock_audio.dir/audio/propagation.cpp.o" "gcc" "src/CMakeFiles/wearlock_audio.dir/audio/propagation.cpp.o.d"
  "/root/repo/src/audio/scene.cpp" "src/CMakeFiles/wearlock_audio.dir/audio/scene.cpp.o" "gcc" "src/CMakeFiles/wearlock_audio.dir/audio/scene.cpp.o.d"
  "/root/repo/src/audio/signal.cpp" "src/CMakeFiles/wearlock_audio.dir/audio/signal.cpp.o" "gcc" "src/CMakeFiles/wearlock_audio.dir/audio/signal.cpp.o.d"
  "/root/repo/src/audio/speaker.cpp" "src/CMakeFiles/wearlock_audio.dir/audio/speaker.cpp.o" "gcc" "src/CMakeFiles/wearlock_audio.dir/audio/speaker.cpp.o.d"
  "/root/repo/src/audio/wav.cpp" "src/CMakeFiles/wearlock_audio.dir/audio/wav.cpp.o" "gcc" "src/CMakeFiles/wearlock_audio.dir/audio/wav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wearlock_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wearlock_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
