file(REMOVE_RECURSE
  "CMakeFiles/wearlock_audio.dir/audio/medium.cpp.o"
  "CMakeFiles/wearlock_audio.dir/audio/medium.cpp.o.d"
  "CMakeFiles/wearlock_audio.dir/audio/microphone.cpp.o"
  "CMakeFiles/wearlock_audio.dir/audio/microphone.cpp.o.d"
  "CMakeFiles/wearlock_audio.dir/audio/noise.cpp.o"
  "CMakeFiles/wearlock_audio.dir/audio/noise.cpp.o.d"
  "CMakeFiles/wearlock_audio.dir/audio/propagation.cpp.o"
  "CMakeFiles/wearlock_audio.dir/audio/propagation.cpp.o.d"
  "CMakeFiles/wearlock_audio.dir/audio/scene.cpp.o"
  "CMakeFiles/wearlock_audio.dir/audio/scene.cpp.o.d"
  "CMakeFiles/wearlock_audio.dir/audio/signal.cpp.o"
  "CMakeFiles/wearlock_audio.dir/audio/signal.cpp.o.d"
  "CMakeFiles/wearlock_audio.dir/audio/speaker.cpp.o"
  "CMakeFiles/wearlock_audio.dir/audio/speaker.cpp.o.d"
  "CMakeFiles/wearlock_audio.dir/audio/wav.cpp.o"
  "CMakeFiles/wearlock_audio.dir/audio/wav.cpp.o.d"
  "libwearlock_audio.a"
  "libwearlock_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlock_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
