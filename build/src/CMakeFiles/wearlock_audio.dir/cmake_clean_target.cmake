file(REMOVE_RECURSE
  "libwearlock_audio.a"
)
