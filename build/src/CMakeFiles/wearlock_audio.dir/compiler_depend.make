# Empty compiler generated dependencies file for wearlock_audio.
# This may be replaced when dependencies are built.
