# Empty compiler generated dependencies file for wearlock_dsp.
# This may be replaced when dependencies are built.
