file(REMOVE_RECURSE
  "libwearlock_dsp.a"
)
