file(REMOVE_RECURSE
  "CMakeFiles/wearlock_dsp.dir/dsp/chirp.cpp.o"
  "CMakeFiles/wearlock_dsp.dir/dsp/chirp.cpp.o.d"
  "CMakeFiles/wearlock_dsp.dir/dsp/correlate.cpp.o"
  "CMakeFiles/wearlock_dsp.dir/dsp/correlate.cpp.o.d"
  "CMakeFiles/wearlock_dsp.dir/dsp/fft.cpp.o"
  "CMakeFiles/wearlock_dsp.dir/dsp/fft.cpp.o.d"
  "CMakeFiles/wearlock_dsp.dir/dsp/filter.cpp.o"
  "CMakeFiles/wearlock_dsp.dir/dsp/filter.cpp.o.d"
  "CMakeFiles/wearlock_dsp.dir/dsp/hilbert.cpp.o"
  "CMakeFiles/wearlock_dsp.dir/dsp/hilbert.cpp.o.d"
  "CMakeFiles/wearlock_dsp.dir/dsp/resample.cpp.o"
  "CMakeFiles/wearlock_dsp.dir/dsp/resample.cpp.o.d"
  "CMakeFiles/wearlock_dsp.dir/dsp/spectrogram.cpp.o"
  "CMakeFiles/wearlock_dsp.dir/dsp/spectrogram.cpp.o.d"
  "CMakeFiles/wearlock_dsp.dir/dsp/spl.cpp.o"
  "CMakeFiles/wearlock_dsp.dir/dsp/spl.cpp.o.d"
  "CMakeFiles/wearlock_dsp.dir/dsp/stats.cpp.o"
  "CMakeFiles/wearlock_dsp.dir/dsp/stats.cpp.o.d"
  "CMakeFiles/wearlock_dsp.dir/dsp/window.cpp.o"
  "CMakeFiles/wearlock_dsp.dir/dsp/window.cpp.o.d"
  "libwearlock_dsp.a"
  "libwearlock_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlock_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
