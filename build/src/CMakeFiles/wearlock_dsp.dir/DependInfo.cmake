
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/chirp.cpp" "src/CMakeFiles/wearlock_dsp.dir/dsp/chirp.cpp.o" "gcc" "src/CMakeFiles/wearlock_dsp.dir/dsp/chirp.cpp.o.d"
  "/root/repo/src/dsp/correlate.cpp" "src/CMakeFiles/wearlock_dsp.dir/dsp/correlate.cpp.o" "gcc" "src/CMakeFiles/wearlock_dsp.dir/dsp/correlate.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/wearlock_dsp.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/wearlock_dsp.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/filter.cpp" "src/CMakeFiles/wearlock_dsp.dir/dsp/filter.cpp.o" "gcc" "src/CMakeFiles/wearlock_dsp.dir/dsp/filter.cpp.o.d"
  "/root/repo/src/dsp/hilbert.cpp" "src/CMakeFiles/wearlock_dsp.dir/dsp/hilbert.cpp.o" "gcc" "src/CMakeFiles/wearlock_dsp.dir/dsp/hilbert.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/CMakeFiles/wearlock_dsp.dir/dsp/resample.cpp.o" "gcc" "src/CMakeFiles/wearlock_dsp.dir/dsp/resample.cpp.o.d"
  "/root/repo/src/dsp/spectrogram.cpp" "src/CMakeFiles/wearlock_dsp.dir/dsp/spectrogram.cpp.o" "gcc" "src/CMakeFiles/wearlock_dsp.dir/dsp/spectrogram.cpp.o.d"
  "/root/repo/src/dsp/spl.cpp" "src/CMakeFiles/wearlock_dsp.dir/dsp/spl.cpp.o" "gcc" "src/CMakeFiles/wearlock_dsp.dir/dsp/spl.cpp.o.d"
  "/root/repo/src/dsp/stats.cpp" "src/CMakeFiles/wearlock_dsp.dir/dsp/stats.cpp.o" "gcc" "src/CMakeFiles/wearlock_dsp.dir/dsp/stats.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/CMakeFiles/wearlock_dsp.dir/dsp/window.cpp.o" "gcc" "src/CMakeFiles/wearlock_dsp.dir/dsp/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
