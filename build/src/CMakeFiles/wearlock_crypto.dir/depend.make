# Empty dependencies file for wearlock_crypto.
# This may be replaced when dependencies are built.
