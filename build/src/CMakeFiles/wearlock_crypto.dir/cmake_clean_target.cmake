file(REMOVE_RECURSE
  "libwearlock_crypto.a"
)
