file(REMOVE_RECURSE
  "CMakeFiles/wearlock_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/wearlock_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/wearlock_crypto.dir/crypto/hotp.cpp.o"
  "CMakeFiles/wearlock_crypto.dir/crypto/hotp.cpp.o.d"
  "CMakeFiles/wearlock_crypto.dir/crypto/sha1.cpp.o"
  "CMakeFiles/wearlock_crypto.dir/crypto/sha1.cpp.o.d"
  "libwearlock_crypto.a"
  "libwearlock_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlock_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
