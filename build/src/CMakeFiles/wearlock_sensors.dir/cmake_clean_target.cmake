file(REMOVE_RECURSE
  "libwearlock_sensors.a"
)
