file(REMOVE_RECURSE
  "CMakeFiles/wearlock_sensors.dir/sensors/dtw.cpp.o"
  "CMakeFiles/wearlock_sensors.dir/sensors/dtw.cpp.o.d"
  "CMakeFiles/wearlock_sensors.dir/sensors/filter.cpp.o"
  "CMakeFiles/wearlock_sensors.dir/sensors/filter.cpp.o.d"
  "CMakeFiles/wearlock_sensors.dir/sensors/motion_sim.cpp.o"
  "CMakeFiles/wearlock_sensors.dir/sensors/motion_sim.cpp.o.d"
  "CMakeFiles/wearlock_sensors.dir/sensors/trace.cpp.o"
  "CMakeFiles/wearlock_sensors.dir/sensors/trace.cpp.o.d"
  "libwearlock_sensors.a"
  "libwearlock_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlock_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
