# Empty compiler generated dependencies file for wearlock_sensors.
# This may be replaced when dependencies are built.
