
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/dtw.cpp" "src/CMakeFiles/wearlock_sensors.dir/sensors/dtw.cpp.o" "gcc" "src/CMakeFiles/wearlock_sensors.dir/sensors/dtw.cpp.o.d"
  "/root/repo/src/sensors/filter.cpp" "src/CMakeFiles/wearlock_sensors.dir/sensors/filter.cpp.o" "gcc" "src/CMakeFiles/wearlock_sensors.dir/sensors/filter.cpp.o.d"
  "/root/repo/src/sensors/motion_sim.cpp" "src/CMakeFiles/wearlock_sensors.dir/sensors/motion_sim.cpp.o" "gcc" "src/CMakeFiles/wearlock_sensors.dir/sensors/motion_sim.cpp.o.d"
  "/root/repo/src/sensors/trace.cpp" "src/CMakeFiles/wearlock_sensors.dir/sensors/trace.cpp.o" "gcc" "src/CMakeFiles/wearlock_sensors.dir/sensors/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wearlock_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wearlock_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
