file(REMOVE_RECURSE
  "libwearlock_sim.a"
)
