file(REMOVE_RECURSE
  "CMakeFiles/wearlock_sim.dir/sim/clock.cpp.o"
  "CMakeFiles/wearlock_sim.dir/sim/clock.cpp.o.d"
  "CMakeFiles/wearlock_sim.dir/sim/device.cpp.o"
  "CMakeFiles/wearlock_sim.dir/sim/device.cpp.o.d"
  "CMakeFiles/wearlock_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/wearlock_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/wearlock_sim.dir/sim/wireless.cpp.o"
  "CMakeFiles/wearlock_sim.dir/sim/wireless.cpp.o.d"
  "libwearlock_sim.a"
  "libwearlock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
