# Empty dependencies file for wearlock_sim.
# This may be replaced when dependencies are built.
