
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/clock.cpp" "src/CMakeFiles/wearlock_sim.dir/sim/clock.cpp.o" "gcc" "src/CMakeFiles/wearlock_sim.dir/sim/clock.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/CMakeFiles/wearlock_sim.dir/sim/device.cpp.o" "gcc" "src/CMakeFiles/wearlock_sim.dir/sim/device.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/wearlock_sim.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/wearlock_sim.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/wireless.cpp" "src/CMakeFiles/wearlock_sim.dir/sim/wireless.cpp.o" "gcc" "src/CMakeFiles/wearlock_sim.dir/sim/wireless.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
