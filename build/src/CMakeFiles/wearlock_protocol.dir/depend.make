# Empty dependencies file for wearlock_protocol.
# This may be replaced when dependencies are built.
