file(REMOVE_RECURSE
  "libwearlock_protocol.a"
)
