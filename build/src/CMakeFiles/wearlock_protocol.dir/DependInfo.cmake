
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/ambient.cpp" "src/CMakeFiles/wearlock_protocol.dir/protocol/ambient.cpp.o" "gcc" "src/CMakeFiles/wearlock_protocol.dir/protocol/ambient.cpp.o.d"
  "/root/repo/src/protocol/attacks.cpp" "src/CMakeFiles/wearlock_protocol.dir/protocol/attacks.cpp.o" "gcc" "src/CMakeFiles/wearlock_protocol.dir/protocol/attacks.cpp.o.d"
  "/root/repo/src/protocol/distance_bounding.cpp" "src/CMakeFiles/wearlock_protocol.dir/protocol/distance_bounding.cpp.o" "gcc" "src/CMakeFiles/wearlock_protocol.dir/protocol/distance_bounding.cpp.o.d"
  "/root/repo/src/protocol/fingerprint.cpp" "src/CMakeFiles/wearlock_protocol.dir/protocol/fingerprint.cpp.o" "gcc" "src/CMakeFiles/wearlock_protocol.dir/protocol/fingerprint.cpp.o.d"
  "/root/repo/src/protocol/keyguard.cpp" "src/CMakeFiles/wearlock_protocol.dir/protocol/keyguard.cpp.o" "gcc" "src/CMakeFiles/wearlock_protocol.dir/protocol/keyguard.cpp.o.d"
  "/root/repo/src/protocol/offload.cpp" "src/CMakeFiles/wearlock_protocol.dir/protocol/offload.cpp.o" "gcc" "src/CMakeFiles/wearlock_protocol.dir/protocol/offload.cpp.o.d"
  "/root/repo/src/protocol/otp_service.cpp" "src/CMakeFiles/wearlock_protocol.dir/protocol/otp_service.cpp.o" "gcc" "src/CMakeFiles/wearlock_protocol.dir/protocol/otp_service.cpp.o.d"
  "/root/repo/src/protocol/phone_controller.cpp" "src/CMakeFiles/wearlock_protocol.dir/protocol/phone_controller.cpp.o" "gcc" "src/CMakeFiles/wearlock_protocol.dir/protocol/phone_controller.cpp.o.d"
  "/root/repo/src/protocol/session.cpp" "src/CMakeFiles/wearlock_protocol.dir/protocol/session.cpp.o" "gcc" "src/CMakeFiles/wearlock_protocol.dir/protocol/session.cpp.o.d"
  "/root/repo/src/protocol/watch_controller.cpp" "src/CMakeFiles/wearlock_protocol.dir/protocol/watch_controller.cpp.o" "gcc" "src/CMakeFiles/wearlock_protocol.dir/protocol/watch_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wearlock_modem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wearlock_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wearlock_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wearlock_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wearlock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wearlock_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
