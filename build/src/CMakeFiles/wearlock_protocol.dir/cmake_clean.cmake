file(REMOVE_RECURSE
  "CMakeFiles/wearlock_protocol.dir/protocol/ambient.cpp.o"
  "CMakeFiles/wearlock_protocol.dir/protocol/ambient.cpp.o.d"
  "CMakeFiles/wearlock_protocol.dir/protocol/attacks.cpp.o"
  "CMakeFiles/wearlock_protocol.dir/protocol/attacks.cpp.o.d"
  "CMakeFiles/wearlock_protocol.dir/protocol/distance_bounding.cpp.o"
  "CMakeFiles/wearlock_protocol.dir/protocol/distance_bounding.cpp.o.d"
  "CMakeFiles/wearlock_protocol.dir/protocol/fingerprint.cpp.o"
  "CMakeFiles/wearlock_protocol.dir/protocol/fingerprint.cpp.o.d"
  "CMakeFiles/wearlock_protocol.dir/protocol/keyguard.cpp.o"
  "CMakeFiles/wearlock_protocol.dir/protocol/keyguard.cpp.o.d"
  "CMakeFiles/wearlock_protocol.dir/protocol/offload.cpp.o"
  "CMakeFiles/wearlock_protocol.dir/protocol/offload.cpp.o.d"
  "CMakeFiles/wearlock_protocol.dir/protocol/otp_service.cpp.o"
  "CMakeFiles/wearlock_protocol.dir/protocol/otp_service.cpp.o.d"
  "CMakeFiles/wearlock_protocol.dir/protocol/phone_controller.cpp.o"
  "CMakeFiles/wearlock_protocol.dir/protocol/phone_controller.cpp.o.d"
  "CMakeFiles/wearlock_protocol.dir/protocol/session.cpp.o"
  "CMakeFiles/wearlock_protocol.dir/protocol/session.cpp.o.d"
  "CMakeFiles/wearlock_protocol.dir/protocol/watch_controller.cpp.o"
  "CMakeFiles/wearlock_protocol.dir/protocol/watch_controller.cpp.o.d"
  "libwearlock_protocol.a"
  "libwearlock_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlock_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
