file(REMOVE_RECURSE
  "CMakeFiles/wearlock_modem_cli.dir/wearlock_modem_cli.cpp.o"
  "CMakeFiles/wearlock_modem_cli.dir/wearlock_modem_cli.cpp.o.d"
  "wearlock_modem_cli"
  "wearlock_modem_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlock_modem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
