# Empty dependencies file for wearlock_modem_cli.
# This may be replaced when dependencies are built.
