# Empty dependencies file for wearlock_unlock_cli.
# This may be replaced when dependencies are built.
