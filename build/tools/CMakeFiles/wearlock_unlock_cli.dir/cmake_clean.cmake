file(REMOVE_RECURSE
  "CMakeFiles/wearlock_unlock_cli.dir/wearlock_unlock_cli.cpp.o"
  "CMakeFiles/wearlock_unlock_cli.dir/wearlock_unlock_cli.cpp.o.d"
  "wearlock_unlock_cli"
  "wearlock_unlock_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlock_unlock_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
