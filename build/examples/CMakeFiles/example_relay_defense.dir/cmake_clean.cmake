file(REMOVE_RECURSE
  "CMakeFiles/example_relay_defense.dir/relay_defense.cpp.o"
  "CMakeFiles/example_relay_defense.dir/relay_defense.cpp.o.d"
  "example_relay_defense"
  "example_relay_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_relay_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
