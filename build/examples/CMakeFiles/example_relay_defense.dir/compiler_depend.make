# Empty compiler generated dependencies file for example_relay_defense.
# This may be replaced when dependencies are built.
