file(REMOVE_RECURSE
  "CMakeFiles/example_unlock_session.dir/unlock_session.cpp.o"
  "CMakeFiles/example_unlock_session.dir/unlock_session.cpp.o.d"
  "example_unlock_session"
  "example_unlock_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_unlock_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
