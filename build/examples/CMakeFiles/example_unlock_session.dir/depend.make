# Empty dependencies file for example_unlock_session.
# This may be replaced when dependencies are built.
