# Empty dependencies file for example_noisy_cafe.
# This may be replaced when dependencies are built.
