file(REMOVE_RECURSE
  "CMakeFiles/example_noisy_cafe.dir/noisy_cafe.cpp.o"
  "CMakeFiles/example_noisy_cafe.dir/noisy_cafe.cpp.o.d"
  "example_noisy_cafe"
  "example_noisy_cafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_noisy_cafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
