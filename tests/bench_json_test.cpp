// The bench sweep engine's --json report: flag parsing, schema fields,
// and well-formedness (tests/json_check.h is the same validator the
// telemetry-export tests trust). tools/ci.sh collects these reports
// into BENCH_dsp_core.json, so the shape checked here is load-bearing.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.h"
#include "json_check.h"

namespace wearlock::bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(BenchJsonTest, ParseBenchArgsAcceptsJsonFlag) {
  const char* argv_c[] = {"bench",  "--quick",       "--threads", "2",
                          "--json", "/tmp/out.json", "--seed",    "7"};
  std::vector<std::string> storage(argv_c, argv_c + 8);
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  const BenchOptions options =
      ParseBenchArgs(static_cast<int>(argv.size()), argv.data(), 99);
  EXPECT_TRUE(options.quick);
  EXPECT_EQ(options.threads, 2u);
  EXPECT_EQ(options.base_seed, 7u);
  EXPECT_EQ(options.json_path, "/tmp/out.json");
}

TEST(BenchJsonTest, JsonPathDefaultsToEmpty) {
  const char* argv_c[] = {"bench"};
  std::vector<std::string> storage(argv_c, argv_c + 1);
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  const BenchOptions options = ParseBenchArgs(1, argv.data(), 99);
  EXPECT_TRUE(options.json_path.empty());
  EXPECT_EQ(options.base_seed, 99u);
}

TEST(BenchJsonTest, WriteJsonReportIsWellFormedAndCarriesTheSchema) {
  BenchOptions options;
  options.threads = 2;
  options.quick = true;
  options.base_seed = 42;
  SweepRunner runner(options);
  const auto results = runner.Run(
      4, [](sim::TaskContext& ctx) { return static_cast<int>(ctx.index); });
  ASSERT_EQ(results.size(), 4u);

  const std::string path =
      ::testing::TempDir() + "bench_json_test_report.json";
  ASSERT_TRUE(runner.WriteJsonReport("bench_json_test", path));
  const std::string text = ReadFile(path);
  std::remove(path.c_str());

  wearlock::testing::JsonChecker checker;
  EXPECT_TRUE(checker.Check(text)) << checker.error() << "\n" << text;
  EXPECT_NE(text.find("\"bench\":\"bench_json_test\""), std::string::npos);
  EXPECT_NE(text.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(text.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(text.find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(text.find("\"per_point_ms\":["), std::string::npos);
  // Provenance stamp: git SHA (or "unknown"), host width, env, quick.
  EXPECT_NE(text.find("\"provenance\":{"), std::string::npos);
  EXPECT_NE(text.find("\"git_sha\":\""), std::string::npos);
  EXPECT_NE(text.find("\"hardware_concurrency\":"), std::string::npos);
  EXPECT_NE(text.find("\"wearlock_threads_env\":"), std::string::npos);
  EXPECT_NE(text.find("\"quick\":true"), std::string::npos);
}

TEST(BenchJsonTest, WriteJsonReportFailsOnUnwritablePath) {
  SweepRunner runner(BenchOptions{});
  EXPECT_FALSE(
      runner.WriteJsonReport("x", "/nonexistent-dir/bench_json_x.json"));
}

}  // namespace
}  // namespace wearlock::bench
