// Constellation map/demap properties across every modulation scheme.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "modem/constellation.h"
#include "sim/rng.h"

namespace wearlock::modem {
namespace {

class PerModulation : public ::testing::TestWithParam<Modulation> {};

TEST_P(PerModulation, UnitAverageEnergy) {
  const Constellation& c = Constellation::Get(GetParam());
  double energy = 0.0;
  for (const auto& p : c.points()) energy += std::norm(p);
  EXPECT_NEAR(energy / static_cast<double>(c.size()), 1.0, 1e-9);
}

TEST_P(PerModulation, MapDemapIsIdentity) {
  const Constellation& c = Constellation::Get(GetParam());
  for (unsigned s = 0; s < c.size(); ++s) {
    EXPECT_EQ(c.Demap(c.Map(s)), s) << ToString(GetParam()) << " sym " << s;
  }
}

TEST_P(PerModulation, PointsAreDistinct) {
  const Constellation& c = Constellation::Get(GetParam());
  for (unsigned i = 0; i < c.size(); ++i) {
    for (unsigned j = i + 1; j < c.size(); ++j) {
      EXPECT_GT(std::abs(c.Map(i) - c.Map(j)), 1e-6)
          << ToString(GetParam()) << " " << i << "," << j;
    }
  }
}

TEST_P(PerModulation, DemapSurvivesSmallPerturbation) {
  const Constellation& c = Constellation::Get(GetParam());
  // Perturb by a third of the minimum half-distance: decisions hold.
  double min_d = 1e9;
  for (unsigned i = 0; i < c.size(); ++i) {
    for (unsigned j = i + 1; j < c.size(); ++j) {
      min_d = std::min(min_d, std::abs(c.Map(i) - c.Map(j)));
    }
  }
  const double eps = min_d / 6.0;
  for (unsigned s = 0; s < c.size(); ++s) {
    EXPECT_EQ(c.Demap(c.Map(s) + Complex(eps, -eps * 0.5)), s);
  }
}

TEST_P(PerModulation, BitsRoundTripThroughSymbols) {
  sim::Rng rng(77);
  std::vector<std::uint8_t> bits(5 * BitsPerSymbol(GetParam()));
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto symbols = MapBits(GetParam(), bits);
  const auto back = DemapSymbols(GetParam(), symbols);
  ASSERT_GE(back.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) EXPECT_EQ(back[i], bits[i]) << i;
}

TEST_P(PerModulation, TheoreticalBerMonotoneDecreasing) {
  double prev = 1.0;
  for (double ebn0 = -5.0; ebn0 <= 30.0; ebn0 += 1.0) {
    const double ber = TheoreticalBer(GetParam(), ebn0);
    EXPECT_LE(ber, prev + 1e-12);
    prev = ber;
  }
  EXPECT_LT(TheoreticalBer(GetParam(), 30.0), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(All, PerModulation,
                         ::testing::ValuesIn(AllModulations()),
                         [](const auto& info) { return ToString(info.param); });

TEST(Constellation, BitsPerSymbolTable) {
  EXPECT_EQ(BitsPerSymbol(Modulation::kBask), 1u);
  EXPECT_EQ(BitsPerSymbol(Modulation::kBpsk), 1u);
  EXPECT_EQ(BitsPerSymbol(Modulation::kQask), 2u);
  EXPECT_EQ(BitsPerSymbol(Modulation::kQpsk), 2u);
  EXPECT_EQ(BitsPerSymbol(Modulation::k8Psk), 3u);
  EXPECT_EQ(BitsPerSymbol(Modulation::k16Qam), 4u);
  EXPECT_EQ(ModulationOrder(Modulation::k16Qam), 16u);
}

TEST(Constellation, GrayCodingAdjacent8PskPointsDifferInOneBit) {
  const Constellation& c = Constellation::Get(Modulation::k8Psk);
  // Sort points by angle; adjacent labels must have Hamming distance 1.
  std::vector<std::pair<double, unsigned>> by_angle;
  for (unsigned s = 0; s < 8; ++s) {
    by_angle.emplace_back(std::arg(c.Map(s)), s);
  }
  std::sort(by_angle.begin(), by_angle.end());
  for (std::size_t i = 0; i < 8; ++i) {
    const unsigned a = by_angle[i].second;
    const unsigned b = by_angle[(i + 1) % 8].second;
    EXPECT_EQ(__builtin_popcount(a ^ b), 1) << a << " vs " << b;
  }
}

TEST(Constellation, GrayCodingQask) {
  const Constellation& c = Constellation::Get(Modulation::kQask);
  std::vector<std::pair<double, unsigned>> by_amp;
  for (unsigned s = 0; s < 4; ++s) by_amp.emplace_back(c.Map(s).real(), s);
  std::sort(by_amp.begin(), by_amp.end());
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    EXPECT_EQ(__builtin_popcount(by_amp[i].second ^ by_amp[i + 1].second), 1);
  }
}

TEST(Constellation, MapBitsPadsTail) {
  // 3 bits into QPSK (2 bits/symbol) -> 2 symbols, last padded with 0.
  const auto symbols = MapBits(Modulation::kQpsk, {1, 0, 1});
  EXPECT_EQ(symbols.size(), 2u);
  const auto bits = DemapSymbols(Modulation::kQpsk, symbols);
  EXPECT_EQ(bits.size(), 4u);
  EXPECT_EQ(bits[0], 1);
  EXPECT_EQ(bits[1], 0);
  EXPECT_EQ(bits[2], 1);
  EXPECT_EQ(bits[3], 0);
}

TEST(Constellation, ErrorsApi) {
  EXPECT_THROW(Constellation::Get(Modulation::kQpsk).Map(4), std::out_of_range);
  EXPECT_THROW(CountBitErrors({1}, {1, 0}), std::invalid_argument);
  EXPECT_EQ(CountBitErrors({1, 0, 1}, {1, 1, 1}), 1u);
  EXPECT_NEAR(BitErrorRate({1, 0, 1, 0}, {1, 1, 1, 1}), 0.5, 1e-12);
  EXPECT_EQ(BitErrorRate({}, {}), 0.0);
}

TEST(Constellation, BerOrderingAtModerateSnr) {
  // Theoretical ranking at 10 dB: denser constellations are worse.
  const double e = 10.0;
  EXPECT_LT(TheoreticalBer(Modulation::kBpsk, e),
            TheoreticalBer(Modulation::k8Psk, e));
  EXPECT_LT(TheoreticalBer(Modulation::k8Psk, e),
            TheoreticalBer(Modulation::k16Qam, e) + 0.05);
  EXPECT_LT(TheoreticalBer(Modulation::kQpsk, e),
            TheoreticalBer(Modulation::kQask, e));
}

}  // namespace
}  // namespace wearlock::modem
