// Crypto substrate tests against published vectors: FIPS 180-1 SHA-1,
// RFC 2202 HMAC-SHA1, RFC 4226 HOTP (Appendix D).
#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/hotp.h"
#include "crypto/sha1.h"

namespace wearlock::crypto {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// ------------------------------------------------------------------ SHA1
TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(ToHex(Sha1::Hash(std::string("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(ToHex(Sha1::Hash(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(ToHex(Sha1::Hash(std::string(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(ToHex(h.Finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Sha1 h;
  h.Update(std::string("hello "));
  h.Update(std::string("world"));
  EXPECT_EQ(ToHex(h.Finalize()), ToHex(Sha1::Hash(std::string("hello world"))));
}

TEST(Sha1, UpdateAfterFinalizeThrows) {
  Sha1 h;
  h.Update(std::string("x"));
  h.Finalize();
  EXPECT_THROW(h.Update(std::string("y")), std::logic_error);
  EXPECT_THROW(h.Finalize(), std::logic_error);
  h.Reset();
  h.Update(std::string("abc"));
  EXPECT_EQ(ToHex(h.Finalize()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

// ------------------------------------------------------------------ HMAC
TEST(Hmac, Rfc2202Vector1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(ToHex(HmacSha1(key, Bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(Hmac, Rfc2202Vector2) {
  EXPECT_EQ(ToHex(HmacSha1(Bytes("Jefe"), Bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hmac, Rfc2202Vector3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(ToHex(HmacSha1(key, data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(Hmac, Rfc2202Vector4) {
  // 25-byte key: exercises the key < block-size padding path with a
  // length that is neither the digest size nor the block size.
  std::vector<std::uint8_t> key(25);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i + 1);
  }
  const std::vector<std::uint8_t> data(50, 0xcd);
  EXPECT_EQ(ToHex(HmacSha1(key, data)),
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da");
}

TEST(Hmac, Rfc2202Vector5) {
  const std::vector<std::uint8_t> key(20, 0x0c);
  EXPECT_EQ(ToHex(HmacSha1(key, Bytes("Test With Truncation"))),
            "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04");
}

TEST(Hmac, Rfc2202LongKey) {
  const std::vector<std::uint8_t> key(80, 0xaa);
  EXPECT_EQ(ToHex(HmacSha1(
                key, Bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(Hmac, Rfc2202Vector7) {
  // Larger-than-block-size key AND larger-than-block-size data: the
  // hash-key-first path combined with multi-block message processing.
  const std::vector<std::uint8_t> key(80, 0xaa);
  EXPECT_EQ(ToHex(HmacSha1(key,
                           Bytes("Test Using Larger Than Block-Size Key and "
                                 "Larger Than One Block-Size Data"))),
            "e8e99d0f45237d786d6bbaa7965c7808bbff1a91");
}

TEST(Hmac, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

// ------------------------------------------------------------------ HOTP
// RFC 4226 Appendix D: key "12345678901234567890".
class HotpRfcVectors : public ::testing::TestWithParam<
                           std::tuple<std::uint64_t, std::uint32_t, std::string>> {
 protected:
  const std::vector<std::uint8_t> key_ = Bytes("12345678901234567890");
};

TEST_P(HotpRfcVectors, TruncatedValueAndCode) {
  const auto [counter, truncated, code] = GetParam();
  EXPECT_EQ(HotpValue(key_, counter), truncated);
  EXPECT_EQ(HotpCode(key_, counter, 6), code);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc4226AppendixD, HotpRfcVectors,
    ::testing::Values(
        std::make_tuple(0ull, 0x4c93cf18u, "755224"),
        std::make_tuple(1ull, 0x41397eeau, "287082"),
        std::make_tuple(2ull, 0x82fef30u, "359152"),
        std::make_tuple(3ull, 0x66ef7655u, "969429"),
        std::make_tuple(4ull, 0x61c5938au, "338314"),
        std::make_tuple(5ull, 0x33c083d4u, "254676"),
        std::make_tuple(6ull, 0x7256c032u, "287922"),
        std::make_tuple(7ull, 0x4e5b397u, "162583"),
        std::make_tuple(8ull, 0x2823443fu, "399871"),
        std::make_tuple(9ull, 0x2679dc69u, "520489")));

// RFC 4226 Appendix D also publishes the full intermediate HMAC-SHA-1
// digests, not just the truncated values - pinning them localizes a
// failure to the HMAC stage vs. the dynamic-truncation stage.
class HotpIntermediateDigests
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::string>> {
};

TEST_P(HotpIntermediateDigests, HmacStageMatchesAppendixD) {
  const auto [counter, hmac_hex] = GetParam();
  const auto key = Bytes("12345678901234567890");
  // The HOTP message: the counter as an 8-byte big-endian block.
  std::vector<std::uint8_t> msg(8);
  for (int i = 0; i < 8; ++i) {
    msg[7 - i] = static_cast<std::uint8_t>((counter >> (8 * i)) & 0xff);
  }
  const auto digest = HmacSha1(key, msg);
  EXPECT_EQ(ToHex(digest), hmac_hex);

  // Dynamic truncation (RFC 4226 §5.3) of that digest reproduces
  // HotpValue: the two stages compose into the published codes.
  const std::size_t offset = digest[19] & 0x0f;
  const std::uint32_t truncated =
      (static_cast<std::uint32_t>(digest[offset] & 0x7f) << 24) |
      (static_cast<std::uint32_t>(digest[offset + 1]) << 16) |
      (static_cast<std::uint32_t>(digest[offset + 2]) << 8) |
      static_cast<std::uint32_t>(digest[offset + 3]);
  EXPECT_EQ(truncated, HotpValue(key, counter));
}

INSTANTIATE_TEST_SUITE_P(
    Rfc4226AppendixD, HotpIntermediateDigests,
    ::testing::Values(
        std::make_tuple(0ull, "cc93cf18508d94934c64b65d8ba7667fb7cde4b0"),
        std::make_tuple(1ull, "75a48a19d4cbe100644e8ac1397eea747a2d33ab"),
        std::make_tuple(2ull, "0bacb7fa082fef30782211938bc1c5e70416ff44"),
        std::make_tuple(3ull, "66c28227d03a2d5529262ff016a1e6ef76557ece"),
        std::make_tuple(4ull, "a904c900a64b35909874b33e61c5938a8e15ed1c"),
        std::make_tuple(5ull, "a37e783d7b7233c083d4f62926c7a25f238d0316"),
        std::make_tuple(6ull, "bc9cd28561042c83f219324d3c607256c03272ae"),
        std::make_tuple(7ull, "a4fb960c0bc06e1eabb804e5b397cdc4b45596fa"),
        std::make_tuple(8ull, "1b3c89f65e6c9e883012052823443f048b4332db"),
        std::make_tuple(9ull, "1637409809a679dc698207310c8c7fc07290d9e5")));

TEST(Hotp, CodeDigitsValidation) {
  const auto key = Bytes("12345678901234567890");
  EXPECT_THROW(HotpCode(key, 0, 0), std::invalid_argument);
  EXPECT_THROW(HotpCode(key, 0, 10), std::invalid_argument);
  EXPECT_EQ(HotpCode(key, 0, 9).size(), 9u);
}

TEST(Hotp, GeneratorValidatorRoundTrip) {
  const auto key = Bytes("12345678901234567890");
  HotpGenerator gen(key, 0);
  HotpValidator val(key, 0, /*window=*/0);
  for (int i = 0; i < 5; ++i) {
    const std::uint32_t token = gen.Next();
    const auto matched = val.Validate(token);
    ASSERT_TRUE(matched.has_value()) << i;
    EXPECT_EQ(*matched, static_cast<std::uint64_t>(i));
  }
}

TEST(Hotp, ValidatorWindowResynchronizes) {
  const auto key = Bytes("12345678901234567890");
  HotpGenerator gen(key, 0);
  HotpValidator val(key, 0, /*window=*/3);
  gen.Next();  // token 0 lost in transit
  gen.Next();  // token 1 lost in transit
  const std::uint32_t token2 = gen.Next();
  const auto matched = val.Validate(token2);
  ASSERT_TRUE(matched.has_value());
  EXPECT_EQ(*matched, 2ull);
  EXPECT_EQ(val.expected_counter(), 3ull);
}

TEST(Hotp, ReplayRejected) {
  const auto key = Bytes("12345678901234567890");
  HotpGenerator gen(key, 0);
  HotpValidator val(key, 0, /*window=*/3);
  const std::uint32_t token = gen.Next();
  ASSERT_TRUE(val.Validate(token).has_value());
  // The same token again: counter has advanced, replay must fail.
  EXPECT_FALSE(val.Validate(token).has_value());
}

TEST(Hotp, OutsideWindowRejected) {
  const auto key = Bytes("12345678901234567890");
  HotpValidator val(key, 0, /*window=*/2);
  // Token for counter 5 with window [0, 2]: rejected.
  EXPECT_FALSE(val.Validate(HotpValue(key, 5)).has_value());
}

TEST(Hotp, TruncationOutputIs31Bits) {
  const auto key = Bytes("12345678901234567890");
  for (std::uint64_t c = 0; c < 50; ++c) {
    EXPECT_EQ(HotpValue(key, c) >> 31, 0u) << c;
  }
}

}  // namespace
}  // namespace wearlock::crypto
