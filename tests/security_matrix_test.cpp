// Security conformance matrix: the adversarial-scenario tentpole gate.
//
// Runs every channel-level attack agent (attack_agents.h) against the
// paper's three delay configurations with the full defense suite armed
// (timing window + acoustic distance bounding + HOTP freshness) and
// pins the security contract (docs/security.md):
//
//   * every attack x config cell terminates with a *defined, pinned*
//     outcome - the defense that answers each attack is named;
//   * ZERO false unlocks anywhere: no cell hands the attacker an
//     unlock or a live credential (token *recovery* at short range is
//     expected physics - audible sound carries - and is pinned too:
//     what protects the scheme is one-time semantics, not secrecy);
//   * the same seed replays every cell bit-identically, on 1, 2 and 8
//     executor threads;
//   * each defense layer demonstrably earns its keep: the relay that
//     wins with distance bounding off is caught with it on, replays
//     fall to whichever of the three layers they don't evade;
//   * attack traces serialize as well-formed JSONL and match the
//     committed goldens (timestamps normalized, same rationale as
//     fault_matrix_test.cpp).
//
// Regenerate goldens after an intentional attack-model change with
//   WEARLOCK_REGEN_ATTACK_GOLDEN=1 ./tests/security_matrix_test
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json_check.h"
#include "obs/rollup.h"
#include "protocol/attack_agents.h"
#include "protocol/distance_bounding.h"
#include "protocol/session.h"
#include "sim/adversary.h"
#include "sim/executor.h"

namespace wearlock {
namespace {

using protocol::AttackReport;
using protocol::RunAttackScenario;
using protocol::ScenarioConfig;
using protocol::UnlockOutcome;
using sim::AttackKind;
using sim::AttackSpec;

// --- The matrix ------------------------------------------------------

const char* const kAttackSpecs[] = {
    "eavesdrop@2.0:gain=20",     // directional mic past the secure range
    "replay@0.5:delay=400",      // tape recorder, sluggish handling
    "relay@3.0:delay=3:gain=40", // live wormhole to an absent watch
    "probe@1.0:level=1.5",       // SonarSnoop co-channel chirp train
    "overshadow@1.5:level=6",    // AIC frame injection, dominant power
};

constexpr int kNumSpecs = 5;
constexpr int kNumConfigs = 3;
constexpr int kNumCells = kNumSpecs * kNumConfigs;

ScenarioConfig ConfigByIndex(int which) {
  switch (which) {
    case 0: return ScenarioConfig::Config1();
    case 1: return ScenarioConfig::Config2();
    default: return ScenarioConfig::Config3();
  }
}

/// One matrix cell: attack x config, full defense suite armed, seed
/// pinned per cell.
ScenarioConfig CellScenario(int cell) {
  const int config = cell % kNumConfigs;
  ScenarioConfig c = ConfigByIndex(config);
  c.scene.environment = audio::Environment::kQuietRoom;
  c.scene.distance_m = 0.4;
  c.phone.distance_bounding.enable = true;
  c.seed = 9000 + static_cast<std::uint64_t>(cell);
  return c;
}

AttackSpec CellSpec(int cell) {
  return AttackSpec::Parse(kAttackSpecs[cell / kNumConfigs]);
}

/// The defense each attack falls to - the matrix's pinned semantics.
UnlockOutcome ExpectedOutcome(AttackKind kind) {
  switch (kind) {
    case AttackKind::kEavesdrop:
      // The victim unlocks normally; the listener's haul is stale.
      return UnlockOutcome::kUnlocked;
    case AttackKind::kReplay:
    case AttackKind::kRelay:
      // The attacker's path latency lands in the ranging estimate.
      return UnlockOutcome::kDistanceBoundViolation;
    case AttackKind::kProbe:
    case AttackKind::kOvershadow:
      // Co-channel energy corrupts Phase 2; the token never validates.
      return UnlockOutcome::kTokenRejected;
  }
  return UnlockOutcome::kNoWirelessLink;  // unreachable
}

/// Everything about an attacked cell that must be deterministic under a
/// fixed seed. Virtual-time stamps and phase timings are excluded (they
/// include host-measured compute); the *decisions* - attack events,
/// victim outcome, security verdicts, cohort key - must not move.
std::string CellFingerprint(int cell) {
  const AttackReport r = RunAttackScenario(CellScenario(cell), CellSpec(cell));
  std::ostringstream fp;
  fp << std::hexfloat;
  fp << ToString(r.victim_outcome) << "|" << r.victim_unlocked << "|"
     << r.false_unlock << "|" << r.token_recovered << "|"
     << r.attacker_token_ber << "|"
     << (r.ranging_distance_m ? *r.ranging_distance_m : -1.0) << "|"
     << r.victim_report.token_ber << "|" << r.victim_report.pilot_snr_db
     << "|events:";
  for (const auto& e : r.events) {
    fp << ToString(e.kind) << "@" << e.stage << "=" << e.value << ";";
  }
  fp << "|cohorts:";
  for (const auto& rec : r.records) fp << obs::DefaultCohortKey(rec) << ";";
  return fp.str();
}

/// Zero out "at_ms" (virtual time includes host-measured compute, so
/// timestamps jitter while the event sequence must not) - the same
/// normalization tools/ci.sh applies to the CLI's --attack-trace.
std::string NormalizeTraceTimestamps(const std::string& jsonl) {
  std::string out;
  std::size_t pos = 0;
  const std::string key = "\"at_ms\":";
  while (pos < jsonl.size()) {
    const std::size_t hit = jsonl.find(key, pos);
    if (hit == std::string::npos) {
      out += jsonl.substr(pos);
      break;
    }
    out += jsonl.substr(pos, hit - pos) + key + "0";
    pos = hit + key.size();
    while (pos < jsonl.size() && jsonl[pos] != ',' && jsonl[pos] != '}') ++pos;
  }
  return out;
}

void ExpectWellFormedJsonl(const std::string& jsonl) {
  std::istringstream lines(jsonl);
  std::string line;
  testing::JsonChecker checker;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(checker.Check(line)) << checker.error() << " in: " << line;
  }
}

// --- Pinned outcomes + the zero-false-unlock invariant ----------------

TEST(SecurityMatrixTest, EveryCellPinsItsOutcomeAndNeverFalselyUnlocks) {
  for (int cell = 0; cell < kNumCells; ++cell) {
    const AttackSpec spec = CellSpec(cell);
    SCOPED_TRACE("cell " + std::to_string(cell) + " attack " + spec.spec);
    const AttackReport r = RunAttackScenario(CellScenario(cell), spec);

    // The pinned defense answered.
    EXPECT_EQ(r.victim_outcome, ExpectedOutcome(spec.kind))
        << "got " << ToString(r.victim_outcome);

    // THE invariant: no cell hands the attacker anything.
    EXPECT_FALSE(r.false_unlock);

    // Short-range directional eavesdropping decodes the token - pinned
    // as expected physics (the scheme's answer is freshness, below).
    if (spec.kind == AttackKind::kEavesdrop) {
      EXPECT_TRUE(r.token_recovered);
      EXPECT_TRUE(r.victim_unlocked);
    } else {
      EXPECT_FALSE(r.victim_unlocked);
    }

    // Every agent leaves a non-empty, well-formed attack trace.
    EXPECT_FALSE(r.events.empty());
    ExpectWellFormedJsonl(sim::AttackTraceJsonl(r.events));

    // Telemetry rows score the attacker and carry the attack axis.
    ASSERT_FALSE(r.records.empty());
    for (const auto& rec : r.records) {
      EXPECT_FALSE(rec.same_body);
      EXPECT_EQ(rec.attack_spec, spec.spec);
      EXPECT_NE(obs::DefaultCohortKey(rec).find(";attack=" + spec.spec),
                std::string::npos);
      if (spec.kind != AttackKind::kEavesdrop) {
        EXPECT_FALSE(rec.false_accept);
      }
    }
  }
}

// --- Deterministic replay across thread counts ------------------------

TEST(SecurityMatrixTest, SameSeedReplaysBitIdentically) {
  for (int cell = 0; cell < kNumCells; ++cell) {
    SCOPED_TRACE("cell " + std::to_string(cell));
    const std::string first = CellFingerprint(cell);
    const std::string second = CellFingerprint(cell);
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
  }
}

TEST(SecurityMatrixTest, ByteIdenticalAcrossThreadCounts) {
  auto run_matrix = [](std::size_t n_threads) {
    sim::ParallelExecutor executor(n_threads);
    return executor.Map(kNumCells, /*base_seed=*/0, [](sim::TaskContext& ctx) {
      // Cell seeds are pinned by CellScenario; ctx.rng is deliberately
      // unused so the fingerprint is a pure function of the index.
      return CellFingerprint(static_cast<int>(ctx.index));
    });
  };
  const std::vector<std::string> serial = run_matrix(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const std::vector<std::string> parallel = run_matrix(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("cell " + std::to_string(i) + " threads " +
                   std::to_string(threads));
      EXPECT_EQ(serial[i], parallel[i]);
    }
  }
}

// --- Golden attack traces ---------------------------------------------

void CompareOrRegenGolden(const std::string& normalized,
                          const std::string& filename) {
  const std::string golden_path =
      std::string(WEARLOCK_SECURITY_GOLDEN_DIR) + "/" + filename;
  if (std::getenv("WEARLOCK_REGEN_ATTACK_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << normalized;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path
                         << " (regen with WEARLOCK_REGEN_ATTACK_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(normalized, golden.str())
      << "attack trace drifted from the committed golden; if the change "
         "is intentional, regen with WEARLOCK_REGEN_ATTACK_GOLDEN=1";
}

/// The whole matrix's attack traces, one cell-header line followed by
/// that cell's (normalized) attack events - the seed-pinned record of
/// what every attacker did and when the defense cut it off.
TEST(SecurityMatrixTest, GoldenAttackTraces) {
  std::string all;
  for (int cell = 0; cell < kNumCells; ++cell) {
    const ScenarioConfig scenario = CellScenario(cell);
    const AttackSpec spec = CellSpec(cell);
    const AttackReport r = RunAttackScenario(scenario, spec);
    all += "{\"cell\":" + std::to_string(cell) + ",\"attack\":\"" + spec.spec +
           "\",\"config\":\"" + scenario.label + "\"}\n";
    all += sim::AttackTraceJsonl(r.events);
  }
  ExpectWellFormedJsonl(all);
  CompareOrRegenGolden(NormalizeTraceTimestamps(all),
                       "security_attack_traces.jsonl");
}

/// Exactly the scenario `wearlock_unlock_cli --attack <relay spec>`
/// builds (Config1, 0.3 m, quiet room, defense armed), so tools/ci.sh
/// can diff the CLI's --attack-trace output against the same golden.
constexpr char kCliRelaySpec[] = "relay@3.0:delay=3:gain=40";
constexpr std::uint64_t kCliRelaySeed = 4242;

TEST(SecurityMatrixTest, GoldenRelayCliTrace) {
  ScenarioConfig c = ScenarioConfig::Config1();
  c.scene.distance_m = 0.3;
  c.seed = kCliRelaySeed;
  c.phone.distance_bounding.enable = true;
  c.attack = AttackSpec::Parse(kCliRelaySpec);
  const AttackReport r = RunAttackScenario(c, c.attack);
  EXPECT_EQ(r.victim_outcome, UnlockOutcome::kDistanceBoundViolation);
  EXPECT_FALSE(r.false_unlock);
  const std::string raw = sim::AttackTraceJsonl(r.events);
  EXPECT_FALSE(raw.empty());
  ExpectWellFormedJsonl(raw);
  CompareOrRegenGolden(NormalizeTraceTimestamps(raw),
                       "relay_attack_trace.jsonl");
}

// --- Each defense layer earns its keep --------------------------------

/// The relay that wins with distance bounding off is caught with it on:
/// fresh token, satisfied timing window - only the ranging sees the
/// wormhole.
TEST(RelayDefenseTest, DistanceBoundingBlocksTheRelayThatWinsWithoutIt) {
  const AttackSpec spec = AttackSpec::Parse(kCliRelaySpec);
  for (std::uint64_t seed : {9001ULL, 9002ULL, 9003ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ScenarioConfig undefended = ScenarioConfig::Config1();
    undefended.seed = seed;
    const AttackReport breach = RunAttackScenario(undefended, spec);
    EXPECT_EQ(breach.victim_outcome, UnlockOutcome::kUnlocked);
    EXPECT_TRUE(breach.false_unlock) << "relay must break the undefended "
                                        "protocol, or the defense proves "
                                        "nothing";

    ScenarioConfig defended = undefended;
    defended.phone.distance_bounding.enable = true;
    const AttackReport held = RunAttackScenario(defended, spec);
    EXPECT_EQ(held.victim_outcome, UnlockOutcome::kDistanceBoundViolation);
    EXPECT_FALSE(held.false_unlock);
    ASSERT_TRUE(held.ranging_distance_m.has_value());
    // Two short hops + 3 ms of electronics: well past the 1.3 m bound.
    EXPECT_GT(*held.ranging_distance_m,
              protocol::RangingConfig{}.max_distance_m);
  }
}

/// Replay defense in depth: whichever layer the replay doesn't evade
/// catches it.
TEST(ReplayDefenseTest, EveryEvasionFallsToAnotherLayer) {
  auto run = [](const char* spec, bool distance_bounding) {
    ScenarioConfig c = ScenarioConfig::Config1();
    c.seed = 9020;
    c.phone.distance_bounding.enable = distance_bounding;
    return RunAttackScenario(c, AttackSpec::Parse(spec));
  };
  {
    // Instant replay, no ranging: evades timing and distance checks,
    // but the captured token's counter is already burned (HOTP
    // one-time semantics).
    const AttackReport r = run("replay@0.5:delay=0", false);
    EXPECT_EQ(r.victim_outcome, UnlockOutcome::kTokenRejected);
    EXPECT_FALSE(r.false_unlock);
  }
  {
    // Sluggish replay, no ranging: the 400 ms handling delay blows the
    // timing window before token validation even runs.
    const AttackReport r = run("replay@0.5:delay=400", false);
    EXPECT_EQ(r.victim_outcome, UnlockOutcome::kTimingViolation);
    EXPECT_FALSE(r.false_unlock);
  }
  {
    // Mid-speed replay inside the timing slack: acoustic ranging sees
    // the 100 ms of fake path (= 34 m of air) and fails closed.
    const AttackReport r = run("replay@0.5:delay=100", true);
    EXPECT_EQ(r.victim_outcome, UnlockOutcome::kDistanceBoundViolation);
    EXPECT_FALSE(r.false_unlock);
  }
}

/// What saves the eavesdropped token is freshness, not secrecy: the
/// directional mic decodes it clean, and the validator still shrugs.
TEST(EavesdropDefenseTest, RecoveredTokenIsStaleByConstruction) {
  ScenarioConfig c = ScenarioConfig::Config1();
  c.seed = 9100;
  const AttackReport r =
      RunAttackScenario(c, AttackSpec::Parse("eavesdrop@0.5:gain=20"));
  EXPECT_TRUE(r.victim_unlocked);
  EXPECT_TRUE(r.token_recovered) << "at 0.5 m the capture must decode";
  EXPECT_LE(r.attacker_token_ber, 0.10);
  EXPECT_FALSE(r.false_unlock) << "the victim's unlock burned the counter";
}

/// Overshadowing's dilemma: too weak and the legitimate frame wins, too
/// strong and the watch decodes the attacker's bits - which fail
/// validation because guessing a live HOTP token is the actual ask.
TEST(OvershadowDefenseTest, NeitherPowerRegimeYieldsAnAttackerUnlock) {
  auto run = [](const char* spec) {
    ScenarioConfig c = ScenarioConfig::Config1();
    c.seed = 9001;
    c.phone.distance_bounding.enable = true;
    return RunAttackScenario(c, AttackSpec::Parse(spec));
  };
  {
    const AttackReport r = run("overshadow@1.5:level=2");
    EXPECT_EQ(r.victim_outcome, UnlockOutcome::kUnlocked);
    EXPECT_FALSE(r.false_unlock) << "the accepted bits were the real token";
  }
  {
    const AttackReport r = run("overshadow@1.5:level=6");
    EXPECT_EQ(r.victim_outcome, UnlockOutcome::kTokenRejected);
    EXPECT_FALSE(r.false_unlock);
  }
}

// --- Telemetry path ---------------------------------------------------

TEST(AttackTelemetryTest, RecordsAggregateAsAttackerSuccessRate) {
  obs::TelemetrySink sink;
  for (std::uint64_t seed = 9300; seed < 9305; ++seed) {
    ScenarioConfig c = ScenarioConfig::Config1();
    c.seed = seed;
    c.phone.distance_bounding.enable = true;
    const AttackReport r =
        RunAttackScenario(c, AttackSpec::Parse("replay@0.5:delay=400"));
    for (const auto& rec : r.records) sink.Ingest(rec);
  }
  ASSERT_EQ(sink.cohorts().size(), 1u);
  const auto& [key, cohort] = *sink.cohorts().begin();
  EXPECT_NE(key.find(";attack=replay@0.5:delay=400"), std::string::npos);
  EXPECT_EQ(cohort.impostor, 5u);
  EXPECT_EQ(cohort.genuine, 0u);
  const obs::WilsonInterval far = cohort.FalseAcceptRate();
  EXPECT_DOUBLE_EQ(far.rate, 0.0);
  EXPECT_LT(far.high, 0.6);  // 0/5 still carries real uncertainty
}

// --- Distance-bounding properties -------------------------------------

audio::TwoMicScene RangingScene(std::uint64_t seed, double distance_m) {
  audio::SceneConfig sc;
  sc.distance_m = distance_m;
  sc.environment = audio::Environment::kQuietRoom;
  return audio::TwoMicScene(sc, sim::Rng(seed));
}

TEST(DistanceBoundingPropertyTest, EstimateIsMonotoneInRelayDelay) {
  for (std::uint64_t seed : {41ULL, 42ULL, 43ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    audio::TwoMicScene scene = RangingScene(seed, 0.9);
    sim::Rng rng(seed * 77 + 1);
    double prev = -1.0;
    for (const double delay_ms : {0.0, 1.0, 2.0, 4.0, 8.0}) {
      const protocol::RangingResult res = protocol::AcousticRangeMedian(
          scene, modem::FrameSpec{}, /*volume=*/0.8, rng, /*rounds=*/5,
          protocol::RangingConfig{}, delay_ms);
      ASSERT_TRUE(res.chirp_detected) << "delay " << delay_ms;
      EXPECT_GT(res.estimated_distance_m, prev) << "delay " << delay_ms;
      prev = res.estimated_distance_m;
    }
  }
}

/// Legitimate sessions at the secure perimeter's edge pass the bound
/// across seeds - the defense doesn't tax honest users.
TEST(DistanceBoundingPropertyTest, LegitimateSessionsPassAcrossSeeds) {
  for (std::uint64_t seed = 60; seed < 70; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    audio::TwoMicScene scene = RangingScene(seed, 0.9);
    sim::Rng rng(seed * 77 + 1);
    const protocol::RangingResult res = protocol::AcousticRangeMedian(
        scene, modem::FrameSpec{}, /*volume=*/0.8, rng, /*rounds=*/5);
    ASSERT_TRUE(res.chirp_detected);
    EXPECT_TRUE(res.within_bound);
    EXPECT_NEAR(res.estimated_distance_m, 0.9, 0.25);
  }
}

/// 1 ms of relay handling = 34 cm of fake air: any relay >= 2 ms is
/// past the bound even from the perimeter's edge, across seeds.
TEST(DistanceBoundingPropertyTest, RelayDelaysOfTwoMsOrMoreAreRejected) {
  for (std::uint64_t seed = 60; seed < 66; ++seed) {
    for (const double delay_ms : {2.0, 3.0, 5.0, 10.0, 50.0}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " delay " +
                   std::to_string(delay_ms));
      audio::TwoMicScene scene = RangingScene(seed, 0.9);
      sim::Rng rng(seed * 77 + 1);
      const protocol::RangingResult res = protocol::AcousticRangeMedian(
          scene, modem::FrameSpec{}, /*volume=*/0.8, rng, /*rounds=*/5,
          protocol::RangingConfig{}, delay_ms);
      ASSERT_TRUE(res.chirp_detected);
      EXPECT_FALSE(res.within_bound);
    }
  }
}

// --- AttackSpec grammar -----------------------------------------------

TEST(AttackSpecTest, ParsesFullSpecs) {
  const AttackSpec relay = AttackSpec::Parse("relay@3.0:delay=3:gain=40");
  EXPECT_EQ(relay.kind, AttackKind::kRelay);
  EXPECT_DOUBLE_EQ(relay.distance_m, 3.0);
  EXPECT_DOUBLE_EQ(relay.handling_delay_ms, 3.0);
  EXPECT_DOUBLE_EQ(relay.gain_db, 40.0);
  EXPECT_EQ(relay.spec, "relay@3.0:delay=3:gain=40");
  EXPECT_FALSE(relay.empty());

  const AttackSpec probe = AttackSpec::Parse("probe@1.0:level=1.5");
  EXPECT_EQ(probe.kind, AttackKind::kProbe);
  EXPECT_DOUBLE_EQ(probe.level, 1.5);
}

TEST(AttackSpecTest, BareKindsGetSensibleDefaults) {
  const AttackSpec eaves = AttackSpec::Parse("eavesdrop");
  EXPECT_EQ(eaves.kind, AttackKind::kEavesdrop);
  EXPECT_DOUBLE_EQ(eaves.distance_m, 2.0);

  const AttackSpec relay = AttackSpec::Parse("relay");
  EXPECT_DOUBLE_EQ(relay.distance_m, 3.0);
  EXPECT_DOUBLE_EQ(relay.handling_delay_ms, 4.0);
  EXPECT_DOUBLE_EQ(relay.gain_db, 40.0);

  const AttackSpec replay = AttackSpec::Parse("replay");
  EXPECT_DOUBLE_EQ(replay.handling_delay_ms, 250.0);

  EXPECT_TRUE(AttackSpec{}.empty());
}

TEST(AttackSpecTest, EveryKindStringifies) {
  for (const AttackKind kind :
       {AttackKind::kEavesdrop, AttackKind::kReplay, AttackKind::kRelay,
        AttackKind::kProbe, AttackKind::kOvershadow}) {
    EXPECT_NE(ToString(kind), "?");
    // Round trip: the name parses back to the same kind.
    EXPECT_EQ(AttackSpec::Parse(ToString(kind)).kind, kind);
  }
}

TEST(AttackSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(AttackSpec::Parse(""), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("bogus"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("eavesdrop@"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("eavesdrop@-1"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("eavesdrop@0"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("eavesdrop@2x"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("relay:delay=-2"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("relay:delay=abc"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("probe:level=0"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("eavesdrop:gain=999"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("eavesdrop:wat=1"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("eavesdrop:"), std::invalid_argument);
  EXPECT_THROW(AttackSpec::Parse("eavesdrop:gain"), std::invalid_argument);
}

}  // namespace
}  // namespace wearlock
