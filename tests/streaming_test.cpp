// StreamingReceiver: chunked, memory-bounded reception.
#include <gtest/gtest.h>

#include <algorithm>

#include "audio/medium.h"
#include "modem/modem.h"
#include "modem/streaming.h"
#include "sim/rng.h"

namespace wearlock::modem {
namespace {

struct Tx {
  std::vector<std::uint8_t> bits;
  audio::Samples recording;
};

Tx MakeTransmission(std::uint64_t seed, double distance = 0.3,
                       std::size_t lead_in = 4096) {
  sim::Rng rng(seed);
  AcousticModem modem;
  audio::ChannelConfig cfg;
  cfg.distance_m = distance;
  cfg.lead_in_samples = lead_in;
  audio::AcousticChannel channel(cfg, rng.Fork());
  Tx s;
  s.bits.resize(32);
  for (auto& b : s.bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto tx = modem.Modulate(Modulation::kQpsk, s.bits);
  s.recording = channel.Transmit(tx.samples, 0.4).recording;
  return s;
}

class ChunkSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkSizes, DecodesRegardlessOfChunking) {
  const Tx s = MakeTransmission(91);
  StreamingReceiver rx{FrameSpec{}};
  const std::size_t chunk = GetParam();
  for (std::size_t i = 0; i < s.recording.size(); i += chunk) {
    const std::size_t end = std::min(i + chunk, s.recording.size());
    audio::Samples piece(s.recording.begin() + static_cast<long>(i),
                         s.recording.begin() + static_cast<long>(end));
    if (rx.Push(piece) == StreamState::kDone) break;
  }
  ASSERT_EQ(rx.state(), StreamState::kDone);
  ASSERT_TRUE(rx.result().has_value());
  EXPECT_EQ(rx.result()->bits, s.bits);
}

INSTANTIATE_TEST_SUITE_P(Chunking, ChunkSizes,
                         ::testing::Values(128, 441, 1024, 4096, 100000),
                         [](const auto& info) {
                           return "chunk" + std::to_string(info.param);
                         });

TEST(StreamingReceiver, MemoryBoundedWhileIdle) {
  sim::Rng rng(92);
  StreamingConfig config;
  config.search_retain_samples = 8192;
  StreamingReceiver rx{FrameSpec{}, config};
  // Ten seconds of silence-ish room noise: buffer must not grow without
  // bound.
  for (int i = 0; i < 100; ++i) {
    rx.Push(rng.GaussianVector(4410, 1e-5));
    EXPECT_LE(rx.buffered_samples(), 8192u + 4410u);
  }
  EXPECT_EQ(rx.state(), StreamState::kSearching);
  EXPECT_EQ(rx.consumed_samples(), 441000u);
}

TEST(StreamingReceiver, CapacityHighWaterIsBoundedAndResetReleasesIt) {
  sim::Rng rng(97);
  StreamingConfig config;
  config.search_retain_samples = 8192;
  StreamingReceiver rx{FrameSpec{}, config};
  constexpr std::size_t kChunk = 4410;
  // A long kSearching stream: the retained prefix is compacted in place
  // before every insert, so the backing store's high-water mark stays a
  // small multiple of (retained window + one chunk) - geometric vector
  // growth slack at most - instead of tracking total samples consumed.
  std::size_t high_water = 0;
  for (int i = 0; i < 200; ++i) {
    rx.Push(rng.GaussianVector(kChunk, 1e-5));
    high_water = std::max(high_water, rx.buffer_capacity());
  }
  EXPECT_EQ(rx.state(), StreamState::kSearching);
  EXPECT_LE(high_water, 2 * (config.search_retain_samples + kChunk));
  // Reset must hand the backing store back, not just clear the size.
  rx.Reset();
  EXPECT_EQ(rx.buffer_capacity(), 0u);
  EXPECT_EQ(rx.consumed_samples(), 0u);
}

TEST(StreamingReceiver, CatchesFrameAfterLongIdle) {
  // A frame arriving after minutes of discarded idle audio must still
  // decode (absolute/relative index bookkeeping).
  sim::Rng rng(93);
  const Tx s = MakeTransmission(93);
  StreamingConfig config;
  config.search_retain_samples = 8192;
  StreamingReceiver rx{FrameSpec{}, config};
  for (int i = 0; i < 50; ++i) rx.Push(rng.GaussianVector(4410, 1e-5));
  for (std::size_t i = 0; i < s.recording.size(); i += 1000) {
    const std::size_t end = std::min(i + 1000, s.recording.size());
    rx.Push(audio::Samples(s.recording.begin() + static_cast<long>(i),
                           s.recording.begin() + static_cast<long>(end)));
  }
  ASSERT_EQ(rx.state(), StreamState::kDone);
  EXPECT_EQ(rx.result()->bits, s.bits);
}

TEST(StreamingReceiver, ResetRearmsForNextFrame) {
  const Tx first = MakeTransmission(94);
  const Tx second = MakeTransmission(95);
  StreamingReceiver rx{FrameSpec{}};
  rx.Push(first.recording);
  ASSERT_EQ(rx.state(), StreamState::kDone);
  EXPECT_EQ(rx.result()->bits, first.bits);
  rx.Reset();
  EXPECT_EQ(rx.state(), StreamState::kSearching);
  rx.Push(second.recording);
  ASSERT_EQ(rx.state(), StreamState::kDone);
  EXPECT_EQ(rx.result()->bits, second.bits);
}

TEST(StreamingReceiver, PushAfterDoneIsIgnored) {
  const Tx s = MakeTransmission(96);
  StreamingReceiver rx{FrameSpec{}};
  rx.Push(s.recording);
  ASSERT_EQ(rx.state(), StreamState::kDone);
  const auto bits = rx.result()->bits;
  sim::Rng rng(96);
  rx.Push(rng.GaussianVector(10000, 0.1));
  EXPECT_EQ(rx.state(), StreamState::kDone);
  EXPECT_EQ(rx.result()->bits, bits);
}

TEST(StreamingReceiver, MatchesBatchDemodulator) {
  const Tx s = MakeTransmission(97);
  AcousticModem batch;
  const auto batch_result = batch.Demodulate(s.recording, Modulation::kQpsk, 32);
  StreamingReceiver rx{FrameSpec{}};
  for (std::size_t i = 0; i < s.recording.size(); i += 777) {
    const std::size_t end = std::min(i + 777, s.recording.size());
    rx.Push(audio::Samples(s.recording.begin() + static_cast<long>(i),
                           s.recording.begin() + static_cast<long>(end)));
  }
  ASSERT_TRUE(batch_result.has_value());
  ASSERT_EQ(rx.state(), StreamState::kDone);
  EXPECT_EQ(rx.result()->bits, batch_result->bits);
}

}  // namespace
}  // namespace wearlock::modem
