// Property sweeps over the modem's configuration space: both band plans,
// all modulations, varying payload sizes, sub-channel re-planning, and
// the near-ultrasound phone-phone protocol profile.
//
// The 48-case loopback matrix fans out across sim::ParallelExecutor:
// every case is an independent task with its own deterministic seed, so
// the sweep both finishes in wall-clock/thread-count time and doubles as
// an integration test of the executor under real modem workloads.
#include <gtest/gtest.h>

#include "audio/medium.h"
#include "modem/modem.h"
#include "protocol/session.h"
#include "sim/executor.h"
#include "sim/rng.h"

namespace wearlock {
namespace {

using modem::AcousticModem;
using modem::Modulation;

struct SweepCase {
  Modulation modulation;
  bool near_ultrasound;
  std::size_t n_bits;
};

std::vector<SweepCase> MakeCases() {
  std::vector<SweepCase> cases;
  for (Modulation m : modem::AllModulations()) {
    for (bool nu : {false, true}) {
      for (std::size_t bits : {8u, 32u, 100u, 256u}) {
        cases.push_back({m, nu, bits});
      }
    }
  }
  return cases;
}

std::string CaseName(const SweepCase& c) {
  return ToString(c.modulation) +
         std::string(c.near_ultrasound ? " NU" : " audible") +
         " bits=" + std::to_string(c.n_bits);
}

struct CaseResult {
  bool demodulated = false;
  double ber = 1.0;
  double bound = 0.0;
};

CaseResult RunCase(const SweepCase& c) {
  // Seeds match the original serial TEST_P matrix: the per-case channel
  // depends only on the payload size, independent of scheduling.
  sim::Rng rng(1000 + static_cast<std::uint64_t>(c.n_bits));
  modem::FrameSpec spec;
  if (c.near_ultrasound) spec.plan = modem::SubchannelPlan::NearUltrasound();
  AcousticModem modem(spec);

  audio::ChannelConfig cfg;
  cfg.distance_m = 0.25;
  cfg.environment = audio::Environment::kQuietRoom;
  // The watch mic's low-pass kills 15-20 kHz; NU tests model the
  // phone-phone pair with a full-band receiver, as the paper does.
  if (c.near_ultrasound) cfg.microphone = audio::MicrophoneModel::Phone();
  audio::AcousticChannel channel(cfg, rng.Fork());

  std::vector<std::uint8_t> bits(c.n_bits);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto tx = modem.Modulate(c.modulation, bits);
  const auto rx = channel.Transmit(tx.samples, 0.5);
  const auto result = modem.Demodulate(rx.recording, c.modulation, c.n_bits);

  CaseResult out;
  // Phase-bearing dense constellations have deliberate hardware floors;
  // everything else should be near-clean at 25 cm in a quiet room.
  // Small payloads quantize BER coarsely (1 flipped bit out of 8 is
  // 12.5%), so the bound gets a one-bit allowance.
  out.bound = ((c.modulation == Modulation::k8Psk ||
                c.modulation == Modulation::k16Qam)
                   ? 0.12
                   : 0.03) +
              1.0 / static_cast<double>(c.n_bits);
  if (result) {
    out.demodulated = true;
    out.ber = modem::BitErrorRate(result->bits, bits);
  }
  return out;
}

TEST(ModemSweep, LoopbackUnderMildNoiseMatrix) {
  const std::vector<SweepCase> cases = MakeCases();
  sim::ParallelExecutor executor;
  const auto results =
      executor.Map(cases.size(), /*base_seed=*/0,
                   [&](sim::TaskContext& ctx) { return RunCase(cases[ctx.index]); });
  ASSERT_EQ(results.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ASSERT_TRUE(results[i].demodulated) << CaseName(cases[i]);
    EXPECT_LE(results[i].ber, results[i].bound) << CaseName(cases[i]);
  }
}

TEST(ModemSweep, ReplannedSubchannelsStillRoundTrip) {
  // After sub-channel selection moves the data bins, TX and RX built
  // from the same plan must still agree.
  sim::Rng rng(2000);
  AcousticModem base;
  std::vector<double> noise(256, 1.0);
  noise[16] = 100.0;
  noise[20] = 100.0;
  noise[24] = 100.0;
  const AcousticModem adapted = base.WithSelectedSubchannels(noise);
  ASSERT_NE(adapted.spec().plan.data, base.spec().plan.data);

  audio::ChannelConfig cfg;
  cfg.distance_m = 0.3;
  audio::AcousticChannel channel(cfg, rng.Fork());
  std::vector<std::uint8_t> bits(64);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto tx = adapted.Modulate(Modulation::kQpsk, bits);
  const auto rx = channel.Transmit(tx.samples, 0.4);
  const auto result = adapted.Demodulate(rx.recording, Modulation::kQpsk, 64);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->bits, bits);
}

TEST(ModemSweep, MismatchedPlansFailSafely) {
  // RX on the default plan cannot decode a TX re-planned elsewhere -
  // and must fail cleanly rather than crash or return phantom zeros.
  sim::Rng rng(2001);
  AcousticModem tx_modem;
  std::vector<double> noise(256, 1.0);
  for (std::size_t b : tx_modem.spec().plan.data) noise[b] = 100.0;
  const AcousticModem moved = tx_modem.WithSelectedSubchannels(noise);

  audio::ChannelConfig cfg;
  audio::AcousticChannel channel(cfg, rng.Fork());
  std::vector<std::uint8_t> bits(64, 1);
  const auto tx = moved.Modulate(Modulation::kQpsk, bits);
  const auto rx = channel.Transmit(tx.samples, 0.4);
  const auto result = tx_modem.Demodulate(rx.recording, Modulation::kQpsk, 64);
  if (result) {
    // Preamble is shared, so detection can succeed - but the recovered
    // bits come from empty bins and cannot match.
    EXPECT_GT(modem::BitErrorRate(result->bits, bits), 0.2);
  }
}

TEST(ModemSweep, NearUltrasoundUnlockSessionWorks) {
  // Full protocol on the emulated phone-phone pair.
  protocol::ScenarioConfig config = protocol::ScenarioConfig::Config1();
  config.seed = 2002;
  config.scene.distance_m = 0.3;
  config.phone.frame.plan = modem::SubchannelPlan::NearUltrasound();
  config.scene.watch_mic = audio::MicrophoneModel::Phone();
  protocol::UnlockSession session(config);
  const auto report = session.Attempt();
  EXPECT_TRUE(report.unlocked) << protocol::ToString(report.outcome);
}

TEST(ModemSweep, WatchMicCannotHearNearUltrasound) {
  // The hardware limitation that forced the paper's audible band: the
  // watch's 7 kHz low-pass erases a 15-20 kHz frame.
  sim::Rng rng(2003);
  modem::FrameSpec spec;
  spec.plan = modem::SubchannelPlan::NearUltrasound();
  AcousticModem modem(spec);
  audio::ChannelConfig cfg;
  cfg.distance_m = 0.25;
  cfg.microphone = audio::MicrophoneModel::Watch();  // the Moto 360 mic
  audio::AcousticChannel channel(cfg, rng.Fork());
  std::vector<std::uint8_t> bits(64);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto tx = modem.Modulate(Modulation::kQpsk, bits);
  const auto rx = channel.Transmit(tx.samples, 0.8);
  const auto result = modem.Demodulate(rx.recording, Modulation::kQpsk, 64);
  // Either nothing is detected, or what is detected is mostly noise
  // (random bits against random decisions ~ 50% BER).
  if (result) {
    EXPECT_GT(modem::BitErrorRate(result->bits, bits), 0.2);
  }
}

}  // namespace
}  // namespace wearlock
