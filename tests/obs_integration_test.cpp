// End-to-end telemetry: a full UnlockSession attempt must produce a
// complete, deterministic span timeline on the virtual clock plus the
// per-stage metrics the benches read, and both exports must be valid
// JSON. Span-emission tests are gated on WEARLOCK_OBS_ENABLED so a
// -DWEARLOCK_OBS=OFF tree still builds and passes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "json_check.h"
#include "obs/instrument.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocol/session.h"

namespace wearlock::protocol {
namespace {

ScenarioConfig NearbyQuiet() {
  ScenarioConfig config = ScenarioConfig::Config1();
  config.scene.distance_m = 0.3;
  return config;
}

#if WEARLOCK_OBS_ENABLED

TEST(ObsIntegration, AttemptEmitsTheProtocolStages) {
  UnlockSession session(NearbyQuiet());
  const UnlockReport report = session.Attempt();
  ASSERT_TRUE(report.unlocked);

  std::set<std::string> names;
  for (const auto& span : session.tracer().spans()) {
    names.insert(span.name);
    EXPECT_TRUE(span.finished) << span.name;
  }
  // The acceptance bar: one attempt shows every pipeline stage by name.
  const char* required[] = {
      "session.attempt",        "phase1.probe_tx",
      "phase1.probe_analysis",  "phase1.subchannel_select",
      "phase2.otp_generate",    "phase2.data_tx",
      "modem.sync.detect",      "phase2.demod",
      "phase2.token_validate",  "session.verdict",
  };
  for (const char* name : required) {
    EXPECT_TRUE(names.count(name)) << "missing span: " << name;
  }
  EXPECT_GE(names.size(), 8u);
}

TEST(ObsIntegration, SpanTimesLieOnTheVirtualClock) {
  UnlockSession session(NearbyQuiet());
  const UnlockReport report = session.Attempt();
  ASSERT_TRUE(report.unlocked);
  const double end = session.clock().now();
  std::size_t roots = 0;
  for (const auto& span : session.tracer().spans()) {
    EXPECT_GE(span.start_ms, 0.0);
    EXPECT_LE(span.end_ms, end);
    EXPECT_LE(span.start_ms, span.end_ms);
    if (span.parent == obs::SpanRecord::kNoParent) {
      ++roots;
      EXPECT_EQ(span.name, "session.attempt");
      // The root span covers the whole modeled attempt duration.
      EXPECT_DOUBLE_EQ(span.end_ms, end);
    } else {
      // Children are contained in their parent's interval.
      const auto& parent = session.tracer().spans()[span.parent];
      EXPECT_GE(span.start_ms, parent.start_ms);
      EXPECT_LE(span.end_ms, parent.end_ms);
    }
  }
  EXPECT_EQ(roots, 1u);
}

TEST(ObsIntegration, SpanStructureIsDeterministicAcrossSameSeedSessions) {
  // Span *durations* include host-measured compute scaled by the device
  // profile, so timestamps jitter run to run; the structure - which
  // spans fire, their order, nesting, and RNG-driven outcomes - must be
  // identical for the same seed.
  auto run = [] {
    UnlockSession session(NearbyQuiet());
    (void)session.Attempt();
    std::ostringstream os;
    for (const auto& span : session.tracer().spans()) {
      os << span.name << "#" << span.depth << "#" << span.parent << ";";
    }
    os << "outcome=" << session.metrics()
                            .GetCounter("protocol.attempt.outcome.unlocked")
                            .value();
    return os.str();
  };
  EXPECT_EQ(run(), run());
}

TEST(ObsIntegration, MetricsRecordTheAttempt) {
  UnlockSession session(NearbyQuiet());
  const UnlockReport report = session.Attempt();
  ASSERT_TRUE(report.unlocked);
  auto& metrics = session.metrics();
  EXPECT_EQ(metrics.GetCounter("protocol.attempt.calls").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("protocol.attempt.unlocked").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("protocol.attempt.outcome.unlocked").value(),
            1u);
  EXPECT_GE(metrics.GetCounter("modem.sync.calls").value(), 1u);
  EXPECT_GE(metrics.GetCounter("link.messages").value(), 2u);
  EXPECT_EQ(metrics.GetHistogram("protocol.attempt.total_ms").count(), 1u);

  // The fig12 source of truth: exact totals for successful unlocks.
  const auto totals = metrics.SeriesValues("protocol.unlock.total_ms");
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_DOUBLE_EQ(totals[0], report.timings.total_ms());

  // Sub-channel BER attribution: every payload bit lands on one of the
  // plan's data bins (a 32-bit token on a 36-bit/symbol plan leaves the
  // highest-order bins empty, so per-bin counts may be zero).
  std::uint64_t attributed_bits = 0;
  for (const std::size_t bin : report.plan.data) {
    const std::string prefix = "modem.subchannel." + std::to_string(bin);
    attributed_bits += metrics.GetCounter(prefix + ".bits").value();
  }
  EXPECT_EQ(attributed_bits, 32u);
}

TEST(ObsIntegration, SessionsDoNotShareTelemetry) {
  UnlockSession a(NearbyQuiet());
  UnlockSession b(NearbyQuiet());
  (void)a.Attempt();
  EXPECT_EQ(a.metrics().GetCounter("protocol.attempt.calls").value(), 1u);
  EXPECT_EQ(b.metrics().GetCounter("protocol.attempt.calls").value(), 0u);
  EXPECT_TRUE(b.tracer().spans().empty());
}

TEST(ObsIntegration, FailedAttemptStillClosesEverySpan) {
  ScenarioConfig config = NearbyQuiet();
  config.wireless_connected = false;
  UnlockSession session(config);
  const UnlockReport report = session.Attempt();
  EXPECT_EQ(report.outcome, UnlockOutcome::kNoWirelessLink);
  ASSERT_FALSE(session.tracer().spans().empty());
  for (const auto& span : session.tracer().spans()) {
    EXPECT_TRUE(span.finished) << span.name;
  }
  EXPECT_EQ(session.tracer().open_depth(), 0u);
  EXPECT_EQ(session.metrics()
                .GetCounter("protocol.attempt.outcome.no-wireless-link")
                .value(),
            1u);
}

#endif  // WEARLOCK_OBS_ENABLED

TEST(ObsIntegration, ExportsAreWellFormedJson) {
  UnlockSession session(NearbyQuiet());
  (void)session.Attempt();
  testing::JsonChecker checker;

  std::ostringstream chrome;
  session.tracer().WriteChromeTrace(chrome);
  EXPECT_TRUE(checker.Check(chrome.str())) << checker.error();

  std::ostringstream metrics;
  session.metrics().WriteJson(metrics);
  EXPECT_TRUE(checker.Check(metrics.str())) << checker.error();

  std::ostringstream jsonl;
  session.tracer().WriteJsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(checker.Check(line)) << checker.error() << "\n" << line;
  }
}

TEST(ObsIntegration, ReportTraceStaysCompact) {
  // The UnlockReport's human-readable step log is an 8-step summary
  // pinned by integration_test; the span timeline must not leak into it.
  UnlockSession session(NearbyQuiet());
  const UnlockReport report = session.Attempt();
  ASSERT_TRUE(report.unlocked);
  EXPECT_EQ(report.trace.size(), 8u);
}

}  // namespace
}  // namespace wearlock::protocol
