// Failure injection: the system must degrade safely, never unlock
// wrongly, when hardware or protocol pieces misbehave.
#include <gtest/gtest.h>

#include "protocol/session.h"

namespace wearlock::protocol {
namespace {

ScenarioConfig Base(std::uint64_t seed) {
  ScenarioConfig config = ScenarioConfig::Config1();
  config.scene.distance_m = 0.3;
  config.seed = seed;
  return config;
}

TEST(FailureInjection, ClippedSpeakerStillRefusesDistantAttacker) {
  // A speaker that saturates at 20% excursion (damaged driver): legit
  // close-range use may still work or fail, but a 2 m attacker must not
  // slip through on the distorted waveform.
  ScenarioConfig config = Base(9001);
  audio::SpeakerSpec spec;
  spec.clip_level = 0.2;
  config.scene.phone_speaker = audio::SpeakerModel(spec);
  config.scene.distance_m = 2.0;
  config.phone.enable_sensor_filter = false;
  UnlockSession session(config);
  for (int i = 0; i < 4; ++i) {
    session.keyguard().Relock();
    if (!session.keyguard().CanAttemptWearlock()) break;
    EXPECT_FALSE(session.Attempt().unlocked);
  }
}

TEST(FailureInjection, SaturatedMicrophone) {
  // Watch mic saturating at a tiny level: heavy clipping distortion.
  ScenarioConfig config = Base(9002);
  audio::MicrophoneSpec mic = audio::MicrophoneModel::Watch().spec();
  mic.clip_level = 0.001;
  config.scene.watch_mic = audio::MicrophoneModel(mic);
  UnlockSession session(config);
  const auto report = session.Attempt();
  // Whatever happens, it must be a defined outcome and never a false
  // unlock at high BER.
  if (report.unlocked) {
    EXPECT_LE(report.token_ber, report.required_ber);
  }
}

TEST(FailureInjection, LinkDropsBetweenAttempts) {
  ScenarioConfig config = Base(9003);
  UnlockSession session(config);
  EXPECT_TRUE(session.Attempt().unlocked);
  session.keyguard().Relock();
  session.link().set_connected(false);
  const auto down = session.Attempt();
  EXPECT_EQ(down.outcome, UnlockOutcome::kNoWirelessLink);
  session.link().set_connected(true);
  const auto back = session.Attempt();
  EXPECT_TRUE(back.unlocked);
}

TEST(FailureInjection, CounterDesyncRecoversWithinWindow) {
  // Failed deliveries burn tokens; the validator's look-ahead window must
  // resynchronize once the channel recovers.
  ScenarioConfig config = Base(9004);
  UnlockSession session(config);
  // Burn two tokens with out-of-range failures.
  session.scene().set_distance(2.5);
  session.Attempt();
  session.keyguard().UnlockWithCredential();
  session.keyguard().Relock();
  session.Attempt();
  session.keyguard().UnlockWithCredential();
  session.keyguard().Relock();
  // Channel restored: the resync window covers the burned counters.
  session.scene().set_distance(0.3);
  const auto report = session.Attempt();
  EXPECT_TRUE(report.unlocked) << ToString(report.outcome);
}

TEST(FailureInjection, JammerOnPilotBins) {
  // Tones parked on pilot (not data) bins attack the channel estimator
  // itself; sub-channel selection cannot move pilots. The system may
  // abort (insufficient SNR) or succeed with a robust mode - it must not
  // unlock with BER above the bound.
  ScenarioConfig config = Base(9005);
  UnlockSession session(config);
  session.scene().SetJammer(audio::ToneJammer(
      {11, 19, 27}, config.phone.frame.fft_size(), /*spl_db=*/58.0));
  const auto report = session.Attempt();
  if (report.unlocked) {
    EXPECT_LE(report.token_ber, report.required_ber);
  }
}

TEST(FailureInjection, JammerEverywhereForcesRefusal) {
  // Six loud tones across the whole band: the channel is unusable; the
  // correct behaviour is refusal, not repeated failures that lock the
  // user out.
  ScenarioConfig config = Base(9006);
  UnlockSession session(config);
  session.scene().SetJammer(audio::ToneJammer(
      {9, 13, 17, 21, 25, 29}, config.phone.frame.fft_size(), 75.0));
  const auto report = session.Attempt();
  EXPECT_FALSE(report.unlocked);
  // A refusal (not a token failure) should not count a strike.
  if (report.outcome == UnlockOutcome::kInsufficientSnr ||
      report.outcome == UnlockOutcome::kNoPreamble) {
    EXPECT_EQ(session.keyguard().consecutive_failures(), 0u);
  }
}

TEST(FailureInjection, TruncatedPhase2RecordingRejected) {
  // The watch's phase-2 recording gets cut off (app killed mid-unlock):
  // substitute a truncated recording via the replay hook.
  ScenarioConfig config = Base(9007);
  UnlockSession session(config);
  AttackInjection tap;
  tap.eavesdrop_distance_m = 0.3;
  const auto first = session.Attempt(tap);
  ASSERT_TRUE(first.eavesdropped_recording.has_value());
  session.keyguard().Relock();

  audio::Samples truncated = *first.eavesdropped_recording;
  truncated.resize(truncated.size() / 3);
  AttackInjection inject;
  inject.replayed_phase2_recording = truncated;
  const auto report = session.Attempt(inject);
  EXPECT_FALSE(report.unlocked);
}

TEST(FailureInjection, WatchHearsOnlyNoiseBurst) {
  // A loud non-WearLock sound (door slam ~ impulse burst) instead of the
  // token: energy gate opens, preamble correlation must still reject.
  ScenarioConfig config = Base(9008);
  UnlockSession session(config);
  sim::Rng rng(9008);
  audio::Samples burst = rng.GaussianVector(12000, 0.05);
  AttackInjection inject;
  inject.replayed_phase2_recording = burst;
  const auto report = session.Attempt(inject);
  EXPECT_FALSE(report.unlocked);
}

TEST(FailureInjection, ZeroMotionSamplesHandled) {
  // Sensor API returns an empty trace (sensor off): the filter layer
  // throws internally on empty inputs, so the config must be able to
  // bypass it rather than crash the controller.
  ScenarioConfig config = Base(9009);
  config.motion_samples = 8;  // pathologically short but non-empty
  UnlockSession session(config);
  EXPECT_NO_THROW(session.Attempt());
}

}  // namespace
}  // namespace wearlock::protocol
