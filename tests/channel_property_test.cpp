// Property tests for the channel-hardening primitives (docs/channels.md):
// the drift estimator's accuracy envelope, carrier-sense sub-band
// reselection, the bounded MAC backoff ladder, and 2-pair MAC liveness.
//
// These pin the *component* contracts the end-to-end channel matrix
// relies on: if the drift estimator loses its +-2 ppm shift accuracy or
// the reselection stops steering around occupied bins, the matrix cells
// would still "pass" by failing closed - these tests catch the
// regression at the layer that caused it.
#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audio/impairments.h"
#include "audio/signal.h"
#include "dsp/resample.h"
#include "modem/drift.h"
#include "modem/modulator.h"
#include "protocol/acoustic_mac.h"
#include "protocol/phone_controller.h"
#include "protocol/session.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace wearlock {
namespace {

using audio::Samples;

constexpr std::size_t kLeadIn = 4096;
constexpr std::size_t kLeadOut = 2048;

/// A probe frame sitting `shift` samples late in quiet ambient - the
/// capture a drifted watch records (audio/impairments.h).
Samples ProbeInAmbient(const Samples& probe, std::size_t shift,
                       std::uint64_t seed) {
  sim::Rng rng(seed);
  Samples recording =
      rng.GaussianVector(kLeadIn + shift + probe.size() + kLeadOut, 1e-4);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    recording[kLeadIn + shift + i] += probe[i];
  }
  return recording;
}

// --- Accumulated-shift (SRO) estimation ------------------------------

TEST(DriftEstimatorTest, RecoversSroWithinTwoPpmAcrossTheEnvelope) {
  const modem::FrameSpec spec;
  const Samples probe = modem::Modulator(spec).MakeProbeFrame().samples;
  const modem::DriftConfig config;
  for (const double sro_ppm : {10.0, 30.0, 50.0, 80.0}) {
    SCOPED_TRACE("sro " + std::to_string(sro_ppm));
    // The accumulated offset over the clock age, exactly as the channel
    // model computes its window shift.
    const std::size_t shift = static_cast<std::size_t>(std::llround(
        sro_ppm * 1e-6 * config.clock_age_s * audio::kSampleRate));
    const Samples recording = ProbeInAmbient(probe, shift, /*seed=*/11);
    const modem::DriftEstimate est =
        modem::EstimateDrift(recording, spec, kLeadIn, config);
    ASSERT_TRUE(est.valid);
    EXPECT_NEAR(static_cast<double>(est.shift_samples),
                static_cast<double>(shift), 2.0);
    EXPECT_NEAR(est.sro_ppm, sro_ppm, 2.0);
  }
}

TEST(DriftEstimatorTest, UndriftedCaptureMeasuresNearZero) {
  const modem::FrameSpec spec;
  const Samples probe = modem::Modulator(spec).MakeProbeFrame().samples;
  const modem::DriftEstimate est = modem::EstimateDrift(
      ProbeInAmbient(probe, 0, /*seed=*/11), spec, kLeadIn);
  ASSERT_TRUE(est.valid);
  EXPECT_LE(std::abs(est.shift_samples), 2);
  // Below the product's min_compensate_ppm gate: a clean capture is
  // never resampled.
  EXPECT_LT(std::abs(est.rate_ppm),
            protocol::ChannelHardeningConfig{}.min_compensate_ppm);
}

// --- Warp-rate estimation (Doppler + SRO) ----------------------------

TEST(DriftEstimatorTest, PilotSpacingTracksWalkingSpeedWarp) {
  const modem::FrameSpec spec;
  const Samples probe = modem::Modulator(spec).MakeProbeFrame().samples;
  // +-3000/4000 ppm brackets a 1.0-1.4 m/s walker (v / 343 m/s).
  for (const double rate_ppm : {-4000.0, -3000.0, 3000.0, 4000.0}) {
    SCOPED_TRACE("rate " + std::to_string(rate_ppm));
    // The channel renders y[i] = x[i * rate] (modem/drift.h).
    const Samples warped =
        dsp::WarpTimeSinc(probe, 1.0 + rate_ppm * 1e-6);
    const modem::DriftEstimate est = modem::EstimateDrift(
        ProbeInAmbient(warped, 0, /*seed=*/11), spec, kLeadIn);
    ASSERT_TRUE(est.valid);
    EXPECT_GE(est.rate_score, modem::DriftConfig{}.min_rate_score);
    // One-sample lag over the 768-sample pilot span is ~1300 ppm;
    // parabolic refinement buys back the sub-sample part.
    EXPECT_NEAR(est.rate_ppm, rate_ppm, 400.0);
  }
}

TEST(DriftEstimatorTest, CompensateRateIsIdentityAtZero) {
  sim::Rng rng(3);
  const Samples x = rng.GaussianVector(2048, 0.1);
  EXPECT_EQ(modem::CompensateRate(x, 0.0), x);
}

TEST(DriftEstimatorTest, CompensateRateInvertsTheWarp) {
  const modem::FrameSpec spec;
  const Samples probe = modem::Modulator(spec).MakeProbeFrame().samples;
  const double rate_ppm = 4000.0;
  const Samples warped = dsp::WarpTimeSinc(probe, 1.0 + rate_ppm * 1e-6);
  const Samples restored = modem::CompensateRate(warped, rate_ppm);
  // The round trip restores the original timeline to interpolation
  // accuracy over the frame body (edges lose half a sinc kernel).
  const std::size_t n = std::min(restored.size(), probe.size());
  ASSERT_GT(n, spec.FrameSamples(spec.probe_symbols) - 64);
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 64; i + 64 < n; ++i) {
    err += (restored[i] - probe[i]) * (restored[i] - probe[i]);
    ref += probe[i] * probe[i];
  }
  ASSERT_GT(ref, 0.0);
  EXPECT_LT(std::sqrt(err / ref), 0.05);
}

// --- Carrier-sense sub-band reselection ------------------------------

/// Advance the impairments cursor until at least one neighbor is mid-
/// burst, then return an n-sample window of ambient + neighbor sum.
Samples CaptureWithNeighbors(audio::ChannelImpairments& chan, std::size_t n,
                             sim::Rng& ambient_rng) {
  for (int hop = 0; hop < 400; ++hop) {
    const Samples neighbor = chan.NeighborWaveform(n);
    double energy = 0.0;
    for (const double s : neighbor) energy += s * s;
    if (energy > 0.0) {
      Samples capture = ambient_rng.GaussianVector(n, 1e-4);
      for (std::size_t i = 0; i < n; ++i) capture[i] += neighbor[i];
      return capture;
    }
    chan.AdvanceCursor(n);
  }
  ADD_FAILURE() << "no neighbor became active within 400 windows";
  return ambient_rng.GaussianVector(n, 1e-4);
}

TEST(CarrierSenseTest, ReselectionAvoidsNeighborOccupiedBins) {
  const modem::FrameSpec spec;
  audio::ChannelImpairments chan(audio::ImpairmentPlan::Parse("pairs=2"),
                                 sim::Rng(42));
  ASSERT_TRUE(chan.has_neighbors());
  std::set<std::size_t> occupied;
  for (const auto& neighbor : chan.neighbors()) {
    occupied.insert(neighbor.bins.begin(), neighbor.bins.end());
  }
  ASSERT_FALSE(occupied.empty());

  sim::Rng ambient_rng(7);
  // Long enough to span every neighbor's duty cycle (periods top out at
  // 2.2 s), so the averaged sense spectrum carries *all* occupied bins,
  // not just the neighbor that happened to be mid-burst.
  const std::size_t window = 120000;
  const Samples capture = CaptureWithNeighbors(chan, window, ambient_rng);

  // The sense window sees the neighbors loud and clear...
  const protocol::CarrierSenseReport sense = protocol::SenseChannel(
      spec, capture, protocol::AcousticMacConfig{}.busy_over_floor_db);
  EXPECT_TRUE(sense.busy);
  ASSERT_EQ(sense.bin_power.size(), spec.fft_size());

  // ...and a quiet window does not.
  const protocol::CarrierSenseReport quiet = protocol::SenseChannel(
      spec, ambient_rng.GaussianVector(window, 1e-4),
      protocol::AcousticMacConfig{}.busy_over_floor_db);
  EXPECT_FALSE(quiet.busy);

  // Merge the sense spectrum into a flat probe-noise ranking exactly as
  // the attempt machine does (element-wise max) and reselect: no chosen
  // data bin may sit where a co-channel transmitter radiates.
  std::vector<double> noise(spec.fft_size(), 1e-10);
  for (std::size_t i = 0; i < noise.size(); ++i) {
    noise[i] = std::max(noise[i], sense.bin_power[i]);
  }
  const modem::SubchannelPlan chosen =
      modem::SelectSubchannels(spec.plan, noise);
  EXPECT_EQ(chosen.data.size(), spec.plan.data.size());
  for (const std::size_t bin : chosen.data) {
    EXPECT_EQ(occupied.count(bin), 0u)
        << "selected data bin " << bin << " is neighbor-occupied";
  }
}

// --- MAC backoff ladder ----------------------------------------------

TEST(AcousticMacTest, BackoffLadderIsBoundedExponential) {
  const protocol::AcousticMacConfig mac;
  EXPECT_DOUBLE_EQ(mac.BackoffMs(0), 80.0);
  EXPECT_DOUBLE_EQ(mac.BackoffMs(1), 160.0);
  EXPECT_DOUBLE_EQ(mac.BackoffMs(2), 320.0);
  EXPECT_DOUBLE_EQ(mac.BackoffMs(3), 640.0);
  EXPECT_DOUBLE_EQ(mac.BackoffMs(4), 1280.0);
  // Bounded: the cap holds no matter how deep the ladder goes.
  EXPECT_DOUBLE_EQ(mac.BackoffMs(5), 1280.0);
  EXPECT_DOUBLE_EQ(mac.BackoffMs(30), 1280.0);
}

// --- 2-pair MAC liveness ---------------------------------------------

TEST(AcousticMacTest, TwoContendingPairsNeverDeadlock) {
  // Two independent sessions, each simulating a 2-pair contended scene,
  // multiplexed on one virtual-clock event queue. Liveness: the queue
  // drains, both rounds emit their records, and both land on defined
  // outcomes - backoff exhaustion fails closed instead of spinning.
  sim::EventQueue queue;
  auto contended = [](std::uint64_t seed) {
    protocol::ScenarioConfig c = protocol::ScenarioConfig::Config1();
    c.scene.environment = audio::Environment::kQuietRoom;
    c.scene.distance_m = 0.3;
    c.impairments = audio::ImpairmentPlan::Parse("pairs=2");
    c.seed = seed;
    return c;
  };
  protocol::UnlockSession first(contended(100));
  protocol::UnlockSession second(contended(101));
  protocol::UnlockReport reports[2];
  bool done[2] = {false, false};
  first.StartAsync(queue, /*max_retries=*/2, {},
                   [&](const protocol::UnlockReport& r) {
                     reports[0] = r;
                     done[0] = true;
                   });
  second.StartAsync(queue, /*max_retries=*/2, {},
                    [&](const protocol::UnlockReport& r) {
                      reports[1] = r;
                      done[1] = true;
                    });
  queue.RunUntilIdle();
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_TRUE(first.async_done());
  EXPECT_TRUE(second.async_done());
  for (int i = 0; i < 2; ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    ASSERT_TRUE(done[i]);
    EXPECT_NE(ToString(reports[i].outcome), "?");
    EXPECT_EQ(reports[i].unlocked,
              reports[i].outcome == protocol::UnlockOutcome::kUnlocked);
  }
}

}  // namespace
}  // namespace wearlock
