// dsp::Fft / Ifft / FftInterpolate unit and property tests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "dsp/fft.h"
#include "sim/rng.h"

namespace wearlock::dsp {
namespace {

constexpr double kTol = 1e-9;

TEST(FftBasics, PowerOfTwoPredicate) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(256));
  EXPECT_FALSE(IsPowerOfTwo(255));
}

TEST(FftBasics, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(255), 256u);
  EXPECT_EQ(NextPowerOfTwo(257), 512u);
}

TEST(FftBasics, NextPowerOfTwoRejectsUnrepresentableSizes) {
  // The doubling loop would wrap to 0 for n above 2^63; that must be a
  // loud contract violation, not a silent infinite loop or bogus size.
  const std::size_t top = std::size_t{1} << 63;
  EXPECT_EQ(NextPowerOfTwo(top), top);  // largest representable result
  EXPECT_THROW(NextPowerOfTwo(top + 1), std::invalid_argument);
  EXPECT_THROW(NextPowerOfTwo(std::numeric_limits<std::size_t>::max()),
               std::invalid_argument);
}

TEST(FftBasics, RejectsNonPowerOfTwo) {
  ComplexVec x(6, Complex(1.0, 0.0));
  EXPECT_THROW(Fft(x), std::invalid_argument);
  EXPECT_THROW(Ifft(x), std::invalid_argument);
}

TEST(FftBasics, DcSignal) {
  ComplexVec x(8, Complex(1.0, 0.0));
  Fft(x);
  EXPECT_NEAR(x[0].real(), 8.0, kTol);
  for (std::size_t k = 1; k < 8; ++k) {
    EXPECT_NEAR(std::abs(x[k]), 0.0, kTol) << k;
  }
}

TEST(FftBasics, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  RealVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2.0 * std::numbers::pi * static_cast<double>(bin * i) /
                    static_cast<double>(n));
  }
  const ComplexVec spec = FftReal(x);
  EXPECT_NEAR(std::abs(spec[bin]), n / 2.0, 1e-8);
  EXPECT_NEAR(std::abs(spec[n - bin]), n / 2.0, 1e-8);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != bin && k != n - bin) {
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-8) << k;
    }
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  sim::Rng rng(GetParam());
  const std::size_t n = GetParam();
  ComplexVec x(n);
  for (auto& c : x) c = Complex(rng.Gaussian(), rng.Gaussian());
  ComplexVec y = x;
  Fft(y);
  Ifft(y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  sim::Rng rng(GetParam() + 99);
  const std::size_t n = GetParam();
  ComplexVec x(n);
  for (auto& c : x) c = Complex(rng.Gaussian(), rng.Gaussian());
  double time_energy = 0.0;
  for (const auto& c : x) time_energy += std::norm(c);
  ComplexVec spec = x;
  Fft(spec);
  double freq_energy = 0.0;
  for (const auto& c : spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-6 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 4, 8, 64, 256, 1024));

TEST(FftReal, HermitianSymmetry) {
  sim::Rng rng(5);
  RealVec x(128);
  for (auto& v : x) v = rng.Gaussian();
  const ComplexVec spec = FftReal(x);
  for (std::size_t k = 1; k < 64; ++k) {
    EXPECT_NEAR(spec[k].real(), spec[128 - k].real(), 1e-9);
    EXPECT_NEAR(spec[k].imag(), -spec[128 - k].imag(), 1e-9);
  }
}

TEST(IfftReal, InvertsFftReal) {
  sim::Rng rng(6);
  RealVec x(64);
  for (auto& v : x) v = rng.Gaussian();
  const RealVec y = IfftReal(FftReal(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-9);
}

TEST(FftInterpolate, PreservesOriginalSamplesOnIntegerUpsample) {
  // Band-limited interpolation must pass through the original points
  // when the ratio is an integer.
  const std::size_t m = 8, factor = 4;
  ComplexVec points(m);
  for (std::size_t i = 0; i < m; ++i) {
    points[i] = Complex(std::sin(0.7 * static_cast<double>(i)),
                        std::cos(0.3 * static_cast<double>(i)));
  }
  const ComplexVec dense = FftInterpolate(points, m * factor);
  ASSERT_EQ(dense.size(), m * factor);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(dense[i * factor].real(), points[i].real(), 1e-9) << i;
    EXPECT_NEAR(dense[i * factor].imag(), points[i].imag(), 1e-9) << i;
  }
}

TEST(FftInterpolate, InterpolatesSmoothFunctionAccurately) {
  // Sample a slow complex exponential; the interpolant should track it.
  const std::size_t m = 16, out = 64;
  ComplexVec points(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double t = 2.0 * std::numbers::pi * static_cast<double>(i) /
                     static_cast<double>(m);
    points[i] = std::polar(1.0, std::sin(t));
  }
  const ComplexVec dense = FftInterpolate(points, out);
  for (std::size_t j = 0; j < out; ++j) {
    const double t = 2.0 * std::numbers::pi * static_cast<double>(j) /
                     static_cast<double>(out);
    const Complex expected = std::polar(1.0, std::sin(t));
    EXPECT_NEAR(std::abs(dense[j] - expected), 0.0, 0.05) << j;
  }
}

TEST(FftInterpolate, ThrowsOnEmpty) {
  EXPECT_THROW(FftInterpolate({}, 8), std::invalid_argument);
}

TEST(FftInterpolate, NonPowerOfTwoSizesWork) {
  ComplexVec points(6, Complex(2.0, 0.0));
  const ComplexVec dense = FftInterpolate(points, 18);
  ASSERT_EQ(dense.size(), 18u);
  for (const auto& c : dense) EXPECT_NEAR(c.real(), 2.0, 1e-9);
}

}  // namespace
}  // namespace wearlock::dsp
