// Fleet campaign engine determinism (protocol/fleet.h): a campaign's
// rollup is a pure function of its spec - never of the thread count,
// the shard size, or the order shard sinks merge. Fixed host timing is
// armed so modeled compute times cannot absorb scheduler noise, which
// makes the gate a byte-diff (the same discipline as the telemetry
// gate in tools/ci.sh).
//
// Regenerate the golden after an intentional protocol/model change with
//   WEARLOCK_REGEN_FLEET_GOLDEN=1 ./tests/fleet_determinism_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "protocol/fleet.h"
#include "sim/device.h"

namespace wearlock {
namespace {

using protocol::CampaignResult;
using protocol::CampaignSpec;
using protocol::MakeShards;
using protocol::PlanSession;
using protocol::RunCampaign;
using protocol::RunShard;
using protocol::SessionPlan;
using protocol::ShardRange;
using protocol::ShardResult;

/// The mini-campaign every determinism check replays: all five cohort
/// axes populated (including a faulted and an attacked cell), small
/// enough for sanitizer legs.
CampaignSpec MiniSpec() {
  CampaignSpec spec;
  spec.sessions = 96;
  spec.seed = 20260808;
  spec.fault_specs = {"", "drop=0.3"};
  spec.attack_specs = {"", "replay@0.5"};
  spec.sessions_per_shard = 32;
  return spec;
}

std::string RollupBytes(const CampaignResult& result) {
  std::ostringstream os;
  result.sink.WriteJson(os);
  return os.str();
}

class FleetDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::SetFixedHostTimingMs(1.25); }
  void TearDown() override { sim::SetFixedHostTimingMs(-1.0); }
};

TEST_F(FleetDeterminismTest, PlanSessionIsAPureFunctionOfTheIndex) {
  const CampaignSpec spec = MiniSpec();
  ASSERT_EQ(spec.CellCount(), 48u);

  // Consecutive indices cycle every cell before any repeats, seeds are
  // all distinct, and the impostor cadence lands where it should.
  std::set<std::string> cohort_shapes;
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < spec.CellCount(); ++i) {
    const SessionPlan plan = PlanSession(spec, i);
    std::ostringstream shape;
    shape << plan.scenario.label << "|"
          << audio::ToString(plan.scenario.scene.environment) << "|"
          << plan.scenario.scene.distance_m << "|"
          << plan.scenario.faults.spec << "|" << plan.attack.spec;
    cohort_shapes.insert(shape.str());
    seeds.insert(plan.scenario.seed);
    EXPECT_EQ(plan.scenario.same_body,
              i % spec.impostor_every != spec.impostor_every - 1);
  }
  EXPECT_EQ(cohort_shapes.size(), spec.CellCount());
  EXPECT_EQ(seeds.size(), spec.CellCount());

  // Replaying any index gives the identical plan (sharding never feeds
  // into it).
  for (std::size_t i : {0u, 7u, 47u, 48u, 95u}) {
    const SessionPlan a = PlanSession(spec, i);
    const SessionPlan b = PlanSession(spec, i);
    EXPECT_EQ(a.scenario.seed, b.scenario.seed);
    EXPECT_EQ(a.scenario.label, b.scenario.label);
    EXPECT_EQ(a.attack.spec, b.attack.spec);
  }
}

TEST_F(FleetDeterminismTest, RollupBytesIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = MiniSpec();
  const CampaignResult serial = RunCampaign(spec, 1);
  EXPECT_EQ(serial.sessions, spec.sessions);
  EXPECT_EQ(serial.shards, 3u);
  EXPECT_GT(serial.queue_events, serial.sessions)
      << "multiplexed sessions must each contribute multiple slices";

  const std::string golden = RollupBytes(serial);
  for (std::size_t threads : {2u, 8u}) {
    const CampaignResult wide = RunCampaign(spec, threads);
    EXPECT_EQ(RollupBytes(wide), golden) << threads << " threads";
    EXPECT_EQ(wide.sessions, serial.sessions);
    EXPECT_EQ(wide.queue_events, serial.queue_events);
  }
}

TEST_F(FleetDeterminismTest, RollupBytesIdenticalAcrossShardSizes) {
  // Shard boundaries only decide which queue multiplexes a session,
  // never what the session does - including the ragged-final-shard and
  // one-session-per-shard extremes.
  CampaignSpec spec = MiniSpec();
  const std::string golden = RollupBytes(RunCampaign(spec, 2));
  for (std::size_t per_shard : {7u, 96u, 1u}) {
    spec.sessions_per_shard = per_shard;
    EXPECT_EQ(RollupBytes(RunCampaign(spec, 2)), golden)
        << per_shard << " sessions per shard";
  }
}

TEST_F(FleetDeterminismTest, ShardMergeOrderIsIrrelevant) {
  const CampaignSpec spec = MiniSpec();
  const std::vector<ShardRange> shards =
      MakeShards(spec.sessions, spec.sessions_per_shard);
  ASSERT_EQ(shards.size(), 3u);

  // Merge the shard sinks forward and reversed; same bytes.
  std::vector<ShardResult> results;
  for (const ShardRange& range : shards) {
    results.push_back(RunShard(spec, range));
  }
  CampaignResult forward;
  for (ShardResult& shard : results) forward.sink.Merge(shard.sink);
  CampaignResult reversed;
  for (std::size_t i = results.size(); i > 0; --i) {
    reversed.sink.Merge(results[i - 1].sink);
  }
  EXPECT_EQ(RollupBytes(forward), RollupBytes(reversed));
  EXPECT_EQ(RollupBytes(forward), RollupBytes(RunCampaign(spec, 1)));
}

TEST_F(FleetDeterminismTest, MatchesCommittedGoldenRollup) {
  const std::string bytes = RollupBytes(RunCampaign(MiniSpec(), 2));
  const std::string golden_path =
      std::string(WEARLOCK_FLEET_GOLDEN_DIR) + "/fleet_rollup.json";
  if (std::getenv("WEARLOCK_REGEN_FLEET_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << bytes;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path
                         << " (regen with WEARLOCK_REGEN_FLEET_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(bytes, golden.str())
      << "campaign rollup drifted from the committed golden; if the "
         "change is intentional, regen with WEARLOCK_REGEN_FLEET_GOLDEN=1";
}

}  // namespace
}  // namespace wearlock
