// sim::ParallelExecutor determinism contract.
//
// The whole point of the executor is that a sweep's numbers are a pure
// function of (base_seed, task_index) - never of the thread count or of
// scheduling order. These tests pin that contract: bit-identical doubles
// across pools of 1, 2 and 8 workers, stable nested forks, index-ordered
// exception propagation, and the WEARLOCK_THREADS override.
#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include "sim/executor.h"
#include "sim/rng.h"

namespace wearlock {
namespace {

// A task payload with enough internal structure to expose any seed or
// ordering bug: chained Gaussian draws, a fork, and data-dependent use.
double Workload(sim::TaskContext& ctx) {
  double acc = 0.0;
  for (int i = 0; i < 50; ++i) acc += ctx.rng.Gaussian(1.0);
  sim::Rng forked = ctx.rng.Fork();
  for (int i = 0; i < 10; ++i) acc *= 1.0 + 0.01 * forked.Uniform(-1.0, 1.0);
  return acc + static_cast<double>(ctx.index);
}

std::vector<std::uint64_t> BitPatterns(const std::vector<double>& xs) {
  std::vector<std::uint64_t> bits;
  bits.reserve(xs.size());
  for (double x : xs) bits.push_back(std::bit_cast<std::uint64_t>(x));
  return bits;
}

TEST(ParallelExecutor, BitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kSeed = 0xABCDEF;

  std::vector<std::vector<std::uint64_t>> runs;
  for (std::size_t threads : {1u, 2u, 8u}) {
    sim::ParallelExecutor executor(threads);
    EXPECT_EQ(executor.thread_count(), threads);
    const auto results = executor.Map(kTasks, kSeed, Workload);
    ASSERT_EQ(results.size(), kTasks);
    runs.push_back(BitPatterns(results));
  }
  EXPECT_EQ(runs[0], runs[1]) << "1-thread vs 2-thread results differ";
  EXPECT_EQ(runs[0], runs[2]) << "1-thread vs 8-thread results differ";
}

TEST(ParallelExecutor, RunGridMatchesMapAndLabelsCells) {
  constexpr std::size_t kRows = 5, kCols = 7;
  sim::ParallelExecutor executor(4);

  struct Cell {
    std::size_t row, col, index;
    double value;
  };
  const auto cells = executor.RunGrid(
      kRows, kCols, /*base_seed=*/99,
      [](const sim::ParallelExecutor::GridPoint& point, sim::Rng& rng) {
        return Cell{point.row, point.col, point.index, rng.Gaussian(1.0)};
      });
  ASSERT_EQ(cells.size(), kRows * kCols);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].row, i / kCols);
    EXPECT_EQ(cells[i].col, i % kCols);
  }

  // The grid wrapper must draw from the same (base_seed, index) stream
  // as a plain Map of the same size.
  const auto flat = executor.Map(
      kRows * kCols, /*base_seed=*/99,
      [](sim::TaskContext& ctx) { return ctx.rng.Gaussian(1.0); });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(cells[i].value),
              std::bit_cast<std::uint64_t>(flat[i]))
        << "cell " << i;
  }
}

TEST(ParallelExecutor, NestedForksAreStable) {
  // Forking inside a task must also be schedule-independent: the fork
  // chain is seeded purely by the task's own rng state.
  auto chain = [](sim::TaskContext& ctx) {
    sim::Rng a = ctx.rng.Fork();
    sim::Rng b = a.Fork();
    sim::Rng c = b.Fork();
    return c.Gaussian(1.0) + b.Uniform(0.0, 1.0) +
           static_cast<double>(a.UniformInt(0, 1000));
  };
  sim::ParallelExecutor serial(1), wide(8);
  const auto lhs = serial.Map(32, 7, chain);
  const auto rhs = wide.Map(32, 7, chain);
  EXPECT_EQ(BitPatterns(lhs), BitPatterns(rhs));
}

TEST(ParallelExecutor, EmptyAndSingleTaskBatches) {
  sim::ParallelExecutor executor(4);
  const auto none = executor.Map(
      0, 1, [](sim::TaskContext&) { return 1.0; });
  EXPECT_TRUE(none.empty());
  const auto one = executor.Map(
      1, 1, [](sim::TaskContext& ctx) { return ctx.rng.Uniform(0.0, 1.0); });
  ASSERT_EQ(one.size(), 1u);

  // An empty grid in either dimension is an empty batch, not a hang.
  const auto grid = executor.RunGrid(
      0, 5, 1,
      [](const sim::ParallelExecutor::GridPoint&, sim::Rng&) { return 0; });
  EXPECT_TRUE(grid.empty());
}

TEST(ParallelExecutor, ExecutorIsReusableAcrossBatches) {
  sim::ParallelExecutor executor(3);
  std::vector<double> previous;
  for (int batch = 0; batch < 5; ++batch) {
    const auto results = executor.Map(20, 11, Workload);
    ASSERT_EQ(results.size(), 20u);
    if (!previous.empty()) {
      EXPECT_EQ(BitPatterns(results), BitPatterns(previous))
          << "same seed must reproduce across batches on one pool";
    }
    previous = results;
  }
}

TEST(ParallelExecutor, LowestIndexExceptionWins) {
  sim::ParallelExecutor executor(8);
  // Several tasks throw; the rethrown exception must always be the one
  // from the lowest failing index, regardless of completion order.
  for (int repeat = 0; repeat < 3; ++repeat) {
    try {
      (void)executor.Map(64, 1, [](sim::TaskContext& ctx) {
        if (ctx.index % 7 == 3) {  // fails at 3, 10, 17, ...
          throw std::runtime_error("task " + std::to_string(ctx.index));
        }
        return 0.0;
      });
      FAIL() << "expected Map to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3");
    }
  }
  // The pool must still be usable after a throwing batch.
  const auto ok = executor.Map(
      4, 1, [](sim::TaskContext&) { return 1.0; });
  EXPECT_EQ(ok.size(), 4u);
}

TEST(ParallelExecutor, ChunkSizePartitionsOversubscribedPools) {
  using E = sim::ParallelExecutor;
  // Oversubscribed (workers > cores): near-static partition, so an
  // 8-worker pool on 1 core claims the whole batch in <= 8 chunks.
  EXPECT_EQ(E::ChunkSize(12, 8, 1), 2u);
  EXPECT_EQ(E::ChunkSize(100, 8, 4), 13u);
  EXPECT_EQ(E::ChunkSize(7, 8, 1), 1u);
  // At or under the core count: ~4 chunks per worker.
  EXPECT_EQ(E::ChunkSize(64, 2, 8), 8u);
  EXPECT_EQ(E::ChunkSize(100, 4, 8), 6u);
  // Small batches and single workers degenerate to one claim each.
  EXPECT_EQ(E::ChunkSize(12, 4, 8), 1u);
  EXPECT_EQ(E::ChunkSize(12, 1, 1), 12u);
  EXPECT_EQ(E::ChunkSize(1, 8, 8), 1u);
  EXPECT_EQ(E::ChunkSize(0, 8, 8), 1u);
  // A zero hardware report (the standard allows it) counts as one core.
  EXPECT_EQ(E::ChunkSize(16, 4, 0), 4u);
}

TEST(ParallelExecutor, ChunkedDispatchStaysBitIdentical) {
  // Chunk size is pure dispatch granularity: uneven batch sizes that
  // exercise ragged final chunks across thread counts must still give
  // byte-identical results (including more workers than tasks).
  for (std::size_t tasks : {3u, 13u, 61u}) {
    std::vector<std::vector<std::uint64_t>> runs;
    for (std::size_t threads : {1u, 2u, 8u}) {
      sim::ParallelExecutor executor(threads);
      runs.push_back(BitPatterns(executor.Map(tasks, 0xFEEDu, Workload)));
    }
    EXPECT_EQ(runs[0], runs[1]) << tasks << " tasks, 1 vs 2 threads";
    EXPECT_EQ(runs[0], runs[2]) << tasks << " tasks, 1 vs 8 threads";
  }
}

TEST(ParallelExecutor, TaskSeedsAreDistinct) {
  // SplitMix64 over (base_seed, index): no collisions across a large
  // index range, and adjacent base seeds do not alias adjacent indices.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ull, 1ull, 0xDEADBEEFull}) {
    for (std::uint64_t i = 0; i < 10'000; ++i) {
      seeds.insert(sim::ParallelExecutor::TaskSeed(base, i));
    }
  }
  EXPECT_EQ(seeds.size(), 30'000u);
}

TEST(ParallelExecutor, WearlockThreadsEnvOverride) {
  const char* saved = std::getenv("WEARLOCK_THREADS");
  const std::string saved_value = saved ? saved : "";

  ::setenv("WEARLOCK_THREADS", "3", 1);
  EXPECT_EQ(sim::ParallelExecutor::DefaultThreadCount(), 3u);
  sim::ParallelExecutor from_env(0);
  EXPECT_EQ(from_env.thread_count(), 3u);

  // Invalid or non-positive values fall back to hardware concurrency.
  ::setenv("WEARLOCK_THREADS", "banana", 1);
  EXPECT_GE(sim::ParallelExecutor::DefaultThreadCount(), 1u);
  ::setenv("WEARLOCK_THREADS", "0", 1);
  EXPECT_GE(sim::ParallelExecutor::DefaultThreadCount(), 1u);

  if (saved) {
    ::setenv("WEARLOCK_THREADS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("WEARLOCK_THREADS");
  }
}

}  // namespace
}  // namespace wearlock
