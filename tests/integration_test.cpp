// End-to-end integration tests: complete unlock sessions across
// environments, every protocol filter firing for the right reason, the
// attack suite, and offloading consistency.
#include <gtest/gtest.h>

#include "protocol/attacks.h"
#include "protocol/session.h"

namespace wearlock::protocol {
namespace {

ScenarioConfig BaseScenario(std::uint64_t seed = 1) {
  ScenarioConfig config = ScenarioConfig::Config1();
  config.scene.distance_m = 0.3;
  config.seed = seed;
  return config;
}

TEST(UnlockSession, QuietRoomUnlocks) {
  UnlockSession session(BaseScenario(101));
  const UnlockReport report = session.Attempt();
  EXPECT_TRUE(report.unlocked) << ToString(report.outcome);
  EXPECT_EQ(session.keyguard().state(), LockState::kUnlocked);
  ASSERT_TRUE(report.mode.has_value());
  EXPECT_LE(report.token_ber, report.required_ber);
  EXPECT_GT(report.preamble_score, 0.05);
  EXPECT_GT(report.timings.total_ms(), 0.0);
}

class EnvironmentUnlock
    : public ::testing::TestWithParam<audio::Environment> {};

TEST_P(EnvironmentUnlock, MajoritySucceedsAcrossEnvironments) {
  ScenarioConfig config = BaseScenario(200);
  config.scene.environment = GetParam();
  UnlockSession session(config);
  int ok = 0;
  const int rounds = 5;
  for (int i = 0; i < rounds; ++i) {
    session.keyguard().Relock();
    if (session.Attempt().unlocked) ++ok;
  }
  // The paper's case-study average is 90%; noisy rooms may drop rounds
  // (falling back to PIN), but most attempts must succeed.
  EXPECT_GE(ok, 3) << audio::ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Envs, EnvironmentUnlock,
    ::testing::Values(audio::Environment::kQuietRoom,
                      audio::Environment::kOffice,
                      audio::Environment::kClassroom,
                      audio::Environment::kGroceryStore),
    [](const auto& info) {
      std::string name = audio::ToString(info.param);
      name.erase(std::remove(name.begin(), name.end(), ' '), name.end());
      return name;
    });

TEST(UnlockSession, AdaptiveModeTracksNoise) {
  // The volume rule saturates in loud rooms, so delivered SNR (and hence
  // the chosen mode order) drops with environment noise: quiet rooms run
  // 8PSK, the loud grocery store falls back to QPSK at least sometimes.
  auto count_8psk = [](audio::Environment env) {
    ScenarioConfig config = BaseScenario(300);
    config.scene.environment = env;
    UnlockSession session(config);
    int n = 0;
    for (int i = 0; i < 6; ++i) {
      session.keyguard().Relock();
      const auto r = session.Attempt();
      if (r.mode && *r.mode == modem::Modulation::k8Psk) ++n;
    }
    return n;
  };
  const int quiet_8psk = count_8psk(audio::Environment::kQuietRoom);
  const int noisy_8psk = count_8psk(audio::Environment::kGroceryStore);
  EXPECT_GE(quiet_8psk, 5);
  EXPECT_LT(noisy_8psk, quiet_8psk);
}

TEST(UnlockSession, NoWirelessLinkShortCircuits) {
  ScenarioConfig config = BaseScenario(400);
  config.wireless_connected = false;
  UnlockSession session(config);
  const auto report = session.Attempt();
  EXPECT_EQ(report.outcome, UnlockOutcome::kNoWirelessLink);
  EXPECT_FALSE(report.unlocked);
  // Nothing was computed or transmitted.
  EXPECT_EQ(report.timings.total_ms(), 0.0);
}

TEST(UnlockSession, DifferentRoomsCaughtByAmbientFilter) {
  ScenarioConfig config = BaseScenario(500);
  config.scene.co_located = false;
  config.same_body = false;
  config.phone.enable_sensor_filter = false;  // isolate the ambient filter
  UnlockSession session(config);
  const auto report = session.Attempt();
  EXPECT_EQ(report.outcome, UnlockOutcome::kAmbientMismatch);
  EXPECT_LT(report.ambient_similarity, config.phone.ambient.threshold);
}

TEST(UnlockSession, DifferentBodiesCaughtByMotionFilter) {
  ScenarioConfig config = BaseScenario(600);
  config.same_body = false;
  config.scene.co_located = true;  // same room, so ambient passes
  UnlockSession session(config);
  const auto report = session.Attempt();
  EXPECT_EQ(report.outcome, UnlockOutcome::kMotionMismatch);
  ASSERT_TRUE(report.dtw_score.has_value());
  EXPECT_GT(*report.dtw_score, config.phone.sensor_thresholds.d_high);
}

TEST(UnlockSession, SensorSkipPolicyFastPath) {
  ScenarioConfig config = BaseScenario(700);
  config.phone.sensor_policy = SensorSkipPolicy::kSkipSecondPhase;
  config.activity = sensors::Activity::kWalking;  // lowest DTW scores
  UnlockSession session(config);
  const auto report = session.Attempt();
  // Walking co-located scores usually fall under d_low: Phase 2 skipped,
  // no acoustic token round at all.
  if (report.dtw_score && *report.dtw_score <
                              config.phone.sensor_thresholds.d_low) {
    EXPECT_TRUE(report.unlocked);
    EXPECT_FALSE(report.mode.has_value());
    EXPECT_EQ(report.timings.phase2_audio_ms, 0.0);
  }
}

TEST(UnlockSession, NlosRelaxesBerBound) {
  ScenarioConfig config = BaseScenario(800);
  config.scene.propagation = audio::PropagationSpec::BodyBlockedNlos();
  UnlockSession session(config);
  const auto report = session.Attempt();
  if (report.nlos && report.outcome != UnlockOutcome::kNoPreamble &&
      report.outcome != UnlockOutcome::kInsufficientSnr) {
    EXPECT_NEAR(report.required_ber, config.phone.nlos_relaxed_ber, 1e-9);
  }
}

TEST(UnlockSession, NlosAbortPolicy) {
  ScenarioConfig config = BaseScenario(900);
  config.scene.propagation = audio::PropagationSpec::BodyBlockedNlos();
  config.phone.nlos_policy = NlosPolicy::kAbort;
  UnlockSession session(config);
  const auto report = session.Attempt();
  // Either the probe is lost entirely or the NLOS detector fires.
  if (report.nlos) {
    EXPECT_EQ(report.outcome, UnlockOutcome::kNlosAborted);
  }
}

TEST(UnlockSession, ThreeFailuresLockOut) {
  // Out-of-range watch: every phase-2 delivery fails.
  ScenarioConfig config = BaseScenario(1000);
  config.scene.distance_m = 1.8;
  config.phone.enable_sensor_filter = false;
  UnlockSession session(config);
  int attempts = 0;
  while (session.keyguard().CanAttemptWearlock() && attempts < 10) {
    session.Attempt();
    ++attempts;
  }
  // Token rejections count toward the 3-strike policy; aborts (e.g.
  // insufficient SNR) do not, so allow a few extra rounds.
  EXPECT_EQ(session.keyguard().state() == LockState::kLockedOut,
            session.keyguard().consecutive_failures() >= 3);
  const auto report = session.Attempt();
  if (session.keyguard().state() == LockState::kLockedOut) {
    EXPECT_EQ(report.outcome, UnlockOutcome::kLockedOut);
  }
}

TEST(UnlockSession, OffloadSitesAgreeOnOutcome) {
  // The same scenario processed locally vs. offloaded must reach the same
  // unlock decision (the DSP is shared code; only cost accounting moves).
  for (auto site : {ProcessingSite::kWatchLocal,
                    ProcessingSite::kOffloadToPhone}) {
    ScenarioConfig config = BaseScenario(1100);
    config.processing = site;
    UnlockSession session(config);
    const auto report = session.Attempt();
    EXPECT_TRUE(report.unlocked) << ToString(site);
  }
}

TEST(UnlockSession, LocalProcessingCostsWatchMore) {
  ScenarioConfig local_cfg = BaseScenario(1200);
  local_cfg.processing = ProcessingSite::kWatchLocal;
  UnlockSession local_session(local_cfg);
  const auto local = local_session.Attempt();

  ScenarioConfig remote_cfg = BaseScenario(1200);
  remote_cfg.processing = ProcessingSite::kOffloadToPhone;
  remote_cfg.radio = sim::Radio::kWifi;
  UnlockSession remote_session(remote_cfg);
  const auto remote = remote_session.Attempt();

  ASSERT_TRUE(local.unlocked);
  ASSERT_TRUE(remote.unlocked);
  EXPECT_GT(local.watch_energy_mj, remote.watch_energy_mj);
  EXPECT_GT(local.timings.phase1_compute_ms + local.timings.phase2_compute_ms,
            remote.timings.phase1_compute_ms + remote.timings.phase2_compute_ms);
}

TEST(UnlockSession, ClockAdvancesWithAttempt) {
  UnlockSession session(BaseScenario(1300));
  const auto report = session.Attempt();
  EXPECT_NEAR(session.clock().now(), report.timings.total_ms(),
              report.timings.total_ms() * 0.01 + 1e-6);
}

TEST(UnlockSession, RetriesRecoverTransientFailures) {
  // A marginal channel: some attempts fail on token BER, and a retry or
  // two usually lands one (the case-study usage pattern).
  ScenarioConfig config = BaseScenario(1400);
  config.scene.environment = audio::Environment::kGroceryStore;
  UnlockSession session(config);
  int ok = 0;
  for (int i = 0; i < 5; ++i) {
    session.keyguard().Relock();
    if (!session.keyguard().CanAttemptWearlock()) {
      session.keyguard().UnlockWithCredential();
      session.keyguard().Relock();
    }
    if (session.AttemptWithRetries(2).unlocked) ++ok;
  }
  EXPECT_GE(ok, 4);
}

TEST(UnlockSession, RetriesStopOnStructuralRefusal) {
  ScenarioConfig config = BaseScenario(1401);
  config.wireless_connected = false;
  UnlockSession session(config);
  const auto report = session.AttemptWithRetries(5);
  EXPECT_EQ(report.outcome, UnlockOutcome::kNoWirelessLink);
}

TEST(UnlockSession, TraceRecordsTheProtocolSteps) {
  UnlockSession session(BaseScenario(1402));
  const auto report = session.Attempt();
  ASSERT_TRUE(report.unlocked);
  // The trace must contain the protocol's major steps in order.
  std::vector<std::string> steps;
  for (const auto& e : report.trace) steps.push_back(e.step);
  const std::vector<std::string> expected = {
      "link-check", "volume-rule", "probe-analysis", "ambient-filter",
      "motion-filter", "range-gate", "mode-select", "token-validate"};
  ASSERT_EQ(steps.size(), expected.size());
  EXPECT_EQ(steps, expected);
  // Timestamps never go backwards.
  for (std::size_t i = 1; i < report.trace.size(); ++i) {
    EXPECT_GE(report.trace[i].at_ms, report.trace[i - 1].at_ms);
  }
}

// ----------------------------------------------------------------- attacks
TEST(Attacks, BruteForceHitsLockout) {
  sim::Rng rng(71);
  OtpService otp({'s', 'e', 'c', 'r', 'e', 't'});
  Keyguard keyguard;
  const auto result = BruteForceAttack(otp, keyguard, rng);
  EXPECT_FALSE(result.succeeded);
  EXPECT_TRUE(result.locked_out);
  EXPECT_EQ(result.attempts, 3u);
}

TEST(Attacks, CoLocatedFailsBeyondSecureRange) {
  const auto near = CoLocatedAttack(BaseScenario(72), 0.5);
  EXPECT_TRUE(near.unlocked);  // inside the secure range: modem closes
  const auto far = CoLocatedAttack(BaseScenario(72), 2.2);
  EXPECT_FALSE(far.unlocked);
  EXPECT_TRUE(far.outcome == UnlockOutcome::kTokenRejected ||
              far.outcome == UnlockOutcome::kInsufficientSnr ||
              far.outcome == UnlockOutcome::kNoPreamble)
      << ToString(far.outcome);
}

TEST(Attacks, ReplayDefeatedByTimingWindow) {
  ScenarioConfig config = BaseScenario(73);
  const auto result = ReplayAttack(config, 0.5, /*replay_delay_ms=*/900.0);
  ASSERT_TRUE(result.capture_succeeded);
  EXPECT_FALSE(result.unlocked);
  EXPECT_EQ(result.replay_outcome, UnlockOutcome::kTimingViolation);
}

TEST(Attacks, InstantReplayStillFailsOnStaleToken) {
  // Even a hypothetical zero-latency replay dies: the OTP counter moved.
  ScenarioConfig config = BaseScenario(74);
  const auto result = ReplayAttack(config, 0.4, /*replay_delay_ms=*/0.0);
  ASSERT_TRUE(result.capture_succeeded);
  EXPECT_FALSE(result.unlocked);
  EXPECT_EQ(result.replay_outcome, UnlockOutcome::kTokenRejected);
  EXPECT_GT(result.replay_token_ber, 0.1);
}

}  // namespace
}  // namespace wearlock::protocol
