// Golden-vector regression test for the modem's TX/RX DSP chain.
//
// The committed table pins an FNV-1a checksum of the exact modulated
// waveform (IEEE-754 bit patterns) and of the clean-loopback demodulated
// bits, per modulation, at a fixed seed. Any change to windowing, pilot
// values, constellation maps, CP handling, scaling, or the FFT shifts a
// checksum and fails here - which is the point: DSP changes must be
// intentional.
//
// To regenerate after an intentional change:
//   wearlock_modem_cli --regen-golden
// and paste the printed rows over kGolden below.
#include <gtest/gtest.h>

#include "modem/golden.h"

namespace wearlock {
namespace {

using modem::Modulation;

struct GoldenRow {
  Modulation modulation;
  std::uint64_t waveform_fnv;
  std::uint64_t bits_fnv;
};

// seed 0x601D, 192 payload bits, clean loopback
constexpr GoldenRow kGolden[] = {
    {Modulation::kBask, 0xDF179D8C48E0C571ull, 0xF2CC34840DE541ADull},
    {Modulation::kBpsk, 0x87850AA2550A3342ull, 0xF2CC34840DE541ADull},
    {Modulation::kQask, 0x098FA2D67E7FBD69ull, 0xF2CC34840DE541ADull},
    {Modulation::kQpsk, 0x548F49026D1E2DD0ull, 0xF2CC34840DE541ADull},
    {Modulation::k8Psk, 0xB85F99844553C92Cull, 0xF2CC34840DE541ADull},
    {Modulation::k16Qam, 0x8249816924183FCBull, 0xF2CC34840DE541ADull},
};

TEST(ModemGolden, WaveformAndLoopbackChecksumsMatchCommittedTable) {
  for (const GoldenRow& row : kGolden) {
    const auto golden =
        modem::ComputeGoldenVector(row.modulation, modem::kGoldenSeed);
    ASSERT_TRUE(golden.demodulated)
        << ToString(row.modulation) << ": clean loopback failed to demodulate";
    EXPECT_EQ(golden.waveform_fnv, row.waveform_fnv)
        << ToString(row.modulation)
        << ": modulated waveform changed; if intentional, run "
           "`wearlock_modem_cli --regen-golden` and update this table";
    EXPECT_EQ(golden.bits_fnv, row.bits_fnv)
        << ToString(row.modulation)
        << ": clean-loopback demodulated bits changed; if intentional, run "
           "`wearlock_modem_cli --regen-golden` and update this table";
  }
}

TEST(ModemGolden, CleanLoopbackRecoversIdenticalPayloadEverywhere) {
  // Same seed -> same payload bits; a clean loopback must recover them
  // bit-exactly for every modulation, so the bits checksums all agree.
  for (std::size_t i = 1; i < std::size(kGolden); ++i) {
    EXPECT_EQ(kGolden[i].bits_fnv, kGolden[0].bits_fnv)
        << ToString(kGolden[i].modulation);
  }
}

TEST(ModemGolden, RepeatedRunsOnAWarmWorkspaceStayBitIdentical) {
  // The modem's hot paths borrow scratch from this thread's
  // dsp::Workspace. Runs 2..4 reuse (and may shrink into) buffers the
  // first run grew, so any dependence on stale slot contents or on slot
  // capacity would move a checksum here.
  const auto first =
      modem::ComputeGoldenVector(Modulation::k16Qam, modem::kGoldenSeed);
  for (int run = 0; run < 3; ++run) {
    const auto again =
        modem::ComputeGoldenVector(Modulation::k16Qam, modem::kGoldenSeed);
    EXPECT_EQ(again.waveform_fnv, first.waveform_fnv) << run;
    EXPECT_EQ(again.bits_fnv, first.bits_fnv) << run;
    // Interleave a different modulation so the slots are resized between
    // repeats, not just rewritten with identical lengths.
    modem::ComputeGoldenVector(Modulation::kBask, modem::kGoldenSeed + 1);
  }
}

TEST(ModemGolden, ChecksumsAreSeedSensitive) {
  // A different seed must move the waveform checksum - guards against the
  // checksum degenerating (e.g. hashing an empty span).
  const auto a = modem::ComputeGoldenVector(Modulation::kQpsk, 1);
  const auto b = modem::ComputeGoldenVector(Modulation::kQpsk, 2);
  EXPECT_NE(a.waveform_fnv, b.waveform_fnv);
  EXPECT_NE(a.bits_fnv, b.bits_fnv);
  EXPECT_GT(a.n_samples, 0u);
}

}  // namespace
}  // namespace wearlock
