// Determinism and accuracy contract of the fleet-telemetry aggregates
// (obs/sketch.h): ExactSum must be order- and shard-invariant at the
// bit level, Sketch merges must commute byte-identically, and quantile
// estimates must honour the relative-error bound against an exact
// sample quantile. These are the properties the fleet-campaign gate
// (fleet_campaign_test, tools/ci.sh) builds on.
#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/sketch.h"

namespace wearlock::obs {
namespace {

std::string JsonOf(const Sketch& sketch) {
  std::ostringstream os;
  sketch.WriteJson(os);
  return os.str();
}

/// A mixed-magnitude sample set that defeats naive summation: huge
/// values that cancel, subnormals, and ordinary latencies.
std::vector<double> AdversarialValues() {
  return {1e308,
          -1e308,
          1.0,
          -1.0,
          5e-324,                                    // smallest subnormal
          -5e-324,
          std::numeric_limits<double>::denorm_min(),
          1e-300,
          3.14159,
          -2.71828,
          1e17,
          -1e17,
          0.1,
          0.2,
          0.3};
}

/// Deterministic pseudo-latency samples (log-normal-ish spread).
std::vector<double> LatencySamples(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::lognormal_distribution<double> dist(6.0, 0.8);  // ~400 ms median
  std::vector<double> out(n);
  for (double& v : out) v = dist(rng);
  return out;
}

TEST(ExactSumTest, OrderOfAdditionNeverChangesTheState) {
  std::vector<double> values = AdversarialValues();
  ExactSum forward;
  for (double v : values) forward.Add(v);

  std::vector<double> reversed(values.rbegin(), values.rend());
  ExactSum backward;
  for (double v : reversed) backward.Add(v);

  std::mt19937 rng(7);
  std::shuffle(values.begin(), values.end(), rng);
  ExactSum shuffled;
  for (double v : values) shuffled.Add(v);

  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward, shuffled);
  EXPECT_EQ(forward.Value(), backward.Value());
  EXPECT_EQ(forward.Value(), shuffled.Value());
}

TEST(ExactSumTest, CancellationIsExact) {
  // 1e308 + 1.0 - 1e308 == 1.0 exactly; naive double summation loses
  // the 1.0 entirely. This is the shard-count variance root cause the
  // superaccumulator exists to kill.
  ExactSum sum;
  sum.Add(1e308);
  sum.Add(1.0);
  sum.Add(-1e308);
  EXPECT_EQ(sum.Value(), 1.0);
}

TEST(ExactSumTest, ShardPartitionAndMergeOrderAreInvariant) {
  const std::vector<double> values = LatencySamples(10000, 11);
  ExactSum whole;
  for (double v : values) whole.Add(v);

  for (const std::size_t shards : {2u, 8u}) {
    std::vector<ExactSum> parts(shards);
    for (std::size_t i = 0; i < values.size(); ++i) {
      parts[i % shards].Add(values[i]);
    }
    // Merge left-to-right...
    ExactSum ltr;
    for (const ExactSum& part : parts) ltr.Merge(part);
    // ...and right-to-left.
    ExactSum rtl;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) rtl.Merge(*it);
    EXPECT_EQ(whole, ltr) << shards << " shards (left-to-right)";
    EXPECT_EQ(whole, rtl) << shards << " shards (right-to-left)";
  }
}

TEST(ExactSumTest, NonFinitePoisoningMatchesIeee) {
  ExactSum nan_sum;
  nan_sum.Add(1.0);
  nan_sum.Add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(std::isnan(nan_sum.Value()));

  ExactSum inf_sum;
  inf_sum.Add(std::numeric_limits<double>::infinity());
  inf_sum.Add(5.0);
  EXPECT_EQ(inf_sum.Value(), std::numeric_limits<double>::infinity());

  ExactSum conflict;
  conflict.Add(std::numeric_limits<double>::infinity());
  conflict.Add(-std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(conflict.Value()));
}

TEST(SketchTest, MergeCommutesByteIdentically) {
  Sketch a, b;
  for (double v : LatencySamples(5000, 21)) a.Observe(v);
  for (double v : LatencySamples(5000, 22)) b.Observe(v);
  b.Observe(0.0);      // zero bucket
  b.Observe(-42.5);    // negative mirror buckets

  Sketch ab = a;
  ab.Merge(b);
  Sketch ba = b;
  ba.Merge(a);
  EXPECT_EQ(JsonOf(ab), JsonOf(ba));
  EXPECT_EQ(ab.count(), 10002u);
}

TEST(SketchTest, ShardCountNeverChangesTheSerializedBytes) {
  const std::vector<double> values = LatencySamples(20000, 31);
  Sketch whole;
  for (double v : values) whole.Observe(v);
  const std::string expected = JsonOf(whole);

  for (const std::size_t shards : {1u, 2u, 8u}) {
    std::vector<Sketch> parts(shards);
    for (std::size_t i = 0; i < values.size(); ++i) {
      parts[i % shards].Observe(values[i]);
    }
    Sketch merged;
    for (const Sketch& part : parts) merged.Merge(part);
    EXPECT_EQ(JsonOf(merged), expected) << shards << " shards";
  }
}

TEST(SketchTest, QuantilesHonourTheRelativeErrorBound) {
  std::vector<double> values = LatencySamples(100000, 41);
  Sketch sketch;
  for (double v : values) sketch.Observe(v);
  std::sort(values.begin(), values.end());

  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    const double exact = values[rank];
    const double estimate = sketch.Quantile(q);
    // One bucket boundary of slack on top of alpha: the exact order
    // statistic may sit at the far edge of the estimate's bucket.
    const double bound = 2.0 * sketch.relative_accuracy() * exact;
    EXPECT_NEAR(estimate, exact, bound)
        << "q=" << q << " exact=" << exact << " est=" << estimate;
  }
  // The extremes return a bucket representative clamped to [min, max],
  // so they obey the same relative bound rather than exact equality.
  EXPECT_NEAR(sketch.Quantile(0.0), sketch.min(),
              2.0 * sketch.relative_accuracy() * sketch.min());
  EXPECT_NEAR(sketch.Quantile(1.0), sketch.max(),
              2.0 * sketch.relative_accuracy() * sketch.max());
}

TEST(SketchTest, ExactFieldsAreExact) {
  Sketch sketch;
  const std::vector<double> values = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  for (double v : values) sketch.Observe(v);
  EXPECT_EQ(sketch.count(), values.size());
  EXPECT_EQ(sketch.min(), 1.0);
  EXPECT_EQ(sketch.max(), 9.0);
  EXPECT_EQ(sketch.sum(), 31.0);  // exact: ExactSum, not naive doubles
}

TEST(SketchTest, JsonRoundTripIsByteStable) {
  Sketch sketch;
  for (double v : LatencySamples(2000, 51)) sketch.Observe(v);
  sketch.Observe(0.0);
  sketch.Observe(-17.25);
  const std::string first = JsonOf(sketch);

  std::string error;
  const auto parsed = JsonParse(first, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto rebuilt = Sketch::FromJson(*parsed, &error);
  ASSERT_TRUE(rebuilt.has_value()) << error;
  EXPECT_EQ(JsonOf(*rebuilt), first);
  EXPECT_EQ(rebuilt->count(), sketch.count());
  EXPECT_EQ(rebuilt->min(), sketch.min());
  EXPECT_EQ(rebuilt->max(), sketch.max());
}

TEST(SketchTest, AccuracyMismatchRefusesToMerge) {
  Sketch fine(0.01), coarse(0.05);
  fine.Observe(1.0);
  coarse.Observe(1.0);
  EXPECT_THROW(fine.Merge(coarse), std::invalid_argument);
}

TEST(SketchTest, EmptySketchEdgeCases) {
  const Sketch empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_TRUE(std::isnan(empty.Quantile(0.5)));
  EXPECT_EQ(empty.mean(), 0.0);
}

}  // namespace
}  // namespace wearlock::obs
