// The fleet-telemetry determinism gate: a seeded multi-thousand-session
// campaign fanned across sim::ParallelExecutor must produce per-cohort
// rollup JSON that is byte-identical across thread counts (1/2/8) and
// across shard merge order. This is the end-to-end property everything
// under src/obs builds toward (ExactSum, Sketch, order-insensitive
// TelemetrySink) - see docs/observability.md, "Fleet telemetry".
//
// Fixed host timing is armed for the whole campaign: modeled compute
// times must come from sim::SetFixedHostTimingMs, not live wall-clock
// measurement, or per-record phase*_compute_ms would vary with load
// and the byte-identity claim would be vacuously false.
//
// Session count: >= 10k by default, trimmed under sanitizers (TSan is
// ~20x slower) and overridable with WEARLOCK_CAMPAIGN_SESSIONS for
// quick local runs or bigger soak campaigns.
#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/record.h"
#include "obs/rollup.h"
#include "protocol/session.h"
#include "sim/device.h"
#include "sim/executor.h"

namespace wearlock {
namespace {

using protocol::ScenarioConfig;

/// One campaign cell: the cohort axes the grid sweeps.
struct Cell {
  int config_id;
  audio::Environment environment;
  double distance_m;
  bool same_body;
};

std::vector<Cell> CampaignGrid() {
  // 3 configs x 2 environments x 2 distances, genuine everywhere plus
  // an impostor population in the nearest quiet cell (the
  // false-accept CI needs impostor trials to be meaningful).
  std::vector<Cell> grid;
  for (int config_id : {1, 2, 3}) {
    for (const audio::Environment env :
         {audio::Environment::kQuietRoom, audio::Environment::kOffice}) {
      for (const double distance : {0.3, 0.6}) {
        grid.push_back({config_id, env, distance, true});
      }
    }
    grid.push_back({config_id, audio::Environment::kQuietRoom, 0.3, false});
  }
  return grid;
}

ScenarioConfig ConfigFor(const Cell& cell) {
  ScenarioConfig config = ScenarioConfig::Config1();
  if (cell.config_id == 2) config = ScenarioConfig::Config2();
  if (cell.config_id == 3) config = ScenarioConfig::Config3();
  config.scene.environment = cell.environment;
  config.scene.distance_m = cell.distance_m;
  config.same_body = cell.same_body;
  return config;
}

std::size_t CampaignSessions() {
  if (const char* env = std::getenv("WEARLOCK_CAMPAIGN_SESSIONS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return 600;  // sanitizer legs: keep the gate, trim the wall clock
#else
  return 10050;  // the acceptance bar: >= 10k sessions
#endif
}

/// Run the whole campaign on `threads` workers and return every
/// session's record, in campaign order.
std::vector<obs::SessionRecord> RunCampaign(std::size_t threads,
                                            std::size_t n_sessions,
                                            std::uint64_t base_seed) {
  const std::vector<Cell> grid = CampaignGrid();
  sim::ParallelExecutor executor(threads);
  return executor.Map(
      n_sessions, base_seed, [&](sim::TaskContext& ctx) {
        const Cell& cell = grid[ctx.index % grid.size()];
        ScenarioConfig config = ConfigFor(cell);
        config.seed = sim::ParallelExecutor::TaskSeed(base_seed, ctx.index);
        protocol::UnlockSession session(config);
        obs::SessionRecord record;
        session.SetRecordSink(
            [&record](const obs::SessionRecord& r) { record = r; });
        session.Attempt();
        return record;
      });
}

std::string RollupJson(const std::vector<obs::SessionRecord>& records) {
  obs::TelemetrySink sink;
  for (const obs::SessionRecord& record : records) sink.Ingest(record);
  std::ostringstream os;
  sink.WriteJson(os);
  return os.str();
}

class FleetCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::SetFixedHostTimingMs(1.25); }
  void TearDown() override { sim::SetFixedHostTimingMs(-1.0); }
};

TEST_F(FleetCampaignTest, RollupIsByteIdenticalAcrossThreadCounts) {
  const std::size_t n = CampaignSessions();
  const std::uint64_t seed = 20260808;

  const std::vector<obs::SessionRecord> on_one = RunCampaign(1, n, seed);
  ASSERT_EQ(on_one.size(), n);
  const std::string expected = RollupJson(on_one);
  EXPECT_NE(expected.find("\"cohorts\":{"), std::string::npos);

  for (const std::size_t threads : {2u, 8u}) {
    const std::vector<obs::SessionRecord> records =
        RunCampaign(threads, n, seed);
    ASSERT_EQ(records.size(), n);
    // Identical record multiset (Map returns index order, so plain
    // equality of the serialized lines is the strongest check)...
    for (std::size_t i = 0; i < n; i += n / 97 + 1) {
      ASSERT_EQ(records[i].ToJsonl(), on_one[i].ToJsonl())
          << "record " << i << " diverged at " << threads << " threads";
    }
    // ...and identical rollup bytes.
    EXPECT_EQ(RollupJson(records), expected)
        << "rollup diverged at " << threads << " threads";
  }
}

TEST_F(FleetCampaignTest, ShardMergeOrderNeverChangesTheRollup) {
  // Small campaign is enough here: the property under test is the
  // merge algebra, already fed by the full grid.
  const std::size_t n = std::min<std::size_t>(CampaignSessions(), 600);
  const std::vector<obs::SessionRecord> records = RunCampaign(2, n, 777);
  const std::string expected = RollupJson(records);

  constexpr std::size_t kShards = 8;
  std::vector<obs::TelemetrySink> shards(kShards);
  for (std::size_t i = 0; i < records.size(); ++i) {
    shards[i % kShards].Ingest(records[i]);
  }
  obs::TelemetrySink forward;
  for (const obs::TelemetrySink& shard : shards) forward.Merge(shard);
  obs::TelemetrySink reverse;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    reverse.Merge(*it);
  }
  std::ostringstream fw, rv;
  forward.WriteJson(fw);
  reverse.WriteJson(rv);
  EXPECT_EQ(fw.str(), expected);
  EXPECT_EQ(rv.str(), expected);
}

TEST_F(FleetCampaignTest, CampaignPopulatesGenuineAndImpostorCohorts) {
  const std::size_t n = std::min<std::size_t>(CampaignSessions(), 390);
  const std::vector<obs::SessionRecord> records = RunCampaign(2, n, 4242);
  obs::TelemetrySink sink;
  for (const obs::SessionRecord& record : records) sink.Ingest(record);

  std::uint64_t genuine = 0, impostor = 0;
  for (const auto& [key, cohort] : sink.cohorts()) {
    genuine += cohort.genuine;
    impostor += cohort.impostor;
    // Every cohort exposes a total-latency sketch with as many
    // observations as sessions.
    ASSERT_NE(cohort.stages.find("total"), cohort.stages.end()) << key;
    EXPECT_EQ(cohort.stages.at("total").count(), cohort.sessions) << key;
  }
  EXPECT_EQ(genuine + impostor, n);
  EXPECT_GT(genuine, 0u);
  EXPECT_GT(impostor, 0u);  // the grid plants impostor cells
}

}  // namespace
}  // namespace wearlock
