// dsp::FftPlan / dsp::PlanCache: bit-identity against the legacy
// transform, cache counter behavior, and concurrent Get() (a TSan
// target; ci.sh runs this binary under ThreadSanitizer with
// WEARLOCK_THREADS=8).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/workspace.h"
#include "sim/rng.h"

namespace wearlock::dsp {
namespace {

// Bit-identical means bit-identical: compare the raw representation, not
// an epsilon. The whole refactor rests on the plan replaying the legacy
// `w *= wlen` recurrence exactly.
void ExpectBitIdentical(const ComplexVec& a, const ComplexVec& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_NE(a.size(), 0u);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)), 0);
}

ComplexVec RandomSignal(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  ComplexVec x(n);
  for (auto& c : x) c = Complex(rng.Gaussian(), rng.Gaussian());
  return x;
}

class PlanVsLegacy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanVsLegacy, ForwardMatchesFftBitForBit) {
  const std::size_t n = GetParam();
  const ComplexVec x = RandomSignal(n, n);
  ComplexVec legacy = x;
  Fft(legacy);
  ComplexVec planned = x;
  FftPlan(n).Forward(planned.data());
  ExpectBitIdentical(planned, legacy);
}

TEST_P(PlanVsLegacy, InverseMatchesIfftBitForBit) {
  const std::size_t n = GetParam();
  const ComplexVec x = RandomSignal(n, n + 1);
  ComplexVec legacy = x;
  Ifft(legacy);
  ComplexVec planned = x;
  FftPlan(n).Inverse(planned.data());
  ExpectBitIdentical(planned, legacy);
}

TEST_P(PlanVsLegacy, CachedPlanMatchesFreshPlan) {
  const std::size_t n = GetParam();
  const ComplexVec x = RandomSignal(n, n + 2);
  ComplexVec fresh = x;
  FftPlan(n).Forward(fresh.data());
  ComplexVec cached = x;
  PlanCache::Shared().Get(n)->Forward(cached.data());
  ExpectBitIdentical(cached, fresh);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlanVsLegacy,
                         ::testing::Values(8, 16, 64, 256, 1024, 4096, 8192),
                         [](const auto& info) {
                           // Piecewise: dodges GCC 12 -Wrestrict at -O3.
                           std::string name(1, 'n');
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(FftPlan, RejectsNonPowerOfTwoSizes) {
  EXPECT_THROW(FftPlan(0), std::invalid_argument);
  EXPECT_THROW(FftPlan(3), std::invalid_argument);
  EXPECT_THROW(FftPlan(96), std::invalid_argument);
  EXPECT_THROW(PlanCache::Shared().Get(6), std::invalid_argument);
}

TEST(PlanCache, SecondLookupIsAHitOnTheSamePlan) {
  // A private cache so the shared singleton's lifetime counters (used by
  // the bench zero-allocation gates) are not perturbed.
  PlanCache cache;
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  const auto first = cache.Get(512);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  const auto second = cache.Get(512);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(first.get(), second.get());  // shared, not rebuilt
  cache.Get(1024);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PlanCache, ConcurrentGetReturnsOneSharedPlanPerSize) {
  // 8 threads hammer the same sizes; every thread must see the same
  // immutable plan instance and TSan must stay quiet.
  PlanCache cache;
  constexpr std::size_t kThreads = 8;
  static constexpr std::size_t kSizes[] = {64, 256, 1024};
  std::vector<std::vector<const FftPlan*>> seen(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &seen, t] {
      for (int round = 0; round < 50; ++round) {
        for (const std::size_t n : kSizes) {
          const auto plan = cache.Get(n);
          // Execute through the shared tables to give TSan real reads.
          ComplexVec buf(n, Complex(1.0, -1.0));
          plan->Forward(buf.data());
          if (round == 0) seen[t].push_back(plan.get());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(cache.misses(), std::size_t{3});  // one build per size, ever
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * 50 * 3);
}

TEST(Workspace, SlotsGrowOnceThenHoldSteady) {
  Workspace ws;
  const std::uint64_t growths_before = Workspace::TotalGrowths();
  ComplexVec& big = ws.ComplexBuf(CSlot::kFftScratch, 1024);
  EXPECT_EQ(big.size(), 1024u);
  EXPECT_GT(Workspace::TotalGrowths(), growths_before);
  const std::size_t bytes_after_growth = ws.bytes();
  const std::uint64_t growths_after = Workspace::TotalGrowths();
  // Shrinking reuse and same-size reuse keep capacity: no new growth.
  EXPECT_EQ(ws.ComplexBuf(CSlot::kFftScratch, 256).size(), 256u);
  EXPECT_EQ(ws.ComplexBuf(CSlot::kFftScratch, 1024).size(), 1024u);
  EXPECT_EQ(Workspace::TotalGrowths(), growths_after);
  EXPECT_EQ(ws.bytes(), bytes_after_growth);
  ComplexVec& zeroed = ws.ComplexZeroed(CSlot::kFftScratch, 512);
  for (const Complex& c : zeroed) EXPECT_EQ(c, Complex(0.0, 0.0));
}

}  // namespace
}  // namespace wearlock::dsp
