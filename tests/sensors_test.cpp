// Sensor substrate tests: magnitude/normalization, DTW properties,
// motion simulation structure, Algorithm 1 filter decisions.
#include <gtest/gtest.h>

#include <cmath>

#include "sensors/dtw.h"
#include "sensors/filter.h"
#include "sensors/motion_sim.h"
#include "sensors/trace.h"
#include "sim/rng.h"

namespace wearlock::sensors {
namespace {

// ----------------------------------------------------------------- trace
TEST(Trace, MagnitudeIsEuclidean) {
  AccelTrace t = {{3.0, 4.0, 0.0}, {1.0, 2.0, 2.0}};
  const auto m = Magnitude(t);
  EXPECT_NEAR(m[0], 5.0, 1e-12);
  EXPECT_NEAR(m[1], 3.0, 1e-12);
}

TEST(Trace, NormalizedHasZeroMeanUnitVariance) {
  sim::Rng rng(41);
  std::vector<double> xs(200);
  for (auto& v : xs) v = 5.0 + 2.0 * rng.Gaussian();
  const auto n = Normalized(xs);
  double mean = 0.0, var = 0.0;
  for (double v : n) mean += v;
  mean /= static_cast<double>(n.size());
  for (double v : n) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-9);
}

TEST(Trace, ConstantTraceNormalizesToZeros) {
  const auto n = Normalized(std::vector<double>(50, 9.81));
  for (double v : n) EXPECT_EQ(v, 0.0);
}

TEST(Trace, SmoothReducesVariance) {
  sim::Rng rng(42);
  std::vector<double> xs(500);
  for (auto& v : xs) v = rng.Gaussian();
  const auto s = Smooth(xs, 5);
  ASSERT_EQ(s.size(), xs.size());
  double var_x = 0.0, var_s = 0.0;
  for (double v : xs) var_x += v * v;
  for (double v : s) var_s += v * v;
  EXPECT_LT(var_s, 0.5 * var_x);
  // Identity for window <= 1.
  EXPECT_EQ(Smooth(xs, 1), xs);
}

// ------------------------------------------------------------------- dtw
TEST(Dtw, IdenticalSequencesScoreZero) {
  const std::vector<double> a = {0.1, 0.5, -0.3, 0.8};
  const auto r = Dtw(a, a);
  EXPECT_NEAR(r.distance, 0.0, 1e-12);
  EXPECT_NEAR(r.normalized, 0.0, 1e-12);
}

TEST(Dtw, HandlesTimeShift) {
  // A shifted copy should score near zero thanks to warping.
  std::vector<double> a(60), b(60);
  for (int i = 0; i < 60; ++i) {
    a[static_cast<std::size_t>(i)] = std::sin(0.3 * i);
    b[static_cast<std::size_t>(i)] = std::sin(0.3 * (i - 3));
  }
  EXPECT_LT(DtwScore(a, b), 0.05);
  // Straight per-sample distance would be much larger.
  double direct = 0.0;
  for (int i = 0; i < 60; ++i) {
    direct += std::abs(a[static_cast<std::size_t>(i)] -
                       b[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(direct / 60.0, 0.2);
}

TEST(Dtw, SymmetricAndNonNegative) {
  sim::Rng rng(43);
  std::vector<double> a(40), b(50);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  const auto ab = Dtw(a, b);
  const auto ba = Dtw(b, a);
  EXPECT_NEAR(ab.distance, ba.distance, 1e-9);
  EXPECT_GE(ab.distance, 0.0);
}

TEST(Dtw, DifferentLengthsSupported) {
  std::vector<double> a(100, 0.5), b(60, 0.5);
  EXPECT_NEAR(DtwScore(a, b), 0.0, 1e-12);
}

TEST(Dtw, WindowConstraintMatchesUnconstrainedWhenWide) {
  sim::Rng rng(44);
  std::vector<double> a(50), b(50);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  const auto full = Dtw(a, b);
  DtwOptions options;
  options.window = 50;
  const auto banded = Dtw(a, b, options);
  EXPECT_NEAR(full.distance, banded.distance, 1e-9);
}

TEST(Dtw, NarrowWindowIncreasesCost) {
  std::vector<double> a(60), b(60);
  for (int i = 0; i < 60; ++i) {
    a[static_cast<std::size_t>(i)] = std::sin(0.3 * i);
    b[static_cast<std::size_t>(i)] = std::sin(0.3 * (i - 8));
  }
  DtwOptions narrow;
  narrow.window = 2;  // cannot warp far enough to absorb the shift
  EXPECT_GT(Dtw(a, b, narrow).normalized, DtwScore(a, b));
}

TEST(Dtw, Validation) {
  EXPECT_THROW(Dtw({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Dtw({1.0}, {}), std::invalid_argument);
  DtwOptions options;
  options.window = 1;
  EXPECT_THROW(Dtw(std::vector<double>(10, 0.0), std::vector<double>(50, 0.0),
                   options),
               std::invalid_argument);
}

// ------------------------------------------------------------ motion sim
TEST(MotionSim, CoLocatedPairsScoreLow) {
  MotionSimulator sim(sim::Rng(45));
  for (Activity a : {Activity::kSitting, Activity::kWalking}) {
    const auto pair = sim.CoLocatedPair(a, 100);
    EXPECT_LT(DtwScore(Preprocess(pair.phone), Preprocess(pair.watch)), 0.12)
        << ToString(a);
  }
}

TEST(MotionSim, IndependentPairsScoreHigh) {
  MotionSimulator sim(sim::Rng(46));
  double acc = 0.0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    const auto pair =
        sim.IndependentPair(Activity::kWalking, Activity::kSitting, 100);
    acc += DtwScore(Preprocess(pair.phone), Preprocess(pair.watch));
  }
  EXPECT_GT(acc / n, 0.25);
}

TEST(MotionSim, TraceLengthAndGravity) {
  MotionSimulator sim(sim::Rng(47));
  const auto trace = sim.Single(Activity::kSitting, 80);
  ASSERT_EQ(trace.size(), 80u);
  // Sitting magnitude hovers near gravity.
  const auto mag = Magnitude(trace);
  for (double v : mag) {
    EXPECT_GT(v, 7.0);
    EXPECT_LT(v, 13.0);
  }
}

TEST(MotionSim, WalkingHasPeriodicStructure) {
  MotionSimulator sim(sim::Rng(48));
  const auto pair = sim.CoLocatedPair(Activity::kWalking, 150);
  const auto mag = Normalized(Magnitude(pair.phone));
  // Autocorrelation at the stride lag (~50/1.9 = 26 samples) is strong.
  double best = 0.0;
  for (std::size_t lag = 20; lag <= 32; ++lag) {
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < mag.size(); ++i) {
      acc += mag[i] * mag[i + lag];
    }
    best = std::max(best, acc / static_cast<double>(mag.size() - lag));
  }
  EXPECT_GT(best, 0.3);
}

// ---------------------------------------------------------------- filter
TEST(Filter, DecisionsFollowThresholds) {
  MotionSimulator sim(sim::Rng(49));
  // Same body, sitting: strong co-location evidence.
  const auto same = sim.CoLocatedPair(Activity::kSitting, 100);
  const auto r1 = SensorBasedFilter(same.phone, same.watch);
  EXPECT_NE(r1.decision, FilterDecision::kAbort);

  // Different bodies: abort.
  const auto diff =
      sim.IndependentPair(Activity::kWalking, Activity::kRunning, 100);
  const auto r2 = SensorBasedFilter(diff.phone, diff.watch);
  EXPECT_EQ(r2.decision, FilterDecision::kAbort);
  EXPECT_GT(r2.score, r1.score);
}

TEST(Filter, ThresholdBoundariesRespected) {
  MotionSimulator sim(sim::Rng(50));
  const auto pair = sim.CoLocatedPair(Activity::kWalking, 100);
  // Force extreme thresholds to pin each decision branch.
  FilterThresholds always_skip{.d_low = 10.0, .d_high = 20.0};
  EXPECT_EQ(SensorBasedFilter(pair.phone, pair.watch, always_skip).decision,
            FilterDecision::kSkipSecondPhase);
  FilterThresholds always_abort{.d_low = -2.0, .d_high = -1.0};
  EXPECT_EQ(SensorBasedFilter(pair.phone, pair.watch, always_abort).decision,
            FilterDecision::kAbort);
  FilterThresholds always_continue{.d_low = -1.0, .d_high = 10.0};
  EXPECT_EQ(SensorBasedFilter(pair.phone, pair.watch, always_continue).decision,
            FilterDecision::kContinue);
}

TEST(Filter, Validation) {
  const AccelTrace t(10);
  EXPECT_THROW(SensorBasedFilter({}, t), std::invalid_argument);
  EXPECT_THROW(SensorBasedFilter(t, {}), std::invalid_argument);
  FilterThresholds bad{.d_low = 0.5, .d_high = 0.1};
  EXPECT_THROW(SensorBasedFilter(t, t, bad), std::invalid_argument);
}

}  // namespace
}  // namespace wearlock::sensors
