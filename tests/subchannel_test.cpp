// Sub-channel plan defaults and the noise-ranked selection of §III-7.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "modem/subchannel.h"

namespace wearlock::modem {
namespace {

TEST(SubchannelPlan, PaperDefaultsAudible) {
  const auto plan = SubchannelPlan::Audible();
  const std::vector<std::size_t> expected_data = {16, 17, 18, 20, 21, 22,
                                                  24, 25, 26, 28, 29, 30};
  const std::vector<std::size_t> expected_pilots = {7, 11, 15, 19,
                                                    23, 27, 31, 35};
  EXPECT_EQ(plan.data, expected_data);
  EXPECT_EQ(plan.pilots, expected_pilots);
  EXPECT_EQ(plan.fft_size, 256u);
  // ~172 Hz bins.
  EXPECT_NEAR(plan.bin_hz(), 172.27, 0.01);
  // The audible band sits in 1-6 kHz.
  EXPECT_GT(plan.FrequencyOfBin(plan.pilots.front()), 1000.0);
  EXPECT_LT(plan.FrequencyOfBin(plan.pilots.back()), 6200.0);
}

TEST(SubchannelPlan, NearUltrasoundIsShiftedCopy) {
  const auto audible = SubchannelPlan::Audible();
  const auto nu = SubchannelPlan::NearUltrasound();
  ASSERT_EQ(nu.data.size(), audible.data.size());
  for (std::size_t i = 0; i < nu.data.size(); ++i) {
    EXPECT_EQ(nu.data[i], audible.data[i] + 80);
  }
  // 15-20 kHz band.
  EXPECT_GE(nu.FrequencyOfBin(nu.pilots.front()), 14900.0);
  EXPECT_LE(nu.FrequencyOfBin(nu.pilots.back()), 20000.0);
}

TEST(SubchannelPlan, SetsAreDisjointAndInBand) {
  for (const auto& plan :
       {SubchannelPlan::Audible(), SubchannelPlan::NearUltrasound()}) {
    EXPECT_NO_THROW(plan.Validate());
    std::set<std::size_t> all;
    for (auto b : plan.data) EXPECT_TRUE(all.insert(b).second);
    for (auto b : plan.pilots) EXPECT_TRUE(all.insert(b).second);
    for (auto b : plan.nulls) EXPECT_TRUE(all.insert(b).second);
    for (auto b : all) {
      EXPECT_GT(b, 0u);
      EXPECT_LT(b, plan.fft_size / 2);
    }
  }
}

TEST(SubchannelPlan, ValidateCatchesBadPlans) {
  auto plan = SubchannelPlan::Audible();
  plan.data.push_back(plan.pilots.front());  // reuse across sets
  EXPECT_THROW(plan.Validate(), std::invalid_argument);

  plan = SubchannelPlan::Audible();
  plan.data.push_back(0);  // DC not allowed
  EXPECT_THROW(plan.Validate(), std::invalid_argument);

  plan = SubchannelPlan::Audible();
  plan.data.push_back(200);  // beyond N/2
  EXPECT_THROW(plan.Validate(), std::invalid_argument);

  plan = SubchannelPlan::Audible();
  plan.pilots.clear();
  EXPECT_THROW(plan.Validate(), std::invalid_argument);
}

TEST(SubchannelPlan, Bandwidths) {
  const auto plan = SubchannelPlan::Audible();
  // Occupied span: bins 7..35 inclusive = 29 bins.
  EXPECT_NEAR(plan.OccupiedBandwidthHz(), 29 * plan.bin_hz(), 1e-6);
  EXPECT_NEAR(plan.DataBandwidthHz(), 12 * plan.bin_hz(), 1e-6);
}

TEST(SelectSubchannels, QuietChannelPrefersLowFrequencies) {
  const auto plan = SubchannelPlan::Audible();
  std::vector<double> noise(256, 1.0);  // flat noise
  const auto selected = SelectSubchannels(plan, noise);
  EXPECT_EQ(selected.data.size(), plan.data.size());
  // With flat noise, the 12 lowest-frequency non-pilot bins win: 8,9,10,
  // 12,13,14,16,17,18,20,21,22.
  const std::vector<std::size_t> expected = {8,  9,  10, 12, 13, 14,
                                             16, 17, 18, 20, 21, 22};
  EXPECT_EQ(selected.data, expected);
}

TEST(SelectSubchannels, AvoidsJammedBins) {
  const auto plan = SubchannelPlan::Audible();
  std::vector<double> noise(256, 1.0);
  // Jam three default data bins hard.
  noise[16] = 1e6;
  noise[17] = 1e6;
  noise[25] = 1e6;
  const auto selected = SelectSubchannels(plan, noise);
  EXPECT_FALSE(selected.IsData(16));
  EXPECT_FALSE(selected.IsData(17));
  EXPECT_FALSE(selected.IsData(25));
  // Jammed bins end up in the null set instead.
  EXPECT_TRUE(selected.IsNull(16));
}

TEST(SelectSubchannels, PilotsNeverReassigned) {
  const auto plan = SubchannelPlan::Audible();
  std::vector<double> noise(256, 1.0);
  noise[19] = 1e-9;  // pilot bin with the least noise: still a pilot
  const auto selected = SelectSubchannels(plan, noise);
  EXPECT_EQ(selected.pilots, plan.pilots);
  EXPECT_FALSE(selected.IsData(19));
}

TEST(SelectSubchannels, NoiseRankingBeatsFrequencyPreference) {
  const auto plan = SubchannelPlan::Audible();
  std::vector<double> noise(256, 1.0);
  // Make low bins noisy (>= one quantization step: >3 dB).
  for (std::size_t b = 8; b <= 18; ++b) noise[b] = 10.0;
  const auto selected = SelectSubchannels(plan, noise);
  for (std::size_t b = 8; b <= 18; ++b) {
    EXPECT_FALSE(selected.IsData(b)) << b;
  }
}

TEST(SelectSubchannels, Validation) {
  const auto plan = SubchannelPlan::Audible();
  EXPECT_THROW(SelectSubchannels(plan, std::vector<double>(10, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(SelectSubchannels(plan, std::vector<double>(256, 1.0), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace wearlock::modem
