// Crowded-world channel matrix: the channel-impairment robustness gate.
//
// Sweeps {sample-rate offset, Doppler walker, RT60 reverb, neighbor
// contention + bursts} across the paper's three delay configurations
// and pins the hardening contract (docs/channels.md):
//
//   * every impaired attempt terminates with a *defined* outcome well
//     inside the total deadline - no hangs, no undefined states;
//   * no false unlocks: an unlock under impairments still means the
//     token BER cleared the bound the adaptation chose;
//   * the same seed replays the same channel trace and outcome
//     bit-identically, at 1, 2 and 8 threads;
//   * the hardening earns its keep: pinned cells where the naive
//     receiver loses the unlock and the hardened one wins it, for each
//     headline impairment (>= 50 ppm SRO, a 1.4 m/s walker, 2-pair
//     contention);
//   * past the hardening envelope the session fails *closed* - the
//     kChannelUnusable outcome (no keyguard strike) or a timeout,
//     never a false accept;
//   * the channel trace serializes as well-formed JSONL and matches
//     the committed golden (timestamps normalized, same rationale as
//     fault_matrix_test.cpp).
//
// Regenerate the golden after an intentional channel-model change with
//   WEARLOCK_REGEN_CHANNEL_GOLDEN=1 ./tests/channel_matrix_test
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audio/impairments.h"
#include "json_check.h"
#include "protocol/session.h"
#include "sim/executor.h"

namespace wearlock {
namespace {

using audio::ImpairmentPlan;
using protocol::ResilienceConfig;
using protocol::ScenarioConfig;
using protocol::UnlockOutcome;
using protocol::UnlockReport;
using protocol::UnlockSession;

// --- The matrix ------------------------------------------------------

const char* const kImpairmentSpecs[] = {
    "sro=50",               // accumulated clock drift shifts the window
    "doppler=1.4",          // brisk walker: ~4000 ppm uniform warp
    "reverb=350",           // office-sized RT60 tail past the CP
    "pairs=2,burst=0.4x10", // two contending pairs + loud bursts
};

ScenarioConfig ConfigByIndex(int which) {
  switch (which) {
    case 0: return ScenarioConfig::Config1();
    case 1: return ScenarioConfig::Config2();
    default: return ScenarioConfig::Config3();
  }
}

constexpr int kNumSpecs = 4;
constexpr int kNumConfigs = 3;
constexpr int kNumCells = kNumSpecs * kNumConfigs;

/// One matrix cell: spec x config, seed pinned per cell.
ScenarioConfig CellScenario(int cell) {
  const int spec = cell / kNumConfigs;
  const int config = cell % kNumConfigs;
  ScenarioConfig c = ConfigByIndex(config);
  c.scene.environment = audio::Environment::kQuietRoom;
  c.scene.distance_m = 0.3;
  c.impairments = ImpairmentPlan::Parse(kImpairmentSpecs[spec]);
  c.seed = 8100 + static_cast<std::uint64_t>(cell);
  return c;
}

/// Everything about an impaired attempt that must be deterministic
/// under a fixed seed. Virtual-time stamps are excluded: they include
/// host-measured compute, which jitters; the *decisions* - channel
/// event sequence, outcome, signal statistics, step order - must not.
std::string CellFingerprint(const ScenarioConfig& config) {
  UnlockSession session(config);
  const UnlockReport report = session.Attempt();

  std::ostringstream fp;
  fp << std::hexfloat;
  fp << ToString(report.outcome) << "|" << report.unlocked << "|"
     << report.token_ber << "|" << report.required_ber << "|"
     << report.pilot_snr_db << "|" << report.preamble_score << "|"
     << report.ambient_similarity << "|steps:";
  for (const auto& step : report.trace) {
    fp << step.step << "=" << step.detail << ";";
  }
  fp << "|channel:";
  const audio::ChannelImpairments* chan = session.scene().impairments();
  EXPECT_NE(chan, nullptr) << "non-empty plan must arm the scene";
  if (chan != nullptr) {
    for (const auto& event : chan->events()) {
      fp << event.kind << "=" << event.detail << ";";
    }
  }
  return fp.str();
}

// --- Termination + no-false-unlock over the whole matrix -------------

TEST(ChannelMatrixTest, EveryCellTerminatesWithDefinedOutcome) {
  for (int cell = 0; cell < kNumCells; ++cell) {
    SCOPED_TRACE("cell " + std::to_string(cell) + " spec " +
                 kImpairmentSpecs[cell / kNumConfigs]);
    const ScenarioConfig config = CellScenario(cell);
    UnlockSession session(config);
    const UnlockReport report = session.Attempt();

    // Defined outcome: every enumerator stringifies.
    EXPECT_NE(ToString(report.outcome), "?");

    // Terminates inside the budget. The deadline gates the *start* of
    // protocol steps, so the last started step (one stage budget plus
    // audio/compute slack, including MAC backoffs) may run past it -
    // but never unboundedly.
    const ResilienceConfig& res = config.phone.resilience;
    EXPECT_LT(session.clock().now(),
              res.total_deadline_ms + res.stage_budget_ms + 15000.0);

    // No false unlock: unlocking through impairments still requires
    // the token BER to clear the bound the adaptation chose.
    EXPECT_EQ(report.unlocked, report.outcome == UnlockOutcome::kUnlocked);
    if (report.unlocked) {
      EXPECT_LE(report.token_ber, report.required_ber);
    }

    // The channel trace is well-formed JSONL, line by line.
    ASSERT_NE(session.scene().impairments(), nullptr);
    std::istringstream trace(
        audio::ChannelTraceJsonl(session.scene().impairments()->events()));
    std::string line;
    testing::JsonChecker checker;
    while (std::getline(trace, line)) {
      EXPECT_TRUE(checker.Check(line)) << checker.error() << " in: " << line;
    }
  }
}

// --- Deterministic replay (same seed, same everything) ---------------

TEST(ChannelMatrixTest, SameSeedReplaysBitIdentically) {
  for (int cell = 0; cell < kNumCells; ++cell) {
    SCOPED_TRACE("cell " + std::to_string(cell));
    const ScenarioConfig config = CellScenario(cell);
    const std::string first = CellFingerprint(config);
    const std::string second = CellFingerprint(config);
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
  }
}

TEST(ChannelMatrixTest, ByteIdenticalAcrossThreadCounts) {
  auto run_matrix = [](std::size_t n_threads) {
    sim::ParallelExecutor executor(n_threads);
    return executor.Map(kNumCells, /*base_seed=*/0, [](sim::TaskContext& ctx) {
      // Cell seeds are pinned by CellScenario; ctx.rng is deliberately
      // unused so the fingerprint is a pure function of the index.
      return CellFingerprint(CellScenario(static_cast<int>(ctx.index)));
    });
  };
  const std::vector<std::string> serial = run_matrix(1);
  const std::vector<std::string> dual = run_matrix(2);
  const std::vector<std::string> parallel = run_matrix(8);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), dual.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(serial[i], dual[i]);
    EXPECT_EQ(serial[i], parallel[i]);
  }
}

// --- Hardening earns its keep ----------------------------------------

/// Run one scenario twice - hardened (default) and naive
/// (channel.enable=false: no RX guard, no drift tracking, no MAC, no
/// robust ladder) - and return the pair of unlock bits.
std::pair<bool, bool> HardenedVsNaive(ScenarioConfig config) {
  bool hardened = false;
  bool naive = false;
  {
    UnlockSession session(config);
    hardened = session.Attempt().unlocked;
  }
  {
    config.phone.channel.enable = false;
    UnlockSession session(config);
    naive = session.Attempt().unlocked;
  }
  return {hardened, naive};
}

ScenarioConfig KeepScenario(const char* spec, double distance_m,
                            std::uint64_t seed) {
  ScenarioConfig c = ScenarioConfig::Config1();
  c.scene.environment = audio::Environment::kQuietRoom;
  c.scene.distance_m = distance_m;
  c.impairments = ImpairmentPlan::Parse(spec);
  c.seed = seed;
  return c;
}

TEST(ChannelHardeningTest, SroHardeningEarnsItsKeep) {
  // 50 ppm over the 1400 s clock age shifts the window by 3087 samples
  // - past the naive recorder's 2048-sample lead-out, so the frame
  // tail is gone without the RX guard + drift tracking.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto [hardened, naive] =
        HardenedVsNaive(KeepScenario("sro=50", 0.3, seed));
    EXPECT_TRUE(hardened);
    EXPECT_FALSE(naive);
  }
}

TEST(ChannelHardeningTest, DopplerHardeningEarnsItsKeep) {
  // A 1.4 m/s walker warps ~4000 ppm. At short range the naive
  // receiver's SNR margin absorbs the inter-carrier interference, so
  // the differential cells sit at 1.2 m where the margin is thin;
  // seeds pinned by a sweep.
  for (const std::uint64_t seed : {8u, 9u, 10u, 12u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto [hardened, naive] =
        HardenedVsNaive(KeepScenario("doppler=1.4", 1.2, seed));
    EXPECT_TRUE(hardened);
    EXPECT_FALSE(naive);
  }
}

TEST(ChannelHardeningTest, ContentionHardeningEarnsItsKeep) {
  // Two neighboring pairs parked on the default data bins: without
  // carrier sense + sub-band reselection the naive receiver decodes
  // through the interference and loses the token; seeds pinned by a
  // sweep.
  for (const std::uint64_t seed : {3u, 10u, 17u, 26u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto [hardened, naive] =
        HardenedVsNaive(KeepScenario("pairs=2", 0.3, seed));
    EXPECT_TRUE(hardened);
    EXPECT_FALSE(naive);
  }
}

// --- Past the envelope: fail closed ----------------------------------

TEST(ChannelHardeningTest, PastEnvelopeSroFailsClosedAsChannelUnusable) {
  // 200 ppm shifts the window by 12348 samples - beyond even the
  // hardened 8192-sample RX guard. The hardened session must refuse
  // with kChannelUnusable (never a false accept) and must NOT burn a
  // keyguard strike: an unusable channel is not a forgery attempt.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    UnlockSession session(KeepScenario("sro=200", 0.3, seed));
    const UnlockReport report = session.Attempt();
    EXPECT_FALSE(report.unlocked);
    EXPECT_EQ(report.outcome, UnlockOutcome::kChannelUnusable);
    EXPECT_EQ(session.keyguard().consecutive_failures(), 0u);
    EXPECT_TRUE(session.keyguard().CanAttemptWearlock());
  }
}

TEST(ChannelHardeningTest, PastEnvelopeNeverFalselyAccepts) {
  // A grab bag of beyond-the-envelope channels, on both genuine and
  // cross-body scenarios: whatever the outcome, it is never an unlock
  // that the token BER did not earn, and never a cross-body unlock.
  const char* const kHarsh[] = {"sro=200", "doppler=4.5,sro=120",
                                "pairs=8,burst=0.9x16"};
  for (const char* spec : kHarsh) {
    for (const bool same_body : {true, false}) {
      SCOPED_TRACE(std::string(spec) + (same_body ? " same" : " cross"));
      ScenarioConfig c = KeepScenario(spec, 0.6, 5);
      c.same_body = same_body;
      UnlockSession session(c);
      const UnlockReport report = session.Attempt();
      EXPECT_EQ(report.unlocked, report.outcome == UnlockOutcome::kUnlocked);
      if (report.unlocked) {
        EXPECT_TRUE(same_body) << "cross-body unlock under impairments";
        EXPECT_LE(report.token_ber, report.required_ber);
      }
    }
  }
}

// --- Golden channel trace --------------------------------------------

/// The pinned fully-impaired unlock: clock drift, a room tail and two
/// contending neighbors all active, the MAC defers at least once, the
/// drift estimator reports, and the session still resolves.
ScenarioConfig GoldenScenario() {
  ScenarioConfig c = ScenarioConfig::Config1();
  c.scene.environment = audio::Environment::kQuietRoom;
  c.scene.distance_m = 0.3;
  c.impairments = ImpairmentPlan::Parse("sro=60,reverb=250,pairs=2,burst=0.6x10");
  c.seed = 7;  // pinned by a sweep: MAC defer + drift estimate both fire
  return c;
}

/// Zero out the "at_ms" values: virtual time includes host-measured
/// compute, so timestamps jitter while the event sequence must not.
std::string NormalizeTraceTimestamps(const std::string& jsonl) {
  std::string out;
  std::size_t pos = 0;
  const std::string key = "\"at_ms\":";
  while (pos < jsonl.size()) {
    const std::size_t hit = jsonl.find(key, pos);
    if (hit == std::string::npos) {
      out += jsonl.substr(pos);
      break;
    }
    out += jsonl.substr(pos, hit - pos) + key + "0";
    pos = hit + key.size();
    while (pos < jsonl.size() && jsonl[pos] != ',' && jsonl[pos] != '}') ++pos;
  }
  return out;
}

TEST(ChannelMatrixTest, GoldenImpairedUnlockTrace) {
  UnlockSession session(GoldenScenario());
  const UnlockReport report = session.Attempt();
  EXPECT_NE(ToString(report.outcome), "?");
  ASSERT_NE(session.scene().impairments(), nullptr);

  const std::string raw =
      audio::ChannelTraceJsonl(session.scene().impairments()->events());
  EXPECT_FALSE(raw.empty()) << "golden scenario must record channel events";

  // Well-formed JSONL before any normalization.
  {
    std::istringstream lines(raw);
    std::string line;
    testing::JsonChecker checker;
    while (std::getline(lines, line)) {
      EXPECT_TRUE(checker.Check(line)) << checker.error() << " in: " << line;
    }
  }

  const std::string normalized = NormalizeTraceTimestamps(raw);
  const std::string golden_path =
      std::string(WEARLOCK_CHANNEL_GOLDEN_DIR) + "/impaired_unlock_trace.jsonl";
  if (std::getenv("WEARLOCK_REGEN_CHANNEL_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << normalized;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path
                         << " (regen with WEARLOCK_REGEN_CHANNEL_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(normalized, golden.str())
      << "channel trace drifted from the committed golden; if the change "
         "is intentional, regen with WEARLOCK_REGEN_CHANNEL_GOLDEN=1";
}

// --- ImpairmentPlan grammar ------------------------------------------

TEST(ImpairmentPlanTest, ParsesFullSpec) {
  const ImpairmentPlan plan =
      ImpairmentPlan::Parse("sro=60,doppler=-1.2,reverb=350,burst=0.4x12,pairs=3");
  EXPECT_DOUBLE_EQ(plan.sro_ppm, 60.0);
  EXPECT_DOUBLE_EQ(plan.doppler_mps, -1.2);
  EXPECT_DOUBLE_EQ(plan.reverb_rt60_ms, 350.0);
  EXPECT_DOUBLE_EQ(plan.burst_p, 0.4);
  EXPECT_DOUBLE_EQ(plan.burst_mult, 12.0);
  EXPECT_EQ(plan.pairs, 3u);
  EXPECT_EQ(plan.spec, "sro=60,doppler=-1.2,reverb=350,burst=0.4x12,pairs=3");
  EXPECT_FALSE(plan.empty());
}

TEST(ImpairmentPlanTest, EmptySpecIsTransparent) {
  EXPECT_TRUE(ImpairmentPlan::Parse("").empty());
  EXPECT_TRUE(ImpairmentPlan{}.empty());
}

TEST(ImpairmentPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(ImpairmentPlan::Parse("bogus"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("sro"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("sro=-5"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("sro=900"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("sro=abc"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("doppler=9"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("reverb=2500"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("reverb=-1"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("burst=1.5"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("burst=0.3x0.5"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("pairs=65"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("pairs=1.5"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("pairs=-1"), std::invalid_argument);
  EXPECT_THROW(ImpairmentPlan::Parse("sro=50,unknown=1"),
               std::invalid_argument);
}

// --- Tg-vs-reverberation guard (scene build validation) --------------

TEST(SceneGuardBudgetTest, OversizedRingingTailThrowsAtSceneBuild) {
  // The paper's bound (SIII): the guard interval must exceed the
  // speaker's "largest reverberation length". Before this check the
  // bound lived only in a speaker.h comment.
  audio::SceneConfig config;
  audio::SpeakerSpec spec;
  spec.ringing_tail_s = 0.05;  // 2205 samples > the 1024-sample Tg
  config.phone_speaker = audio::SpeakerModel(spec);
  EXPECT_THROW(audio::TwoMicScene(config, sim::Rng(1)),
               std::invalid_argument);
  // The default tail (661 samples) fits the default budget.
  EXPECT_NO_THROW(audio::TwoMicScene(audio::SceneConfig{}, sim::Rng(1)));
}

}  // namespace
}  // namespace wearlock
