// Fleet-telemetry pipeline units: the JSON parser, SessionRecord JSONL
// round trips, Wilson intervals, cohort keying, TelemetrySink
// merge-order invariance, and the registry Snapshot/Merge +
// MapWithMetrics shard invariance the campaign gate depends on
// (docs/observability.md, "Fleet telemetry").
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/record.h"
#include "obs/rollup.h"
#include "sim/executor.h"

namespace wearlock::obs {
namespace {

std::string SnapshotJson(const MetricsSnapshot& snap) {
  std::ostringstream os;
  snap.WriteJson(os);
  return os.str();
}

std::string RegistryJson(const MetricsRegistry& registry) {
  std::ostringstream os;
  registry.WriteJson(os);
  return os.str();
}

std::string SinkJson(const TelemetrySink& sink) {
  std::ostringstream os;
  sink.WriteJson(os);
  return os.str();
}

SessionRecord MakeRecord(std::uint64_t seed, bool same_body, bool unlocked,
                         double total_ms) {
  SessionRecord record;
  record.seed = seed;
  record.config = "config1";
  record.environment = "Office";
  record.distance_m = 0.3;
  record.fault_spec = "drop=0.2,flap@rts";
  record.activity = "Sitting";
  record.same_body = same_body;
  record.outcome = unlocked ? "unlocked" : "rejected";
  record.unlocked = unlocked;
  record.false_accept = unlocked && !same_body;
  record.total_ms = total_ms;
  record.phase1_audio_ms = total_ms * 0.4;
  record.phase2_compute_ms = total_ms * 0.1;
  record.retries = 1;
  record.chase_decisions = 2;
  record.fault_events = 3;
  record.pilot_snr_db = 18.5;
  record.token_ber = 0.0125;
  record.mode = "QPSK";
  return record;
}

// ---------------------------------------------------------------------
// JsonParse

TEST(JsonParseTest, ParsesNestedDocument) {
  const std::string text =
      R"({"a":1.5,"b":[true,null,"x\"y"],"c":{"d":-2e3},"e":"é"})";
  std::string error;
  const auto v = JsonParse(text, &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->Find("a")->NumberOr(0), 1.5);
  ASSERT_TRUE(v->Find("b")->is_array());
  EXPECT_EQ(v->Find("b")->array.size(), 3u);
  EXPECT_TRUE(v->Find("b")->array[0].boolean);
  EXPECT_TRUE(v->Find("b")->array[1].is_null());
  EXPECT_EQ(v->Find("b")->array[2].string, "x\"y");
  EXPECT_DOUBLE_EQ(v->Find("c")->Find("d")->NumberOr(0), -2000.0);
  EXPECT_EQ(v->Find("e")->string, "\xc3\xa9");  // é as UTF-8
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const std::string bad :
       {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", ""}) {
    std::string error;
    EXPECT_FALSE(JsonParse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonParseTest, FindOnNonObjectIsNull) {
  const auto v = JsonParse("[1,2]");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("x"), nullptr);
}

// ---------------------------------------------------------------------
// SessionRecord

TEST(SessionRecordTest, JsonlRoundTripIsByteStable) {
  const SessionRecord record = MakeRecord(42, true, true, 812.375);
  const std::string line = record.ToJsonl();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"schema\":\"wearlock.session.v1\""),
            std::string::npos);

  std::string error;
  const auto back = SessionRecord::FromJsonl(line, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->ToJsonl(), line);
  EXPECT_EQ(back->seed, 42u);
  EXPECT_EQ(back->fault_spec, "drop=0.2,flap@rts");
  EXPECT_DOUBLE_EQ(back->total_ms, 812.375);
  EXPECT_EQ(back->retries, 1);
  EXPECT_EQ(back->mode, "QPSK");
}

TEST(SessionRecordTest, RejectsForeignSchema) {
  std::string line = MakeRecord(1, true, true, 100).ToJsonl();
  const std::string from = "wearlock.session.v1";
  line.replace(line.find(from), from.size(), "wearlock.session.v999");
  std::string error;
  EXPECT_FALSE(SessionRecord::FromJsonl(line, &error).has_value());
  EXPECT_NE(error.find("schema"), std::string::npos);
}

// ---------------------------------------------------------------------
// Wilson intervals

TEST(WilsonScoreTest, MatchesPublishedValues) {
  // 8/10 at 95%: the textbook Wilson interval [0.490, 0.943].
  const WilsonInterval w = WilsonScore(8, 10);
  EXPECT_DOUBLE_EQ(w.rate, 0.8);
  EXPECT_NEAR(w.low, 0.4902, 5e-4);
  EXPECT_NEAR(w.high, 0.9433, 5e-4);
}

TEST(WilsonScoreTest, PerfectScoreStaysInsideTheUnitInterval) {
  const WilsonInterval w = WilsonScore(50, 50);
  EXPECT_DOUBLE_EQ(w.rate, 1.0);
  EXPECT_GT(w.low, 0.9);   // a normal approximation would claim [1,1]
  EXPECT_LT(w.low, 1.0);
  EXPECT_LE(w.high, 1.0);
}

TEST(WilsonScoreTest, ZeroTrialsAreVacuous) {
  const WilsonInterval w = WilsonScore(0, 0);
  EXPECT_DOUBLE_EQ(w.rate, 0.0);
  EXPECT_DOUBLE_EQ(w.low, 0.0);
  EXPECT_DOUBLE_EQ(w.high, 1.0);
}

// ---------------------------------------------------------------------
// Cohort keys

TEST(DefaultCohortKeyTest, FollowsTheDocumentedGrammar) {
  const SessionRecord record = MakeRecord(7, true, true, 500);
  EXPECT_EQ(DefaultCohortKey(record),
            "config=config1;dist=0.25-0.50;env=Office;"
            "faults=drop=0.2,flap@rts");
}

TEST(DefaultCohortKeyTest, DistanceBinsAtQuarterMeters) {
  SessionRecord record = MakeRecord(7, true, true, 500);
  record.fault_spec.clear();
  record.distance_m = 0.249;
  EXPECT_NE(DefaultCohortKey(record).find("dist=0.00-0.25"),
            std::string::npos);
  record.distance_m = 0.25;  // half-open bins: 0.25 starts the next one
  EXPECT_NE(DefaultCohortKey(record).find("dist=0.25-0.50"),
            std::string::npos);
  record.distance_m = 1.9;
  EXPECT_NE(DefaultCohortKey(record).find("dist=1.75-2.00"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// TelemetrySink

std::vector<SessionRecord> MixedRecords() {
  std::vector<SessionRecord> records;
  for (int i = 0; i < 40; ++i) {
    const bool genuine = i % 4 != 3;
    const bool unlocked = genuine ? i % 5 != 0 : i % 8 == 7;
    records.push_back(MakeRecord(static_cast<std::uint64_t>(i), genuine,
                                 unlocked, 400.0 + 13.0 * i));
  }
  return records;
}

TEST(TelemetrySinkTest, SplitsGenuineAndImpostorPopulations) {
  TelemetrySink sink;
  for (const SessionRecord& record : MixedRecords()) sink.Ingest(record);
  ASSERT_EQ(sink.cohorts().size(), 1u);
  const auto& cohort = sink.cohorts().begin()->second;
  EXPECT_EQ(cohort.sessions, 40u);
  EXPECT_EQ(cohort.genuine + cohort.impostor, cohort.sessions);
  // Unlock rate is over genuine attempts only; false accepts over
  // impostor attempts only.
  EXPECT_EQ(cohort.UnlockRate().rate,
            static_cast<double>(cohort.genuine_unlocked) /
                static_cast<double>(cohort.genuine));
  EXPECT_EQ(cohort.FalseAcceptRate().rate,
            static_cast<double>(cohort.false_accepts) /
                static_cast<double>(cohort.impostor));
  EXPECT_EQ(cohort.stages.at("total").count(), 40u);
}

TEST(TelemetrySinkTest, IngestOrderAndShardingNeverChangeTheBytes) {
  const std::vector<SessionRecord> records = MixedRecords();
  TelemetrySink forward;
  for (const SessionRecord& record : records) forward.Ingest(record);
  const std::string expected = SinkJson(forward);

  TelemetrySink reversed;
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    reversed.Ingest(*it);
  }
  EXPECT_EQ(SinkJson(reversed), expected);

  // Shard across three sinks, merge in a different order.
  TelemetrySink s0, s1, s2;
  TelemetrySink* shards[] = {&s0, &s1, &s2};
  for (std::size_t i = 0; i < records.size(); ++i) {
    shards[i % 3]->Ingest(records[i]);
  }
  TelemetrySink merged;
  merged.Merge(s2);
  merged.Merge(s0);
  merged.Merge(s1);
  EXPECT_EQ(SinkJson(merged), expected);
}

TEST(TelemetrySinkTest, JsonlAndRollupMergeRoundTrip) {
  const std::vector<SessionRecord> records = MixedRecords();
  std::string jsonl;
  for (const SessionRecord& record : records) {
    jsonl += record.ToJsonl();
    jsonl += '\n';
  }
  TelemetrySink from_jsonl;
  std::string error;
  EXPECT_EQ(from_jsonl.IngestJsonl(jsonl, &error), records.size()) << error;

  // Rollup JSON -> parse -> MergeJson must reproduce the same bytes.
  const std::string doc = SinkJson(from_jsonl);
  const auto parsed = JsonParse(doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  TelemetrySink reloaded;
  ASSERT_TRUE(reloaded.MergeJson(*parsed, &error)) << error;
  EXPECT_EQ(SinkJson(reloaded), doc);
}

TEST(TelemetrySinkTest, MalformedJsonlReportsTheLine) {
  TelemetrySink sink;
  std::string error;
  const std::string text =
      MakeRecord(1, true, true, 100).ToJsonl() + "\n{broken\n";
  EXPECT_EQ(sink.IngestJsonl(text, &error), 1u);
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// Registry snapshots and the executor shard hook

void PopulateRegistry(MetricsRegistry* registry, int salt) {
  registry->GetCounter("t.count").Add(static_cast<std::uint64_t>(10 + salt));
  registry->GetGauge("t.gauge").Set(5.0 + salt);
  auto& hist = registry->GetHistogram("t.hist", {1.0, 10.0, 100.0});
  for (int i = 0; i < 20; ++i) hist.Observe(i * (salt + 1));
  auto& sketch = registry->GetSketch("t.sketch");
  for (int i = 0; i < 20; ++i) sketch.Observe(1.0 + i * (salt + 1));
  for (int i = 0; i < 5; ++i) registry->GetSeries("t.series").Observe(i + salt);
}

TEST(MetricsSnapshotTest, MergeCommutes) {
  MetricsRegistry ra, rb;
  PopulateRegistry(&ra, 0);
  PopulateRegistry(&rb, 3);
  rb.GetCounter("t.only_b").Add(7);  // asymmetric metric sets too

  MetricsSnapshot ab = ra.Snapshot();
  ab.Merge(rb.Snapshot());
  MetricsSnapshot ba = rb.Snapshot();
  ba.Merge(ra.Snapshot());
  EXPECT_EQ(SnapshotJson(ab), SnapshotJson(ba));
  EXPECT_EQ(ab.counters.at("t.count"), 23u);
  EXPECT_EQ(ab.counters.at("t.only_b"), 7u);
  EXPECT_DOUBLE_EQ(ab.gauges.at("t.gauge"), 8.0);  // gauges fold by max
}

TEST(MetricsSnapshotTest, RegistryMergeFoldsSnapshotsIn) {
  MetricsRegistry shard;
  PopulateRegistry(&shard, 1);
  MetricsRegistry target;
  target.Merge(shard.Snapshot());
  target.Merge(shard.Snapshot());
  EXPECT_EQ(target.CounterValue("t.count"), 22u);
  EXPECT_EQ(RegistryJson(target).empty(), false);
}

TEST(MapWithMetricsTest, MergedRegistryIsThreadCountInvariant) {
  constexpr std::size_t kTasks = 16;
  auto run = [&](std::size_t threads) {
    sim::ParallelExecutor executor(threads);
    MetricsRegistry merged;
    executor.MapWithMetrics(kTasks, 99, &merged, [](sim::TaskContext& ctx) {
      auto* metrics = CurrentMetrics();
      metrics->GetCounter("task.count").Add();
      metrics->GetSketch("task.sketch").Observe(
          static_cast<double>(ctx.index) * 1.5 + 1.0);
      metrics->GetSeries("task.series").Observe(
          static_cast<double>(ctx.index));
      return 0;
    });
    EXPECT_EQ(merged.CounterValue("task.count"), kTasks);
    std::ostringstream os;
    merged.Snapshot().WriteJson(os);
    return os.str();
  };
  const std::string one = run(1);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(8), one);
}

}  // namespace
}  // namespace wearlock::obs
