// Unit tests for the non-FFT DSP substrate: windows, chirps,
// correlation, filters, fractional delay, SPL math, statistics, Hilbert.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/chirp.h"
#include "dsp/correlate.h"
#include "dsp/filter.h"
#include "dsp/hilbert.h"
#include "dsp/resample.h"
#include "dsp/spl.h"
#include "dsp/stats.h"
#include "dsp/window.h"
#include "sim/rng.h"

namespace wearlock::dsp {
namespace {

// ---------------------------------------------------------------- window
TEST(Window, HannEndpointsAndPeak) {
  const auto w = MakeWindow(WindowType::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, RectangularIsAllOnes) {
  for (double v : MakeWindow(WindowType::kRectangular, 9)) {
    EXPECT_EQ(v, 1.0);
  }
}

TEST(Window, DegenerateSizes) {
  EXPECT_TRUE(MakeWindow(WindowType::kHann, 0).empty());
  EXPECT_EQ(MakeWindow(WindowType::kBlackman, 1).size(), 1u);
  EXPECT_EQ(MakeWindow(WindowType::kBlackman, 1)[0], 1.0);
}

TEST(Window, ApplyWindowSizeMismatchThrows) {
  std::vector<double> x(4, 1.0);
  EXPECT_THROW(ApplyWindow(x, MakeWindow(WindowType::kHann, 5)),
               std::invalid_argument);
}

TEST(Window, EdgeFadeRampsBothEnds) {
  std::vector<double> x(10, 1.0);
  ApplyEdgeFade(x, 2);
  EXPECT_LT(x[0], x[1]);
  EXPECT_LT(x[9], x[8]);
  EXPECT_EQ(x[5], 1.0);
}

TEST(Window, FadeInOnlyTouchesHead) {
  std::vector<double> x(10, 1.0);
  ApplyFadeIn(x, 4);
  EXPECT_LT(x[0], 0.1);
  EXPECT_EQ(x[9], 1.0);
}

// ----------------------------------------------------------------- chirp
TEST(Chirp, LengthAmplitudeAndValidation) {
  ChirpSpec spec;
  spec.length_samples = 256;
  const auto c = MakeChirp(spec);
  EXPECT_EQ(c.size(), 256u);
  double peak = 0.0;
  for (double v : c) peak = std::max(peak, std::abs(v));
  EXPECT_LE(peak, 1.0 + 1e-9);
  EXPECT_GT(peak, 0.5);

  ChirpSpec bad = spec;
  bad.f_max_hz = bad.f_min_hz - 1.0;
  EXPECT_THROW(MakeChirp(bad), std::invalid_argument);
  bad = spec;
  bad.length_samples = 0;
  EXPECT_THROW(MakeChirp(bad), std::invalid_argument);
}

TEST(Chirp, AutocorrelationIsPeaky) {
  ChirpSpec spec;
  spec.length_samples = 256;
  const auto c = MakeChirp(spec);
  // Embed in silence and correlate.
  std::vector<double> x(1024, 0.0);
  for (std::size_t i = 0; i < c.size(); ++i) x[300 + i] = c[i];
  const auto scores = NormalizedCrossCorrelate(x, c);
  const auto peak = FindPeak(scores);
  EXPECT_EQ(peak.index, 300u);
  EXPECT_GT(peak.score, 0.99);
  // Sidelobes well below the main peak.
  for (std::size_t k = 0; k < scores.size(); ++k) {
    if (k + 16 < peak.index || k > peak.index + 16) {
      EXPECT_LT(std::abs(scores[k]), 0.5) << k;
    }
  }
}

// ------------------------------------------------------------- correlate
TEST(Correlate, DirectMatchesFft) {
  sim::Rng rng(17);
  std::vector<double> x(300), y(64);
  for (auto& v : x) v = rng.Gaussian();
  for (auto& v : y) v = rng.Gaussian();
  const auto direct = CrossCorrelate(x, y);
  const auto fast = CrossCorrelateFft(x, y);
  ASSERT_EQ(direct.size(), fast.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], fast[i], 1e-6) << i;
  }
}

TEST(Correlate, NormalizedScoresBounded) {
  sim::Rng rng(18);
  std::vector<double> x(512), y(32);
  for (auto& v : x) v = rng.Gaussian();
  for (auto& v : y) v = rng.Gaussian();
  for (double s : NormalizedCrossCorrelate(x, y)) {
    EXPECT_LE(std::abs(s), 1.0 + 1e-9);
  }
}

TEST(Correlate, SelfMatchScoresOne) {
  sim::Rng rng(19);
  std::vector<double> y(64);
  for (auto& v : y) v = rng.Gaussian();
  const auto scores = NormalizedCrossCorrelate(y, y);
  EXPECT_NEAR(scores[0], 1.0, 1e-9);
}

TEST(Correlate, ArgumentValidation) {
  std::vector<double> x(4, 1.0);
  EXPECT_THROW(CrossCorrelate(x, {}), std::invalid_argument);
  EXPECT_THROW(CrossCorrelate(x, std::vector<double>(5, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(FindPeak({}), std::invalid_argument);
}

// ---------------------------------------------------------------- filter
TEST(Filter, LowPassAttenuatesHighPassesLow) {
  auto lpf = Biquad::LowPass(1000.0, 44100.0);
  EXPECT_NEAR(lpf.MagnitudeAt(50.0, 44100.0), 1.0, 0.02);
  EXPECT_NEAR(lpf.MagnitudeAt(1000.0, 44100.0), 1.0 / std::sqrt(2.0), 0.02);
  EXPECT_LT(lpf.MagnitudeAt(8000.0, 44100.0), 0.05);
}

TEST(Filter, HighPassMirrorsLowPass) {
  auto hpf = Biquad::HighPass(1000.0, 44100.0);
  EXPECT_LT(hpf.MagnitudeAt(50.0, 44100.0), 0.01);
  EXPECT_NEAR(hpf.MagnitudeAt(10000.0, 44100.0), 1.0, 0.05);
}

TEST(Filter, PeakingBoostsAtCenter) {
  auto pk = Biquad::Peaking(2000.0, 44100.0, 6.0);
  EXPECT_NEAR(pk.MagnitudeAt(2000.0, 44100.0), std::pow(10.0, 6.0 / 20.0), 0.05);
  EXPECT_NEAR(pk.MagnitudeAt(100.0, 44100.0), 1.0, 0.05);
}

TEST(Filter, ButterworthCascadeSteeperThanSingle) {
  auto single = BiquadCascade::ButterworthLowPass(6200.0, 44100.0, 1);
  auto fourth = BiquadCascade::ButterworthLowPass(6200.0, 44100.0, 2);
  EXPECT_LT(fourth.MagnitudeAt(12000.0, 44100.0),
            single.MagnitudeAt(12000.0, 44100.0));
  // Both are ~ -3 dB at cutoff.
  EXPECT_NEAR(fourth.MagnitudeAt(6200.0, 44100.0), 1.0 / std::sqrt(2.0), 0.05);
}

TEST(Filter, ProcessBlockMatchesResponseForTone) {
  auto lpf = Biquad::LowPass(2000.0, 44100.0);
  std::vector<double> tone(8192);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = std::sin(2.0 * std::numbers::pi * 500.0 * static_cast<double>(i) /
                       44100.0);
  }
  const auto out = lpf.ProcessBlock(tone);
  // Steady-state amplitude ~ response at 500 Hz.
  double peak = 0.0;
  for (std::size_t i = 4096; i < out.size(); ++i) {
    peak = std::max(peak, std::abs(out[i]));
  }
  EXPECT_NEAR(peak, lpf.MagnitudeAt(500.0, 44100.0), 0.02);
}

TEST(Filter, InvalidFrequenciesThrow) {
  EXPECT_THROW(Biquad::LowPass(0.0, 44100.0), std::invalid_argument);
  EXPECT_THROW(Biquad::LowPass(23000.0, 44100.0), std::invalid_argument);
  EXPECT_THROW(BiquadCascade::ButterworthLowPass(100.0, 44100.0, 0),
               std::invalid_argument);
}

TEST(Filter, ConvolveLengthsAndIdentity) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> delta = {1.0};
  EXPECT_EQ(Convolve(x, delta), x);
  const auto y = Convolve(x, {0.0, 1.0});
  ASSERT_EQ(y.size(), 4u);
  EXPECT_EQ(y[1], 1.0);
  EXPECT_EQ(y[3], 3.0);
  EXPECT_TRUE(Convolve({}, x).empty());
}

// -------------------------------------------------------------- resample
TEST(Resample, IntegerDelayShifts) {
  const std::vector<double> x = {1.0, -1.0, 0.5};
  const auto y = DelayInteger(x, 3);
  ASSERT_EQ(y.size(), 6u);
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[3], 1.0);
  EXPECT_EQ(y[5], 0.5);
}

TEST(Resample, FractionalDelayMovesCorrelationPeak) {
  ChirpSpec spec;
  spec.length_samples = 256;
  const auto c = MakeChirp(spec);
  std::vector<double> x(1024, 0.0);
  for (std::size_t i = 0; i < c.size(); ++i) x[100 + i] = c[i];
  const auto delayed = DelayFractional(x, 37.5);
  const auto scores = CrossCorrelateFft(delayed, c);
  const auto peak = FindPeak(scores);
  // 100 + 37.5 -> peak at 137 or 138.
  EXPECT_GE(peak.index, 137u);
  EXPECT_LE(peak.index, 138u);
}

TEST(Resample, FractionalDelayPreservesEnergy) {
  sim::Rng rng(23);
  std::vector<double> x(512);
  for (auto& v : x) v = rng.Gaussian();
  const auto y = DelayFractional(x, 10.25);
  EXPECT_NEAR(Rms(y) * std::sqrt(static_cast<double>(y.size())),
              Rms(x) * std::sqrt(static_cast<double>(x.size())),
              0.05 * Rms(x) * std::sqrt(static_cast<double>(x.size())));
}

TEST(Resample, Validation) {
  const std::vector<double> x(8, 1.0);
  EXPECT_THROW(DelayFractional(x, -1.0), std::invalid_argument);
  EXPECT_THROW(DelayFractional(x, 1.5, 0), std::invalid_argument);
  EXPECT_THROW(DelayFractional(x, 1.5, 4), std::invalid_argument);
}

// ------------------------------------------------------------------- spl
TEST(Spl, FullScaleSineIsNear94Db) {
  std::vector<double> tone(4410);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = std::sin(2.0 * std::numbers::pi * 1000.0 *
                       static_cast<double>(i) / 44100.0);
  }
  EXPECT_NEAR(SplOf(tone), 94.0, 0.2);
}

TEST(Spl, RoundTripRmsSpl) {
  for (double spl : {10.0, 40.0, 94.0}) {
    EXPECT_NEAR(SplFromRms(RmsFromSpl(spl)), spl, 1e-9);
  }
}

TEST(Spl, SpreadingLossSixDbPerDoubling) {
  EXPECT_NEAR(SpreadingLossDb(0.2, 0.1), 6.02, 0.01);
  EXPECT_NEAR(SpreadingLossDb(0.4, 0.1), 12.04, 0.01);
  EXPECT_THROW(SpreadingLossDb(0.0, 0.1), std::invalid_argument);
}

TEST(Spl, EbN0Conversions) {
  // B == R: Eb/N0 equals SNR.
  EXPECT_NEAR(EbN0FromSnrDb(10.0, 1000.0, 1000.0), 10.0, 1e-12);
  // Double bandwidth: +3 dB.
  EXPECT_NEAR(EbN0FromSnrDb(10.0, 2000.0, 1000.0), 13.01, 0.01);
  EXPECT_NEAR(SnrDbFromEbN0(EbN0FromSnrDb(7.0, 5000.0, 2756.0), 5000.0, 2756.0),
              7.0, 1e-9);
  EXPECT_THROW(EbN0FromSnrDb(10.0, 0.0, 1.0), std::invalid_argument);
}

// ----------------------------------------------------------------- stats
TEST(Stats, SummaryBasics) {
  const auto s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(s.mean, 2.5, 1e-12);
  EXPECT_NEAR(s.median, 2.5, 1e-12);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.count, 4u);
  EXPECT_THROW(Summarize({}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_NEAR(Percentile({0.0, 10.0}, 50.0), 5.0, 1e-12);
  EXPECT_NEAR(Percentile({1.0, 2.0, 3.0}, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(Percentile({1.0, 2.0, 3.0}, 100.0), 3.0, 1e-12);
  EXPECT_THROW(Percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  const auto fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Stats, LogFitRecoversLogCurve) {
  std::vector<double> x, y;
  for (int i = 1; i <= 30; ++i) {
    x.push_back(i);
    y.push_back(2.0 * std::log(static_cast<double>(i)) + 1.0);
  }
  const auto fit = FitLogarithmic(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_THROW(FitLogarithmic({0.0, 1.0}, {0.0, 1.0}), std::invalid_argument);
}

// --------------------------------------------------------------- hilbert
TEST(Hilbert, AnalyticSignalEnvelopeOfTone) {
  std::vector<double> tone(1024);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = 0.7 * std::sin(2.0 * std::numbers::pi * 2000.0 *
                             static_cast<double>(i) / 44100.0);
  }
  const auto analytic = AnalyticSignal(tone);
  // Envelope ~ constant 0.7 away from the edges.
  for (std::size_t i = 100; i + 100 < analytic.size(); ++i) {
    EXPECT_NEAR(std::abs(analytic[i]), 0.7, 0.03) << i;
  }
}

TEST(Hilbert, ZeroRotationIsIdentity) {
  sim::Rng rng(4);
  std::vector<double> x(256);
  for (auto& v : x) v = rng.Gaussian();
  const auto y = RotatePhase(x, std::vector<double>(x.size(), 0.0));
  for (std::size_t i = 8; i + 8 < x.size(); ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-6);
  }
}

TEST(Hilbert, RotationPreservesEnvelope) {
  std::vector<double> tone(1024);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = std::sin(2.0 * std::numbers::pi * 3000.0 *
                       static_cast<double>(i) / 44100.0);
  }
  const auto rotated = RotatePhase(tone, std::vector<double>(tone.size(), 0.5));
  const auto analytic = AnalyticSignal(rotated);
  for (std::size_t i = 100; i + 100 < analytic.size(); ++i) {
    EXPECT_NEAR(std::abs(analytic[i]), 1.0, 0.05);
  }
}

TEST(Hilbert, RotatePhaseSizeMismatchThrows) {
  EXPECT_THROW(RotatePhase({1.0, 2.0}, {0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace wearlock::dsp
