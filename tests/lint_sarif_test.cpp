// SARIF artifact gate: the `wearlock-lint --sarif` payload CI uploads
// must stay a well-formed SARIF 2.1.0 log. JsonChecker (json_check.h)
// proves RFC 8259 well-formedness; the structural assertions below pin
// the minimal schema surface a SARIF viewer needs - version/$schema,
// one run, the tool driver with the full rule catalogue, and per-result
// ruleId/level/message/location records.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "json_check.h"
#include "lint.h"
#include "source.h"

namespace wearlock::lint {
namespace {

std::string SarifFor(const std::vector<SourceFile>& files) {
  const LintResult result = RunLint(files);
  std::ostringstream os;
  WriteSarif(result, os);
  return os.str();
}

bool Has(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(LintSarifTest, EmptyRunIsWellFormedWithEmptyResults) {
  const std::string sarif = SarifFor({});
  testing::JsonChecker checker;
  EXPECT_TRUE(checker.Check(sarif)) << checker.error();
  EXPECT_TRUE(Has(sarif, "\"version\":\"2.1.0\""));
  EXPECT_TRUE(Has(sarif, "\"$schema\""));
  EXPECT_TRUE(Has(sarif, "\"results\":[]"));
}

TEST(LintSarifTest, DriverCarriesTheFullRuleCatalogue) {
  const std::string sarif = SarifFor({});
  EXPECT_TRUE(Has(sarif, "\"name\":\"wearlock-lint\""));
  for (const char* rule :
       {"layer-dag", "determinism", "banned-api", "header-hygiene",
        "shared-state", "hot-path-alloc", "guarded-by", "modeled-time",
        "slot-ownership", "discarded-outcome"}) {
    EXPECT_TRUE(Has(sarif, std::string("\"id\":\"") + rule + "\"")) << rule;
  }
}

TEST(LintSarifTest, ResultsCarryRuleLevelMessageAndLocation) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::FromString(
      "src/dsp/x.cpp", "void f() {\n  srand(1);\n}\n"));
  const std::string sarif = SarifFor(files);
  testing::JsonChecker checker;
  ASSERT_TRUE(checker.Check(sarif)) << checker.error();
  EXPECT_TRUE(Has(sarif, "\"ruleId\":\"determinism\""));
  EXPECT_TRUE(Has(sarif, "\"level\":\"error\""));
  EXPECT_TRUE(Has(sarif, "\"message\":{\"text\":"));
  EXPECT_TRUE(Has(sarif, "\"physicalLocation\""));
  EXPECT_TRUE(Has(sarif, "\"artifactLocation\":{\"uri\":\"src/dsp/x.cpp\"}"));
  EXPECT_TRUE(Has(sarif, "\"region\":{\"startLine\":2}"));
}

TEST(LintSarifTest, MessagesWithQuotesStayWellFormed) {
  // Diagnostic messages quote identifiers; the writer must escape them.
  std::vector<SourceFile> files;
  files.push_back(SourceFile::FromString(
      "src/obs/x.cpp",
      "#include <mutex>\n"
      "std::mutex g_mu;\n"
      "int g_value = 0;  // lint: guarded-by(g_mu)\n"
      "void Bad() {\n"
      "  g_value = 2;\n"
      "}\n"));
  const std::string sarif = SarifFor(files);
  testing::JsonChecker checker;
  EXPECT_TRUE(checker.Check(sarif)) << checker.error();
  EXPECT_TRUE(Has(sarif, "\"ruleId\":\"guarded-by\""));
}

}  // namespace
}  // namespace wearlock::lint
