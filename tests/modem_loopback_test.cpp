// End-to-end modem loopback through the simulated acoustic channel:
// the core integration surface of the whole system. If these pass, the
// TX chain, speaker/propagation/mic models, and RX chain all agree.
#include <gtest/gtest.h>

#include "audio/medium.h"
#include "modem/modem.h"
#include "sim/rng.h"

namespace wearlock {
namespace {

using audio::AcousticChannel;
using audio::ChannelConfig;
using audio::Environment;
using modem::AcousticModem;
using modem::Modulation;

std::vector<std::uint8_t> RandomBits(sim::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  return bits;
}

ChannelConfig QuietChannel(double distance_m) {
  ChannelConfig config;
  config.environment = Environment::kQuietRoom;
  config.distance_m = distance_m;
  return config;
}

TEST(ModemLoopback, QpskQuietRoomShortRange) {
  sim::Rng rng(42);
  AcousticModem modem;
  AcousticChannel channel(QuietChannel(0.3), rng.Fork());

  const auto bits = RandomBits(rng, 32);
  const auto tx = modem.Modulate(Modulation::kQpsk, bits);
  const auto rx = channel.Transmit(tx.samples, /*volume=*/0.8);
  const auto result = modem.Demodulate(rx.recording, Modulation::kQpsk, 32);

  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->bits, bits);
  EXPECT_GT(result->preamble_score, 0.05);
}

TEST(ModemLoopback, AllWearlockModesRoundTripAtHalfMeter) {
  // The hardware models impose a deliberate error floor on 8PSK (paper
  // Fig. 5: phase-bearing modes never reach zero BER on phone speakers);
  // the quaternary modes should be clean at short range in a quiet room.
  for (Modulation m :
       {Modulation::kQask, Modulation::kQpsk, Modulation::k8Psk}) {
    sim::Rng rng(7);
    AcousticModem modem;
    AcousticChannel channel(QuietChannel(0.5), rng.Fork());
    const auto bits = RandomBits(rng, 64);
    const auto tx = modem.Modulate(m, bits);
    const auto rx = channel.Transmit(tx.samples, 0.9);
    const auto result = modem.Demodulate(rx.recording, m, 64);
    ASSERT_TRUE(result.has_value()) << ToString(m);
    const double max_ber = m == Modulation::k8Psk ? 0.1 : 0.02;
    EXPECT_LE(modem::BitErrorRate(result->bits, bits), max_ber) << ToString(m);
  }
}

TEST(ModemLoopback, ProbeAnalysisSeesCleanChannel) {
  sim::Rng rng(11);
  AcousticModem modem;
  AcousticChannel channel(QuietChannel(0.4), rng.Fork());
  const auto tx = modem.MakeProbeFrame();
  const auto rx = channel.Transmit(tx.samples, 0.8);
  const auto probe = modem.AnalyzeProbe(rx.recording);
  ASSERT_TRUE(probe.has_value());
  EXPECT_FALSE(probe->nlos);
  EXPECT_GT(probe->pilot_snr_db, 10.0);
  EXPECT_GT(probe->preamble_score, 0.05);
}

}  // namespace
}  // namespace wearlock
