// Extension-module tests: channel coding, WAV I/O, speaker
// fingerprinting, acoustic distance bounding.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "audio/medium.h"
#include "audio/wav.h"
#include "modem/coding.h"
#include "modem/modem.h"
#include "protocol/distance_bounding.h"
#include "protocol/fingerprint.h"
#include "sim/rng.h"

namespace wearlock {
namespace {

// ---------------------------------------------------------------- coding
class CodingRoundTrip : public ::testing::TestWithParam<modem::CodeScheme> {};

TEST_P(CodingRoundTrip, CleanRoundTrip) {
  sim::Rng rng(71);
  std::vector<std::uint8_t> bits(64);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto coded = modem::Encode(GetParam(), bits);
  EXPECT_EQ(coded.size(), modem::EncodedLength(GetParam(), bits.size()));
  const auto decoded = modem::Decode(GetParam(), coded);
  ASSERT_GE(decoded.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) EXPECT_EQ(decoded[i], bits[i]);
}

TEST_P(CodingRoundTrip, RateMatchesExpansion) {
  const double rc = modem::CodeRate(GetParam());
  const std::size_t coded = modem::EncodedLength(GetParam(), 64);
  EXPECT_NEAR(64.0 / static_cast<double>(coded), rc, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Schemes, CodingRoundTrip,
                         ::testing::Values(modem::CodeScheme::kNone,
                                           modem::CodeScheme::kHamming74,
                                           modem::CodeScheme::kRepetition3),
                         [](const auto& info) {
                           switch (info.param) {
                             case modem::CodeScheme::kNone: return "None";
                             case modem::CodeScheme::kHamming74: return "Hamming";
                             case modem::CodeScheme::kRepetition3: return "Rep3";
                           }
                           return "?";
                         });

TEST(Coding, HammingCorrectsAnySingleError) {
  sim::Rng rng(72);
  std::vector<std::uint8_t> bits(32);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto coded = modem::Encode(modem::CodeScheme::kHamming74, bits);
  for (std::size_t flip = 0; flip < coded.size(); ++flip) {
    auto corrupted = coded;
    corrupted[flip] ^= 1;
    const auto decoded = modem::Decode(modem::CodeScheme::kHamming74, corrupted);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      EXPECT_EQ(decoded[i], bits[i]) << "flip at " << flip << " bit " << i;
    }
  }
}

TEST(Coding, RepetitionCorrectsSingleErrorPerTriple) {
  const std::vector<std::uint8_t> bits = {1, 0, 1, 1};
  auto coded = modem::Encode(modem::CodeScheme::kRepetition3, bits);
  coded[0] ^= 1;   // one error in the first triple
  coded[5] ^= 1;   // one error in the second triple
  const auto decoded = modem::Decode(modem::CodeScheme::kRepetition3, coded);
  EXPECT_EQ(decoded, bits);
}

TEST(Coding, HammingDoubleErrorIsBeyondCapability) {
  // Two errors in one block must NOT silently pass as corrected-correct:
  // the decode produces some wrong block (documented best-effort).
  const std::vector<std::uint8_t> bits = {1, 0, 1, 1};
  auto coded = modem::Encode(modem::CodeScheme::kHamming74, bits);
  coded[0] ^= 1;
  coded[1] ^= 1;
  const auto decoded = modem::Decode(modem::CodeScheme::kHamming74, coded);
  EXPECT_NE(decoded, bits);
}

TEST(Coding, SoftMatchesHardOnCleanLlrs) {
  sim::Rng rng(721);
  std::vector<std::uint8_t> bits(32);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  for (auto scheme : {modem::CodeScheme::kNone, modem::CodeScheme::kHamming74,
                      modem::CodeScheme::kRepetition3}) {
    const auto coded = modem::Encode(scheme, bits);
    // Perfect LLRs: +1 for bit 0, -1 for bit 1.
    std::vector<double> llrs;
    for (auto c : coded) llrs.push_back(c ? -1.0 : 1.0);
    const auto decoded = modem::DecodeSoft(scheme, llrs);
    ASSERT_GE(decoded.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      EXPECT_EQ(decoded[i], bits[i]) << ToString(scheme) << " " << i;
    }
  }
}

TEST(Coding, SoftRepetitionOutvotesTwoWeakErrors) {
  // Hard majority fails on two flipped bits per triple; soft decoding
  // recovers when the flips are low-confidence.
  const std::vector<double> llrs = {-0.1, -0.1, 5.0};  // true bit: 0
  const auto decoded = modem::DecodeSoft(modem::CodeScheme::kRepetition3, llrs);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], 0);
  const auto hard = modem::Decode(modem::CodeScheme::kRepetition3, {1, 1, 0});
  EXPECT_EQ(hard[0], 1);  // hard majority gets it wrong
}

TEST(Coding, SoftHammingUsesReliability) {
  // Two weak errors in one block defeat the hard decoder but not ML soft
  // decoding.
  const std::vector<std::uint8_t> bits = {1, 0, 1, 1};
  const auto coded = modem::Encode(modem::CodeScheme::kHamming74, bits);
  std::vector<double> llrs;
  for (auto c : coded) llrs.push_back(c ? -3.0 : 3.0);
  llrs[0] = -llrs[0] * 0.05;  // two low-confidence flips
  llrs[1] = -llrs[1] * 0.05;
  const auto soft = modem::DecodeSoft(modem::CodeScheme::kHamming74, llrs);
  EXPECT_EQ(soft, bits);
}

TEST(Coding, SoftDemodulationEndToEnd) {
  sim::Rng rng(722);
  modem::AcousticModem modem;
  audio::ChannelConfig cfg;
  cfg.distance_m = 0.3;
  audio::AcousticChannel channel(cfg, rng.Fork());
  std::vector<std::uint8_t> payload(40);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto coded = modem::Encode(modem::CodeScheme::kHamming74, payload);
  const auto tx = modem.Modulate(modem::Modulation::kQpsk, coded);
  const auto rx = channel.Transmit(tx.samples, 0.4);
  const auto llrs =
      modem.DemodulateSoft(rx.recording, modem::Modulation::kQpsk, coded.size());
  ASSERT_TRUE(llrs.has_value());
  const auto decoded = modem::DecodeSoft(modem::CodeScheme::kHamming74, *llrs);
  ASSERT_GE(decoded.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(decoded[i], payload[i]) << i;
  }
}

// ------------------------------------------------------------------- wav
TEST(Wav, RoundTripPreservesSignal) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wearlock_test.wav").string();
  sim::Rng rng(73);
  audio::Samples original(4096);
  for (auto& v : original) v = 0.5 * rng.Gaussian();
  audio::Clip(original, 1.0);
  audio::WriteWav(path, original);
  const audio::WavData read = audio::ReadWav(path);
  ASSERT_EQ(read.samples.size(), original.size());
  EXPECT_EQ(read.sample_rate_hz, audio::kSampleRate);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(read.samples[i], original[i], 1.0 / 10000.0) << i;
  }
  std::filesystem::remove(path);
}

TEST(Wav, ClampsOutOfRange) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wearlock_clip.wav").string();
  audio::WriteWav(path, {2.0, -3.0, 0.0});
  const audio::WavData read = audio::ReadWav(path);
  EXPECT_NEAR(read.samples[0], 1.0, 0.001);
  EXPECT_NEAR(read.samples[1], -1.0, 0.001);
  std::filesystem::remove(path);
}

TEST(Wav, ErrorsOnMissingFile) {
  EXPECT_THROW(audio::ReadWav("/nonexistent/nowhere.wav"), std::runtime_error);
}

TEST(Wav, ModemSurvivesWavRoundTrip) {
  // 16-bit quantization must not hurt the modem.
  const std::string path =
      (std::filesystem::temp_directory_path() / "wearlock_frame.wav").string();
  sim::Rng rng(74);
  modem::AcousticModem modem;
  std::vector<std::uint8_t> bits(32);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto tx = modem.Modulate(modem::Modulation::kQpsk, bits);
  audio::WriteWav(path, tx.samples);
  const audio::WavData read = audio::ReadWav(path);
  // Splice into a noisy-lead recording so detection has work to do.
  audio::Samples recording = rng.GaussianVector(4096, 1e-4);
  audio::Append(recording, read.samples);
  audio::Append(recording, rng.GaussianVector(1024, 1e-4));
  const auto result = modem.Demodulate(recording, modem::Modulation::kQpsk, 32);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->bits, bits);
  std::filesystem::remove(path);
}

// ----------------------------------------------------------- fingerprint
TEST(Fingerprint, SameSpeakerMatches) {
  sim::Rng rng(75);
  modem::FrameSpec frame;
  modem::AcousticModem modem(frame);
  audio::SceneConfig sc;
  sc.distance_m = 0.3;
  audio::TwoMicScene scene(sc, rng.Fork());

  protocol::SpeakerVerifier verifier;
  auto observe = [&](audio::TwoMicScene& s) {
    const auto rx = s.TransmitFromPhone(modem.MakeProbeFrame().samples, 0.3);
    const auto probe = modem.AnalyzeProbe(rx.watch_recording);
    EXPECT_TRUE(probe.has_value());
    return protocol::FingerprintFeatures(probe->channel, frame.plan);
  };
  while (!verifier.enrolled()) verifier.Enroll(observe(scene));
  EXPECT_GT(verifier.Match(observe(scene)), verifier.config().match_threshold);
}

TEST(Fingerprint, DifferentSpeakerRejected) {
  sim::Rng rng(76);
  modem::FrameSpec frame;
  modem::AcousticModem modem(frame);
  audio::SceneConfig paired;
  paired.distance_m = 0.3;
  audio::TwoMicScene paired_scene(paired, rng.Fork());
  // A different physical unit: ringing and ripple realization both
  // differ (same-room multipath is common-mode, so discrimination rests
  // on the hardware's own signature being multi-dimensional).
  audio::SceneConfig other = paired;
  other.phone_speaker = audio::SpeakerModel(audio::SpeakerSpec{
      .ringing_tail_s = 0.010,
      .ringing_level = 0.13,
      .phase_ripple_rad = 0.3,
      .ripple_period1_hz = 800.0,
      .ripple_period2_hz = 650.0,
      .ripple_phase1_rad = 2.5,
      .ripple_phase2_rad = 0.4,
  });
  audio::TwoMicScene other_scene(other, rng.Fork());

  protocol::SpeakerVerifier verifier;
  auto observe = [&](audio::TwoMicScene& s) {
    const auto rx = s.TransmitFromPhone(modem.MakeProbeFrame().samples, 0.3);
    const auto probe = modem.AnalyzeProbe(rx.watch_recording);
    EXPECT_TRUE(probe.has_value());
    return protocol::FingerprintFeatures(probe->channel, frame.plan);
  };
  while (!verifier.enrolled()) verifier.Enroll(observe(paired_scene));
  EXPECT_LT(verifier.Match(observe(other_scene)),
            verifier.config().match_threshold);
}

TEST(Fingerprint, InvariantToDistanceAndVolume) {
  sim::Rng rng(77);
  modem::FrameSpec frame;
  modem::AcousticModem modem(frame);
  audio::SceneConfig sc;
  sc.distance_m = 0.2;
  audio::TwoMicScene scene(sc, rng.Fork());

  protocol::SpeakerVerifier verifier;
  auto observe = [&](double volume) {
    const auto rx = scene.TransmitFromPhone(modem.MakeProbeFrame().samples, volume);
    const auto probe = modem.AnalyzeProbe(rx.watch_recording);
    EXPECT_TRUE(probe.has_value());
    return protocol::FingerprintFeatures(probe->channel, frame.plan);
  };
  while (!verifier.enrolled()) verifier.Enroll(observe(0.3));
  // Same speaker, farther away, quieter: still a match.
  scene.set_distance(0.6);
  EXPECT_GT(verifier.Match(observe(0.6)), verifier.config().match_threshold);
}

TEST(Fingerprint, ApiValidation) {
  EXPECT_THROW(protocol::FingerprintSimilarity({1.0}, {1.0, 2.0}),
               std::invalid_argument);
  protocol::SpeakerVerifier verifier;
  EXPECT_THROW(verifier.Match({1.0}), std::logic_error);
  EXPECT_THROW(verifier.Enroll({}), std::invalid_argument);
  EXPECT_THROW(
      protocol::SpeakerVerifier(protocol::FingerprintConfig{.enroll_count = 0}),
      std::invalid_argument);
}

// ----------------------------------------------------- distance bounding
TEST(DistanceBounding, HonestDistanceEstimatedAccurately) {
  sim::Rng rng(78);
  audio::SceneConfig sc;
  sc.distance_m = 0.5;
  audio::TwoMicScene scene(sc, rng.Fork());
  const auto result =
      protocol::AcousticRangeMedian(scene, modem::FrameSpec{}, 0.4, rng, 5);
  ASSERT_TRUE(result.chirp_detected);
  EXPECT_NEAR(result.estimated_distance_m, 0.5, 0.25);
  EXPECT_TRUE(result.within_bound);
}

TEST(DistanceBounding, RelayLatencyInflatesEstimate) {
  sim::Rng rng(79);
  audio::SceneConfig sc;
  sc.distance_m = 0.4;
  audio::TwoMicScene scene(sc, rng.Fork());
  const auto relayed = protocol::AcousticRangeMedian(
      scene, modem::FrameSpec{}, 0.4, rng, 5, {}, /*relay_delay_ms=*/10.0);
  ASSERT_TRUE(relayed.chirp_detected);
  EXPECT_GT(relayed.estimated_distance_m, 3.0);
  EXPECT_FALSE(relayed.within_bound);
}

TEST(DistanceBounding, OutOfRangeNotDetected) {
  sim::Rng rng(80);
  audio::SceneConfig sc;
  sc.distance_m = 6.0;
  audio::TwoMicScene scene(sc, rng.Fork());
  // At 6 m with a whisper-quiet chirp, detection itself should fail.
  const auto result =
      protocol::AcousticRange(scene, modem::FrameSpec{}, 0.005, rng);
  EXPECT_FALSE(result.chirp_detected);
}

}  // namespace
}  // namespace wearlock
