// Simulation substrate tests: RNG determinism, virtual clock, device
// profiles/energy model, wireless link latency models.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/clock.h"
#include "sim/device.h"
#include "sim/rng.h"
#include "sim/wireless.h"

namespace wearlock::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(1);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (c1.UniformInt(0, 1000000) == c2.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  const auto v = rng.GaussianVector(20000, 2.0);
  double mean = 0.0, var = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, UniformBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Clock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.Advance(12.5);
  clock.Advance(0.5);
  EXPECT_EQ(clock.now(), 13.0);
  EXPECT_THROW(clock.Advance(-1.0), std::invalid_argument);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0.0);
}

TEST(Device, ProfileOrdering) {
  // The watch is the slowest device; Nexus 6 the fastest.
  EXPECT_LT(DeviceProfile::Nexus6().compute_scale,
            DeviceProfile::GalaxyNexus().compute_scale);
  EXPECT_LT(DeviceProfile::GalaxyNexus().compute_scale,
            DeviceProfile::Moto360().compute_scale);
}

TEST(Device, ScaleAndEnergy) {
  const auto watch = DeviceProfile::Moto360();
  EXPECT_NEAR(watch.ScaleCompute(2.0), 2.0 * watch.compute_scale, 1e-9);
  // 1000 ms at 380 mW = 380 mJ.
  EXPECT_NEAR(DeviceProfile::EnergyMj(1000.0, 380.0), 380.0, 1e-9);
}

TEST(Device, HostTimerMeasuresWork) {
  const Millis t = TimeHostMs([] {
    volatile double acc = 0.0;
    for (int i = 0; i < 100000; ++i) acc = acc + std::sqrt(static_cast<double>(i));
  });
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1000.0);
  EXPECT_THROW(TimeHostMs(nullptr), std::invalid_argument);
  EXPECT_THROW(TimeHostMedianMs([] {}, 0), std::invalid_argument);
}

TEST(Wireless, WifiFasterThanBluetooth) {
  Rng rng(9);
  WirelessLink bt(LinkModel::Bluetooth(), rng.Fork());
  WirelessLink wifi(LinkModel::Wifi(), rng.Fork());
  double bt_acc = 0.0, wifi_acc = 0.0;
  for (int i = 0; i < 50; ++i) {
    bt_acc += bt.SampleMessageDelay();
    wifi_acc += wifi.SampleMessageDelay();
  }
  EXPECT_GT(bt_acc / 50.0, 2.0 * wifi_acc / 50.0);
}

TEST(Wireless, FileTransferScalesWithSize) {
  Rng rng(10);
  WirelessLink bt(LinkModel::Bluetooth(), rng.Fork());
  double small_acc = 0.0, large_acc = 0.0;
  for (int i = 0; i < 30; ++i) {
    small_acc += bt.SampleFileDelay(10'000);
    large_acc += bt.SampleFileDelay(100'000);
  }
  EXPECT_GT(large_acc, 1.5 * small_acc);
}

TEST(Wireless, DownLinkThrows) {
  Rng rng(11);
  WirelessLink link(LinkModel::Bluetooth(), rng.Fork(), /*connected=*/false);
  EXPECT_FALSE(link.connected());
  EXPECT_THROW(link.SampleMessageDelay(), std::logic_error);
  EXPECT_THROW(link.SampleFileDelay(100), std::logic_error);
  link.set_connected(true);
  EXPECT_NO_THROW(link.SampleMessageDelay());
}

TEST(Wireless, RoundTripIsTwoMessages) {
  Rng rng(12);
  WirelessLink link(LinkModel::Wifi(), rng.Fork());
  double rtt_acc = 0.0, msg_acc = 0.0;
  for (int i = 0; i < 200; ++i) {
    rtt_acc += link.SampleRoundTrip();
    msg_acc += link.SampleMessageDelay();
  }
  EXPECT_NEAR(rtt_acc / 200.0, 2.0 * msg_acc / 200.0, 0.2 * msg_acc / 200.0);
}

}  // namespace
}  // namespace wearlock::sim
