// State-machine / blocking-path equivalence: the tentpole gate for the
// event-driven refactor (docs/architecture.md).
//
// UnlockSession::Attempt is a synchronous shim that drives one
// AttemptMachine to completion on a private queue; StartAsync schedules
// the same machine on a *shared* queue where thousands of sessions
// interleave at stage boundaries. The clock doctrine says interleaving
// must be invisible: each session advances only its own VirtualClock,
// by its own waits, when its own events fire. This suite pins that
// claim - byte-identical outcome fingerprints between the two paths -
// across the fault matrix, distance-bounding cells, impostor cells and
// the retry ladder.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "protocol/session.h"
#include "sim/event_queue.h"
#include "sim/faults.h"

namespace wearlock {
namespace {

using protocol::ScenarioConfig;
using protocol::UnlockReport;
using protocol::UnlockSession;

// The fault matrix's axes (fault_matrix_test.cpp), reused verbatim so
// the equivalence gate covers the same cells the robustness gate pins.
const char* const kFaultSpecs[] = {
    "drop=0.3",
    "spike=0.6x12,dup=0.3",
    "flap@any",
    "trunc=0.35",
};

ScenarioConfig ConfigByIndex(int which) {
  switch (which) {
    case 0: return ScenarioConfig::Config1();
    case 1: return ScenarioConfig::Config2();
    default: return ScenarioConfig::Config3();
  }
}

/// The cell grid: 12 faulted cells (fault matrix), 3 distance-bounding
/// cells (security matrix's defended geometry, no attacker), 3 impostor
/// cells (cross-body motion). Seeds match the source matrices.
constexpr int kFaultCells = 12;
constexpr int kBoundingCells = 3;
constexpr int kImpostorCells = 3;
constexpr int kNumCells = kFaultCells + kBoundingCells + kImpostorCells;

ScenarioConfig CellScenario(int cell) {
  if (cell < kFaultCells) {
    ScenarioConfig c = ConfigByIndex(cell % 3);
    c.scene.environment = audio::Environment::kQuietRoom;
    c.scene.distance_m = 0.3;
    c.faults = sim::FaultPlan::Parse(kFaultSpecs[cell / 3]);
    c.seed = 7000 + static_cast<std::uint64_t>(cell);
    return c;
  }
  if (cell < kFaultCells + kBoundingCells) {
    const int which = cell - kFaultCells;
    ScenarioConfig c = ConfigByIndex(which);
    c.scene.environment = audio::Environment::kQuietRoom;
    c.scene.distance_m = 0.4;
    c.phone.distance_bounding.enable = true;
    c.seed = 9000 + static_cast<std::uint64_t>(which);
    return c;
  }
  const int which = cell - kFaultCells - kBoundingCells;
  ScenarioConfig c = ConfigByIndex(which);
  c.scene.environment = audio::Environment::kOffice;
  c.scene.distance_m = 0.4;
  c.same_body = false;
  c.seed = 11000 + static_cast<std::uint64_t>(which);
  return c;
}

/// Everything about an attempt that must not depend on which queue the
/// machine ran on. Virtual-time stamps are excluded (they include
/// host-measured compute, which jitters run to run); the decisions -
/// outcome, signal statistics, step order, span order, fault sequence -
/// must match byte for byte.
std::string Fingerprint(UnlockSession& session, const UnlockReport& report) {
  std::ostringstream fp;
  fp << std::hexfloat;
  fp << ToString(report.outcome) << "|" << report.unlocked << "|"
     << report.token_ber << "|" << report.required_ber << "|"
     << report.pilot_snr_db << "|" << report.preamble_score << "|"
     << report.ambient_similarity << "|steps:";
  for (const auto& step : report.trace) {
    fp << step.step << "=" << step.detail << ";";
  }
  fp << "|spans:";
  for (const auto& span : session.tracer().spans()) fp << span.name << ",";
  fp << "|faults:";
  if (session.faults() != nullptr) {
    for (const auto& event : session.faults()->events()) {
      fp << ToString(event.kind) << "@" << event.stage << "=" << event.value
         << ";";
    }
  }
  return fp.str();
}

/// The legacy path: one blocking Attempt (or press-and-retry round) on
/// a fresh session.
std::string BlockingFingerprint(int cell, int max_retries) {
  UnlockSession session(CellScenario(cell));
  const UnlockReport report = max_retries > 0
                                  ? session.AttemptWithRetries(max_retries)
                                  : session.Attempt();
  return Fingerprint(session, report);
}

/// The multiplexed path: every cell's session starts at t=0 on ONE
/// shared queue, so their stage boundaries interleave; fingerprints are
/// read back after the common drain.
std::vector<std::string> MultiplexedFingerprints(int max_retries) {
  sim::EventQueue queue;
  std::vector<std::unique_ptr<UnlockSession>> sessions;
  std::vector<UnlockReport> reports(kNumCells);
  sessions.reserve(kNumCells);
  for (int cell = 0; cell < kNumCells; ++cell) {
    sessions.push_back(std::make_unique<UnlockSession>(CellScenario(cell)));
    UnlockReport& slot = reports[static_cast<std::size_t>(cell)];
    sessions.back()->StartAsync(
        queue, max_retries, {},
        [&slot](const UnlockReport& report) { slot = report; });
  }
  const std::size_t events = queue.RunUntilIdle();
  // Multiplexing really happened: every session contributed multiple
  // slices to the shared drain.
  EXPECT_GT(events, static_cast<std::size_t>(kNumCells) * 2);

  std::vector<std::string> fps;
  fps.reserve(kNumCells);
  for (int cell = 0; cell < kNumCells; ++cell) {
    EXPECT_TRUE(sessions[static_cast<std::size_t>(cell)]->async_done());
    fps.push_back(Fingerprint(*sessions[static_cast<std::size_t>(cell)],
                              reports[static_cast<std::size_t>(cell)]));
  }
  return fps;
}

TEST(FleetEquivalenceTest, MultiplexedMatchesBlockingPerCell) {
  const std::vector<std::string> multiplexed =
      MultiplexedFingerprints(/*max_retries=*/0);
  for (int cell = 0; cell < kNumCells; ++cell) {
    SCOPED_TRACE("cell " + std::to_string(cell));
    const std::string blocking = BlockingFingerprint(cell, /*max_retries=*/0);
    EXPECT_FALSE(blocking.empty());
    EXPECT_EQ(blocking, multiplexed[static_cast<std::size_t>(cell)]);
  }
}

TEST(FleetEquivalenceTest, RetryLadderMatchesBlockingPerCell) {
  // Same gate through the press-and-retry ladder: backoff waits become
  // scheduled events, retries rebuild the machine inside the backoff
  // callback - none of which may leak into the outcome.
  const std::vector<std::string> multiplexed =
      MultiplexedFingerprints(/*max_retries=*/2);
  for (int cell = 0; cell < kNumCells; ++cell) {
    SCOPED_TRACE("cell " + std::to_string(cell));
    EXPECT_EQ(BlockingFingerprint(cell, /*max_retries=*/2),
              multiplexed[static_cast<std::size_t>(cell)]);
  }
}

TEST(FleetEquivalenceTest, SharedQueueOrderDoesNotLeakAcrossSessions) {
  // Start the same cells in reverse order on the shared queue: the
  // interleaving changes completely, the fingerprints must not.
  sim::EventQueue queue;
  std::vector<std::unique_ptr<UnlockSession>> sessions(kNumCells);
  std::vector<UnlockReport> reports(kNumCells);
  for (int cell = kNumCells - 1; cell >= 0; --cell) {
    sessions[static_cast<std::size_t>(cell)] =
        std::make_unique<UnlockSession>(CellScenario(cell));
    UnlockReport& slot = reports[static_cast<std::size_t>(cell)];
    sessions[static_cast<std::size_t>(cell)]->StartAsync(
        queue, 0, {}, [&slot](const UnlockReport& report) { slot = report; });
  }
  (void)queue.RunUntilIdle();

  const std::vector<std::string> forward = MultiplexedFingerprints(0);
  for (int cell = 0; cell < kNumCells; ++cell) {
    SCOPED_TRACE("cell " + std::to_string(cell));
    EXPECT_EQ(Fingerprint(*sessions[static_cast<std::size_t>(cell)],
                          reports[static_cast<std::size_t>(cell)]),
              forward[static_cast<std::size_t>(cell)]);
  }
}

}  // namespace
}  // namespace wearlock
