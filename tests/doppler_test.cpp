// Doppler tolerance: the paper picks an LFM chirp preamble because it
// "has nice Doppler-shift insensitivity" (§III-3). These tests move the
// receiver at walking/jogging speeds during the transmission and check
// that detection - and, at moderate speeds, the whole modem - survives.
#include <gtest/gtest.h>

#include "audio/medium.h"
#include "dsp/resample.h"
#include "modem/modem.h"
#include "dsp/fft.h"
#include "sim/rng.h"

namespace wearlock {
namespace {

TEST(WarpTimeLinear, IdentityAtRateOne) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const auto y = dsp::WarpTimeLinear(x, 1.0);
  ASSERT_EQ(y.size(), 4u);
  for (std::size_t i = 0; i + 1 < y.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-12);
}

TEST(WarpTimeLinear, StretchAndCompressLengths) {
  const std::vector<double> x(1000, 0.5);
  EXPECT_EQ(dsp::WarpTimeLinear(x, 2.0).size(), 500u);
  EXPECT_EQ(dsp::WarpTimeLinear(x, 0.5).size(), 2000u);
  EXPECT_THROW(dsp::WarpTimeLinear(x, 0.0), std::invalid_argument);
}

TEST(WarpTimeLinear, ShiftsToneFrequency) {
  // A 1 kHz tone warped by rate 1.01 should read as ~1010 Hz.
  std::vector<double> tone(8192);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = std::sin(2.0 * std::numbers::pi * 1000.0 *
                       static_cast<double>(i) / 44100.0);
  }
  const auto warped = dsp::WarpTimeLinear(tone, 1.01);
  std::vector<double> window(warped.begin(), warped.begin() + 4096);
  const auto spec = dsp::FftReal(window);
  std::size_t peak = 0;
  double best = 0.0;
  for (std::size_t k = 1; k < 2048; ++k) {
    if (std::abs(spec[k]) > best) {
      best = std::abs(spec[k]);
      peak = k;
    }
  }
  const double freq = static_cast<double>(peak) * 44100.0 / 4096.0;
  EXPECT_NEAR(freq, 1010.0, 12.0);
}

class DopplerSweep : public ::testing::TestWithParam<double> {};

TEST_P(DopplerSweep, PreambleSurvivesMotion) {
  // Even at a 3 m/s jog (0.9% frequency shift) the chirp must still be
  // found with a solid score.
  sim::Rng rng(60);
  modem::AcousticModem modem;
  audio::ChannelConfig cfg;
  cfg.distance_m = 0.4;
  cfg.radial_velocity_mps = GetParam();
  audio::AcousticChannel channel(cfg, rng.Fork());
  const auto tx = modem.MakeProbeFrame();
  const auto rx = channel.Transmit(tx.samples, 0.5);
  const auto probe = modem.AnalyzeProbe(rx.recording);
  ASSERT_TRUE(probe.has_value()) << "v=" << GetParam();
  EXPECT_GT(probe->preamble_score, 0.3) << "v=" << GetParam();
}

TEST_P(DopplerSweep, ModemToleratesWalkingSpeeds) {
  // Full payloads at |v| <= 1.5 m/s: the CP sync + per-symbol pilot
  // equalization absorb the drift at walking pace.
  const double v = GetParam();
  if (std::abs(v) > 1.5) GTEST_SKIP() << "payload test covers walking pace";
  sim::Rng rng(61);
  modem::AcousticModem modem;
  audio::ChannelConfig cfg;
  cfg.distance_m = 0.4;
  cfg.radial_velocity_mps = v;
  audio::AcousticChannel channel(cfg, rng.Fork());
  std::vector<std::uint8_t> bits(64);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto tx = modem.Modulate(modem::Modulation::kQpsk, bits);
  const auto rx = channel.Transmit(tx.samples, 0.5);
  const auto result = modem.Demodulate(rx.recording, modem::Modulation::kQpsk,
                                       bits.size());
  ASSERT_TRUE(result.has_value()) << "v=" << v;
  EXPECT_LE(modem::BitErrorRate(result->bits, bits), 0.1) << "v=" << v;
}

INSTANTIATE_TEST_SUITE_P(Speeds, DopplerSweep,
                         ::testing::Values(-3.0, -1.5, -0.5, 0.5, 1.5, 3.0),
                         [](const auto& info) {
                           const double v = info.param;
                           std::string name = v < 0 ? "neg" : "pos";
                           name += std::to_string(static_cast<int>(std::abs(v) * 10));
                           return name;
                         });

}  // namespace
}  // namespace wearlock
