// Datagram layer tests: CRC, byte/bit packing, end-to-end framed
// transfers over the simulated channel across modulation x code sweeps.
#include <gtest/gtest.h>

#include "audio/medium.h"
#include "modem/datagram.h"
#include "sim/rng.h"

namespace wearlock::modem {
namespace {

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const std::vector<std::uint8_t> check = {'1', '2', '3', '4', '5',
                                           '6', '7', '8', '9'};
  EXPECT_EQ(Crc16(check), 0x29B1);
  EXPECT_EQ(Crc16({}), 0xFFFF);
}

TEST(Crc16, DetectsSingleByteChange) {
  std::vector<std::uint8_t> data = {10, 20, 30, 40};
  const std::uint16_t original = Crc16(data);
  data[2] ^= 0x01;
  EXPECT_NE(Crc16(data), original);
}

TEST(Packing, BytesBitsRoundTrip) {
  sim::Rng rng(81);
  std::vector<std::uint8_t> bytes(33);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  EXPECT_EQ(BytesFromBits(BitsFromBytes(bytes)), bytes);
  // Bit order: MSB first.
  const auto bits = BitsFromBytes({0x80});
  EXPECT_EQ(bits[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[static_cast<std::size_t>(i)], 0);
}

class DatagramSweep
    : public ::testing::TestWithParam<std::tuple<Modulation, CodeScheme>> {};

TEST_P(DatagramSweep, RoundTripThroughQuietRoom) {
  const auto [mod, code] = GetParam();
  sim::Rng rng(82);
  AcousticModem modem;
  audio::ChannelConfig cfg;
  cfg.distance_m = 0.3;
  audio::AcousticChannel channel(cfg, rng.Fork());

  DatagramConfig config;
  config.modulation = mod;
  config.code = code;
  const std::string text = "WearLock datagram layer";
  const std::vector<std::uint8_t> payload(text.begin(), text.end());

  const auto tx = SendDatagram(modem, config, payload);
  const auto rx = channel.Transmit(tx.samples, 0.4);
  const auto result = ReceiveDatagram(modem, config, rx.recording);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->crc_ok);
  EXPECT_EQ(result->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DatagramSweep,
    ::testing::Combine(::testing::Values(Modulation::kQpsk, Modulation::kQask,
                                         Modulation::kBpsk),
                       ::testing::Values(CodeScheme::kNone,
                                         CodeScheme::kHamming74,
                                         CodeScheme::kRepetition3)),
    [](const auto& info) {
      return ToString(std::get<0>(info.param)) + "_" +
             (std::get<1>(info.param) == CodeScheme::kNone
                  ? "none"
                  : std::get<1>(info.param) == CodeScheme::kHamming74
                        ? "hamming"
                        : "rep3");
    });

TEST(Datagram, EmptyPayloadWorks) {
  sim::Rng rng(83);
  AcousticModem modem;
  audio::ChannelConfig cfg;
  audio::AcousticChannel channel(cfg, rng.Fork());
  DatagramConfig config;
  const auto tx = SendDatagram(modem, config, {});
  const auto rx = channel.Transmit(tx.samples, 0.4);
  const auto result = ReceiveDatagram(modem, config, rx.recording);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->crc_ok);
  EXPECT_TRUE(result->payload.empty());
}

TEST(Datagram, OversizePayloadRejected) {
  AcousticModem modem;
  DatagramConfig config;
  config.max_payload_bytes = 8;
  EXPECT_THROW(SendDatagram(modem, config, std::vector<std::uint8_t>(9)),
               std::invalid_argument);
}

TEST(Datagram, CorruptionFlaggedByCrc) {
  // Force heavy corruption: transmit far beyond the working range.
  sim::Rng rng(84);
  AcousticModem modem;
  audio::ChannelConfig cfg;
  cfg.distance_m = 2.5;
  cfg.environment = audio::Environment::kCafe;
  audio::AcousticChannel channel(cfg, rng.Fork());
  DatagramConfig config;
  config.code = CodeScheme::kNone;
  const std::vector<std::uint8_t> payload(32, 0x5A);
  const auto tx = SendDatagram(modem, config, payload);
  const auto rx = channel.Transmit(tx.samples, 0.5);
  const auto result = ReceiveDatagram(modem, config, rx.recording);
  // Either the frame is lost entirely, the corrupted length field makes
  // the header unusable, or the CRC flags the damage; silent corruption
  // (crc_ok with wrong payload) must never happen.
  if (result && result->crc_ok) {
    EXPECT_EQ(result->payload, payload);
  }
}

TEST(Datagram, NoFrameInSilence) {
  sim::Rng rng(85);
  AcousticModem modem;
  DatagramConfig config;
  const audio::Samples silence = rng.GaussianVector(16384, 1e-5);
  EXPECT_FALSE(ReceiveDatagram(modem, config, silence).has_value());
}

// Property: any (payload, modulation, code, interleave depth) combination
// survives a clean loopback - the TX waveform fed straight back into the
// receiver - with crc_ok and a bit-exact payload. 120 random cases.
TEST(DatagramProperty, CleanLoopbackRoundTripIdentity) {
  sim::Rng rng(8600);
  AcousticModem modem;
  const std::vector<Modulation>& mods = AllModulations();
  const std::vector<CodeScheme> codes = {
      CodeScheme::kNone, CodeScheme::kHamming74, CodeScheme::kRepetition3};

  for (int trial = 0; trial < 120; ++trial) {
    DatagramConfig config;
    config.modulation =
        mods[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<int>(mods.size()) - 1))];
    config.code =
        codes[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<int>(codes.size()) - 1))];
    config.interleave_depth =
        static_cast<std::size_t>(rng.UniformInt(1, 8));
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(rng.UniformInt(0, 24)));
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    }

    const auto tx = SendDatagram(modem, config, payload);
    const auto result = ReceiveDatagram(modem, config, tx.samples);
    ASSERT_TRUE(result.has_value())
        << "trial " << trial << " " << ToString(config.modulation)
        << " code=" << ToString(config.code)
        << " depth=" << config.interleave_depth
        << " bytes=" << payload.size();
    EXPECT_TRUE(result->crc_ok) << "trial " << trial;
    EXPECT_EQ(result->payload, payload) << "trial " << trial;
  }
}

// Property: a corrupted frame must never be reported as crc_ok with the
// wrong payload - it is either lost, rejected, or decoded correctly
// (codes may genuinely repair light damage). 120 random corruptions.
TEST(DatagramProperty, CorruptedFramesNeverPassCrcSilently) {
  sim::Rng rng(8700);
  AcousticModem modem;

  for (int trial = 0; trial < 120; ++trial) {
    DatagramConfig config;
    config.code = rng.Chance(0.5) ? CodeScheme::kNone : CodeScheme::kHamming74;
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(rng.UniformInt(4, 24)));
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    }
    auto tx = SendDatagram(modem, config, payload);

    // Smash a random contiguous chunk of the waveform (past the header
    // region, so detection still has a chance) with strong noise.
    const std::size_t n = tx.samples.size();
    const std::size_t chunk = static_cast<std::size_t>(
        rng.UniformInt(static_cast<int>(n / 20), static_cast<int>(n / 4)));
    const std::size_t start = static_cast<std::size_t>(rng.UniformInt(
        static_cast<int>(n / 3), static_cast<int>(n - chunk - 1)));
    for (std::size_t i = start; i < start + chunk; ++i) {
      tx.samples[i] = rng.Gaussian(0.5);
    }

    const auto result = ReceiveDatagram(modem, config, tx.samples);
    if (result && result->crc_ok) {
      EXPECT_EQ(result->payload, payload)
          << "trial " << trial << ": CRC passed on a corrupted frame with "
          << "the wrong payload (silent corruption)";
    }
  }
}

// Property: the interleaver is transparent end-to-end - for the same
// payload and seed-matched channels, any depth yields the same decoded
// payload as depth 1 in clean conditions.
TEST(DatagramProperty, InterleaveDepthIsTransparentOverCleanChannel) {
  sim::Rng rng(8800);
  AcousticModem modem;
  const std::vector<std::uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF,
                                             0x00, 0xFF, 0x42, 0x7A};
  for (std::size_t depth : {1u, 2u, 3u, 5u, 8u, 16u}) {
    audio::ChannelConfig cfg;
    cfg.distance_m = 0.3;
    audio::AcousticChannel channel(cfg, sim::Rng(8801));

    DatagramConfig config;
    config.code = CodeScheme::kHamming74;
    config.interleave_depth = depth;
    const auto tx = SendDatagram(modem, config, payload);
    const auto rx = channel.Transmit(tx.samples, 0.4);
    const auto result = ReceiveDatagram(modem, config, rx.recording);
    ASSERT_TRUE(result.has_value()) << "depth " << depth;
    EXPECT_TRUE(result->crc_ok) << "depth " << depth;
    EXPECT_EQ(result->payload, payload) << "depth " << depth;
  }
}

}  // namespace
}  // namespace wearlock::modem
