// Minimal JSON well-formedness checker for telemetry-export tests: a
// strict recursive-descent parser that accepts exactly RFC 8259 JSON
// and reports the first error offset. Validation only - no DOM - so
// golden-file tests stay dependency-free.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace wearlock::testing {

class JsonChecker {
 public:
  /// True when `text` is one complete, well-formed JSON value (with
  /// optional surrounding whitespace). On failure `error()` describes
  /// what went wrong and where.
  bool Check(const std::string& text) {
    text_ = &text;
    pos_ = 0;
    error_.clear();
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    if (pos_ != text.size()) return Fail("trailing characters");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  char Peek() const {
    return pos_ < text_->size() ? (*text_)[pos_] : '\0';
  }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_->size()) {
      const char c = (*text_)[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Eat(*p)) return Fail(std::string("bad literal, expected ") + word);
    }
    return true;
  }

  bool String() {
    if (!Eat('"')) return Fail("expected string");
    while (true) {
      if (pos_ >= text_->size()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>((*text_)[pos_++]);
      if (c == '"') return true;
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        if (pos_ >= text_->size()) return Fail("unterminated escape");
        const char e = (*text_)[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_->size() ||
                !std::isxdigit(static_cast<unsigned char>((*text_)[pos_]))) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
      }
    }
  }

  bool Digits() {
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("expected digit");
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    return true;
  }

  bool Number() {
    Eat('-');
    if (Eat('0')) {
      // No leading zeros.
    } else if (!Digits()) {
      return false;
    }
    if (Eat('.') && !Digits()) return false;
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!Digits()) return false;
    }
    return true;
  }

  bool Value() {
    switch (Peek()) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    Eat('{');
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Eat(':')) return Fail("expected ':'");
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return Fail("expected ',' or '}'");
    }
  }

  bool Array() {
    Eat('[');
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return Fail("expected ',' or ']'");
    }
  }

  const std::string* text_ = nullptr;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace wearlock::testing
