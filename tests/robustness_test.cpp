// Parser/receiver robustness: hostile or malformed inputs must produce
// clean failures (nullopt / exceptions), never crashes, hangs, or
// phantom successes. Plus spectrogram utility tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <algorithm>
#include <fstream>
#include <numbers>

#include "audio/wav.h"
#include "dsp/spectrogram.h"
#include "modem/datagram.h"
#include "modem/modem.h"
#include "modem/streaming.h"
#include "sim/rng.h"

namespace wearlock {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------------------------ wav parser
TEST(WavFuzz, RandomBytesRejectedCleanly) {
  sim::Rng rng(700);
  const std::string path = TempPath("wearlock_fuzz.wav");
  for (int round = 0; round < 30; ++round) {
    std::vector<char> junk(static_cast<std::size_t>(rng.UniformInt(0, 4096)));
    for (auto& b : junk) b = static_cast<char>(rng.UniformInt(0, 255));
    {
      std::ofstream f(path, std::ios::binary);
      f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
    }
    EXPECT_THROW(audio::ReadWav(path), std::runtime_error) << round;
  }
  std::filesystem::remove(path);
}

TEST(WavFuzz, TruncatedValidFileRejectedOrSafe) {
  sim::Rng rng(701);
  const std::string path = TempPath("wearlock_trunc.wav");
  audio::Samples samples = rng.GaussianVector(2048, 0.1);
  audio::WriteWav(path, samples);
  // Read the full bytes, then rewrite truncated prefixes.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (std::size_t cut : {0u, 4u, 11u, 44u, 100u, 2000u}) {
    const std::size_t keep = std::min(cut, bytes.size());
    {
      std::ofstream f(path, std::ios::binary);
      f.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    // Either a clean error or a shorter-but-valid read; never a crash.
    try {
      const auto wav = audio::ReadWav(path);
      EXPECT_LE(wav.samples.size(), samples.size());
    } catch (const std::runtime_error&) {
    }
  }
  std::filesystem::remove(path);
}

// -------------------------------------------------------- modem receivers
TEST(ModemFuzz, GarbageRecordingsNeverCrashOrFalselyDecode) {
  sim::Rng rng(702);
  modem::AcousticModem modem;
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 256 + rng.UniformInt(0, 20000);
    audio::Samples garbage = rng.GaussianVector(n, rng.Uniform(1e-6, 0.5));
    const auto hard =
        modem.Demodulate(garbage, modem::Modulation::kQpsk, 32);
    const auto probe = modem.AnalyzeProbe(garbage);
    // Nothing to assert beyond "no crash" - decodes of noise are allowed
    // to return bits (the OTP layer rejects them) but must be well-formed.
    if (hard) {
      EXPECT_EQ(hard->bits.size(), 32u);
    }
    if (probe) {
      EXPECT_EQ(probe->noise_power.size(), 256u);
    }
  }
}

TEST(ModemFuzz, DatagramNeverReportsCrcOkOnNoise) {
  sim::Rng rng(703);
  modem::AcousticModem modem;
  modem::DatagramConfig config;
  int crc_ok = 0;
  for (int round = 0; round < 20; ++round) {
    audio::Samples noise = rng.GaussianVector(30000, 0.05);
    const auto result = modem::ReceiveDatagram(modem, config, noise);
    if (result && result->crc_ok) ++crc_ok;
  }
  // CRC-16 on random data passes with p ~ 2^-16; zero expected here.
  EXPECT_EQ(crc_ok, 0);
}

TEST(ModemFuzz, StreamingSurvivesAdversarialChunks) {
  sim::Rng rng(704);
  modem::StreamingReceiver rx{modem::FrameSpec{}};
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = rng.UniformInt(0, 3000);
    rx.Push(rng.GaussianVector(n, rng.Uniform(1e-6, 0.3)));
    if (rx.state() == modem::StreamState::kDone ||
        rx.state() == modem::StreamState::kFailed) {
      rx.Reset();
    }
    // The memory bound must hold through all state churn.
    EXPECT_LE(rx.buffered_samples(), 16384u + 3000u + 50000u);
  }
}

// ------------------------------------------------------------ spectrogram
TEST(Spectrogram, ShapeAndToneLocation) {
  // A 3 kHz tone must light up the right row.
  std::vector<double> tone(8192);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = std::sin(2.0 * std::numbers::pi * 3000.0 *
                       static_cast<double>(i) / 44100.0);
  }
  const auto spec = dsp::ComputeSpectrogram(tone);
  ASSERT_FALSE(spec.power_db.empty());
  EXPECT_EQ(spec.power_db.front().size(), 128u);
  // Find the loudest bin of a middle frame.
  const auto& frame = spec.power_db[spec.power_db.size() / 2];
  std::size_t peak = 0;
  for (std::size_t k = 1; k < frame.size(); ++k) {
    if (frame[k] > frame[peak]) peak = k;
  }
  EXPECT_NEAR(static_cast<double>(peak) * spec.bin_hz, 3000.0, spec.bin_hz);
}

TEST(Spectrogram, AsciiRenderHasExpectedGeometry) {
  sim::Rng rng(705);
  const auto spec = dsp::ComputeSpectrogram(rng.GaussianVector(8192, 0.1));
  const std::string art = dsp::RenderAscii(spec, 40, 10);
  // 10 data rows + 1 axis row.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 11);
}

TEST(Spectrogram, Validation) {
  EXPECT_THROW(dsp::ComputeSpectrogram({}), std::invalid_argument);
  dsp::SpectrogramOptions bad;
  bad.fft_size = 100;
  EXPECT_THROW(dsp::ComputeSpectrogram(std::vector<double>(500, 0.1), bad),
               std::invalid_argument);
  bad.fft_size = 256;
  bad.hop = 0;
  EXPECT_THROW(dsp::ComputeSpectrogram(std::vector<double>(500, 0.1), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace wearlock
