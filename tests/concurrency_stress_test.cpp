// Concurrency stress: genuine cross-thread traffic for the TSan leg of
// tools/ci.sh (and a functional smoke test everywhere else).
//
// Three pressure points:
//   * N parallel UnlockSessions, each with its own tracer/registry -
//     session telemetry is thread-confined by design, and same-seed
//     sessions must stay bit-identical even when racing;
//   * the process-wide MetricsRegistry::Default() hammered from every
//     thread (lock-free observation paths + mutex-guarded registration
//     + concurrent JSON snapshots);
//   * obs::Log sink swaps racing live emission (the race this PR fixed).
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "protocol/session.h"

namespace wearlock {
namespace {

using protocol::ScenarioConfig;
using protocol::UnlockReport;
using protocol::UnlockSession;

// Acceptance bar for the TSan leg: at least 4 concurrent sessions.
constexpr int kSessions = 6;

/// One full unlock attempt on its own session; returns a fingerprint
/// of everything that must be deterministic under a fixed seed. Phase
/// timings are deliberately excluded: virtual time advances by
/// host-measured compute (see obs/trace.h), so durations jitter while
/// outcomes, signal statistics and span structure must not.
std::string AttemptFingerprint(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  UnlockSession session(config);
  const UnlockReport report = session.Attempt();

  std::ostringstream fp;
  fp << static_cast<int>(report.outcome) << "|" << report.unlocked << "|"
     << report.token_ber << "|" << report.pilot_snr_db << "|"
     << report.preamble_score << "|" << report.ambient_similarity
     << "|spans:";
  for (const auto& span : session.tracer().spans()) fp << span.name << ",";
  return fp.str();
}

TEST(ConcurrencyStressTest, ParallelSessionsWithDistinctSeeds) {
  std::vector<std::thread> workers;
  std::vector<std::string> fingerprints(kSessions);
  std::atomic<int> unlocked{0};
  for (int i = 0; i < kSessions; ++i) {
    workers.emplace_back([i, &fingerprints, &unlocked] {
      fingerprints[static_cast<std::size_t>(i)] =
          AttemptFingerprint(1000 + static_cast<std::uint64_t>(i));
      ScenarioConfig config;
      config.seed = 2000 + static_cast<std::uint64_t>(i);
      UnlockSession session(config);
      if (session.AttemptWithRetries(2).unlocked) ++unlocked;
    });
  }
  for (std::thread& t : workers) t.join();
  for (const std::string& fp : fingerprints) {
    EXPECT_FALSE(fp.empty());
    EXPECT_NE(fp.find("spans:"), std::string::npos);
  }
  // The default quiet-ish scenario should mostly succeed; the exact
  // count is seed-dependent, but a silent total failure means the
  // pipeline broke under concurrency.
  EXPECT_GT(unlocked.load(), 0);
}

TEST(ConcurrencyStressTest, SameSeedSessionsAreBitIdenticalAcrossThreads) {
  std::vector<std::thread> workers;
  std::vector<std::string> fingerprints(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    workers.emplace_back([i, &fingerprints] {
      fingerprints[static_cast<std::size_t>(i)] = AttemptFingerprint(42);
    });
  }
  for (std::thread& t : workers) t.join();
  for (int i = 1; i < kSessions; ++i) {
    EXPECT_EQ(fingerprints[0], fingerprints[static_cast<std::size_t>(i)])
        << "session " << i << " diverged under concurrency";
  }
}

TEST(ConcurrencyStressTest, DefaultRegistryHammeredFromAllThreads) {
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  auto& registry = obs::MetricsRegistry::Default();
  const std::string tag = "stress.default_registry";
  registry.GetCounter(tag + ".count");  // pre-register one metric

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &tag, t] {
      for (int i = 0; i < kIters; ++i) {
        registry.GetCounter(tag + ".count").Add();
        registry.GetGauge(tag + ".gauge").Add(1.0);
        registry.GetHistogram(tag + ".hist").Observe(i % 100);
        registry.GetSeries(tag + ".series").Observe(t * kIters + i);
        if (i % 1000 == 0) {
          // Concurrent snapshots must see internally consistent state.
          std::ostringstream snapshot;
          registry.WriteJson(snapshot);
          ASSERT_FALSE(snapshot.str().empty());
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(registry.GetCounter(tag + ".count").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(registry.GetGauge(tag + ".gauge").value(),
                   static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(registry.GetHistogram(tag + ".hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ConcurrencyStressTest, SnapshotsDuringHistogramHammerStayConsistent) {
  // The torn-snapshot interleaving the telemetry PR fixed: a Snapshot()
  // taken mid-Observe must never report count != sum(buckets) (the old
  // serialization read `count_` and the buckets in separate passes).
  // Sketch observation rides along so snapshotting covers every
  // registry section under contention.
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.GetHistogram("stress.snap.hist");
  obs::Sketch& sketch = registry.GetSketch("stress.snap.sketch");
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist, &sketch, t] {
      for (int i = 0; i < kIters; ++i) {
        hist.Observe((t * 37 + i) % 200);
        sketch.Observe(1.0 + (i % 100));
      }
    });
  }

  std::uint64_t snapshots_taken = 0;
  std::thread snapshotter([&registry, &stop, &snapshots_taken] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snap = registry.Snapshot();
      const auto it = snap.histograms.find("stress.snap.hist");
      if (it != snap.histograms.end()) {
        std::uint64_t bucket_sum = 0;
        for (const std::uint64_t b : it->second.buckets) bucket_sum += b;
        ASSERT_EQ(it->second.count, bucket_sum)
            << "torn histogram snapshot: count diverged from buckets";
      }
      ++snapshots_taken;
    }
  });

  for (std::thread& t : writers) t.join();
  stop = true;
  snapshotter.join();
  EXPECT_GT(snapshots_taken, 0u);

  const obs::MetricsSnapshot final_snap = registry.Snapshot();
  const auto& data = final_snap.histograms.at("stress.snap.hist");
  EXPECT_EQ(data.count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(final_snap.sketches.at("stress.snap.sketch").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ConcurrencyStressTest, LogSinkSwapsRaceLiveEmission) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<std::uint64_t> received{0};
  std::atomic<bool> stop{false};

  std::thread swapper([&received, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      obs::SetLogSink([&received](obs::LogLevel, const std::string&,
                                  const std::string&) { ++received; });
      obs::SetLogSink({});  // discard
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        obs::Log(obs::LogLevel::kWarn, "stress.log",
                 "thread " + std::to_string(t) + " msg " + std::to_string(i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop = true;
  swapper.join();
  obs::SetLogSink({});
  // Every record hit either the counting sink or the discard default;
  // the point is that TSan sees no race and nothing crashes.
  EXPECT_LE(received.load(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace wearlock
