// Observability substrate tests: metrics registry semantics, lock-free
// concurrent observation, span nesting under a virtual clock, logging
// sinks, and JSON export well-formedness.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "json_check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/clock.h"

namespace wearlock::obs {
namespace {

// --- metrics ----------------------------------------------------------

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
}

TEST(Histogram, UpperBoundInclusiveBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0 (inclusive upper bound)
  h.Observe(1.5);   // bucket 1
  h.Observe(4.0);   // bucket 2
  h.Observe(100.0); // overflow
  const auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
  EXPECT_NEAR(h.mean(), h.sum() / 5.0, 1e-12);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BoundsGenerators) {
  const auto lin = Histogram::LinearBounds(1.0, 0.5, 4);
  ASSERT_EQ(lin.size(), 4u);
  EXPECT_DOUBLE_EQ(lin[0], 1.0);
  EXPECT_DOUBLE_EQ(lin[3], 2.5);
  const auto exp = Histogram::ExponentialBounds(0.1, 2.0, 5);
  ASSERT_EQ(exp.size(), 5u);
  EXPECT_DOUBLE_EQ(exp[0], 0.1);
  EXPECT_NEAR(exp[4], 1.6, 1e-12);
  EXPECT_FALSE(Histogram::DefaultLatencyBounds().empty());
}

TEST(Series, KeepsExactSamplesUpToCap) {
  Series s(3);
  s.Observe(1.0);
  s.Observe(2.0);
  s.Observe(3.0);
  s.Observe(4.0);  // past the cap: counted, not stored
  EXPECT_EQ(s.Values(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.dropped(), 1u);
  s.Clear();
  EXPECT_TRUE(s.Values().empty());
  EXPECT_EQ(s.count(), 0u);
}

TEST(MetricsRegistry, GetReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  a.Add(7);
  EXPECT_EQ(&registry.GetCounter("x"), &a);
  EXPECT_EQ(registry.GetCounter("x").value(), 7u);
  // Kinds have separate namespaces.
  registry.GetGauge("x").Set(1.0);
  EXPECT_EQ(registry.GetCounter("x").value(), 7u);
}

TEST(MetricsRegistry, FirstHistogramBoundsWin) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(&registry.GetHistogram("h", {5.0}), &h);
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, SeriesValuesWithoutRegistering) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.SeriesValues("never").empty());
  registry.GetSeries("s").Observe(3.0);
  EXPECT_EQ(registry.SeriesValues("s"), std::vector<double>{3.0});
}

TEST(MetricsRegistry, ConcurrentIncrementsDontLoseCounts) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("shared").Add();
        registry.GetHistogram("lat", {1.0, 10.0}).Observe(i % 20);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.GetHistogram("lat").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, WriteJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("c.one").Add(3);
  registry.GetGauge("g\"quoted").Set(-0.25);
  registry.GetHistogram("h.lat", {0.5, 1.5}).Observe(1.0);
  registry.GetSeries("s.ms").Observe(12.0);
  std::ostringstream os;
  registry.WriteJson(os);
  testing::JsonChecker checker;
  EXPECT_TRUE(checker.Check(os.str())) << checker.error() << "\n" << os.str();
}

TEST(CurrentMetrics, DefaultsAndScopedInstall) {
  EXPECT_EQ(CurrentMetrics(), &MetricsRegistry::Default());
  MetricsRegistry outer, inner;
  {
    ScopedMetricsRegistry a(&outer);
    EXPECT_EQ(CurrentMetrics(), &outer);
    {
      ScopedMetricsRegistry b(&inner);
      EXPECT_EQ(CurrentMetrics(), &inner);
    }
    EXPECT_EQ(CurrentMetrics(), &outer);
  }
  EXPECT_EQ(CurrentMetrics(), &MetricsRegistry::Default());
}

// --- tracing ----------------------------------------------------------

TEST(Tracer, SpansNestAndTimestampFromVirtualClock) {
  sim::VirtualClock clock;
  Tracer tracer([&clock] { return clock.now(); });
  const std::size_t root = tracer.BeginSpan("attempt");
  clock.Advance(10.0);
  const std::size_t child = tracer.BeginSpan("probe");
  clock.Advance(5.0);
  tracer.EndSpan(child);
  clock.Advance(1.0);
  tracer.EndSpan(root);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& r = tracer.spans()[root];
  const SpanRecord& c = tracer.spans()[child];
  EXPECT_EQ(r.depth, 0);
  EXPECT_EQ(r.parent, SpanRecord::kNoParent);
  EXPECT_EQ(c.depth, 1);
  EXPECT_EQ(c.parent, root);
  EXPECT_DOUBLE_EQ(r.start_ms, 0.0);
  EXPECT_DOUBLE_EQ(c.start_ms, 10.0);
  EXPECT_DOUBLE_EQ(c.end_ms, 15.0);
  EXPECT_DOUBLE_EQ(r.end_ms, 16.0);
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(c.finished);
  EXPECT_EQ(tracer.open_depth(), 0u);
}

TEST(Tracer, OutOfOrderEndClosesChildren) {
  Tracer tracer;
  const std::size_t outer = tracer.BeginSpan("outer");
  const std::size_t inner = tracer.BeginSpan("inner");
  tracer.EndSpan(outer);  // closes inner too
  EXPECT_TRUE(tracer.spans()[inner].finished);
  EXPECT_TRUE(tracer.spans()[outer].finished);
  EXPECT_EQ(tracer.open_depth(), 0u);
}

TEST(Tracer, ScopedSpanIsNullTracerSafe) {
  ScopedSpan span(nullptr, "orphan");
  span.Attr("k", 1.0);
  span.Attr("k", "v");
  span.End();  // all no-ops; must not crash
  EXPECT_EQ(span.tracer(), nullptr);
}

TEST(Tracer, ScopedSpanEndIsIdempotent) {
  sim::VirtualClock clock;
  Tracer tracer([&clock] { return clock.now(); });
  {
    ScopedSpan span(&tracer, "stage");
    clock.Advance(2.0);
    span.End();
    clock.Advance(100.0);  // destructor must not move end_ms
  }
  EXPECT_DOUBLE_EQ(tracer.spans()[0].end_ms, 2.0);
}

TEST(Tracer, JsonlAndChromeExportsAreWellFormed) {
  sim::VirtualClock clock;
  Tracer tracer([&clock] { return clock.now(); });
  const std::size_t root = tracer.BeginSpan("attempt");
  tracer.Annotate(root, "outcome", std::string("unlocked \"quoted\"\n"));
  tracer.Annotate(root, "snr_db", 17.25);
  clock.Advance(3.0);
  const std::size_t zero = tracer.BeginSpan("zero_duration");
  tracer.EndSpan(zero);
  tracer.EndSpan(root);
  tracer.BeginSpan("dangling");  // left open: exporter must still close

  testing::JsonChecker checker;
  std::ostringstream chrome;
  tracer.WriteChromeTrace(chrome);
  EXPECT_TRUE(checker.Check(chrome.str())) << checker.error();
  // Every B has a matching E even for the dangling span.
  std::size_t begins = 0, ends = 0, at = 0;
  const std::string text = chrome.str();
  while ((at = text.find("\"ph\":\"B\"", at)) != std::string::npos) {
    ++begins;
    at += 8;
  }
  at = 0;
  while ((at = text.find("\"ph\":\"E\"", at)) != std::string::npos) {
    ++ends;
    at += 8;
  }
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(ends, begins);

  std::ostringstream jsonl;
  tracer.WriteJsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(checker.Check(line)) << checker.error() << "\n" << line;
    ++n;
  }
  EXPECT_EQ(n, 3u);
}

TEST(Tracer, ClearResets) {
  Tracer tracer;
  tracer.BeginSpan("a");
  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.open_depth(), 0u);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  testing::JsonChecker checker;
  EXPECT_TRUE(checker.Check(os.str())) << checker.error();
}

TEST(CurrentTracerTest, NullByDefaultScopedInstall) {
  EXPECT_EQ(CurrentTracer(), nullptr);
  Tracer tracer;
  {
    ScopedTracer install(&tracer);
    EXPECT_EQ(CurrentTracer(), &tracer);
  }
  EXPECT_EQ(CurrentTracer(), nullptr);
}

// --- logging ----------------------------------------------------------

TEST(Log, SinkReceivesAtOrAboveThreshold) {
  std::vector<std::string> got;
  SetLogSink([&got](LogLevel level, const std::string& component,
                    const std::string& message) {
    got.push_back(std::string(ToString(level)) + " " + component + ": " +
                  message);
  });
  SetLogThreshold(LogLevel::kInfo);
  Log(LogLevel::kDebug, "test", "dropped");
  Log(LogLevel::kWarn, "test", "kept");
  SetLogSink({});  // restore the discarding default
  SetLogThreshold(LogLevel::kInfo);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "WARN test: kept");
}

}  // namespace
}  // namespace wearlock::obs
