// Cross-cutting protocol properties: determinism, accounting
// consistency, gate monotonicity - invariants that should hold across
// any scenario, checked over parameterized sweeps.
#include <gtest/gtest.h>

#include "protocol/session.h"

namespace wearlock::protocol {
namespace {

ScenarioConfig Scenario(std::uint64_t seed, audio::Environment env,
                        double distance) {
  ScenarioConfig config = ScenarioConfig::Config1();
  config.seed = seed;
  config.scene.environment = env;
  config.scene.distance_m = distance;
  return config;
}

class SeededScenarios
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(SeededScenarios, SameSeedSameOutcome) {
  const auto [seed, distance] = GetParam();
  // Two fresh sessions with identical configs must agree on everything
  // observable (full determinism through DSP, RNG forks, link jitter).
  const ScenarioConfig config =
      Scenario(seed, audio::Environment::kOffice, distance);
  UnlockSession a(config), b(config);
  const auto ra = a.Attempt();
  const auto rb = b.Attempt();
  EXPECT_EQ(ra.outcome, rb.outcome);
  EXPECT_EQ(ra.unlocked, rb.unlocked);
  EXPECT_DOUBLE_EQ(ra.pilot_snr_db, rb.pilot_snr_db);
  EXPECT_DOUBLE_EQ(ra.token_ber, rb.token_ber);
  EXPECT_EQ(ra.mode.has_value(), rb.mode.has_value());
  if (ra.mode && rb.mode) {
    EXPECT_EQ(*ra.mode, *rb.mode);
  }
  EXPECT_EQ(ra.trace.size(), rb.trace.size());
}

TEST_P(SeededScenarios, TimingsAndEnergyNonNegative) {
  const auto [seed, distance] = GetParam();
  UnlockSession session(
      Scenario(seed, audio::Environment::kClassroom, distance));
  const auto r = session.Attempt();
  EXPECT_GE(r.timings.phase1_audio_ms, 0.0);
  EXPECT_GE(r.timings.phase1_comm_ms, 0.0);
  EXPECT_GE(r.timings.phase1_compute_ms, 0.0);
  EXPECT_GE(r.timings.phase2_audio_ms, 0.0);
  EXPECT_GE(r.timings.phase2_comm_ms, 0.0);
  EXPECT_GE(r.timings.phase2_compute_ms, 0.0);
  EXPECT_GE(r.watch_energy_mj, 0.0);
  EXPECT_GE(r.phone_energy_mj, 0.0);
  // An unlocked attempt always went through both phases.
  if (r.unlocked && r.mode) {
    EXPECT_GT(r.timings.phase1_audio_ms, 0.0);
    EXPECT_GT(r.timings.phase2_audio_ms, 0.0);
  }
}

TEST_P(SeededScenarios, UnlockImpliesBoundsHeld) {
  const auto [seed, distance] = GetParam();
  UnlockSession session(Scenario(seed, audio::Environment::kOffice, distance));
  const auto r = session.Attempt();
  if (r.unlocked && r.mode) {
    EXPECT_LE(r.token_ber, r.required_ber);
    EXPECT_GT(r.preamble_score, 0.05);
    EXPECT_GT(r.ambient_similarity, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeededScenarios,
    ::testing::Combine(::testing::Values(10ull, 20ull, 30ull),
                       ::testing::Values(0.2, 0.5, 1.0)),
    [](const auto& info) {
      // Piecewise: dodges GCC 12 -Wrestrict at -O3.
      std::string name(1, 's');
      name += std::to_string(std::get<0>(info.param));
      name += "_d";
      name += std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
      return name;
    });

TEST(ProtocolProperties, OutcomeDistancesAreMonotoneInAggregate) {
  // Aggregate unlock rate must not increase with distance.
  auto rate_at = [](double distance) {
    int ok = 0;
    for (std::uint64_t seed = 40; seed < 48; ++seed) {
      UnlockSession session(
          Scenario(seed, audio::Environment::kQuietRoom, distance));
      if (session.Attempt().unlocked) ++ok;
    }
    return ok;
  };
  const int near = rate_at(0.3);
  const int mid = rate_at(1.3);
  const int far = rate_at(2.5);
  EXPECT_GE(near, mid);
  EXPECT_GE(mid, far);
  EXPECT_EQ(far, 0);
  EXPECT_GE(near, 7);
}

TEST(ProtocolProperties, ForceTransmitNeverLoosensValidation) {
  // Campaign mode transmits more but must not accept worse tokens.
  ScenarioConfig config = Scenario(50, audio::Environment::kCafe, 0.3);
  config.phone.force_transmit = true;
  UnlockSession session(config);
  for (int i = 0; i < 5; ++i) {
    session.keyguard().Relock();
    if (!session.keyguard().CanAttemptWearlock()) {
      session.keyguard().UnlockWithCredential();
      session.keyguard().Relock();
    }
    const auto r = session.Attempt();
    if (r.unlocked) {
      EXPECT_LE(r.token_ber, r.required_ber);
    }
  }
}

TEST(ProtocolProperties, EnergySplitsFollowOffloadSite) {
  // Offloading: phone pays compute energy; local: phone pays none.
  ScenarioConfig remote = Scenario(60, audio::Environment::kQuietRoom, 0.3);
  remote.processing = ProcessingSite::kOffloadToPhone;
  UnlockSession rs(remote);
  const auto rr = rs.Attempt();
  ASSERT_TRUE(rr.unlocked);
  EXPECT_GT(rr.phone_energy_mj, 0.0);

  ScenarioConfig local = Scenario(60, audio::Environment::kQuietRoom, 0.3);
  local.processing = ProcessingSite::kWatchLocal;
  UnlockSession ls(local);
  const auto lr = ls.Attempt();
  ASSERT_TRUE(lr.unlocked);
  EXPECT_EQ(lr.phone_energy_mj, 0.0);
  EXPECT_GT(lr.watch_energy_mj, rr.watch_energy_mj);
}

TEST(ProtocolProperties, TraceTimesMatchClock) {
  UnlockSession session(Scenario(70, audio::Environment::kOffice, 0.3));
  const auto r = session.Attempt();
  ASSERT_FALSE(r.trace.empty());
  EXPECT_LE(r.trace.back().at_ms, session.clock().now() + 1e-9);
}

}  // namespace
}  // namespace wearlock::protocol
