// Fault-injection matrix: the tentpole robustness gate.
//
// Sweeps {message drop, delay spike, link flap, truncated recording}
// across the paper's three delay configurations and pins the
// resilience contract (docs/robustness.md):
//
//   * every faulted attempt terminates with a *defined* outcome well
//     inside the total deadline - no hangs, no undefined states;
//   * no false unlocks: an unlock under faults still means the token
//     BER cleared the required bound;
//   * the same seed replays the same fault sequence and the same
//     outcome bit-identically, on 1 thread and on 8;
//   * chase combining demonstrably rescues a marginal-SNR cell that
//     single-shot Phase 2 loses;
//   * the fault trace serializes as well-formed JSONL and matches the
//     committed golden (timestamps normalized: virtual time includes
//     host-measured compute, so at_ms jitters while the fault
//     sequence itself must not - same rationale as
//     concurrency_stress_test.cpp excluding phase timings).
//
// Regenerate the golden after an intentional fault-model change with
//   WEARLOCK_REGEN_FAULT_GOLDEN=1 ./tests/fault_matrix_test
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json_check.h"
#include "modem/coding.h"
#include "protocol/session.h"
#include "sim/executor.h"
#include "sim/faults.h"

namespace wearlock {
namespace {

using protocol::ResilienceConfig;
using protocol::ScenarioConfig;
using protocol::UnlockOutcome;
using protocol::UnlockReport;
using protocol::UnlockSession;

// --- The matrix ------------------------------------------------------

const char* const kFaultSpecs[] = {
    "drop=0.3",            // control messages silently lost
    "spike=0.6x12,dup=0.3",// delivery stalls + duplicate deliveries
    "flap@any",            // link flaps at the first link op
    "trunc=0.35",          // watch captures cut short
};

ScenarioConfig ConfigByIndex(int which) {
  switch (which) {
    case 0: return ScenarioConfig::Config1();
    case 1: return ScenarioConfig::Config2();
    default: return ScenarioConfig::Config3();
  }
}

constexpr int kNumSpecs = 4;
constexpr int kNumConfigs = 3;
constexpr int kNumCells = kNumSpecs * kNumConfigs;

/// One matrix cell: spec x config, seed pinned per cell.
ScenarioConfig CellScenario(int cell) {
  const int spec = cell / kNumConfigs;
  const int config = cell % kNumConfigs;
  ScenarioConfig c = ConfigByIndex(config);
  c.scene.environment = audio::Environment::kQuietRoom;
  c.scene.distance_m = 0.3;
  c.faults = sim::FaultPlan::Parse(kFaultSpecs[spec]);
  c.seed = 7000 + static_cast<std::uint64_t>(cell);
  return c;
}

/// Everything about a faulted attempt that must be deterministic under
/// a fixed seed. Virtual-time stamps (and durations) are excluded:
/// they include host-measured compute, which jitters; the *decisions*
/// - fault sequence, outcome, signal statistics, step order - must not.
std::string CellFingerprint(const ScenarioConfig& config) {
  UnlockSession session(config);
  const UnlockReport report = session.Attempt();

  std::ostringstream fp;
  fp << std::hexfloat;
  fp << ToString(report.outcome) << "|" << report.unlocked << "|"
     << report.token_ber << "|" << report.required_ber << "|"
     << report.pilot_snr_db << "|" << report.preamble_score << "|"
     << report.ambient_similarity << "|steps:";
  for (const auto& step : report.trace) {
    fp << step.step << "=" << step.detail << ";";
  }
  fp << "|spans:";
  for (const auto& span : session.tracer().spans()) fp << span.name << ",";
  fp << "|faults:";
  EXPECT_NE(session.faults(), nullptr) << "non-empty plan must arm injector";
  if (session.faults() != nullptr) {
    for (const auto& event : session.faults()->events()) {
      fp << ToString(event.kind) << "@" << event.stage << "=" << event.value
         << ";";
    }
  }
  return fp.str();
}

// --- Termination + no-false-unlock over the whole matrix -------------

TEST(FaultMatrixTest, EveryCellTerminatesWithDefinedOutcome) {
  for (int cell = 0; cell < kNumCells; ++cell) {
    SCOPED_TRACE("cell " + std::to_string(cell) + " spec " +
                 kFaultSpecs[cell / kNumConfigs]);
    const ScenarioConfig config = CellScenario(cell);
    UnlockSession session(config);
    const UnlockReport report = session.Attempt();

    // Defined outcome: every enumerator stringifies.
    EXPECT_NE(ToString(report.outcome), "?");

    // Terminates inside the budget. The deadline gates the *start* of
    // protocol steps, so the last started step (one stage budget, plus
    // audio/compute slack) may run past it - but never unboundedly.
    const ResilienceConfig& res = config.phone.resilience;
    EXPECT_LT(session.clock().now(),
              res.total_deadline_ms + res.stage_budget_ms + 15000.0);

    // No false unlock: unlocking under faults still requires the token
    // BER to clear the bound the adaptation chose.
    EXPECT_EQ(report.unlocked, report.outcome == UnlockOutcome::kUnlocked);
    if (report.unlocked) {
      EXPECT_LE(report.token_ber, report.required_ber);
    }

    // The fault trace is well-formed JSONL, line by line.
    ASSERT_NE(session.faults(), nullptr);
    std::istringstream trace(
        sim::FaultTraceJsonl(session.faults()->events()));
    std::string line;
    testing::JsonChecker checker;
    while (std::getline(trace, line)) {
      EXPECT_TRUE(checker.Check(line)) << checker.error() << " in: " << line;
    }
  }
}

// --- Deterministic replay (same seed, same everything) ---------------

TEST(FaultMatrixTest, SameSeedReplaysBitIdentically) {
  for (int cell = 0; cell < kNumCells; ++cell) {
    SCOPED_TRACE("cell " + std::to_string(cell));
    const ScenarioConfig config = CellScenario(cell);
    const std::string first = CellFingerprint(config);
    const std::string second = CellFingerprint(config);
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
  }
}

TEST(FaultMatrixTest, ByteIdenticalAcrossThreadCounts) {
  auto run_matrix = [](std::size_t n_threads) {
    sim::ParallelExecutor executor(n_threads);
    return executor.Map(kNumCells, /*base_seed=*/0, [](sim::TaskContext& ctx) {
      // Cell seeds are pinned by CellScenario; ctx.rng is deliberately
      // unused so the fingerprint is a pure function of the index.
      return CellFingerprint(
          CellScenario(static_cast<int>(ctx.index)));
    });
  };
  const std::vector<std::string> serial = run_matrix(1);
  const std::vector<std::string> parallel = run_matrix(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(serial[i], parallel[i]);
  }
}

// --- Golden fault trace ----------------------------------------------

/// The pinned fully-faulted unlock: drops, spikes, duplicates and
/// truncated captures all fire, and the session still unlocks.
ScenarioConfig GoldenScenario() {
  ScenarioConfig c = ScenarioConfig::Config1();
  c.scene.environment = audio::Environment::kQuietRoom;
  c.scene.distance_m = 0.3;
  c.faults = sim::FaultPlan::Parse("drop=0.35,dup=0.3,spike=0.5x10,trunc=0.7");
  c.seed = 10;  // pinned by a sweep: 12 events, every planned kind fires
  return c;
}

/// Zero out the "at_ms" values: virtual time includes host-measured
/// compute, so timestamps jitter while the event sequence must not.
std::string NormalizeTraceTimestamps(const std::string& jsonl) {
  std::string out;
  std::size_t pos = 0;
  const std::string key = "\"at_ms\":";
  while (pos < jsonl.size()) {
    const std::size_t hit = jsonl.find(key, pos);
    if (hit == std::string::npos) {
      out += jsonl.substr(pos);
      break;
    }
    out += jsonl.substr(pos, hit - pos) + key + "0";
    pos = hit + key.size();
    while (pos < jsonl.size() && jsonl[pos] != ',' && jsonl[pos] != '}') ++pos;
  }
  return out;
}

TEST(FaultMatrixTest, GoldenFaultedUnlockTrace) {
  UnlockSession session(GoldenScenario());
  const UnlockReport report = session.Attempt();
  EXPECT_TRUE(report.unlocked) << ToString(report.outcome);
  ASSERT_NE(session.faults(), nullptr);

  const std::string raw = sim::FaultTraceJsonl(session.faults()->events());
  EXPECT_FALSE(raw.empty()) << "golden scenario must actually inject faults";

  // Well-formed JSONL before any normalization.
  {
    std::istringstream lines(raw);
    std::string line;
    testing::JsonChecker checker;
    while (std::getline(lines, line)) {
      EXPECT_TRUE(checker.Check(line)) << checker.error() << " in: " << line;
    }
  }

  const std::string normalized = NormalizeTraceTimestamps(raw);
  const std::string golden_path =
      std::string(WEARLOCK_FAULT_GOLDEN_DIR) + "/faulted_unlock_trace.jsonl";
  if (std::getenv("WEARLOCK_REGEN_FAULT_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << normalized;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path
                         << " (regen with WEARLOCK_REGEN_FAULT_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(normalized, golden.str())
      << "fault trace drifted from the committed golden; if the change "
         "is intentional, regen with WEARLOCK_REGEN_FAULT_GOLDEN=1";
}

// --- Chase combining rescues a marginal-SNR cell ---------------------

/// Pinned by a sweep over (environment, distance, seed): quiet room at
/// 1.70 m, seed 201 - single-shot Phase 2 rejects the token, ARQ with
/// chase-combined LLRs unlocks, and ARQ *without* combining (each copy
/// judged alone) still fails. This is the cell that proves combining
/// adds real decoding gain rather than just more dice rolls.
ScenarioConfig MarginalSnrScenario() {
  ScenarioConfig c = ScenarioConfig::Config1();
  c.scene.environment = audio::Environment::kQuietRoom;
  c.scene.distance_m = 1.70;
  c.seed = 201;
  return c;
}

TEST(ChaseCombiningTest, RescuesMarginalSnrCellThatSingleShotLoses) {
  // Single shot: the plain protocol (no injector, no ARQ) rejects.
  {
    UnlockSession session(MarginalSnrScenario());
    const UnlockReport report = session.Attempt();
    EXPECT_EQ(report.outcome, UnlockOutcome::kTokenRejected);
    EXPECT_FALSE(report.unlocked);
  }
  // Armed resilience (empty fault plan, transparent injector): the
  // same acoustics, but Phase-2 retransmissions chase-combine.
  {
    ScenarioConfig config = MarginalSnrScenario();
    config.arm_resilience = true;
    UnlockSession session(config);
    const UnlockReport report = session.Attempt();
    EXPECT_EQ(report.outcome, UnlockOutcome::kUnlocked);
    EXPECT_TRUE(report.unlocked);
    EXPECT_LE(report.token_ber, report.required_ber);
  }
  // Same retransmission budget with combining disabled: every copy is
  // judged alone and every copy fails - the rescue is the combining,
  // not the extra transmissions.
  {
    ScenarioConfig config = MarginalSnrScenario();
    config.arm_resilience = true;
    config.phone.resilience.enable_chase_combining = false;
    UnlockSession session(config);
    const UnlockReport report = session.Attempt();
    EXPECT_FALSE(report.unlocked);
  }
}

// --- Targeted fault -> outcome mappings ------------------------------

TEST(ResilienceOutcomeTest, TotalMessageLossExhaustsRetries) {
  ScenarioConfig config = ScenarioConfig::Config1();
  config.faults = sim::FaultPlan::Parse("drop=1.0");
  config.seed = 11;
  UnlockSession session(config);
  const UnlockReport report = session.Attempt();
  EXPECT_EQ(report.outcome, UnlockOutcome::kRetriesExhausted);
  EXPECT_FALSE(report.unlocked);
  // Initial send + max_message_retries retransmissions, all dropped.
  const int expected_drops =
      1 + config.phone.resilience.max_message_retries;
  int drops = 0;
  for (const auto& event : session.faults()->events()) {
    if (event.kind == sim::FaultKind::kMessageDrop) ++drops;
  }
  EXPECT_EQ(drops, expected_drops);
}

TEST(ResilienceOutcomeTest, PermanentFlapFailsClosedAsLinkFlapped) {
  ScenarioConfig config = ScenarioConfig::Config1();
  // Outage far beyond the stage budget: waiting it out cannot succeed.
  config.faults = sim::FaultPlan::Parse("flap@rts:360000");
  config.seed = 12;
  UnlockSession session(config);
  const UnlockReport report = session.Attempt();
  EXPECT_EQ(report.outcome, UnlockOutcome::kLinkFlapped);
  EXPECT_FALSE(report.unlocked);
}

TEST(ResilienceOutcomeTest, LostCapturesRetransmitProbeThenFailSafe) {
  ScenarioConfig config = ScenarioConfig::Config1();
  config.faults = sim::FaultPlan::Parse("recdrop=1.0");
  config.seed = 13;
  UnlockSession session(config);
  const UnlockReport report = session.Attempt();
  EXPECT_EQ(report.outcome, UnlockOutcome::kNoPreamble);
  EXPECT_FALSE(report.unlocked);
  // The probe was re-emitted: initial round + max_probe_retransmits,
  // every capture dropped.
  const int expected =
      1 + config.phone.resilience.max_probe_retransmits;
  int recording_drops = 0;
  for (const auto& event : session.faults()->events()) {
    if (event.kind == sim::FaultKind::kRecordingDrop) ++recording_drops;
  }
  EXPECT_EQ(recording_drops, expected);
}

// --- ResilienceConfig / FaultPlan / SoftCombiner units ---------------

TEST(ResilienceConfigTest, BackoffIsBoundedExponential) {
  const ResilienceConfig res;  // base 50, cap 800
  EXPECT_DOUBLE_EQ(res.BackoffMs(0), 50.0);
  EXPECT_DOUBLE_EQ(res.BackoffMs(1), 100.0);
  EXPECT_DOUBLE_EQ(res.BackoffMs(2), 200.0);
  EXPECT_DOUBLE_EQ(res.BackoffMs(4), 800.0);
  EXPECT_DOUBLE_EQ(res.BackoffMs(40), 800.0);  // capped, no overflow
}

TEST(FaultPlanTest, ParsesFullSpec) {
  const sim::FaultPlan plan = sim::FaultPlan::Parse(
      "drop=0.3,dup=0.1,spike=0.6x12,flap@rts:250,trunc=0.5,clip=0.8,"
      "recdrop=0.05");
  EXPECT_DOUBLE_EQ(plan.message_drop_p, 0.3);
  EXPECT_DOUBLE_EQ(plan.message_dup_p, 0.1);
  EXPECT_DOUBLE_EQ(plan.delay_spike_p, 0.6);
  EXPECT_DOUBLE_EQ(plan.delay_spike_mult, 12.0);
  EXPECT_EQ(plan.flap_stage, "rts");
  EXPECT_DOUBLE_EQ(plan.flap_down_ms, 250.0);
  EXPECT_DOUBLE_EQ(plan.recording_truncate_keep, 0.5);
  EXPECT_DOUBLE_EQ(plan.recording_clip_level, 0.8);
  EXPECT_DOUBLE_EQ(plan.recording_drop_p, 0.05);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, EmptySpecIsTransparent) {
  EXPECT_TRUE(sim::FaultPlan::Parse("").empty());
  EXPECT_TRUE(sim::FaultPlan{}.empty());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(sim::FaultPlan::Parse("bogus"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::Parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::Parse("spike=0.2x0.5"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::Parse("trunc=0"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::Parse("flap@"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::Parse("clip=-1"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::Parse("drop=abc"), std::invalid_argument);
}

TEST(SoftCombinerTest, SumsLlrsAndDecidesOnTheSum) {
  modem::SoftCombiner combiner;
  EXPECT_TRUE(combiner.empty());
  // LLR convention: positive favors bit 0 (DemapSymbolsSoft).
  combiner.Add({+2.0, -1.0, +0.5});
  combiner.Add({-1.0, -1.0, -2.0});
  EXPECT_EQ(combiner.rounds(), 2u);
  const std::vector<double>& sum = combiner.combined();
  ASSERT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum[0], 1.0);
  EXPECT_DOUBLE_EQ(sum[1], -2.0);
  EXPECT_DOUBLE_EQ(sum[2], -1.5);
  const std::vector<std::uint8_t> bits = combiner.HardBits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 0);  // positive sum -> 0
  EXPECT_EQ(bits[1], 1);
  EXPECT_EQ(bits[2], 1);
  combiner.Reset();
  EXPECT_TRUE(combiner.empty());
  EXPECT_EQ(combiner.rounds(), 0u);
}

TEST(SoftCombinerTest, RejectsLengthMismatch) {
  modem::SoftCombiner combiner;
  combiner.Add({1.0, 2.0});
  EXPECT_THROW(combiner.Add({1.0}), std::invalid_argument);
}

/// A weak copy that alone decodes wrong can be outvoted by two noisy
/// but net-correct copies - the chase-combining mechanism in miniature.
TEST(SoftCombinerTest, CombinedDecisionBeatsWorstSingleCopy) {
  const std::vector<std::uint8_t> truth = {0, 1, 0, 1};
  auto ber = [&](const std::vector<std::uint8_t>& bits) {
    int errors = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      errors += (bits[i] & 1) != (truth[i] & 1);
    }
    return static_cast<double>(errors) / static_cast<double>(truth.size());
  };
  modem::SoftCombiner combiner;
  combiner.Add({+0.2, +0.4, +0.3, -0.9});  // bit 1 flipped: BER 0.25
  {
    modem::SoftCombiner alone;
    alone.Add({+0.2, +0.4, +0.3, -0.9});
    EXPECT_GT(ber(alone.HardBits()), 0.0);
  }
  combiner.Add({+0.5, -0.8, +0.1, -0.2});  // clean but weak
  EXPECT_DOUBLE_EQ(ber(combiner.HardBits()), 0.0);
}

}  // namespace
}  // namespace wearlock
