// Acoustic hardware/channel model tests: signal ops, speaker,
// microphone, propagation, noise sources, jammer, channel, scene.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "audio/medium.h"
#include "audio/scene.h"
#include "dsp/fft.h"
#include "dsp/spl.h"
#include "sim/rng.h"

namespace wearlock::audio {
namespace {

Samples Tone(double freq_hz, std::size_t n, double amplitude = 1.0) {
  Samples x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amplitude * std::sin(2.0 * std::numbers::pi * freq_hz *
                                static_cast<double>(i) / kSampleRate);
  }
  return x;
}

// ---------------------------------------------------------------- signal
TEST(Signal, MixGrowsAndAdds) {
  Samples y = {1.0, 1.0};
  MixIntoAt(y, {0.5, 0.5}, 1);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_EQ(y[0], 1.0);
  EXPECT_EQ(y[1], 1.5);
  EXPECT_EQ(y[2], 0.5);
}

TEST(Signal, ScaleClipAppend) {
  Samples x = {0.5, -2.0};
  Scale(x, 2.0);
  EXPECT_EQ(x[0], 1.0);
  Clip(x, 1.5);
  EXPECT_EQ(x[1], -1.5);
  Append(x, {3.0});
  EXPECT_EQ(x.size(), 3u);
  EXPECT_EQ(SamplesFromSeconds(1.0), 44100u);
}

// --------------------------------------------------------------- speaker
TEST(Speaker, VolumeControlsSpl) {
  const SpeakerModel speaker;
  EXPECT_NEAR(speaker.SplAtVolume(1.0), speaker.spec().max_spl_at_d0, 1e-9);
  EXPECT_NEAR(speaker.SplAtVolume(0.5), speaker.spec().max_spl_at_d0 - 6.02, 0.01);
  EXPECT_NEAR(speaker.VolumeForSpl(speaker.spec().max_spl_at_d0 - 20.0), 0.1,
              1e-6);
  EXPECT_EQ(speaker.VolumeForSpl(200.0), 1.0);  // clamped
}

TEST(Speaker, EmittedSplMatchesRating) {
  const SpeakerModel speaker;
  const Samples out = speaker.Emit(Tone(1000.0, 44100), 1.0);
  // Full-scale sine at volume 1 -> max_spl_at_d0 (ripple/ringing alter it
  // slightly).
  EXPECT_NEAR(wearlock::dsp::SplOf(out), speaker.spec().max_spl_at_d0, 1.5);
}

TEST(Speaker, RingingExtendsOutput) {
  const SpeakerModel speaker;
  const Samples out = speaker.Emit(Tone(2000.0, 1000), 0.5);
  EXPECT_GT(out.size(), 1000u);
  // Tail must decay, not ring forever.
  double tail_peak = 0.0;
  for (std::size_t i = out.size() - 50; i < out.size(); ++i) {
    tail_peak = std::max(tail_peak, std::abs(out[i]));
  }
  double body_peak = 0.0;
  for (std::size_t i = 400; i < 600; ++i) {
    body_peak = std::max(body_peak, std::abs(out[i]));
  }
  EXPECT_LT(tail_peak, 0.05 * body_peak);
}

TEST(Speaker, RiseEffectSoftensOnset) {
  SpeakerSpec spec;
  spec.phase_ripple_rad = 0.0;  // isolate the rise envelope
  const SpeakerModel speaker(spec);
  const Samples out = speaker.Emit(Samples(500, 1.0), 1.0);
  EXPECT_LT(std::abs(out[0]), std::abs(out[300]) * 0.2);
}

TEST(Speaker, VolumeOutOfRangeThrows) {
  const SpeakerModel speaker;
  EXPECT_THROW(speaker.Emit({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(speaker.Emit({1.0}, 1.1), std::invalid_argument);
}

// ------------------------------------------------------------ microphone
TEST(Microphone, WatchLowPassKillsNearUltrasound) {
  const MicrophoneModel watch = MicrophoneModel::Watch();
  // "the signal fades significantly from 5kHz to 7kHz".
  EXPECT_GT(watch.ResponseAt(3000.0), 0.9);
  EXPECT_GT(watch.ResponseAt(5000.0), 0.6);
  EXPECT_LT(watch.ResponseAt(7000.0), 0.5);
  EXPECT_LT(watch.ResponseAt(16000.0), 0.02);
}

TEST(Microphone, PhoneIsFullBand) {
  const MicrophoneModel phone = MicrophoneModel::Phone();
  EXPECT_NEAR(phone.ResponseAt(18000.0), 1.0, 1e-9);
}

TEST(Microphone, CaptureAppliesFilterAndClip) {
  const MicrophoneModel watch = MicrophoneModel::Watch();
  const Samples in = Tone(16000.0, 4096, 1.0);
  const Samples out = watch.Capture(in);
  EXPECT_LT(wearlock::dsp::Rms(out), 0.05 * wearlock::dsp::Rms(in));
  // Clipping.
  const MicrophoneModel phone = MicrophoneModel::Phone();
  const Samples clipped = phone.Capture(Samples(10, 100.0));
  for (double v : clipped) EXPECT_LE(std::abs(v), phone.spec().clip_level);
}

// ----------------------------------------------------------- propagation
TEST(Propagation, SixDbPerDoubling) {
  const PropagationModel prop{PropagationSpec::Los()};
  EXPECT_NEAR(prop.LossDbAt(0.2), 6.02, 0.01);
  EXPECT_NEAR(prop.LossDbAt(0.4), 12.04, 0.01);
  EXPECT_NEAR(prop.GainAt(0.1), 1.0, 1e-9);
}

TEST(Propagation, DelayMatchesSpeedOfSound) {
  const PropagationModel prop{PropagationSpec::Los()};
  Samples impulse(10, 0.0);
  impulse[0] = 1.0;
  const Samples out = prop.Propagate(impulse, 1.0);
  // 1 m / 343 m/s * 44100 ~ 128.6 samples.
  double peak = 0.0;
  std::size_t peak_at = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (std::abs(out[i]) > peak) {
      peak = std::abs(out[i]);
      peak_at = i;
    }
  }
  EXPECT_NEAR(static_cast<double>(peak_at), 128.6, 2.0);
}

TEST(Propagation, NlosSpreadsEnergy) {
  const PropagationModel los{PropagationSpec::Los()};
  const PropagationModel nlos{PropagationSpec::BodyBlockedNlos()};
  Samples impulse(10, 0.0);
  impulse[0] = 1.0;
  const Samples out_los = los.Propagate(impulse, 0.5);
  const Samples out_nlos = nlos.Propagate(impulse, 0.5);
  EXPECT_GT(out_nlos.size(), out_los.size());  // late reflections
  // Direct tap much weaker under body blocking.
  double los_peak = 0.0, nlos_peak = 0.0;
  for (double v : out_los) los_peak = std::max(los_peak, std::abs(v));
  for (double v : out_nlos) nlos_peak = std::max(nlos_peak, std::abs(v));
  EXPECT_LT(nlos_peak, 0.5 * los_peak);
}

TEST(Propagation, RejectsTooClose) {
  const PropagationModel prop{PropagationSpec::Los()};
  EXPECT_THROW(prop.Propagate({1.0}, 0.01), std::invalid_argument);
}

// ----------------------------------------------------------------- noise
TEST(Noise, CalibratedSpl) {
  sim::Rng rng(31);
  for (Environment env :
       {Environment::kQuietRoom, Environment::kOffice, Environment::kCafe}) {
    NoiseSource source(env, rng.Fork());
    const Samples noise = source.Generate(44100);
    EXPECT_NEAR(wearlock::dsp::SplOf(noise), NoiseProfile::For(env).spl_db, 0.5)
        << ToString(env);
  }
}

TEST(Noise, EnvironmentOrdering) {
  // Quiet room is the paper's 15-20 dB reference; everything else louder.
  const double quiet = NoiseProfile::For(Environment::kQuietRoom).spl_db;
  EXPECT_GE(quiet, 15.0);
  EXPECT_LE(quiet, 20.0);
  EXPECT_GT(NoiseProfile::For(Environment::kOffice).spl_db, quiet);
  EXPECT_GT(NoiseProfile::For(Environment::kCafe).spl_db,
            NoiseProfile::For(Environment::kOffice).spl_db);
}

TEST(Noise, JammerHitsRequestedBins) {
  const ToneJammer jammer({20, 24}, 256, 60.0);
  const Samples jam = jammer.Generate(8192);
  EXPECT_NEAR(wearlock::dsp::SplOf(jam), 60.0, 0.5);
  // Spectral check: energy concentrated at bins 20/24 of a 256-FFT.
  std::vector<double> window(jam.begin(), jam.begin() + 256);
  const auto spec = wearlock::dsp::FftReal(window);
  const double jammed = std::norm(spec[20]) + std::norm(spec[24]);
  double elsewhere = 0.0;
  for (std::size_t k = 1; k < 128; ++k) {
    if (k != 20 && k != 24) elsewhere += std::norm(spec[k]);
  }
  EXPECT_GT(jammed, 10.0 * elsewhere);
}

TEST(Noise, JammerLimits) {
  EXPECT_THROW(ToneJammer({1, 2, 3, 4, 5, 6, 7}, 256, 50.0),
               std::invalid_argument);
  EXPECT_THROW(ToneJammer({1}, 0, 50.0), std::invalid_argument);
  const ToneJammer silent({}, 256, 50.0);
  for (double v : silent.Generate(100)) EXPECT_EQ(v, 0.0);
}

// --------------------------------------------------------------- channel
TEST(Channel, ReceptionGeometry) {
  sim::Rng rng(32);
  ChannelConfig config;
  config.distance_m = 0.5;
  AcousticChannel channel(config, std::move(rng));
  const Samples signal = Tone(3000.0, 2000, 0.5);
  const Reception r = channel.Transmit(signal, 0.8);
  EXPECT_EQ(r.signal_start, config.lead_in_samples);
  EXPECT_GT(r.recording.size(),
            config.lead_in_samples + signal.size() + config.lead_out_samples - 1);
  EXPECT_GT(r.spl_signal_at_rx, r.spl_noise_at_rx);  // quiet room, close
}

TEST(Channel, SplFallsWithDistance) {
  ChannelConfig config;
  const Samples signal = Tone(3000.0, 2000, 0.5);
  sim::Rng rng(33);
  config.distance_m = 0.2;
  AcousticChannel near(config, rng.Fork());
  config.distance_m = 1.6;
  AcousticChannel far(config, rng.Fork());
  const double spl_near = near.Transmit(signal, 0.8).spl_signal_at_rx;
  const double spl_far = far.Transmit(signal, 0.8).spl_signal_at_rx;
  // 0.2 -> 1.6 m: 3 doublings ~ 18 dB (multipath perturbs slightly).
  EXPECT_NEAR(spl_near - spl_far, 18.0, 2.5);
}

// ----------------------------------------------------------------- scene
TEST(Scene, CoLocatedAmbientIsShared) {
  SceneConfig config;
  config.co_located = true;
  TwoMicScene scene(config, sim::Rng(34));
  const auto [phone, watch] = scene.RecordAmbientPair(8192);
  // Correlation of the raw ambient windows (normalized dot at lag 0).
  double dot = 0.0, ep = 0.0, ew = 0.0;
  for (std::size_t i = 0; i < phone.size(); ++i) {
    dot += phone[i] * watch[i];
    ep += phone[i] * phone[i];
    ew += watch[i] * watch[i];
  }
  EXPECT_GT(dot / std::sqrt(ep * ew), 0.7);
}

TEST(Scene, SeparatedAmbientIsIndependent) {
  SceneConfig config;
  config.co_located = false;
  TwoMicScene scene(config, sim::Rng(35));
  const auto [phone, watch] = scene.RecordAmbientPair(8192);
  double dot = 0.0, ep = 0.0, ew = 0.0;
  for (std::size_t i = 0; i < phone.size(); ++i) {
    dot += phone[i] * watch[i];
    ep += phone[i] * phone[i];
    ew += watch[i] * watch[i];
  }
  EXPECT_LT(std::abs(dot) / std::sqrt(ep * ew), 0.3);
}

TEST(Scene, PhoneSelfRecordingIsLouderThanWatch) {
  SceneConfig config;
  config.distance_m = 0.8;
  TwoMicScene scene(config, sim::Rng(36));
  const auto r = scene.TransmitFromPhone(Tone(3000.0, 2000, 0.5), 0.5);
  // The phone's own mic sits at d0; the watch is 0.8 m away.
  Samples phone_sig(r.phone_recording.begin() + 4096,
                    r.phone_recording.begin() + 6000);
  Samples watch_sig(r.watch_recording.begin() + 4096,
                    r.watch_recording.begin() + 6000);
  EXPECT_GT(wearlock::dsp::SplOf(phone_sig),
            wearlock::dsp::SplOf(watch_sig) + 10.0);
}

TEST(Scene, EavesdropperHearsLessFurtherAway) {
  SceneConfig config;
  TwoMicScene scene(config, sim::Rng(37));
  const Samples signal = Tone(3000.0, 2000, 0.5);
  const Samples near = scene.RecordAtDistance(signal, 0.8, 0.3,
                                              PropagationSpec::Los());
  const Samples far = scene.RecordAtDistance(signal, 0.8, 2.4,
                                             PropagationSpec::Los());
  Samples near_sig(near.begin() + 4096, near.begin() + 6000);
  Samples far_sig(far.begin() + 4096, far.begin() + 6000);
  EXPECT_GT(wearlock::dsp::SplOf(near_sig), wearlock::dsp::SplOf(far_sig) + 12.0);
}

}  // namespace
}  // namespace wearlock::audio
