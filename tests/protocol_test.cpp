// Protocol-layer unit tests: keyguard, OTP service, ambient filter,
// offload planner.
#include <gtest/gtest.h>

#include "audio/noise.h"
#include "modem/modem.h"
#include "protocol/ambient.h"
#include "protocol/keyguard.h"
#include "protocol/offload.h"
#include "protocol/otp_service.h"
#include "sim/rng.h"

namespace wearlock::protocol {
namespace {

// -------------------------------------------------------------- keyguard
TEST(Keyguard, SuccessUnlocksAndResets) {
  Keyguard kg;
  EXPECT_EQ(kg.state(), LockState::kLocked);
  kg.ReportFailure();
  kg.ReportSuccess();
  EXPECT_EQ(kg.state(), LockState::kUnlocked);
  EXPECT_EQ(kg.consecutive_failures(), 0u);
}

TEST(Keyguard, ThreeStrikesLockOut) {
  Keyguard kg;
  kg.ReportFailure();
  kg.ReportFailure();
  EXPECT_EQ(kg.state(), LockState::kLocked);
  kg.ReportFailure();
  EXPECT_EQ(kg.state(), LockState::kLockedOut);
  // WearLock success cannot clear a lockout...
  kg.ReportSuccess();
  EXPECT_EQ(kg.state(), LockState::kLockedOut);
  EXPECT_FALSE(kg.CanAttemptWearlock());
  // ...but manual credentials can.
  kg.UnlockWithCredential();
  EXPECT_EQ(kg.state(), LockState::kUnlocked);
  kg.Relock();
  EXPECT_TRUE(kg.CanAttemptWearlock());
}

TEST(Keyguard, RelockOnlyFromUnlocked) {
  Keyguard kg;
  kg.Relock();  // already locked: no-op
  EXPECT_EQ(kg.state(), LockState::kLocked);
  kg.ReportSuccess();
  kg.Relock();
  EXPECT_EQ(kg.state(), LockState::kLocked);
}

// ------------------------------------------------------------------- otp
TEST(OtpService, ExactTokenValidates) {
  OtpService otp({'k', 'e', 'y'});
  const auto bits = otp.NextTokenBits();
  const auto v = otp.ValidateBits(bits, 0.0);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.ber, 0.0);
  EXPECT_EQ(v.matched_counter, 0u);
}

TEST(OtpService, ToleratesBitErrorsUnderBound) {
  OtpService otp({'k', 'e', 'y'});
  auto bits = otp.NextTokenBits();
  bits[3] ^= 1;  // 1/32 = 3.1% BER
  bits[17] ^= 1; // 2/32 = 6.3%
  const auto v = otp.ValidateBits(bits, 0.1);
  EXPECT_TRUE(v.accepted);
  EXPECT_NEAR(v.ber, 2.0 / 32.0, 1e-9);
}

TEST(OtpService, RejectsOverBound) {
  OtpService otp({'k', 'e', 'y'});
  auto bits = otp.NextTokenBits();
  for (int i = 0; i < 8; ++i) bits[static_cast<std::size_t>(i)] ^= 1;  // 25%
  EXPECT_FALSE(otp.ValidateBits(bits, 0.1).accepted);
}

TEST(OtpService, ReplayOfValidatedTokenFails) {
  OtpService otp({'k', 'e', 'y'});
  const auto bits = otp.NextTokenBits();
  EXPECT_TRUE(otp.ValidateBits(bits, 0.1).accepted);
  // Same bits again: counter advanced, the old token is dead. A replay
  // only matches if a *future* token happens to be <=10% away - with
  // HMAC outputs that practically never happens.
  EXPECT_FALSE(otp.ValidateBits(bits, 0.1).accepted);
}

TEST(OtpService, WindowRecoversFromLostDelivery) {
  OtpService otp({'k', 'e', 'y'}, 0, /*window=*/3);
  otp.NextTokenBits();                 // token 0, lost
  const auto bits1 = otp.NextTokenBits();  // token 1, delivered
  const auto v = otp.ValidateBits(bits1, 0.05);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.matched_counter, 1u);
}

TEST(OtpService, NoIssuedTokensRejects) {
  OtpService otp({'k', 'e', 'y'});
  EXPECT_FALSE(otp.ValidateBits(std::vector<std::uint8_t>(32, 0), 0.5).accepted);
  EXPECT_FALSE(otp.ValidateBits({1, 0, 1}, 0.5).accepted);  // malformed
}

TEST(OtpService, CodeRendering) {
  OtpService otp(std::vector<std::uint8_t>{'1', '2', '3', '4', '5', '6', '7',
                                           '8', '9', '0', '1', '2', '3', '4',
                                           '5', '6', '7', '8', '9', '0'});
  EXPECT_EQ(otp.CurrentCode(6), "755224");  // RFC 4226 counter 0
  EXPECT_THROW(OtpService({}), std::invalid_argument);
}

// --------------------------------------------------------------- ambient
TEST(Ambient, SharedNoiseScoresHigh) {
  sim::Rng rng(61);
  audio::NoiseSource source(audio::Environment::kOffice, rng.Fork());
  const auto shared = source.Generate(8192);
  // Both devices hear the same ambience plus small independent noise.
  audio::Samples phone = shared, watch = shared;
  for (auto& v : phone) v += 1e-5 * rng.Gaussian();
  for (auto& v : watch) v += 1e-5 * rng.Gaussian();
  EXPECT_GT(AmbientSimilarity(phone, watch), 0.8);
  EXPECT_TRUE(AmbientSuggestsCoLocation(phone, watch));
}

TEST(Ambient, IndependentNoiseScoresLow) {
  sim::Rng rng(62);
  audio::NoiseSource a(audio::Environment::kOffice, rng.Fork());
  audio::NoiseSource b(audio::Environment::kOffice, rng.Fork());
  const auto phone = a.Generate(8192);
  const auto watch = b.Generate(8192);
  EXPECT_LT(AmbientSimilarity(phone, watch), 0.55);
  EXPECT_FALSE(AmbientSuggestsCoLocation(phone, watch));
}

TEST(Ambient, SurvivesClockSkew) {
  sim::Rng rng(63);
  audio::NoiseSource source(audio::Environment::kCafe, rng.Fork());
  const auto shared = source.Generate(10000);
  audio::Samples phone = shared;
  // Watch recording starts 700 samples later (clock skew).
  audio::Samples watch(shared.begin() + 700, shared.end());
  EXPECT_GT(AmbientSimilarity(phone, watch), 0.7);
}

TEST(Ambient, DegenerateInputs) {
  EXPECT_EQ(AmbientSimilarity({}, {}), 0.0);
  EXPECT_EQ(AmbientSimilarity(audio::Samples(10, 0.1), audio::Samples(10, 0.1)),
            0.0);
}

// --------------------------------------------------------------- offload
TEST(Offload, LocalChargesWatchCompute) {
  sim::Rng rng(64);
  sim::WirelessLink link(sim::LinkModel::Bluetooth(), rng.Fork());
  OffloadPlanner planner;
  planner.site = ProcessingSite::kWatchLocal;
  const StepCost cost = planner.Cost(/*host_ms=*/2.0, 50'000, link);
  EXPECT_EQ(cost.transfer_ms, 0.0);
  EXPECT_NEAR(cost.compute_ms, 2.0 * planner.watch.compute_scale, 1e-9);
  EXPECT_GT(cost.watch_energy_mj, 0.0);
  EXPECT_EQ(cost.phone_energy_mj, 0.0);
}

TEST(Offload, OffloadMovesComputeToPhone) {
  sim::Rng rng(65);
  sim::WirelessLink link(sim::LinkModel::Wifi(), rng.Fork());
  OffloadPlanner planner;
  planner.site = ProcessingSite::kOffloadToPhone;
  const StepCost cost = planner.Cost(2.0, 50'000, link);
  EXPECT_GT(cost.transfer_ms, 0.0);
  EXPECT_NEAR(cost.compute_ms, 2.0 * planner.phone.compute_scale, 1e-9);
  EXPECT_GT(cost.phone_energy_mj, 0.0);
}

TEST(Offload, OffloadingBeatsLocalOnTimeAndWatchEnergy) {
  // The paper's Fig. 6 claim: offloading saves both time and energy.
  sim::Rng rng(66);
  sim::WirelessLink wifi(sim::LinkModel::Wifi(), rng.Fork());
  OffloadPlanner local{.site = ProcessingSite::kWatchLocal};
  OffloadPlanner remote{.site = ProcessingSite::kOffloadToPhone};
  const double host_ms = 3.0;          // typical demod kernel
  const std::size_t bytes = 80'000;    // ~0.9 s of 16-bit audio
  const StepCost c_local = local.Cost(host_ms, bytes, wifi);
  const StepCost c_remote = remote.Cost(host_ms, bytes, wifi);
  EXPECT_LT(c_remote.total_ms(), c_local.total_ms());
  EXPECT_LT(c_remote.watch_energy_mj, c_local.watch_energy_mj);
}

TEST(Offload, RecordingBytesIs16BitPcm) {
  EXPECT_EQ(RecordingBytes(44100), 88200u);
}

}  // namespace
}  // namespace wearlock::protocol
