// Unit tests for the modem's internal stages: frame assembly, preamble
// detection, CP fine sync, channel estimation/equalization, pilot SNR,
// NLOS delay spread, adaptive mode selection.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/resample.h"
#include "dsp/spl.h"
#include "modem/adaptive.h"
#include "modem/coding.h"
#include "modem/demodulator.h"
#include "modem/detector.h"
#include "modem/equalizer.h"
#include "modem/modem.h"
#include "modem/modulator.h"
#include "modem/nlos.h"
#include "modem/snr.h"
#include "modem/sync.h"
#include "sim/rng.h"

namespace wearlock::modem {
namespace {

FrameSpec DefaultSpec() { return FrameSpec{}; }

// ----------------------------------------------------------------- frame
TEST(Frame, LayoutArithmetic) {
  const FrameSpec spec = DefaultSpec();
  EXPECT_EQ(spec.fft_size(), 256u);
  EXPECT_EQ(spec.symbol_samples(), 384u);   // 128 CP + 256 body
  EXPECT_EQ(spec.header_samples(), 1280u);  // 256 preamble + 1024 guard
  EXPECT_EQ(spec.FrameSamples(2), 1280u + 2 * 384u);
  // Data rate: 12 bins * 2 bits / 8.71 ms ~ 2756 bps for QPSK.
  EXPECT_NEAR(spec.DataRateBps(2), 2756.0, 5.0);
}

TEST(Words, WordFromBitsRoundTripsAndValidates) {
  const std::uint32_t word = 0xA5C3'0F1Eu;
  EXPECT_EQ(WordFromBits(BitsFromWord(word)), word);
  // Wrong length.
  EXPECT_THROW(WordFromBits(std::vector<std::uint8_t>(31, 0)),
               std::invalid_argument);
  // Bit VALUES outside {0,1} must throw, not silently corrupt the word
  // (a stray 2 would shift into neighbouring bit positions).
  std::vector<std::uint8_t> bits(32, 0);
  bits[5] = 2;
  EXPECT_THROW(WordFromBits(bits), std::invalid_argument);
  bits[5] = 255;
  EXPECT_THROW(WordFromBits(bits), std::invalid_argument);
}

TEST(Frame, PilotValuesAreUnitMagnitude) {
  for (std::size_t b : DefaultSpec().plan.pilots) {
    EXPECT_NEAR(std::abs(PilotValue(b)), 1.0, 1e-12);
  }
  // Different bins get different phases (no trivially aligned comb).
  EXPECT_GT(std::abs(PilotValue(7) - PilotValue(11)), 0.1);
}

TEST(Frame, BuildSymbolHasCyclicPrefix) {
  const FrameSpec spec = DefaultSpec();
  std::map<std::size_t, dsp::Complex> loads;
  for (std::size_t b : spec.plan.pilots) loads[b] = PilotValue(b);
  const auto symbol = BuildSymbol(spec, loads);
  ASSERT_EQ(symbol.size(), spec.symbol_samples());
  // CP == tail of the body.
  for (std::size_t i = 0; i < spec.cyclic_prefix_samples; ++i) {
    EXPECT_NEAR(symbol[i], symbol[i + spec.fft_size()], 1e-12) << i;
  }
}

TEST(Frame, BuildSymbolIsReal) {
  const FrameSpec spec = DefaultSpec();
  std::map<std::size_t, dsp::Complex> loads{{20, {0.3, 0.8}}};
  const auto symbol = BuildSymbol(spec, loads);
  // Spectrum of the body must be Hermitian (it came out real), and the
  // loaded bin must carry the value.
  audio::Samples body(symbol.begin() + 128, symbol.end());
  const auto spec_out = SymbolSpectrum(spec, body);
  EXPECT_NEAR(spec_out[20].real(), 0.3, 1e-9);
  EXPECT_NEAR(spec_out[20].imag(), 0.8, 1e-9);
}

TEST(Frame, BuildSymbolRejectsBadBins) {
  const FrameSpec spec = DefaultSpec();
  EXPECT_THROW(BuildSymbol(spec, {{0, {1.0, 0.0}}}), std::invalid_argument);
  EXPECT_THROW(BuildSymbol(spec, {{128, {1.0, 0.0}}}), std::invalid_argument);
}

TEST(Frame, NormalizeFrameHitsPeak) {
  const FrameSpec spec = DefaultSpec();
  audio::Samples x = {0.1, -0.5, 0.2};
  NormalizeFrame(spec, x);
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, spec.peak_amplitude, 1e-12);
  audio::Samples silent(10, 0.0);
  NormalizeFrame(spec, silent);  // no-op, no NaNs
  for (double v : silent) EXPECT_EQ(v, 0.0);
}

// ------------------------------------------------------------- modulator
TEST(Modulator, SymbolCountMatchesPayload) {
  const Modulator mod(DefaultSpec());
  // 32 bits / (12 bins * 2 bits) = 2 symbols for QPSK.
  EXPECT_EQ(mod.SymbolsForBits(Modulation::kQpsk, 32), 2u);
  EXPECT_EQ(mod.SymbolsForBits(Modulation::k8Psk, 32), 1u);
  EXPECT_EQ(mod.SymbolsForBits(Modulation::kBask, 32), 3u);
  const auto tx = mod.ModulateBits(Modulation::kQpsk,
                                   std::vector<std::uint8_t>(32, 1));
  EXPECT_EQ(tx.n_symbols, 2u);
  EXPECT_EQ(tx.samples.size(), DefaultSpec().FrameSamples(2));
}

TEST(Modulator, FramePeakBounded) {
  sim::Rng rng(3);
  const Modulator mod(DefaultSpec());
  std::vector<std::uint8_t> bits(64);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto tx = mod.ModulateBits(Modulation::k16Qam, bits);
  double peak = 0.0;
  for (double v : tx.samples) peak = std::max(peak, std::abs(v));
  EXPECT_LE(peak, DefaultSpec().peak_amplitude + 1e-9);
}

TEST(Modulator, ProbeFrameLoadsAllDataAndPilotBins) {
  const FrameSpec spec = DefaultSpec();
  const Modulator mod(spec);
  const auto tx = mod.MakeProbeFrame();
  // FFT the probe symbol body directly (known offsets, no channel).
  const std::size_t body_start =
      spec.header_samples() + spec.cyclic_prefix_samples;
  audio::Samples body(tx.samples.begin() + static_cast<long>(body_start),
                      tx.samples.begin() +
                          static_cast<long>(body_start + spec.fft_size()));
  const auto spectrum = SymbolSpectrum(spec, body);
  double data_power = 0.0, null_power = 0.0;
  for (std::size_t b : spec.plan.data) data_power += std::norm(spectrum[b]);
  for (std::size_t b : spec.plan.nulls) null_power += std::norm(spectrum[b]);
  EXPECT_GT(data_power, 1e3 * null_power);
}

// -------------------------------------------------------------- detector
TEST(Detector, FindsPreambleInCleanRecording) {
  const FrameSpec spec = DefaultSpec();
  const PreambleDetector detector(spec);
  audio::Samples rec(8000, 0.0);
  const auto preamble = MakePreamble(spec);
  for (std::size_t i = 0; i < preamble.size(); ++i) {
    rec[3000 + i] = 0.01 * preamble[i];
  }
  // Add a tiny noise floor so the energy gate has a reference.
  sim::Rng rng(9);
  for (auto& v : rec) v += 1e-5 * rng.Gaussian();
  const auto det = detector.Detect(rec);
  ASSERT_TRUE(det.has_value());
  EXPECT_NEAR(static_cast<double>(det->preamble_start), 3000.0, 2.0);
  EXPECT_GT(det->score, 0.9);
}

TEST(Detector, SilenceYieldsNothing) {
  const PreambleDetector detector(DefaultSpec());
  sim::Rng rng(10);
  audio::Samples rec = rng.GaussianVector(8000, 1e-5);  // noise only
  EXPECT_FALSE(detector.Detect(rec).has_value());
}

TEST(Detector, BelowScoreThresholdRejected) {
  DetectorConfig config;
  config.score_threshold = 0.9;  // impossible bar for a noisy copy
  const FrameSpec spec = DefaultSpec();
  const PreambleDetector detector(spec, config);
  sim::Rng rng(11);
  audio::Samples rec = rng.GaussianVector(8000, 0.05);  // loud noise
  EXPECT_FALSE(detector.Detect(rec).has_value());
}

TEST(Detector, EnergyGateLocatesOnset) {
  const PreambleDetector detector(DefaultSpec());
  sim::Rng rng(12);
  audio::Samples rec = rng.GaussianVector(10000, 1e-5);
  for (std::size_t i = 5000; i < 6000; ++i) rec[i] += 0.05;
  const auto onset = detector.FindSignalOnset(rec);
  ASSERT_TRUE(onset.has_value());
  EXPECT_GE(*onset, 4500u);
  EXPECT_LE(*onset, 5200u);
}

// ------------------------------------------------------------------ sync
TEST(Sync, RecoversInjectedOffset) {
  const FrameSpec spec = DefaultSpec();
  const Modulator mod(spec);
  sim::Rng rng(13);
  std::vector<std::uint8_t> bits(24);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const auto tx = mod.ModulateBits(Modulation::kQpsk, bits);

  for (long shift : {-7L, 0L, 9L}) {
    // Nominal CP start, deliberately mis-pointed by -shift.
    audio::Samples rec = tx.samples;
    const std::size_t nominal = spec.header_samples();
    const long claimed = static_cast<long>(nominal) - shift;
    const auto sync = FineSync(rec, static_cast<std::size_t>(claimed), spec, 16);
    EXPECT_EQ(sync.offset, shift) << "shift " << shift;
    EXPECT_GT(sync.metric, 0.9);
  }
}

TEST(Sync, OutOfBoundsHandled) {
  const FrameSpec spec = DefaultSpec();
  audio::Samples tiny(10, 0.0);
  const auto sync = FineSync(tiny, 5, spec, 4);
  EXPECT_EQ(sync.offset, 0);
  EXPECT_EQ(sync.metric, 0.0);
}

// ------------------------------------------------------------- equalizer
TEST(Equalizer, RecoversFlatChannel) {
  const FrameSpec spec = DefaultSpec();
  std::map<std::size_t, dsp::Complex> loads;
  for (std::size_t b : spec.plan.pilots) loads[b] = PilotValue(b);
  const auto symbol = BuildSymbol(spec, loads);
  audio::Samples body(symbol.begin() + 128, symbol.end());
  const auto spectrum = SymbolSpectrum(spec, body);
  const auto est = EstimateChannel(spec, spectrum);
  // Flat unit channel: |H| ~ 1 across the band.
  for (std::size_t b : spec.plan.data) {
    EXPECT_NEAR(std::abs(est.At(b)), 1.0, 0.05) << b;
  }
}

TEST(Equalizer, TracksAttenuationAndPhase) {
  const FrameSpec spec = DefaultSpec();
  std::map<std::size_t, dsp::Complex> loads;
  for (std::size_t b : spec.plan.pilots) loads[b] = PilotValue(b);
  loads[20] = dsp::Complex(1.0, 0.0);
  auto symbol = BuildSymbol(spec, loads);
  // Apply a one-sample delay = linear phase across frequency + gain 0.5.
  audio::Samples degraded = dsp::DelayInteger(symbol, 1);
  for (auto& v : degraded) v *= 0.5;
  audio::Samples body(degraded.begin() + 129,
                      degraded.begin() + 129 + 256);
  const auto spectrum = SymbolSpectrum(spec, body);
  const auto est = EstimateChannel(spec, spectrum);
  const auto eq = Equalize(est, spectrum, {20});
  EXPECT_NEAR(eq[0].real(), 1.0, 0.05);
  EXPECT_NEAR(eq[0].imag(), 0.0, 0.05);
}

TEST(Equalizer, DeepFadeDoesNotBlowUp) {
  ChannelEstimate est(7, dsp::ComplexVec(29, dsp::Complex(0.0, 0.0)));
  dsp::ComplexVec spectrum(256, dsp::Complex(1.0, 0.0));
  const auto eq = Equalize(est, spectrum, {16});
  EXPECT_TRUE(std::isfinite(eq[0].real()));
}

TEST(Equalizer, UnequalPilotSpacingThrows) {
  FrameSpec spec = DefaultSpec();
  spec.plan.pilots = {7, 11, 16, 19, 23, 27, 31, 35};  // 11->16 gap differs
  spec.plan.nulls.clear();
  dsp::ComplexVec spectrum(256, dsp::Complex(1.0, 0.0));
  EXPECT_THROW(EstimateChannel(spec, spectrum), std::invalid_argument);
}

// ------------------------------------------------------------------- snr
TEST(Snr, PilotSnrSeparatesCleanFromNoisy) {
  const FrameSpec spec = DefaultSpec();
  std::map<std::size_t, dsp::Complex> loads;
  for (std::size_t b : spec.plan.pilots) loads[b] = PilotValue(b);
  const auto symbol = BuildSymbol(spec, loads);
  audio::Samples body(symbol.begin() + 128, symbol.end());
  const auto clean = SymbolSpectrum(spec, body);
  EXPECT_GT(PilotSnrDb(spec, clean), 40.0);

  sim::Rng rng(14);
  audio::Samples noisy = body;
  for (auto& v : noisy) v += 0.02 * rng.Gaussian();
  const auto snr_noisy = PilotSnrDb(spec, SymbolSpectrum(spec, noisy));
  EXPECT_LT(snr_noisy, 40.0);
  EXPECT_GT(snr_noisy, 0.0);
}

TEST(Snr, NoisePowerFromAmbientShape) {
  const FrameSpec spec = DefaultSpec();
  sim::Rng rng(15);
  // Tone at bin 20 over a small floor: bin 20 must dominate.
  audio::Samples ambient(4096);
  for (std::size_t i = 0; i < ambient.size(); ++i) {
    ambient[i] = 0.1 * std::sin(2.0 * std::numbers::pi * 20.0 *
                                static_cast<double>(i) / 256.0) +
                 1e-4 * rng.Gaussian();
  }
  const auto power = NoisePowerFromAmbient(spec, ambient);
  ASSERT_EQ(power.size(), 256u);
  EXPECT_GT(power[20], 100.0 * power[24]);
  EXPECT_THROW(NoisePowerFromAmbient(spec, audio::Samples(10, 0.0)),
               std::invalid_argument);
}

TEST(Snr, EbN0AccountsForRate) {
  const FrameSpec spec = DefaultSpec();
  // Same SNR: lower-rate modulation gets more Eb/N0.
  EXPECT_GT(EbN0Db(spec, Modulation::kBask, 10.0),
            EbN0Db(spec, Modulation::kQpsk, 10.0));
  EXPECT_GT(EbN0Db(spec, Modulation::kQpsk, 10.0),
            EbN0Db(spec, Modulation::k16Qam, 10.0));
}

// ------------------------------------------------------------------ nlos
TEST(Nlos, SharpProfileIsLos) {
  std::vector<double> scores(1000, 0.0);
  scores[500] = 1.0;  // single sharp arrival
  const auto profile = ComputeDelayProfile(scores, 500, 44100.0);
  EXPECT_LT(profile.rms_delay_s, 1e-4);
  EXPECT_FALSE(IsNlos(profile));
}

TEST(Nlos, SpreadProfileIsNlos) {
  std::vector<double> scores(4000, 0.0);
  // Weak direct + strong late reflections over several ms.
  scores[500] = 0.3;
  for (int k = 0; k < 6; ++k) {
    scores[700 + k * 300] = 0.25;
  }
  const auto profile = ComputeDelayProfile(scores, 500, 44100.0,
                                           /*pre=*/64, /*post=*/2500);
  EXPECT_GT(profile.rms_delay_s, 0.0015);
  EXPECT_TRUE(IsNlos(profile));
}

TEST(Nlos, Validation) {
  EXPECT_THROW(ComputeDelayProfile({}, 0, 44100.0), std::invalid_argument);
  EXPECT_THROW(ComputeDelayProfile({1.0}, 5, 44100.0), std::invalid_argument);
  EXPECT_THROW(ComputeDelayProfile({1.0}, 0, 0.0), std::invalid_argument);
}

// -------------------------------------------------------------- adaptive
TEST(Adaptive, RequiredEbN0MonotoneInTarget) {
  for (Modulation m : {Modulation::kQpsk, Modulation::k8Psk}) {
    EXPECT_LT(RequiredEbN0Db(m, 0.1), RequiredEbN0Db(m, 0.01));
    EXPECT_LT(RequiredEbN0Db(m, 0.01), RequiredEbN0Db(m, 0.001));
  }
  EXPECT_THROW(RequiredEbN0Db(Modulation::kQpsk, 0.0), std::invalid_argument);
  EXPECT_THROW(RequiredEbN0Db(Modulation::kQpsk, 0.6), std::invalid_argument);
}

TEST(Adaptive, MeasuredTableHasFloors) {
  // 8PSK and 16QAM cannot reach tight targets on this hardware.
  EXPECT_TRUE(std::isinf(MeasuredRequiredEbN0Db(Modulation::k8Psk, 0.01)));
  EXPECT_TRUE(std::isinf(MeasuredRequiredEbN0Db(Modulation::k16Qam, 0.01)));
  // QPSK can.
  EXPECT_TRUE(std::isfinite(MeasuredRequiredEbN0Db(Modulation::kQpsk, 0.01)));
  EXPECT_GT(MeasuredBerFloor(Modulation::k8Psk), 0.01);
}

TEST(Adaptive, SelectsHighOrderWhenSnrIsHigh) {
  AdaptiveConfig config;  // MaxBER 0.1, prefer 8PSK
  const auto high = SelectMode(30.0, config);
  ASSERT_TRUE(high.has_value());
  EXPECT_EQ(*high, Modulation::k8Psk);
  const auto mid = SelectMode(12.0, config);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(*mid, Modulation::kQpsk);
  EXPECT_FALSE(SelectMode(-10.0, config).has_value());
}

TEST(Adaptive, TighterBerDisables8Psk) {
  AdaptiveConfig config;
  config.max_ber = 0.01;
  const auto mode = SelectMode(30.0, config);
  ASSERT_TRUE(mode.has_value());
  EXPECT_EQ(*mode, Modulation::kQpsk);  // 8PSK floor excludes it
}

TEST(Adaptive, ProbeVolumeRule) {
  // SPLtx = noise + SNRmin + spreading loss to the secure range.
  const double spl = ProbeTxSpl(40.0, 15.0, 1.0, 0.1);
  EXPECT_NEAR(spl, 40.0 + 15.0 + 20.0, 0.01);
}

// Property: Interleave/Deinterleave are mutually inverse permutations for
// any (length, depth) pair - including degenerate depths, lengths shorter
// than the depth, and lengths not divisible by it. 150 random cases.
TEST(CodingProperty, InterleaveRoundTripsAnyLengthAndDepth) {
  sim::Rng rng(9100);
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(0, 300));
    const std::size_t depth = static_cast<std::size_t>(rng.UniformInt(0, 16));
    std::vector<std::uint8_t> bits(n);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));

    const auto interleaved = Interleave(bits, depth);
    ASSERT_EQ(interleaved.size(), bits.size()) << "n=" << n << " d=" << depth;
    EXPECT_EQ(Deinterleave(interleaved, depth), bits)
        << "n=" << n << " d=" << depth;
    // The inverse composition also round-trips (true permutation, not
    // just a left inverse).
    EXPECT_EQ(Interleave(Deinterleave(bits, depth), depth), bits)
        << "n=" << n << " d=" << depth;
  }
}

TEST(CodingProperty, InterleavePreservesMultisetAndSpreadsBursts) {
  sim::Rng rng(9200);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(40, 200));
    const std::size_t depth = static_cast<std::size_t>(rng.UniformInt(2, 8));
    std::vector<std::uint8_t> bits(n);
    std::size_t ones = 0;
    for (auto& b : bits) {
      b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
      ones += b;
    }
    const auto out = Interleave(bits, depth);
    std::size_t out_ones = 0;
    for (auto b : out) out_ones += b;
    EXPECT_EQ(out_ones, ones);
  }

  // A burst of adjacent on-air errors deinterleaves to coded positions
  // exactly `depth` apart - with depth >= the code block length, at most
  // one burst error lands per codeword.
  const std::size_t n = 84, depth = 8;
  std::vector<std::uint8_t> zeros(n, 0);
  auto burst = Interleave(zeros, depth);
  const std::size_t kBurstLen = 4;
  for (std::size_t i = 2; i < 2 + kBurstLen; ++i) burst[i] = 1;
  const auto spread = Deinterleave(burst, depth);
  std::vector<std::size_t> error_positions;
  for (std::size_t i = 0; i < spread.size(); ++i) {
    if (spread[i]) error_positions.push_back(i);
  }
  ASSERT_EQ(error_positions.size(), kBurstLen);
  for (std::size_t i = 1; i < error_positions.size(); ++i) {
    EXPECT_EQ(error_positions[i] - error_positions[i - 1], depth)
        << "burst errors must land one code block apart";
  }
}

// Property: both block codes correct the errors they promise to correct -
// any single flipped bit per codeword decodes to the original payload.
// 100 random payload/error patterns per scheme.
TEST(CodingProperty, CodesCorrectSingleErrorPerBlock) {
  sim::Rng rng(9300);
  struct Scheme {
    CodeScheme code;
    std::size_t block;  // coded bits per codeword
  };
  for (const Scheme& s : {Scheme{CodeScheme::kHamming74, 7},
                          Scheme{CodeScheme::kRepetition3, 3}}) {
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<std::uint8_t> payload(
          static_cast<std::size_t>(rng.UniformInt(4, 64)));
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
      }
      auto coded = Encode(s.code, payload);
      for (std::size_t block = 0; block + s.block <= coded.size();
           block += s.block) {
        if (rng.Chance(0.7)) {
          const std::size_t flip = block + static_cast<std::size_t>(rng.UniformInt(
                                               0, static_cast<int>(s.block) - 1));
          coded[flip] ^= 1;
        }
      }
      const auto decoded = Decode(s.code, coded);
      ASSERT_GE(decoded.size(), payload.size());
      for (std::size_t i = 0; i < payload.size(); ++i) {
        ASSERT_EQ(decoded[i], payload[i])
            << ToString(s.code) << " trial " << trial << " bit " << i;
      }
    }
  }
}

// Property: MapBits/DemapSymbols are exact inverses for every modulation
// on noiseless symbols. 100 random payloads across the constellations.
TEST(ConstellationProperty, MapDemapRoundTripsEveryModulation) {
  sim::Rng rng(9400);
  for (int trial = 0; trial < 100; ++trial) {
    for (Modulation m : AllModulations()) {
      const unsigned bps = BitsPerSymbol(m);
      const std::size_t n_symbols =
          static_cast<std::size_t>(rng.UniformInt(1, 40));
      std::vector<std::uint8_t> bits(n_symbols * bps);
      for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
      const auto symbols = MapBits(m, bits);
      ASSERT_EQ(symbols.size(), n_symbols) << ToString(m);
      EXPECT_EQ(DemapSymbols(m, symbols), bits)
          << ToString(m) << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace wearlock::modem
