// sim::EventQueue contract: deterministic (due time, schedule order)
// drains, fail-fast validation on the scheduling APIs, lazy-deletion
// Cancel semantics, and re-entrant scheduling from inside callbacks -
// the properties the session multiplexer leans on
// (docs/architecture.md).
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace wearlock {
namespace {

TEST(EventQueueTest, RunsInDueTimeOrderAndAdvancesNow) {
  sim::EventQueue queue;
  std::vector<std::string> order;
  (void)queue.ScheduleAt(30.0, [&] { order.push_back("c"); });
  (void)queue.ScheduleAt(10.0, [&] { order.push_back("a"); });
  (void)queue.ScheduleAt(20.0, [&] { order.push_back("b"); });
  EXPECT_EQ(queue.pending(), 3u);
  EXPECT_FALSE(queue.empty());

  EXPECT_TRUE(queue.RunOne());
  EXPECT_DOUBLE_EQ(queue.now(), 10.0);
  EXPECT_EQ(queue.RunUntilIdle(), 2u);
  EXPECT_DOUBLE_EQ(queue.now(), 30.0);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.RunOne()) << "idle queue must report no work";
}

TEST(EventQueueTest, TiesRunInScheduleOrder) {
  // Two events due at the same instant run in the order they were
  // scheduled - the (at_ms, id) tiebreak that keeps a drain a pure
  // function of the schedule calls.
  sim::EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    (void)queue.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(queue.RunUntilIdle(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, ScheduleAfterIsRelativeToNow) {
  sim::EventQueue queue;
  double fired_at = -1.0;
  (void)queue.ScheduleAfter(10.0, [&] {
    // Re-entrant scheduling: events may schedule more events; the
    // drain keeps going and the delay is relative to the new now().
    (void)queue.ScheduleAfter(5.0, [&] { fired_at = queue.now(); });
  });
  EXPECT_EQ(queue.RunUntilIdle(), 2u);
  EXPECT_DOUBLE_EQ(fired_at, 15.0);

  // A zero delay is valid: "next tick", after already-due peers.
  bool ran = false;
  (void)queue.ScheduleAfter(0.0, [&] { ran = true; });
  EXPECT_EQ(queue.RunUntilIdle(), 1u);
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, SchedulingValidatesItsArguments) {
  sim::EventQueue queue;
  const auto noop = [] {};
  EXPECT_THROW((void)queue.ScheduleAfter(-1.0, noop), std::invalid_argument);
  EXPECT_THROW(
      (void)queue.ScheduleAfter(std::numeric_limits<double>::quiet_NaN(), noop),
      std::invalid_argument);
  EXPECT_THROW(
      (void)queue.ScheduleAfter(std::numeric_limits<double>::infinity(), noop),
      std::invalid_argument);
  EXPECT_THROW((void)queue.ScheduleAt(
                   -std::numeric_limits<double>::infinity(), noop),
               std::invalid_argument);
  // Empty callbacks are programming errors, caught at schedule time -
  // not deferred null dereferences at fire time.
  EXPECT_THROW((void)queue.ScheduleAfter(1.0, sim::EventQueue::Callback{}),
               std::invalid_argument);

  // Scheduling into the past would silently reorder the timeline.
  (void)queue.ScheduleAt(10.0, noop);
  EXPECT_TRUE(queue.RunOne());
  EXPECT_THROW((void)queue.ScheduleAt(9.0, noop), std::invalid_argument);
  // At exactly now() is fine: "due immediately".
  (void)queue.ScheduleAt(10.0, noop);
  EXPECT_EQ(queue.RunUntilIdle(), 1u);

  // A throwing schedule call must not corrupt the queue.
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, CancelDropsPendingEventsExactlyOnce) {
  sim::EventQueue queue;
  bool ran = false;
  const sim::EventQueue::EventId id =
      queue.ScheduleAfter(5.0, [&] { ran = true; });
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_FALSE(queue.Cancel(id)) << "double cancel must report not-pending";
  EXPECT_EQ(queue.RunUntilIdle(), 0u) << "cancelled events never run";
  EXPECT_FALSE(ran);

  // Ids that already ran (or were never issued) are not pending either.
  int fired = 0;
  const sim::EventQueue::EventId done =
      queue.ScheduleAfter(1.0, [&] { ++fired; });
  EXPECT_EQ(queue.RunUntilIdle(), 1u);
  EXPECT_FALSE(queue.Cancel(done));
  EXPECT_FALSE(queue.Cancel(0));
  EXPECT_FALSE(queue.Cancel(123456));
  EXPECT_EQ(fired, 1);

  // Cancelling one event leaves its peers untouched.
  int survivors = 0;
  const sim::EventQueue::EventId victim =
      queue.ScheduleAfter(2.0, [&] { ++survivors; });
  (void)queue.ScheduleAfter(2.0, [&] { ++survivors; });
  (void)queue.ScheduleAfter(3.0, [&] { ++survivors; });
  EXPECT_TRUE(queue.Cancel(victim));
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_EQ(queue.RunUntilIdle(), 2u);
  EXPECT_EQ(survivors, 2);
}

TEST(EventQueueTest, CallbackMayScheduleAndCancelDuringDrain) {
  // The retry ladder's shape: an event cancels a sibling timeout and
  // schedules a follow-up, all from inside the drain.
  sim::EventQueue queue;
  std::vector<std::string> order;
  const sim::EventQueue::EventId timeout =
      queue.ScheduleAfter(100.0, [&] { order.push_back("timeout"); });
  (void)queue.ScheduleAfter(1.0, [&] {
    order.push_back("reply");
    EXPECT_TRUE(queue.Cancel(timeout));
    (void)queue.ScheduleAfter(1.0, [&] { order.push_back("next"); });
  });
  EXPECT_EQ(queue.RunUntilIdle(), 2u);
  EXPECT_EQ(order, (std::vector<std::string>{"reply", "next"}));
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueueTest, NodiscardIdsAreStableAndDistinct) {
  sim::EventQueue queue;
  const auto noop = [] {};
  const sim::EventQueue::EventId a = queue.ScheduleAfter(1.0, noop);
  const sim::EventQueue::EventId b = queue.ScheduleAfter(1.0, noop);
  const sim::EventQueue::EventId c = queue.ScheduleAt(1.0, noop);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  // Ids stay valid handles while pending, regardless of heap churn.
  (void)queue.ScheduleAfter(0.5, noop);
  EXPECT_TRUE(queue.Cancel(b));
  EXPECT_EQ(queue.RunUntilIdle(), 3u);
}

}  // namespace
}  // namespace wearlock
