// Run a complete WearLock unlock session from the command line and print
// the protocol trace - the fastest way to explore how environment,
// distance, grip and configuration interact.
//
// Usage:
//   wearlock_unlock_cli [--env quiet|office|classroom|cafe|grocery]
//                       [--distance 0.3] [--same-hand] [--different-body]
//                       [--different-room] [--no-link] [--config 1|2|3]
//                       [--activity sitting|walking|running]
//                       [--attempts N] [--seed S] [--retries R]
//                       [--trace out.json] [--metrics out.json] [--verbose]
//
// --trace writes a Chrome trace_event JSON of every span the attempts
// produced (virtual-time timestamps; open in chrome://tracing or
// https://ui.perfetto.dev). --metrics dumps the session's metrics
// registry as JSON. --verbose routes library diagnostics to stderr.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/log.h"
#include "protocol/session.h"

namespace {
using namespace wearlock;
using namespace wearlock::protocol;

audio::Environment ParseEnv(const char* s) {
  if (std::strcmp(s, "office") == 0) return audio::Environment::kOffice;
  if (std::strcmp(s, "classroom") == 0) return audio::Environment::kClassroom;
  if (std::strcmp(s, "cafe") == 0) return audio::Environment::kCafe;
  if (std::strcmp(s, "grocery") == 0) return audio::Environment::kGroceryStore;
  return audio::Environment::kQuietRoom;
}

sensors::Activity ParseActivity(const char* s) {
  if (std::strcmp(s, "walking") == 0) return sensors::Activity::kWalking;
  if (std::strcmp(s, "running") == 0) return sensors::Activity::kRunning;
  return sensors::Activity::kSitting;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig config = ScenarioConfig::Config1();
  config.scene.distance_m = 0.3;
  int attempts = 1;
  int retries = 0;
  std::string trace_path;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--env") {
      config.scene.environment = ParseEnv(next());
    } else if (arg == "--distance") {
      config.scene.distance_m = std::atof(next());
    } else if (arg == "--same-hand") {
      config.scene.distance_m = 0.15;
      config.scene.propagation = audio::PropagationSpec::BodyBlockedNlos();
    } else if (arg == "--different-body") {
      config.same_body = false;
    } else if (arg == "--different-room") {
      config.scene.co_located = false;
      config.same_body = false;
    } else if (arg == "--no-link") {
      config.wireless_connected = false;
    } else if (arg == "--config") {
      const int n = std::atoi(next());
      if (n == 2) config = ScenarioConfig::Config2();
      if (n == 3) config = ScenarioConfig::Config3();
    } else if (arg == "--activity") {
      config.activity = ParseActivity(next());
    } else if (arg == "--attempts") {
      attempts = std::atoi(next());
    } else if (arg == "--retries") {
      retries = std::atoi(next());
    } else if (arg == "--seed") {
      config.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--verbose") {
      obs::SetLogSink(obs::StderrLogSink());
      obs::SetLogThreshold(obs::LogLevel::kDebug);
    } else {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n",
                   arg.c_str());
      return 2;
    }
  }

  UnlockSession session(config);
  int unlocked = 0;
  for (int a = 0; a < attempts; ++a) {
    session.keyguard().Relock();
    if (!session.keyguard().CanAttemptWearlock()) {
      session.keyguard().UnlockWithCredential();
      session.keyguard().Relock();
    }
    const UnlockReport report = session.AttemptWithRetries(retries);
    if (report.unlocked) ++unlocked;
    std::printf("attempt %d: %s", a + 1, ToString(report.outcome).c_str());
    if (report.mode) {
      std::printf(" (%s, token BER %.3f, %.0f ms)",
                  ToString(*report.mode).c_str(), report.token_ber,
                  report.timings.total_ms());
    }
    std::printf("\n");
    for (const auto& event : report.trace) {
      std::printf("  [%7.0f ms] %-14s %s\n", event.at_ms, event.step.c_str(),
                  event.detail.c_str());
    }
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 2;
    }
    session.tracer().WriteChromeTrace(os);
    std::printf("wrote %zu spans to %s\n", session.tracer().spans().size(),
                trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 2;
    }
    session.metrics().WriteJson(os);
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  std::printf("unlocked %d/%d\n", unlocked, attempts);
  return unlocked > 0 ? 0 : 1;
}
