// Run a complete WearLock unlock session from the command line and print
// the protocol trace - the fastest way to explore how environment,
// distance, grip and configuration interact.
//
// Usage:
//   wearlock_unlock_cli [--env quiet|office|classroom|cafe|grocery]
//                       [--distance 0.3] [--same-hand] [--different-body]
//                       [--different-room] [--no-link] [--config 1|2|3]
//                       [--activity sitting|walking|running]
//                       [--attempts N] [--seed S] [--retries R]
//                       [--threads T] [--faults SPEC] [--attack SPEC]
//                       [--impairments SPEC]
//                       [--trace out.json] [--metrics out.json]
//                       [--fault-trace out.jsonl]
//                       [--attack-trace out.jsonl]
//                       [--channel-trace out.jsonl]
//                       [--session-log out.jsonl] [--verbose]
//
// --trace writes a Chrome trace_event JSON of every span the attempts
// produced (virtual-time timestamps; open in chrome://tracing or
// https://ui.perfetto.dev). --metrics dumps the session's metrics
// registry as JSON. --verbose routes library diagnostics to stderr.
//
// --faults injects deterministic faults (sim::FaultPlan::Parse grammar,
// e.g. "drop=0.3,flap@rts,trunc=0.5") and arms the resilience policy;
// with a fixed --seed this replays a CI fault-matrix cell exactly.
// --fault-trace writes the injected-fault event log as JSONL (the
// committed-golden format; sequential mode only, like --trace).
//
// --attack subjects the session to a channel-level attacker
// (sim::AttackSpec grammar: KIND[@DISTANCE][:key=value]..., KIND in
// eavesdrop|replay|relay|probe|overshadow, e.g.
// "relay@3.0:delay=3:gain=40") and arms the full defense suite
// including acoustic distance bounding. Each attempt runs one complete
// attack scenario (seeded --seed + attempt index); the exit code flips:
// 0 means the defense held every attempt (no false unlock), 1 means the
// attacker won one. --attack-trace writes the adversary's event log as
// JSONL (the committed-golden format in tests/golden/; tools/ci.sh
// replays it). See docs/security.md for the threat model.
//
// --impairments arms deterministic channel impairments on the scene
// (audio::ImpairmentPlan grammar, e.g. "sro=50,reverb=300,pairs=2") and
// lets the phone's channel hardening (drift tracking, acoustic MAC,
// robust degrade ladder) fight them; see docs/channels.md. A malformed
// or out-of-range spec exits 2. --channel-trace writes the channel
// event log - impairment arming plus the receiver's drift/MAC/degrade
// decisions - as JSONL (the committed-golden format; sequential mode
// only, like --fault-trace).
//
// --session-log writes one telemetry SessionRecord per attempt as JSONL
// (the wearlock_telemetry CLI's input format). Works in both modes; in
// parallel mode records land in attempt order, and the record *set* is
// identical at any thread count.
//
// Passing --threads T (any T, including 1) fans the attempts across a
// sim::ParallelExecutor: each attempt becomes an independent
// UnlockSession whose seed is forked from (--seed, attempt index), and
// the per-attempt traces print in attempt order regardless of
// scheduling. Explicit --threads 1 runs that same independent-sessions
// plan on one thread - byte-identical output to --threads 8, which the
// CI telemetry gate pins. Omitting --threads keeps the classic
// sequential behavior of one session attempted repeatedly, which
// --trace/--metrics/--fault-trace require.
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "audio/impairments.h"
#include "obs/log.h"
#include "protocol/attack_agents.h"
#include "protocol/session.h"
#include "sim/adversary.h"
#include "sim/executor.h"

namespace {
using namespace wearlock;
using namespace wearlock::protocol;

audio::Environment ParseEnv(const char* s) {
  if (std::strcmp(s, "office") == 0) return audio::Environment::kOffice;
  if (std::strcmp(s, "classroom") == 0) return audio::Environment::kClassroom;
  if (std::strcmp(s, "cafe") == 0) return audio::Environment::kCafe;
  if (std::strcmp(s, "grocery") == 0) return audio::Environment::kGroceryStore;
  return audio::Environment::kQuietRoom;
}

// atoi/atof-shaped wrappers over std::from_chars (the banned-api lint
// rejects the real thing): any malformed value yields 0, like the
// functions they replace, except trailing junk is rejected rather than
// silently truncated.
long long ParseIntFlag(const char* s) {
  long long value = 0;
  const char* end = s + std::strlen(s);
  const auto result = std::from_chars(s, end, value);
  return result.ec == std::errc() && result.ptr == end ? value : 0;
}

double ParseDoubleFlag(const char* s) {
  double value = 0.0;
  const char* end = s + std::strlen(s);
  const auto result = std::from_chars(s, end, value);
  return result.ec == std::errc() && result.ptr == end ? value : 0.0;
}

sensors::Activity ParseActivity(const char* s) {
  if (std::strcmp(s, "walking") == 0) return sensors::Activity::kWalking;
  if (std::strcmp(s, "running") == 0) return sensors::Activity::kRunning;
  return sensors::Activity::kSitting;
}

std::string FormatReport(int attempt, const UnlockReport& report) {
  std::string out =
      "attempt " + std::to_string(attempt + 1) + ": " + ToString(report.outcome);
  if (report.mode) {
    char detail[96];
    std::snprintf(detail, sizeof(detail), " (%s, token BER %.3f, %.0f ms)",
                  ToString(*report.mode).c_str(), report.token_ber,
                  report.timings.total_ms());
    out += detail;
  }
  out += "\n";
  for (const auto& event : report.trace) {
    char line[256];
    std::snprintf(line, sizeof(line), "  [%7.0f ms] %-14s %s\n", event.at_ms,
                  event.step.c_str(), event.detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig config = ScenarioConfig::Config1();
  config.scene.distance_m = 0.3;
  int attempts = 1;
  int retries = 0;
  std::size_t threads = 1;
  bool threads_set = false;
  std::string trace_path;
  std::string metrics_path;
  std::string fault_trace_path;
  std::string attack_trace_path;
  std::string channel_trace_path;
  std::string session_log_path;
  std::string attack_spec_str;
  std::string impairment_spec_str;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--env") {
      config.scene.environment = ParseEnv(next());
    } else if (arg == "--distance") {
      config.scene.distance_m = ParseDoubleFlag(next());
    } else if (arg == "--same-hand") {
      config.scene.distance_m = 0.15;
      config.scene.propagation = audio::PropagationSpec::BodyBlockedNlos();
    } else if (arg == "--different-body") {
      config.same_body = false;
    } else if (arg == "--different-room") {
      config.scene.co_located = false;
      config.same_body = false;
    } else if (arg == "--no-link") {
      config.wireless_connected = false;
    } else if (arg == "--config") {
      const int n = static_cast<int>(ParseIntFlag(next()));
      if (n == 2) config = ScenarioConfig::Config2();
      if (n == 3) config = ScenarioConfig::Config3();
    } else if (arg == "--activity") {
      config.activity = ParseActivity(next());
    } else if (arg == "--attempts") {
      attempts = static_cast<int>(ParseIntFlag(next()));
    } else if (arg == "--retries") {
      retries = static_cast<int>(ParseIntFlag(next()));
    } else if (arg == "--threads") {
      threads_set = true;
      threads = static_cast<std::size_t>(ParseIntFlag(next()));
      if (threads == 0) threads = sim::ParallelExecutor::DefaultThreadCount();
    } else if (arg == "--session-log") {
      session_log_path = next();
    } else if (arg == "--seed") {
      config.seed = static_cast<std::uint64_t>(ParseIntFlag(next()));
    } else if (arg == "--faults") {
      try {
        config.faults = sim::FaultPlan::Parse(next());
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "bad --faults spec: %s\n", error.what());
        return 2;
      }
    } else if (arg == "--attack") {
      attack_spec_str = next();
      try {
        // Validate now for fast-fail flag feedback; the spec is applied
        // after the loop so a later --config reset cannot drop it.
        (void)sim::AttackSpec::Parse(attack_spec_str);
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "bad --attack spec: %s\n", error.what());
        return 2;
      }
    } else if (arg == "--impairments") {
      impairment_spec_str = next();
      try {
        // Validate now for fast-fail flag feedback; the plan is applied
        // after the loop so a later --config reset cannot drop it.
        const audio::ImpairmentPlan parsed =
            audio::ImpairmentPlan::Parse(impairment_spec_str);
        (void)parsed;
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "bad --impairments spec: %s\n", error.what());
        return 2;
      }
    } else if (arg == "--channel-trace") {
      channel_trace_path = next();
    } else if (arg == "--attack-trace") {
      attack_trace_path = next();
    } else if (arg == "--fault-trace") {
      fault_trace_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--verbose") {
      obs::SetLogSink(obs::StderrLogSink());
      obs::SetLogThreshold(obs::LogLevel::kDebug);
    } else {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n",
                   arg.c_str());
      return 2;
    }
  }

  if (attack_trace_path.empty() == false && attack_spec_str.empty()) {
    std::fprintf(stderr, "--attack-trace needs --attack\n");
    return 2;
  }
  if (channel_trace_path.empty() == false && impairment_spec_str.empty()) {
    std::fprintf(stderr, "--channel-trace needs --impairments\n");
    return 2;
  }
  if (!impairment_spec_str.empty()) {
    config.impairments = audio::ImpairmentPlan::Parse(impairment_spec_str);
  }

  int unlocked = 0;
  std::string session_log;
  if (!attack_spec_str.empty()) {
    // Attack mode: each attempt is one complete attack scenario run by
    // the agent for the spec (which orchestrates its own victim
    // sessions), with the full defense suite armed. The exit code
    // reports the DEFENSE's outcome, not the victim's.
    config.attack = sim::AttackSpec::Parse(attack_spec_str);
    config.phone.distance_bounding.enable = true;
    if (threads_set || !trace_path.empty() || !metrics_path.empty() ||
        !fault_trace_path.empty() || !channel_trace_path.empty()) {
      std::fprintf(stderr,
                   "--threads/--trace/--metrics/--fault-trace/--channel-trace "
                   "are ignored in attack mode\n");
    }
    int breaches = 0;
    std::string attack_trace;
    for (int a = 0; a < attempts; ++a) {
      ScenarioConfig attempt_config = config;
      attempt_config.seed = config.seed + static_cast<std::uint64_t>(a);
      const AttackReport report =
          RunAttackScenario(attempt_config, attempt_config.attack);
      for (const obs::SessionRecord& record : report.records) {
        session_log += record.ToJsonl();
        session_log += '\n';
      }
      attack_trace += sim::AttackTraceJsonl(report.events);
      if (report.false_unlock) ++breaches;
      char ranging[32] = "-";
      if (report.ranging_distance_m) {
        std::snprintf(ranging, sizeof(ranging), "%.2fm",
                      *report.ranging_distance_m);
      }
      std::printf(
          "attempt %d: victim %s | attacker false_unlock=%d "
          "token_recovered=%d token_ber=%.3f ranging=%s\n",
          a + 1, ToString(report.victim_outcome).c_str(),
          report.false_unlock ? 1 : 0, report.token_recovered ? 1 : 0,
          report.attacker_token_ber, ranging);
    }
    if (!session_log_path.empty()) {
      std::ofstream os(session_log_path);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", session_log_path.c_str());
        return 2;
      }
      os << session_log;
    }
    if (!attack_trace_path.empty()) {
      std::ofstream os(attack_trace_path);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", attack_trace_path.c_str());
        return 2;
      }
      os << attack_trace;
    }
    std::printf("defense held %d/%d against %s\n", attempts - breaches,
                attempts, config.attack.spec.c_str());
    return breaches == 0 ? 0 : 1;
  }
  if (threads_set) {
    // Parallel mode: every attempt is an independent session, seeded
    // from (--seed, attempt index); output buffers print in order.
    // Explicit --threads 1 runs the identical plan on one thread, so
    // the telemetry gate can diff it byte-for-byte against --threads N.
    if (!trace_path.empty() || !metrics_path.empty() ||
        !fault_trace_path.empty() || !channel_trace_path.empty()) {
      std::fprintf(stderr,
                   "--trace/--metrics/--fault-trace/--channel-trace need "
                   "sequential mode; ignoring (drop --threads to keep them)\n");
      trace_path.clear();
      metrics_path.clear();
      fault_trace_path.clear();
      channel_trace_path.clear();
    }
    sim::ParallelExecutor executor(threads);
    struct AttemptResult {
      bool unlocked = false;
      std::string text;
      std::string records;
    };
    const auto results = executor.Map(
        static_cast<std::size_t>(attempts), config.seed,
        [&](sim::TaskContext& ctx) {
          ScenarioConfig attempt_config = config;
          attempt_config.seed =
              sim::ParallelExecutor::TaskSeed(config.seed, ctx.index);
          UnlockSession session(attempt_config);
          AttemptResult result;
          session.SetRecordSink([&result](const obs::SessionRecord& record) {
            result.records += record.ToJsonl();
            result.records += '\n';
          });
          const UnlockReport report = session.AttemptWithRetries(retries);
          result.unlocked = report.unlocked;
          result.text =
              FormatReport(static_cast<int>(ctx.index), report);
          return result;
        });
    for (const AttemptResult& result : results) {
      if (result.unlocked) ++unlocked;
      std::fputs(result.text.c_str(), stdout);
      session_log += result.records;
    }
    if (!session_log_path.empty()) {
      std::ofstream os(session_log_path);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", session_log_path.c_str());
        return 2;
      }
      os << session_log;
    }
    std::printf("unlocked %d/%d\n", unlocked, attempts);
    return unlocked > 0 ? 0 : 1;
  }

  UnlockSession session(config);
  session.SetRecordSink([&session_log](const obs::SessionRecord& record) {
    session_log += record.ToJsonl();
    session_log += '\n';
  });
  for (int a = 0; a < attempts; ++a) {
    session.keyguard().Relock();
    if (!session.keyguard().CanAttemptWearlock()) {
      session.keyguard().UnlockWithCredential();
      session.keyguard().Relock();
    }
    const UnlockReport report = session.AttemptWithRetries(retries);
    if (report.unlocked) ++unlocked;
    std::fputs(FormatReport(a, report).c_str(), stdout);
  }
  if (!session_log_path.empty()) {
    std::ofstream os(session_log_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", session_log_path.c_str());
      return 2;
    }
    os << session_log;
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 2;
    }
    session.tracer().WriteChromeTrace(os);
    std::printf("wrote %zu spans to %s\n", session.tracer().spans().size(),
                trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 2;
    }
    session.metrics().WriteJson(os);
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  if (!fault_trace_path.empty()) {
    if (session.faults() == nullptr) {
      std::fprintf(stderr, "--fault-trace needs --faults\n");
      return 2;
    }
    std::ofstream os(fault_trace_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", fault_trace_path.c_str());
      return 2;
    }
    os << sim::FaultTraceJsonl(session.faults()->events());
    std::printf("wrote %zu fault events to %s\n",
                session.faults()->events().size(), fault_trace_path.c_str());
  }
  if (!channel_trace_path.empty()) {
    // Guarded above: --channel-trace without --impairments already
    // exited, so the scene is armed here.
    const audio::ChannelImpairments* chan = session.scene().impairments();
    std::ofstream os(channel_trace_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", channel_trace_path.c_str());
      return 2;
    }
    os << audio::ChannelTraceJsonl(chan->events());
    std::printf("wrote %zu channel events to %s\n", chan->events().size(),
                channel_trace_path.c_str());
  }
  std::printf("unlocked %d/%d\n", unlocked, attempts);
  return unlocked > 0 ? 0 : 1;
}
