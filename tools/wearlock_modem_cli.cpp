// Command-line acoustic modem: frame text into a WAV file and recover it
// back - the quickest way to poke at the modem with real audio tools
// (play the WAV through actual speakers, re-record, feed it back).
//
// Usage:
//   wearlock_modem_cli send "hello watch" out.wav [qpsk|qask|8psk] [none|hamming|rep3]
//   wearlock_modem_cli recv in.wav [qpsk|qask|8psk] [none|hamming|rep3]
//   wearlock_modem_cli probe out.wav
//
// Telemetry flags (anywhere on the line): --trace <out.json> writes a
// Chrome trace_event JSON of the modem spans (host-clock timestamps,
// since this tool has no virtual time); --metrics <out.json> dumps the
// metrics registry; --session-log <out.jsonl> appends one telemetry
// SessionRecord for the transaction (config "modem-<command>",
// host-clock total_ms), so modem experiments land in the same
// wearlock_telemetry pipeline as unlock campaigns.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "audio/wav.h"
#include "dsp/spectrogram.h"
#include "modem/datagram.h"
#include "modem/golden.h"
#include "obs/metrics.h"
#include "obs/record.h"
#include "obs/trace.h"
#include "sim/executor.h"

namespace {

using namespace wearlock;

modem::Modulation ParseModulation(const char* s) {
  if (std::strcmp(s, "qask") == 0) return modem::Modulation::kQask;
  if (std::strcmp(s, "8psk") == 0) return modem::Modulation::k8Psk;
  if (std::strcmp(s, "bpsk") == 0) return modem::Modulation::kBpsk;
  if (std::strcmp(s, "bask") == 0) return modem::Modulation::kBask;
  if (std::strcmp(s, "16qam") == 0) return modem::Modulation::k16Qam;
  return modem::Modulation::kQpsk;
}

modem::CodeScheme ParseCode(const char* s) {
  if (std::strcmp(s, "hamming") == 0) return modem::CodeScheme::kHamming74;
  if (std::strcmp(s, "rep3") == 0) return modem::CodeScheme::kRepetition3;
  return modem::CodeScheme::kNone;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  wearlock_modem_cli send <text> <out.wav> [mod] [code]\n"
               "  wearlock_modem_cli recv <in.wav> [mod] [code]\n"
               "  wearlock_modem_cli probe <out.wav>\n"
               "  wearlock_modem_cli spectrogram <in.wav>\n"
               "  wearlock_modem_cli --regen-golden\n"
               "  mod:  qpsk (default) | qask | 8psk | bpsk | bask | 16qam\n"
               "  code: none (default) | hamming | rep3\n"
               "  --regen-golden reprints the tests/modem_golden_test.cpp\n"
               "  table after an intentional DSP change; --threads <n> sizes\n"
               "  its worker pool (default: WEARLOCK_THREADS or all cores).\n");
  return 2;
}

/// Recompute the golden table in parallel (one task per modulation) and
/// print pasteable rows for tests/modem_golden_test.cpp.
int RegenGolden(std::size_t threads) {
  sim::ParallelExecutor executor(threads);
  const std::vector<modem::Modulation>& mods = modem::AllModulations();
  const auto rows =
      executor.Map(mods.size(), modem::kGoldenSeed, [&](sim::TaskContext& ctx) {
        const auto golden =
            modem::ComputeGoldenVector(mods[ctx.index], modem::kGoldenSeed);
        if (!golden.demodulated) {
          throw std::runtime_error("clean loopback failed for " +
                                   ToString(golden.modulation));
        }
        return modem::FormatGoldenRow(golden);
      });
  std::printf("// seed 0x%llX, %zu payload bits, clean loopback\n",
              static_cast<unsigned long long>(modem::kGoldenSeed),
              modem::kGoldenBits);
  for (const std::string& row : rows) std::printf("    %s\n", row.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull the telemetry/parallelism flags out; everything else stays
  // positional.
  std::string trace_path;
  std::string metrics_path;
  std::string session_log_path;
  std::size_t threads = 0;  // 0 = WEARLOCK_THREADS or hardware default
  bool regen_golden = false;
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--session-log") == 0 && i + 1 < argc) {
      session_log_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--regen-golden") == 0) {
      regen_golden = true;
    } else {
      pos.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(pos.size()) + 1;
  for (int i = 1; i < argc; ++i) argv[i] = pos[i - 1];

  if (regen_golden) return RegenGolden(threads);

  // Host-clock tracer: this tool has no virtual time.
  const auto t0 = std::chrono::steady_clock::now();
  wearlock::obs::Tracer tracer([t0] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  });
  wearlock::obs::MetricsRegistry registry;
  wearlock::obs::ScopedTracer install_tracer(&tracer);
  wearlock::obs::ScopedMetricsRegistry install_metrics(&registry);
  auto dump_telemetry = [&]() {
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      tracer.WriteChromeTrace(os);
      std::fprintf(stderr, "wrote %zu spans to %s\n", tracer.spans().size(),
                   trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      registry.WriteJson(os);
      std::fprintf(stderr, "wrote metrics to %s\n", metrics_path.c_str());
    }
  };

  if (argc < 3) return Usage();
  const std::string command = argv[1];
  modem::AcousticModem acoustic_modem;

  auto run = [&]() -> int {
  try {
    if (command == "send" && argc >= 4) {
      modem::DatagramConfig config;
      if (argc >= 5) config.modulation = ParseModulation(argv[4]);
      if (argc >= 6) config.code = ParseCode(argv[5]);
      const std::string text = argv[2];
      const std::vector<std::uint8_t> payload(text.begin(), text.end());
      const auto tx = modem::SendDatagram(acoustic_modem, config, payload);
      audio::WriteWav(argv[3], tx.samples);
      std::printf("wrote %zu samples (%.2f s, %zu OFDM symbols, %s/%s) to %s\n",
                  tx.samples.size(),
                  static_cast<double>(tx.samples.size()) / audio::kSampleRate,
                  tx.n_symbols, ToString(config.modulation).c_str(),
                  ToString(config.code).c_str(), argv[3]);
      return 0;
    }
    if (command == "recv") {
      modem::DatagramConfig config;
      if (argc >= 4) config.modulation = ParseModulation(argv[3]);
      if (argc >= 5) config.code = ParseCode(argv[4]);
      const audio::WavData wav = audio::ReadWav(argv[2]);
      const auto result =
          modem::ReceiveDatagram(acoustic_modem, config, wav.samples);
      if (!result) {
        std::printf("no frame found in %s\n", argv[2]);
        return 1;
      }
      const std::string text(result->payload.begin(), result->payload.end());
      std::printf("payload (%zu bytes, CRC %s, preamble score %.2f):\n%s\n",
                  result->payload.size(), result->crc_ok ? "OK" : "BAD",
                  result->preamble_score, text.c_str());
      return result->crc_ok ? 0 : 1;
    }
    if (command == "spectrogram") {
      const audio::WavData wav = audio::ReadWav(argv[2]);
      const auto spec = dsp::ComputeSpectrogram(wav.samples);
      std::printf("%s", dsp::RenderAscii(spec).c_str());
      std::printf("%zu frames x %zu bins, %.1f Hz/bin, %.1f ms/frame\n",
                  spec.power_db.size(),
                  spec.power_db.empty() ? 0 : spec.power_db.front().size(),
                  spec.bin_hz, spec.frame_s * 1000.0);
      return 0;
    }
    if (command == "probe") {
      const auto tx = acoustic_modem.MakeProbeFrame();
      audio::WriteWav(argv[2], tx.samples);
      std::printf("wrote RTS probe frame (%zu samples) to %s\n",
                  tx.samples.size(), argv[2]);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
  };

  const int rc = run();
  dump_telemetry();
  if (!session_log_path.empty()) {
    obs::SessionRecord record;
    record.config = "modem-" + command;
    record.environment = "host";
    record.outcome = rc == 0 ? "ok" : "error";
    record.unlocked = rc == 0;
    record.total_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if ((command == "send" && argc >= 5) || (command == "recv" && argc >= 4)) {
      record.mode = ToString(
          ParseModulation(argv[command == "send" ? 4 : 3]));
    }
    std::ofstream os(session_log_path, std::ios::app);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", session_log_path.c_str());
      return 2;
    }
    os << record.ToJsonl() << "\n";
    std::fprintf(stderr, "appended session record to %s\n",
                 session_log_path.c_str());
  }
  return rc;
}
