#!/usr/bin/env bash
# Local CI: the checks a PR must pass.
#   1. hygiene guards (no direct stdio writes in library code)
#   2. plain build + full ctest
#   3. ASan + UBSan build, tier-1 + obs tests under the sanitizers
#
# Usage: tools/ci.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
SKIP_SAN=0
[[ "${1:-}" == "--skip-sanitizers" ]] && SKIP_SAN=1

banner() { printf '\n==== %s ====\n' "$1"; }

banner "guard: library code writes through obs::Log, not stdio"
# src/ must not print directly (snprintf-to-buffer is fine; the stderr
# log sink in obs/log.cpp is the one sanctioned writer).
if grep -rnE 'std::cout|std::cerr|\bfprintf\(|\bprintf\(|\bputs\(' \
    --include='*.cpp' --include='*.h' src/ | grep -v 'src/obs/log.cpp'; then
  echo "FAIL: direct stdio write in src/ (route it through obs/log.h)" >&2
  exit 1
fi
echo "ok"

banner "plain build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

if [[ "$SKIP_SAN" == "1" ]]; then
  echo "skipping sanitizer builds (--skip-sanitizers)"
  exit 0
fi

for san in address undefined; do
  banner "sanitizer: $san"
  cmake -B "build-$san" -S . -DWEARLOCK_SANITIZE="$san" >/dev/null
  cmake --build "build-$san" -j "$JOBS"
  # Tier-1 (the full suite, per ROADMAP) including the obs suites.
  ctest --test-dir "build-$san" --output-on-failure
done

banner "all green"
