#!/usr/bin/env bash
# Local CI: the checks a PR must pass.
#   1. wearlock-lint over src/ tests/ bench/ tools/ with the committed
#      baseline and slot manifest - the repo's self-hosted flow-aware
#      static analysis. Emits build/lint.sarif, reports wall time
#      (budget: 10s), and pins --threads 1 vs 8 byte-identity
#   2. plain build (warnings-as-errors) + full ctest, which includes
#      the lint_test suite, the wearlock_lint_src tree gate, the header
#      self-containment TUs, and the bench_smoke quick-runs
#   3. bench report: fig5 --json at 1 and 8 threads collected into
#      BENCH_dsp_core.json; the serial run is also the zero-allocation
#      steady-state gate (docs/perf.md)
#   4. parallel-determinism gate: fig7 stdout must be byte-identical
#      between --threads 1 and --threads 8 (docs/parallelism.md)
#   5. fault-injection gate: the `fault` ctest label (fault matrix,
#      golden faulted trace, chase-combining rescue) plus a CLI replay
#      of the golden fully-faulted unlock (docs/robustness.md)
#   6. security gate: the `security` ctest label (attack x config
#      conformance matrix, golden attack traces, distance-bounding
#      properties), a CLI --attack replay of the golden relay trace,
#      and an attacker-success-vs-distance sweep that must be
#      byte-identical across thread counts (docs/security.md)
#   7. telemetry gate: the `telemetry` ctest label (sketch determinism,
#      record/rollup round trips, the >=10k-session campaign), then a
#      seeded 200-session mini-campaign through the unlock CLI at
#      --threads 1 and 8 whose session logs, rollups and
#      wearlock_telemetry --diff against the committed golden rollup
#      must all be byte-clean (docs/observability.md)
#   8. fleet gate: the `fleet` ctest label (state-machine vs blocking
#      equivalence, campaign determinism, golden fleet rollup), then a
#      seeded mini-campaign through the wearlock_fleet CLI whose rollup
#      must byte-match between --threads 1 and 8 and against the
#      committed golden (docs/architecture.md), plus the fleet
#      throughput report (BENCH_fleet.json)
#   9. channel gate: the `channel` ctest label (impairment matrix,
#      hardening properties, golden impaired trace), a CLI
#      --impairments replay of the golden impaired unlock, malformed-
#      spec rejection on both CLIs, a channel_sweep stdout byte-diff
#      across thread counts, a >=10k-session contention campaign whose
#      rollup must byte-match across --threads 1/2/8 and shard sizes,
#      and BENCH_channel.json (min-of-3 per thread count)
#      (docs/channels.md)
#  10. one build+test leg per sanitizer: ASan, UBSan, TSan (the TSan
#      leg gets real cross-thread traffic from concurrency_stress_test,
#      executor_test, fft_plan_test, fault_matrix_test,
#      security_matrix_test, channel_matrix_test - the shared-scene
#      mixer under contention - and the fleet multiplexer at
#      WEARLOCK_THREADS=8, and a parallel bench sweep)
#
# Usage: tools/ci.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
SKIP_SAN=0
[[ "${1:-}" == "--skip-sanitizers" ]] && SKIP_SAN=1

# The single source of truth for sanitizer coverage; --skip-sanitizers
# skips exactly this list and nothing else.
SANITIZERS=(address undefined thread)

banner() { printf '\n==== %s ====\n' "$1"; }

banner "gate: wearlock-lint src/ tests/ bench/ tools/"
cmake -B build -S . -DWEARLOCK_WERROR=ON >/dev/null
cmake --build build -j "$JOBS" --target wearlock-lint >/dev/null
LINT_ARGS=(--baseline tools/lint/baseline.txt
           --slot-manifest tools/lint/slot_owners.txt
           src tests bench tools)
# Timed full-tree run, SARIF artifact for upload. The 10s budget keeps
# the gate cheap enough to run on every push (docs/static-analysis.md).
lint_start=$(date +%s.%N)
build/tools/lint/wearlock-lint --threads "$JOBS" --sarif build/lint.sarif \
    "${LINT_ARGS[@]}"
lint_end=$(date +%s.%N)
lint_ms=$(awk -v a="$lint_start" -v b="$lint_end" \
    'BEGIN { printf "%.0f", (b - a) * 1000 }')
echo "lint wall time: ${lint_ms} ms (budget 10000 ms); wrote build/lint.sarif"
if (( lint_ms >= 10000 )); then
  echo "lint gate exceeded its 10s budget" >&2
  exit 1
fi
# Scheduling must never leak into diagnostics: serial and parallel runs
# must emit byte-identical reports.
build/tools/lint/wearlock-lint --threads 1 "${LINT_ARGS[@]}" \
    >build/lint-t1.out || true
build/tools/lint/wearlock-lint --threads 8 "${LINT_ARGS[@]}" \
    >build/lint-t8.out || true
diff build/lint-t1.out build/lint-t8.out
echo "lint output byte-identical across thread counts"

banner "plain build + full test suite"
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

banner "bench report: fig5 timing JSON (BENCH_dsp_core.json)"
# One timed quick sweep per thread count, each writing the schema
# checked by bench_json_test; the two reports are collected side by side
# so the committed artifact records serial and parallel wall time. The
# --threads 1 run doubles as the zero-allocation gate: fig5 exits
# non-zero if the warmed sweep misses the plan cache or grows a
# workspace slot.
build/bench/fig5_ber_ebn0 --quick --threads 1 \
    --json build/fig5-t1.json >/dev/null
build/bench/fig5_ber_ebn0 --quick --threads 8 \
    --json build/fig5-t8.json >/dev/null
{
  printf '{"bench_suite":"dsp_core","reports":[\n'
  cat build/fig5-t1.json
  printf ',\n'
  cat build/fig5-t8.json
  printf ']}\n'
} >BENCH_dsp_core.json
echo "wrote BENCH_dsp_core.json"

banner "parallel determinism: fig7 --threads 1 vs --threads 8"
# The executor's contract (docs/parallelism.md): sweep tables are a pure
# function of the seed, never of the thread count. Tables go to stdout,
# timing diagnostics to stderr, so the diff below pins bit-identity.
build/bench/fig7_ber_distance --quick --threads 1 >build/fig7-t1.out
build/bench/fig7_ber_distance --quick --threads 8 >build/fig7-t8.out
diff -u build/fig7-t1.out build/fig7-t8.out
echo "fig7 output byte-identical across thread counts"

banner "fault-injection gate: ctest -L fault + CLI golden replay"
# The robustness matrix (docs/robustness.md): every faulted cell must
# terminate with a defined outcome, never falsely unlock, and replay
# bit-identically - serially and at WEARLOCK_THREADS=8.
ctest --test-dir build -L fault --output-on-failure
# The committed golden trace must be reproducible from the command line
# with one seed (the CI-failure repro path the CLI exists for).
build/tools/wearlock_unlock_cli \
    --faults drop=0.35,dup=0.3,spike=0.5x10,trunc=0.7 --seed 10 \
    --fault-trace build/fault-trace.jsonl >/dev/null
diff <(sed 's/"at_ms":[0-9.eE+-]*/"at_ms":0/' build/fault-trace.jsonl) \
     tests/golden/faulted_unlock_trace.jsonl
echo "CLI fault replay matches the committed golden trace"

banner "security gate: ctest -L security + CLI attack replay"
# The adversarial conformance matrix (docs/security.md): every attack x
# config cell must terminate with its pinned outcome, never hand the
# attacker an unlock, and replay bit-identically across thread counts.
ctest --test-dir build -L security --output-on-failure
# The committed golden relay trace must be reproducible from the command
# line with one seed (the repro path for a red matrix cell), and the
# defense must hold (exit 0).
build/tools/wearlock_unlock_cli \
    --attack relay@3.0:delay=3:gain=40 --seed 4242 \
    --attack-trace build/attack-trace.jsonl >/dev/null
diff <(sed 's/"at_ms":[0-9.eE+-]*/"at_ms":0/' build/attack-trace.jsonl) \
     tests/golden/relay_attack_trace.jsonl
echo "CLI attack replay matches the committed golden trace"
# Malformed specs must fail closed with a usage error, not run unattacked.
if build/tools/wearlock_unlock_cli --attack bogus 2>/dev/null; then
  echo "malformed --attack spec was accepted" >&2
  exit 1
fi
echo "malformed --attack spec rejected"
# The attacker-success decay figure is a pure function of the seed.
build/bench/attack_distance --quick --threads 1 >build/attack-t1.out
build/bench/attack_distance --quick --threads 8 >build/attack-t8.out
diff build/attack-t1.out build/attack-t8.out
echo "attack_distance output byte-identical across thread counts"

banner "telemetry gate: ctest -L telemetry + mini-campaign rollup diff"
# The fleet-telemetry determinism contract (docs/observability.md):
# a seeded campaign's session records and per-cohort rollup must be
# byte-identical across thread counts, and the rollup must match the
# committed golden within the regression threshold. Fixed host timing
# is armed so modeled compute times cannot absorb scheduler noise.
ctest --test-dir build -L telemetry --output-on-failure
run_campaign() {  # $1 = thread count, $2 = output jsonl
  WEARLOCK_FIXED_HOST_MS=1.25 build/tools/wearlock_unlock_cli \
      --attempts 200 --threads "$1" --seed 77 --env office \
      --distance 0.4 --retries 1 --session-log "$2" >/dev/null
}
run_campaign 1 build/telemetry-t1.jsonl
run_campaign 8 build/telemetry-t8.jsonl
diff build/telemetry-t1.jsonl build/telemetry-t8.jsonl
echo "session records byte-identical across thread counts"
build/tools/wearlock_telemetry --records build/telemetry-t1.jsonl \
    --out build/telemetry-rollup-t1.json 2>/dev/null
build/tools/wearlock_telemetry --records build/telemetry-t8.jsonl \
    --out build/telemetry-rollup-t8.json 2>/dev/null
diff build/telemetry-rollup-t1.json build/telemetry-rollup-t8.json
echo "rollups byte-identical across thread counts"
diff build/telemetry-rollup-t1.json tests/golden/telemetry_rollup.json
build/tools/wearlock_telemetry --diff tests/golden/telemetry_rollup.json \
    build/telemetry-rollup-t8.json --threshold 0.02
echo "mini-campaign rollup matches the committed golden"

banner "fleet gate: ctest -L fleet + campaign rollup byte-diff"
# The event-driven multiplexer's contract (docs/architecture.md): a
# campaign rollup is a pure function of the spec - never of the thread
# count or shard layout - and the blocking Attempt path stays byte-
# equivalent to the multiplexed one. Fixed host timing is armed so
# modeled compute cannot absorb scheduler noise.
ctest --test-dir build -L fleet --output-on-failure
run_fleet() {  # $1 = thread count, $2 = output rollup json
  WEARLOCK_FIXED_HOST_MS=1.25 build/tools/wearlock_fleet \
      --sessions 96 --seed 20260808 --threads "$1" --shard-size 32 \
      --faults '|drop=0.3' --attacks '|replay@0.5' --out "$2"
}
run_fleet 1 build/fleet-t1.json
run_fleet 8 build/fleet-t8.json
diff build/fleet-t1.json build/fleet-t8.json
echo "campaign rollups byte-identical across thread counts"
diff build/fleet-t1.json tests/golden/fleet_rollup.json
echo "campaign rollup matches the committed golden"

banner "bench report: fleet throughput JSON (BENCH_fleet.json)"
# Min-of-3 campaign rounds per thread count; the bench itself verifies
# every round rolls up byte-identically before reporting sessions/sec.
build/bench/fleet_throughput --threads 1 \
    --json build/fleet-bench-t1.json >/dev/null
build/bench/fleet_throughput --threads 8 \
    --json build/fleet-bench-t8.json >/dev/null
{
  printf '{"bench_suite":"fleet","reports":[\n'
  cat build/fleet-bench-t1.json
  printf ',\n'
  cat build/fleet-bench-t8.json
  printf ']}\n'
} >BENCH_fleet.json
echo "wrote BENCH_fleet.json"

banner "channel gate: ctest -L channel + CLI impaired replay"
# The crowded-world contract (docs/channels.md): every impaired cell
# terminates with a defined outcome, hardening earns its keep on the
# pinned differential seeds, past-envelope channels fail closed, and
# the whole matrix replays bit-identically across thread counts.
ctest --test-dir build -L channel --output-on-failure
# The committed golden impaired trace must be reproducible from the
# command line with one seed (the repro path for a red matrix cell).
build/tools/wearlock_unlock_cli \
    --impairments sro=60,reverb=250,pairs=2,burst=0.6x10 --seed 7 \
    --channel-trace build/channel-trace.jsonl >/dev/null
diff <(sed 's/"at_ms":[0-9.eE+-]*/"at_ms":0/' build/channel-trace.jsonl) \
     tests/golden/impaired_unlock_trace.jsonl
echo "CLI impaired replay matches the committed golden trace"
# Malformed specs must fail closed with a usage error on both CLIs.
if build/tools/wearlock_unlock_cli --impairments bogus 2>/dev/null; then
  echo "malformed --impairments spec was accepted by wearlock_unlock_cli" >&2
  exit 1
fi
if build/tools/wearlock_fleet --sessions 3 --impairments '|sro=900' \
    --out build/never.json 2>/dev/null; then
  echo "malformed --impairments spec was accepted by wearlock_fleet" >&2
  exit 1
fi
echo "malformed --impairments specs rejected"
# The hardened-vs-naive sweep is a pure function of the seed. Fixed
# host timing is armed because the table quotes stage quantiles.
WEARLOCK_FIXED_HOST_MS=1.25 build/bench/channel_sweep --quick \
    --threads 1 >build/channel-t1.out
WEARLOCK_FIXED_HOST_MS=1.25 build/bench/channel_sweep --quick \
    --threads 8 >build/channel-t8.out
diff build/channel-t1.out build/channel-t8.out
echo "channel_sweep output byte-identical across thread counts"
# Contention campaign: >= 10k sessions cycling clean / drifted /
# 2-pair-contended cells. The rollup is a pure function of the spec -
# never of the thread count or shard layout.
run_contention() {  # $1 = thread count, $2 = shard size, $3 = out json
  WEARLOCK_FIXED_HOST_MS=1.25 build/tools/wearlock_fleet \
      --sessions 10080 --seed 424242 --threads "$1" --shard-size "$2" \
      --impairments '|sro=50|pairs=2' --out "$3"
}
run_contention 1 72 build/contention-t1.json
run_contention 2 72 build/contention-t2.json
run_contention 8 72 build/contention-t8.json
run_contention 8 504 build/contention-t8-wide.json
diff build/contention-t1.json build/contention-t2.json
diff build/contention-t1.json build/contention-t8.json
diff build/contention-t1.json build/contention-t8-wide.json
echo "contention campaign rollups byte-identical across threads + shards"

banner "bench report: channel sweep JSON (BENCH_channel.json)"
# Min-of-3 rounds per thread count: keep the report whose wall_ms is
# smallest, so the archived numbers reflect steady-state, not cache
# warmup or scheduler noise.
channel_bench_min3() {  # $1 = thread count, $2 = output json
  local best_ms="" best_file="" f ms
  for round in 1 2 3; do
    f="build/channel-bench-t$1-r$round.json"
    WEARLOCK_FIXED_HOST_MS=1.25 build/bench/channel_sweep --quick \
        --threads "$1" --json "$f" >/dev/null
    ms=$(sed -n 's/.*"wall_ms":\([0-9.]*\).*/\1/p' "$f")
    if [[ -z "$best_ms" ]] || \
        awk -v a="$ms" -v b="$best_ms" 'BEGIN { exit !(a < b) }'; then
      best_ms="$ms"
      best_file="$f"
    fi
  done
  cp "$best_file" "$2"
}
channel_bench_min3 1 build/channel-bench-t1.json
channel_bench_min3 8 build/channel-bench-t8.json
{
  printf '{"bench_suite":"channel","reports":[\n'
  cat build/channel-bench-t1.json
  printf ',\n'
  cat build/channel-bench-t8.json
  printf ']}\n'
} >BENCH_channel.json
echo "wrote BENCH_channel.json"

if [[ "$SKIP_SAN" == "1" ]]; then
  echo "skipping sanitizer builds (--skip-sanitizers): ${SANITIZERS[*]}"
  exit 0
fi

for san in "${SANITIZERS[@]}"; do
  banner "sanitizer: $san"
  cmake -B "build-$san" -S . -DWEARLOCK_SANITIZE="$san" \
        -DWEARLOCK_WERROR=ON >/dev/null
  cmake --build "build-$san" -j "$JOBS"
  # Tier-1 (the full suite, per ROADMAP) including the obs suites.
  TSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir "build-$san" --output-on-failure
  if [[ "$san" == "thread" ]]; then
    # Extra TSan traffic through the executor: the determinism tests on
    # a wide pool, plus one real parallel sweep.
    banner "TSan: executor under WEARLOCK_THREADS=8"
    TSAN_OPTIONS="halt_on_error=1" WEARLOCK_THREADS=8 \
        "build-$san/tests/executor_test"
    # PlanCache::Get under real contention (8 threads x shared plans).
    TSAN_OPTIONS="halt_on_error=1" WEARLOCK_THREADS=8 \
        "build-$san/tests/fft_plan_test"
    # The fault matrix's cross-thread determinism leg on a wide pool.
    TSAN_OPTIONS="halt_on_error=1" WEARLOCK_THREADS=8 \
        "build-$san/tests/fault_matrix_test"
    # The security matrix's attack agents on the same wide pool.
    TSAN_OPTIONS="halt_on_error=1" WEARLOCK_THREADS=8 \
        "build-$san/tests/security_matrix_test"
    # The channel matrix: impaired scenes (neighbor mixing, bursts,
    # MAC sensing) fanned across the wide pool - the shared-scene
    # mixer's cross-thread determinism leg.
    TSAN_OPTIONS="halt_on_error=1" WEARLOCK_THREADS=8 \
        "build-$san/tests/channel_matrix_test"
    # The fleet multiplexer: shards fanned across 8 real workers, each
    # draining its own event queue of interleaved sessions.
    TSAN_OPTIONS="halt_on_error=1" WEARLOCK_THREADS=8 \
        WEARLOCK_FIXED_HOST_MS=1.25 \
        "build-$san/tests/fleet_determinism_test"
    TSAN_OPTIONS="halt_on_error=1" WEARLOCK_THREADS=8 \
        "build-$san/bench/fig7_ber_distance" --quick >/dev/null
  fi
done

banner "all green"
