#!/usr/bin/env bash
# Local CI: the checks a PR must pass.
#   1. wearlock-lint (layer DAG, determinism, banned APIs, header
#      hygiene, shared state) - the repo's self-hosted static analysis
#   2. plain build (warnings-as-errors) + full ctest, which includes
#      the lint_test suite, the wearlock_lint_src tree gate and the
#      header self-containment TUs
#   3. one build+test leg per sanitizer: ASan, UBSan, TSan (the TSan
#      leg gets real cross-thread traffic from concurrency_stress_test)
#
# Usage: tools/ci.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
SKIP_SAN=0
[[ "${1:-}" == "--skip-sanitizers" ]] && SKIP_SAN=1

# The single source of truth for sanitizer coverage; --skip-sanitizers
# skips exactly this list and nothing else.
SANITIZERS=(address undefined thread)

banner() { printf '\n==== %s ====\n' "$1"; }

banner "gate: wearlock-lint src/"
cmake -B build -S . -DWEARLOCK_WERROR=ON >/dev/null
cmake --build build -j "$JOBS" --target wearlock-lint >/dev/null
build/tools/lint/wearlock-lint src/

banner "plain build + full test suite"
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

if [[ "$SKIP_SAN" == "1" ]]; then
  echo "skipping sanitizer builds (--skip-sanitizers): ${SANITIZERS[*]}"
  exit 0
fi

for san in "${SANITIZERS[@]}"; do
  banner "sanitizer: $san"
  cmake -B "build-$san" -S . -DWEARLOCK_SANITIZE="$san" \
        -DWEARLOCK_WERROR=ON >/dev/null
  cmake --build "build-$san" -j "$JOBS"
  # Tier-1 (the full suite, per ROADMAP) including the obs suites.
  TSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir "build-$san" --output-on-failure
done

banner "all green"
