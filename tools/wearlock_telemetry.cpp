// Query CLI for the fleet telemetry pipeline: merge session-record
// JSONL and rollup JSON files, print cohort tables, extract stage
// percentiles, and diff two rollups with a regression threshold for CI
// (docs/observability.md, "Fleet telemetry").
//
// Usage:
//   wearlock_telemetry [--records r.jsonl]... [--rollup r.json]...
//                      [--out merged.json] [--cohorts]
//                      [--percentiles stage=<name>]
//   wearlock_telemetry --diff a.json b.json [--threshold 0.02]
//
// --records ingests SessionRecord JSONL (wearlock_unlock_cli
// --session-log output); --rollup merges an existing rollup document.
// Both repeat and mix freely - aggregation is exact and
// order-insensitive, so any merge order writes identical bytes.
// --out writes the merged rollup ("-" for stdout); --cohorts prints a
// per-cohort summary table; --percentiles prints p50/p90/p99 of one
// stage sketch per cohort.
//
// --diff compares rollup B (candidate) against A (baseline): flags a
// cohort when its unlock rate drops, or its false-accept rate rises,
// by more than --threshold (absolute rate), or its p99 total latency
// grows by more than the same threshold as a fraction. Exit 0 = no
// regression, 1 = regression found, 2 = usage or I/O error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/rollup.h"

namespace {

using wearlock::obs::JsonParse;
using wearlock::obs::JsonValue;
using wearlock::obs::TelemetrySink;
using wearlock::obs::WilsonInterval;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  wearlock_telemetry [--records r.jsonl]... [--rollup "
               "r.json]...\n"
               "                     [--out merged.json] [--cohorts]\n"
               "                     [--percentiles stage=<name>]\n"
               "  wearlock_telemetry --diff a.json b.json "
               "[--threshold 0.02]\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return true;
}

bool LoadRollup(const std::string& path, TelemetrySink* sink) {
  std::string text;
  if (!ReadFile(path, &text)) return false;
  std::string error;
  const auto parsed = JsonParse(text, &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  if (!sink->MergeJson(*parsed, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

void PrintInterval(const char* label, const WilsonInterval& w,
                   std::uint64_t trials) {
  if (trials == 0) {
    std::printf("  %-18s n/a (no sessions)\n", label);
    return;
  }
  std::printf("  %-18s %.4f  [%.4f, %.4f]  (n=%llu)\n", label, w.rate, w.low,
              w.high, static_cast<unsigned long long>(trials));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> record_paths;
  std::vector<std::string> rollup_paths;
  std::string out_path;
  std::string percentile_stage;
  std::string diff_a;
  std::string diff_b;
  double threshold = 0.02;
  bool print_cohorts = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--records") {
      record_paths.emplace_back(next());
    } else if (arg == "--rollup") {
      rollup_paths.emplace_back(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--cohorts") {
      print_cohorts = true;
    } else if (arg == "--percentiles") {
      const std::string spec = next();
      if (spec.rfind("stage=", 0) != 0 || spec.size() <= 6) {
        std::fprintf(stderr, "--percentiles wants stage=<name>\n");
        return 2;
      }
      percentile_stage = spec.substr(6);
    } else if (arg == "--diff") {
      diff_a = next();
      diff_b = next();
      if (diff_a.empty() || diff_b.empty()) return Usage();
    } else if (arg == "--threshold") {
      threshold = std::atof(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }

  if (!diff_a.empty()) {
    TelemetrySink a, b;
    if (!LoadRollup(diff_a, &a) || !LoadRollup(diff_b, &b)) return 2;
    int regressions = 0;
    std::set<std::string> keys;
    for (const auto& [key, cohort] : a.cohorts()) keys.insert(key);
    for (const auto& [key, cohort] : b.cohorts()) keys.insert(key);
    for (const std::string& key : keys) {
      const auto ia = a.cohorts().find(key);
      const auto ib = b.cohorts().find(key);
      if (ib == b.cohorts().end()) {
        std::printf("REGRESSION %s: cohort missing from %s\n", key.c_str(),
                    diff_b.c_str());
        ++regressions;
        continue;
      }
      if (ia == a.cohorts().end()) {
        std::printf("note %s: new cohort (absent from baseline)\n",
                    key.c_str());
        continue;
      }
      const double unlock_a = ia->second.UnlockRate().rate;
      const double unlock_b = ib->second.UnlockRate().rate;
      if (unlock_b < unlock_a - threshold) {
        std::printf("REGRESSION %s: unlock rate %.4f -> %.4f\n", key.c_str(),
                    unlock_a, unlock_b);
        ++regressions;
      }
      const double fa_a = ia->second.FalseAcceptRate().rate;
      const double fa_b = ib->second.FalseAcceptRate().rate;
      if (fa_b > fa_a + threshold) {
        std::printf("REGRESSION %s: false-accept rate %.4f -> %.4f\n",
                    key.c_str(), fa_a, fa_b);
        ++regressions;
      }
      const auto sa = ia->second.stages.find("total");
      const auto sb = ib->second.stages.find("total");
      if (sa != ia->second.stages.end() && sb != ib->second.stages.end()) {
        const double p99_a = sa->second.Quantile(0.99);
        const double p99_b = sb->second.Quantile(0.99);
        if (p99_a > 0.0 && p99_b > p99_a * (1.0 + threshold)) {
          std::printf("REGRESSION %s: total p99 %.1f ms -> %.1f ms\n",
                      key.c_str(), p99_a, p99_b);
          ++regressions;
        }
      }
    }
    if (regressions == 0) {
      std::printf("no regressions across %zu cohorts (threshold %.3f)\n",
                  keys.size(), threshold);
      return 0;
    }
    std::printf("%d regression(s)\n", regressions);
    return 1;
  }

  if (record_paths.empty() && rollup_paths.empty()) return Usage();

  TelemetrySink sink;
  for (const std::string& path : record_paths) {
    std::string text;
    if (!ReadFile(path, &text)) return 2;
    std::string error;
    const std::size_t n = sink.IngestJsonl(text, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
      return 2;
    }
    std::fprintf(stderr, "%s: ingested %zu records\n", path.c_str(), n);
  }
  for (const std::string& path : rollup_paths) {
    if (!LoadRollup(path, &sink)) return 2;
  }

  if (print_cohorts) {
    for (const auto& [key, cohort] : sink.cohorts()) {
      std::printf("%s\n", key.c_str());
      std::printf("  sessions %llu (genuine %llu, impostor %llu)\n",
                  static_cast<unsigned long long>(cohort.sessions),
                  static_cast<unsigned long long>(cohort.genuine),
                  static_cast<unsigned long long>(cohort.impostor));
      PrintInterval("unlock rate", cohort.UnlockRate(), cohort.genuine);
      PrintInterval("false accepts", cohort.FalseAcceptRate(),
                    cohort.impostor);
      for (const auto& [name, count] : cohort.outcomes) {
        std::printf("  outcome %-24s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
      }
    }
  }

  if (!percentile_stage.empty()) {
    std::printf("stage %s (p50 / p90 / p99):\n", percentile_stage.c_str());
    for (const auto& [key, cohort] : sink.cohorts()) {
      const auto it = cohort.stages.find(percentile_stage);
      if (it == cohort.stages.end()) {
        std::printf("  %-60s (no such stage)\n", key.c_str());
        continue;
      }
      std::printf("  %-60s %9.2f %9.2f %9.2f\n", key.c_str(),
                  it->second.Quantile(0.50), it->second.Quantile(0.90),
                  it->second.Quantile(0.99));
    }
  }

  if (!out_path.empty()) {
    if (out_path == "-") {
      sink.WriteJson(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream os(out_path);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 2;
      }
      sink.WriteJson(os);
      os << "\n";
      std::fprintf(stderr, "wrote rollup to %s\n", out_path.c_str());
    }
  }
  return 0;
}
