// Fleet campaign CLI: sweep a population of unlock sessions over the
// cohort axes (config x environment x distance x faults x attacks) on
// the event-driven multiplexer and write the cohort rollup JSON
// (docs/architecture.md, "Fleet campaigns").
//
// Usage:
//   wearlock_fleet [--sessions N] [--seed S] [--threads T] [--retries R]
//                  [--configs 1,2,3] [--envs quiet,office]
//                  [--distances 0.3,0.6] [--impostor-every N]
//                  [--faults SPEC|SPEC...] [--attacks SPEC|SPEC...]
//                  [--impairments SPEC|SPEC...] [--pairs N]
//                  [--shard-size N] [--out rollup.json] [--summary]
//
// Every session's scenario and seed derive from the global session
// index before sharding, so the rollup bytes are identical at any
// --threads and --shard-size - the property tools/ci.sh pins with a
// byte-diff against tests/golden/fleet_rollup.json. --faults/--attacks/
// --impairments take '|'-separated spec lists (specs contain commas);
// an empty element means "none", and cells cross-product over every
// element. --impairments elements are validated up front (exit 2 on a
// malformed or out-of-range spec); --pairs N adds N contending WearLock
// pairs to every impaired cell (docs/channels.md).
//
// --out writes the rollup document ("-" or unset = stdout). --summary
// prints per-cohort unlock/false-accept Wilson CIs and campaign
// throughput (sessions/sec, wall-clock) to stderr; timing lives on
// stderr so stdout stays byte-stable for CI diffs.
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "audio/impairments.h"
#include "protocol/fleet.h"
#include "sim/executor.h"

namespace {
using namespace wearlock;
using protocol::CampaignResult;
using protocol::CampaignSpec;

int Usage() {
  std::fprintf(
      stderr,
      "usage: wearlock_fleet [--sessions N] [--seed S] [--threads T]\n"
      "                      [--retries R] [--configs 1,2,3]\n"
      "                      [--envs quiet,office] [--distances 0.3,0.6]\n"
      "                      [--impostor-every N] [--faults SPEC|SPEC...]\n"
      "                      [--attacks SPEC|SPEC...]\n"
      "                      [--impairments SPEC|SPEC...] [--pairs N]\n"
      "                      [--shard-size N] [--out rollup.json]\n"
      "                      [--summary]\n");
  return 2;
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  const auto result = std::from_chars(s.data(), s.data() + s.size(), *out);
  return result.ec == std::errc() && result.ptr == s.data() + s.size();
}

bool ParseDouble(const std::string& s, double* out) {
  const auto result = std::from_chars(s.data(), s.data() + s.size(), *out);
  return result.ec == std::errc() && result.ptr == s.data() + s.size();
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, sep)) out.push_back(item);
  if (out.empty()) out.push_back("");
  return out;
}

bool ParseEnvName(const std::string& s, audio::Environment* out) {
  if (s == "quiet") { *out = audio::Environment::kQuietRoom; return true; }
  if (s == "office") { *out = audio::Environment::kOffice; return true; }
  if (s == "classroom") { *out = audio::Environment::kClassroom; return true; }
  if (s == "cafe") { *out = audio::Environment::kCafe; return true; }
  if (s == "grocery") {
    *out = audio::Environment::kGroceryStore;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignSpec spec;
  spec.sessions = 100000;
  std::size_t threads = 0;
  std::string out_path;
  bool summary = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    std::uint64_t u = 0;
    if (arg == "--sessions") {
      if (!ParseU64(next(), &u)) return Usage();
      spec.sessions = static_cast<std::size_t>(u);
    } else if (arg == "--seed") {
      if (!ParseU64(next(), &spec.seed)) return Usage();
    } else if (arg == "--threads") {
      if (!ParseU64(next(), &u)) return Usage();
      threads = static_cast<std::size_t>(u);
    } else if (arg == "--retries") {
      if (!ParseU64(next(), &u)) return Usage();
      spec.max_retries = static_cast<int>(u);
    } else if (arg == "--impostor-every") {
      if (!ParseU64(next(), &u)) return Usage();
      spec.impostor_every = static_cast<std::size_t>(u);
    } else if (arg == "--shard-size") {
      if (!ParseU64(next(), &u) || u == 0) return Usage();
      spec.sessions_per_shard = static_cast<std::size_t>(u);
    } else if (arg == "--configs") {
      spec.configs.clear();
      for (const std::string& item : Split(next(), ',')) {
        if (!ParseU64(item, &u) || u < 1 || u > 3) return Usage();
        spec.configs.push_back(static_cast<int>(u));
      }
    } else if (arg == "--envs") {
      spec.environments.clear();
      for (const std::string& item : Split(next(), ',')) {
        audio::Environment env = audio::Environment::kQuietRoom;
        if (!ParseEnvName(item, &env)) return Usage();
        spec.environments.push_back(env);
      }
    } else if (arg == "--distances") {
      spec.distances_m.clear();
      for (const std::string& item : Split(next(), ',')) {
        double d = 0.0;
        if (!ParseDouble(item, &d) || d <= 0.0) return Usage();
        spec.distances_m.push_back(d);
      }
    } else if (arg == "--faults") {
      spec.fault_specs = Split(next(), '|');
    } else if (arg == "--attacks") {
      spec.attack_specs = Split(next(), '|');
    } else if (arg == "--impairments") {
      spec.impairment_specs = Split(next(), '|');
      // Validate eagerly: a malformed spec should be a usage error at
      // the shell, not an exception mid-campaign on a worker thread.
      for (const std::string& item : spec.impairment_specs) {
        if (item.empty()) continue;
        try {
          const audio::ImpairmentPlan parsed =
              audio::ImpairmentPlan::Parse(item);
          (void)parsed;
        } catch (const std::invalid_argument& e) {
          std::fprintf(stderr, "bad --impairments element \"%s\": %s\n",
                       item.c_str(), e.what());
          return Usage();
        }
      }
    } else if (arg == "--pairs") {
      if (!ParseU64(next(), &u) || u > 64) return Usage();
      spec.contention_pairs = static_cast<int>(u);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--summary") {
      summary = true;
    } else {
      return Usage();
    }
  }
  if (spec.sessions == 0 || spec.configs.empty() ||
      spec.environments.empty() || spec.distances_m.empty() ||
      spec.fault_specs.empty() || spec.attack_specs.empty() ||
      spec.impairment_specs.empty()) {
    return Usage();
  }

  // Wall clock for the stderr throughput line only; stays available
  // with telemetry compiled out (-DWEARLOCK_OBS=OFF), unlike
  // obs::HostTimer.
  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(determinism)
  const CampaignResult result = protocol::RunCampaign(spec, threads);
  const auto t1 = std::chrono::steady_clock::now();  // NOLINT(determinism)
  const double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::ostringstream rollup;
  result.sink.WriteJson(rollup);
  if (out_path.empty() || out_path == "-") {
    std::cout << rollup.str();
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << rollup.str();
  }

  if (summary) {
    std::fprintf(stderr,
                 "fleet: %zu sessions, %zu shards, %zu queue events\n",
                 result.sessions, result.shards, result.queue_events);
    std::fprintf(stderr, "fleet: %.0f ms wall, %.0f sessions/sec\n", wall_ms,
                 wall_ms > 0.0 ? 1000.0 * static_cast<double>(result.sessions) /
                                     wall_ms
                               : 0.0);
    for (const auto& [key, cohort] : result.sink.cohorts()) {
      const obs::WilsonInterval unlock = cohort.UnlockRate();
      const obs::WilsonInterval fa = cohort.FalseAcceptRate();
      std::fprintf(stderr,
                   "  %s: n=%llu unlock %.3f [%.3f, %.3f]"
                   " fa %.3f [%.3f, %.3f]\n",
                   key.c_str(),
                   static_cast<unsigned long long>(cohort.sessions),
                   unlock.rate, unlock.low, unlock.high, fa.rate, fa.low,
                   fa.high);
    }
  }
  return 0;
}
