// The wearlock-lint rule set. Every rule is a pure function from
// lexed source to diagnostics; the driver (lint.h) owns file
// collection, NOLINT suppression and output formatting.
//
// Rule ids are stable identifiers: they appear in diagnostics
// ("file:line: rule-id: message"), in NOLINT(rule-id) suppressions and
// in docs/static-analysis.md. Add new rules to AllRules() and to the
// dispatch in RunLint().
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "source.h"

namespace wearlock::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Stable catalogue, in severity-ish order (shown by --list-rules).
const std::vector<RuleInfo>& AllRules();

// -- Per-file rules ---------------------------------------------------

/// determinism: wall-clock and ambient randomness are banned in library
/// code; simulated time comes from sim::VirtualClock and randomness
/// from sim::Rng so every figure regenerates bit-identically.
void CheckDeterminism(const SourceFile& file, std::vector<Diagnostic>* out);

/// banned-api: stdio writes outside src/obs/log.cpp (library code logs
/// through obs::Log), unbounded C string APIs (sprintf/strcpy/strcat/
/// gets/atoi) and raw new/delete (use std::make_unique / containers).
void CheckBannedApi(const SourceFile& file, std::vector<Diagnostic>* out);

/// header-hygiene: every header opens with #pragma once or an
/// #ifndef/#define guard before any other preprocessor directive.
/// (Self-containment is enforced by the generated one-include TUs the
/// lint_header_selfcontained CMake target compiles; see --gen-header-tus.)
void CheckHeaderHygiene(const SourceFile& file, std::vector<Diagnostic>* out);

/// shared-state: mutable namespace-scope or static-storage state must
/// be const, atomic, a synchronization primitive, thread_local, or
/// carry a "// lint: guarded-by(<mutex>)" annotation naming an
/// identifier declared elsewhere in the same file.
void CheckSharedState(const SourceFile& file, std::vector<Diagnostic>* out);

/// hot-path-alloc: a function annotated "// lint: hot-path" must not
/// allocate - no std::vector<...>(...) construction, no push_back, no
/// resize, no raw new anywhere in its body (scratch comes from
/// dsp::Workspace slots and cached dsp::FftPlan tables instead).
/// Suppress an intentional cold branch with NOLINT(hot-path-alloc).
void CheckHotPathAlloc(const SourceFile& file, std::vector<Diagnostic>* out);

// -- Flow-aware (use-site) rules --------------------------------------
// These run on the token stream + scope walker in analysis.h rather
// than on raw line matches: they know which function a token is in and
// which mutexes the enclosing scopes hold.

/// guarded-by: every use of a global annotated
/// "// lint: guarded-by(<mutex>)" must occur inside a scope that holds
/// <mutex> via a lock_guard/scoped_lock/unique_lock/shared_lock. The
/// shared-state rule demands the annotation exist; this rule makes it
/// mean something at every access site.
void CheckGuardedBy(const SourceFile& file, std::vector<Diagnostic>* out);

/// modeled-time: file-local assignment-chain taint from host-timing
/// sources (TimeHostMs/TimeHostMedianMs/HostTimer::ElapsedMs/
/// ElapsedHostMs). Tainted values may not reach the modeled-time
/// surfaces that must stay bit-identical across thread counts:
/// `proto_ms`-style accumulators (any variable named proto_ms or
/// annotated "// lint: modeled-time"), functions that write such an
/// accumulator (e.g. the `charge` lambda), comparisons against
/// *budget*/*deadline* identifiers, obs::SessionRecord field writes,
/// and WL_* metrics whose name contains "modeled".
void CheckModeledTime(const SourceFile& file, std::vector<Diagnostic>* out);

/// slot-ownership: "CSlot::kX" / "RSlot::kY" may be referenced only
/// from the slot's documented owner function(s), per the checked-in
/// manifest (tools/lint/slot_owners.txt). An owner of "*" allows any
/// context; a slot missing from the manifest is itself a finding.
using SlotManifest = std::map<std::string, std::set<std::string>>;
void CheckSlotOwnership(const SourceFile& file, const SlotManifest& manifest,
                        std::vector<Diagnostic>* out);

/// discarded-outcome: calling an outcome-returning API (WirelessLink
/// TrySend*, FaultPlan::Parse, ...) as a bare expression statement
/// throws the outcome away - the exact bug [[nodiscard]] catches at
/// compile time, enforced here for un-compiled contexts too. A
/// `(void)` cast is an explicit, visible discard and passes.
void CheckDiscardedOutcome(const SourceFile& file,
                           std::vector<Diagnostic>* out);

// -- Project-level rule -----------------------------------------------

/// layer-dag: quoted includes must be rooted at src/ and follow the
/// architecture DAG (obs importable everywhere, importing nothing):
///
///   dsp, crypto, obs -> (nothing)
///   sim              -> obs
///   audio            -> dsp, sim
///   modem, sensors   -> dsp, audio*, sim      (*modem only)
///   protocol         -> everything
///
/// Also rejects include cycles among the scanned files.
void CheckLayerDag(const std::vector<SourceFile>& files,
                   std::vector<Diagnostic>* out);

}  // namespace wearlock::lint
