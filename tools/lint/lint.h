// wearlock-lint driver: file collection, rule dispatch, NOLINT
// suppression and output formatting. The CLI (main.cpp) is a thin
// wrapper so the whole pipeline is unit-testable on in-memory sources.
//
// Suppression contract (docs/static-analysis.md):
//   * `// NOLINT(rule-id)` on the diagnosed line, or
//   * `// NOLINTNEXTLINE(rule-id)` on the line above,
// with one or more comma-separated rule ids. A bare NOLINT without a
// rule id is deliberately NOT honoured: suppressions must say what
// they are suppressing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rules.h"
#include "source.h"

namespace wearlock::lint {

struct LintResult {
  std::vector<Diagnostic> diagnostics;  ///< surviving (unsuppressed)
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;
};

/// Run every rule over `files`, drop NOLINT-suppressed diagnostics and
/// sort the rest by (file, line, rule).
LintResult RunLint(const std::vector<SourceFile>& files);

/// Expand files/directories into a sorted list of *.cpp / *.h paths.
/// Returns false and sets `error` when a path does not exist.
bool CollectPaths(const std::vector<std::string>& inputs,
                  std::vector<std::string>* out, std::string* error);

/// Load every path into a SourceFile. Returns false on the first
/// unreadable file.
bool LoadFiles(const std::vector<std::string>& paths,
               std::vector<SourceFile>* out, std::string* error);

/// "file:line: rule-id: message" lines + a trailing summary line.
void WriteText(const LintResult& result, std::ostream& os);

/// One JSON object:
/// {"files_scanned":N,"suppressed":K,
///  "diagnostics":[{"file":..,"line":..,"rule":..,"message":..},..]}
void WriteJson(const LintResult& result, std::ostream& os);

/// Emit one self-containment TU per header under `src_dir` into
/// `out_dir` (see docs/static-analysis.md). Writes only files whose
/// content changed, so incremental builds stay quiet. Returns false
/// and sets `error` on I/O failure.
bool GenerateHeaderTus(const std::string& src_dir, const std::string& out_dir,
                       std::string* error);

/// The generated TU filename for a header path relative to src/
/// ("audio/medium.h" -> "hdr_audio_medium_h.cpp"). CMake mirrors this
/// mangling when predicting custom-command outputs.
std::string HeaderTuName(const std::string& rel_path);

}  // namespace wearlock::lint
