// wearlock-lint driver: file collection, rule dispatch, NOLINT
// suppression and output formatting. The CLI (main.cpp) is a thin
// wrapper so the whole pipeline is unit-testable on in-memory sources.
//
// Suppression contract (docs/static-analysis.md):
//   * `// NOLINT(rule-id)` on the diagnosed line, or
//   * `// NOLINTNEXTLINE(rule-id)` on the line above,
// with one or more comma-separated rule ids. A bare NOLINT without a
// rule id is deliberately NOT honoured: suppressions must say what
// they are suppressing.
#pragma once

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "rules.h"
#include "source.h"

namespace wearlock::lint {

struct LintOptions {
  /// Worker threads for per-file rules. Output is byte-identical for
  /// any value: diagnostics are fully sorted before emission.
  int threads = 1;
  /// Slot ownership manifest (slot id -> owner functions). When empty
  /// the slot-ownership rule has nothing to enforce and is skipped.
  SlotManifest slot_manifest;
  /// Baseline suppressions: "file:line: rule" keys (repo-relative
  /// paths) absorbed from a committed baseline file. Findings matching
  /// a key are counted, not reported, so the gate can extend to
  /// pre-existing code without a flag-day.
  std::set<std::string> baseline;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  ///< surviving (unsuppressed)
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  ///< dropped by NOLINT markers
  std::size_t baselined = 0;   ///< dropped by the baseline file
  /// Baseline entries that matched nothing this run - candidates for
  /// deletion (the finding was fixed or the line moved).
  std::vector<std::string> stale_baseline;
};

/// Run every rule over `files`, drop NOLINT-suppressed and baselined
/// diagnostics and sort the rest by (file, line, rule, message).
LintResult RunLint(const std::vector<SourceFile>& files,
                   const LintOptions& options = {});

/// The baseline key for a diagnostic: "<repo-relative-file>:<line>: <rule>".
/// Paths are normalised to start at src/, tests/, bench/ or tools/ so
/// the same baseline file works for relative and absolute invocations.
std::string BaselineKey(const Diagnostic& diag);

/// Load "file:line: rule" lines ('#' comments and blanks ignored) into
/// options->baseline. A missing file is an error.
bool LoadBaseline(const std::string& path, std::set<std::string>* out,
                  std::string* error);

/// Load a slot ownership manifest: "CSlot::kName: Owner1, Owner2" lines
/// ('#' comments and blanks ignored; owner "*" allows any context).
bool LoadSlotManifest(const std::string& path, SlotManifest* out,
                      std::string* error);

/// Expand files/directories into a sorted list of *.cpp / *.h paths.
/// Returns false and sets `error` when a path does not exist.
bool CollectPaths(const std::vector<std::string>& inputs,
                  std::vector<std::string>* out, std::string* error);

/// Load every path into a SourceFile. Returns false on the first
/// unreadable file.
bool LoadFiles(const std::vector<std::string>& paths,
               std::vector<SourceFile>* out, std::string* error);

/// "file:line: rule-id: message" lines + a trailing summary line.
void WriteText(const LintResult& result, std::ostream& os);

/// One JSON object:
/// {"files_scanned":N,"suppressed":K,"baselined":B,
///  "diagnostics":[{"file":..,"line":..,"rule":..,"message":..},..]}
void WriteJson(const LintResult& result, std::ostream& os);

/// SARIF 2.1.0 log with one run: tool.driver carries the full rule
/// catalogue, results[] one entry per diagnostic (level "error").
void WriteSarif(const LintResult& result, std::ostream& os);

/// Baseline-file lines for every surviving diagnostic (the
/// --update-baseline payload), sorted, with a generated header comment.
void WriteBaseline(const LintResult& result, std::ostream& os);

/// Emit one self-containment TU per header under `src_dir` into
/// `out_dir` (see docs/static-analysis.md). Writes only files whose
/// content changed, so incremental builds stay quiet. Returns false
/// and sets `error` on I/O failure.
bool GenerateHeaderTus(const std::string& src_dir, const std::string& out_dir,
                       std::string* error);

/// The generated TU filename for a header path relative to src/
/// ("audio/medium.h" -> "hdr_audio_medium_h.cpp"). CMake mirrors this
/// mangling when predicting custom-command outputs.
std::string HeaderTuName(const std::string& rel_path);

}  // namespace wearlock::lint
