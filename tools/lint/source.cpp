#include "source.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace wearlock::lint {
namespace {

/// True when `text` positions [0, at) end in a #include directive
/// prefix, i.e. the quote that is about to open at `at` is an include
/// path, not an ordinary string literal.
bool PrecededByIncludeDirective(const std::string& text, std::size_t at) {
  // Walk back to the start of the line, then match: ws '#' ws "include" ws.
  std::size_t begin = text.rfind('\n', at == 0 ? 0 : at - 1);
  begin = (begin == std::string::npos) ? 0 : begin + 1;
  std::string_view line(text.data() + begin, at - begin);
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '#') return false;
  ++i;
  skip_ws();
  constexpr std::string_view kInclude = "include";
  if (line.substr(i, kInclude.size()) != kInclude) return false;
  i += kInclude.size();
  skip_ws();
  return i == line.size();
}

}  // namespace

SourceFile SourceFile::FromString(std::string path, std::string content) {
  SourceFile f;
  f.path_ = std::move(path);
  f.content_ = std::move(content);
  f.Lex();
  return f;
}

bool SourceFile::Load(const std::string& path, SourceFile* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = FromString(path, buf.str());
  return true;
}

void SourceFile::Lex() {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };

  const std::string& in = content_;
  code_ = in;  // start from a copy; blank as we classify
  line_offsets_.push_back(0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '\n') line_offsets_.push_back(i + 1);
  }
  line_count_ = static_cast<int>(line_offsets_.size());
  if (!in.empty() && in.back() == '\n') --line_count_;
  comment_by_line_.assign(static_cast<std::size_t>(line_count_) + 1, "");

  State state = State::kCode;
  int line = 1;
  std::string raw_delim;        // the )delim" closer for raw strings
  std::string pending_literal;  // body of the string being lexed
  int literal_line = 0;
  bool literal_angled = false;

  auto comment_append = [&](char c) {
    if (line <= line_count_ && c != '\n') {
      comment_by_line_[static_cast<std::size_t>(line) - 1].push_back(c);
    }
  };
  auto finish_string = [&](std::size_t quote_pos) {
    // If the literal we just closed was an #include path, record it.
    if (literal_angled || PrecededByIncludeDirective(
                              in, quote_pos - pending_literal.size() - 1)) {
      includes_.push_back(
          {pending_literal, literal_line, literal_angled});
    }
    pending_literal.clear();
  };

  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = (i + 1 < in.size()) ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_[i] = code_[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_[i] = code_[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // R"delim( raw string?
          if (i >= 1 && in[i - 1] == 'R' &&
              (i < 2 || (!std::isalnum(static_cast<unsigned char>(in[i - 2])) &&
                         in[i - 2] != '_'))) {
            std::size_t paren = in.find('(', i + 1);
            if (paren != std::string::npos) {
              // Built piecewise: the `")" + substr + "\""` concatenation
              // chain trips GCC 12's -Wrestrict false positive at -O2.
              raw_delim.assign(1, ')');
              raw_delim.append(in, i + 1, paren - i - 1);
              raw_delim.push_back('"');
              state = State::kRawString;
              for (std::size_t j = i + 1; j <= paren && j < in.size(); ++j) {
                if (in[j] != '\n') code_[j] = ' ';
              }
              i = paren;
              break;
            }
          }
          state = State::kString;
          literal_line = line;
          literal_angled = false;
        } else if (c == '\'') {
          state = State::kChar;
        } else if (c == '<' && PrecededByIncludeDirective(in, i)) {
          // Angle include: consume to '>' on this line.
          std::size_t close = i + 1;
          while (close < in.size() && in[close] != '>' && in[close] != '\n') {
            ++close;
          }
          if (close < in.size() && in[close] == '>') {
            includes_.push_back({in.substr(i + 1, close - i - 1), line, true});
            i = close;
          }
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          comment_append(c);
          code_[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_[i] = code_[i + 1] = ' ';
          ++i;
        } else {
          comment_append(c);
          if (c != '\n') code_[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          pending_literal.push_back(c);
          pending_literal.push_back(next);
          code_[i] = ' ';
          if (next != '\n') code_[i + 1] = ' ';
          ++i;
          if (next == '\n') ++line;
        } else if (c == '"') {
          state = State::kCode;
          finish_string(i);
        } else if (c == '\n') {
          // Unterminated at EOL (ill-formed source); recover.
          state = State::kCode;
          pending_literal.clear();
        } else {
          pending_literal.push_back(c);
          code_[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          code_[i] = ' ';
          if (next != '\n') code_[i + 1] = ' ';
          ++i;
        } else if (c == '\'' || c == '\n') {
          state = State::kCode;
        } else {
          code_[i] = ' ';
        }
        break;
      case State::kRawString:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = i; j < i + raw_delim.size(); ++j) {
            code_[j] = ' ';
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          code_[i] = ' ';
        }
        break;
    }
    if (in[i] == '\n') ++line;
  }
}

int SourceFile::LineAt(std::size_t offset) const {
  auto it = std::upper_bound(line_offsets_.begin(), line_offsets_.end(),
                             offset);
  return static_cast<int>(it - line_offsets_.begin());
}

std::string_view SourceFile::CodeLine(int line) const {
  if (line < 1 || line > line_count_) return {};
  const std::size_t begin = line_offsets_[static_cast<std::size_t>(line) - 1];
  std::size_t end = (static_cast<std::size_t>(line) < line_offsets_.size())
                        ? line_offsets_[static_cast<std::size_t>(line)] - 1
                        : code_.size();
  return std::string_view(code_).substr(begin, end - begin);
}

const std::string& SourceFile::CommentOn(int line) const {
  static const std::string kEmpty;
  if (line < 1 || line > line_count_) return kEmpty;
  return comment_by_line_[static_cast<std::size_t>(line) - 1];
}

bool SourceFile::IsHeader() const {
  return path_.size() >= 2 && path_.compare(path_.size() - 2, 2, ".h") == 0;
}

std::string SourceFile::SrcRelativePath() const {
  const std::string needle = "src/";
  std::size_t pos = path_.rfind(needle);
  if (pos == std::string::npos ||
      (pos != 0 && path_[pos - 1] != '/')) {
    return path_;
  }
  return path_.substr(pos + needle.size());
}

std::string SourceFile::Layer() const {
  const std::string rel = SrcRelativePath();
  const std::size_t slash = rel.find('/');
  if (slash == std::string::npos) return "";
  return rel.substr(0, slash);
}

}  // namespace wearlock::lint
