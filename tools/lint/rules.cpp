#include "rules.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>

#include "analysis.h"

namespace wearlock::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Offsets of every whole-word occurrence of `word` in `text`. A match
/// is rejected when the neighbouring characters are identifier
/// characters ("time_point" does not contain the word "time").
std::vector<std::size_t> FindWord(const std::string& text,
                                  const std::string& word) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// First non-whitespace character at or after `pos` ('\0' at EOF).
char NextSignificant(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos < text.size() ? text[pos] : '\0';
}

/// Last non-whitespace character strictly before `pos` ('\0' at BOF).
char PrevSignificant(const std::string& text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) {
      return text[pos];
    }
  }
  return '\0';
}

void Emit(const SourceFile& file, std::size_t offset, const char* rule,
          std::string message, std::vector<Diagnostic>* out) {
  out->push_back({file.path(), file.LineAt(offset), rule, std::move(message)});
}

bool ContainsWord(const std::string& text, const std::string& word) {
  return !FindWord(text, word).empty();
}

}  // namespace

const std::vector<RuleInfo>& AllRules() {
  static const std::vector<RuleInfo> kRules = {
      {"layer-dag",
       "quoted includes are rooted at src/, follow the architecture DAG "
       "(dsp/crypto/obs<-sim<-audio<-modem; sensors; protocol on top) and "
       "form no cycles"},
      {"determinism",
       "no wall-clock or ambient randomness in library code: "
       "system_clock/steady_clock/rand/srand/time()/random_device are "
       "banned; use sim::VirtualClock and sim::Rng"},
      {"banned-api",
       "no stdio writes outside src/obs/log.cpp, no "
       "sprintf/strcpy/strcat/gets/atoi, no raw new/delete"},
      {"header-hygiene",
       "headers open with #pragma once (or an include guard) and must be "
       "self-contained (enforced via generated one-include TUs)"},
      {"shared-state",
       "mutable namespace-scope/static state must be const, atomic, a sync "
       "primitive, thread_local, or annotated // lint: guarded-by(<mutex>)"},
      {"hot-path-alloc",
       "functions annotated // lint: hot-path may not allocate: no "
       "std::vector construction, push_back, resize or new in the body "
       "(use dsp::Workspace scratch; NOLINT(hot-path-alloc) for cold "
       "branches)"},
      {"guarded-by",
       "every access to a // lint: guarded-by(<mutex>) global must sit in "
       "a scope holding <mutex> via lock_guard/scoped_lock/unique_lock"},
      {"modeled-time",
       "host-timing values (TimeHostMs/HostTimer) must not flow into "
       "modeled-time surfaces: proto_ms accumulators, budget/deadline "
       "comparisons, SessionRecord fields, metrics tagged 'modeled' "
       "(file-local assignment-chain taint)"},
      {"slot-ownership",
       "dsp::Workspace slot ids (CSlot::k*/RSlot::k*) may be referenced "
       "only from the owner function recorded in the slot manifest "
       "(tools/lint/slot_owners.txt)"},
      {"discarded-outcome",
       "outcome-returning APIs (TrySend*, FaultPlan::Parse, ...) must "
       "have their return value consumed; use (void) for an explicit, "
       "visible discard"},
  };
  return kRules;
}

// -- determinism ------------------------------------------------------

void CheckDeterminism(const SourceFile& file, std::vector<Diagnostic>* out) {
  struct Pattern {
    const char* token;
    bool call_only;  ///< only flag when followed by '('
    const char* hint;
  };
  static const Pattern kPatterns[] = {
      {"system_clock", false, "use sim::VirtualClock for modeled time"},
      {"steady_clock", false,
       "use sim::VirtualClock (or annotate an intentional host-latency "
       "probe)"},
      {"high_resolution_clock", false, "use sim::VirtualClock"},
      {"random_device", false, "seed sim::Rng explicitly instead"},
      {"rand", true, "use sim::Rng"},
      {"srand", true, "use sim::Rng with an explicit seed"},
      {"time", true, "use sim::VirtualClock"},
  };
  const std::string& code = file.code();
  for (const Pattern& p : kPatterns) {
    for (std::size_t pos : FindWord(code, p.token)) {
      if (p.call_only && NextSignificant(code, pos + std::string(p.token)
                                                         .size()) != '(') {
        continue;
      }
      Emit(file, pos, "determinism",
           std::string("'") + p.token + "' is nondeterministic; " + p.hint,
           out);
    }
  }
}

// -- banned-api -------------------------------------------------------

namespace {

/// True when the file lives under a src/ component (library code, as
/// opposed to tests/, bench/ and tools/ whose CLIs print by contract).
bool IsLibraryFile(const SourceFile& file) {
  const std::string& p = file.path();
  return p.rfind("src/", 0) == 0 || p.find("/src/") != std::string::npos;
}

}  // namespace

void CheckBannedApi(const SourceFile& file, std::vector<Diagnostic>* out) {
  const std::string& code = file.code();
  const bool is_log_sink = file.SrcRelativePath() == "obs/log.cpp";
  // Outside library code, stdout IS the interface (benches emit JSON,
  // CLIs print reports); only the stdio patterns are relaxed there.
  const bool stdio_exempt = is_log_sink || !IsLibraryFile(file);

  struct Pattern {
    const char* token;
    bool call_only;
    bool stdio;  ///< exempt inside the sanctioned log sink
    const char* hint;
  };
  static const Pattern kPatterns[] = {
      {"cout", false, true, "library code logs through obs::Log"},
      {"cerr", false, true, "library code logs through obs::Log"},
      {"printf", true, true, "library code logs through obs::Log"},
      {"fprintf", true, true, "library code logs through obs::Log"},
      {"puts", true, true, "library code logs through obs::Log"},
      {"fputs", true, true, "library code logs through obs::Log"},
      {"putchar", true, true, "library code logs through obs::Log"},
      {"sprintf", true, false, "unbounded; use snprintf"},
      {"strcpy", true, false, "unbounded; use std::string or snprintf"},
      {"strcat", true, false, "unbounded; use std::string"},
      {"gets", true, false, "unbounded; never safe"},
      {"atoi", true, false, "silent on error; use std::from_chars"},
      {"atol", true, false, "silent on error; use std::from_chars"},
      {"atof", true, false, "silent on error; use std::from_chars"},
  };
  for (const Pattern& p : kPatterns) {
    if (p.stdio && stdio_exempt) continue;
    for (std::size_t pos : FindWord(code, p.token)) {
      if (p.call_only &&
          NextSignificant(code, pos + std::string(p.token).size()) != '(') {
        continue;
      }
      Emit(file, pos, "banned-api",
           std::string("'") + p.token + "' is banned in src/: " + p.hint,
           out);
    }
  }

  // Raw new / delete. `= delete` (deleted functions) is not a deletion.
  for (std::size_t pos : FindWord(code, "new")) {
    Emit(file, pos, "banned-api",
         "raw 'new' in src/: use std::make_unique/std::vector (annotate "
         "intentional never-freed singletons)",
         out);
  }
  for (std::size_t pos : FindWord(code, "delete")) {
    if (PrevSignificant(code, pos) == '=') continue;  // = delete;
    Emit(file, pos, "banned-api",
         "raw 'delete' in src/: owning types free memory, not call sites",
         out);
  }
}

// -- header-hygiene ---------------------------------------------------

void CheckHeaderHygiene(const SourceFile& file, std::vector<Diagnostic>* out) {
  if (!file.IsHeader()) return;
  for (int line = 1; line <= file.line_count(); ++line) {
    std::string_view code_line = file.CodeLine(line);
    const std::size_t first =
        code_line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) continue;
    if (code_line[first] != '#') {
      // Real code before any directive: no guard can protect this file.
      out->push_back({file.path(), line, "header-hygiene",
                      "header emits code before any #pragma once / include "
                      "guard"});
      return;
    }
    std::string directive(code_line.substr(first));
    // Normalize "#  pragma   once" -> "#pragma once".
    std::string squashed;
    for (char c : directive) {
      if (c == ' ' || c == '\t') {
        if (!squashed.empty() && squashed.back() != ' ' &&
            squashed.back() != '#') {
          squashed.push_back(' ');
        }
      } else {
        squashed.push_back(c);
      }
    }
    if (squashed.rfind("#pragma once", 0) == 0 ||
        squashed.rfind("#ifndef", 0) == 0 ||
        squashed.rfind("#if !defined", 0) == 0) {
      return;  // guarded
    }
    out->push_back({file.path(), line, "header-hygiene",
                    "first preprocessor directive must be #pragma once or "
                    "an #ifndef include guard"});
    return;
  }
  // Nothing but comments/blank lines: harmless, but still unguarded if
  // anything is ever added; require the pragma.
  out->push_back({file.path(), 1, "header-hygiene",
                  "header has no #pragma once / include guard"});
}

// -- shared-state -----------------------------------------------------

namespace {

/// Scope automaton: walks code() tracking whether declarations land at
/// namespace scope, class scope or block scope, and carves the stream
/// into statements evaluated by FlagIfMutableShared().
class SharedStateScanner {
 public:
  SharedStateScanner(const SourceFile& file, std::vector<Diagnostic>* out)
      : file_(file), out_(out) {}

  void Run() {
    const std::string code = StripPreprocessor(file_.code());
    std::size_t paren_depth = 0;
    std::size_t init_depth = 0;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(') {
        ++paren_depth;
      } else if (c == ')' && paren_depth > 0) {
        --paren_depth;
      }
      // Inside parens (for(;;), argument lists, lambdas passed as
      // arguments) nothing starts or ends a statement or scope.
      if (paren_depth > 0) {
        Accumulate(c, i);
        continue;
      }
      // Inside a brace initializer: consume until its braces balance;
      // the statement then ends at the following ';'.
      if (init_depth > 0) {
        Accumulate(c, i);
        if (c == '{') ++init_depth;
        if (c == '}') --init_depth;
        continue;
      }
      switch (c) {
        case ';':
          EndStatement();
          break;
        case '{': {
          const ScopeKind kind = ClassifyBrace();
          if (kind == ScopeKind::kInitializer) {
            Accumulate(c, i);
            init_depth = 1;
          } else {
            scopes_.push_back(kind);
            statement_.clear();
          }
          break;
        }
        case '}':
          if (!scopes_.empty()) scopes_.pop_back();
          statement_.clear();
          break;
        default:
          Accumulate(c, i);
          break;
      }
    }
  }

  /// Offset of the first top-level '=' (assignment, not ==/<=/>=/!=)
  /// outside parens/brackets/braces, or npos.
  static std::size_t TopLevelAssign(const std::string& s) {
    int depth = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if ((c == ')' || c == ']' || c == '}') && depth > 0) --depth;
      if (c == '=' && depth == 0) {
        if (i + 1 < s.size() && s[i + 1] == '=') {
          ++i;
          continue;
        }
        if (i > 0 && (s[i - 1] == '=' || s[i - 1] == '!' ||
                      s[i - 1] == '<' || s[i - 1] == '>')) {
          continue;
        }
        return i;
      }
    }
    return std::string::npos;
  }

 private:
  enum class ScopeKind { kNamespace, kClass, kBlock, kInitializer };

  /// Blank preprocessor lines (and their \-continuations): they have no
  /// terminating ';' and would otherwise bleed into statements.
  static std::string StripPreprocessor(std::string code) {
    bool in_directive = false;
    std::size_t i = 0;
    while (i < code.size()) {
      const std::size_t start = i;
      std::size_t end = code.find('\n', i);
      if (end == std::string::npos) end = code.size();
      if (!in_directive) {
        const std::size_t first = code.find_first_not_of(" \t", start);
        in_directive =
            first != std::string::npos && first < end && code[first] == '#';
      }
      if (in_directive) {
        const bool continued = end > start && code[end - 1] == '\\';
        for (std::size_t j = start; j < end; ++j) code[j] = ' ';
        in_directive = continued;
      }
      i = end + 1;
    }
    return code;
  }

  void Accumulate(char c, std::size_t offset) {
    if (statement_.empty()) {
      if (std::isspace(static_cast<unsigned char>(c))) return;
      statement_start_ = offset;
    }
    statement_.push_back(c);
    statement_end_ = offset;
  }

  ScopeKind ClassifyBrace() const {
    if (ContainsWord(statement_, "namespace") ||
        ContainsWord(statement_, "extern")) {
      return ScopeKind::kNamespace;
    }
    if (ContainsWord(statement_, "class") ||
        ContainsWord(statement_, "struct") ||
        ContainsWord(statement_, "union") ||
        ContainsWord(statement_, "enum")) {
      return ScopeKind::kClass;
    }
    // Control-flow keywords whose body brace carries no prior ')'.
    if (ContainsWord(statement_, "do") || ContainsWord(statement_, "else") ||
        ContainsWord(statement_, "try")) {
      return ScopeKind::kBlock;
    }
    if (TopLevelAssign(statement_) != std::string::npos) {
      return ScopeKind::kInitializer;  // Type name = {...};
    }
    const char last = statement_.empty()
                          ? '\0'
                          : PrevSignificant(statement_, statement_.size());
    if (last == ')') return ScopeKind::kBlock;  // function body
    if (last != '\0' && (IsIdentChar(last) || last == ']' || last == '>')) {
      return ScopeKind::kInitializer;  // Type name{...};
    }
    return ScopeKind::kBlock;
  }

  bool AtNamespaceScope() const {
    return std::all_of(scopes_.begin(), scopes_.end(), [](ScopeKind k) {
      return k == ScopeKind::kNamespace;
    });
  }
  bool AtClassScope() const {
    return !scopes_.empty() && scopes_.back() == ScopeKind::kClass;
  }

  void EndStatement() {
    std::string stmt;
    statement_.swap(stmt);
    if (stmt.empty()) return;
    const std::size_t start = statement_start_;
    const std::size_t end = statement_end_;

    const bool is_static = ContainsWord(stmt, "static");
    if (!AtNamespaceScope() && !is_static) return;  // locals/members
    if (AtClassScope() && !is_static) return;       // instance members
    EvaluateDeclaration(stmt, start, end);
  }

  void EvaluateDeclaration(const std::string& stmt, std::size_t start,
                           std::size_t end) {
    // Exempt categories. thread_local state is thread-confined; atomics
    // and sync primitives are safe (or are themselves the guard).
    static constexpr const char* kSkipWords[] = {
        "thread_local", "constexpr",     "constinit", "using",
        "typedef",      "static_assert", "friend",    "extern",
        "template",     "operator",      "namespace", "return",
        "if",           "for",           "while",     "switch",
        "case",         "goto",          "throw",     "class",
        "struct",       "union",         "enum",      "asm",
    };
    for (const char* w : kSkipWords) {
      if (ContainsWord(stmt, w)) return;
    }
    static constexpr const char* kSafeTypes[] = {
        "atomic", "mutex",  "shared_mutex", "recursive_mutex",
        "once_flag", "condition_variable",
    };
    for (const char* w : kSafeTypes) {
      if (stmt.find(w) != std::string::npos) return;
    }

    // Declarator = text before the first top-level '=' (or whole stmt).
    const std::size_t eq = TopLevelAssign(stmt);
    std::string decl =
        eq == std::string::npos ? stmt : stmt.substr(0, eq);
    // `T::~T() = default;` / `T(const T&) = delete;` define or remove
    // functions: a ')' declarator with an '=' is never a variable (a
    // parens-declarator variable cannot also carry an '=' initializer).
    if (eq != std::string::npos &&
        PrevSignificant(decl, decl.size()) == ')') {
      return;
    }
    const bool has_init = eq != std::string::npos ||
                          decl.find('{') != std::string::npos;
    if (!has_init) {
      // `Type fn(args);` is a declaration of a function, not state. A
      // ctor-call initializer looks identical; the rule accepts that
      // blind spot (use `=` or brace init for globals).
      if (PrevSignificant(decl, decl.size()) == ')') return;
      // Need at least two identifier-ish tokens (type + name).
      int words = 0;
      bool in_word = false;
      for (char c : decl) {
        if (IsIdentChar(c)) {
          if (!in_word) ++words;
          in_word = true;
        } else {
          in_word = false;
        }
      }
      if (words < 2) return;  // `;` noise, labels, forward decls
    }
    if (decl.find('{') != std::string::npos) {
      decl = decl.substr(0, decl.find('{'));
    }

    // Const check on the variable itself: with pointer declarators the
    // const must bind to the pointer (after the last '*'); otherwise
    // any const qualifier on the type suffices.
    const std::size_t star = decl.rfind('*');
    const std::string tail =
        star == std::string::npos ? decl : decl.substr(star + 1);
    if (ContainsWord(tail, "const")) return;

    const int line_begin = file_.LineAt(start);
    const int line_end = file_.LineAt(end);
    if (HasGuardedByAnnotation(line_begin, line_end)) return;
    out_->push_back(
        {file_.path(), line_begin, "shared-state",
         "mutable shared state: make it const/atomic, use a sync "
         "primitive or thread_local, or annotate "
         "'// lint: guarded-by(<mutex>)'"});
  }

  /// Looks for "lint: guarded-by(name)" on the statement's lines (or
  /// the line above) and verifies `name` is a real identifier declared
  /// on some other line of this file.
  bool HasGuardedByAnnotation(int line_begin, int line_end) {
    for (int line = std::max(1, line_begin - 1); line <= line_end; ++line) {
      const std::string& comment = file_.CommentOn(line);
      const std::size_t tag = comment.find("guarded-by(");
      if (tag == std::string::npos) continue;
      if (comment.rfind("lint:", tag) == std::string::npos) continue;
      std::size_t name_begin = tag + std::string("guarded-by(").size();
      std::size_t name_end = comment.find(')', name_begin);
      if (name_end == std::string::npos) break;
      std::string name = comment.substr(name_begin, name_end - name_begin);
      // Trim.
      while (!name.empty() && std::isspace(static_cast<unsigned char>(
                                  name.front()))) {
        name.erase(name.begin());
      }
      while (!name.empty() &&
             std::isspace(static_cast<unsigned char>(name.back()))) {
        name.pop_back();
      }
      if (name.empty()) break;
      // The guard must exist in code outside the annotated statement.
      for (std::size_t pos : FindWord(file_.code(), name)) {
        const int at = file_.LineAt(pos);
        if (at < line_begin || at > line_end) return true;
      }
      out_->push_back(
          {file_.path(), line, "shared-state",
           "guarded-by(" + name + ") names no identifier in this file"});
      return true;  // annotated (even if badly); the bad-name diag stands
    }
    return false;
  }

  const SourceFile& file_;
  std::vector<Diagnostic>* out_;
  std::vector<ScopeKind> scopes_;
  std::string statement_;
  std::size_t statement_start_ = 0;
  std::size_t statement_end_ = 0;
};

}  // namespace

void CheckSharedState(const SourceFile& file, std::vector<Diagnostic>* out) {
  SharedStateScanner(file, out).Run();
}

// -- hot-path-alloc ---------------------------------------------------

namespace {

/// Byte offset of the first character of 1-based `line` in code().
std::size_t LineStartOffset(const SourceFile& file, int line) {
  const std::string_view view = file.CodeLine(line);
  if (view.data() == nullptr) return file.code().size();
  return static_cast<std::size_t>(view.data() - file.code().data());
}

/// True when `comment` carries a standalone "lint: hot-path" annotation
/// (not the "hot-path-alloc" substring inside a NOLINT suppression).
bool HasHotPathAnnotation(const std::string& comment) {
  std::size_t tag = comment.find("hot-path");
  while (tag != std::string::npos) {
    const std::size_t end = tag + std::string("hot-path").size();
    const bool standalone =
        end >= comment.size() ||
        (!IsIdentChar(comment[end]) && comment[end] != '-');
    if (standalone && comment.rfind("lint:", tag) != std::string::npos) {
      return true;
    }
    tag = comment.find("hot-path", end);
  }
  return false;
}

}  // namespace

void CheckHotPathAlloc(const SourceFile& file, std::vector<Diagnostic>* out) {
  const std::string& code = file.code();
  for (int line = 1; line <= file.line_count(); ++line) {
    if (!HasHotPathAnnotation(file.CommentOn(line))) continue;

    // The annotation marks the next function: take the first '{' at or
    // after the annotated line and brace-match to the end of the body.
    const std::size_t open = code.find('{', LineStartOffset(file, line));
    if (open == std::string::npos) continue;
    std::size_t depth = 0;
    std::size_t close = open;
    for (; close < code.size(); ++close) {
      if (code[close] == '{') ++depth;
      if (code[close] == '}' && --depth == 0) break;
    }
    const std::string body = code.substr(open, close - open);

    static constexpr const char* kGrowers[] = {"push_back", "resize"};
    for (const char* token : kGrowers) {
      for (std::size_t pos : FindWord(body, token)) {
        Emit(file, open + pos, "hot-path-alloc",
             std::string("'") + token +
                 "' in a '// lint: hot-path' function allocates; use a "
                 "dsp::Workspace slot sized outside the loop",
             out);
      }
    }
    for (std::size_t pos : FindWord(body, "new")) {
      Emit(file, open + pos, "hot-path-alloc",
           "'new' in a '// lint: hot-path' function allocates; hot paths "
           "borrow from dsp::Workspace",
           out);
    }
    // A vector *construction*: the word `vector`, balanced <...>, then
    // an argument list. Plain `std::vector<T>&` parameters/aliases pass.
    for (std::size_t pos : FindWord(body, "vector")) {
      std::size_t i = pos + std::string("vector").size();
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      if (i >= body.size() || body[i] != '<') continue;
      int angle = 0;
      for (; i < body.size(); ++i) {
        if (body[i] == '<') ++angle;
        if (body[i] == '>' && --angle == 0) {
          ++i;
          break;
        }
      }
      // Skip an optional declarator name so both the temporary
      // `std::vector<T>(n)` and the declaration `std::vector<T> v(n)`
      // match; `std::vector<T>&` references to workspace slots do not.
      std::size_t j = i;
      while (j < body.size() &&
             std::isspace(static_cast<unsigned char>(body[j]))) {
        ++j;
      }
      while (j < body.size() && IsIdentChar(body[j])) ++j;
      const char next = NextSignificant(body, j);
      if (next == '(' || next == '{') {
        Emit(file, open + pos, "hot-path-alloc",
             "vector constructed in a '// lint: hot-path' function; use a "
             "dsp::Workspace slot",
             out);
      }
    }
  }
}

// -- guarded-by (use-site) --------------------------------------------

namespace {

/// One parsed guarded-by annotation with the global it guards. (This
/// comment deliberately avoids spelling the annotation - the linter
/// lints itself, and the literal marker here would register as one.)
struct GuardedGlobal {
  std::string name;   ///< the annotated variable
  std::string mutex;  ///< last identifier inside the marker's parens
  int decl_line = 0;  ///< accesses on this line are the declaration
};

std::string Trimmed(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.erase(s.begin());
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
  return s;
}

/// The variable declared on `line` (falling back to `line + 1` when the
/// annotation sits on its own comment line): the identifier directly
/// before the declaration's '=', '{', '[' or ';'.
std::string DeclaredNameOn(const SourceFile& file, int line, int* decl_line) {
  for (int candidate = line; candidate <= line + 1; ++candidate) {
    // LexTokens returns views into its argument - keep it alive.
    const std::string line_code(file.CodeLine(candidate));
    const std::vector<Token> toks = LexTokens(line_code);
    std::string last_ident;
    for (const Token& t : toks) {
      if (t.kind == Token::Kind::kIdent) {
        last_ident = std::string(t.text);
        continue;
      }
      if ((t.text == "=" || t.text == "{" || t.text == "[" ||
           t.text == ";") &&
          !last_ident.empty()) {
        *decl_line = candidate;
        return last_ident;
      }
    }
  }
  return "";
}

std::vector<GuardedGlobal> FindGuardedGlobals(const SourceFile& file) {
  std::vector<GuardedGlobal> globals;
  for (int line = 1; line <= file.line_count(); ++line) {
    const std::string& comment = file.CommentOn(line);
    const std::size_t tag = comment.find("guarded-by(");
    if (tag == std::string::npos) continue;
    if (comment.rfind("lint:", tag) == std::string::npos) continue;
    const std::size_t name_begin = tag + std::string("guarded-by(").size();
    const std::size_t name_end = comment.find(')', name_begin);
    if (name_end == std::string::npos) continue;
    const std::string mutex =
        Trimmed(comment.substr(name_begin, name_end - name_begin));
    if (mutex.empty()) continue;
    GuardedGlobal g;
    g.mutex = mutex;
    g.name = DeclaredNameOn(file, line, &g.decl_line);
    if (!g.name.empty()) globals.push_back(std::move(g));
  }
  return globals;
}

}  // namespace

void CheckGuardedBy(const SourceFile& file, std::vector<Diagnostic>* out) {
  const std::vector<GuardedGlobal> globals = FindGuardedGlobals(file);
  if (globals.empty()) return;

  const std::vector<Token> toks = LexTokens(file.code());
  ScopeWalker walker(toks);
  walker.Walk([&](std::size_t i, const ScopeContext& ctx) {
    if (toks[i].kind != Token::Kind::kIdent) return;
    for (const GuardedGlobal& g : globals) {
      if (toks[i].text != g.name) continue;
      const int line = file.LineAt(toks[i].offset);
      if (line == g.decl_line) continue;  // the declaration itself
      // `x.name` / `x->name` / `X::name` is some other entity's member.
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
                    toks[i - 1].text == "::")) {
        continue;
      }
      if (ctx.held_mutexes.count(g.mutex) != 0) continue;
      Emit(file, toks[i].offset, "guarded-by",
           "access to '" + g.name + "' outside a scope holding '" + g.mutex +
               "' (declared guarded-by(" + g.mutex +
               ")); take a lock_guard first",
           out);
    }
  });
}

// -- modeled-time (taint) ---------------------------------------------

namespace {

/// Host-timing call names: assignment from any of these taints the LHS.
bool IsHostTimeSource(std::string_view name) {
  return name == "TimeHostMs" || name == "TimeHostMedianMs" ||
         name == "ElapsedMs" || name == "ElapsedHostMs";
}

bool IsComparisonOp(std::string_view t) {
  return t == "<" || t == ">" || t == "<=" || t == ">=";
}

bool ContainsBudgetName(std::string_view ident) {
  return ident.find("budget") != std::string_view::npos ||
         ident.find("deadline") != std::string_view::npos;
}

/// Base identifier of the assignment target: for `a.b.c +=` that is
/// `a`; for a plain `x =` it is `x`. Returns "" when the LHS is not an
/// identifier chain (e.g. `arr[i] =`).
std::string LhsBaseIdent(const std::vector<Token>& toks, const Statement& s,
                         std::size_t assign) {
  std::size_t i = assign;
  std::string base;
  while (i > s.begin) {
    --i;
    if (toks[i].kind == Token::Kind::kIdent) {
      base = std::string(toks[i].text);
      if (i == s.begin) break;
      const std::string_view prev = toks[i - 1].text;
      if (prev == "." || prev == "->" || prev == "::") {
        --i;  // continue through the chain
        continue;
      }
      break;
    }
    if (toks[i].text == ")" || toks[i].text == "]") {
      const std::size_t open = MatchBackward(toks, i);
      if (open == toks.size() || open <= s.begin) return "";
      i = open;
      continue;
    }
    return "";
  }
  return base;
}

/// Immediate identifier before the assignment op (the declared/assigned
/// variable itself, not the chain base).
std::string LhsDirectIdent(const std::vector<Token>& toks, const Statement& s,
                           std::size_t assign) {
  if (assign == s.begin) return "";
  const Token& t = toks[assign - 1];
  return t.kind == Token::Kind::kIdent ? std::string(t.text) : "";
}

}  // namespace

void CheckModeledTime(const SourceFile& file, std::vector<Diagnostic>* out) {
  const std::string& code = file.code();
  // Cheap pre-filter: files with no host-timing call need no analysis.
  if (code.find("TimeHostM") == std::string::npos &&
      code.find("ElapsedMs") == std::string::npos &&
      code.find("ElapsedHostMs") == std::string::npos) {
    return;
  }
  const std::vector<Token> toks = LexTokens(code);
  const std::vector<Statement> stmts = SplitStatements(toks);

  // Accumulator sinks: every `proto_ms`, plus variables declared on a
  // line annotated "// lint: modeled-time".
  std::set<std::string> accumulators = {"proto_ms"};
  for (int line = 1; line <= file.line_count(); ++line) {
    const std::string& comment = file.CommentOn(line);
    const std::size_t tag = comment.find("modeled-time");
    if (tag == std::string::npos) continue;
    if (comment.rfind("lint:", tag) == std::string::npos) continue;
    int decl_line = 0;
    const std::string name = DeclaredNameOn(file, line, &decl_line);
    if (!name.empty()) accumulators.insert(name);
  }

  // Sink functions: lambdas bound to a name whose body writes an
  // accumulator (`auto charge = [&](Millis ms) { proto_ms += ms; };`).
  // Passing a tainted value to one launders host time into modeled
  // time. Statement splitting cuts at the lambda's top-level '{', so
  // this scan matches `name = [` on the raw token stream and walks the
  // brace-matched body instead.
  std::set<std::string> sink_fns;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i + 1].text != "=" ||
        toks[i + 2].text != "[") {
      continue;
    }
    std::size_t j = MatchForward(toks, i + 2);  // end of capture list
    if (j == toks.size()) continue;
    ++j;
    if (j < toks.size() && toks[j].text == "(") {
      j = MatchForward(toks, j);
      if (j == toks.size()) continue;
      ++j;
    }
    // Skip a trailing-return-type spelling until the body brace.
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j >= toks.size() || toks[j].text != "{") continue;
    const std::size_t close = MatchForward(toks, j);
    if (close == toks.size()) continue;
    for (std::size_t k = j + 1; k + 1 < close; ++k) {
      if (toks[k].kind == Token::Kind::kIdent &&
          accumulators.count(std::string(toks[k].text)) != 0 &&
          (toks[k + 1].text == "+=" || toks[k + 1].text == "=" ||
           toks[k + 1].text == "-=")) {
        sink_fns.insert(std::string(toks[i].text));
        break;
      }
    }
  }

  // Taint fixpoint over assignment chains: LHS becomes tainted when the
  // RHS mentions a host-time source call or an already-tainted name.
  std::set<std::string> tainted;
  auto range_tainted = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      if (i > begin && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        continue;  // member names don't carry taint, their base does
      }
      if (IsHostTimeSource(toks[i].text) && i + 1 < end &&
          toks[i + 1].text == "(") {
        return true;
      }
      if (tainted.count(std::string(toks[i].text)) != 0) return true;
    }
    return false;
  };
  for (bool changed = true; changed;) {
    changed = false;
    for (const Statement& s : stmts) {
      const std::size_t assign = TopLevelAssignToken(toks, s);
      if (assign == s.end) continue;
      const std::string lhs = LhsDirectIdent(toks, s, assign);
      if (lhs.empty() || tainted.count(lhs) != 0) continue;
      if (range_tainted(assign + 1, s.end)) {
        tainted.insert(lhs);
        changed = true;
      }
    }
  }

  // SessionRecord-typed locals: writes to their fields are sinks.
  std::set<std::string> record_vars;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kIdent &&
        toks[i].text == "SessionRecord" &&
        toks[i + 1].kind == Token::Kind::kIdent) {
      record_vars.insert(std::string(toks[i + 1].text));
    }
  }

  auto diagnose = [&](std::size_t offset, const std::string& what) {
    Emit(file, offset, "modeled-time",
         what + "; modeled time must stay a pure function of the seed "
                "(docs/robustness.md), keep host measurements in metrics "
                "and latency reports only",
         out);
  };

  for (const Statement& s : stmts) {
    const std::size_t assign = TopLevelAssignToken(toks, s);
    if (assign != s.end) {
      const std::string direct = LhsDirectIdent(toks, s, assign);
      const std::string base = LhsBaseIdent(toks, s, assign);
      const bool rhs_tainted = range_tainted(assign + 1, s.end);
      if (rhs_tainted && accumulators.count(direct) != 0) {
        diagnose(toks[assign].offset,
                 "host-timed value flows into modeled-time accumulator '" +
                     direct + "'");
        continue;
      }
      if (rhs_tainted && record_vars.count(base) != 0 && base != direct) {
        diagnose(toks[assign].offset,
                 "host-timed value flows into SessionRecord field of '" +
                     base + "'");
        continue;
      }
    }

    // Calls to accumulator-writing functions with a tainted argument.
    for (std::size_t i = s.begin; i + 1 < s.end; ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      if (sink_fns.count(std::string(toks[i].text)) == 0) continue;
      if (toks[i + 1].text != "(") continue;
      const std::size_t close = MatchForward(toks, i + 1);
      if (close == toks.size()) continue;
      if (range_tainted(i + 2, close)) {
        diagnose(toks[i].offset,
                 "host-timed value passed to '" + std::string(toks[i].text) +
                     "', which writes a modeled-time accumulator");
      }
    }

    // Budget comparisons: tainted operand on one side of </>/<=/>= and
    // a *budget*/*deadline* identifier on the other.
    for (std::size_t i = s.begin; i < s.end; ++i) {
      if (!IsComparisonOp(toks[i].text)) continue;
      auto side_has_budget = [&](std::size_t begin, std::size_t end) {
        for (std::size_t j = begin; j < end; ++j) {
          if (toks[j].kind == Token::Kind::kIdent &&
              ContainsBudgetName(toks[j].text)) {
            return true;
          }
        }
        return false;
      };
      const bool left_taint = range_tainted(s.begin, i);
      const bool right_taint = range_tainted(i + 1, s.end);
      if ((left_taint && side_has_budget(i + 1, s.end)) ||
          (right_taint && side_has_budget(s.begin, i))) {
        diagnose(toks[i].offset,
                 "host-timed value compared against a stage budget/deadline");
        break;
      }
    }

    // WL_* metric tagged "modeled" observing a tainted value.
    for (std::size_t i = s.begin; i + 1 < s.end; ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      const std::string_view name = toks[i].text;
      if (name != "WL_HIST" && name != "WL_SERIES" &&
          name != "WL_GAUGE_SET" && name != "WL_COUNT_N") {
        continue;
      }
      if (toks[i + 1].text != "(") continue;
      const std::size_t close = MatchForward(toks, i + 1);
      if (close == toks.size()) continue;
      // First argument is a string literal; its body is blanked in
      // code(), so read it back from content() between the quotes.
      std::size_t q1 = std::string::npos, q2 = std::string::npos;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (toks[j].text == "\"") {
          if (q1 == std::string::npos) {
            q1 = toks[j].offset;
          } else {
            q2 = toks[j].offset;
            break;
          }
        }
      }
      if (q1 == std::string::npos || q2 == std::string::npos) continue;
      const std::string metric =
          file.content().substr(q1 + 1, q2 - q1 - 1);
      if (metric.find("modeled") == std::string::npos) continue;
      if (range_tainted(i + 2, close)) {
        diagnose(toks[i].offset, "host-timed value observed into metric '" +
                                     metric + "' tagged as modeled");
      }
    }
  }
}

// -- slot-ownership ---------------------------------------------------

void CheckSlotOwnership(const SourceFile& file, const SlotManifest& manifest,
                        std::vector<Diagnostic>* out) {
  const std::string& code = file.code();
  if (code.find("Slot::") == std::string::npos) return;

  const std::vector<Token> toks = LexTokens(code);
  ScopeWalker walker(toks);
  walker.Walk([&](std::size_t i, const ScopeContext& ctx) {
    if (toks[i].kind != Token::Kind::kIdent) return;
    if (toks[i].text != "CSlot" && toks[i].text != "RSlot") return;
    if (i + 2 >= toks.size() || toks[i + 1].text != "::" ||
        toks[i + 2].kind != Token::Kind::kIdent) {
      return;
    }
    const std::string slot =
        std::string(toks[i].text) + "::" + std::string(toks[i + 2].text);
    const auto it = manifest.find(slot);
    if (it == manifest.end()) {
      Emit(file, toks[i].offset, "slot-ownership",
           "'" + slot + "' is not in the slot ownership manifest "
           "(tools/lint/slot_owners.txt); every slot needs one documented "
           "owner",
           out);
      return;
    }
    if (it->second.count("*") != 0) return;
    const std::string where =
        ctx.function.empty() ? "(file scope)" : ctx.function;
    if (it->second.count(ctx.function) != 0) return;
    std::string owners;
    for (const std::string& o : it->second) {
      if (!owners.empty()) owners += ", ";
      owners += o;
    }
    Emit(file, toks[i].offset, "slot-ownership",
         "'" + slot + "' referenced from '" + where +
             "' but owned by: " + owners +
             " (one owner per slot keeps scratch from aliasing; see "
             "docs/perf.md)",
         out);
  });
}

// -- discarded-outcome ------------------------------------------------

namespace {

/// APIs whose return value carries the outcome. `qualifier` (when
/// non-empty) must appear as `qualifier::name` at the call site, so
/// generic names like Parse only match their intended owner.
struct OutcomeApi {
  const char* qualifier;
  const char* name;
};
constexpr OutcomeApi kOutcomeApis[] = {
    {"", "TrySendMessageDelay"},
    {"", "TrySendFileDelay"},
    {"", "TrySendRoundTrip"},
    {"FaultPlan", "Parse"},
    {"ImpairmentPlan", "Parse"},
    // Channel-hardening outcome carriers: a dropped carrier-sense
    // report defeats the MAC's busy decision; a dropped drift estimate
    // or compensated recording silently skips the hardening it paid
    // for; a dropped backoff leaves the MAC retrying with no delay.
    {"", "SenseChannel"},
    {"", "EstimateDrift"},
    {"", "CompensateRate"},
    // Matches both backoff ladders (resilience + acoustic MAC); member
    // calls cannot be qualified, and every legitimate call needs the
    // returned delay.
    {"", "BackoffMs"},
    // EventQueue scheduling: a dropped EventId usually means the caller
    // meant to track or cancel the event; a dropped Cancel result hides
    // cancel-after-fire races. Member calls cannot be qualified, but the
    // names are unique to EventQueue across the tree.
    {"", "ScheduleAt"},
    {"", "ScheduleAfter"},
    {"", "Cancel"},
};

}  // namespace

void CheckDiscardedOutcome(const SourceFile& file,
                           std::vector<Diagnostic>* out) {
  const std::vector<Token> toks = LexTokens(file.code());
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const OutcomeApi* api = nullptr;
    for (const OutcomeApi& candidate : kOutcomeApis) {
      if (toks[i].text != candidate.name) continue;
      if (candidate.qualifier[0] != '\0') {
        if (i < 2 || toks[i - 1].text != "::" ||
            toks[i - 2].text != candidate.qualifier) {
          continue;
        }
      }
      api = &candidate;
      break;
    }
    if (api == nullptr) continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;

    // The full expression must be a statement, and the call its tail:
    // walk back across the receiver chain (obj.x->y::z), then require a
    // statement boundary before it and a ';' right after the call.
    std::size_t start = i;
    while (start > 0) {
      const std::string_view prev = toks[start - 1].text;
      if (prev == "." || prev == "->" || prev == "::") {
        if (start < 2) break;
        const Token& recv = toks[start - 2];
        if (recv.kind == Token::Kind::kIdent) {
          start -= 2;
          continue;
        }
        if (recv.text == ")" || recv.text == "]") {
          const std::size_t open = MatchBackward(toks, start - 2);
          if (open == toks.size() || open == 0 ||
              toks[open - 1].kind != Token::Kind::kIdent) {
            break;
          }
          start = open - 1;
          continue;
        }
      }
      break;
    }
    const std::size_t close = MatchForward(toks, i + 1);
    if (close == toks.size() || close + 1 >= toks.size() ||
        toks[close + 1].text != ";") {
      continue;  // value is consumed (or at least inspected)
    }
    bool statement_start = start == 0;
    if (start > 0) {
      const std::string_view pre = toks[start - 1].text;
      statement_start = pre == ";" || pre == "{" || pre == "}" ||
                        pre == ")" || pre == "else" || pre == "do";
      // `(void)expr;` is an explicit discard - visible and greppable.
      if (pre == ")" && start >= 3 && toks[start - 2].text == "void" &&
          toks[start - 3].text == "(") {
        statement_start = false;
      }
    }
    if (!statement_start) continue;
    Emit(file, toks[i].offset, "discarded-outcome",
         "outcome of '" + std::string(toks[i].text) +
             "' is discarded; consume the result (or cast to (void) for "
             "an explicit discard)",
         out);
  }
}

// -- layer-dag --------------------------------------------------------

namespace {

const std::map<std::string, std::set<std::string>>& LayerDeps() {
  // Mirrors the target graph in src/CMakeLists.txt. "obs" is allowed
  // from every layer and is therefore not listed.
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"obs", {}},
      {"dsp", {}},
      {"crypto", {}},
      {"sim", {}},
      {"audio", {"dsp", "sim"}},
      {"modem", {"dsp", "audio", "sim"}},
      {"sensors", {"dsp", "sim"}},
      {"protocol", {"dsp", "audio", "sim", "modem", "sensors", "crypto"}},
  };
  return kDeps;
}

std::string JoinSorted(const std::set<std::string>& items) {
  std::string out;
  for (const std::string& s : items) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out.empty() ? "(nothing)" : out;
}

}  // namespace

void CheckLayerDag(const std::vector<SourceFile>& files,
                   std::vector<Diagnostic>* out) {
  const auto& deps = LayerDeps();

  // Index scanned files by src-relative path for cycle detection.
  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& f : files) by_rel[f.SrcRelativePath()] = &f;

  for (const SourceFile& f : files) {
    const std::string layer = f.Layer();
    for (const IncludeDirective& inc : f.includes()) {
      if (inc.angled) continue;  // system headers are out of scope
      const std::size_t slash = inc.path.find('/');
      if (slash == std::string::npos) {
        // Only library code must root its includes at src/; tests,
        // benches and tools legitimately include siblings by filename
        // ("bench_util.h", "lint.h").
        if (IsLibraryFile(f)) {
          out->push_back(
              {f.path(), inc.line, "layer-dag",
               "include \"" + inc.path + "\" is not rooted at src/ (write \"" +
                   (layer.empty() ? std::string("<layer>") : layer) + "/" +
                   inc.path + "\")"});
        }
        continue;
      }
      const std::string target = inc.path.substr(0, slash);
      const auto source_it = deps.find(layer);
      if (source_it == deps.end() || deps.find(target) == deps.end()) {
        continue;  // outside the known architecture; other rules apply
      }
      if (target == layer || target == "obs" ||
          source_it->second.count(target) != 0) {
        continue;
      }
      out->push_back(
          {f.path(), inc.line, "layer-dag",
           "layer '" + layer + "' must not include '" + target +
               "' (allowed: obs, " + layer + ", " +
               JoinSorted(source_it->second) + ")"});
    }
  }

  // Include-cycle detection (file granularity, DFS three-colour).
  enum class Colour { kWhite, kGrey, kBlack };
  std::map<std::string, Colour> colour;
  std::vector<std::string> stack;

  std::function<void(const SourceFile&)> visit =
      [&](const SourceFile& f) {
        const std::string rel = f.SrcRelativePath();
        colour[rel] = Colour::kGrey;
        stack.push_back(rel);
        for (const IncludeDirective& inc : f.includes()) {
          if (inc.angled) continue;
          const auto it = by_rel.find(inc.path);
          if (it == by_rel.end()) continue;
          const std::string& target = it->second->SrcRelativePath();
          const Colour c =
              colour.count(target) ? colour[target] : Colour::kWhite;
          if (c == Colour::kGrey) {
            std::string chain;
            const auto cycle_start =
                std::find(stack.begin(), stack.end(), target);
            for (auto jt = cycle_start; jt != stack.end(); ++jt) {
              chain += *jt + " -> ";
            }
            chain += target;
            out->push_back({f.path(), inc.line, "layer-dag",
                            "include cycle: " + chain});
          } else if (c == Colour::kWhite) {
            visit(*it->second);
          }
        }
        stack.pop_back();
        colour[rel] = Colour::kBlack;
      };
  for (const SourceFile& f : files) {
    if (!colour.count(f.SrcRelativePath())) visit(f);
  }
}

}  // namespace wearlock::lint
