#include "rules.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>

namespace wearlock::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Offsets of every whole-word occurrence of `word` in `text`. A match
/// is rejected when the neighbouring characters are identifier
/// characters ("time_point" does not contain the word "time").
std::vector<std::size_t> FindWord(const std::string& text,
                                  const std::string& word) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// First non-whitespace character at or after `pos` ('\0' at EOF).
char NextSignificant(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos < text.size() ? text[pos] : '\0';
}

/// Last non-whitespace character strictly before `pos` ('\0' at BOF).
char PrevSignificant(const std::string& text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) {
      return text[pos];
    }
  }
  return '\0';
}

void Emit(const SourceFile& file, std::size_t offset, const char* rule,
          std::string message, std::vector<Diagnostic>* out) {
  out->push_back({file.path(), file.LineAt(offset), rule, std::move(message)});
}

bool ContainsWord(const std::string& text, const std::string& word) {
  return !FindWord(text, word).empty();
}

}  // namespace

const std::vector<RuleInfo>& AllRules() {
  static const std::vector<RuleInfo> kRules = {
      {"layer-dag",
       "quoted includes are rooted at src/, follow the architecture DAG "
       "(dsp/crypto/obs<-sim<-audio<-modem; sensors; protocol on top) and "
       "form no cycles"},
      {"determinism",
       "no wall-clock or ambient randomness in library code: "
       "system_clock/steady_clock/rand/srand/time()/random_device are "
       "banned; use sim::VirtualClock and sim::Rng"},
      {"banned-api",
       "no stdio writes outside src/obs/log.cpp, no "
       "sprintf/strcpy/strcat/gets/atoi, no raw new/delete"},
      {"header-hygiene",
       "headers open with #pragma once (or an include guard) and must be "
       "self-contained (enforced via generated one-include TUs)"},
      {"shared-state",
       "mutable namespace-scope/static state must be const, atomic, a sync "
       "primitive, thread_local, or annotated // lint: guarded-by(<mutex>)"},
      {"hot-path-alloc",
       "functions annotated // lint: hot-path may not allocate: no "
       "std::vector construction, push_back, resize or new in the body "
       "(use dsp::Workspace scratch; NOLINT(hot-path-alloc) for cold "
       "branches)"},
  };
  return kRules;
}

// -- determinism ------------------------------------------------------

void CheckDeterminism(const SourceFile& file, std::vector<Diagnostic>* out) {
  struct Pattern {
    const char* token;
    bool call_only;  ///< only flag when followed by '('
    const char* hint;
  };
  static const Pattern kPatterns[] = {
      {"system_clock", false, "use sim::VirtualClock for modeled time"},
      {"steady_clock", false,
       "use sim::VirtualClock (or annotate an intentional host-latency "
       "probe)"},
      {"high_resolution_clock", false, "use sim::VirtualClock"},
      {"random_device", false, "seed sim::Rng explicitly instead"},
      {"rand", true, "use sim::Rng"},
      {"srand", true, "use sim::Rng with an explicit seed"},
      {"time", true, "use sim::VirtualClock"},
  };
  const std::string& code = file.code();
  for (const Pattern& p : kPatterns) {
    for (std::size_t pos : FindWord(code, p.token)) {
      if (p.call_only && NextSignificant(code, pos + std::string(p.token)
                                                         .size()) != '(') {
        continue;
      }
      Emit(file, pos, "determinism",
           std::string("'") + p.token + "' is nondeterministic; " + p.hint,
           out);
    }
  }
}

// -- banned-api -------------------------------------------------------

void CheckBannedApi(const SourceFile& file, std::vector<Diagnostic>* out) {
  const std::string& code = file.code();
  const bool is_log_sink = file.SrcRelativePath() == "obs/log.cpp";

  struct Pattern {
    const char* token;
    bool call_only;
    bool stdio;  ///< exempt inside the sanctioned log sink
    const char* hint;
  };
  static const Pattern kPatterns[] = {
      {"cout", false, true, "library code logs through obs::Log"},
      {"cerr", false, true, "library code logs through obs::Log"},
      {"printf", true, true, "library code logs through obs::Log"},
      {"fprintf", true, true, "library code logs through obs::Log"},
      {"puts", true, true, "library code logs through obs::Log"},
      {"fputs", true, true, "library code logs through obs::Log"},
      {"putchar", true, true, "library code logs through obs::Log"},
      {"sprintf", true, false, "unbounded; use snprintf"},
      {"strcpy", true, false, "unbounded; use std::string or snprintf"},
      {"strcat", true, false, "unbounded; use std::string"},
      {"gets", true, false, "unbounded; never safe"},
      {"atoi", true, false, "silent on error; use std::from_chars"},
      {"atol", true, false, "silent on error; use std::from_chars"},
      {"atof", true, false, "silent on error; use std::from_chars"},
  };
  for (const Pattern& p : kPatterns) {
    if (p.stdio && is_log_sink) continue;
    for (std::size_t pos : FindWord(code, p.token)) {
      if (p.call_only &&
          NextSignificant(code, pos + std::string(p.token).size()) != '(') {
        continue;
      }
      Emit(file, pos, "banned-api",
           std::string("'") + p.token + "' is banned in src/: " + p.hint,
           out);
    }
  }

  // Raw new / delete. `= delete` (deleted functions) is not a deletion.
  for (std::size_t pos : FindWord(code, "new")) {
    Emit(file, pos, "banned-api",
         "raw 'new' in src/: use std::make_unique/std::vector (annotate "
         "intentional never-freed singletons)",
         out);
  }
  for (std::size_t pos : FindWord(code, "delete")) {
    if (PrevSignificant(code, pos) == '=') continue;  // = delete;
    Emit(file, pos, "banned-api",
         "raw 'delete' in src/: owning types free memory, not call sites",
         out);
  }
}

// -- header-hygiene ---------------------------------------------------

void CheckHeaderHygiene(const SourceFile& file, std::vector<Diagnostic>* out) {
  if (!file.IsHeader()) return;
  for (int line = 1; line <= file.line_count(); ++line) {
    std::string_view code_line = file.CodeLine(line);
    const std::size_t first =
        code_line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) continue;
    if (code_line[first] != '#') {
      // Real code before any directive: no guard can protect this file.
      out->push_back({file.path(), line, "header-hygiene",
                      "header emits code before any #pragma once / include "
                      "guard"});
      return;
    }
    std::string directive(code_line.substr(first));
    // Normalize "#  pragma   once" -> "#pragma once".
    std::string squashed;
    for (char c : directive) {
      if (c == ' ' || c == '\t') {
        if (!squashed.empty() && squashed.back() != ' ' &&
            squashed.back() != '#') {
          squashed.push_back(' ');
        }
      } else {
        squashed.push_back(c);
      }
    }
    if (squashed.rfind("#pragma once", 0) == 0 ||
        squashed.rfind("#ifndef", 0) == 0 ||
        squashed.rfind("#if !defined", 0) == 0) {
      return;  // guarded
    }
    out->push_back({file.path(), line, "header-hygiene",
                    "first preprocessor directive must be #pragma once or "
                    "an #ifndef include guard"});
    return;
  }
  // Nothing but comments/blank lines: harmless, but still unguarded if
  // anything is ever added; require the pragma.
  out->push_back({file.path(), 1, "header-hygiene",
                  "header has no #pragma once / include guard"});
}

// -- shared-state -----------------------------------------------------

namespace {

/// Scope automaton: walks code() tracking whether declarations land at
/// namespace scope, class scope or block scope, and carves the stream
/// into statements evaluated by FlagIfMutableShared().
class SharedStateScanner {
 public:
  SharedStateScanner(const SourceFile& file, std::vector<Diagnostic>* out)
      : file_(file), out_(out) {}

  void Run() {
    const std::string code = StripPreprocessor(file_.code());
    std::size_t paren_depth = 0;
    std::size_t init_depth = 0;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(') {
        ++paren_depth;
      } else if (c == ')' && paren_depth > 0) {
        --paren_depth;
      }
      // Inside parens (for(;;), argument lists, lambdas passed as
      // arguments) nothing starts or ends a statement or scope.
      if (paren_depth > 0) {
        Accumulate(c, i);
        continue;
      }
      // Inside a brace initializer: consume until its braces balance;
      // the statement then ends at the following ';'.
      if (init_depth > 0) {
        Accumulate(c, i);
        if (c == '{') ++init_depth;
        if (c == '}') --init_depth;
        continue;
      }
      switch (c) {
        case ';':
          EndStatement();
          break;
        case '{': {
          const ScopeKind kind = ClassifyBrace();
          if (kind == ScopeKind::kInitializer) {
            Accumulate(c, i);
            init_depth = 1;
          } else {
            scopes_.push_back(kind);
            statement_.clear();
          }
          break;
        }
        case '}':
          if (!scopes_.empty()) scopes_.pop_back();
          statement_.clear();
          break;
        default:
          Accumulate(c, i);
          break;
      }
    }
  }

  /// Offset of the first top-level '=' (assignment, not ==/<=/>=/!=)
  /// outside parens/brackets/braces, or npos.
  static std::size_t TopLevelAssign(const std::string& s) {
    int depth = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if ((c == ')' || c == ']' || c == '}') && depth > 0) --depth;
      if (c == '=' && depth == 0) {
        if (i + 1 < s.size() && s[i + 1] == '=') {
          ++i;
          continue;
        }
        if (i > 0 && (s[i - 1] == '=' || s[i - 1] == '!' ||
                      s[i - 1] == '<' || s[i - 1] == '>')) {
          continue;
        }
        return i;
      }
    }
    return std::string::npos;
  }

 private:
  enum class ScopeKind { kNamespace, kClass, kBlock, kInitializer };

  /// Blank preprocessor lines (and their \-continuations): they have no
  /// terminating ';' and would otherwise bleed into statements.
  static std::string StripPreprocessor(std::string code) {
    bool in_directive = false;
    std::size_t i = 0;
    while (i < code.size()) {
      const std::size_t start = i;
      std::size_t end = code.find('\n', i);
      if (end == std::string::npos) end = code.size();
      if (!in_directive) {
        const std::size_t first = code.find_first_not_of(" \t", start);
        in_directive =
            first != std::string::npos && first < end && code[first] == '#';
      }
      if (in_directive) {
        const bool continued = end > start && code[end - 1] == '\\';
        for (std::size_t j = start; j < end; ++j) code[j] = ' ';
        in_directive = continued;
      }
      i = end + 1;
    }
    return code;
  }

  void Accumulate(char c, std::size_t offset) {
    if (statement_.empty()) {
      if (std::isspace(static_cast<unsigned char>(c))) return;
      statement_start_ = offset;
    }
    statement_.push_back(c);
    statement_end_ = offset;
  }

  ScopeKind ClassifyBrace() const {
    if (ContainsWord(statement_, "namespace") ||
        ContainsWord(statement_, "extern")) {
      return ScopeKind::kNamespace;
    }
    if (ContainsWord(statement_, "class") ||
        ContainsWord(statement_, "struct") ||
        ContainsWord(statement_, "union") ||
        ContainsWord(statement_, "enum")) {
      return ScopeKind::kClass;
    }
    // Control-flow keywords whose body brace carries no prior ')'.
    if (ContainsWord(statement_, "do") || ContainsWord(statement_, "else") ||
        ContainsWord(statement_, "try")) {
      return ScopeKind::kBlock;
    }
    if (TopLevelAssign(statement_) != std::string::npos) {
      return ScopeKind::kInitializer;  // Type name = {...};
    }
    const char last = statement_.empty()
                          ? '\0'
                          : PrevSignificant(statement_, statement_.size());
    if (last == ')') return ScopeKind::kBlock;  // function body
    if (last != '\0' && (IsIdentChar(last) || last == ']' || last == '>')) {
      return ScopeKind::kInitializer;  // Type name{...};
    }
    return ScopeKind::kBlock;
  }

  bool AtNamespaceScope() const {
    return std::all_of(scopes_.begin(), scopes_.end(), [](ScopeKind k) {
      return k == ScopeKind::kNamespace;
    });
  }
  bool AtClassScope() const {
    return !scopes_.empty() && scopes_.back() == ScopeKind::kClass;
  }

  void EndStatement() {
    std::string stmt;
    statement_.swap(stmt);
    if (stmt.empty()) return;
    const std::size_t start = statement_start_;
    const std::size_t end = statement_end_;

    const bool is_static = ContainsWord(stmt, "static");
    if (!AtNamespaceScope() && !is_static) return;  // locals/members
    if (AtClassScope() && !is_static) return;       // instance members
    EvaluateDeclaration(stmt, start, end);
  }

  void EvaluateDeclaration(const std::string& stmt, std::size_t start,
                           std::size_t end) {
    // Exempt categories. thread_local state is thread-confined; atomics
    // and sync primitives are safe (or are themselves the guard).
    static const char* kSkipWords[] = {
        "thread_local", "constexpr",     "constinit", "using",
        "typedef",      "static_assert", "friend",    "extern",
        "template",     "operator",      "namespace", "return",
        "if",           "for",           "while",     "switch",
        "case",         "goto",          "throw",     "class",
        "struct",       "union",         "enum",      "asm",
    };
    for (const char* w : kSkipWords) {
      if (ContainsWord(stmt, w)) return;
    }
    static const char* kSafeTypes[] = {
        "atomic", "mutex",  "shared_mutex", "recursive_mutex",
        "once_flag", "condition_variable",
    };
    for (const char* w : kSafeTypes) {
      if (stmt.find(w) != std::string::npos) return;
    }

    // Declarator = text before the first top-level '=' (or whole stmt).
    const std::size_t eq = TopLevelAssign(stmt);
    std::string decl =
        eq == std::string::npos ? stmt : stmt.substr(0, eq);
    const bool has_init = eq != std::string::npos ||
                          decl.find('{') != std::string::npos;
    if (!has_init) {
      // `Type fn(args);` is a declaration of a function, not state. A
      // ctor-call initializer looks identical; the rule accepts that
      // blind spot (use `=` or brace init for globals).
      if (PrevSignificant(decl, decl.size()) == ')') return;
      // Need at least two identifier-ish tokens (type + name).
      int words = 0;
      bool in_word = false;
      for (char c : decl) {
        if (IsIdentChar(c)) {
          if (!in_word) ++words;
          in_word = true;
        } else {
          in_word = false;
        }
      }
      if (words < 2) return;  // `;` noise, labels, forward decls
    }
    if (decl.find('{') != std::string::npos) {
      decl = decl.substr(0, decl.find('{'));
    }

    // Const check on the variable itself: with pointer declarators the
    // const must bind to the pointer (after the last '*'); otherwise
    // any const qualifier on the type suffices.
    const std::size_t star = decl.rfind('*');
    const std::string tail =
        star == std::string::npos ? decl : decl.substr(star + 1);
    if (ContainsWord(tail, "const")) return;

    const int line_begin = file_.LineAt(start);
    const int line_end = file_.LineAt(end);
    if (HasGuardedByAnnotation(line_begin, line_end)) return;
    out_->push_back(
        {file_.path(), line_begin, "shared-state",
         "mutable shared state: make it const/atomic, use a sync "
         "primitive or thread_local, or annotate "
         "'// lint: guarded-by(<mutex>)'"});
  }

  /// Looks for "lint: guarded-by(name)" on the statement's lines (or
  /// the line above) and verifies `name` is a real identifier declared
  /// on some other line of this file.
  bool HasGuardedByAnnotation(int line_begin, int line_end) {
    for (int line = std::max(1, line_begin - 1); line <= line_end; ++line) {
      const std::string& comment = file_.CommentOn(line);
      const std::size_t tag = comment.find("guarded-by(");
      if (tag == std::string::npos) continue;
      if (comment.rfind("lint:", tag) == std::string::npos) continue;
      std::size_t name_begin = tag + std::string("guarded-by(").size();
      std::size_t name_end = comment.find(')', name_begin);
      if (name_end == std::string::npos) break;
      std::string name = comment.substr(name_begin, name_end - name_begin);
      // Trim.
      while (!name.empty() && std::isspace(static_cast<unsigned char>(
                                  name.front()))) {
        name.erase(name.begin());
      }
      while (!name.empty() &&
             std::isspace(static_cast<unsigned char>(name.back()))) {
        name.pop_back();
      }
      if (name.empty()) break;
      // The guard must exist in code outside the annotated statement.
      for (std::size_t pos : FindWord(file_.code(), name)) {
        const int at = file_.LineAt(pos);
        if (at < line_begin || at > line_end) return true;
      }
      out_->push_back(
          {file_.path(), line, "shared-state",
           "guarded-by(" + name + ") names no identifier in this file"});
      return true;  // annotated (even if badly); the bad-name diag stands
    }
    return false;
  }

  const SourceFile& file_;
  std::vector<Diagnostic>* out_;
  std::vector<ScopeKind> scopes_;
  std::string statement_;
  std::size_t statement_start_ = 0;
  std::size_t statement_end_ = 0;
};

}  // namespace

void CheckSharedState(const SourceFile& file, std::vector<Diagnostic>* out) {
  SharedStateScanner(file, out).Run();
}

// -- hot-path-alloc ---------------------------------------------------

namespace {

/// Byte offset of the first character of 1-based `line` in code().
std::size_t LineStartOffset(const SourceFile& file, int line) {
  const std::string_view view = file.CodeLine(line);
  if (view.data() == nullptr) return file.code().size();
  return static_cast<std::size_t>(view.data() - file.code().data());
}

/// True when `comment` carries a standalone "lint: hot-path" annotation
/// (not the "hot-path-alloc" substring inside a NOLINT suppression).
bool HasHotPathAnnotation(const std::string& comment) {
  std::size_t tag = comment.find("hot-path");
  while (tag != std::string::npos) {
    const std::size_t end = tag + std::string("hot-path").size();
    const bool standalone =
        end >= comment.size() ||
        (!IsIdentChar(comment[end]) && comment[end] != '-');
    if (standalone && comment.rfind("lint:", tag) != std::string::npos) {
      return true;
    }
    tag = comment.find("hot-path", end);
  }
  return false;
}

}  // namespace

void CheckHotPathAlloc(const SourceFile& file, std::vector<Diagnostic>* out) {
  const std::string& code = file.code();
  for (int line = 1; line <= file.line_count(); ++line) {
    if (!HasHotPathAnnotation(file.CommentOn(line))) continue;

    // The annotation marks the next function: take the first '{' at or
    // after the annotated line and brace-match to the end of the body.
    const std::size_t open = code.find('{', LineStartOffset(file, line));
    if (open == std::string::npos) continue;
    std::size_t depth = 0;
    std::size_t close = open;
    for (; close < code.size(); ++close) {
      if (code[close] == '{') ++depth;
      if (code[close] == '}' && --depth == 0) break;
    }
    const std::string body = code.substr(open, close - open);

    static const char* kGrowers[] = {"push_back", "resize"};
    for (const char* token : kGrowers) {
      for (std::size_t pos : FindWord(body, token)) {
        Emit(file, open + pos, "hot-path-alloc",
             std::string("'") + token +
                 "' in a '// lint: hot-path' function allocates; use a "
                 "dsp::Workspace slot sized outside the loop",
             out);
      }
    }
    for (std::size_t pos : FindWord(body, "new")) {
      Emit(file, open + pos, "hot-path-alloc",
           "'new' in a '// lint: hot-path' function allocates; hot paths "
           "borrow from dsp::Workspace",
           out);
    }
    // A vector *construction*: the word `vector`, balanced <...>, then
    // an argument list. Plain `std::vector<T>&` parameters/aliases pass.
    for (std::size_t pos : FindWord(body, "vector")) {
      std::size_t i = pos + std::string("vector").size();
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      if (i >= body.size() || body[i] != '<') continue;
      int angle = 0;
      for (; i < body.size(); ++i) {
        if (body[i] == '<') ++angle;
        if (body[i] == '>' && --angle == 0) {
          ++i;
          break;
        }
      }
      // Skip an optional declarator name so both the temporary
      // `std::vector<T>(n)` and the declaration `std::vector<T> v(n)`
      // match; `std::vector<T>&` references to workspace slots do not.
      std::size_t j = i;
      while (j < body.size() &&
             std::isspace(static_cast<unsigned char>(body[j]))) {
        ++j;
      }
      while (j < body.size() && IsIdentChar(body[j])) ++j;
      const char next = NextSignificant(body, j);
      if (next == '(' || next == '{') {
        Emit(file, open + pos, "hot-path-alloc",
             "vector constructed in a '// lint: hot-path' function; use a "
             "dsp::Workspace slot",
             out);
      }
    }
  }
}

// -- layer-dag --------------------------------------------------------

namespace {

const std::map<std::string, std::set<std::string>>& LayerDeps() {
  // Mirrors the target graph in src/CMakeLists.txt. "obs" is allowed
  // from every layer and is therefore not listed.
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"obs", {}},
      {"dsp", {}},
      {"crypto", {}},
      {"sim", {}},
      {"audio", {"dsp", "sim"}},
      {"modem", {"dsp", "audio", "sim"}},
      {"sensors", {"dsp", "sim"}},
      {"protocol", {"dsp", "audio", "sim", "modem", "sensors", "crypto"}},
  };
  return kDeps;
}

std::string JoinSorted(const std::set<std::string>& items) {
  std::string out;
  for (const std::string& s : items) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out.empty() ? "(nothing)" : out;
}

}  // namespace

void CheckLayerDag(const std::vector<SourceFile>& files,
                   std::vector<Diagnostic>* out) {
  const auto& deps = LayerDeps();

  // Index scanned files by src-relative path for cycle detection.
  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& f : files) by_rel[f.SrcRelativePath()] = &f;

  for (const SourceFile& f : files) {
    const std::string layer = f.Layer();
    for (const IncludeDirective& inc : f.includes()) {
      if (inc.angled) continue;  // system headers are out of scope
      const std::size_t slash = inc.path.find('/');
      if (slash == std::string::npos) {
        out->push_back(
            {f.path(), inc.line, "layer-dag",
             "include \"" + inc.path + "\" is not rooted at src/ (write \"" +
                 (layer.empty() ? std::string("<layer>") : layer) + "/" +
                 inc.path + "\")"});
        continue;
      }
      const std::string target = inc.path.substr(0, slash);
      const auto source_it = deps.find(layer);
      if (source_it == deps.end() || deps.find(target) == deps.end()) {
        continue;  // outside the known architecture; other rules apply
      }
      if (target == layer || target == "obs" ||
          source_it->second.count(target) != 0) {
        continue;
      }
      out->push_back(
          {f.path(), inc.line, "layer-dag",
           "layer '" + layer + "' must not include '" + target +
               "' (allowed: obs, " + layer + ", " +
               JoinSorted(source_it->second) + ")"});
    }
  }

  // Include-cycle detection (file granularity, DFS three-colour).
  enum class Colour { kWhite, kGrey, kBlack };
  std::map<std::string, Colour> colour;
  std::vector<std::string> stack;

  std::function<void(const SourceFile&)> visit =
      [&](const SourceFile& f) {
        const std::string rel = f.SrcRelativePath();
        colour[rel] = Colour::kGrey;
        stack.push_back(rel);
        for (const IncludeDirective& inc : f.includes()) {
          if (inc.angled) continue;
          const auto it = by_rel.find(inc.path);
          if (it == by_rel.end()) continue;
          const std::string& target = it->second->SrcRelativePath();
          const Colour c =
              colour.count(target) ? colour[target] : Colour::kWhite;
          if (c == Colour::kGrey) {
            std::string chain;
            const auto cycle_start =
                std::find(stack.begin(), stack.end(), target);
            for (auto jt = cycle_start; jt != stack.end(); ++jt) {
              chain += *jt + " -> ";
            }
            chain += target;
            out->push_back({f.path(), inc.line, "layer-dag",
                            "include cycle: " + chain});
          } else if (c == Colour::kWhite) {
            visit(*it->second);
          }
        }
        stack.pop_back();
        colour[rel] = Colour::kBlack;
      };
  for (const SourceFile& f : files) {
    if (!colour.count(f.SrcRelativePath())) visit(f);
  }
}

}  // namespace wearlock::lint
