// Flow analysis substrate for the use-site rules (rules.h): a token
// stream over SourceFile::code() plus a scope walker that tracks, for
// every token, the enclosing function and the set of mutexes held via
// RAII lock guards. This is still not a compiler - no types, no
// overload resolution - but it is enough structure to enforce
// doctrines a per-line scanner cannot see:
//
//   * guarded-by:        is this access to an annotated global inside a
//                        scope that acquired the named mutex?
//   * slot-ownership:    which function does this dsp::Workspace slot
//                        reference sit in?
//   * modeled-time:      which identifiers are (transitively) assigned
//                        from host-timing calls, and do any of them
//                        reach a modeled-time sink?
//   * discarded-outcome: is this call's return value consumed?
//
// Everything operates on code() (comments and literal bodies blanked),
// so tokens inside comments or strings can never confuse the automata.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "source.h"

namespace wearlock::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string_view text;   ///< view into SourceFile::code()
  std::size_t offset = 0;  ///< byte offset of text[0] in code()
};

/// Lex the blanked code view into identifiers, numbers and punctuation.
/// Multi-character operators that the rules care about ("::", "->",
/// "+=", "-=", "<=", ">=", "==", "!=", "&&", "||") come out as single
/// tokens; everything else is one character per token.
std::vector<Token> LexTokens(const std::string& code);

/// Index of the token matching the opener/closer at `i` ("(" <-> ")",
/// "[" <-> "]", "{" <-> "}"), or `toks.size()` when unbalanced.
std::size_t MatchForward(const std::vector<Token>& toks, std::size_t i);
std::size_t MatchBackward(const std::vector<Token>& toks, std::size_t i);

/// Per-token scope context reported by ScopeWalker::Walk().
struct ScopeContext {
  /// Simple (unqualified) name of the innermost enclosing function or
  /// lambda-owning function; "" at namespace/class scope.
  std::string function;
  /// Last identifier component of every mutex currently held by a
  /// lock_guard / scoped_lock / unique_lock in an enclosing scope.
  std::set<std::string> held_mutexes;
};

/// One forward pass over the token stream maintaining a scope stack
/// (function bodies, control blocks, class/namespace bodies,
/// initializer braces) and RAII lock-guard acquisitions. `cb` is
/// invoked for every token with its index and the current context.
///
/// Guard recognition: `lock_guard` / `scoped_lock` / `unique_lock`,
/// optional template arguments, a declarator name, then an argument
/// list whose top-level comma-separated terms name the mutexes (the
/// last identifier of each dotted chain). A guard constructed with
/// std::defer_lock is ignored; std::adopt_lock still counts as held.
class ScopeWalker {
 public:
  explicit ScopeWalker(const std::vector<Token>& toks);

  template <typename Fn>
  void Walk(Fn&& cb) {
    Reset();
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      Step(i);
      ScopeContext ctx;
      ctx.function = CurrentFunction();
      ctx.held_mutexes = CurrentMutexes();
      cb(i, ctx);
    }
  }

 private:
  struct Frame {
    bool is_function = false;
    std::string function;  ///< set when is_function
    std::vector<std::string> mutexes;
  };

  void Reset();
  void Step(std::size_t i);
  std::string CurrentFunction() const;
  std::set<std::string> CurrentMutexes() const;

  /// Classify the brace at token `i` and compute the function name for
  /// function-body braces ("" otherwise).
  bool BraceOpensFunction(std::size_t i, std::string* name) const;

  const std::vector<Token>& toks_;
  std::vector<Frame> frames_;
};

// -- statement-level taint helpers (modeled-time rule) ---------------

/// A "statement" for taint purposes: a maximal token run terminated by
/// ';', '{' or '}' at parenthesis depth zero. Brace bodies nested in
/// argument lists stay inside their statement, so
/// `auto t = TimeHostMs([&] { work(); });` is one statement - but a
/// lambda assigned to a name (`auto f = [&](T x) { ... };`) is cut at
/// its body brace; rules that care match `name = [` on the raw stream.
struct Statement {
  std::size_t begin = 0;  ///< first token index (inclusive)
  std::size_t end = 0;    ///< one past the last token index
};

std::vector<Statement> SplitStatements(const std::vector<Token>& toks);

/// Token index of the statement's top-level assignment operator ('=',
/// '+=' or '-=' outside parens/brackets, not '==' etc.), or stmt.end.
std::size_t TopLevelAssignToken(const std::vector<Token>& toks,
                                const Statement& stmt);

}  // namespace wearlock::lint
