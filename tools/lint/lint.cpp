#include "lint.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>
#include <tuple>

namespace wearlock::lint {
namespace fs = std::filesystem;

namespace {

/// True when `comment` carries `marker(...ids...)` with `rule` among
/// the comma-separated ids.
bool MarkerSuppresses(const std::string& comment, const std::string& marker,
                      const std::string& rule) {
  std::size_t pos = comment.find(marker);
  while (pos != std::string::npos) {
    const std::size_t open = pos + marker.size();
    // NOLINTNEXTLINE contains NOLINT; require '(' right after marker.
    if (open < comment.size() && comment[open] == '(') {
      const std::size_t close = comment.find(')', open);
      if (close != std::string::npos) {
        std::string ids = comment.substr(open + 1, close - open - 1);
        std::replace(ids.begin(), ids.end(), ',', ' ');
        std::istringstream split(ids);
        std::string id;
        while (split >> id) {
          if (id == rule) return true;
        }
      }
    }
    pos = comment.find(marker, pos + marker.size());
  }
  return false;
}

bool IsSuppressed(const SourceFile& file, const Diagnostic& diag) {
  if (MarkerSuppresses(file.CommentOn(diag.line), "NOLINT", diag.rule)) {
    return true;
  }
  return diag.line > 1 && MarkerSuppresses(file.CommentOn(diag.line - 1),
                                           "NOLINTNEXTLINE", diag.rule);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Trim leading/trailing whitespace for config-file parsing.
std::string TrimWs(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::string BaselineKey(const Diagnostic& diag) {
  // Normalise to a repo-relative path: strip everything before the
  // first src/ | tests/ | bench/ | tools/ component, so a baseline
  // written from the repo root also matches absolute-path invocations
  // (the ctest gate passes ${CMAKE_SOURCE_DIR}/... paths).
  static constexpr const char* kRoots[] = {"src/", "tests/", "bench/",
                                           "tools/"};
  std::string file = diag.file;
  std::size_t best = std::string::npos;
  for (const char* root : kRoots) {
    if (file.rfind(root, 0) == 0) {
      best = 0;
      break;
    }
    const std::size_t pos = file.find(std::string("/") + root);
    if (pos != std::string::npos && (best == std::string::npos ||
                                     pos + 1 < best)) {
      best = pos + 1;
    }
  }
  if (best != std::string::npos && best > 0) file = file.substr(best);
  return file + ":" + std::to_string(diag.line) + ": " + diag.rule;
}

bool LoadBaseline(const std::string& path, std::set<std::string>* out,
                  std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot read baseline file: " + path;
    return false;
  }
  std::string line;
  while (std::getline(is, line)) {
    line = TrimWs(line);
    if (line.empty() || line[0] == '#') continue;
    out->insert(line);
  }
  return true;
}

bool LoadSlotManifest(const std::string& path, SlotManifest* out,
                      std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot read slot manifest: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    line = TrimWs(line);
    if (line.empty() || line[0] == '#') continue;
    // "CSlot::kFftScratch: AnalyticSignal, OtherOwner" - split on the
    // colon AFTER the slot's "::" qualifier.
    const std::size_t qual = line.find("::");
    const std::size_t colon =
        line.find(':', qual == std::string::npos ? 0 : qual + 2);
    if (colon == std::string::npos) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) +
                 ": expected 'Slot::kName: Owner[, Owner...]'";
      }
      return false;
    }
    const std::string slot = TrimWs(line.substr(0, colon));
    std::string owners = line.substr(colon + 1);
    std::replace(owners.begin(), owners.end(), ',', ' ');
    std::istringstream split(owners);
    std::string owner;
    std::set<std::string>& entry = (*out)[slot];
    while (split >> owner) entry.insert(owner);
    if (entry.empty()) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) + ": no owner for " +
                 slot;
      }
      return false;
    }
  }
  return true;
}

LintResult RunLint(const std::vector<SourceFile>& files,
                   const LintOptions& options) {
  LintResult result;
  result.files_scanned = files.size();

  // Per-file rules fan out over a small thread pool; each file writes
  // its own slot, so the merged order below is thread-count invariant
  // (and the final sort makes even that irrelevant).
  std::vector<std::vector<Diagnostic>> per_file(files.size());
  auto analyze_one = [&](std::size_t idx) {
    const SourceFile& f = files[idx];
    std::vector<Diagnostic>* out = &per_file[idx];
    CheckDeterminism(f, out);
    CheckBannedApi(f, out);
    CheckHeaderHygiene(f, out);
    CheckSharedState(f, out);
    CheckHotPathAlloc(f, out);
    CheckGuardedBy(f, out);
    CheckModeledTime(f, out);
    if (!options.slot_manifest.empty()) {
      CheckSlotOwnership(f, options.slot_manifest, out);
    }
    CheckDiscardedOutcome(f, out);
  };
  const std::size_t workers = std::min<std::size_t>(
      files.size(), static_cast<std::size_t>(std::max(options.threads, 1)));
  if (workers <= 1) {
    for (std::size_t i = 0; i < files.size(); ++i) analyze_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < files.size();
             i = next.fetch_add(1)) {
          analyze_one(i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  std::vector<Diagnostic> raw;
  for (std::vector<Diagnostic>& batch : per_file) {
    raw.insert(raw.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  CheckLayerDag(files, &raw);

  // Suppression needs the owning SourceFile back; index by path.
  std::set<std::string> used_baseline;
  for (const Diagnostic& d : raw) {
    const SourceFile* owner = nullptr;
    for (const SourceFile& f : files) {
      if (f.path() == d.file) {
        owner = &f;
        break;
      }
    }
    if (owner != nullptr && IsSuppressed(*owner, d)) {
      ++result.suppressed;
      continue;
    }
    const std::string key = BaselineKey(d);
    if (options.baseline.count(key) != 0) {
      ++result.baselined;
      used_baseline.insert(key);
      continue;
    }
    result.diagnostics.push_back(d);
  }
  for (const std::string& entry : options.baseline) {
    if (used_baseline.count(entry) == 0) {
      result.stale_baseline.push_back(entry);
    }
  }
  std::sort(result.stale_baseline.begin(), result.stale_baseline.end());

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

bool CollectPaths(const std::vector<std::string>& inputs,
                  std::vector<std::string>* out, std::string* error) {
  for (const std::string& input : inputs) {
    fs::path p(input);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cpp" || ext == ".h") {
          out->push_back(entry.path().lexically_normal().string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      out->push_back(p.lexically_normal().string());
    } else {
      if (error != nullptr) *error = "no such file or directory: " + input;
      return false;
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

bool LoadFiles(const std::vector<std::string>& paths,
               std::vector<SourceFile>* out, std::string* error) {
  for (const std::string& path : paths) {
    SourceFile f;
    if (!SourceFile::Load(path, &f, error)) return false;
    out->push_back(std::move(f));
  }
  return true;
}

void WriteText(const LintResult& result, std::ostream& os) {
  for (const Diagnostic& d : result.diagnostics) {
    os << d.file << ":" << d.line << ": " << d.rule << ": " << d.message
       << "\n";
  }
  os << "wearlock-lint: " << result.diagnostics.size() << " finding"
     << (result.diagnostics.size() == 1 ? "" : "s") << " in "
     << result.files_scanned << " files (" << result.suppressed
     << " suppressed, " << result.baselined << " baselined)\n";
  for (const std::string& stale : result.stale_baseline) {
    os << "wearlock-lint: stale baseline entry (fixed or moved): " << stale
       << "\n";
  }
}

void WriteJson(const LintResult& result, std::ostream& os) {
  os << "{\"files_scanned\":" << result.files_scanned
     << ",\"suppressed\":" << result.suppressed
     << ",\"baselined\":" << result.baselined << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    os << (i ? "," : "") << "{\"file\":\"" << JsonEscape(d.file)
       << "\",\"line\":" << d.line << ",\"rule\":\"" << JsonEscape(d.rule)
       << "\",\"message\":\"" << JsonEscape(d.message) << "\"}";
  }
  os << "]}\n";
}

void WriteSarif(const LintResult& result, std::ostream& os) {
  os << "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/"
        "sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{"
        "\"name\":\"wearlock-lint\",\"informationUri\":"
        "\"docs/static-analysis.md\",\"rules\":[";
  const std::vector<RuleInfo>& rules = AllRules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << (i ? "," : "") << "{\"id\":\"" << JsonEscape(rules[i].id)
       << "\",\"shortDescription\":{\"text\":\""
       << JsonEscape(rules[i].summary) << "\"}}";
  }
  os << "]}},\"results\":[";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    os << (i ? "," : "") << "{\"ruleId\":\"" << JsonEscape(d.rule)
       << "\",\"level\":\"error\",\"message\":{\"text\":\""
       << JsonEscape(d.message)
       << "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
          "{\"uri\":\""
       << JsonEscape(d.file) << "\"},\"region\":{\"startLine\":" << d.line
       << "}}}]}";
  }
  os << "]}]}\n";
}

void WriteBaseline(const LintResult& result, std::ostream& os) {
  os << "# wearlock-lint baseline: pre-existing findings absorbed when the\n"
        "# gate grew beyond src/. Format: <repo-relative-file>:<line>: "
        "<rule>.\n"
        "# Regenerate with --update-baseline; shrink it, never grow it.\n";
  std::vector<std::string> keys;
  keys.reserve(result.diagnostics.size());
  for (const Diagnostic& d : result.diagnostics) {
    keys.push_back(BaselineKey(d));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const std::string& k : keys) os << k << "\n";
}

std::string HeaderTuName(const std::string& rel_path) {
  std::string mangled = rel_path;
  std::replace(mangled.begin(), mangled.end(), '/', '_');
  std::replace(mangled.begin(), mangled.end(), '.', '_');
  return "hdr_" + mangled + ".cpp";
}

bool GenerateHeaderTus(const std::string& src_dir, const std::string& out_dir,
                       std::string* error) {
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + out_dir;
    return false;
  }
  std::vector<std::string> headers;
  for (const auto& entry : fs::recursive_directory_iterator(src_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".h") {
      headers.push_back(
          fs::relative(entry.path(), src_dir, ec).generic_string());
    }
  }
  std::sort(headers.begin(), headers.end());
  for (const std::string& rel : headers) {
    std::ostringstream tu;
    tu << "// Generated by wearlock-lint --gen-header-tus; do not edit.\n"
       << "// Compiling this TU proves \"" << rel << "\" is\n"
       << "// self-contained; the second include proves its guard holds.\n"
       << "#include \"" << rel << "\"\n"
       << "#include \"" << rel << "\"\n";
    const fs::path out_path = fs::path(out_dir) / HeaderTuName(rel);
    // Rewrite only on change so ninja/make don't rebuild every TU.
    {
      std::ifstream existing(out_path);
      if (existing) {
        std::ostringstream current;
        current << existing.rdbuf();
        if (current.str() == tu.str()) continue;
      }
    }
    std::ofstream os(out_path);
    if (!os) {
      if (error != nullptr) *error = "cannot write " + out_path.string();
      return false;
    }
    os << tu.str();
  }
  return true;
}

}  // namespace wearlock::lint
