#include "lint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <tuple>

namespace wearlock::lint {
namespace fs = std::filesystem;

namespace {

/// True when `comment` carries `marker(...ids...)` with `rule` among
/// the comma-separated ids.
bool MarkerSuppresses(const std::string& comment, const std::string& marker,
                      const std::string& rule) {
  std::size_t pos = comment.find(marker);
  while (pos != std::string::npos) {
    const std::size_t open = pos + marker.size();
    // NOLINTNEXTLINE contains NOLINT; require '(' right after marker.
    if (open < comment.size() && comment[open] == '(') {
      const std::size_t close = comment.find(')', open);
      if (close != std::string::npos) {
        std::string ids = comment.substr(open + 1, close - open - 1);
        std::replace(ids.begin(), ids.end(), ',', ' ');
        std::istringstream split(ids);
        std::string id;
        while (split >> id) {
          if (id == rule) return true;
        }
      }
    }
    pos = comment.find(marker, pos + marker.size());
  }
  return false;
}

bool IsSuppressed(const SourceFile& file, const Diagnostic& diag) {
  if (MarkerSuppresses(file.CommentOn(diag.line), "NOLINT", diag.rule)) {
    return true;
  }
  return diag.line > 1 && MarkerSuppresses(file.CommentOn(diag.line - 1),
                                           "NOLINTNEXTLINE", diag.rule);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

LintResult RunLint(const std::vector<SourceFile>& files) {
  LintResult result;
  result.files_scanned = files.size();

  std::vector<Diagnostic> raw;
  for (const SourceFile& f : files) {
    CheckDeterminism(f, &raw);
    CheckBannedApi(f, &raw);
    CheckHeaderHygiene(f, &raw);
    CheckSharedState(f, &raw);
    CheckHotPathAlloc(f, &raw);
  }
  CheckLayerDag(files, &raw);

  // Suppression needs the owning SourceFile back; index by path.
  std::vector<const SourceFile*> by_path;
  for (const Diagnostic& d : raw) {
    const SourceFile* owner = nullptr;
    for (const SourceFile& f : files) {
      if (f.path() == d.file) {
        owner = &f;
        break;
      }
    }
    if (owner != nullptr && IsSuppressed(*owner, d)) {
      ++result.suppressed;
    } else {
      result.diagnostics.push_back(d);
    }
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

bool CollectPaths(const std::vector<std::string>& inputs,
                  std::vector<std::string>* out, std::string* error) {
  for (const std::string& input : inputs) {
    fs::path p(input);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cpp" || ext == ".h") {
          out->push_back(entry.path().lexically_normal().string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      out->push_back(p.lexically_normal().string());
    } else {
      if (error != nullptr) *error = "no such file or directory: " + input;
      return false;
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

bool LoadFiles(const std::vector<std::string>& paths,
               std::vector<SourceFile>* out, std::string* error) {
  for (const std::string& path : paths) {
    SourceFile f;
    if (!SourceFile::Load(path, &f, error)) return false;
    out->push_back(std::move(f));
  }
  return true;
}

void WriteText(const LintResult& result, std::ostream& os) {
  for (const Diagnostic& d : result.diagnostics) {
    os << d.file << ":" << d.line << ": " << d.rule << ": " << d.message
       << "\n";
  }
  os << "wearlock-lint: " << result.diagnostics.size() << " finding"
     << (result.diagnostics.size() == 1 ? "" : "s") << " in "
     << result.files_scanned << " files (" << result.suppressed
     << " suppressed)\n";
}

void WriteJson(const LintResult& result, std::ostream& os) {
  os << "{\"files_scanned\":" << result.files_scanned
     << ",\"suppressed\":" << result.suppressed << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    os << (i ? "," : "") << "{\"file\":\"" << JsonEscape(d.file)
       << "\",\"line\":" << d.line << ",\"rule\":\"" << JsonEscape(d.rule)
       << "\",\"message\":\"" << JsonEscape(d.message) << "\"}";
  }
  os << "]}\n";
}

std::string HeaderTuName(const std::string& rel_path) {
  std::string mangled = rel_path;
  std::replace(mangled.begin(), mangled.end(), '/', '_');
  std::replace(mangled.begin(), mangled.end(), '.', '_');
  return "hdr_" + mangled + ".cpp";
}

bool GenerateHeaderTus(const std::string& src_dir, const std::string& out_dir,
                       std::string* error) {
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + out_dir;
    return false;
  }
  std::vector<std::string> headers;
  for (const auto& entry : fs::recursive_directory_iterator(src_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".h") {
      headers.push_back(
          fs::relative(entry.path(), src_dir, ec).generic_string());
    }
  }
  std::sort(headers.begin(), headers.end());
  for (const std::string& rel : headers) {
    std::ostringstream tu;
    tu << "// Generated by wearlock-lint --gen-header-tus; do not edit.\n"
       << "// Compiling this TU proves \"" << rel << "\" is\n"
       << "// self-contained; the second include proves its guard holds.\n"
       << "#include \"" << rel << "\"\n"
       << "#include \"" << rel << "\"\n";
    const fs::path out_path = fs::path(out_dir) / HeaderTuName(rel);
    // Rewrite only on change so ninja/make don't rebuild every TU.
    {
      std::ifstream existing(out_path);
      if (existing) {
        std::ostringstream current;
        current << existing.rdbuf();
        if (current.str() == tu.str()) continue;
      }
    }
    std::ofstream os(out_path);
    if (!os) {
      if (error != nullptr) *error = "cannot write " + out_path.string();
      return false;
    }
    os << tu.str();
  }
  return true;
}

}  // namespace wearlock::lint
