#include "analysis.h"

#include <algorithm>
#include <cctype>

namespace wearlock::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Two-character operators the rules need to see whole. Longer ones
/// ("<<=", "...") never matter to any rule, so two is enough.
bool IsTwoCharOp(char a, char b) {
  switch (a) {
    case ':': return b == ':';
    case '-': return b == '>' || b == '=';
    case '+': return b == '=';
    case '<': return b == '=';
    case '>': return b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '&': return b == '&';
    case '|': return b == '|';
    default: return false;
  }
}

}  // namespace

std::vector<Token> LexTokens(const std::string& code) {
  std::vector<Token> toks;
  const std::string_view view(code);
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t end = i + 1;
      while (end < code.size() && IsIdentChar(code[end])) ++end;
      toks.push_back({Token::Kind::kIdent, view.substr(i, end - i), i});
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = i + 1;
      // Good enough for a lint: digits, dots, exponent signs, suffixes.
      while (end < code.size() &&
             (IsIdentChar(code[end]) || code[end] == '.' ||
              ((code[end] == '+' || code[end] == '-') &&
               (code[end - 1] == 'e' || code[end - 1] == 'E')))) {
        ++end;
      }
      toks.push_back({Token::Kind::kNumber, view.substr(i, end - i), i});
      i = end;
      continue;
    }
    if (i + 1 < code.size() && IsTwoCharOp(c, code[i + 1])) {
      toks.push_back({Token::Kind::kPunct, view.substr(i, 2), i});
      i += 2;
      continue;
    }
    toks.push_back({Token::Kind::kPunct, view.substr(i, 1), i});
    ++i;
  }
  return toks;
}

namespace {

char OpenerFor(std::string_view t) {
  if (t == ")") return '(';
  if (t == "]") return '[';
  if (t == "}") return '{';
  return '\0';
}
char CloserFor(std::string_view t) {
  if (t == "(") return ')';
  if (t == "[") return ']';
  if (t == "{") return '}';
  return '\0';
}

}  // namespace

std::size_t MatchForward(const std::vector<Token>& toks, std::size_t i) {
  const char closer = CloserFor(toks[i].text);
  if (closer == '\0') return toks.size();
  const std::string_view open = toks[i].text;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].text == open) ++depth;
    if (toks[j].text.size() == 1 && toks[j].text[0] == closer && --depth == 0) {
      return j;
    }
  }
  return toks.size();
}

std::size_t MatchBackward(const std::vector<Token>& toks, std::size_t i) {
  const char opener = OpenerFor(toks[i].text);
  if (opener == '\0') return toks.size();
  const std::string_view close = toks[i].text;
  int depth = 0;
  for (std::size_t j = i + 1; j-- > 0;) {
    if (toks[j].text == close) ++depth;
    if (toks[j].text.size() == 1 && toks[j].text[0] == opener && --depth == 0) {
      return j;
    }
  }
  return toks.size();
}

// -- ScopeWalker ------------------------------------------------------

ScopeWalker::ScopeWalker(const std::vector<Token>& toks) : toks_(toks) {}

void ScopeWalker::Reset() { frames_.clear(); }

std::string ScopeWalker::CurrentFunction() const {
  for (std::size_t i = frames_.size(); i-- > 0;) {
    if (frames_[i].is_function) return frames_[i].function;
  }
  return "";
}

std::set<std::string> ScopeWalker::CurrentMutexes() const {
  std::set<std::string> held;
  for (const Frame& f : frames_) {
    held.insert(f.mutexes.begin(), f.mutexes.end());
  }
  return held;
}

namespace {

bool IsControlKeyword(std::string_view t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "catch";
}

bool IsTypeIntroducer(std::string_view t) {
  return t == "class" || t == "struct" || t == "union" || t == "enum" ||
         t == "namespace";
}

}  // namespace

bool ScopeWalker::BraceOpensFunction(std::size_t i, std::string* name) const {
  // Scan back to the start of the "statement" introducing this brace.
  // A top-level '=' marks an initializer; class/struct/namespace mark a
  // type scope; a ')' immediately before the brace (modulo trailing
  // const/noexcept/override/-> return types) marks a function body.
  std::size_t begin = 0;
  int depth = 0;
  for (std::size_t j = i; j-- > 0;) {
    const std::string_view t = toks_[j].text;
    // A '}' at depth zero closes a previous sibling definition - the
    // introducing statement starts after it (two function definitions
    // in a row have no ';' between them).
    if (t == "}" && depth == 0) {
      begin = j + 1;
      break;
    }
    if (t == ")" || t == "]" || t == "}") ++depth;
    if (t == "(" || t == "[" || t == "{") {
      if (depth == 0) {
        begin = j + 1;
        break;
      }
      --depth;
    }
    if (depth == 0 && t == ";") {
      begin = j + 1;
      break;
    }
  }

  bool has_assign = false;
  for (std::size_t j = begin; j < i; ++j) {
    const std::string_view t = toks_[j].text;
    if (t == "(" || t == "[" || t == "{") {
      j = MatchForward(toks_, j);
      if (j >= i) break;
      continue;
    }
    if (t == "=") has_assign = true;
    if (toks_[j].kind == Token::Kind::kIdent && IsTypeIntroducer(t)) {
      return false;  // type / namespace scope
    }
  }
  if (has_assign) return false;  // brace initializer

  // Find the token just before the brace, skipping trailing qualifiers.
  std::size_t j = i;
  while (j > begin) {
    --j;
    const std::string_view t = toks_[j].text;
    if (toks_[j].kind == Token::Kind::kIdent &&
        (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
         t == "try" || t == "mutable")) {
      continue;
    }
    if (t == ")") {
      // Could be noexcept(...) / ->decltype(...) as well; walk to its
      // '(' and look at what introduced it.
      const std::size_t open = MatchBackward(toks_, j);
      if (open == toks_.size() || open == 0 || open <= begin) return false;
      const Token& before = toks_[open - 1];
      if (before.kind == Token::Kind::kIdent) {
        if (IsControlKeyword(before.text)) return false;
        if (before.text == "noexcept" || before.text == "decltype") {
          j = open;  // keep skipping backwards
          continue;
        }
        if (name != nullptr) *name = std::string(before.text);
        return true;
      }
      if (before.text == "]") {
        // Lambda body: a function-like scope without its own name; the
        // enclosing function's name is inherited by returning false...
        // except a lambda at namespace scope would then look like a
        // namespace. Treat as a function with an empty name only when
        // no outer function exists; otherwise inherit by reporting a
        // non-function block.
        return false;
      }
      return false;
    }
    // `-> Type {`, `: init_list {}` etc: keep scanning a little.
    if (t == ">" || t == "->") continue;
    if (toks_[j].kind == Token::Kind::kIdent) continue;
    if (t == ":" || t == "::" || t == ",") continue;
    return false;
  }
  return false;
}

void ScopeWalker::Step(std::size_t i) {
  const Token& tok = toks_[i];
  if (tok.text == "{") {
    Frame frame;
    std::string name;
    if (BraceOpensFunction(i, &name)) {
      frame.is_function = true;
      frame.function = name;
    }
    frames_.push_back(std::move(frame));
    return;
  }
  if (tok.text == "}") {
    if (!frames_.empty()) frames_.pop_back();
    return;
  }
  if (tok.kind != Token::Kind::kIdent) return;
  if (tok.text != "lock_guard" && tok.text != "scoped_lock" &&
      tok.text != "unique_lock" && tok.text != "shared_lock") {
    return;
  }
  // Optional template argument list.
  std::size_t j = i + 1;
  if (j < toks_.size() && toks_[j].text == "<") {
    int angle = 0;
    for (; j < toks_.size(); ++j) {
      if (toks_[j].text == "<") ++angle;
      if (toks_[j].text == ">" && --angle == 0) {
        ++j;
        break;
      }
    }
  }
  // Declarator name, then '(' or '{' argument list. A bare
  // `lock_guard<mutex>(m)` temporary is a classic bug (destroyed at
  // end of full expression) - deliberately NOT treated as held.
  if (j >= toks_.size() || toks_[j].kind != Token::Kind::kIdent) return;
  ++j;
  if (j >= toks_.size() || (toks_[j].text != "(" && toks_[j].text != "{")) {
    return;
  }
  const std::size_t close = MatchForward(toks_, j);
  if (close == toks_.size()) return;
  // Collect the last identifier of each top-level comma-separated term.
  std::vector<std::string> mutexes;
  std::string last_ident;
  bool deferred = false;
  int depth = 0;
  for (std::size_t k = j + 1; k < close; ++k) {
    const std::string_view t = toks_[k].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") --depth;
    if (depth > 0) continue;
    if (toks_[k].kind == Token::Kind::kIdent) {
      if (t == "defer_lock") deferred = true;
      last_ident = std::string(t);
    } else if (t == ",") {
      if (!last_ident.empty()) mutexes.push_back(last_ident);
      last_ident.clear();
    }
  }
  if (!last_ident.empty()) mutexes.push_back(last_ident);
  if (deferred || frames_.empty()) return;
  for (std::string& m : mutexes) {
    if (m == "std" || m == "adopt_lock" || m == "try_to_lock") continue;
    frames_.back().mutexes.push_back(std::move(m));
  }
}

// -- statements -------------------------------------------------------

std::vector<Statement> SplitStatements(const std::vector<Token>& toks) {
  std::vector<Statement> stmts;
  std::size_t begin = 0;
  int paren = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string_view t = toks[i].text;
    if (t == "(" || t == "[") ++paren;
    if (t == ")" || t == "]") --paren;
    if (paren > 0) continue;
    if (t == ";" || t == "{" || t == "}") {
      if (i > begin) stmts.push_back({begin, i});
      begin = i + 1;
    }
  }
  if (toks.size() > begin) stmts.push_back({begin, toks.size()});
  return stmts;
}

std::size_t TopLevelAssignToken(const std::vector<Token>& toks,
                                const Statement& stmt) {
  int depth = 0;
  for (std::size_t i = stmt.begin; i < stmt.end; ++i) {
    const std::string_view t = toks[i].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") --depth;
    if (depth > 0) continue;
    if (t == "=" || t == "+=" || t == "-=") return i;
  }
  return stmt.end;
}

}  // namespace wearlock::lint
