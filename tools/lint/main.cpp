// wearlock-lint CLI.
//
//   wearlock-lint [options] <path>...     lint files/dirs, exit 1 on findings
//   wearlock-lint --list-rules            print the rule catalogue
//   wearlock-lint --gen-header-tus OUT SRC  emit self-containment TUs
//
// Options:
//   --json                 JSON report on stdout instead of text
//   --sarif FILE           also write a SARIF 2.1.0 log to FILE
//   --threads N            per-file analysis worker threads (default 1;
//                          output is byte-identical for any N)
//   --baseline FILE        absorb findings listed in FILE
//   --update-baseline FILE write surviving findings to FILE and exit 0
//   --slot-manifest FILE   slot ownership manifest for slot-ownership
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <charconv>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"
#include "rules.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: wearlock-lint [--json] [--sarif FILE] [--threads N]\n"
      "                     [--baseline FILE] [--update-baseline FILE]\n"
      "                     [--slot-manifest FILE] <path>...\n"
      "       wearlock-lint --list-rules\n"
      "       wearlock-lint --gen-header-tus <out-dir> <src-dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wearlock::lint;

  bool json = false;
  std::string sarif_path;
  std::string baseline_path;
  std::string update_baseline_path;
  std::string manifest_path;
  LintOptions options;
  std::vector<std::string> inputs;
  auto next_arg = [&](int* i) -> const char* {
    return *i + 1 < argc ? argv[++*i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      const char* v = next_arg(&i);
      if (v == nullptr) return Usage();
      sarif_path = v;
    } else if (arg == "--threads") {
      const char* v = next_arg(&i);
      if (v == nullptr) return Usage();
      const std::string spec(v);
      const auto [end, ec] = std::from_chars(
          spec.data(), spec.data() + spec.size(), options.threads);
      if (ec != std::errc() || end != spec.data() + spec.size() ||
          options.threads < 1) {
        std::fprintf(stderr, "wearlock-lint: --threads wants a positive int\n");
        return 2;
      }
    } else if (arg == "--baseline") {
      const char* v = next_arg(&i);
      if (v == nullptr) return Usage();
      baseline_path = v;
    } else if (arg == "--update-baseline") {
      const char* v = next_arg(&i);
      if (v == nullptr) return Usage();
      update_baseline_path = v;
    } else if (arg == "--slot-manifest") {
      const char* v = next_arg(&i);
      if (v == nullptr) return Usage();
      manifest_path = v;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : AllRules()) {
        std::printf("%-15s %s\n", rule.id, rule.summary);
      }
      return 0;
    } else if (arg == "--gen-header-tus") {
      if (i + 2 >= argc) return Usage();
      std::string error;
      if (!GenerateHeaderTus(/*src_dir=*/argv[i + 2], /*out_dir=*/argv[i + 1],
                             &error)) {
        std::fprintf(stderr, "wearlock-lint: %s\n", error.c_str());
        return 2;
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "wearlock-lint: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage();

  std::vector<std::string> paths;
  std::vector<SourceFile> files;
  std::string error;
  if (!CollectPaths(inputs, &paths, &error) ||
      !LoadFiles(paths, &files, &error)) {
    std::fprintf(stderr, "wearlock-lint: %s\n", error.c_str());
    return 2;
  }
  if (!baseline_path.empty() &&
      !LoadBaseline(baseline_path, &options.baseline, &error)) {
    std::fprintf(stderr, "wearlock-lint: %s\n", error.c_str());
    return 2;
  }
  if (!manifest_path.empty() &&
      !LoadSlotManifest(manifest_path, &options.slot_manifest, &error)) {
    std::fprintf(stderr, "wearlock-lint: %s\n", error.c_str());
    return 2;
  }

  if (!update_baseline_path.empty()) {
    // Regeneration runs without the old baseline so every surviving
    // finding lands in the new file.
    options.baseline.clear();
    const LintResult result = RunLint(files, options);
    std::ofstream os(update_baseline_path);
    if (!os) {
      std::fprintf(stderr, "wearlock-lint: cannot write %s\n",
                   update_baseline_path.c_str());
      return 2;
    }
    WriteBaseline(result, os);
    std::fprintf(stderr, "wearlock-lint: wrote %zu baseline entries to %s\n",
                 result.diagnostics.size(), update_baseline_path.c_str());
    return 0;
  }

  const LintResult result = RunLint(files, options);
  if (!sarif_path.empty()) {
    std::ofstream os(sarif_path);
    if (!os) {
      std::fprintf(stderr, "wearlock-lint: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    WriteSarif(result, os);
  }
  if (json) {
    WriteJson(result, std::cout);
  } else {
    WriteText(result, std::cout);
  }
  return result.diagnostics.empty() ? 0 : 1;
}
