// wearlock-lint CLI.
//
//   wearlock-lint [--json] <path>...      lint files/dirs, exit 1 on findings
//   wearlock-lint --list-rules            print the rule catalogue
//   wearlock-lint --gen-header-tus OUT SRC  emit self-containment TUs
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"
#include "rules.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: wearlock-lint [--json] <path>...\n"
               "       wearlock-lint --list-rules\n"
               "       wearlock-lint --gen-header-tus <out-dir> <src-dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wearlock::lint;

  bool json = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : AllRules()) {
        std::printf("%-15s %s\n", rule.id, rule.summary);
      }
      return 0;
    } else if (arg == "--gen-header-tus") {
      if (i + 2 >= argc) return Usage();
      std::string error;
      if (!GenerateHeaderTus(/*src_dir=*/argv[i + 2], /*out_dir=*/argv[i + 1],
                             &error)) {
        std::fprintf(stderr, "wearlock-lint: %s\n", error.c_str());
        return 2;
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "wearlock-lint: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage();

  std::vector<std::string> paths;
  std::vector<SourceFile> files;
  std::string error;
  if (!CollectPaths(inputs, &paths, &error) ||
      !LoadFiles(paths, &files, &error)) {
    std::fprintf(stderr, "wearlock-lint: %s\n", error.c_str());
    return 2;
  }

  const LintResult result = RunLint(files);
  if (json) {
    WriteJson(result, std::cout);
  } else {
    WriteText(result, std::cout);
  }
  return result.diagnostics.empty() ? 0 : 1;
}
