// wearlock-lint unit tests: every rule gets positive fixtures (the
// violation fires, with the right rule id and line) and negative
// fixtures (idiomatic code stays clean), plus suppression and output
// format coverage. Fixtures are embedded strings lexed via
// SourceFile::FromString, so the suite runs with no filesystem setup.
#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"
#include "rules.h"
#include "source.h"
#include "tests/json_check.h"

namespace wearlock::lint {
namespace {

std::vector<Diagnostic> RunAllOn(const std::string& path,
                                 const std::string& content) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::FromString(path, content));
  return RunLint(files).diagnostics;
}

bool HasRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return true;
  }
  return false;
}

// -- tokenizer --------------------------------------------------------

TEST(SourceFileTest, BlanksCommentsAndStrings) {
  const SourceFile f = SourceFile::FromString(
      "src/dsp/x.cpp",
      "int a; // rand() in a comment\n"
      "const char* s = \"rand()\";\n"
      "/* std::cout in a block\n   comment */ int b;\n");
  EXPECT_EQ(f.code().find("rand"), std::string::npos);
  EXPECT_EQ(f.code().find("cout"), std::string::npos);
  EXPECT_NE(f.code().find("int a;"), std::string::npos);
  EXPECT_NE(f.code().find("int b;"), std::string::npos);
  // Comment text is retrievable per line.
  EXPECT_NE(f.CommentOn(1).find("rand() in a comment"), std::string::npos);
}

TEST(SourceFileTest, RawStringsAreBlanked) {
  const SourceFile f = SourceFile::FromString(
      "src/dsp/x.cpp", "auto s = R\"(std::cout << rand())\";\nint a;\n");
  EXPECT_EQ(f.code().find("cout"), std::string::npos);
  EXPECT_NE(f.code().find("int a;"), std::string::npos);
}

TEST(SourceFileTest, RecordsIncludesWithLines) {
  const SourceFile f = SourceFile::FromString(
      "src/modem/sync.cpp",
      "#include \"modem/sync.h\"\n\n#include <vector>\n"
      "#include \"dsp/fft.h\"\n");
  ASSERT_EQ(f.includes().size(), 3u);
  EXPECT_EQ(f.includes()[0].path, "modem/sync.h");
  EXPECT_EQ(f.includes()[0].line, 1);
  EXPECT_FALSE(f.includes()[0].angled);
  EXPECT_EQ(f.includes()[1].path, "vector");
  EXPECT_TRUE(f.includes()[1].angled);
  EXPECT_EQ(f.includes()[2].path, "dsp/fft.h");
  EXPECT_EQ(f.includes()[2].line, 4);
}

TEST(SourceFileTest, LayerAndSrcRelativePath) {
  EXPECT_EQ(SourceFile::FromString("src/obs/log.cpp", "").Layer(), "obs");
  EXPECT_EQ(SourceFile::FromString("/root/repo/src/dsp/fft.h", "").Layer(),
            "dsp");
  EXPECT_EQ(SourceFile::FromString("dsp/fft.h", "").Layer(), "dsp");
  EXPECT_EQ(
      SourceFile::FromString("src/obs/log.cpp", "").SrcRelativePath(),
      "obs/log.cpp");
}

// -- determinism ------------------------------------------------------

TEST(DeterminismTest, FlagsWallClockAndAmbientRandomness) {
  const char* positives[] = {
      "auto t = std::chrono::system_clock::now();",
      "auto t = std::chrono::steady_clock::now();",
      "int r = rand();",
      "srand(42);",
      "std::time_t t = time(nullptr);",
      "std::random_device rd;",
  };
  for (const char* snippet : positives) {
    const auto diags =
        RunAllOn("src/dsp/x.cpp", std::string("void f() { ") + snippet +
                                      " (void)0; }\n");
    EXPECT_TRUE(HasRule(diags, "determinism")) << snippet;
  }
}

TEST(DeterminismTest, CleanCodeAndLookalikesPass) {
  const auto diags = RunAllOn(
      "src/dsp/x.cpp",
      "#include \"dsp/fft.h\"\n"
      "void f(sim::Rng& rng) {\n"
      "  auto t = clock.now_ms();      // virtual clock is fine\n"
      "  double x = rng.Uniform();\n"
      "  auto tp = other.time_point;   // 'time_point' is not 'time('\n"
      "  Retime(4);                    // suffix match must not fire\n"
      "}\n");
  EXPECT_TRUE(diags.empty()) << diags.size();
}

TEST(DeterminismTest, NolintSuppressesOnSameLine) {
  const auto diags = RunAllOn(
      "src/sim/x.cpp",
      "double HostMs() {\n"
      "  return ms(std::chrono::steady_clock::now());  "
      "// NOLINT(determinism): host-latency probe\n"
      "}\n");
  EXPECT_FALSE(HasRule(diags, "determinism"));
}

// -- banned-api -------------------------------------------------------

TEST(BannedApiTest, FlagsStdioAndUnsafeCalls) {
  struct Case {
    const char* snippet;
  };
  const char* positives[] = {
      "std::cout << 1;",
      "std::cerr << err;",
      "printf(\"%d\", x);",
      "fprintf(stderr, \"x\");",
      "puts(msg);",
      "sprintf(buf, \"%d\", x);",
      "strcpy(dst, src);",
      "int v = atoi(s);",
      "int* p = new int(3);",
      "delete p;",
      "delete[] arr;",
  };
  for (const char* snippet : positives) {
    const auto diags = RunAllOn(
        "src/modem/x.cpp", std::string("void f() { ") + snippet + " }\n");
    EXPECT_TRUE(HasRule(diags, "banned-api")) << snippet;
  }
}

TEST(BannedApiTest, SafeVariantsAndDeletedFunctionsPass) {
  const auto diags = RunAllOn(
      "src/modem/x.cpp",
      "struct T {\n"
      "  T(const T&) = delete;\n"
      "  T& operator=(const T&) =\n"
      "      delete;\n"
      "};\n"
      "void f(char* buf, int n) {\n"
      "  snprintf(buf, 8, \"%d\", n);  // bounded: allowed\n"
      "  auto p = std::make_unique<int>(3);\n"
      "  int renewed = n;  // 'new' inside an identifier\n"
      "}\n");
  EXPECT_FALSE(HasRule(diags, "banned-api"));
}

TEST(BannedApiTest, LogSinkIsExemptFromStdioOnly) {
  const auto stdio = RunAllOn("src/obs/log.cpp",
                              "void f() { fprintf(stderr, \"x\"); }\n");
  EXPECT_FALSE(HasRule(stdio, "banned-api"));
  const auto unsafe =
      RunAllOn("src/obs/log.cpp", "void f() { sprintf(b, \"x\"); }\n");
  EXPECT_TRUE(HasRule(unsafe, "banned-api"));
  // Any other file in obs still may not print.
  const auto other = RunAllOn("src/obs/trace.cpp",
                              "void f() { fprintf(stderr, \"x\"); }\n");
  EXPECT_TRUE(HasRule(other, "banned-api"));
}

// -- header-hygiene ---------------------------------------------------

TEST(HeaderHygieneTest, PragmaOnceAndIfndefGuardsPass) {
  EXPECT_TRUE(RunAllOn("src/dsp/a.h",
                       "// comment first is fine\n#pragma once\nint F();\n")
                  .empty());
  EXPECT_TRUE(RunAllOn("src/dsp/b.h",
                       "#ifndef WL_B_H\n#define WL_B_H\nint F();\n#endif\n")
                  .empty());
}

TEST(HeaderHygieneTest, MissingOrLateGuardFails) {
  const auto no_guard = RunAllOn("src/dsp/a.h", "int F();\n");
  ASSERT_TRUE(HasRule(no_guard, "header-hygiene"));
  const auto include_first =
      RunAllOn("src/dsp/b.h", "#include \"dsp/fft.h\"\n#pragma once\n");
  EXPECT_TRUE(HasRule(include_first, "header-hygiene"));
  // Sources are exempt.
  EXPECT_FALSE(HasRule(RunAllOn("src/dsp/a.cpp", "int F() { return 1; }\n"),
                       "header-hygiene"));
}

TEST(HeaderHygieneTest, HeaderTuNameManglesPathsLikeCMake) {
  EXPECT_EQ(HeaderTuName("audio/medium.h"), "hdr_audio_medium_h.cpp");
  EXPECT_EQ(HeaderTuName("obs/log.h"), "hdr_obs_log_h.cpp");
}

// -- shared-state -----------------------------------------------------

TEST(SharedStateTest, FlagsMutableGlobalsAndStatics) {
  const char* positives[] = {
      "int g_counter = 0;",
      "static double g_scale = 1.0;",
      "namespace { std::string g_name; }",
      "void f() { static int calls = 0; ++calls; }",
      "struct S { static int live_count; };",
  };
  for (const char* snippet : positives) {
    const auto diags =
        RunAllOn("src/modem/x.cpp", std::string(snippet) + "\n");
    EXPECT_TRUE(HasRule(diags, "shared-state")) << snippet;
  }
}

TEST(SharedStateTest, ConstAtomicThreadLocalAndSyncTypesPass) {
  const auto diags = RunAllOn(
      "src/modem/x.cpp",
      "#include <atomic>\n"
      "const int kLimit = 8;\n"
      "constexpr double kPi = 3.14;\n"
      "static const char* const kName = \"x\";\n"
      "std::atomic<int> g_hits{0};\n"
      "std::mutex g_mu;\n"
      "thread_local int t_depth = 0;\n"
      "namespace { static const int kTable[] = {1, 2}; }\n"
      "int Add(int a, int b);\n"
      "static int Helper();\n"
      "class C {\n"
      "  int member_ = 0;        // instance state: fine\n"
      "  mutable std::mutex mu_;\n"
      "  static constexpr int kMax = 4;\n"
      "};\n"
      "void f() { int local = 3; (void)local; }\n");
  EXPECT_FALSE(HasRule(diags, "shared-state")) << diags[0].message;
}

TEST(SharedStateTest, DefaultedAndDeletedFunctionsPass) {
  const auto diags = RunAllOn(
      "src/protocol/x.cpp",
      "UnlockSession::~UnlockSession() = default;\n"
      "Widget::Widget(const Widget&) = delete;\n"
      "Widget& Widget::operator=(Widget&&) = default;\n");
  EXPECT_FALSE(HasRule(diags, "shared-state")) << diags[0].message;
}

TEST(SharedStateTest, MutablePointerToConstIsStillFlagged) {
  // West const qualifies the pointee, not the pointer.
  const auto diags =
      RunAllOn("src/modem/x.cpp", "static const char* g_label = \"a\";\n");
  EXPECT_TRUE(HasRule(diags, "shared-state"));
  // Const pointer binding passes.
  const auto ok = RunAllOn("src/modem/x.cpp",
                           "static const char* const g_label = \"a\";\n");
  EXPECT_FALSE(HasRule(ok, "shared-state"));
}

TEST(SharedStateTest, GuardedByAnnotationNamesARealIdentifier) {
  const auto ok = RunAllOn(
      "src/obs/x.cpp",
      "std::mutex g_mu;\n"
      "int g_value = 0;  // lint: guarded-by(g_mu)\n");
  EXPECT_FALSE(HasRule(ok, "shared-state"));

  const auto bogus = RunAllOn(
      "src/obs/x.cpp", "int g_value = 0;  // lint: guarded-by(g_ghost)\n");
  ASSERT_TRUE(HasRule(bogus, "shared-state"));
  EXPECT_NE(bogus[0].message.find("g_ghost"), std::string::npos);
}

// -- hot-path-alloc ---------------------------------------------------

TEST(HotPathAllocTest, FlagsAllocationsInAnnotatedFunctions) {
  const char* positives[] = {
      "out.push_back(x);",
      "buf.resize(n);",
      "auto* p = new double[n];",
      "std::vector<double> tmp(n);",
      "std::vector<int> tmp{1, 2};",
  };
  for (const char* snippet : positives) {
    const auto diags = RunAllOn(
        "src/dsp/x.cpp", std::string("// lint: hot-path\nvoid F() { ") +
                             snippet + " }\n");
    EXPECT_TRUE(HasRule(diags, "hot-path-alloc")) << snippet;
  }
}

TEST(HotPathAllocTest, UnannotatedFunctionsAndCleanBodiesPass) {
  // The same allocations are fine without the annotation.
  EXPECT_FALSE(HasRule(
      RunAllOn("src/dsp/x.cpp", "void F(std::vector<double>& out) "
                                "{ out.push_back(1.0); }\n"),
      "hot-path-alloc"));
  // Workspace borrowing, span params and vector-typed references pass.
  EXPECT_FALSE(HasRule(
      RunAllOn("src/dsp/x.cpp",
               "// lint: hot-path\n"
               "void F(std::span<const double> x, Workspace& ws) {\n"
               "  std::vector<double>& s = ws.RealBuf(RSlot::kCorrX, 8);\n"
               "  for (double v : x) s[0] += v;\n"
               "  renewed += 1;  // 'new' inside an identifier\n"
               "}\n"),
      "hot-path-alloc"));
  // The annotation only covers the next function.
  EXPECT_FALSE(HasRule(
      RunAllOn("src/dsp/x.cpp",
               "// lint: hot-path\n"
               "void Hot() { int a = 0; (void)a; }\n"
               "void Cold(std::vector<double>& v) { v.resize(3); }\n"),
      "hot-path-alloc"));
}

TEST(HotPathAllocTest, NolintSuppressesAColdBranch) {
  const auto diags = RunAllOn(
      "src/dsp/x.cpp",
      "// lint: hot-path\n"
      "void F(std::vector<double>& out) {\n"
      "  out.resize(3);  // NOLINT(hot-path-alloc): cold fallback\n"
      "}\n");
  EXPECT_FALSE(HasRule(diags, "hot-path-alloc"));
}

TEST(HotPathAllocTest, DiagnosticPointsAtTheAllocationLine) {
  const auto diags = RunAllOn(
      "src/dsp/x.cpp",
      "// lint: hot-path\n"
      "void F(std::vector<double>& out) {\n"
      "  double a = 0.0;\n"
      "  out.push_back(a);\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "hot-path-alloc"));
  EXPECT_EQ(diags[0].line, 4);
}

// -- layer-dag --------------------------------------------------------

TEST(LayerDagTest, UpwardIncludeIsFlagged) {
  const auto diags = RunAllOn("src/dsp/fft.cpp",
                              "#include \"modem/sync.h\"\nvoid F();\n");
  ASSERT_TRUE(HasRule(diags, "layer-dag"));
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("'dsp' must not include 'modem'"),
            std::string::npos);
}

TEST(LayerDagTest, ArchitectureEdgesPass) {
  const auto diags = RunAllOn(
      "src/protocol/session.cpp",
      "#include \"protocol/session.h\"\n"
      "#include \"audio/scene.h\"\n"
      "#include \"crypto/hotp.h\"\n"
      "#include \"modem/modem.h\"\n"
      "#include \"obs/trace.h\"\n"
      "#include \"sensors/dtw.h\"\n"
      "#include \"sim/clock.h\"\n"
      "#include <vector>\n");
  EXPECT_FALSE(HasRule(diags, "layer-dag"));
  // obs is importable from the bottom of the stack...
  EXPECT_FALSE(HasRule(
      RunAllOn("src/sim/clock.cpp", "#include \"obs/instrument.h\"\n"),
      "layer-dag"));
  // ...but imports nothing itself.
  EXPECT_TRUE(HasRule(
      RunAllOn("src/obs/trace.cpp", "#include \"sim/clock.h\"\n"),
      "layer-dag"));
}

TEST(LayerDagTest, ObsStaysLeafLevel) {
  // The telemetry pipeline (record/rollup/sketch) lives in src/obs and
  // describes every layer's outcomes - the temptation is to include
  // protocol or modem types directly. The DAG forbids it: obs is the
  // leaf every layer may include, so it may include nothing above it.
  for (const char* include :
       {"protocol/session.h", "modem/constellation.h", "audio/noise.h",
        "sensors/dtw.h", "sim/executor.h"}) {
    const auto diags =
        RunAllOn("src/obs/record.cpp",
                 "#include \"" + std::string(include) + "\"\nvoid F();\n");
    EXPECT_TRUE(HasRule(diags, "layer-dag")) << include;
  }
  // Intra-obs composition (the pipeline's own stack) stays legal.
  EXPECT_FALSE(HasRule(RunAllOn("src/obs/rollup.cpp",
                                "#include \"obs/rollup.h\"\n"
                                "#include \"obs/record.h\"\n"
                                "#include \"obs/sketch.h\"\n"
                                "#include \"obs/json.h\"\n"),
                       "layer-dag"));
}

TEST(LayerDagTest, NonRootedIncludeIsFlagged) {
  const auto diags = RunAllOn("src/protocol/watch.h",
                              "#pragma once\n#include \"messages.h\"\n");
  ASSERT_TRUE(HasRule(diags, "layer-dag"));
  EXPECT_NE(diags[0].message.find("not rooted at src/"), std::string::npos);
}

TEST(LayerDagTest, IncludeCycleIsDetected) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::FromString(
      "src/dsp/a.h", "#pragma once\n#include \"dsp/b.h\"\n"));
  files.push_back(SourceFile::FromString(
      "src/dsp/b.h", "#pragma once\n#include \"dsp/a.h\"\n"));
  const auto result = RunLint(files);
  ASSERT_TRUE(HasRule(result.diagnostics, "layer-dag"));
  bool cycle_reported = false;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.message.find("include cycle") != std::string::npos) {
      cycle_reported = true;
      EXPECT_NE(d.message.find("dsp/a.h"), std::string::npos);
      EXPECT_NE(d.message.find("dsp/b.h"), std::string::npos);
    }
  }
  EXPECT_TRUE(cycle_reported);
}

// -- suppression + output ---------------------------------------------

TEST(SuppressionTest, RequiresMatchingRuleId) {
  // Wrong id: not suppressed.
  EXPECT_TRUE(HasRule(
      RunAllOn("src/dsp/x.cpp",
               "void f() { int r = rand(); }  // NOLINT(banned-api)\n"),
      "determinism"));
  // Bare NOLINT without a rule id: not honoured.
  EXPECT_TRUE(HasRule(RunAllOn("src/dsp/x.cpp",
                               "void f() { int r = rand(); }  // NOLINT\n"),
                      "determinism"));
  // Matching id, comma list: suppressed.
  EXPECT_FALSE(HasRule(
      RunAllOn("src/dsp/x.cpp",
               "void f() { int r = rand(); }  "
               "// NOLINT(determinism, banned-api)\n"),
      "determinism"));
  // NOLINTNEXTLINE on the line above.
  EXPECT_FALSE(HasRule(
      RunAllOn("src/dsp/x.cpp",
               "// NOLINTNEXTLINE(determinism): seeded fixture\n"
               "void f() { int r = rand(); }\n"),
      "determinism"));
}

TEST(SuppressionTest, SuppressedCountIsReported) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::FromString(
      "src/dsp/x.cpp",
      "void f() { int r = rand(); }  // NOLINT(determinism)\n"));
  const LintResult result = RunLint(files);
  EXPECT_EQ(result.suppressed, 1u);
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(OutputTest, TextFormatIsMachineReadable) {
  std::vector<SourceFile> files;
  files.push_back(
      SourceFile::FromString("src/dsp/x.cpp", "void f() { srand(1); }\n"));
  const LintResult result = RunLint(files);
  std::ostringstream os;
  WriteText(result, os);
  EXPECT_NE(os.str().find("src/dsp/x.cpp:1: determinism: "),
            std::string::npos);
}

TEST(OutputTest, JsonOutputIsWellFormed) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::FromString(
      "src/dsp/x.cpp",
      "void f() { srand(1); std::cout << \"hi\\n\"; }\n"));
  files.push_back(SourceFile::FromString("src/dsp/ok.cpp", "void g();\n"));
  const LintResult result = RunLint(files);
  ASSERT_GE(result.diagnostics.size(), 2u);
  std::ostringstream os;
  WriteJson(result, os);
  testing::JsonChecker checker;
  EXPECT_TRUE(checker.Check(os.str())) << checker.error();
  EXPECT_NE(os.str().find("\"files_scanned\":2"), std::string::npos);
}

TEST(OutputTest, RuleCatalogueCoversAllTenRules) {
  std::vector<std::string> ids;
  for (const RuleInfo& rule : AllRules()) ids.push_back(rule.id);
  for (const char* expected :
       {"layer-dag", "determinism", "banned-api", "header-hygiene",
        "shared-state", "hot-path-alloc", "guarded-by", "modeled-time",
        "slot-ownership", "discarded-outcome"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

TEST(OutputTest, SarifOutputIsWellFormedJson) {
  std::vector<SourceFile> files;
  files.push_back(
      SourceFile::FromString("src/dsp/x.cpp", "void f() { srand(1); }\n"));
  const LintResult result = RunLint(files);
  ASSERT_FALSE(result.diagnostics.empty());
  std::ostringstream os;
  WriteSarif(result, os);
  testing::JsonChecker checker;
  EXPECT_TRUE(checker.Check(os.str())) << checker.error();
  EXPECT_NE(os.str().find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(os.str().find("\"ruleId\":\"determinism\""), std::string::npos);
}

// -- guarded-by (use-site) --------------------------------------------

// The flow-aware core: byte-identical access statements classified by
// the scope they sit in - a per-line scanner cannot tell these apart.
constexpr const char* kGuardedFixture =
    "#include <mutex>\n"
    "std::mutex g_mu;\n"
    "int g_value = 0;  // lint: guarded-by(g_mu)\n"
    "void Good() {\n"
    "  const std::lock_guard<std::mutex> lock(g_mu);\n"
    "  g_value = 1;\n"
    "}\n"
    "void Bad() {\n"
    "  g_value = 2;\n"
    "}\n";

TEST(GuardedByTest, AccessOutsideLockScopeIsFlagged) {
  const auto diags = RunAllOn("src/obs/x.cpp", kGuardedFixture);
  ASSERT_TRUE(HasRule(diags, "guarded-by"));
  // Only the unguarded access (line 9) fires; the guarded one passes.
  for (const Diagnostic& d : diags) {
    if (d.rule == "guarded-by") {
      EXPECT_EQ(d.line, 9);
    }
  }
}

TEST(GuardedByTest, LockScopeEndsAtItsBrace) {
  // Same statement twice; only the one after the guard's scope closes
  // is a violation. Lexically the two lines are indistinguishable.
  const auto diags = RunAllOn(
      "src/obs/x.cpp",
      "#include <mutex>\n"
      "std::mutex g_mu;\n"
      "int g_value = 0;  // lint: guarded-by(g_mu)\n"
      "void F() {\n"
      "  {\n"
      "    const std::lock_guard<std::mutex> lock(g_mu);\n"
      "    g_value = 1;\n"
      "  }\n"
      "  g_value = 1;\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "guarded-by"));
  for (const Diagnostic& d : diags) {
    if (d.rule == "guarded-by") {
      EXPECT_EQ(d.line, 9);
    }
  }
}

TEST(GuardedByTest, ScopedAndUniqueLocksCountDeferDoesNot) {
  EXPECT_FALSE(HasRule(
      RunAllOn("src/obs/x.cpp",
               "#include <mutex>\n"
               "std::mutex g_mu;\n"
               "int g_value = 0;  // lint: guarded-by(g_mu)\n"
               "void F() {\n"
               "  const std::scoped_lock guard(g_mu);\n"
               "  g_value = 1;\n"
               "}\n"),
      "guarded-by"));
  // defer_lock means the mutex is NOT held at construction.
  EXPECT_TRUE(HasRule(
      RunAllOn("src/obs/x.cpp",
               "#include <mutex>\n"
               "std::mutex g_mu;\n"
               "int g_value = 0;  // lint: guarded-by(g_mu)\n"
               "void F() {\n"
               "  std::unique_lock<std::mutex> lk(g_mu, std::defer_lock);\n"
               "  g_value = 1;\n"
               "}\n"),
      "guarded-by"));
}

TEST(GuardedByTest, MemberNamesAndOtherMutexesDoNotConfuse) {
  // `other.g_value` is a different entity; a lock on the WRONG mutex
  // does not license the access.
  const auto diags = RunAllOn(
      "src/obs/x.cpp",
      "#include <mutex>\n"
      "std::mutex g_mu;\n"
      "std::mutex g_other_mu;\n"
      "int g_value = 0;  // lint: guarded-by(g_mu)\n"
      "void WrongLock() {\n"
      "  const std::lock_guard<std::mutex> lock(g_other_mu);\n"
      "  g_value = 1;\n"
      "}\n"
      "void Member(S& other) {\n"
      "  other.g_value = 2;  // member of another object: fine\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "guarded-by"));
  for (const Diagnostic& d : diags) {
    if (d.rule == "guarded-by") {
      EXPECT_EQ(d.line, 7);
    }
  }
}

TEST(GuardedByTest, NolintSuppresses) {
  EXPECT_FALSE(HasRule(
      RunAllOn("src/obs/x.cpp",
               "#include <mutex>\n"
               "std::mutex g_mu;\n"
               "int g_value = 0;  // lint: guarded-by(g_mu)\n"
               "void Init() {\n"
               "  g_value = 1;  // NOLINT(guarded-by): pre-thread init\n"
               "}\n"),
      "guarded-by"));
}

// -- modeled-time (taint) ---------------------------------------------

TEST(ModeledTimeTest, DirectHostTimeIntoAccumulatorIsFlagged) {
  const auto diags = RunAllOn(
      "src/protocol/x.cpp",
      "void F(sim::VirtualClock& clock) {\n"
      "  double proto_ms = 0.0;\n"
      "  const double host_ms = sim::TimeHostMs([&] { Work(); });\n"
      "  proto_ms += host_ms;\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "modeled-time"));
}

TEST(ModeledTimeTest, LaunderingThroughIntermediatesIsCaught) {
  // The taint crosses two plain assignments before reaching the budget
  // comparison - exactly what a lexical rule cannot follow.
  const auto diags = RunAllOn(
      "src/protocol/x.cpp",
      "bool F() {\n"
      "  const double t0 = sim::TimeHostMs([&] { Work(); });\n"
      "  const double scaled = t0 * 0.5;\n"
      "  const double padded = scaled + 1.0;\n"
      "  return padded >= stage_budget_ms;\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "modeled-time"));
  EXPECT_EQ(diags[0].line, 5);
}

TEST(ModeledTimeTest, SinkFunctionCallWithTaintedArgIsFlagged) {
  const auto diags = RunAllOn(
      "src/protocol/x.cpp",
      "void F() {\n"
      "  double proto_ms = 0.0;\n"
      "  auto charge = [&](double ms) { proto_ms += ms; };\n"
      "  const double host_ms = sim::TimeHostMs([&] { Work(); });\n"
      "  charge(host_ms);\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "modeled-time"));
  EXPECT_EQ(diags[0].line, 5);
}

TEST(ModeledTimeTest, SessionRecordFieldWriteIsFlagged) {
  const auto diags = RunAllOn(
      "src/protocol/x.cpp",
      "void F() {\n"
      "  obs::SessionRecord r;\n"
      "  const double host_ms = sim::TimeHostMs([&] { Work(); });\n"
      "  r.total_ms = host_ms;\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "modeled-time"));
}

TEST(ModeledTimeTest, ModeledMetricTagIsFlagged) {
  const auto diags = RunAllOn(
      "src/protocol/x.cpp",
      "void F() {\n"
      "  const double host_ms = sim::TimeHostMs([&] { Work(); });\n"
      "  WL_HIST(\"unlock.modeled_ms\", host_ms);\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "modeled-time"));
}

TEST(ModeledTimeTest, AnnotatedAccumulatorIsEnforced) {
  const auto diags = RunAllOn(
      "src/protocol/x.cpp",
      "void F() {\n"
      "  double stage_ms = 0.0;  // lint: modeled-time\n"
      "  const double host_ms = sim::TimeHostMs([&] { Work(); });\n"
      "  stage_ms += host_ms;\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "modeled-time"));
}

TEST(ModeledTimeTest, SeedDerivedTimeAndLatencyReportsPass) {
  const auto diags = RunAllOn(
      "src/protocol/x.cpp",
      "void F(sim::WirelessLink& link) {\n"
      "  double proto_ms = 0.0;\n"
      "  proto_ms += link.SampleMessageDelay();   // seed-derived: fine\n"
      "  const double host_ms = sim::TimeHostMs([&] { Work(); });\n"
      "  report_latency_ms = host_ms;             // latency report\n"
      "  WL_HIST(\"unlock.host_ms\", host_ms);    // untagged metric\n"
      "  if (proto_ms >= stage_budget_ms) return; // modeled vs budget\n"
      "}\n");
  EXPECT_FALSE(HasRule(diags, "modeled-time"));
}

TEST(ModeledTimeTest, NolintSuppresses) {
  EXPECT_FALSE(HasRule(
      RunAllOn("src/protocol/x.cpp",
               "void F() {\n"
               "  double proto_ms = 0.0;\n"
               "  const double host_ms = sim::TimeHostMs([&] { Work(); });\n"
               "  proto_ms += host_ms;  // NOLINT(modeled-time): calibration\n"
               "}\n"),
      "modeled-time"));
}

// -- slot-ownership ---------------------------------------------------

namespace {

std::vector<Diagnostic> RunWithManifest(const std::string& path,
                                        const std::string& content) {
  LintOptions options;
  options.slot_manifest["CSlot::kCorrX"] = {"CrossCorrelateFftInto"};
  options.slot_manifest["RSlot::kCount"] = {"*"};
  std::vector<SourceFile> files;
  files.push_back(SourceFile::FromString(path, content));
  return RunLint(files, options).diagnostics;
}

}  // namespace

TEST(SlotOwnershipTest, NonOwnerReferenceIsFlagged) {
  // Byte-identical statements; only the enclosing function differs.
  const auto diags = RunWithManifest(
      "src/dsp/x.cpp",
      "void CrossCorrelateFftInto(Workspace& ws) {\n"
      "  auto& fx = ws.ComplexZeroed(CSlot::kCorrX, 8);\n"
      "}\n"
      "void Rogue(Workspace& ws) {\n"
      "  auto& fx = ws.ComplexZeroed(CSlot::kCorrX, 8);\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "slot-ownership"));
  for (const Diagnostic& d : diags) {
    if (d.rule == "slot-ownership") {
      EXPECT_EQ(d.line, 5);
      EXPECT_NE(d.message.find("Rogue"), std::string::npos);
    }
  }
}

TEST(SlotOwnershipTest, WildcardUnknownSlotAndNoManifest) {
  // "*" allows any context (the kCount sentinel in array bounds).
  EXPECT_FALSE(HasRule(
      RunWithManifest("src/dsp/x.cpp",
                      "constexpr std::size_t kN =\n"
                      "    static_cast<std::size_t>(RSlot::kCount);\n"),
      "slot-ownership"));
  // A slot missing from the manifest is itself a finding.
  EXPECT_TRUE(HasRule(
      RunWithManifest("src/dsp/x.cpp",
                      "void F(Workspace& ws) {\n"
                      "  auto& b = ws.ComplexBuf(CSlot::kMystery, 4);\n"
                      "}\n"),
      "slot-ownership"));
  // Without a manifest the rule has nothing to enforce.
  EXPECT_FALSE(HasRule(RunAllOn("src/dsp/x.cpp",
                                "void F(Workspace& ws) {\n"
                                "  auto& b = ws.ComplexBuf(CSlot::kCorrX, 4);\n"
                                "}\n"),
                       "slot-ownership"));
}

TEST(SlotOwnershipTest, NolintSuppresses) {
  EXPECT_FALSE(HasRule(
      RunWithManifest(
          "src/dsp/x.cpp",
          "void Rogue(Workspace& ws) {\n"
          "  auto& fx = ws.ComplexZeroed(\n"
          "      CSlot::kCorrX, 8);  // NOLINT(slot-ownership): migration\n"
          "}\n"),
      "slot-ownership"));
}

// -- discarded-outcome ------------------------------------------------

TEST(DiscardedOutcomeTest, BareExpressionStatementIsFlagged) {
  const auto diags = RunAllOn(
      "src/protocol/x.cpp",
      "void F(sim::WirelessLink& link) {\n"
      "  link.TrySendMessageDelay();\n"
      "}\n");
  ASSERT_TRUE(HasRule(diags, "discarded-outcome"));
  EXPECT_EQ(diags[0].line, 2);
}

TEST(DiscardedOutcomeTest, ConsumedOrExplicitlyDiscardedPasses) {
  const auto diags = RunAllOn(
      "src/protocol/x.cpp",
      "void F(sim::WirelessLink& link) {\n"
      "  auto d = link.TrySendMessageDelay();\n"
      "  if (link.TrySendRoundTrip()) { Use(); }\n"
      "  (void)link.TrySendFileDelay(64);\n"
      "  return link.TrySendMessageDelay();\n"
      "}\n");
  EXPECT_FALSE(HasRule(diags, "discarded-outcome"));
}

TEST(DiscardedOutcomeTest, QualifiedParseIsCoveredUnqualifiedIsNot) {
  EXPECT_TRUE(HasRule(RunAllOn("src/sim/x.cpp",
                               "void F(const std::string& spec) {\n"
                               "  sim::FaultPlan::Parse(spec);\n"
                               "}\n"),
                      "discarded-outcome"));
  // Some other type's Parse is not an outcome API.
  EXPECT_FALSE(HasRule(RunAllOn("src/sim/x.cpp",
                                "void F(Config& c, const std::string& s) {\n"
                                "  c.Parse(s);\n"
                                "}\n"),
                       "discarded-outcome"));
}

TEST(DiscardedOutcomeTest, EventQueueSchedulingIsCovered) {
  // A dropped EventId (or Cancel verdict) discards the only handle on
  // the scheduled event - the multiplexer's version of an ignored Try*.
  EXPECT_TRUE(HasRule(RunAllOn("src/sim/x.cpp",
                               "void F(sim::EventQueue& q, Cb fn) {\n"
                               "  q.ScheduleAfter(5.0, fn);\n"
                               "}\n"),
                      "discarded-outcome"));
  EXPECT_TRUE(HasRule(RunAllOn("src/sim/x.cpp",
                               "void F(sim::EventQueue& q, Cb fn) {\n"
                               "  q.ScheduleAt(10.0, fn);\n"
                               "}\n"),
                      "discarded-outcome"));
  EXPECT_TRUE(HasRule(RunAllOn("src/sim/x.cpp",
                               "void F(sim::EventQueue& q, EventId id) {\n"
                               "  q.Cancel(id);\n"
                               "}\n"),
                      "discarded-outcome"));
  EXPECT_FALSE(HasRule(
      RunAllOn("src/sim/x.cpp",
               "void F(sim::EventQueue& q, Cb fn, EventId id) {\n"
               "  auto pending = q.ScheduleAfter(5.0, fn);\n"
               "  (void)q.ScheduleAt(10.0, fn);\n"
               "  if (q.Cancel(id)) { Use(); }\n"
               "}\n"),
      "discarded-outcome"));
}

TEST(DiscardedOutcomeTest, ChannelHardeningApisAreCovered) {
  // The channel pack's outcome carriers: a dropped parse result, sense
  // report, drift estimate or backoff delay silently skips hardening.
  EXPECT_TRUE(HasRule(RunAllOn("src/audio/x.cpp",
                               "void F(const std::string& spec) {\n"
                               "  audio::ImpairmentPlan::Parse(spec);\n"
                               "}\n"),
                      "discarded-outcome"));
  EXPECT_TRUE(HasRule(RunAllOn("src/protocol/x.cpp",
                               "void F(const Spec& s, const Samples& c) {\n"
                               "  SenseChannel(s, c, 9.0);\n"
                               "}\n"),
                      "discarded-outcome"));
  EXPECT_TRUE(HasRule(RunAllOn("src/protocol/x.cpp",
                               "void F(Rec& r, const Spec& s) {\n"
                               "  modem::EstimateDrift(r, s, 2048);\n"
                               "  modem::CompensateRate(r, 300.0);\n"
                               "}\n"),
                      "discarded-outcome"));
  EXPECT_TRUE(HasRule(RunAllOn("src/protocol/x.cpp",
                               "void F(const AcousticMacConfig& mac) {\n"
                               "  mac.BackoffMs(2);\n"
                               "}\n"),
                      "discarded-outcome"));
  EXPECT_FALSE(HasRule(
      RunAllOn("src/protocol/x.cpp",
               "void F(const Spec& s, const Samples& c, Rec& r) {\n"
               "  const auto sense = SenseChannel(s, c, 9.0);\n"
               "  if (modem::EstimateDrift(r, s, 2048).valid) { Use(); }\n"
               "  auto fixed = modem::CompensateRate(r, 300.0);\n"
               "  const auto plan = audio::ImpairmentPlan::Parse(\"sro=50\");\n"
               "}\n"),
      "discarded-outcome"));
}

TEST(DiscardedOutcomeTest, NolintSuppresses) {
  EXPECT_FALSE(HasRule(
      RunAllOn("src/protocol/x.cpp",
               "void F(sim::WirelessLink& link) {\n"
               "  link.TrySendMessageDelay();  // NOLINT(discarded-outcome)\n"
               "}\n"),
      "discarded-outcome"));
}

// -- baseline + parallel driver ---------------------------------------

TEST(BaselineTest, BaselinedFindingsAreAbsorbedAndCounted) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::FromString(
      "/abs/checkout/src/dsp/x.cpp", "void f() { srand(1); }\n"));
  LintOptions options;
  // Keys are repo-relative, so they match the absolute-path invocation.
  options.baseline = {"src/dsp/x.cpp:1: determinism",
                      "src/dsp/gone.cpp:9: banned-api"};
  const LintResult result = RunLint(files, options);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.baselined, 1u);
  // The unmatched entry is reported stale so the file shrinks over time.
  ASSERT_EQ(result.stale_baseline.size(), 1u);
  EXPECT_EQ(result.stale_baseline[0], "src/dsp/gone.cpp:9: banned-api");
}

TEST(BaselineTest, KeyNormalisesPathAndRoundTripsThroughWriter) {
  EXPECT_EQ(BaselineKey({"/r/checkout/src/dsp/x.cpp", 3, "determinism", "m"}),
            "src/dsp/x.cpp:3: determinism");
  EXPECT_EQ(BaselineKey({"tools/lint/main.cpp", 7, "banned-api", "m"}),
            "tools/lint/main.cpp:7: banned-api");
  std::vector<SourceFile> files;
  files.push_back(
      SourceFile::FromString("src/dsp/x.cpp", "void f() { srand(1); }\n"));
  const LintResult result = RunLint(files);
  std::ostringstream os;
  WriteBaseline(result, os);
  EXPECT_NE(os.str().find("src/dsp/x.cpp:1: determinism\n"),
            std::string::npos);
}

TEST(ParallelTest, DiagnosticsAreByteIdenticalAcrossThreadCounts) {
  // Many files, several findings each, analysed at 1/2/8 threads: the
  // sorted output must not depend on scheduling.
  std::vector<SourceFile> files;
  for (int i = 0; i < 24; ++i) {
    files.push_back(SourceFile::FromString(
        "src/dsp/f" + std::to_string(i) + ".cpp",
        "void f() { srand(1); int* p = new int(3); }\n"));
  }
  std::string reference;
  for (int threads : {1, 2, 8}) {
    LintOptions options;
    options.threads = threads;
    const LintResult result = RunLint(files, options);
    std::ostringstream os;
    WriteText(result, os);
    if (reference.empty()) {
      reference = os.str();
    } else {
      EXPECT_EQ(reference, os.str()) << "threads=" << threads;
    }
  }
  EXPECT_NE(reference.find("src/dsp/f23.cpp"), std::string::npos);
}

// -- the real tree ----------------------------------------------------

// The acceptance bar: `wearlock-lint src/` exits 0 on this repo. The
// ctest entry wearlock_lint_src runs the real binary over the real
// tree; this fixture-level suite stays hermetic.

}  // namespace
}  // namespace wearlock::lint
