// SourceFile: the lexical substrate wearlock-lint rules run on.
//
// One pass classifies every character of a C++ translation unit as
// code, comment, or string/char-literal body (raw strings included),
// then exposes three views the rules consume:
//   * code()      - the file with comment text and literal bodies
//                   blanked to spaces (newlines and quote/comment
//                   delimiters preserved), so token searches cannot
//                   false-positive inside comments or strings;
//   * CommentOn() - the comment text attached to a line, for the
//                   NOLINT(rule-id) and lint: guarded-by(...) escape
//                   hatches;
//   * includes()  - every #include directive with its spelling, line
//                   and quote style, for the layer-DAG rule.
//
// This is deliberately not a parser: rules that need structure (the
// shared-state scope tracker) build their own small automata on top of
// code(). No external dependencies.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wearlock::lint {

struct IncludeDirective {
  std::string path;  ///< text between the delimiters, e.g. "obs/log.h"
  int line = 0;      ///< 1-based
  bool angled = false;  ///< <...> (system) vs "..." (project)
};

class SourceFile {
 public:
  /// Lex `content` as if it were the file at `path` (fixtures/tests).
  static SourceFile FromString(std::string path, std::string content);

  /// Lex a file from disk. Returns false (and sets `error`) when the
  /// file cannot be read; lexing itself never fails.
  static bool Load(const std::string& path, SourceFile* out,
                   std::string* error);

  const std::string& path() const { return path_; }
  const std::string& content() const { return content_; }
  const std::string& code() const { return code_; }
  const std::vector<IncludeDirective>& includes() const { return includes_; }

  int line_count() const { return line_count_; }
  /// 1-based line containing byte `offset` of content()/code().
  int LineAt(std::size_t offset) const;
  /// The code() view of one 1-based line ("" past EOF).
  std::string_view CodeLine(int line) const;
  /// All comment text that appears on a 1-based line, concatenated
  /// ("" when the line has no comment).
  const std::string& CommentOn(int line) const;

  bool IsHeader() const;
  /// Path component after the last "src/" segment, e.g. "obs" for
  /// src/obs/log.cpp. When the path has no src/ segment the first
  /// directory component is used (fixture convenience). Empty for a
  /// bare filename.
  std::string Layer() const;
  /// Path relative to the last "src/" segment (whole path when none).
  std::string SrcRelativePath() const;

 private:
  void Lex();

  std::string path_;
  std::string content_;
  std::string code_;
  std::vector<IncludeDirective> includes_;
  std::vector<std::string> comment_by_line_;  // index 0 == line 1
  std::vector<std::size_t> line_offsets_;     // offset of each line start
  int line_count_ = 0;
};

}  // namespace wearlock::lint
