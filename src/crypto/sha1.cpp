#include "crypto/sha1.h"

#include <cstring>
#include <stdexcept>

namespace wearlock::crypto {
namespace {

inline std::uint32_t Rotl(std::uint32_t x, unsigned n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

Sha1::Sha1() { Reset(); }

void Sha1::Reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffer_len_ = 0;
  total_bits_ = 0;
  finalized_ = false;
}

void Sha1::Update(const std::uint8_t* data, std::size_t len) {
  if (finalized_) throw std::logic_error("Sha1: update after finalize");
  total_bits_ += static_cast<std::uint64_t>(len) * 8;
  while (len > 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
}

void Sha1::Update(const std::vector<std::uint8_t>& data) {
  Update(data.data(), data.size());
}

void Sha1::Update(const std::string& data) {
  Update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

Digest Sha1::Finalize() {
  if (finalized_) throw std::logic_error("Sha1: double finalize");
  const std::uint64_t bits = total_bits_;
  // Append 0x80 then zeros until 8 bytes remain in the block for length.
  const std::uint8_t pad = 0x80;
  Update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) Update(&zero, 1);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  Update(len_be, 8);
  finalized_ = true;

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::ProcessBlock(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = Rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = Rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Digest Sha1::Hash(const std::vector<std::uint8_t>& data) {
  Sha1 s;
  s.Update(data);
  return s.Finalize();
}

Digest Sha1::Hash(const std::string& data) {
  Sha1 s;
  s.Update(data);
  return s.Finalize();
}

std::string ToHex(const Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : digest) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace wearlock::crypto
