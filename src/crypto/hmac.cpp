#include "crypto/hmac.h"

namespace wearlock::crypto {

Digest HmacSha1(const std::vector<std::uint8_t>& key,
                const std::vector<std::uint8_t>& message) {
  constexpr std::size_t kBlock = 64;
  std::vector<std::uint8_t> k = key;
  if (k.size() > kBlock) {
    const Digest d = Sha1::Hash(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlock, 0x00);

  std::vector<std::uint8_t> ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha1 inner;
  inner.Update(ipad);
  inner.Update(message);
  const Digest inner_digest = inner.Finalize();

  Sha1 outer;
  outer.Update(opad);
  outer.Update(std::vector<std::uint8_t>(inner_digest.begin(), inner_digest.end()));
  return outer.Finalize();
}

bool ConstantTimeEqual(const std::vector<std::uint8_t>& a,
                       const std::vector<std::uint8_t>& b) {
  std::uint8_t diff = a.size() == b.size() ? 0 : 1;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace wearlock::crypto
