// HOTP: HMAC-based one-time password (RFC 4226), the token WearLock
// transmits over the acoustic channel (paper §IV).
//
// Token = DynamicTruncate(HMAC-SHA1(key, counter)) mod 10^Digit.
// WearLock actually sends the raw 31-bit truncated value as the acoustic
// payload (a "32 bits OTP" with 2^32 keyspace in the paper's discussion);
// the digit form exists for display/PIN-style fallback.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha1.h"

namespace wearlock::crypto {

/// Dynamic truncation per RFC 4226 §5.3: take the low 4 bits of the last
/// digest byte as an offset, read 4 bytes there, mask the sign bit.
std::uint32_t DynamicTruncate(const Digest& digest);

/// Raw truncated HOTP value (31 bits) for (key, counter).
std::uint32_t HotpValue(const std::vector<std::uint8_t>& key,
                        std::uint64_t counter);

/// Decimal HOTP code with `digits` digits (6..9 per RFC guidance, but any
/// 1..9 accepted). Zero-padded string.
/// @throws std::invalid_argument if digits is 0 or > 9.
std::string HotpCode(const std::vector<std::uint8_t>& key,
                     std::uint64_t counter, unsigned digits);

/// Generator/validator pair state. The phone (validator) keeps a
/// look-ahead window so a token burned by a failed acoustic delivery does
/// not desynchronize the pair (RFC 4226 §7.2 resynchronization).
class HotpValidator {
 public:
  /// @param window how many counter values ahead of the expected one are
  /// accepted (s parameter of RFC 4226). 0 = exact match only.
  HotpValidator(std::vector<std::uint8_t> key, std::uint64_t initial_counter,
                unsigned window);

  /// Validate a raw 31-bit token. On success returns the matched counter
  /// and advances the expected counter past it (one-time semantics).
  std::optional<std::uint64_t> Validate(std::uint32_t token);

  std::uint64_t expected_counter() const { return counter_; }

 private:
  std::vector<std::uint8_t> key_;
  std::uint64_t counter_;
  unsigned window_;
};

class HotpGenerator {
 public:
  HotpGenerator(std::vector<std::uint8_t> key, std::uint64_t initial_counter);

  /// Produce the next token and advance the counter.
  std::uint32_t Next();

  std::uint64_t counter() const { return counter_; }

 private:
  std::vector<std::uint8_t> key_;
  std::uint64_t counter_;
};

}  // namespace wearlock::crypto
