// SHA-1 (FIPS 180-1), implemented from scratch for the HOTP token scheme.
//
// SHA-1 is cryptographically broken for collision resistance, but RFC 4226
// HOTP (what the paper uses, §IV "One Time Password") depends only on
// HMAC-SHA-1's PRF property, which remains acceptable for OTPs.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace wearlock::crypto {

using Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  Sha1();

  /// Absorb `len` bytes.
  void Update(const std::uint8_t* data, std::size_t len);
  void Update(const std::vector<std::uint8_t>& data);
  void Update(const std::string& data);

  /// Finalize and return the 160-bit digest. The hasher must not be
  /// updated afterwards (call Reset to reuse).
  Digest Finalize();

  /// Restore initial state.
  void Reset();

  /// One-shot convenience.
  static Digest Hash(const std::vector<std::uint8_t>& data);
  static Digest Hash(const std::string& data);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finalized_ = false;
};

/// Hex string of a digest (lowercase).
std::string ToHex(const Digest& digest);

}  // namespace wearlock::crypto
