#include "crypto/hotp.h"

#include <stdexcept>

#include "crypto/hmac.h"

namespace wearlock::crypto {
namespace {

std::vector<std::uint8_t> CounterBytes(std::uint64_t counter) {
  std::vector<std::uint8_t> c(8);
  for (int i = 0; i < 8; ++i) {
    c[i] = static_cast<std::uint8_t>(counter >> (56 - 8 * i));
  }
  return c;
}

}  // namespace

std::uint32_t DynamicTruncate(const Digest& digest) {
  const unsigned offset = digest[19] & 0x0F;
  return (static_cast<std::uint32_t>(digest[offset] & 0x7F) << 24) |
         (static_cast<std::uint32_t>(digest[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(digest[offset + 2]) << 8) |
         static_cast<std::uint32_t>(digest[offset + 3]);
}

std::uint32_t HotpValue(const std::vector<std::uint8_t>& key,
                        std::uint64_t counter) {
  return DynamicTruncate(HmacSha1(key, CounterBytes(counter)));
}

std::string HotpCode(const std::vector<std::uint8_t>& key,
                     std::uint64_t counter, unsigned digits) {
  if (digits == 0 || digits > 9) {
    throw std::invalid_argument("HotpCode: digits must be in [1, 9]");
  }
  std::uint32_t mod = 1;
  for (unsigned i = 0; i < digits; ++i) mod *= 10;
  const std::uint32_t value = HotpValue(key, counter) % mod;
  std::string s = std::to_string(value);
  return std::string(digits - s.size(), '0') + s;
}

HotpValidator::HotpValidator(std::vector<std::uint8_t> key,
                             std::uint64_t initial_counter, unsigned window)
    : key_(std::move(key)), counter_(initial_counter), window_(window) {}

std::optional<std::uint64_t> HotpValidator::Validate(std::uint32_t token) {
  for (std::uint64_t c = counter_; c <= counter_ + window_; ++c) {
    if (HotpValue(key_, c) == token) {
      counter_ = c + 1;
      return c;
    }
  }
  return std::nullopt;
}

HotpGenerator::HotpGenerator(std::vector<std::uint8_t> key,
                             std::uint64_t initial_counter)
    : key_(std::move(key)), counter_(initial_counter) {}

std::uint32_t HotpGenerator::Next() { return HotpValue(key_, counter_++); }

}  // namespace wearlock::crypto
