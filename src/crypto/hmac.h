// HMAC-SHA1 (RFC 2104), the keyed MAC underlying the HOTP tokens.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha1.h"

namespace wearlock::crypto {

/// HMAC-SHA1(key, message). Keys longer than the 64-byte block are
/// hashed first, per RFC 2104.
Digest HmacSha1(const std::vector<std::uint8_t>& key,
                const std::vector<std::uint8_t>& message);

/// Constant-time equality of two byte strings of equal length; returns
/// false (without early exit) for length mismatch.
bool ConstantTimeEqual(const std::vector<std::uint8_t>& a,
                       const std::vector<std::uint8_t>& b);

}  // namespace wearlock::crypto
