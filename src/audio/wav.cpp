#include "audio/wav.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace wearlock::audio {
namespace {

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

// Byte-at-a-time append; vector::insert over char-pointer ranges trips a
// spurious GCC stringop-overflow warning under sanitizer instrumentation.
void PutTag(std::vector<std::uint8_t>& out, std::string_view tag) {
  for (char c : tag) out.push_back(static_cast<std::uint8_t>(c));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

}  // namespace

void WriteWav(const std::string& path, const Samples& samples,
              double sample_rate_hz) {
  const std::uint32_t rate = static_cast<std::uint32_t>(sample_rate_hz);
  const std::uint32_t data_bytes = static_cast<std::uint32_t>(samples.size() * 2);

  std::vector<std::uint8_t> out;
  out.reserve(44 + data_bytes);
  PutTag(out, "RIFF");
  PutU32(out, 36 + data_bytes);
  PutTag(out, "WAVEfmt ");
  PutU32(out, 16);          // fmt chunk size
  PutU16(out, 1);           // PCM
  PutU16(out, 1);           // mono
  PutU32(out, rate);
  PutU32(out, rate * 2);    // byte rate
  PutU16(out, 2);           // block align
  PutU16(out, 16);          // bits per sample
  PutTag(out, "data");
  PutU32(out, data_bytes);
  for (double v : samples) {
    const double clamped = std::clamp(v, -1.0, 1.0);
    const auto s = static_cast<std::int16_t>(std::lround(clamped * 32767.0));
    PutU16(out, static_cast<std::uint16_t>(s));
  }

  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("WriteWav: cannot open " + path);
  file.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  if (!file) throw std::runtime_error("WriteWav: write failed for " + path);
}

WavData ReadWav(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("ReadWav: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                  std::istreambuf_iterator<char>());
  if (bytes.size() < 44 || std::memcmp(bytes.data(), "RIFF", 4) != 0 ||
      std::memcmp(bytes.data() + 8, "WAVE", 4) != 0) {
    throw std::runtime_error("ReadWav: not a RIFF/WAVE file: " + path);
  }

  // Walk chunks for fmt and data.
  std::size_t pos = 12;
  std::uint16_t channels = 0, bits = 0;
  std::uint32_t rate = 0;
  const std::uint8_t* data_ptr = nullptr;
  std::uint32_t data_len = 0;
  while (pos + 8 <= bytes.size()) {
    const char* id = reinterpret_cast<const char*>(bytes.data() + pos);
    const std::uint32_t len = GetU32(bytes.data() + pos + 4);
    if (pos + 8 + len > bytes.size()) break;
    if (std::memcmp(id, "fmt ", 4) == 0 && len >= 16) {
      const std::uint8_t* p = bytes.data() + pos + 8;
      const std::uint16_t format = GetU16(p);
      if (format != 1) throw std::runtime_error("ReadWav: not PCM: " + path);
      channels = GetU16(p + 2);
      rate = GetU32(p + 4);
      bits = GetU16(p + 14);
    } else if (std::memcmp(id, "data", 4) == 0) {
      data_ptr = bytes.data() + pos + 8;
      data_len = len;
    }
    pos += 8 + len + (len % 2);  // chunks are word-aligned
  }
  if (data_ptr == nullptr || channels == 0) {
    throw std::runtime_error("ReadWav: missing fmt/data chunk: " + path);
  }
  if (bits != 16) throw std::runtime_error("ReadWav: expected 16-bit PCM");

  WavData wav;
  wav.sample_rate_hz = static_cast<double>(rate);
  const std::size_t frames = data_len / (2u * channels);
  wav.samples.resize(frames);
  for (std::size_t i = 0; i < frames; ++i) {
    const auto s = static_cast<std::int16_t>(
        GetU16(data_ptr + i * 2u * channels));  // first channel
    wav.samples[i] = static_cast<double>(s) / 32768.0;
  }
  return wav;
}

}  // namespace wearlock::audio
