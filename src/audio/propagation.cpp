#include "audio/propagation.h"

#include <cmath>
#include <stdexcept>

#include "dsp/filter.h"
#include "dsp/resample.h"
#include "dsp/spl.h"

namespace wearlock::audio {

PropagationSpec PropagationSpec::Los() { return PropagationSpec{}; }

PropagationSpec PropagationSpec::IndoorLos() {
  PropagationSpec spec;
  spec.taps = {
      {.extra_distance_m = 0.6, .gain = 0.18},
      {.extra_distance_m = 1.4, .gain = 0.08},
  };
  return spec;
}

PropagationSpec PropagationSpec::BodyBlockedNlos() {
  PropagationSpec spec;
  // Hand/body shadowing: low audible frequencies diffract through at
  // modest loss; the direct path above ~3 kHz (and all of the 15-20 kHz
  // band) is effectively gone. Reflections route around the body.
  spec.direct_gain = 0.5;
  spec.direct_lowpass_hz = 4500.0;
  spec.taps = {
      {.extra_distance_m = 0.5, .gain = 0.25},
      {.extra_distance_m = 1.1, .gain = 0.18},
      {.extra_distance_m = 2.3, .gain = 0.12},
      {.extra_distance_m = 3.6, .gain = 0.06},
  };
  return spec;
}

PropagationModel::PropagationModel(PropagationSpec spec) : spec_(spec) {
  if (spec_.reference_distance_m <= 0.0) {
    throw std::invalid_argument("PropagationModel: d0 must be positive");
  }
}

double PropagationModel::GainAt(double distance_m) const {
  return std::pow(10.0, -LossDbAt(distance_m) / 20.0);
}

double PropagationModel::LossDbAt(double distance_m) const {
  return wearlock::dsp::SpreadingLossDb(distance_m, spec_.reference_distance_m,
                                        spec_.geometric_constant);
}

Samples PropagationModel::Propagate(const Samples& emitted,
                                    double distance_m) const {
  if (distance_m < spec_.reference_distance_m) {
    throw std::invalid_argument(
        "PropagationModel: receiver closer than reference distance");
  }
  const double direct_gain = GainAt(distance_m) * spec_.direct_gain;
  const double direct_delay =
      distance_m / kSpeedOfSound * kSampleRate;

  Samples out;
  {
    Samples direct = wearlock::dsp::DelayFractional(emitted, direct_delay);
    if (spec_.direct_lowpass_hz > 0.0) {
      auto lpf = wearlock::dsp::BiquadCascade::ButterworthLowPass(
          spec_.direct_lowpass_hz, kSampleRate, 2);
      direct = lpf.ProcessBlock(direct);
    }
    Scale(direct, direct_gain);
    out = std::move(direct);
  }
  for (const MultipathTap& tap : spec_.taps) {
    const double path_m = distance_m + tap.extra_distance_m;
    const double tap_gain = GainAt(path_m) * tap.gain;
    const double tap_delay = path_m / kSpeedOfSound * kSampleRate;
    Samples echo = wearlock::dsp::DelayFractional(emitted, tap_delay);
    Scale(echo, tap_gain);
    MixInto(out, echo);
  }
  return out;
}

}  // namespace wearlock::audio
