// Mono PCM buffer type and elementwise helpers shared across the
// acoustic simulator and the modem.
#pragma once

#include <cstddef>
#include <vector>

namespace wearlock::audio {

/// Mono audio at the session sample rate; values are dimensionless
/// "digital pressure" (see dsp::kReferencePressure for SPL calibration).
using Samples = std::vector<double>;

/// The sampling rate used throughout the system (native rate of the
/// paper's devices).
inline constexpr double kSampleRate = 44100.0;

/// y += x (x may be shorter; added from offset 0). Grows y if x is longer.
void MixInto(Samples& y, const Samples& x);

/// y += x starting at sample `offset` in y; grows y if needed.
void MixIntoAt(Samples& y, const Samples& x, std::size_t offset);

/// Elementwise scale in place.
void Scale(Samples& x, double gain);

/// Hard-clip to [-limit, limit] (speaker/mic saturation).
void Clip(Samples& x, double limit);

/// Concatenate b onto a.
void Append(Samples& a, const Samples& b);

/// A silent buffer of n samples.
Samples Silence(std::size_t n);

/// Seconds -> whole samples at kSampleRate (rounded).
std::size_t SamplesFromSeconds(double seconds);

}  // namespace wearlock::audio
