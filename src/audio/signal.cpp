#include "audio/signal.h"

#include <algorithm>
#include <cmath>

namespace wearlock::audio {

void MixInto(Samples& y, const Samples& x) { MixIntoAt(y, x, 0); }

void MixIntoAt(Samples& y, const Samples& x, std::size_t offset) {
  if (offset + x.size() > y.size()) y.resize(offset + x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) y[offset + i] += x[i];
}

void Scale(Samples& x, double gain) {
  for (double& v : x) v *= gain;
}

void Clip(Samples& x, double limit) {
  for (double& v : x) v = std::clamp(v, -limit, limit);
}

void Append(Samples& a, const Samples& b) {
  a.insert(a.end(), b.begin(), b.end());
}

Samples Silence(std::size_t n) { return Samples(n, 0.0); }

std::size_t SamplesFromSeconds(double seconds) {
  return static_cast<std::size_t>(std::lround(seconds * kSampleRate));
}

}  // namespace wearlock::audio
