// AcousticChannel: one transmitter -> receiver acoustic path with
// environment noise, assembled from the speaker, propagation, microphone
// and noise models. This is what the paper's physical testbed (phone
// speaker, air, watch mic, ambient room) collapses into for simulation.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "audio/microphone.h"
#include "audio/noise.h"
#include "audio/propagation.h"
#include "audio/signal.h"
#include "audio/speaker.h"
#include "sim/rng.h"

namespace wearlock::audio {

struct ChannelConfig {
  SpeakerModel speaker{};
  MicrophoneModel microphone = MicrophoneModel::Watch();
  PropagationSpec propagation = PropagationSpec::Los();
  double distance_m = 0.5;
  Environment environment = Environment::kQuietRoom;
  /// When set, overrides `environment` (e.g. the calibrated white-noise
  /// source used for the Fig. 5 Eb/N0 sweep).
  std::optional<NoiseProfile> custom_noise;
  /// Ambient noise recorded before the signal arrives (samples); gives
  /// the receiver material for noise-floor estimation and gives the
  /// protocol its pre-preamble ambient window.
  std::size_t lead_in_samples = 4096;
  std::size_t lead_out_samples = 1024;
  /// RMS of the receive-chain phase jitter (radians). Models ADC clock
  /// jitter / hand micro-Doppler: corrupts the phase dimension while
  /// leaving envelopes nearly intact - the reason the paper's hardware
  /// favours ASK over PSK per bit and cannot use 16QAM.
  double phase_noise_rad = 0.04;
  /// Bandwidth of the phase-jitter process (Hz). Faster than the symbol
  /// rate, so per-symbol pilot equalization cannot fully track it.
  double phase_noise_bw_hz = 600.0;
  /// Radial velocity of the receiver (m/s, positive = approaching).
  /// Walking while unlocking Doppler-shifts the whole signal by a factor
  /// (1 + v/c); the chirp preamble is chosen precisely because its
  /// correlation tolerates this (paper SIII-3).
  double radial_velocity_mps = 0.0;
};

/// Result of pushing a signal through the channel.
struct Reception {
  Samples recording;          ///< what the receiving mic captured
  std::size_t signal_start;   ///< ground-truth first sample of the signal
  double spl_signal_at_rx;    ///< SPL of the clean signal component
  double spl_noise_at_rx;     ///< SPL of the noise component
};

class AcousticChannel {
 public:
  AcousticChannel(ChannelConfig config, sim::Rng rng);

  /// Transmit `signal` at speaker `volume`; returns the receiver-side
  /// recording (lead-in noise + propagated signal + noise + lead-out).
  Reception Transmit(const Samples& signal, double volume);

  /// Ambient-only recording of n samples (for probing / co-location).
  Samples RecordAmbient(std::size_t n);

  /// Install (or clear) a tone jammer audible at the receiver.
  void SetJammer(std::optional<ToneJammer> jammer);

  /// Change the TX->RX distance between transmissions.
  void set_distance(double distance_m);
  double distance() const { return config_.distance_m; }

  /// Replace the propagation spec (e.g. switch LOS -> body-blocked NLOS).
  void set_propagation(const PropagationSpec& spec);

  const ChannelConfig& config() const { return config_; }

 private:
  Samples MakeNoise(std::size_t n);

  ChannelConfig config_;
  PropagationModel propagation_;
  NoiseSource ambient_;
  std::optional<ToneJammer> jammer_;
  sim::Rng rng_;
};

}  // namespace wearlock::audio
