#include "audio/scene.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "dsp/filter.h"
#include "dsp/hilbert.h"
#include "dsp/spl.h"

namespace wearlock::audio {
namespace {

NoiseSource MakeAmbient(const SceneConfig& config, sim::Rng rng) {
  if (config.custom_noise) return NoiseSource(*config.custom_noise, std::move(rng));
  return NoiseSource(config.environment, std::move(rng));
}

/// The Tg-vs-reverberation bound (paper SIII): the speaker keeps
/// radiating for ringing_tail_s after the input stops, and the frame's
/// guard interval must exceed that "largest reverberation length" or
/// the tail smears into the first OFDM symbol. Before this check the
/// bound lived only in a speaker.h comment and an oversized tail was
/// silently absorbed into the symbols.
void ValidateGuardBudget(const SceneConfig& config) {
  const std::size_t tail =
      SamplesFromSeconds(config.phone_speaker.spec().ringing_tail_s);
  if (tail > config.guard_budget_samples) {
    throw std::invalid_argument(
        "TwoMicScene: speaker ringing tail (" + std::to_string(tail) +
        " samples) exceeds the guard interval Tg (" +
        std::to_string(config.guard_budget_samples) +
        " samples); lengthen the guard or shorten the tail");
  }
}

}  // namespace

TwoMicScene::TwoMicScene(SceneConfig config, sim::Rng rng)
    : config_(config),
      propagation_(config.propagation),
      shared_ambient_(MakeAmbient(config, rng.Fork())),
      watch_ambient_(MakeAmbient(config, rng.Fork())),
      rng_(std::move(rng)) {
  ValidateGuardBudget(config_);
}

void TwoMicScene::ArmImpairments(const ImpairmentPlan& plan, sim::Rng rng,
                                 std::size_t rx_guard_samples) {
  impairments_.emplace(plan, std::move(rng), rx_guard_samples);
}

void TwoMicScene::AdvanceTimeMs(double ms) {
  if (impairments_ && ms > 0.0) {
    impairments_->AdvanceCursor(SamplesFromSeconds(ms / 1000.0));
  }
}

void TwoMicScene::set_propagation(const PropagationSpec& spec) {
  config_.propagation = spec;
  propagation_ = PropagationModel(spec);
}

Samples TwoMicScene::MicNoise(std::size_t n, const MicrophoneModel& mic) {
  const double rms = wearlock::dsp::RmsFromSpl(mic.spec().self_noise_spl);
  return rng_.GaussianVector(n, rms);
}

Samples TwoMicScene::ApplyPhaseJitter(Samples x) {
  if (config_.phase_noise_rad <= 0.0 || x.empty()) return x;
  Samples theta = rng_.GaussianVector(x.size());
  if (config_.phase_noise_bw_hz > 0.0 &&
      config_.phase_noise_bw_hz < kSampleRate / 2.0) {
    wearlock::dsp::Biquad lpf =
        wearlock::dsp::Biquad::LowPass(config_.phase_noise_bw_hz, kSampleRate);
    theta = lpf.ProcessBlock(theta);
  }
  const double rms = wearlock::dsp::Rms(theta);
  if (rms > 0.0) Scale(theta, config_.phase_noise_rad / rms);
  return wearlock::dsp::RotatePhase(x, theta);
}

SceneReception TwoMicScene::TransmitFromPhone(const Samples& signal,
                                              double volume) {
  const Samples emitted = config_.phone_speaker.Emit(signal, volume);

  // Watch side: propagate, jitter, then sit it in ambient noise.
  Samples at_watch =
      ApplyPhaseJitter(propagation_.Propagate(emitted, config_.distance_m));
  if (impairments_) {
    // SRO/Doppler warp + room late field, as the watch's clock hears it.
    at_watch = impairments_->ApplyWatchPath(std::move(at_watch));
  }
  const std::size_t total = config_.lead_in_samples + at_watch.size() +
                            config_.lead_out_samples +
                            (impairments_ ? impairments_->rx_guard_samples() : 0);

  Samples shared = SharedAmbient(total);
  Samples watch_pressure =
      config_.co_located ? shared : IndependentAmbient(total);
  if (jammer_) MixInto(watch_pressure, jammer_->Generate(total));
  MixInto(watch_pressure, MicNoise(total, config_.watch_mic));
  // Contending neighbors and noise bursts are environmental events:
  // both co-located mics hear the same waveform (the ambient-similarity
  // filter must keep working under contention).
  Samples neighbor;
  Samples burst;
  if (impairments_) {
    if (impairments_->has_neighbors()) {
      neighbor = impairments_->NeighborWaveform(total);
      MixInto(watch_pressure, neighbor);
    }
    burst = impairments_->MaybeBurst(total, wearlock::dsp::Rms(watch_pressure));
    if (!burst.empty()) MixInto(watch_pressure, burst);
  }
  const double watch_noise_spl = wearlock::dsp::SplOf(watch_pressure);
  MixIntoAt(watch_pressure, at_watch, config_.lead_in_samples);

  // Phone side: self-recording at the reference distance (its own mic is
  // d0 from its speaker).
  Samples at_phone = propagation_.Propagate(
      emitted, propagation_.spec().reference_distance_m);
  Samples phone_pressure = std::move(shared);
  phone_pressure.resize(total, 0.0);
  MixInto(phone_pressure, MicNoise(total, config_.phone_mic));
  if (!neighbor.empty()) MixInto(phone_pressure, neighbor);
  if (!burst.empty()) MixInto(phone_pressure, burst);
  MixIntoAt(phone_pressure, at_phone, config_.lead_in_samples);

  if (impairments_) {
    // The watch's capture window opened early by the accumulated clock
    // offset: content slides later, the tail past the window is lost.
    watch_pressure = impairments_->ShiftCaptureWindow(
        std::move(watch_pressure), config_.lead_in_samples);
    impairments_->AdvanceCursor(total);
  }

  SceneReception r;
  r.signal_start = config_.lead_in_samples;
  r.watch_spl_signal = wearlock::dsp::SplOf(at_watch);
  r.watch_spl_noise = watch_noise_spl;
  r.phone_recording = config_.phone_mic.Capture(phone_pressure);
  r.watch_recording = config_.watch_mic.Capture(watch_pressure);
  return r;
}

std::pair<Samples, Samples> TwoMicScene::RecordAmbientPair(std::size_t n) {
  Samples shared = SharedAmbient(n);
  Samples phone_pressure = shared;
  MixInto(phone_pressure, MicNoise(n, config_.phone_mic));
  Samples watch_pressure = config_.co_located ? std::move(shared)
                                              : IndependentAmbient(n);
  if (jammer_) MixInto(watch_pressure, jammer_->Generate(n));
  MixInto(watch_pressure, MicNoise(n, config_.watch_mic));
  if (impairments_) {
    if (impairments_->has_neighbors()) {
      const Samples neighbor = impairments_->NeighborWaveform(n);
      MixInto(phone_pressure, neighbor);
      MixInto(watch_pressure, neighbor);
    }
    const Samples burst =
        impairments_->MaybeBurst(n, wearlock::dsp::Rms(watch_pressure));
    if (!burst.empty()) {
      MixInto(phone_pressure, burst);
      MixInto(watch_pressure, burst);
    }
    impairments_->AdvanceCursor(n);
  }
  return {config_.phone_mic.Capture(phone_pressure),
          config_.watch_mic.Capture(watch_pressure)};
}

Samples TwoMicScene::RecordAtDistance(const Samples& signal, double volume,
                                      double eavesdropper_distance_m,
                                      const PropagationSpec& path,
                                      double gain_db) {
  const Samples emitted = config_.phone_speaker.Emit(signal, volume);
  PropagationModel prop(path);
  Samples at_ear =
      ApplyPhaseJitter(prop.Propagate(emitted, eavesdropper_distance_m));
  if (gain_db != 0.0) Scale(at_ear, std::pow(10.0, gain_db / 20.0));
  const std::size_t total =
      config_.lead_in_samples + at_ear.size() + config_.lead_out_samples;
  Samples pressure = IndependentAmbient(total);
  MixInto(pressure, MicNoise(total, config_.phone_mic));
  MixIntoAt(pressure, at_ear, config_.lead_in_samples);
  // Assume the attacker carries full-band recording gear.
  return MicrophoneModel::Phone().Capture(pressure);
}

Samples TwoMicScene::SharedAmbient(std::size_t n) {
  return shared_ambient_.Generate(n);
}

Samples TwoMicScene::IndependentAmbient(std::size_t n) {
  return watch_ambient_.Generate(n);
}

}  // namespace wearlock::audio
