// Ambient noise sources and the tone jammer.
//
// BER in WearLock is driven by in-band noise power, so each of the
// paper's test environments (quiet room, office, classroom, cafe, grocery
// store) is modeled as shaped Gaussian noise - energy concentrated below
// a few kHz, as the paper notes ("the frequency range of most ambient
// noise in our scenarios is below 15kHz") - plus environment-specific
// tonal components (HVAC, machinery), calibrated to a target SPL.
//
// The ToneJammer reproduces the Fig. 9 experiment: an external speaker
// (Audacity, <= 6 mono tracks) playing sine tones into chosen OFDM
// sub-channels.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "audio/signal.h"
#include "sim/rng.h"

namespace wearlock::audio {

enum class Environment {
  kQuietRoom,     // the paper's reference: 15-20 dB SPL
  kOffice,
  kClassroom,
  kCafe,
  kGroceryStore,
};

std::string ToString(Environment env);

struct NoiseProfile {
  double spl_db = 17.0;          ///< target ambient SPL
  double lowpass_hz = 1200.0;    ///< bulk-energy shaping cutoff
  double broadband_mix = 0.15;   ///< fraction of unshaped (white) energy
  std::vector<double> tone_hz;   ///< machinery/HVAC tones
  double tone_mix = 0.0;         ///< fraction of energy in tones

  static NoiseProfile For(Environment env);
};

/// Generates ambient noise buffers at a calibrated SPL. Each source holds
/// its own RNG stream, so two co-located receivers can share one source
/// (correlated ambience) while distant ones use independent sources - the
/// property the Sound-Proof-style co-location filter relies on.
class NoiseSource {
 public:
  NoiseSource(NoiseProfile profile, sim::Rng rng);
  NoiseSource(Environment env, sim::Rng rng);

  /// n samples of ambient noise at the profile's SPL.
  Samples Generate(std::size_t n);

  const NoiseProfile& profile() const { return profile_; }

 private:
  NoiseProfile profile_;
  sim::Rng rng_;
  double tone_phase_seed_;
  std::size_t samples_generated_ = 0;  // keeps tone phase continuous
};

/// Up to `kMaxTones` sine tones, each aimed at the centre frequency of an
/// OFDM sub-channel (bin index at a given FFT size / sample rate).
class ToneJammer {
 public:
  static constexpr std::size_t kMaxTones = 6;  // Audacity's track limit

  /// @param bin_indices FFT bin indices to jam (1-based like the paper's
  /// channel indexing); at most kMaxTones entries.
  /// @param fft_size FFT size defining bin width.
  /// @param spl_db jammer loudness at the victim microphone.
  /// @throws std::invalid_argument if more than kMaxTones bins are given.
  ToneJammer(std::vector<std::size_t> bin_indices, std::size_t fft_size,
             double spl_db);

  /// n samples of the jamming waveform.
  Samples Generate(std::size_t n) const;

  const std::vector<std::size_t>& bins() const { return bins_; }
  double spl_db() const { return spl_db_; }

 private:
  std::vector<std::size_t> bins_;
  std::size_t fft_size_;
  double spl_db_;
};

}  // namespace wearlock::audio
