#include "audio/noise.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/filter.h"
#include "dsp/spl.h"

namespace wearlock::audio {
namespace {
constexpr double kPi = std::numbers::pi;

/// Rescale x so its SPL is spl_db (no-op on silent buffers).
void CalibrateSpl(Samples& x, double spl_db) {
  const double rms = wearlock::dsp::Rms(x);
  if (rms <= 0.0) return;
  Scale(x, wearlock::dsp::RmsFromSpl(spl_db) / rms);
}

}  // namespace

std::string ToString(Environment env) {
  switch (env) {
    case Environment::kQuietRoom: return "Quiet Room";
    case Environment::kOffice: return "Office";
    case Environment::kClassroom: return "Class Room";
    case Environment::kCafe: return "Cafe";
    case Environment::kGroceryStore: return "Grocery Store";
  }
  return "Unknown";
}

NoiseProfile NoiseProfile::For(Environment env) {
  switch (env) {
    case Environment::kQuietRoom:
      // The paper's measurement room: "SPL of ambient noise about 15-20 dB".
      return NoiseProfile{.spl_db = 17.0,
                          .lowpass_hz = 800.0,
                          .broadband_mix = 0.10,
                          .tone_hz = {},
                          .tone_mix = 0.0};
    case Environment::kOffice:
      // Keyboard typing, HVAC.
      return NoiseProfile{.spl_db = 45.0,
                          .lowpass_hz = 1500.0,
                          .broadband_mix = 0.20,
                          .tone_hz = {120.0, 2800.0},
                          .tone_mix = 0.08};
    case Environment::kClassroom:
      // Human voices dominate: energy up to ~3-4 kHz.
      return NoiseProfile{.spl_db = 52.0,
                          .lowpass_hz = 2500.0,
                          .broadband_mix = 0.25,
                          .tone_hz = {},
                          .tone_mix = 0.0};
    case Environment::kCafe:
      // Voices + espresso machinery: loud and broadband.
      return NoiseProfile{.spl_db = 58.0,
                          .lowpass_hz = 3000.0,
                          .broadband_mix = 0.35,
                          .tone_hz = {950.0, 1900.0},
                          .tone_mix = 0.10};
    case Environment::kGroceryStore:
      // Refrigeration hum + PA + voices.
      return NoiseProfile{.spl_db = 55.0,
                          .lowpass_hz = 2000.0,
                          .broadband_mix = 0.30,
                          .tone_hz = {60.0, 180.0, 3500.0},
                          .tone_mix = 0.12};
  }
  throw std::invalid_argument("NoiseProfile::For: unknown environment");
}

NoiseSource::NoiseSource(NoiseProfile profile, sim::Rng rng)
    : profile_(profile), rng_(std::move(rng)) {
  tone_phase_seed_ = rng_.Uniform(0.0, 2.0 * kPi);
}

NoiseSource::NoiseSource(Environment env, sim::Rng rng)
    : NoiseSource(NoiseProfile::For(env), std::move(rng)) {}

Samples NoiseSource::Generate(std::size_t n) {
  Samples white = rng_.GaussianVector(n);

  // Shaped (low-passed) component carries the bulk of ambient energy.
  Samples shaped;
  if (profile_.lowpass_hz > 0.0 && profile_.lowpass_hz < kSampleRate / 2.0) {
    auto lpf = wearlock::dsp::BiquadCascade::ButterworthLowPass(
        profile_.lowpass_hz, kSampleRate, 2);
    shaped = lpf.ProcessBlock(white);
  } else {
    shaped = white;
  }

  const double tone_mix = profile_.tone_hz.empty() ? 0.0 : profile_.tone_mix;
  const double shaped_mix =
      std::max(0.0, 1.0 - profile_.broadband_mix - tone_mix);

  // Normalize each component to unit rms before mixing so the mix
  // fractions are energy fractions.
  auto unit = [](Samples s) {
    const double r = wearlock::dsp::Rms(s);
    if (r > 0.0) Scale(s, 1.0 / r);
    return s;
  };
  Samples out = unit(std::move(shaped));
  Scale(out, std::sqrt(shaped_mix));
  Samples broad = unit(rng_.GaussianVector(n));
  Scale(broad, std::sqrt(profile_.broadband_mix));
  MixInto(out, broad);

  if (tone_mix > 0.0) {
    Samples tones(n, 0.0);
    const double per_tone =
        std::sqrt(tone_mix / static_cast<double>(profile_.tone_hz.size()));
    for (std::size_t t = 0; t < profile_.tone_hz.size(); ++t) {
      const double f = profile_.tone_hz[t];
      const double phase0 =
          tone_phase_seed_ + static_cast<double>(t) * 1.234;
      for (std::size_t i = 0; i < n; ++i) {
        const double time =
            static_cast<double>(samples_generated_ + i) / kSampleRate;
        tones[i] += per_tone * std::sqrt(2.0) *
                    std::sin(2.0 * kPi * f * time + phase0);
      }
    }
    MixInto(out, tones);
  }

  samples_generated_ += n;
  CalibrateSpl(out, profile_.spl_db);
  return out;
}

ToneJammer::ToneJammer(std::vector<std::size_t> bin_indices,
                       std::size_t fft_size, double spl_db)
    : bins_(std::move(bin_indices)), fft_size_(fft_size), spl_db_(spl_db) {
  if (bins_.size() > kMaxTones) {
    throw std::invalid_argument("ToneJammer: at most 6 simultaneous tones");
  }
  if (fft_size_ == 0) throw std::invalid_argument("ToneJammer: zero FFT size");
}

Samples ToneJammer::Generate(std::size_t n) const {
  Samples out(n, 0.0);
  if (bins_.empty()) return out;
  for (std::size_t b : bins_) {
    const double f = static_cast<double>(b) * kSampleRate /
                     static_cast<double>(fft_size_);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / kSampleRate;
      out[i] += std::sin(2.0 * kPi * f * t + 0.731 * static_cast<double>(b));
    }
  }
  const double rms = wearlock::dsp::Rms(out);
  if (rms > 0.0) Scale(out, wearlock::dsp::RmsFromSpl(spl_db_) / rms);
  return out;
}

}  // namespace wearlock::audio
