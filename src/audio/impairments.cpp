#include "audio/impairments.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "dsp/filter.h"
#include "dsp/resample.h"
#include "dsp/spl.h"
#include "obs/instrument.h"
#include "obs/json.h"

namespace wearlock::audio {
namespace {

constexpr double kPi = std::numbers::pi;
/// Speed of sound (m/s) - matches the propagation model's constant.
constexpr double kSpeedOfSoundMps = 343.0;

/// Direct-to-reverberant ratio of the parametric late field (dB). Small
/// rooms at sub-metre range keep the direct path well above the tail;
/// what hurts the modem is the tail *beyond* the cyclic prefix.
constexpr double kDirectToReverbDb = 9.0;
/// The late field starts after this pre-delay (first reflections are
/// already in the PropagationSpec taps).
constexpr double kReverbPredelayS = 0.004;

/// Bins a neighboring WearLock pair parks on: the Audible() default
/// data set (neighbors run the same stack we do). Kept as literals so
/// the audio layer stays below modem in the layer DAG.
constexpr std::size_t kNeighborCandidateBins[] = {16, 17, 18, 20, 21, 22,
                                                  24, 25, 26, 28, 29, 30};
constexpr std::size_t kNeighborFftSize = 256;

double ParseNumber(const std::string& entry, const std::string& text) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("ImpairmentPlan: bad number in '" + entry +
                                "'");
  }
  if (used != text.size()) {
    throw std::invalid_argument("ImpairmentPlan: trailing junk in '" + entry +
                                "'");
  }
  return v;
}

std::string Fmt(const char* format, double a, double b = 0.0) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return buf;
}

}  // namespace

bool ImpairmentPlan::empty() const {
  return sro_ppm == 0.0 && doppler_mps == 0.0 && reverb_rt60_ms == 0.0 &&
         burst_p == 0.0 && pairs == 0;
}

ImpairmentPlan ImpairmentPlan::Parse(const std::string& spec) {
  ImpairmentPlan plan;
  plan.spec = spec;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("ImpairmentPlan: expected key=value, got '" +
                                  entry + "'");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "sro") {
      plan.sro_ppm = ParseNumber(entry, value);
      if (plan.sro_ppm < 0.0 || plan.sro_ppm > 500.0) {
        throw std::invalid_argument(
            "ImpairmentPlan: sro ppm out of [0,500] in '" + entry + "'");
      }
    } else if (key == "doppler") {
      plan.doppler_mps = ParseNumber(entry, value);
      if (std::abs(plan.doppler_mps) > 5.0) {
        throw std::invalid_argument(
            "ImpairmentPlan: |doppler| > 5 m/s in '" + entry + "'");
      }
    } else if (key == "reverb") {
      plan.reverb_rt60_ms = ParseNumber(entry, value);
      if (plan.reverb_rt60_ms < 0.0 || plan.reverb_rt60_ms > 2000.0) {
        throw std::invalid_argument(
            "ImpairmentPlan: reverb RT60 out of [0,2000] ms in '" + entry +
            "'");
      }
    } else if (key == "burst") {
      std::string p = value;
      const std::size_t x = value.find('x');
      if (x != std::string::npos) {
        p = value.substr(0, x);
        plan.burst_mult = ParseNumber(entry, value.substr(x + 1));
        if (plan.burst_mult < 1.0) {
          throw std::invalid_argument(
              "ImpairmentPlan: burst multiplier must be >= 1 in '" + entry +
              "'");
        }
      }
      plan.burst_p = ParseNumber(entry, p);
      if (plan.burst_p < 0.0 || plan.burst_p > 1.0) {
        throw std::invalid_argument(
            "ImpairmentPlan: burst probability out of [0,1] in '" + entry +
            "'");
      }
    } else if (key == "pairs") {
      const double n = ParseNumber(entry, value);
      if (n < 0.0 || n > 64.0 || n != std::floor(n)) {
        throw std::invalid_argument(
            "ImpairmentPlan: pairs must be an integer in [0,64] in '" + entry +
            "'");
      }
      plan.pairs = static_cast<std::size_t>(n);
    } else {
      throw std::invalid_argument("ImpairmentPlan: unknown key '" + key + "'");
    }
  }
  return plan;
}

std::string ChannelTraceJsonl(const std::vector<ChannelEvent>& events) {
  std::string out;
  for (const ChannelEvent& e : events) {
    out += "{\"at_ms\":" + obs::JsonNumber(e.at_ms) + ",\"channel\":\"" +
           obs::JsonEscape(e.kind) + "\",\"detail\":\"" +
           obs::JsonEscape(e.detail) + "\"}\n";
  }
  return out;
}

bool NeighborTransmitter::ActiveAt(std::size_t t) const {
  if (period_samples == 0) return false;
  return (t + offset_samples) % period_samples < on_samples;
}

ChannelImpairments::ChannelImpairments(ImpairmentPlan plan, sim::Rng rng,
                                       std::size_t rx_guard_samples)
    : plan_(std::move(plan)), rng_(std::move(rng)), rx_guard_(rx_guard_samples) {
  // Fixed draw order - (1) reverb tail, (2) neighbor schedules - so a
  // plan field toggles its own draws without shifting the others' only
  // when *later* in this sequence; the order is part of the replay
  // contract (docs/channels.md).
  warp_rate_ = (1.0 + plan_.sro_ppm * 1e-6) /
               (1.0 + plan_.doppler_mps / kSpeedOfSoundMps);
  window_shift_ = static_cast<std::size_t>(
      std::llround(plan_.sro_ppm * 1e-6 * plan_.clock_age_s * kSampleRate));
  Record("impairments-armed",
         plan_.spec.empty() ? std::string("<fields>") : plan_.spec);
  if (window_shift_ > 0) {
    Record("sro-window-shift",
           Fmt("shift=%.0f samples, guard=%.0f", double(window_shift_),
               double(rx_guard_)));
  }
  if (warp_rate_ != 1.0) {
    Record("warp", Fmt("rate=%.1f ppm", (warp_rate_ - 1.0) * 1e6));
  }

  if (plan_.reverb_rt60_ms > 0.0) {
    // Parametric late field: dense Gaussian tail under an exponential
    // -60 dB/RT60 envelope, energy-normalized to kDirectToReverbDb
    // below the (unit) direct path. Rendered once per scene so every
    // capture sees the same room.
    const double rt60_s = plan_.reverb_rt60_ms / 1000.0;
    const std::size_t predelay = SamplesFromSeconds(kReverbPredelayS);
    // The tail is rendered until it decays 60 dB (one RT60), capped so
    // the convolution stays affordable at the RT60 grammar maximum.
    const std::size_t tail = SamplesFromSeconds(std::min(rt60_s, 0.6));
    reverb_ir_.assign(predelay + tail, 0.0);
    reverb_ir_[0] = 1.0;  // direct path (taps model the early part)
    Samples noise = rng_.GaussianVector(tail);
    double energy = 0.0;
    for (std::size_t i = 0; i < tail; ++i) {
      const double t = static_cast<double>(i) / kSampleRate;
      noise[i] *= std::pow(10.0, -3.0 * t / rt60_s);
      energy += noise[i] * noise[i];
    }
    const double target = std::pow(10.0, -kDirectToReverbDb / 10.0);
    const double gain = energy > 0.0 ? std::sqrt(target / energy) : 0.0;
    for (std::size_t i = 0; i < tail; ++i) {
      reverb_ir_[predelay + i] = noise[i] * gain;
    }
    Record("reverb-armed", Fmt("rt60=%.0f ms, ir=%.0f taps",
                               plan_.reverb_rt60_ms,
                               static_cast<double>(reverb_ir_.size())));
  }

  neighbors_.reserve(plan_.pairs);
  constexpr std::size_t kCandidates =
      sizeof(kNeighborCandidateBins) / sizeof(kNeighborCandidateBins[0]);
  for (std::size_t p = 0; p < plan_.pairs; ++p) {
    NeighborTransmitter tx;
    const std::size_t n_bins =
        4 + static_cast<std::size_t>(rng_.UniformInt(0, 2));
    std::vector<std::size_t> pool(kNeighborCandidateBins,
                                  kNeighborCandidateBins + kCandidates);
    for (std::size_t b = 0; b < n_bins; ++b) {
      const std::size_t pick =
          static_cast<std::size_t>(rng_.UniformInt(0, pool.size() - 1));
      tx.bins.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    std::sort(tx.bins.begin(), tx.bins.end());
    tx.period_samples = SamplesFromSeconds(rng_.Uniform(1.2, 2.2));
    tx.on_samples = static_cast<std::size_t>(
        static_cast<double>(tx.period_samples) * rng_.Uniform(0.25, 0.45));
    tx.offset_samples = static_cast<std::size_t>(
        rng_.UniformInt(0, tx.period_samples - 1));
    tx.spl_db = rng_.Uniform(52.0, 62.0);
    for (std::size_t b = 0; b < tx.bins.size(); ++b) {
      tx.phases.push_back(rng_.Uniform(0.0, 2.0 * kPi));
    }
    std::string bins;
    for (std::size_t bin : tx.bins) bins += std::to_string(bin) + " ";
    Record("neighbor-armed",
           "pair " + std::to_string(p) + ": bins " + bins +
               Fmt("spl=%.1f dB, duty=%.2f", tx.spl_db,
                   static_cast<double>(tx.on_samples) /
                       static_cast<double>(tx.period_samples)));
    neighbors_.push_back(std::move(tx));
  }
}

void ChannelImpairments::Record(const std::string& kind,
                                const std::string& detail) {
  events_.push_back(
      {kind, detail, 1000.0 * static_cast<double>(cursor_) / kSampleRate});
  WL_COUNT("impairments." + kind);
}

void ChannelImpairments::RecordEvent(const std::string& kind,
                                     const std::string& detail, double at_ms) {
  events_.push_back({kind, detail, at_ms});
  WL_COUNT("impairments." + kind);
}

Samples ChannelImpairments::ApplyWatchPath(Samples at_watch) {
  if (warp_rate_ != 1.0) {
    at_watch = dsp::WarpTimeSinc(at_watch, warp_rate_);
  }
  if (!reverb_ir_.empty()) {
    at_watch = dsp::Convolve(at_watch, reverb_ir_);
  }
  return at_watch;
}

Samples ChannelImpairments::ShiftCaptureWindow(
    Samples rendered, std::size_t ambient_head_samples) {
  if (window_shift_ == 0 || rendered.empty()) return rendered;
  const std::size_t n = rendered.size();
  const std::size_t shift = std::min(window_shift_, n);
  Samples out(n, 0.0);
  // Head: the watch's window opened `shift` samples before the scene's
  // nominal start. We have no pre-render ambience, so tile the
  // rendering's own signal-free lead-in over the gap - never the signal
  // region, which would duplicate the frame head into the capture.
  const std::size_t tile = std::min(ambient_head_samples, n);
  if (tile > 0) {
    for (std::size_t i = 0; i < shift; ++i) out[i] = rendered[i % tile];
  }
  // Body: content lands `shift` samples late; whatever ran past the
  // window's end is gone - the truncation the RX guard exists to
  // absorb. shift == n leaves the all-ambience head: the whole frame
  // ran past a window this badly misaligned.
  std::copy(rendered.begin(),
            rendered.end() - static_cast<std::ptrdiff_t>(shift),
            out.begin() + static_cast<std::ptrdiff_t>(shift));
  return out;
}

Samples ChannelImpairments::MaybeBurst(std::size_t n, double ambient_rms) {
  if (plan_.burst_p <= 0.0 || n == 0) return {};
  if (!rng_.Chance(plan_.burst_p)) return {};
  const double start_frac = rng_.Uniform(0.0, 0.8);
  const double len_s = rng_.Uniform(0.05, 0.25);
  const std::size_t start =
      static_cast<std::size_t>(start_frac * static_cast<double>(n));
  const std::size_t len = std::min(SamplesFromSeconds(len_s), n - start);
  const Samples burst = rng_.GaussianVector(len, ambient_rms * plan_.burst_mult);
  Samples out(n, 0.0);
  for (std::size_t i = 0; i < len; ++i) out[start + i] = burst[i];
  Record("burst", Fmt("at=+%.0f samples, %.0f samples long",
                      static_cast<double>(start), static_cast<double>(len)));
  return out;
}

Samples ChannelImpairments::NeighborWaveform(std::size_t n) const {
  Samples out(n, 0.0);
  for (const NeighborTransmitter& tx : neighbors_) {
    if (tx.bins.empty()) continue;
    const double rms = wearlock::dsp::RmsFromSpl(tx.spl_db);
    const double amp =
        rms * std::numbers::sqrt2 / std::sqrt(static_cast<double>(tx.bins.size()));
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t t = cursor_ + i;
      if (!tx.ActiveAt(t)) continue;
      double s = 0.0;
      for (std::size_t b = 0; b < tx.bins.size(); ++b) {
        const double f = static_cast<double>(tx.bins[b]) * kSampleRate /
                         static_cast<double>(kNeighborFftSize);
        s += amp * std::sin(2.0 * kPi * f * static_cast<double>(t) /
                                kSampleRate +
                            tx.phases[b]);
      }
      out[i] += s;
    }
  }
  return out;
}

}  // namespace wearlock::audio
