// TwoMicScene: the full acoustic scene of an unlock attempt - one phone
// (speaker + self-recording mic) and one watch (mic only) in a shared
// environment.
//
// Unlike AcousticChannel (single TX->RX path, used for modem-level
// experiments), the scene renders *both* device recordings from one
// shared ambient-noise waveform when the devices are co-located. That
// correlation is exactly what the Sound-Proof-style ambient similarity
// filter keys on; scenes with co_located=false give each mic independent
// ambience of the same environment class.
#pragma once

#include <cstddef>
#include <optional>

#include "audio/impairments.h"
#include "audio/microphone.h"
#include "audio/noise.h"
#include "audio/propagation.h"
#include "audio/signal.h"
#include "audio/speaker.h"
#include "sim/rng.h"

namespace wearlock::audio {

struct SceneConfig {
  SpeakerModel phone_speaker{};
  MicrophoneModel phone_mic = MicrophoneModel::Phone();
  MicrophoneModel watch_mic = MicrophoneModel::Watch();
  PropagationSpec propagation = PropagationSpec::IndoorLos();
  /// Phone -> watch distance.
  double distance_m = 0.4;
  Environment environment = Environment::kQuietRoom;
  std::optional<NoiseProfile> custom_noise;
  /// Devices share one ambient waveform (same room, within ~1 m)?
  bool co_located = true;
  /// Ambient recorded before/after the signal (samples).
  std::size_t lead_in_samples = 4096;
  std::size_t lead_out_samples = 2048;
  /// Receive-chain phase jitter (see ChannelConfig docs).
  double phase_noise_rad = 0.04;
  double phase_noise_bw_hz = 600.0;
  /// The frame's guard interval Tg (samples). The paper sizes Tg to
  /// exceed the speaker's "largest reverberation length"; the scene
  /// enforces that at build time (a ringing tail longer than the guard
  /// would silently smear into the first OFDM symbol). Matches
  /// modem::FrameSpec::preamble_guard_samples by default.
  std::size_t guard_budget_samples = 1024;
};

/// What both mics captured for one transmission.
struct SceneReception {
  Samples phone_recording;  ///< self-recording (signal at d0, very loud)
  Samples watch_recording;  ///< signal after propagation to distance_m
  std::size_t signal_start = 0;  ///< ground truth (same for both mics)
  double watch_spl_signal = 0.0;
  double watch_spl_noise = 0.0;
};

class TwoMicScene {
 public:
  /// @throws std::invalid_argument if the speaker's ringing tail
  /// exceeds config.guard_budget_samples (the Tg-vs-reverberation
  /// bound the paper sizes the guard interval around).
  TwoMicScene(SceneConfig config, sim::Rng rng);

  /// Phone plays `signal` at `volume`; both mics record.
  SceneReception TransmitFromPhone(const Samples& signal, double volume);

  /// Ambient-only recordings (phone, watch) of n samples each.
  std::pair<Samples, Samples> RecordAmbientPair(std::size_t n);

  /// What a third microphone at `distance_m` (with its own propagation
  /// spec) would capture of the same transmission - the eavesdropper /
  /// co-located-attacker view. Independent ambient mix-in. `gain_db`
  /// models directional (parabolic/shotgun) gear: on-axis signal is
  /// boosted relative to the diffuse ambient and the mic's self-noise,
  /// the attacker-generous worst case.
  Samples RecordAtDistance(const Samples& signal, double volume,
                           double eavesdropper_distance_m,
                           const PropagationSpec& path, double gain_db = 0.0);

  void set_distance(double distance_m) { config_.distance_m = distance_m; }
  void set_propagation(const PropagationSpec& spec);
  void SetJammer(std::optional<ToneJammer> jammer) { jammer_ = std::move(jammer); }
  const SceneConfig& config() const { return config_; }

  /// Arm a channel-impairment plan. The rng must be forked from the
  /// session seed *after* every pre-existing fork (the doctrine in
  /// impairments.h): an unarmed scene never consults it, so unimpaired
  /// sessions replay byte-identically. `rx_guard_samples` extends the
  /// watch's capture window (hardened receiver's drift margin).
  void ArmImpairments(const ImpairmentPlan& plan, sim::Rng rng,
                      std::size_t rx_guard_samples);

  /// Armed impairment state, or nullptr for the clean scene.
  ChannelImpairments* impairments() { return impairments_ ? &*impairments_ : nullptr; }
  const ChannelImpairments* impairments() const {
    return impairments_ ? &*impairments_ : nullptr;
  }

  /// Advance the acoustic timeline without capturing (MAC backoff
  /// waits): neighbors' duty cycles progress while the phone holds off.
  void AdvanceTimeMs(double ms);

 private:
  Samples SharedAmbient(std::size_t n);
  Samples IndependentAmbient(std::size_t n);
  Samples MicNoise(std::size_t n, const MicrophoneModel& mic);
  Samples ApplyPhaseJitter(Samples x);

  SceneConfig config_;
  PropagationModel propagation_;
  NoiseSource shared_ambient_;
  NoiseSource watch_ambient_;  // used when not co-located
  std::optional<ToneJammer> jammer_;
  std::optional<ChannelImpairments> impairments_;
  sim::Rng rng_;
};

}  // namespace wearlock::audio
