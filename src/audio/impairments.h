// Deterministic channel impairments: the crowded-world pack.
//
// The clean-room scene (one watch, one phone, static multipath) is the
// best case every credible aerial-acoustic evaluation sweeps *away*
// from ("Evaluating Acoustic Data Transmission Schemes", PAPERS.md):
//   * sro      - TX/RX sample-rate offset. Consumer clocks drift tens
//     of ppm; the warp over one 50 ms frame is sub-sample, but the
//     *accumulated* offset since the devices last synced clocks shifts
//     the watch's capture window by whole milliseconds, cutting the
//     frame tail out of a nominally-sized recording.
//   * doppler  - a constant-velocity walker. v/c at walking speed is
//     ~4000 ppm: a uniform time warp that both stretches the frame and
//     slides every OFDM tone off its bin centre (inter-carrier
//     interference).
//   * reverb   - parametric RT60 room tail layered on the existing
//     multipath taps: a sparse velvet-noise late field with
//     exponential decay, applied to the watch path after propagation.
//   * burst    - nonstationary ambient: probabilistic loud noise
//     bursts inside a capture (door slam, passing cart).
//   * pairs    - N co-located WearLock pairs sharing the band. Each
//     neighbor is a duty-cycled multitone transmitter parked on a
//     deterministic subset of the audible OFDM bins, mixed into both
//     mics of the shared scene - the contention the acoustic MAC and
//     the carrier-sense sub-band reselection exist for.
//
// RNG-fork doctrine (docs/channels.md): the impairment stream forks
// from the session RNG *after* the scene/link/motion/fault forks, and
// the scene only consults it when a plan is armed, so unimpaired
// sessions replay byte-identically with or without this module linked.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "audio/signal.h"
#include "sim/rng.h"

namespace wearlock::audio {

/// Declarative description of the channel impairments to simulate.
/// Defaults are all-off; a default plan leaves the scene untouched.
struct ImpairmentPlan {
  /// TX clock fast relative to RX by this many parts-per-million
  /// (>= 0; the emitted waveform is fractionally resampled and the
  /// watch capture window slides by sro * clock_age_s).
  double sro_ppm = 0.0;
  /// Radial walker velocity, m/s; positive recedes (stretches),
  /// negative approaches (compresses). |v| <= 5 m/s.
  double doppler_mps = 0.0;
  /// Room RT60 (ms): time for the late reverb field to decay 60 dB.
  double reverb_rt60_ms = 0.0;
  /// P(noise burst) per capture, and the burst's amplitude multiplier
  /// over the capture's ambient RMS.
  double burst_p = 0.0;
  double burst_mult = 8.0;
  /// Co-located neighboring watch/phone pairs contending for the band.
  std::size_t pairs = 0;
  /// Seconds since the watch and phone last synchronized clocks; the
  /// lever that turns ppm-level SRO into a whole-milliseconds capture
  /// misalignment. Not part of the CLI grammar (model constant).
  double clock_age_s = 1400.0;
  /// The CLI-grammar spec this plan was parsed from ("" for plans
  /// built field-by-field); retained verbatim for telemetry cohorts.
  std::string spec;

  bool empty() const;

  /// Parse a CLI-style spec: comma-separated entries of
  ///   sro=PPM | doppler=MPS | reverb=RT60MS | burst=P[xM] | pairs=N
  /// e.g. "sro=60,reverb=350,pairs=2".
  /// @throws std::invalid_argument on malformed entries or
  /// out-of-range values (negative ppm, |doppler| > 5, RT60 > 2000 ms,
  /// burst multiplier < 1, pairs > 64).
  [[nodiscard]] static ImpairmentPlan Parse(const std::string& spec);
};

/// One impairment event, stamped with the acoustic-timeline time it
/// happened; the ordered list is the session's channel trace.
struct ChannelEvent {
  std::string kind;
  std::string detail;
  double at_ms = 0.0;
};

/// Serialize a channel trace as JSONL (one event object per line) -
/// the format tests/golden/impaired_unlock_trace.jsonl pins.
std::string ChannelTraceJsonl(const std::vector<ChannelEvent>& events);

/// One neighboring pair's transmitter: a duty-cycled multitone burst
/// source parked on fixed OFDM bins. Stateless given the scene cursor,
/// so its waveform is a pure function of (schedule, cursor) and mixes
/// identically at any thread count.
struct NeighborTransmitter {
  std::vector<std::size_t> bins;  ///< occupied bins (1-based, paper indexing)
  std::size_t period_samples = 0;
  std::size_t on_samples = 0;
  std::size_t offset_samples = 0;
  double spl_db = 0.0;
  std::vector<double> phases;  ///< per-tone phase offsets (radians)

  /// True when the transmitter is radiating at absolute sample `t`.
  bool ActiveAt(std::size_t t) const;
};

/// Executes an ImpairmentPlan against one scene. Not thread-safe: one
/// instance belongs to one scene, like the scene's Rng.
class ChannelImpairments {
 public:
  /// @param rng forked from the session seed after all pre-existing
  /// forks (scene, link, motion, faults) - see the doctrine above.
  /// @param rx_guard_samples extra capture the (hardened) watch tacks
  /// onto its nominal window so drift-shifted frames keep their tail;
  /// 0 models the naive fixed-length recorder.
  ChannelImpairments(ImpairmentPlan plan, sim::Rng rng,
                     std::size_t rx_guard_samples = 0);

  /// Combined time-warp rate the watch observes: (1 + sro) / (1 + v/c).
  double warp_rate() const { return warp_rate_; }

  /// Accumulated capture-window misalignment, samples (>= 0).
  std::size_t window_shift_samples() const { return window_shift_; }

  std::size_t rx_guard_samples() const { return rx_guard_; }

  /// Apply SRO+Doppler warp and the RT60 late field to the propagated
  /// watch-path signal (phone self-recording is unaffected: the phone
  /// hears itself through its own clock at zero relative velocity).
  Samples ApplyWatchPath(Samples at_watch);

  /// Re-window a rendered watch capture for the clock offset: content
  /// slides `window_shift` samples later (the head gap is tiled with
  /// the rendering's first `ambient_head_samples`, the signal-free
  /// lead-in), and the window is extended by `rx_guard_samples` so a
  /// hardened receiver keeps the tail. A shift at or past the window
  /// length leaves pure ambience - the window missed the frame
  /// entirely, which is exactly how a naive fixed-length recorder
  /// loses a badly drifted capture.
  Samples ShiftCaptureWindow(Samples rendered,
                             std::size_t ambient_head_samples);

  /// Maybe one noise burst for an n-sample capture starting at the
  /// current cursor: empty when no burst fires, else an n-sample
  /// waveform with the burst at its drawn position (mixed into *both*
  /// mics of a co-located scene, like any loud environmental event).
  /// Draws (chance, start, length, waveform) in fixed order.
  Samples MaybeBurst(std::size_t n, double ambient_rms);

  /// Sum of all neighbor transmissions over [cursor, cursor + n).
  Samples NeighborWaveform(std::size_t n) const;

  bool has_neighbors() const { return !neighbors_.empty(); }
  const std::vector<NeighborTransmitter>& neighbors() const {
    return neighbors_;
  }

  /// Acoustic-timeline cursor (samples since scene start). Captures
  /// and MAC backoff waits advance it, so re-listening after a backoff
  /// sees every neighbor's duty cycle progressed.
  std::size_t cursor() const { return cursor_; }
  void AdvanceCursor(std::size_t samples) { cursor_ += samples; }

  /// Append a protocol-side event (MAC defer, drift estimate, degrade)
  /// to the channel trace, stamped by the caller's clock.
  void RecordEvent(const std::string& kind, const std::string& detail,
                   double at_ms);

  const ImpairmentPlan& plan() const { return plan_; }
  const std::vector<ChannelEvent>& events() const { return events_; }

 private:
  void Record(const std::string& kind, const std::string& detail);

  ImpairmentPlan plan_;
  sim::Rng rng_;
  std::size_t rx_guard_ = 0;
  double warp_rate_ = 1.0;
  std::size_t window_shift_ = 0;
  Samples reverb_ir_;  ///< late-field IR (empty when reverb is off)
  std::vector<NeighborTransmitter> neighbors_;
  std::size_t cursor_ = 0;
  std::vector<ChannelEvent> events_;
};

}  // namespace wearlock::audio
