// Phone speaker model.
//
// Reproduces the two hardware artifacts the paper designs around
// (§III "Microphone and Speaker Characteristics"):
//   * rise effect  - the driver cannot reach full excursion instantly, so
//     signal onsets are low-passed by an attack envelope;
//   * ringing      - the driver keeps radiating after the input stops,
//     modeled as convolution with an exponentially decaying reverberation
//     tail.
// Plus volume control (the knob WearLock uses to bound the secure range)
// and hard clipping at full scale.
#pragma once

#include <cstddef>

#include "audio/signal.h"

namespace wearlock::audio {

struct SpeakerSpec {
  /// Time constant of the rise (attack) envelope, seconds.
  double rise_time_s = 0.002;
  /// Length of the ringing tail, seconds (paper sizes the guard interval
  /// Tg to exceed this "largest reverberation length").
  double ringing_tail_s = 0.015;
  /// Tail decay: amplitude falls by this factor over the tail length.
  double ringing_decay = 1e-3;
  /// Relative energy of the ringing tail vs. the direct output.
  double ringing_level = 0.08;
  /// Full-scale output ceiling (samples are clipped here).
  double clip_level = 1.0;
  /// SPL produced at the reference distance d0 by a full-scale sine at
  /// volume 1.0 (dB). A phone loudspeaker driven hard reaches ~100 dB at
  /// 10 cm.
  double max_spl_at_d0 = 100.0;
  /// Peak of the static per-frequency phase ripple (radians). Models the
  /// "uneven responses of amplitude modulation and phase modulation of
  /// the audio hardware" (paper §III-7): tiny drivers have ragged phase
  /// response, so phase-bearing constellations (PSK/QAM) need more SNR
  /// per bit than amplitude-only ones (ASK), and 16QAM is effectively
  /// unusable. Set 0 to disable (ideal speaker).
  double phase_ripple_rad = 0.25;
  /// Ripple fine-structure periods in Hz. Shorter than twice the modem's
  /// pilot spacing (~689 Hz), so pilot interpolation cannot track it.
  double ripple_period1_hz = 910.0;
  double ripple_period2_hz = 567.0;
  /// Per-unit manufacturing variation: the ripple phases differ from
  /// driver to driver, giving each speaker a stable spectral signature -
  /// the basis of the hardware-fingerprinting relay defense (paper §IV).
  double ripple_phase1_rad = 0.0;
  double ripple_phase2_rad = 1.3;
};

class SpeakerModel {
 public:
  explicit SpeakerModel(SpeakerSpec spec = {});

  /// Render `input` (digital signal in [-1, 1]) at `volume` in [0, 1].
  /// Returns the pressure signal emitted at the reference distance d0,
  /// with rise/ringing applied. Output is longer than input by the
  /// ringing tail.
  /// @throws std::invalid_argument if volume is outside [0, 1].
  Samples Emit(const Samples& input, double volume) const;

  /// SPL (dB at d0) a full-scale sine would produce at `volume`.
  double SplAtVolume(double volume) const;

  /// Volume needed to hit `target_spl` dB at d0 (clamped to [0, 1]).
  double VolumeForSpl(double target_spl) const;

  const SpeakerSpec& spec() const { return spec_; }

 private:
  SpeakerSpec spec_;
  Samples ringing_ir_;  // precomputed impulse response (direct + tail)
};

}  // namespace wearlock::audio
