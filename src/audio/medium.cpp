#include "audio/medium.h"

#include <cmath>

#include "dsp/filter.h"
#include "dsp/hilbert.h"
#include "dsp/resample.h"
#include "dsp/spl.h"

namespace wearlock::audio {

AcousticChannel::AcousticChannel(ChannelConfig config, sim::Rng rng)
    : config_(config),
      propagation_(config.propagation),
      ambient_(config.custom_noise ? NoiseSource(*config.custom_noise, rng.Fork())
                                   : NoiseSource(config.environment, rng.Fork())),
      rng_(std::move(rng)) {}

Samples AcousticChannel::MakeNoise(std::size_t n) {
  Samples noise = ambient_.Generate(n);
  if (jammer_) {
    MixInto(noise, jammer_->Generate(n));
  }
  // Microphone self-noise.
  const double self_rms =
      wearlock::dsp::RmsFromSpl(config_.microphone.spec().self_noise_spl);
  Samples self = rng_.GaussianVector(n, self_rms);
  MixInto(noise, self);
  return noise;
}

Reception AcousticChannel::Transmit(const Samples& signal, double volume) {
  // Speaker -> air -> receiver position.
  const Samples emitted = config_.speaker.Emit(signal, volume);
  Samples at_rx = propagation_.Propagate(emitted, config_.distance_m);

  // Doppler from receiver motion: uniform time compression/stretch.
  if (config_.radial_velocity_mps != 0.0) {
    const double rate = 1.0 + config_.radial_velocity_mps / kSpeedOfSound;
    at_rx = wearlock::dsp::WarpTimeLinear(at_rx, 1.0 / rate);
  }

  // Receive-chain phase jitter (see ChannelConfig::phase_noise_rad).
  if (config_.phase_noise_rad > 0.0 && !at_rx.empty()) {
    Samples theta = rng_.GaussianVector(at_rx.size());
    if (config_.phase_noise_bw_hz > 0.0 &&
        config_.phase_noise_bw_hz < kSampleRate / 2.0) {
      wearlock::dsp::Biquad lpf = wearlock::dsp::Biquad::LowPass(
          config_.phase_noise_bw_hz, kSampleRate);
      theta = lpf.ProcessBlock(theta);
    }
    const double rms = wearlock::dsp::Rms(theta);
    if (rms > 0.0) Scale(theta, config_.phase_noise_rad / rms);
    at_rx = wearlock::dsp::RotatePhase(at_rx, theta);
  }

  // Assemble the receiver's pressure field: noise everywhere, signal
  // starting after the lead-in.
  const std::size_t total =
      config_.lead_in_samples + at_rx.size() + config_.lead_out_samples;
  Samples pressure = MakeNoise(total);
  const double spl_noise = wearlock::dsp::SplOf(pressure);
  MixIntoAt(pressure, at_rx, config_.lead_in_samples);

  Reception r;
  r.signal_start = config_.lead_in_samples;
  r.spl_signal_at_rx = wearlock::dsp::SplOf(at_rx);
  r.spl_noise_at_rx = spl_noise;
  r.recording = config_.microphone.Capture(pressure);
  return r;
}

Samples AcousticChannel::RecordAmbient(std::size_t n) {
  return config_.microphone.Capture(MakeNoise(n));
}

void AcousticChannel::SetJammer(std::optional<ToneJammer> jammer) {
  jammer_ = std::move(jammer);
}

void AcousticChannel::set_distance(double distance_m) {
  config_.distance_m = distance_m;
}

void AcousticChannel::set_propagation(const PropagationSpec& spec) {
  config_.propagation = spec;
  propagation_ = PropagationModel(spec);
}

}  // namespace wearlock::audio
