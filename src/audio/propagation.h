// Open-air sound propagation between a transmitter and a receiver.
//
// Implements the paper's attenuation law (§III-2): spherical spreading
// loss SPLtx - SPLrx = 20*g*log10(d/d0) (-6 dB per distance doubling for
// g = 1), plus propagation delay at the speed of sound, plus an optional
// multipath tap set. NLOS/body-blocking is modeled by attenuating the
// direct tap and boosting late reflections, which is exactly what the
// paper's tau_rms delay-spread detector looks for.
#pragma once

#include <vector>

#include "audio/signal.h"

namespace wearlock::audio {

inline constexpr double kSpeedOfSound = 343.0;  // m/s at room temperature

/// One propagation path: extra travel distance and linear gain relative
/// to the direct path at the reference distance.
struct MultipathTap {
  double extra_distance_m = 0.0;
  double gain = 1.0;
};

struct PropagationSpec {
  /// Geometric spreading constant g (1 = spherical point source).
  double geometric_constant = 1.0;
  /// Reference distance d0: transmitter's own mic-to-speaker distance.
  double reference_distance_m = 0.1;
  /// Direct-path gain multiplier (< 1 when a body/hand blocks LOS).
  double direct_gain = 1.0;
  /// Body shadowing is frequency-selective: audible wavelengths (6-34 cm
  /// in the 1-6 kHz band) diffract around a hand, while near-ultrasound
  /// (~2 cm) is blocked outright. When > 0, the direct path is low-passed
  /// at this cutoff; reflections are unaffected (they travel around the
  /// body).
  double direct_lowpass_hz = 0.0;
  /// Reflections. Empty = pure LOS.
  std::vector<MultipathTap> taps;

  /// Clean line-of-sight channel.
  static PropagationSpec Los();
  /// Mild indoor multipath (desk/wall reflections), still LOS.
  static PropagationSpec IndoorLos();
  /// Body-blocked NLOS: direct path heavily attenuated, energy arrives
  /// via spread-out reflections (same-hand grip, covered speaker).
  static PropagationSpec BodyBlockedNlos();
};

class PropagationModel {
 public:
  explicit PropagationModel(PropagationSpec spec = PropagationSpec::Los());

  /// Propagate `emitted` (pressure at d0) to a receiver `distance_m`
  /// away. Applies spreading loss, speed-of-sound delay (fractional
  /// samples) and the tap set.
  /// @throws std::invalid_argument if distance < reference distance.
  Samples Propagate(const Samples& emitted, double distance_m) const;

  /// Spreading-loss gain (linear) at a distance.
  double GainAt(double distance_m) const;

  /// Loss in dB relative to d0.
  double LossDbAt(double distance_m) const;

  const PropagationSpec& spec() const { return spec_; }

 private:
  PropagationSpec spec_;
};

}  // namespace wearlock::audio
