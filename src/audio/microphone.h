// Microphone models.
//
// The critical hardware quirk the paper discovered: Android Wear watches
// (Moto 360) apply a mandatory low-pass filter capping useful response at
// ~7 kHz, with significant fade from 5 to 7 kHz - the mic pipeline is
// tuned for speech. This forces WearLock's phone->watch link into the
// audible 1-6 kHz band; the 15-20 kHz near-ultrasound band only works on
// a phone->phone pair whose mics are full-band.
#pragma once

#include "audio/signal.h"

namespace wearlock::audio {

struct MicrophoneSpec {
  /// -3 dB point of the built-in low-pass (Hz); <= 0 disables it.
  double lowpass_cutoff_hz = 0.0;
  /// Butterworth section count for the low-pass (2 sections = 4th order,
  /// matching the steep 5->7 kHz fade observed on the Moto 360).
  int lowpass_sections = 2;
  /// Self-noise floor SPL (dB) added by the capsule/ADC chain.
  double self_noise_spl = 10.0;
  /// ADC saturation ceiling (pressure units, matches speaker scale).
  double clip_level = 10.0;
};

class MicrophoneModel {
 public:
  explicit MicrophoneModel(MicrophoneSpec spec = {});

  /// Full-band phone microphone (records 15-20 kHz fine).
  static MicrophoneModel Phone();
  /// Android Wear watch microphone with the ~7 kHz mandatory low-pass
  /// (starts fading at 5 kHz).
  static MicrophoneModel Watch();

  /// Convert incident pressure into the recorded buffer: band-limit,
  /// clip, (self-noise is added by the medium which owns the RNG).
  Samples Capture(const Samples& pressure) const;

  /// Magnitude response of the mic chain at f (1.0 = flat).
  double ResponseAt(double f_hz) const;

  const MicrophoneSpec& spec() const { return spec_; }

 private:
  MicrophoneSpec spec_;
};

}  // namespace wearlock::audio
