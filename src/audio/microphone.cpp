#include "audio/microphone.h"

#include "dsp/filter.h"

namespace wearlock::audio {

MicrophoneModel::MicrophoneModel(MicrophoneSpec spec) : spec_(spec) {}

MicrophoneModel MicrophoneModel::Phone() {
  return MicrophoneModel(MicrophoneSpec{
      .lowpass_cutoff_hz = 0.0,  // effectively full band at 44.1 kHz
      .lowpass_sections = 0,
      .self_noise_spl = 8.0,
      .clip_level = 10.0,
  });
}

MicrophoneModel MicrophoneModel::Watch() {
  // 8th-order Butterworth at 6.2 kHz: ~-3 dB at cutoff, fading hard
  // through 7 kHz ("the signal fades significantly from 5kHz to 7kHz")
  // and effectively erasing 15-20 kHz - the speech-pipeline mic chain
  // resamples to 16 kHz, so near-ultrasound simply does not survive.
  return MicrophoneModel(MicrophoneSpec{
      .lowpass_cutoff_hz = 6200.0,
      .lowpass_sections = 4,
      .self_noise_spl = 12.0,
      .clip_level = 10.0,
  });
}

Samples MicrophoneModel::Capture(const Samples& pressure) const {
  Samples out = pressure;
  if (spec_.lowpass_cutoff_hz > 0.0 && spec_.lowpass_sections > 0) {
    auto lpf = wearlock::dsp::BiquadCascade::ButterworthLowPass(
        spec_.lowpass_cutoff_hz, kSampleRate,
        static_cast<std::size_t>(spec_.lowpass_sections));
    out = lpf.ProcessBlock(out);
  }
  Clip(out, spec_.clip_level);
  return out;
}

double MicrophoneModel::ResponseAt(double f_hz) const {
  if (spec_.lowpass_cutoff_hz <= 0.0 || spec_.lowpass_sections <= 0) return 1.0;
  auto lpf = wearlock::dsp::BiquadCascade::ButterworthLowPass(
      spec_.lowpass_cutoff_hz, kSampleRate,
      static_cast<std::size_t>(spec_.lowpass_sections));
  return lpf.MagnitudeAt(f_hz, kSampleRate);
}

}  // namespace wearlock::audio
