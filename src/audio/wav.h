// Minimal 16-bit PCM mono WAV file I/O.
//
// Lets examples and debugging sessions dump simulated waveforms for
// inspection in Audacity (the paper's own jamming tool) and feed external
// recordings back through the receive chain.
#pragma once

#include <string>

#include "audio/signal.h"

namespace wearlock::audio {

/// Write samples (clamped to [-1, 1]) as 16-bit PCM mono at
/// `sample_rate_hz`. @throws std::runtime_error on I/O failure.
void WriteWav(const std::string& path, const Samples& samples,
              double sample_rate_hz = kSampleRate);

struct WavData {
  Samples samples;        ///< normalized to [-1, 1]
  double sample_rate_hz = 0.0;
};

/// Read a 16-bit PCM mono (or first-channel-of-stereo) WAV file.
/// @throws std::runtime_error on I/O or format errors.
WavData ReadWav(const std::string& path);

}  // namespace wearlock::audio
