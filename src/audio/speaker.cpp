#include "audio/speaker.h"
#include <numbers>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/filter.h"
#include "dsp/spl.h"

namespace wearlock::audio {
namespace {

// SPL of a full-scale (amplitude 1.0) digital sine: fixes the mapping
// between digital amplitude and dB SPL.
double FullScaleSineSpl() {
  return wearlock::dsp::SplFromRms(1.0 / std::sqrt(2.0));
}

}  // namespace

SpeakerModel::SpeakerModel(SpeakerSpec spec) : spec_(spec) {
  // Impulse response: unit direct path followed by an exponentially
  // decaying reverberation tail (the "ringing" effect).
  const std::size_t tail_len = SamplesFromSeconds(spec_.ringing_tail_s);
  ringing_ir_.assign(tail_len + 1, 0.0);
  ringing_ir_[0] = 1.0;
  if (tail_len > 0) {
    const double decay_per_sample =
        std::pow(spec_.ringing_decay, 1.0 / static_cast<double>(tail_len));
    double a = spec_.ringing_level;
    for (std::size_t n = 1; n <= tail_len; ++n) {
      a *= decay_per_sample;
      ringing_ir_[n] = a;
    }
  }
}

Samples SpeakerModel::Emit(const Samples& input, double volume) const {
  if (volume < 0.0 || volume > 1.0) {
    throw std::invalid_argument("SpeakerModel::Emit: volume must be in [0, 1]");
  }
  // Digital drive with excursion clipping.
  Samples drive = input;
  Scale(drive, volume);
  Clip(drive, spec_.clip_level);

  // Rise effect: first-order attack envelope from signal onset.
  const double tau = std::max(spec_.rise_time_s, 1e-6) * kSampleRate;
  for (std::size_t n = 0; n < drive.size(); ++n) {
    const double env = 1.0 - std::exp(-static_cast<double>(n + 1) / tau);
    drive[n] *= env;
  }

  // Ringing: convolve with the reverberation impulse response.
  Samples out = wearlock::dsp::Convolve(drive, ringing_ir_);

  // Static phase-response ripple (see SpeakerSpec::phase_ripple_rad).
  if (spec_.phase_ripple_rad > 0.0 && !out.empty()) {
    const std::size_t n = wearlock::dsp::NextPowerOfTwo(out.size());
    wearlock::dsp::ComplexVec spec(n, wearlock::dsp::Complex(0.0, 0.0));
    for (std::size_t i = 0; i < out.size(); ++i) {
      spec[i] = wearlock::dsp::Complex(out[i], 0.0);
    }
    wearlock::dsp::Fft(spec);
    const double fs = kSampleRate;
    for (std::size_t k = 1; k < n / 2; ++k) {
      const double f = static_cast<double>(k) * fs / static_cast<double>(n);
      const double phi =
          spec_.phase_ripple_rad *
          (0.65 * std::sin(2.0 * std::numbers::pi * f / spec_.ripple_period1_hz +
                           spec_.ripple_phase1_rad) +
           0.45 * std::sin(2.0 * std::numbers::pi * f / spec_.ripple_period2_hz +
                           spec_.ripple_phase2_rad));
      const auto rot = std::polar(1.0, phi);
      spec[k] *= rot;
      spec[n - k] *= std::conj(rot);  // keep the signal real
    }
    wearlock::dsp::Ifft(spec);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = spec[i].real();
  }

  // Electro-acoustic gain: full-scale sine at volume 1 -> max_spl_at_d0.
  const double gain = std::pow(10.0, (spec_.max_spl_at_d0 - FullScaleSineSpl()) / 20.0);
  Scale(out, gain);
  return out;
}

double SpeakerModel::SplAtVolume(double volume) const {
  if (volume <= 0.0) return -1e9;
  return spec_.max_spl_at_d0 + 20.0 * std::log10(volume);
}

double SpeakerModel::VolumeForSpl(double target_spl) const {
  const double v = std::pow(10.0, (target_spl - spec_.max_spl_at_d0) / 20.0);
  return std::clamp(v, 0.0, 1.0);
}

}  // namespace wearlock::audio
