// Deterministic fixed-pool parallel executor.
//
// Every figure/table bench and every sweep-style test walks an
// independent (modulation x distance x noise x seed) grid; this executor
// fans those points out across worker threads without giving up the
// repo's bit-exact reproducibility. Determinism is the contract, not a
// convention:
//
//   * each task gets a private sim::Rng seeded from (base_seed,
//     task_index) BEFORE dispatch, so the random stream a task sees is a
//     pure function of its index, never of scheduling;
//   * results land in index-ordered slots, so the returned vector is
//     byte-identical for any thread count, including 1;
//   * tasks must not touch mutable shared state (the shared-state lint
//     rule polices the executor's own internals; task bodies are on the
//     honor system plus the TSan CI leg).
//
// Thread count: explicit constructor argument, else the WEARLOCK_THREADS
// environment variable, else std::thread::hardware_concurrency().
//
// Worker threads are long-lived, which the zero-allocation DSP core
// leans on: a task that calls dsp::Workspace::PerThread() gets the same
// thread_local arena on every point its worker runs, so scratch buffers
// grown on the first (warm-up) point are reused allocation-free for the
// rest of the sweep (docs/perf.md).
//
// There is deliberately no work stealing and no nested submission: the
// tasks this repo runs are seconds-scale simulation points, so a single
// shared index under one mutex is contention-free in practice and keeps
// the dispatch order trivially auditable.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "sim/rng.h"

namespace wearlock::sim {

/// Everything a task may read: its flat index and a private Rng forked
/// from (base_seed, index). Depending on anything else that mutates is a
/// determinism bug.
struct TaskContext {
  std::size_t index;
  Rng rng;
};

class ParallelExecutor {
 public:
  /// @param n_threads 0 selects DefaultThreadCount().
  explicit ParallelExecutor(std::size_t n_threads = 0);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// WEARLOCK_THREADS when set to a positive integer, else
  /// hardware_concurrency() (minimum 1).
  static std::size_t DefaultThreadCount();

  /// The seed-forking scheme: SplitMix64 over base_seed and index.
  /// Distinct indices (and distinct base seeds) give well-separated
  /// mt19937_64 seeds even for consecutive inputs.
  static std::uint64_t TaskSeed(std::uint64_t base_seed, std::uint64_t index);

  /// How many consecutive indices a worker claims per lock acquisition.
  /// Purely a dispatch-granularity decision - tasks still run in index
  /// order within a chunk and land in index-keyed slots, so results are
  /// byte-identical for any chunk size. Oversubscribed pools (more
  /// workers than `hardware` cores, e.g. a TSan leg forcing
  /// WEARLOCK_THREADS=8 on a small box) get a near-static partition of
  /// ceil(n_tasks / workers), so each time slice runs a contiguous run
  /// of tasks instead of bouncing the batch lock every point; pools at
  /// or under the core count keep ~4 chunks per worker for load
  /// balance across uneven task costs.
  static std::size_t ChunkSize(std::size_t n_tasks, std::size_t workers,
                               std::size_t hardware);

  /// Run fn(TaskContext&) for indices [0, n_tasks) across the pool and
  /// return the results in index order. If any task throws, the
  /// lowest-index exception is rethrown after the whole batch drains
  /// (same exception at any thread count). Not re-entrant: one Map at a
  /// time per executor, and tasks must not call back into the executor.
  template <typename Fn>
  auto Map(std::size_t n_tasks, std::uint64_t base_seed, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, TaskContext&>> {
    using R = std::invoke_result_t<Fn&, TaskContext&>;
    std::vector<std::optional<R>> slots(n_tasks);
    std::vector<std::exception_ptr> errors(n_tasks);
    RunTasks(n_tasks, [&](std::size_t i) {
      TaskContext ctx{i, Rng(TaskSeed(base_seed, i))};
      try {
        slots[i].emplace(fn(ctx));
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    for (std::size_t i = 0; i < n_tasks; ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
    std::vector<R> results;
    results.reserve(n_tasks);
    for (auto& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

  /// Map with per-shard telemetry: each task runs with a private
  /// MetricsRegistry installed as the ambient sink (WL_* macros and
  /// CurrentMetrics() route to it), and the per-task snapshots fold
  /// into *merged in index order after the batch drains. Because
  /// MetricsSnapshot::Merge is order-insensitive, the merged
  /// registry's serialized bytes depend only on the task set - never
  /// on thread count or fold order (the fleet-telemetry determinism
  /// contract; see docs/observability.md). Tasks that route metrics
  /// into their own registries (e.g. an UnlockSession, which installs
  /// its session registry during Attempt) fold them back with
  /// obs::CurrentMetrics()->Merge(session.metrics().Snapshot())
  /// before returning.
  template <typename Fn>
  auto MapWithMetrics(std::size_t n_tasks, std::uint64_t base_seed,
                      obs::MetricsRegistry* merged, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, TaskContext&>> {
    std::vector<obs::MetricsSnapshot> shards(n_tasks);
    auto results = Map(n_tasks, base_seed, [&](TaskContext& ctx) {
      obs::MetricsRegistry local;
      obs::ScopedMetricsRegistry install(&local);
      auto result = fn(ctx);
      shards[ctx.index] = local.Snapshot();
      return result;
    });
    for (const obs::MetricsSnapshot& shard : shards) merged->Merge(shard);
    return results;
  }

  /// A point of a row-major 2D sweep (row = outer grid axis).
  struct GridPoint {
    std::size_t row;
    std::size_t col;
    std::size_t index;  ///< flat row-major index: row * n_cols + col
  };

  /// Map over an n_rows x n_cols grid; fn(point, rng) runs once per cell
  /// and results come back row-major, byte-identical at any thread count.
  template <typename Fn>
  auto RunGrid(std::size_t n_rows, std::size_t n_cols, std::uint64_t base_seed,
               Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const GridPoint&, Rng&>> {
    return Map(n_rows * n_cols, base_seed, [&](TaskContext& ctx) {
      const GridPoint point{ctx.index / n_cols, ctx.index % n_cols, ctx.index};
      return fn(point, ctx.rng);
    });
  }

 private:
  /// Dispatch task(0..n_tasks-1) over the pool; returns once every index
  /// has finished executing.
  void RunTasks(std::size_t n_tasks,
                const std::function<void(std::size_t)>& task);

  void WorkerLoop();

  // Batch state, all guarded by mu_: workers claim the next chunk of
  // indices under the lock and run the task bodies outside it.
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t n_tasks_ = 0;
  std::size_t next_index_ = 0;
  std::size_t chunk_size_ = 1;
  std::size_t pending_ = 0;
  std::uint64_t batch_id_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;  // constructed last, joined first
};

}  // namespace wearlock::sim
