// Deterministic virtual-clock event queue: the multiplexer that lets
// one thread drive thousands of in-flight unlock sessions.
//
// Events are ordered by (virtual due time, schedule sequence): two
// events due at the same instant run in the order they were scheduled,
// so a drain is a pure function of the schedule calls - never of heap
// internals or host timing. The queue's clock is *global* to the queue
// (it only decides cross-session interleaving); each session keeps its
// own sim::VirtualClock and advances it by its own waits when its event
// fires, so a session's state evolution is byte-identical whether it
// runs alone or multiplexed among thousands (docs/architecture.md).
//
// Scheduling is fallible by contract: negative delays, due times in the
// past, non-finite times and empty callbacks are programming errors and
// throw std::invalid_argument instead of silently reordering the
// timeline. The scheduling APIs are [[nodiscard]] - an ignored EventId
// usually means the caller meant to track or cancel the event (the
// discarded-outcome lint rule enforces use sites).
//
// Single-threaded by design: one queue per shard, shards fanned across
// sim::ParallelExecutor workers with no shared mutable state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/clock.h"

namespace wearlock::sim {

class EventQueue {
 public:
  using EventId = std::uint64_t;
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Virtual time of the queue: the due time of the last event run
  /// (0 before any). Monotonic across a drain.
  Millis now() const { return now_ms_; }

  /// Schedule `fn` at absolute queue time `at_ms`. Throws
  /// std::invalid_argument when `at_ms` precedes now(), is not finite,
  /// or `fn` is empty.
  [[nodiscard]] EventId ScheduleAt(Millis at_ms, Callback fn);

  /// Schedule `fn` `delay_ms` after now(). Throws std::invalid_argument
  /// when `delay_ms` is negative or not finite, or `fn` is empty.
  [[nodiscard]] EventId ScheduleAfter(Millis delay_ms, Callback fn);

  /// Drop a scheduled event. Returns whether `id` was still pending
  /// (false for ids already run, cancelled, or never issued).
  [[nodiscard]] bool Cancel(EventId id);

  /// Run the earliest pending event, advancing now() to its due time.
  /// Returns false when the queue is idle.
  bool RunOne();

  /// Drain until no event is pending (events may schedule more events);
  /// returns how many ran.
  std::size_t RunUntilIdle();

  /// Events scheduled but not yet run or cancelled.
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  bool empty() const { return pending() == 0; }

 private:
  struct Event {
    Millis at_ms;
    EventId id;
    Callback fn;
  };

  /// Min-heap order on (at_ms, id): strict-weak via "later runs lower".
  static bool Later(const Event& a, const Event& b);

  Millis now_ms_ = 0.0;
  EventId next_id_ = 1;
  std::vector<Event> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace wearlock::sim
