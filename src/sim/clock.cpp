#include "sim/clock.h"

#include <stdexcept>

namespace wearlock::sim {

void VirtualClock::Advance(Millis delta_ms) {
  if (delta_ms < 0.0) {
    throw std::invalid_argument("VirtualClock: negative time advance");
  }
  now_ms_ += delta_ms;
}

}  // namespace wearlock::sim
