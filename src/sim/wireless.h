// Bluetooth / WiFi control-channel latency models.
//
// WearLock uses the wireless link as a secure control channel: RTS/CTS
// configuration messages, sensor payloads, and (when offloading) recorded
// audio uploads. Fig. 11 measures message and file-transfer delay for BT
// and WiFi; this model reproduces those distributions with a
// base-latency + size/throughput + lognormal-jitter form.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "sim/clock.h"
#include "sim/rng.h"

namespace wearlock::sim {

enum class Radio { kBluetooth, kWifi };

std::string ToString(Radio radio);

struct LinkModel {
  Radio radio = Radio::kBluetooth;
  /// One-way small-message base latency (ms).
  Millis message_base_ms = 0.0;
  /// Effective payload throughput for bulk transfers (bytes/ms).
  double throughput_bytes_per_ms = 1.0;
  /// Per-transfer fixed setup cost for channel/file API transfers (ms).
  Millis file_setup_ms = 0.0;
  /// Lognormal jitter sigma (applied multiplicatively, median 1.0).
  double jitter_sigma = 0.2;

  /// Android Wear MessageAPI over Bluetooth (paper's Config2 transport).
  static LinkModel Bluetooth();
  /// MessageAPI/ChannelAPI over WiFi (paper's Config1 transport).
  static LinkModel Wifi();
};

/// A point-to-point phone<->watch link with deterministic pseudo-random
/// jitter. Also tracks whether the link is up at all: WearLock's first
/// filter is "no Bluetooth link => stay locked".
class WirelessLink {
 public:
  WirelessLink(LinkModel model, Rng rng, bool connected = true);

  bool connected() const { return connected_; }
  void set_connected(bool connected) { connected_ = connected; }
  Radio radio() const { return model_.radio; }

  /// Outcome-returning send APIs: nullopt when the link is down (a
  /// defined protocol condition - disconnects mid-unlock are an
  /// expected channel state, not a programming error). No jitter is
  /// consumed from the rng on a down link, so a flap-and-recover
  /// sequence draws exactly the same stream as an always-up link.
  [[nodiscard]] std::optional<Millis> TrySendMessageDelay();
  [[nodiscard]] std::optional<Millis> TrySendFileDelay(std::size_t bytes);
  [[nodiscard]] std::optional<Millis> TrySendRoundTrip();

  /// Sampled one-way latency (ms) for a short control message.
  /// Throwing shim over TrySendMessageDelay for legacy callers that
  /// check connected() themselves.
  /// @throws std::logic_error if the link is down.
  Millis SampleMessageDelay();

  /// Sampled latency (ms) to move `bytes` of bulk payload (e.g. a
  /// recorded audio clip being offloaded).
  /// @throws std::logic_error if the link is down.
  Millis SampleFileDelay(std::size_t bytes);

  /// Round-trip time of message + reply.
  /// @throws std::logic_error if the link is down.
  Millis SampleRoundTrip();

  const LinkModel& model() const { return model_; }

 private:
  double Jitter();

  LinkModel model_;
  Rng rng_;
  bool connected_;
};

}  // namespace wearlock::sim
