// Deterministic random-number utilities.
//
// Every stochastic element of the simulation (noise, jammer placement,
// link jitter, motion traces) draws from an explicitly seeded Rng so that
// tests and benchmark tables are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace wearlock::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Standard normal (mean 0, stddev 1) scaled by `stddev`.
  double Gaussian(double stddev = 1.0) {
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Bernoulli with probability p.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// n iid Gaussian samples.
  std::vector<double> GaussianVector(std::size_t n, double stddev = 1.0);

  /// Derive an independent child stream (for giving each subsystem its
  /// own deterministic sequence).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wearlock::sim
