// Device compute/energy profiles.
//
// The paper evaluates three Android devices: Nexus 6 (fast phone), Galaxy
// Nexus (slow phone), and the Moto 360 smartwatch. We reproduce their
// *relative* behaviour (Figs. 6, 10, 12) by timing the real C++ DSP
// kernels on the host and scaling by a per-device slowdown factor
// (Java/Dalvik on old mobile silicon vs. native code on a modern x86).
// Energy is modeled as power x active time.
#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "sim/clock.h"

namespace wearlock::sim {

struct DeviceProfile {
  std::string name;
  /// Multiplier applied to host-measured kernel time to model this
  /// device's execution time (includes Java-vs-native overhead).
  double compute_scale = 1.0;
  /// Average power draw while computing (mW).
  double compute_power_mw = 0.0;
  /// Power draw while recording audio (mW).
  double record_power_mw = 0.0;
  /// Power draw while the Bluetooth radio is active (mW).
  double bt_power_mw = 0.0;
  /// Power draw while the WiFi radio is active (mW).
  double wifi_power_mw = 0.0;

  /// The phone in the paper's fast configuration (Config1).
  static DeviceProfile Nexus6();
  /// The low-end phone (Config2).
  static DeviceProfile GalaxyNexus();
  /// The smartwatch (Config3 runs the DSP here locally).
  static DeviceProfile Moto360();

  /// Modeled execution time (ms) on this device for work that took
  /// `host_ms` on the host.
  Millis ScaleCompute(Millis host_ms) const { return host_ms * compute_scale; }

  /// Energy (mJ) for `ms` of activity at `power_mw`.
  static double EnergyMj(Millis ms, double power_mw) {
    return power_mw * ms / 1000.0;
  }
};

/// Wall-clock timing of a callable on the host, in milliseconds.
/// Runs the workload once and returns the elapsed time - unless fixed
/// host timing is armed (below), in which case the workload still runs
/// but the fixed value is returned instead of a measurement.
Millis TimeHostMs(const std::function<void()>& work);

/// Fixed host timing: campaigns that must be byte-identical across
/// thread counts (the fleet-telemetry determinism gate) cannot let
/// measured kernel wall time leak into modeled timelines - under load
/// the same seed would report different compute_ms. Arming this makes
/// every TimeHostMs call report `ms` (>= 0); a negative value restores
/// real measurement. Also armed by the WEARLOCK_FIXED_HOST_MS
/// environment variable, read once at first use. Set before spawning
/// campaign workers; flipping it mid-Map is a determinism bug.
void SetFixedHostTimingMs(double ms);
/// The armed fixed value, or a negative sentinel when measuring.
double FixedHostTimingMs();

/// Median of `reps` timed runs (robust against scheduler noise).
Millis TimeHostMedianMs(const std::function<void()>& work, int reps);

}  // namespace wearlock::sim
