#include "sim/adversary.h"

#include <stdexcept>
#include <utility>

#include "obs/instrument.h"
#include "obs/json.h"

namespace wearlock::sim {
namespace {

double ParseNumber(const std::string& entry, const std::string& text) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("AttackSpec: bad number in '" + entry + "'");
  }
  if (used != text.size()) {
    throw std::invalid_argument("AttackSpec: trailing junk in '" + entry +
                                "'");
  }
  return v;
}

AttackKind KindFromName(const std::string& spec, const std::string& name) {
  if (name == "eavesdrop") return AttackKind::kEavesdrop;
  if (name == "replay") return AttackKind::kReplay;
  if (name == "relay") return AttackKind::kRelay;
  if (name == "probe") return AttackKind::kProbe;
  if (name == "overshadow") return AttackKind::kOvershadow;
  throw std::invalid_argument("AttackSpec: unknown attack '" + name +
                              "' in '" + spec + "'");
}

// Each kind's default geometry/electronics, so "relay" alone is a
// sensible attack and the grammar only names what it overrides.
void ApplyKindDefaults(AttackSpec& out) {
  switch (out.kind) {
    case AttackKind::kEavesdrop:
      out.distance_m = 2.0;
      break;
    case AttackKind::kReplay:
      out.distance_m = 0.5;
      out.handling_delay_ms = 250.0;
      break;
    case AttackKind::kRelay:
      out.distance_m = 3.0;
      out.handling_delay_ms = 4.0;
      out.gain_db = 40.0;
      break;
    case AttackKind::kProbe:
      out.distance_m = 1.0;
      break;
    case AttackKind::kOvershadow:
      out.distance_m = 1.5;
      out.level = 2.0;
      break;
  }
}

}  // namespace

std::string ToString(AttackKind kind) {
  switch (kind) {
    case AttackKind::kEavesdrop: return "eavesdrop";
    case AttackKind::kReplay: return "replay";
    case AttackKind::kRelay: return "relay";
    case AttackKind::kProbe: return "probe";
    case AttackKind::kOvershadow: return "overshadow";
  }
  return "?";
}

AttackSpec AttackSpec::Parse(const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument("AttackSpec: empty spec");
  }
  AttackSpec out;
  out.spec = spec;

  // KIND[@DISTANCE][:key=value]...
  std::size_t opts_pos = spec.find(':');
  const std::string head = spec.substr(0, std::min(opts_pos, spec.size()));
  const std::size_t at = head.find('@');
  out.kind = KindFromName(spec, head.substr(0, at));
  ApplyKindDefaults(out);
  if (at != std::string::npos) {
    out.distance_m = ParseNumber(head, head.substr(at + 1));
    if (out.distance_m <= 0.0) {
      throw std::invalid_argument("AttackSpec: distance must be > 0 in '" +
                                  spec + "'");
    }
  }

  while (opts_pos != std::string::npos) {
    const std::size_t start = opts_pos + 1;
    opts_pos = spec.find(':', start);
    const std::string entry =
        spec.substr(start, std::min(opts_pos, spec.size()) - start);
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("AttackSpec: expected key=value, got '" +
                                  entry + "' in '" + spec + "'");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "gain") {
      out.gain_db = ParseNumber(entry, value);
      if (out.gain_db < -40.0 || out.gain_db > 80.0) {
        throw std::invalid_argument(
            "AttackSpec: gain out of [-40,80] dB in '" + entry + "'");
      }
    } else if (key == "delay") {
      out.handling_delay_ms = ParseNumber(entry, value);
      if (out.handling_delay_ms < 0.0) {
        throw std::invalid_argument("AttackSpec: negative delay in '" + entry +
                                    "'");
      }
    } else if (key == "level") {
      out.level = ParseNumber(entry, value);
      if (out.level <= 0.0) {
        throw std::invalid_argument("AttackSpec: level must be > 0 in '" +
                                    entry + "'");
      }
    } else {
      throw std::invalid_argument("AttackSpec: unknown key '" + key +
                                  "' in '" + spec + "'");
    }
  }
  return out;
}

std::string AttackTraceJsonl(const std::vector<AttackEvent>& events) {
  std::string out;
  for (const AttackEvent& e : events) {
    out += "{\"at_ms\":" + obs::JsonNumber(e.at_ms) + ",\"attack\":\"" +
           obs::JsonEscape(ToString(e.kind)) + "\",\"stage\":\"" +
           obs::JsonEscape(e.stage) + "\",\"value\":" +
           obs::JsonNumber(e.value) + "}\n";
  }
  return out;
}

AdversaryDevice::AdversaryDevice(AttackSpec spec, Rng rng, VirtualClock* clock)
    : spec_(std::move(spec)), rng_(std::move(rng)), clock_(clock) {
  if (clock_ == nullptr) {
    throw std::invalid_argument("AdversaryDevice: null clock");
  }
}

void AdversaryDevice::Record(const std::string& stage, double value) {
  events_.push_back({spec_.kind, stage, clock_->now(), value});
  WL_COUNT("adversary.event." + ToString(spec_.kind));
}

void AdversaryDevice::StoreCapture(std::vector<double> samples) {
  Record("capture", static_cast<double>(samples.size()));
  tape_.push_back(std::move(samples));
}

}  // namespace wearlock::sim
