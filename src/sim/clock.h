// Virtual monotonic clock.
//
// Protocol timing (the record-and-replay defense examines an expected
// timing window; Figs. 10-12 account per-phase latencies) runs against
// simulated time so experiments are deterministic and fast.
#pragma once

#include <cstdint>

namespace wearlock::sim {

/// Milliseconds of virtual time, as a double for sub-ms modeling.
using Millis = double;

class VirtualClock {
 public:
  Millis now() const { return now_ms_; }

  /// Advance time; negative advances are a programming error.
  void Advance(Millis delta_ms);

  void Reset() { now_ms_ = 0.0; }

 private:
  Millis now_ms_ = 0.0;
};

}  // namespace wearlock::sim
