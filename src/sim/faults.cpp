#include "sim/faults.h"

#include <algorithm>
#include <stdexcept>

#include "obs/instrument.h"
#include "obs/json.h"

namespace wearlock::sim {
namespace {

double ParseNumber(const std::string& entry, const std::string& text) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad number in '" + entry + "'");
  }
  if (used != text.size()) {
    throw std::invalid_argument("FaultPlan: trailing junk in '" + entry + "'");
  }
  return v;
}

double ParseProbability(const std::string& entry, const std::string& text) {
  const double p = ParseNumber(entry, text);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("FaultPlan: probability out of [0,1] in '" +
                                entry + "'");
  }
  return p;
}

}  // namespace

std::string ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMessageDrop: return "message-drop";
    case FaultKind::kMessageDuplicate: return "message-duplicate";
    case FaultKind::kDelaySpike: return "delay-spike";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kLinkRecover: return "link-recover";
    case FaultKind::kRecordingTruncate: return "recording-truncate";
    case FaultKind::kRecordingClip: return "recording-clip";
    case FaultKind::kRecordingDrop: return "recording-drop";
  }
  return "?";
}

bool FaultPlan::empty() const {
  return message_drop_p == 0.0 && message_dup_p == 0.0 &&
         delay_spike_p == 0.0 && flap_stage.empty() &&
         recording_truncate_keep >= 1.0 && recording_clip_level == 0.0 &&
         recording_drop_p == 0.0;
}

FaultPlan FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  plan.spec = spec;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    if (entry.rfind("flap@", 0) == 0) {
      std::string stage = entry.substr(5);
      const std::size_t colon = stage.find(':');
      if (colon != std::string::npos) {
        plan.flap_down_ms = ParseNumber(entry, stage.substr(colon + 1));
        if (plan.flap_down_ms < 0.0) {
          throw std::invalid_argument("FaultPlan: negative outage in '" +
                                      entry + "'");
        }
        stage = stage.substr(0, colon);
      }
      if (stage.empty()) {
        throw std::invalid_argument("FaultPlan: empty stage in '" + entry +
                                    "'");
      }
      plan.flap_stage = stage;
      continue;
    }

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("FaultPlan: expected key=value or "
                                  "flap@stage, got '" + entry + "'");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "drop") {
      plan.message_drop_p = ParseProbability(entry, value);
    } else if (key == "dup") {
      plan.message_dup_p = ParseProbability(entry, value);
    } else if (key == "spike") {
      const std::size_t x = value.find('x');
      if (x != std::string::npos) {
        plan.delay_spike_p = ParseProbability(entry, value.substr(0, x));
        plan.delay_spike_mult = ParseNumber(entry, value.substr(x + 1));
        if (plan.delay_spike_mult < 1.0) {
          throw std::invalid_argument(
              "FaultPlan: spike multiplier must be >= 1 in '" + entry + "'");
        }
      } else {
        plan.delay_spike_p = ParseProbability(entry, value);
      }
    } else if (key == "trunc") {
      plan.recording_truncate_keep = ParseNumber(entry, value);
      if (plan.recording_truncate_keep <= 0.0 ||
          plan.recording_truncate_keep > 1.0) {
        throw std::invalid_argument(
            "FaultPlan: trunc keep-fraction out of (0,1] in '" + entry + "'");
      }
    } else if (key == "clip") {
      plan.recording_clip_level = ParseNumber(entry, value);
      if (plan.recording_clip_level <= 0.0) {
        throw std::invalid_argument("FaultPlan: clip level must be > 0 in '" +
                                    entry + "'");
      }
    } else if (key == "recdrop") {
      plan.recording_drop_p = ParseProbability(entry, value);
    } else {
      throw std::invalid_argument("FaultPlan: unknown key '" + key + "'");
    }
  }
  return plan;
}

std::string FaultTraceJsonl(const std::vector<FaultEvent>& events) {
  std::string out;
  for (const FaultEvent& e : events) {
    out += "{\"at_ms\":" + obs::JsonNumber(e.at_ms) + ",\"fault\":\"" +
           obs::JsonEscape(ToString(e.kind)) + "\",\"stage\":\"" +
           obs::JsonEscape(e.stage) + "\",\"value\":" +
           obs::JsonNumber(e.value) + "}\n";
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan, Rng rng, VirtualClock* clock)
    : plan_(std::move(plan)), rng_(std::move(rng)), clock_(clock) {
  if (clock_ == nullptr) {
    throw std::invalid_argument("FaultInjector: null clock");
  }
}

void FaultInjector::Record(FaultKind kind, const std::string& stage,
                           double value) {
  events_.push_back({kind, stage, clock_->now(), value});
  WL_COUNT("faults.injected." + ToString(kind));
}

bool FaultInjector::ShouldFlap(const std::string& stage) {
  if (flap_fired_ || plan_.flap_stage.empty()) return false;
  return plan_.flap_stage == "any" || plan_.flap_stage == stage;
}

void FaultInjector::MaybeReconnect(WirelessLink& link) {
  if (!flap_down_) return;
  if (clock_->now() + 1e-9 < reconnect_at_ms_) return;
  flap_down_ = false;
  link.set_connected(true);
  Record(FaultKind::kLinkRecover, "link", 0.0);
}

FaultInjector::SendResult FaultInjector::SendMessage(WirelessLink& link,
                                                     const std::string& stage) {
  MaybeReconnect(link);
  if (ShouldFlap(stage)) {
    flap_fired_ = true;
    flap_down_ = true;
    reconnect_at_ms_ = clock_->now() + plan_.flap_down_ms;
    link.set_connected(false);
    Record(FaultKind::kLinkFlap, stage, plan_.flap_down_ms);
    return {SendStatus::kLinkDown};
  }
  const auto delay = link.TrySendMessageDelay();
  if (!delay) return {SendStatus::kLinkDown};
  // Fixed draw order (drop, spike, dup) keeps the stream replayable.
  if (plan_.message_drop_p > 0.0 && rng_.Chance(plan_.message_drop_p)) {
    Record(FaultKind::kMessageDrop, stage, 0.0);
    return {SendStatus::kDropped};
  }
  SendResult result{SendStatus::kDelivered, *delay, false};
  if (plan_.delay_spike_p > 0.0 && rng_.Chance(plan_.delay_spike_p)) {
    result.delay_ms *= plan_.delay_spike_mult;
    Record(FaultKind::kDelaySpike, stage, result.delay_ms);
  }
  if (plan_.message_dup_p > 0.0 && rng_.Chance(plan_.message_dup_p)) {
    result.duplicated = true;
    Record(FaultKind::kMessageDuplicate, stage, 0.0);
  }
  return result;
}

FaultInjector::SendResult FaultInjector::SendFile(WirelessLink& link,
                                                  std::size_t bytes,
                                                  const std::string& stage) {
  MaybeReconnect(link);
  if (ShouldFlap(stage)) {
    flap_fired_ = true;
    flap_down_ = true;
    reconnect_at_ms_ = clock_->now() + plan_.flap_down_ms;
    link.set_connected(false);
    Record(FaultKind::kLinkFlap, stage, plan_.flap_down_ms);
    return {SendStatus::kLinkDown};
  }
  const auto delay = link.TrySendFileDelay(bytes);
  if (!delay) return {SendStatus::kLinkDown};
  if (plan_.message_drop_p > 0.0 && rng_.Chance(plan_.message_drop_p)) {
    Record(FaultKind::kMessageDrop, stage, 0.0);
    return {SendStatus::kDropped};
  }
  SendResult result{SendStatus::kDelivered, *delay, false};
  if (plan_.delay_spike_p > 0.0 && rng_.Chance(plan_.delay_spike_p)) {
    result.delay_ms *= plan_.delay_spike_mult;
    Record(FaultKind::kDelaySpike, stage, result.delay_ms);
  }
  if (plan_.message_dup_p > 0.0 && rng_.Chance(plan_.message_dup_p)) {
    result.duplicated = true;
    Record(FaultKind::kMessageDuplicate, stage, 0.0);
  }
  return result;
}

bool FaultInjector::MutateRecording(const std::string& stage,
                                    std::vector<double>* recording) {
  if (recording == nullptr || recording->empty()) return false;
  if (plan_.recording_drop_p > 0.0 && rng_.Chance(plan_.recording_drop_p)) {
    recording->clear();
    Record(FaultKind::kRecordingDrop, stage, 0.0);
    return true;
  }
  if (plan_.recording_truncate_keep < 1.0) {
    const std::size_t keep = static_cast<std::size_t>(
        static_cast<double>(recording->size()) * plan_.recording_truncate_keep);
    recording->resize(keep);
    Record(FaultKind::kRecordingTruncate, stage,
           static_cast<double>(keep));
    if (recording->empty()) return true;
  }
  if (plan_.recording_clip_level > 0.0) {
    const double limit = plan_.recording_clip_level;
    for (double& s : *recording) s = std::clamp(s, -limit, limit);
    Record(FaultKind::kRecordingClip, stage, limit);
  }
  return false;
}

}  // namespace wearlock::sim
