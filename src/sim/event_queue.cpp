#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace wearlock::sim {

bool EventQueue::Later(const Event& a, const Event& b) {
  if (a.at_ms != b.at_ms) return a.at_ms > b.at_ms;
  return a.id > b.id;
}

EventQueue::EventId EventQueue::ScheduleAt(Millis at_ms, Callback fn) {
  if (!std::isfinite(at_ms)) {
    throw std::invalid_argument("EventQueue::ScheduleAt: non-finite time " +
                                std::to_string(at_ms));
  }
  if (at_ms < now_ms_) {
    throw std::invalid_argument(
        "EventQueue::ScheduleAt: " + std::to_string(at_ms) +
        " ms is before now (" + std::to_string(now_ms_) + " ms)");
  }
  if (!fn) {
    throw std::invalid_argument("EventQueue::ScheduleAt: empty callback");
  }
  const EventId id = next_id_++;
  heap_.push_back(Event{at_ms, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later);
  return id;
}

EventQueue::EventId EventQueue::ScheduleAfter(Millis delay_ms, Callback fn) {
  if (!std::isfinite(delay_ms) || delay_ms < 0.0) {
    throw std::invalid_argument("EventQueue::ScheduleAfter: invalid delay " +
                                std::to_string(delay_ms) + " ms");
  }
  return ScheduleAt(now_ms_ + delay_ms, std::move(fn));
}

bool EventQueue::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy deletion: the heap entry stays until it surfaces in RunOne.
  for (const Event& event : heap_) {
    if (event.id == id) return cancelled_.insert(id).second;
  }
  return false;
}

bool EventQueue::RunOne() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Event event = std::move(heap_.back());
    heap_.pop_back();
    if (cancelled_.erase(event.id) > 0) continue;
    now_ms_ = event.at_ms;
    // Move the callback out first: it may schedule (reallocating heap_)
    // or even re-enter RunOne transitively.
    Callback fn = std::move(event.fn);
    fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::RunUntilIdle() {
  std::size_t ran = 0;
  while (RunOne()) ++ran;
  return ran;
}

}  // namespace wearlock::sim
