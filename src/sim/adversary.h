// Deterministic adversary machinery for the security matrix.
//
// The paper's security argument (§IV) is range-bounded acoustics; to
// *test* it, attackers have to be scheduled participants in the same
// simulation the legitimate devices run in - drawing from seed-forked
// Rngs, stamping events on the session's virtual clock, and replaying
// bit-identically under the same seed (the contract
// tests/security_matrix_test.cpp pins, mirroring sim/faults.h).
//
// This module is the channel-agnostic half: the attack grammar, the
// attack event trace, and the AdversaryDevice (the attacker's recorder/
// replayer state). The acoustic agents that splice these devices into
// audio::TwoMicScene live one layer up, in protocol/attack_agents.h -
// the sim layer stays a leaf of the layer DAG.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "sim/rng.h"

namespace wearlock::sim {

/// Speed of sound in air (m/s) - duplicated from audio/propagation.h
/// because sim is a DAG leaf and may not include audio. Distance
/// bounding leans on this being a physical constant no attacker can
/// beat: a relay only ever *adds* path.
inline constexpr double kSpeedOfSoundMps = 343.0;

enum class AttackKind {
  kEavesdrop,   ///< passive capture at range with high-gain gear
  kReplay,      ///< record a session, replay it to a later one
  kRelay,       ///< live capture-amplify-re-emit bridge (wormhole)
  kProbe,       ///< SonarSnoop-style active co-channel probing
  kOvershadow,  ///< AIC-style frame injection over the legit signal
};

std::string ToString(AttackKind kind);

/// Declarative description of one attack - the security matrix's
/// row axis, parseable from the CLI like sim::FaultPlan.
struct AttackSpec {
  AttackKind kind = AttackKind::kEavesdrop;
  /// Attacker standoff from the phone (eavesdrop/probe/overshadow and
  /// the replay capture position), or the phone->watch span the relay
  /// bridges.
  double distance_m = 2.0;
  /// Directional-mic / amplifier gain on the attacker's capture chain.
  double gain_db = 0.0;
  /// Processing latency the attacker's electronics add: replay handling
  /// time, or the relay's capture-transport-re-emit latency per pass.
  Millis handling_delay_ms = 0.0;
  /// Emission level relative to the legitimate transmit volume
  /// (probe/overshadow).
  double level = 1.0;
  /// The CLI-grammar spec this was parsed from ("" for specs built
  /// field-by-field); retained verbatim so telemetry records can carry
  /// the attack axis of their cohort key.
  std::string spec;

  /// True for a default-constructed spec: no attack configured.
  bool empty() const { return spec.empty(); }

  /// Parse a CLI-style spec: KIND[@DISTANCE][:key=value]... where KIND
  /// is eavesdrop|replay|relay|probe|overshadow and keys are
  ///   gain=DB | delay=MS | level=L
  /// e.g. "eavesdrop@2.0:gain=20", "relay@3:delay=3:gain=40".
  /// @throws std::invalid_argument on malformed entries or
  /// out-of-range values.
  [[nodiscard]] static AttackSpec Parse(const std::string& spec);
};

/// One attacker action, stamped with the virtual time it happened; the
/// ordered event list is the session's attack trace (the committed
/// golden traces in tests/golden/ pin it).
struct AttackEvent {
  AttackKind kind = AttackKind::kEavesdrop;
  std::string stage;
  Millis at_ms = 0.0;
  /// Stage-specific magnitude (capture samples, delay ms, recovered-
  /// token BER, estimated distance); 0 when the stage carries none.
  double value = 0.0;
};

/// Serialize an attack trace as JSONL (one event object per line) -
/// same shape as sim::FaultTraceJsonl, validated by json_check.h.
std::string AttackTraceJsonl(const std::vector<AttackEvent>& events);

/// The attacker's device state: a seed-forked Rng (so attacker noise is
/// part of the deterministic replay), the victim session's virtual
/// clock for event stamps, a capture tape, and the ordered event trace.
/// Not thread-safe: one device belongs to one attack scenario, like the
/// session's Rng.
class AdversaryDevice {
 public:
  /// @param rng forked from the scenario seed *after* the victim
  /// session's forks, so arming an attack never perturbs the
  /// legitimate acoustics of the same seed.
  /// @param clock the victim session's virtual clock. Must outlive the
  /// device.
  AdversaryDevice(AttackSpec spec, Rng rng, VirtualClock* clock);

  /// Append a stamped event to the attack trace.
  void Record(const std::string& stage, double value);

  /// Store one capture on the tape (record-and-replay material).
  void StoreCapture(std::vector<double> samples);

  bool HasCapture() const { return !tape_.empty(); }
  std::size_t capture_count() const { return tape_.size(); }

  /// The most recent capture. Precondition: HasCapture().
  const std::vector<double>& LastCapture() const { return tape_.back(); }

  /// One-way acoustic path delay over `distance_m` of air - what any
  /// relay pays on top of its electronics.
  static Millis PathDelayMs(double distance_m) {
    return distance_m / kSpeedOfSoundMps * 1000.0;
  }

  const AttackSpec& spec() const { return spec_; }
  Rng& rng() { return rng_; }
  const std::vector<AttackEvent>& events() const { return events_; }

 private:
  AttackSpec spec_;
  Rng rng_;
  VirtualClock* clock_;
  std::vector<std::vector<double>> tape_;
  std::vector<AttackEvent> events_;
};

}  // namespace wearlock::sim
