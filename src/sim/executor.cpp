#include "sim/executor.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>

namespace wearlock::sim {

ParallelExecutor::ParallelExecutor(std::size_t n_threads) {
  std::size_t count = n_threads > 0 ? n_threads : DefaultThreadCount();
  if (count == 0) count = 1;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ParallelExecutor::DefaultThreadCount() {
  if (const char* env = std::getenv("WEARLOCK_THREADS")) {
    std::size_t parsed = 0;
    const auto result =
        std::from_chars(env, env + std::strlen(env), parsed);
    if (result.ec == std::errc() && *result.ptr == '\0' && parsed > 0) {
      return parsed;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::uint64_t ParallelExecutor::TaskSeed(std::uint64_t base_seed,
                                         std::uint64_t index) {
  // SplitMix64 finalizer over a golden-ratio stride: consecutive indices
  // (and nearby base seeds) land far apart in seed space.
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::size_t ParallelExecutor::ChunkSize(std::size_t n_tasks,
                                        std::size_t workers,
                                        std::size_t hardware) {
  if (n_tasks <= 1 || workers <= 1) return std::max<std::size_t>(1, n_tasks);
  if (hardware == 0) hardware = 1;
  if (workers > hardware) {
    // Oversubscribed: the cores time-slice the workers, so fine-grained
    // claiming just multiplies lock handoffs and context switches
    // (BENCH_dsp_core.json's fig5 ran *slower* at 8 threads than 1 on a
    // 1-core box). Hand each worker one contiguous share up front.
    return (n_tasks + workers - 1) / workers;
  }
  // At or under the core count: ~4 chunks per worker balances uneven
  // task costs while amortizing the claim lock.
  return std::max<std::size_t>(1, n_tasks / (4 * workers));
}

void ParallelExecutor::RunTasks(
    std::size_t n_tasks, const std::function<void(std::size_t)>& task) {
  if (n_tasks == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  task_ = &task;
  n_tasks_ = n_tasks;
  next_index_ = 0;
  chunk_size_ = ChunkSize(n_tasks, workers_.size(),
                          std::thread::hardware_concurrency());
  pending_ = n_tasks;
  ++batch_id_;
  // Counted wakeups: a batch of c chunks can occupy at most c workers;
  // waking the rest just stampedes them through the lock to find no
  // work (the 1-core fig5 regression's other half).
  const std::size_t chunks = (n_tasks + chunk_size_ - 1) / chunk_size_;
  if (chunks >= workers_.size()) {
    work_ready_.notify_all();
  } else {
    for (std::size_t i = 0; i < chunks; ++i) work_ready_.notify_one();
  }
  batch_done_.wait(lock, [this] { return pending_ == 0; });
  task_ = nullptr;
}

void ParallelExecutor::WorkerLoop() {
  std::uint64_t last_batch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [&] {
      return stopping_ || (task_ != nullptr && batch_id_ != last_batch);
    });
    if (stopping_) return;
    last_batch = batch_id_;
    // Claim a chunk of indices under the lock, run the task bodies
    // outside it. A worker that re-enters this loop while a *newer*
    // batch is already posted simply joins it: indices are claimed
    // exactly once either way, which is all the determinism contract
    // needs (results are keyed by index, never by worker or
    // completion order).
    while (task_ != nullptr && next_index_ < n_tasks_) {
      const std::size_t begin = next_index_;
      const std::size_t end = std::min(n_tasks_, begin + chunk_size_);
      next_index_ = end;
      const std::function<void(std::size_t)>* task = task_;
      lock.unlock();
      for (std::size_t index = begin; index < end; ++index) (*task)(index);
      lock.lock();
      pending_ -= end - begin;
      if (pending_ == 0) batch_done_.notify_all();
    }
  }
}

}  // namespace wearlock::sim
