// Minimal C++20 coroutine task for the event-driven protocol machine.
//
// CoTask<T> is the compiler-generated state machine that replaced the
// blocking PhoneController call chain: every `co_await` boundary is a
// suspension point where the frame parks until an EventQueue event
// resumes it, so one thread multiplexes thousands of in-flight attempts
// (docs/architecture.md). Semantics:
//
//   * lazy start - the body does not run until the task is awaited (or
//     Resume() is called on a root task), so building a pipeline of
//     tasks performs no work;
//   * symmetric transfer - awaiting a child suspends the parent and
//     resumes the child in one hop; the child's final_suspend resumes
//     the parent the same way, so arbitrarily deep task chains use O(1)
//     host stack;
//   * exceptions are captured in the promise and rethrown at the await
//     (or Take()) site, mirroring normal call semantics.
//
// Single-threaded like everything else in the sim layer: a frame is
// only ever resumed by its own shard's queue.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace wearlock::sim {

template <typename T>
class CoTask;

namespace co_detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> handle) const noexcept {
    // Hand control straight back to the awaiting parent; a root task
    // with no continuation returns to the resuming event callback.
    std::coroutine_handle<> continuation = handle.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace co_detail

template <typename T = void>
class [[nodiscard]] CoTask {
 public:
  struct promise_type : co_detail::PromiseBase {
    std::optional<T> value;

    CoTask get_return_object() {
      return CoTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T result) { value.emplace(std::move(result)); }
  };

  CoTask() = default;
  explicit CoTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  CoTask(CoTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  CoTask& operator=(CoTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  ~CoTask() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ == nullptr || handle_.done(); }

  /// Start (or continue) a root task from non-coroutine code. Runs
  /// until the next suspension point or completion.
  void Resume() {
    if (handle_ != nullptr && !handle_.done()) handle_.resume();
  }

  /// Result of a completed task; rethrows a captured exception.
  T Take() {
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
    return std::move(*handle_.promise().value);
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept {
        return handle == nullptr || handle.done();
      }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) const noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer into the child
      }
      T await_resume() const {
        if (handle.promise().error) {
          std::rethrow_exception(handle.promise().error);
        }
        return std::move(*handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_ != nullptr) handle_.destroy();
    handle_ = nullptr;
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] CoTask<void> {
 public:
  struct promise_type : co_detail::PromiseBase {
    CoTask get_return_object() {
      return CoTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() const noexcept {}
  };

  CoTask() = default;
  explicit CoTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  CoTask(CoTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  CoTask& operator=(CoTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  ~CoTask() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ == nullptr || handle_.done(); }

  /// Type-erased handle of a root task, for scheduling its first
  /// resume on an event queue.
  std::coroutine_handle<> handle() const { return handle_; }

  void Resume() {
    if (handle_ != nullptr && !handle_.done()) handle_.resume();
  }

  /// Rethrows a captured exception from a completed task.
  void Take() {
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept {
        return handle == nullptr || handle.done();
      }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) const noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      void await_resume() const {
        if (handle.promise().error) {
          std::rethrow_exception(handle.promise().error);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_ != nullptr) handle_.destroy();
    handle_ = nullptr;
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace wearlock::sim
