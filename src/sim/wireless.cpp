#include "sim/wireless.h"

#include <cmath>
#include <stdexcept>

#include "obs/instrument.h"

namespace wearlock::sim {

std::string ToString(Radio radio) {
  return radio == Radio::kBluetooth ? "Bluetooth" : "WiFi";
}

LinkModel LinkModel::Bluetooth() {
  // Android Wear MessageAPI over BT LE / BR-EDR: tens-of-ms messages;
  // ChannelAPI bulk transfers crawl (~60 KB/s) with a large setup cost,
  // matching the slow BT file transfers the paper measures in Fig. 11.
  return LinkModel{
      .radio = Radio::kBluetooth,
      .message_base_ms = 70.0,
      .throughput_bytes_per_ms = 60.0,
      .file_setup_ms = 400.0,
      .jitter_sigma = 0.35,
  };
}

LinkModel LinkModel::Wifi() {
  // Same APIs routed over WiFi: ~15 ms messages, ~2 MB/s bulk.
  return LinkModel{
      .radio = Radio::kWifi,
      .message_base_ms = 15.0,
      .throughput_bytes_per_ms = 2000.0,
      .file_setup_ms = 40.0,
      .jitter_sigma = 0.25,
  };
}

WirelessLink::WirelessLink(LinkModel model, Rng rng, bool connected)
    : model_(model), rng_(std::move(rng)), connected_(connected) {}

double WirelessLink::Jitter() {
  // Lognormal multiplicative jitter with median 1.0.
  return std::exp(rng_.Gaussian(model_.jitter_sigma));
}

std::optional<Millis> WirelessLink::TrySendMessageDelay() {
  if (!connected_) {
    WL_COUNT("link.send_on_down");
    return std::nullopt;
  }
  const Millis delay = model_.message_base_ms * Jitter();
  WL_COUNT("link.messages");
  WL_HIST("link.message_ms", delay);
  return delay;
}

std::optional<Millis> WirelessLink::TrySendFileDelay(std::size_t bytes) {
  if (!connected_) {
    WL_COUNT("link.send_on_down");
    return std::nullopt;
  }
  const Millis transfer =
      static_cast<double>(bytes) / model_.throughput_bytes_per_ms;
  const Millis delay = (model_.file_setup_ms + transfer) * Jitter();
  WL_COUNT("link.transfers");
  WL_COUNT_N("link.bytes", bytes);
  WL_HIST("link.file_ms", delay);
  return delay;
}

std::optional<Millis> WirelessLink::TrySendRoundTrip() {
  const auto out = TrySendMessageDelay();
  if (!out) return std::nullopt;
  const auto back = TrySendMessageDelay();
  if (!back) return std::nullopt;
  return *out + *back;
}

Millis WirelessLink::SampleMessageDelay() {
  const auto delay = TrySendMessageDelay();
  if (!delay) throw std::logic_error("WirelessLink: link is down");
  return *delay;
}

Millis WirelessLink::SampleFileDelay(std::size_t bytes) {
  const auto delay = TrySendFileDelay(bytes);
  if (!delay) throw std::logic_error("WirelessLink: link is down");
  return *delay;
}

Millis WirelessLink::SampleRoundTrip() {
  const auto rtt = TrySendRoundTrip();
  if (!rtt) throw std::logic_error("WirelessLink: link is down");
  return *rtt;
}

}  // namespace wearlock::sim
