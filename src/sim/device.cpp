#include "sim/device.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace wearlock::sim {
namespace {

std::atomic<double>& FixedHostTiming() {
  // Seeded once from the environment so CLIs and ctest gates can arm
  // deterministic timing without plumbing a flag through every layer.
  static std::atomic<double> fixed_ms{[] {
    const char* env = std::getenv("WEARLOCK_FIXED_HOST_MS");
    if (env == nullptr) return -1.0;
    double parsed = -1.0;
    std::from_chars(env, env + std::strlen(env), parsed);
    return parsed;
  }()};
  return fixed_ms;
}

}  // namespace

void SetFixedHostTimingMs(double ms) {
  FixedHostTiming().store(ms, std::memory_order_relaxed);
}

double FixedHostTimingMs() {
  return FixedHostTiming().load(std::memory_order_relaxed);
}

DeviceProfile DeviceProfile::Nexus6() {
  // 2014 flagship (Snapdragon 805). Java DSP on it runs roughly an order
  // of magnitude slower than optimized native code on a modern x86 host.
  return DeviceProfile{
      .name = "Nexus 6",
      .compute_scale = 35.0,
      .compute_power_mw = 1500.0,
      .record_power_mw = 120.0,
      .bt_power_mw = 100.0,
      .wifi_power_mw = 280.0,
  };
}

DeviceProfile DeviceProfile::GalaxyNexus() {
  // 2011 dual-core OMAP 4460; the paper's low-end phone.
  return DeviceProfile{
      .name = "Galaxy Nexus",
      .compute_scale = 170.0,
      .compute_power_mw = 1100.0,
      .record_power_mw = 110.0,
      .bt_power_mw = 90.0,
      .wifi_power_mw = 250.0,
  };
}

DeviceProfile DeviceProfile::Moto360() {
  // First-gen Moto 360: a single-core TI OMAP3 from 2010 running Android
  // Wear; by far the slowest and most energy-constrained device.
  return DeviceProfile{
      .name = "Moto 360",
      .compute_scale = 420.0,
      .compute_power_mw = 380.0,
      .record_power_mw = 60.0,
      .bt_power_mw = 70.0,
      .wifi_power_mw = 200.0,
  };
}

Millis TimeHostMs(const std::function<void()>& work) {
  if (!work) throw std::invalid_argument("TimeHostMs: null workload");
  const double fixed_ms = FixedHostTimingMs();
  if (fixed_ms >= 0.0) {
    // Deterministic-campaign mode: run the workload for its results
    // but charge the fixed modeled cost instead of a measurement.
    work();
    return fixed_ms;
  }
  const auto start = std::chrono::steady_clock::now();  // NOLINT(determinism)
  work();
  const auto end = std::chrono::steady_clock::now();  // NOLINT(determinism)
  return std::chrono::duration<double, std::milli>(end - start).count();
}

Millis TimeHostMedianMs(const std::function<void()>& work, int reps) {
  if (reps <= 0) throw std::invalid_argument("TimeHostMedianMs: reps must be > 0");
  std::vector<Millis> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) times.push_back(TimeHostMs(work));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace wearlock::sim
