#include "sim/rng.h"

namespace wearlock::sim {

std::vector<double> Rng::GaussianVector(std::size_t n, double stddev) {
  std::vector<double> v(n);
  std::normal_distribution<double> dist(0.0, stddev);
  for (double& x : v) x = dist(engine_);
  return v;
}

}  // namespace wearlock::sim
