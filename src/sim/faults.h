// Deterministic fault injection for the control channel and the
// acoustic capture path.
//
// Real WearLock deployments see lossy links: Bluetooth flaps
// mid-protocol, MessageAPI deliveries vanish or stall, the watch app
// gets killed halfway through a recording. The paper hides this behind
// "the participant pressed the button again"; a production protocol
// has to time out, retry and degrade instead. This module supplies the
// adversary half of that story: a FaultPlan describes which failures
// to inject, and a FaultInjector executes them - every decision drawn
// from a seed-forked Rng and every outage scheduled on the virtual
// clock, so a failure sequence replays bit-identically under the same
// seed (the property tests/fault_matrix_test.cpp pins).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "sim/rng.h"
#include "sim/wireless.h"

namespace wearlock::sim {

enum class FaultKind {
  kMessageDrop,        ///< control message silently lost
  kMessageDuplicate,   ///< delivered twice (receiver must dedup)
  kDelaySpike,         ///< delivery stalls by a multiplier
  kLinkFlap,           ///< link drops mid-protocol
  kLinkRecover,        ///< flapped link comes back up
  kRecordingTruncate,  ///< capture cut short (app killed mid-record)
  kRecordingClip,      ///< capture hard-clipped (broken AGC)
  kRecordingDrop,      ///< capture lost entirely
};

std::string ToString(FaultKind kind);

/// Declarative description of what to inject. Defaults are all-off; a
/// default FaultPlan makes the injector a transparent pass-through.
struct FaultPlan {
  /// P(drop) per control message.
  double message_drop_p = 0.0;
  /// P(duplicate delivery) per control message.
  double message_dup_p = 0.0;
  /// P(delay spike) per delivered message, and its latency multiplier.
  double delay_spike_p = 0.0;
  double delay_spike_mult = 8.0;
  /// Flap the link at the first link operation of this stage ("rts",
  /// "p1-upload", "p2-config", "p2-upload", "p2-result", or "any";
  /// empty = never). The outage lasts flap_down_ms of virtual time.
  std::string flap_stage;
  Millis flap_down_ms = 500.0;
  /// Keep-fraction for watch recordings; < 1 truncates every capture.
  double recording_truncate_keep = 1.0;
  /// Hard-clip level for watch recordings; > 0 enables.
  double recording_clip_level = 0.0;
  /// P(recording lost entirely) per capture.
  double recording_drop_p = 0.0;
  /// The CLI-grammar spec this plan was parsed from ("" for plans
  /// built field-by-field). Retained verbatim so telemetry records
  /// can carry the fault axis of their cohort key without
  /// re-serializing the plan.
  std::string spec;

  bool empty() const;

  /// Parse a CLI-style spec: comma-separated entries of
  ///   drop=P | dup=P | spike=P[xM] | flap@STAGE[:MS] | trunc=F |
  ///   clip=L | recdrop=P
  /// e.g. "drop=0.3,flap@rts,trunc=0.5".
  /// @throws std::invalid_argument on malformed entries or
  /// out-of-range values.
  [[nodiscard]] static FaultPlan Parse(const std::string& spec);
};

/// One injected fault, stamped with the virtual time it happened; the
/// ordered event list is the session's fault trace.
struct FaultEvent {
  FaultKind kind = FaultKind::kMessageDrop;
  std::string stage;
  Millis at_ms = 0.0;
  /// Kind-specific magnitude (spiked delay ms, samples kept, clip
  /// level, outage ms); 0 when the kind carries no magnitude.
  double value = 0.0;
};

/// Serialize a fault trace as JSONL (one event object per line) - the
/// format the committed golden trace pins and json_check.h validates.
std::string FaultTraceJsonl(const std::vector<FaultEvent>& events);

/// Executes a FaultPlan against one session. Not thread-safe: one
/// injector belongs to one session, like the session's Rng.
class FaultInjector {
 public:
  /// @param rng forked from the session seed (so the failure sequence
  /// is part of the session's deterministic replay).
  /// @param clock the session's virtual clock; outages are scheduled
  /// against it. Must outlive the injector.
  FaultInjector(FaultPlan plan, Rng rng, VirtualClock* clock);

  enum class SendStatus {
    kDelivered,  ///< arrived after delay_ms (maybe duplicated)
    kDropped,    ///< lost; the sender sees only its own timeout
    kLinkDown,   ///< link down (pre-existing or flapped right now)
  };

  struct SendResult {
    SendStatus status = SendStatus::kDelivered;
    Millis delay_ms = 0.0;
    bool duplicated = false;
  };

  /// A control message through the link with faults applied.
  SendResult SendMessage(WirelessLink& link, const std::string& stage);

  /// A bulk transfer through the link with faults applied.
  SendResult SendFile(WirelessLink& link, std::size_t bytes,
                      const std::string& stage);

  /// Apply capture faults in place. Returns true when the recording
  /// was dropped entirely (cleared); truncation/clipping return false.
  bool MutateRecording(const std::string& stage,
                       std::vector<double>* recording);

  /// Bring a flapped link back up once the scheduled outage has
  /// elapsed on the virtual clock. Callers waiting out an outage
  /// advance the clock, then poll this.
  void MaybeReconnect(WirelessLink& link);

  /// True while a flap outage is in progress (recovery scheduled).
  bool flap_down() const { return flap_down_; }
  Millis reconnect_at_ms() const { return reconnect_at_ms_; }

  const FaultPlan& plan() const { return plan_; }
  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  bool ShouldFlap(const std::string& stage);
  void Record(FaultKind kind, const std::string& stage, double value);

  FaultPlan plan_;
  Rng rng_;
  VirtualClock* clock_;
  bool flap_fired_ = false;
  bool flap_down_ = false;
  Millis reconnect_at_ms_ = 0.0;
  std::vector<FaultEvent> events_;
};

}  // namespace wearlock::sim
