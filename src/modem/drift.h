// Sync-driven timing-drift tracking (crowded-world hardening).
//
// Two distinct clock errors hit the watch's capture (audio/impairments.h):
//   * accumulated offset - the TX/RX sample-rate offset integrated since
//     the devices last synced clocks slides the whole capture window by
//     whole milliseconds. The preamble correlator localizes the frame to
//     one sample, so (found - expected) / clock_age recovers the SRO to
//     hundredths of a ppm.
//   * ongoing rate error - SRO plus walking-speed Doppler warp the frame
//     itself (~4000 ppm at 1.4 m/s). The RTS probe carries block-pilot
//     symbols that are *identical* on the wire, so the spacing between
//     the first and last pilot body measures the received symbol period
//     directly; sub-sample peak interpolation resolves the warp rate to
//     a few hundred ppm, enough to de-rotate the data constellation.
// CompensateRate inverts the measured warp with the windowed-sinc
// arbitrary-ratio resampler, after which the equalizer is re-estimated
// on the de-warped capture (the protocol re-runs the probe analysis).
#pragma once

#include <cstddef>
#include <span>

#include "audio/signal.h"
#include "modem/frame.h"

namespace wearlock::modem {

struct DriftConfig {
  /// Seconds since the last clock synchronization - converts the
  /// observed window shift into a ppm SRO estimate. Must match the
  /// channel model's constant (ImpairmentPlan::clock_age_s).
  double clock_age_s = 1400.0;
  /// Rate-search envelope: |warp| beyond this is not searched
  /// (walking-speed Doppler tops out near 5 m/s / 343 m/s ~ 15000 ppm;
  /// the default covers 2 m/s plus SRO headroom).
  double max_rate_ppm = 8000.0;
  /// Pilot-spacing correlation below this is too noisy to trust; the
  /// estimate reports rate 0 (no compensation) but keeps the shift.
  double min_rate_score = 0.35;
};

struct DriftEstimate {
  /// Preamble was found; shift_samples and sro_ppm are meaningful.
  bool valid = false;
  /// Found preamble position minus the expected one (positive = the
  /// capture window opened early / content landed late).
  long shift_samples = 0;
  /// SRO implied by the shift over the configured clock age.
  double sro_ppm = 0.0;
  /// Measured time-warp rate of the frame itself, as (rate-1) in ppm;
  /// 0 when the pilot-spacing correlation was below min_rate_score.
  double rate_ppm = 0.0;
  /// Normalized pilot-spacing correlation backing rate_ppm.
  double rate_score = 0.0;
};

/// Estimate capture-window shift and warp rate from a probe-frame
/// recording. `expected_start` is where the receiver's own clock says
/// the preamble should sit (the scene's lead-in). Needs
/// spec.probe_symbols >= 2 for the rate estimate; with fewer pilots only
/// the shift is measured. Pure DSP - no scene or RNG draws.
[[nodiscard]] DriftEstimate EstimateDrift(std::span<const double> recording,
                                          const FrameSpec& spec,
                                          std::size_t expected_start,
                                          const DriftConfig& config = {});

/// Undo a measured time warp: resample so content recorded at rate
/// (1 + rate_ppm * 1e-6) plays back at rate 1. Identity when
/// rate_ppm == 0.
[[nodiscard]] audio::Samples CompensateRate(const audio::Samples& recording,
                                            double rate_ppm);

}  // namespace wearlock::modem
