// Streaming receiver: the watch-side view of the modem.
//
// The batch Demodulator needs the whole recording up front; a real watch
// records continuously and must detect/decode incrementally as audio
// arrives from the microphone. StreamingReceiver accepts arbitrary-size
// chunks, runs the energy gate cheaply on each, searches for the
// preamble only around gate openings, and decodes as soon as enough
// samples for the expected frame have accumulated - then reports how
// many samples it can discard, bounding memory.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "modem/demodulator.h"
#include "modem/modulator.h"

namespace wearlock::modem {

enum class StreamState {
  kSearching,  ///< energy gate armed, nothing heard yet
  kCollecting, ///< preamble found, buffering the frame body
  kDone,       ///< frame decoded (result available)
  kFailed,     ///< preamble found but the frame did not decode
};

std::string ToString(StreamState state);

struct StreamingConfig {
  DemodConfig demod{};
  /// Streaming detection threshold. The paper's batch threshold (0.05)
  /// sits below the noise floor of a normalized 256-sample correlation
  /// (sigma ~ 1/sqrt(256) = 0.06), which batch mode tolerates because the
  /// true peak dominates the max - but a streaming search runs on
  /// partial buffers where the real preamble has not arrived yet, so it
  /// needs a decisive score.
  double detection_threshold = 0.3;
  /// Give up (kFailed) after this many failed decode attempts.
  int max_decode_attempts = 3;
  /// Payload expected in the frame (agreed over the control channel).
  Modulation modulation = Modulation::kQpsk;
  std::size_t payload_bits = 32;
  /// Keep at most this much tail audio while searching (must exceed the
  /// preamble + a detection window; older audio cannot start a frame).
  std::size_t search_retain_samples = 16384;
  /// Extra samples past the nominal frame end to tolerate sync slack.
  std::size_t guard_tail_samples = 512;
  /// Timing-drift compensation (modem/drift.h): when nonzero, every
  /// pushed chunk runs through a stateful windowed-sinc fractional-delay
  /// resampler that undoes a capture recorded at rate
  /// (1 + compensate_rate_ppm * 1e-6) - the sync-driven drift estimate
  /// feeds this. The resampler keeps interpolation phase across chunk
  /// boundaries, so chunking does not affect the compensated stream.
  double compensate_rate_ppm = 0.0;
  /// Interpolation kernel width for the drift resampler (odd).
  std::size_t resample_taps = 17;
};

class StreamingReceiver {
 public:
  StreamingReceiver(FrameSpec spec, StreamingConfig config = {});

  /// Feed the next microphone chunk. Returns the new state. Once kDone
  /// or kFailed, further pushes are ignored until Reset().
  StreamState Push(const audio::Samples& chunk);

  StreamState state() const { return state_; }

  /// The decoded result once state() == kDone.
  const std::optional<DemodResult>& result() const { return result_; }

  /// Samples buffered right now (memory bound check).
  std::size_t buffered_samples() const { return buffer_.size() - head_; }

  /// Backing-store capacity in samples (high-water memory check; bounded
  /// by search_retain_samples + the largest chunk while searching).
  std::size_t buffer_capacity() const { return buffer_.capacity(); }

  /// Total samples consumed since construction/Reset.
  std::size_t consumed_samples() const { return consumed_; }

  /// Re-arm for the next frame (keeps nothing - the buffer's backing
  /// store is released, not just cleared).
  void Reset();

 private:
  /// The live (not yet discarded) slice of the retained buffer.
  std::span<const double> View() const {
    return std::span<const double>(buffer_).subspan(head_);
  }

  void TrySearch();
  void TryDecode();
  /// Drift compensation: fold `chunk` into the resampler and return the
  /// output samples that became computable (kernel fully covered).
  audio::Samples WarpIngest(const audio::Samples& chunk);

  FrameSpec spec_;
  StreamingConfig config_;
  PreambleDetector detector_;
  Demodulator demodulator_;
  /// Sliding retained audio: the logical buffer is buffer_[head_..].
  /// Discards advance head_ (O(1)); the prefix is compacted away only at
  /// the next searching-state Push, so steady state does one bounded
  /// memmove per chunk and never reallocates.
  audio::Samples buffer_;
  std::size_t head_ = 0;
  std::size_t frame_symbols_ = 0;  ///< expected OFDM symbols per frame
  int decode_attempts_ = 0;
  std::size_t consumed_ = 0;
  std::size_t discarded_ = 0;       ///< samples dropped from the logical head
  std::size_t preamble_start_ = 0;  ///< absolute index once detected
  StreamState state_ = StreamState::kSearching;
  std::optional<DemodResult> result_;
  /// Fractional-delay resampler state (compensate_rate_ppm != 0):
  /// pending raw input, the absolute input index of its first sample,
  /// and the index of the next compensated output sample.
  audio::Samples warp_pending_;
  std::uint64_t warp_base_ = 0;
  std::uint64_t warp_out_ = 0;
};

}  // namespace wearlock::modem
