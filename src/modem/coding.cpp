#include "modem/coding.h"

#include <stdexcept>

#include "obs/instrument.h"

namespace wearlock::modem {
namespace {

// Hamming(7,4) generator: codeword = [d1 d2 d3 d4 p1 p2 p3] with
//   p1 = d1^d2^d4, p2 = d1^d3^d4, p3 = d2^d3^d4.
void EncodeHammingBlock(const std::uint8_t* d, std::vector<std::uint8_t>& out) {
  const std::uint8_t d1 = d[0] & 1, d2 = d[1] & 1, d3 = d[2] & 1, d4 = d[3] & 1;
  out.push_back(d1);
  out.push_back(d2);
  out.push_back(d3);
  out.push_back(d4);
  out.push_back(static_cast<std::uint8_t>(d1 ^ d2 ^ d4));
  out.push_back(static_cast<std::uint8_t>(d1 ^ d3 ^ d4));
  out.push_back(static_cast<std::uint8_t>(d2 ^ d3 ^ d4));
}

void DecodeHammingBlock(const std::uint8_t* c, std::vector<std::uint8_t>& out) {
  std::uint8_t w[7];
  for (int i = 0; i < 7; ++i) w[i] = c[i] & 1;
  // Syndrome bits identify the flipped position (if exactly one).
  const std::uint8_t s1 = static_cast<std::uint8_t>(w[0] ^ w[1] ^ w[3] ^ w[4]);
  const std::uint8_t s2 = static_cast<std::uint8_t>(w[0] ^ w[2] ^ w[3] ^ w[5]);
  const std::uint8_t s3 = static_cast<std::uint8_t>(w[1] ^ w[2] ^ w[3] ^ w[6]);
  // Map syndrome -> bit index in [d1 d2 d3 d4 p1 p2 p3].
  static constexpr int kSyndromeToBit[8] = {
      // s3 s2 s1 packed as (s3<<2)|(s2<<1)|s1
      -1,  // 000: no error
      4,   // 001: p1
      5,   // 010: p2
      0,   // 011: d1
      6,   // 100: p3
      1,   // 101: d2
      2,   // 110: d3
      3,   // 111: d4
  };
  const int flipped = kSyndromeToBit[(s3 << 2) | (s2 << 1) | s1];
  if (flipped >= 0) w[flipped] ^= 1;
  out.push_back(w[0]);
  out.push_back(w[1]);
  out.push_back(w[2]);
  out.push_back(w[3]);
}

}  // namespace

std::string ToString(CodeScheme scheme) {
  switch (scheme) {
    case CodeScheme::kNone: return "uncoded";
    case CodeScheme::kHamming74: return "Hamming(7,4)";
    case CodeScheme::kRepetition3: return "repetition-3";
  }
  return "?";
}

double CodeRate(CodeScheme scheme) {
  switch (scheme) {
    case CodeScheme::kNone: return 1.0;
    case CodeScheme::kHamming74: return 4.0 / 7.0;
    case CodeScheme::kRepetition3: return 1.0 / 3.0;
  }
  throw std::invalid_argument("CodeRate: unknown scheme");
}

std::size_t EncodedLength(CodeScheme scheme, std::size_t n) {
  switch (scheme) {
    case CodeScheme::kNone: return n;
    case CodeScheme::kHamming74: return (n + 3) / 4 * 7;
    case CodeScheme::kRepetition3: return n * 3;
  }
  throw std::invalid_argument("EncodedLength: unknown scheme");
}

std::vector<std::uint8_t> Encode(CodeScheme scheme,
                                 const std::vector<std::uint8_t>& bits) {
  switch (scheme) {
    case CodeScheme::kNone:
      return bits;
    case CodeScheme::kHamming74: {
      std::vector<std::uint8_t> padded = bits;
      while (padded.size() % 4 != 0) padded.push_back(0);
      std::vector<std::uint8_t> out;
      out.reserve(padded.size() / 4 * 7);
      for (std::size_t i = 0; i < padded.size(); i += 4) {
        EncodeHammingBlock(&padded[i], out);
      }
      return out;
    }
    case CodeScheme::kRepetition3: {
      std::vector<std::uint8_t> out;
      out.reserve(bits.size() * 3);
      for (std::uint8_t b : bits) {
        out.push_back(b & 1);
        out.push_back(b & 1);
        out.push_back(b & 1);
      }
      return out;
    }
  }
  throw std::invalid_argument("Encode: unknown scheme");
}

std::vector<std::uint8_t> Decode(CodeScheme scheme,
                                 const std::vector<std::uint8_t>& coded) {
  WL_SPAN("modem.decode");
  WL_COUNT("modem.decode.calls");
  WL_COUNT_N("modem.decode.coded_bits", coded.size());
  switch (scheme) {
    case CodeScheme::kNone:
      return coded;
    case CodeScheme::kHamming74: {
      std::vector<std::uint8_t> out;
      out.reserve(coded.size() / 7 * 4);
      for (std::size_t i = 0; i + 7 <= coded.size(); i += 7) {
        DecodeHammingBlock(&coded[i], out);
      }
      return out;
    }
    case CodeScheme::kRepetition3: {
      std::vector<std::uint8_t> out;
      out.reserve(coded.size() / 3);
      for (std::size_t i = 0; i + 3 <= coded.size(); i += 3) {
        const int votes = (coded[i] & 1) + (coded[i + 1] & 1) + (coded[i + 2] & 1);
        out.push_back(votes >= 2 ? 1 : 0);
      }
      return out;
    }
  }
  throw std::invalid_argument("Decode: unknown scheme");
}

std::vector<std::uint8_t> DecodeSoft(CodeScheme scheme,
                                     const std::vector<double>& llrs) {
  WL_SPAN("modem.decode_soft");
  WL_COUNT("modem.decode_soft.calls");
  switch (scheme) {
    case CodeScheme::kNone: {
      std::vector<std::uint8_t> out;
      out.reserve(llrs.size());
      for (double l : llrs) out.push_back(l < 0.0 ? 1 : 0);
      return out;
    }
    case CodeScheme::kRepetition3: {
      std::vector<std::uint8_t> out;
      out.reserve(llrs.size() / 3);
      for (std::size_t i = 0; i + 3 <= llrs.size(); i += 3) {
        out.push_back(llrs[i] + llrs[i + 1] + llrs[i + 2] < 0.0 ? 1 : 0);
      }
      return out;
    }
    case CodeScheme::kHamming74: {
      std::vector<std::uint8_t> out;
      out.reserve(llrs.size() / 7 * 4);
      for (std::size_t i = 0; i + 7 <= llrs.size(); i += 7) {
        // Maximum likelihood over the 16 codewords: a codeword's score is
        // the sum of LLRs it agrees with (bit 0 contributes +llr, bit 1
        // contributes -llr); pick the max.
        double best_score = -1e30;
        unsigned best_data = 0;
        for (unsigned data = 0; data < 16; ++data) {
          const std::uint8_t d[4] = {
              static_cast<std::uint8_t>((data >> 3) & 1),
              static_cast<std::uint8_t>((data >> 2) & 1),
              static_cast<std::uint8_t>((data >> 1) & 1),
              static_cast<std::uint8_t>(data & 1)};
          std::vector<std::uint8_t> cw;
          EncodeHammingBlock(d, cw);
          double score = 0.0;
          for (int j = 0; j < 7; ++j) {
            score += cw[static_cast<std::size_t>(j)] ? -llrs[i + static_cast<std::size_t>(j)]
                                                     : llrs[i + static_cast<std::size_t>(j)];
          }
          if (score > best_score) {
            best_score = score;
            best_data = data;
          }
        }
        out.push_back(static_cast<std::uint8_t>((best_data >> 3) & 1));
        out.push_back(static_cast<std::uint8_t>((best_data >> 2) & 1));
        out.push_back(static_cast<std::uint8_t>((best_data >> 1) & 1));
        out.push_back(static_cast<std::uint8_t>(best_data & 1));
      }
      return out;
    }
  }
  throw std::invalid_argument("DecodeSoft: unknown scheme");
}

namespace {

/// Read order of the depth-column block interleaver: all indices
/// congruent to 0 mod depth (in ascending order), then 1 mod depth, ...
std::vector<std::size_t> InterleavePermutation(std::size_t n,
                                               std::size_t depth) {
  std::vector<std::size_t> perm;
  perm.reserve(n);
  for (std::size_t column = 0; column < depth; ++column) {
    for (std::size_t i = column; i < n; i += depth) perm.push_back(i);
  }
  return perm;
}

}  // namespace

std::vector<std::uint8_t> Interleave(const std::vector<std::uint8_t>& bits,
                                     std::size_t depth) {
  if (depth <= 1 || bits.size() <= depth) return bits;
  const std::vector<std::size_t> perm =
      InterleavePermutation(bits.size(), depth);
  std::vector<std::uint8_t> out(bits.size());
  for (std::size_t k = 0; k < perm.size(); ++k) out[k] = bits[perm[k]];
  return out;
}

std::vector<std::uint8_t> Deinterleave(const std::vector<std::uint8_t>& bits,
                                       std::size_t depth) {
  if (depth <= 1 || bits.size() <= depth) return bits;
  const std::vector<std::size_t> perm =
      InterleavePermutation(bits.size(), depth);
  std::vector<std::uint8_t> out(bits.size());
  for (std::size_t k = 0; k < perm.size(); ++k) out[perm[k]] = bits[k];
  return out;
}

void SoftCombiner::Add(const std::vector<double>& llrs) {
  if (rounds_ == 0) {
    sum_ = llrs;
  } else {
    if (llrs.size() != sum_.size()) {
      throw std::invalid_argument(
          "SoftCombiner: retransmission length mismatch");
    }
    for (std::size_t i = 0; i < llrs.size(); ++i) sum_[i] += llrs[i];
  }
  ++rounds_;
  WL_COUNT("modem.chase.combined_rounds");
}

std::vector<std::uint8_t> SoftCombiner::HardBits() const {
  return DecodeSoft(CodeScheme::kNone, sum_);
}

void SoftCombiner::Reset() {
  sum_.clear();
  rounds_ = 0;
}

}  // namespace wearlock::modem
