// Golden-vector generation for the modem regression test.
//
// One canonical procedure, shared by tests/modem_golden_test.cpp (which
// pins its outputs) and `wearlock_modem_cli --regen-golden` (which
// reprints them after an intentional DSP change): deterministic payload
// bits from sim::Rng, a clean loopback through Modulate -> Demodulate,
// FNV-1a checksums of the exact waveform samples and recovered bits.
#pragma once

#include <cstdint>
#include <string>

#include "modem/modem.h"

namespace wearlock::modem {

struct GoldenVector {
  Modulation modulation = Modulation::kQpsk;
  std::uint64_t waveform_fnv = 0;  ///< bit-pattern checksum of tx samples
  std::uint64_t bits_fnv = 0;      ///< checksum of clean-loopback RX bits
  std::size_t n_samples = 0;
  bool demodulated = false;  ///< clean loopback must always demodulate
};

/// Payload length of the golden frames (bits).
inline constexpr std::size_t kGoldenBits = 192;

/// The seed the committed golden table and --regen-golden both use.
inline constexpr std::uint64_t kGoldenSeed = 0x601D;

/// Compute the golden vector for one modulation on the default audible
/// FrameSpec. `seed` pins the payload bit pattern.
GoldenVector ComputeGoldenVector(Modulation m, std::uint64_t seed);

/// One pasteable C++ table row, the --regen-golden output format:
///   {Modulation::kQpsk, 0x1234567890ABCDEFull, 0xFEDCBA0987654321ull},
std::string FormatGoldenRow(const GoldenVector& golden);

}  // namespace wearlock::modem
