#include "modem/sync.h"

#include <cmath>

namespace wearlock::modem {

namespace {

// Normalized CP correlation of one symbol at one candidate offset, or 0
// if out of bounds.
// lint: hot-path
double CpMetricAt(std::span<const double> recording, long cp_start,
                  const FrameSpec& spec) {
  const std::size_t tg = spec.cyclic_prefix_samples;
  const std::size_t ts = spec.fft_size();
  if (cp_start < 0) return 0.0;
  const std::size_t s = static_cast<std::size_t>(cp_start);
  if (s + tg + ts > recording.size()) return 0.0;
  double dot = 0.0, e_head = 0.0, e_tail = 0.0;
  for (std::size_t t = 0; t < tg; ++t) {
    const double head = recording[s + t];
    const double tail = recording[s + t + ts];
    dot += head * tail;
    e_head += head * head;
    e_tail += tail * tail;
  }
  const double denom = std::sqrt(e_head * e_tail);
  return denom > 1e-30 ? dot / denom : 0.0;
}

}  // namespace

FineSyncResult FineSyncJoint(std::span<const double> recording,
                             std::size_t symbols_start, std::size_t n_symbols,
                             const FrameSpec& spec, long search_range) {
  FineSyncResult best;
  if (n_symbols == 0) return best;
  bool found = false;
  for (long tf = -search_range; tf <= search_range; ++tf) {
    double acc = 0.0;
    for (std::size_t s = 0; s < n_symbols; ++s) {
      const long cp_start = static_cast<long>(symbols_start) + tf +
                            static_cast<long>(s * spec.symbol_samples());
      acc += CpMetricAt(recording, cp_start, spec);
    }
    const double metric = acc / static_cast<double>(n_symbols);
    if (!found || metric > best.metric) {
      best.offset = tf;
      best.metric = metric;
      found = true;
    }
  }
  return best;
}

FineSyncResult FineSync(std::span<const double> recording, std::size_t cp_start,
                        const FrameSpec& spec, long search_range) {
  const std::size_t tg = spec.cyclic_prefix_samples;
  const std::size_t ts = spec.fft_size();
  FineSyncResult best;
  bool found = false;
  for (long tf = -search_range; tf <= search_range; ++tf) {
    const long start = static_cast<long>(cp_start) + tf;
    if (start < 0) continue;
    const std::size_t s = static_cast<std::size_t>(start);
    if (s + tg + ts > recording.size()) continue;
    double dot = 0.0, e_head = 0.0, e_tail = 0.0;
    for (std::size_t t = 0; t < tg; ++t) {
      const double head = recording[s + t];
      const double tail = recording[s + t + ts];
      dot += head * tail;
      e_head += head * head;
      e_tail += tail * tail;
    }
    const double denom = std::sqrt(e_head * e_tail);
    const double metric = denom > 1e-30 ? dot / denom : 0.0;
    if (!found || metric > best.metric) {
      best.offset = tf;
      best.metric = metric;
      found = true;
    }
  }
  return best;
}

}  // namespace wearlock::modem
