// Pilot-based SNR estimation (paper Eq. 3) and Eb/N0 conversion.
//
//   PSNR = (E_{k in P}[X X*] - E_{k in N}[X X*]) / E_{k in N}[X X*]
//
// where P is the pilot set and N the null set of the sub-channel plan.
// The estimate is computed post-FFT, pre-equalization, so it reflects the
// carrier-to-noise ratio actually seen on the wire, and converts to Eb/N0
// via Eb/N0 = C/N * B/R.
#pragma once

#include <span>

#include "dsp/fft.h"
#include "modem/constellation.h"
#include "modem/frame.h"

namespace wearlock::modem {

/// Linear PSNR from one symbol spectrum (clamped at 0 if pilots are
/// below the noise floor).
double PilotSnrLinear(const FrameSpec& spec, const dsp::ComplexVec& spectrum);

/// PSNR in dB (returns -inf-ish small value for zero linear PSNR).
double PilotSnrDb(const FrameSpec& spec, const dsp::ComplexVec& spectrum);

/// Eb/N0 (dB) implied by a measured carrier SNR for a given modulation
/// under this frame spec: Eb/N0 = SNR + 10*log10(B/R) with B the plan's
/// occupied bandwidth and R the raw data rate of the modulation.
double EbN0Db(const FrameSpec& spec, Modulation m, double snr_db);

/// Per-bin noise power (linear, |X(k)|^2 averaged over `spectra`) -
/// feeds SelectSubchannels. Spectra are typically FFTs of consecutive
/// ambient-noise windows.
std::vector<double> NoisePowerPerBin(const FrameSpec& spec,
                                     const std::vector<dsp::ComplexVec>& spectra);

/// Convenience: chop an ambient recording into FFT-size windows and
/// average their bin powers. Window FFTs run through the cached plan and
/// per-thread workspace, so no per-window spectra are materialized.
std::vector<double> NoisePowerFromAmbient(const FrameSpec& spec,
                                          std::span<const double> ambient);

}  // namespace wearlock::modem
