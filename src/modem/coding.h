// Optional channel coding.
//
// The paper's rate formula R = |D| * rc * log2(M) / (Tg + Ts) carries a
// coding rate rc but the prototype ships uncoded (rc = 1); it also notes
// 16QAM "may need heavy error correction techniques" to be usable at
// all. This module supplies the two classic codes that statement implies:
//   * Hamming(7,4)  - rc = 4/7, corrects 1 bit error per 7-bit block
//   * Repetition-3  - rc = 1/3, majority vote
// plus an identity code for uniform call sites.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wearlock::modem {

enum class CodeScheme { kNone, kHamming74, kRepetition3 };

std::string ToString(CodeScheme scheme);

/// Coding rate rc (payload bits / coded bits).
double CodeRate(CodeScheme scheme);

/// Encode payload bits (values 0/1). Output length is a whole number of
/// code blocks; the tail is zero-padded before encoding.
std::vector<std::uint8_t> Encode(CodeScheme scheme,
                                 const std::vector<std::uint8_t>& bits);

/// Decode coded bits back to payload bits. Lengths that are not a whole
/// number of blocks are truncated to the last full block. The decode
/// corrects errors within each code's capability and returns its best
/// guess beyond that (no failure signaling - the OTP BER check is the
/// integrity layer).
std::vector<std::uint8_t> Decode(CodeScheme scheme,
                                 const std::vector<std::uint8_t>& coded);

/// Coded length for n payload bits (after padding).
std::size_t EncodedLength(CodeScheme scheme, std::size_t n_payload_bits);

/// Soft-decision decode from per-bit LLRs (positive = bit 0 likelier,
/// the convention of modem::DemapSymbolsSoft). Repetition sums LLRs per
/// triple; Hamming runs maximum-likelihood over the 16 codewords. kNone
/// hard-slices the signs.
std::vector<std::uint8_t> DecodeSoft(CodeScheme scheme,
                                     const std::vector<double>& llrs);

/// Block interleaver: the permutation that writes input bits row-major
/// into a `depth`-column matrix and reads it column-major, defined
/// directly on the index set so ANY length round-trips exactly (no
/// padding). A burst of adjacent on-air errors deinterleaves to coded
/// positions exactly `depth` apart, so with depth >= the code's block
/// length at most one burst error lands in each codeword. depth <= 1
/// (or >= n) degenerates to the identity.
std::vector<std::uint8_t> Interleave(const std::vector<std::uint8_t>& bits,
                                     std::size_t depth);

/// Exact inverse of Interleave for the same depth.
std::vector<std::uint8_t> Deinterleave(const std::vector<std::uint8_t>& bits,
                                       std::size_t depth);

/// Chase combining across retransmissions of the SAME payload: per-bit
/// LLRs (positive = bit 0 likelier, the DemapSymbolsSoft convention)
/// from each reception are summed element-wise before slicing or FEC
/// decoding. Under independent noise the combined LLR's SNR grows
/// linearly with the number of copies, so a retransmission at low SNR
/// rescues a delivery instead of starting blind - the receiver half of
/// the unlock protocol's ARQ (docs/robustness.md).
class SoftCombiner {
 public:
  /// Accumulate one reception's LLRs.
  /// @throws std::invalid_argument when the length differs from the
  /// first reception's (retransmissions carry the same payload).
  void Add(const std::vector<double>& llrs);

  /// Receptions combined so far.
  std::size_t rounds() const { return rounds_; }
  bool empty() const { return rounds_ == 0; }

  /// The running element-wise LLR sum (empty before the first Add).
  const std::vector<double>& combined() const { return sum_; }

  /// Hard decision on the combined LLRs (feed `combined()` to
  /// DecodeSoft instead when a channel code is in use).
  std::vector<std::uint8_t> HardBits() const;

  void Reset();

 private:
  std::vector<double> sum_;
  std::size_t rounds_ = 0;
};

}  // namespace wearlock::modem
