#include "modem/modem.h"

#include <stdexcept>

namespace wearlock::modem {

std::vector<std::uint8_t> BitsFromWord(std::uint32_t word) {
  std::vector<std::uint8_t> bits(32);
  for (int i = 0; i < 32; ++i) {
    bits[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((word >> (31 - i)) & 1u);
  }
  return bits;
}

std::uint32_t WordFromBits(const std::vector<std::uint8_t>& bits) {
  if (bits.size() != 32) {
    throw std::invalid_argument("WordFromBits: need exactly 32 bits");
  }
  std::uint32_t word = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    if (bits[i] > 1u) {
      throw std::invalid_argument("WordFromBits: bit values must be 0 or 1");
    }
    word = (word << 1) | static_cast<std::uint32_t>(bits[i]);
  }
  return word;
}

AcousticModem::AcousticModem(FrameSpec spec, DemodConfig demod_config)
    : spec_(spec),
      demod_config_(demod_config),
      modulator_(spec),
      demodulator_(spec, demod_config) {}

TxFrame AcousticModem::Modulate(Modulation m,
                                const std::vector<std::uint8_t>& bits) const {
  return modulator_.ModulateBits(m, bits);
}

TxFrame AcousticModem::MakeProbeFrame() const {
  return modulator_.MakeProbeFrame();
}

std::optional<DemodResult> AcousticModem::Demodulate(
    std::span<const double> recording, Modulation m, std::size_t n_bits) const {
  return demodulator_.Demodulate(recording, m, n_bits);
}

std::optional<std::vector<double>> AcousticModem::DemodulateSoft(
    std::span<const double> recording, Modulation m, std::size_t n_bits) const {
  return demodulator_.DemodulateSoft(recording, m, n_bits);
}

std::optional<ProbeAnalysis> AcousticModem::AnalyzeProbe(
    std::span<const double> recording) const {
  return demodulator_.AnalyzeProbe(recording);
}

AcousticModem AcousticModem::WithSelectedSubchannels(
    const std::vector<double>& noise_power) const {
  FrameSpec spec = spec_;
  spec.plan = SelectSubchannels(spec_.plan, noise_power);
  return AcousticModem(spec, demod_config_);
}

AcousticModem AcousticModem::WithPlan(const SubchannelPlan& plan) const {
  FrameSpec spec = spec_;
  spec.plan = plan;
  return AcousticModem(spec, demod_config_);
}

}  // namespace wearlock::modem
