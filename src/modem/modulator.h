// TX path of the acoustic modem (Fig. 3, left): constellation mapping,
// pilot insertion, IFFT, cyclic prefix, preamble.
#pragma once

#include <cstdint>
#include <vector>

#include "audio/signal.h"
#include "modem/constellation.h"
#include "modem/frame.h"

namespace wearlock::modem {

struct TxFrame {
  audio::Samples samples;       ///< ready-to-emit waveform
  std::size_t n_symbols = 0;    ///< OFDM symbols carrying the payload
  std::size_t n_bits = 0;       ///< payload bits (pre-padding)
};

class Modulator {
 public:
  explicit Modulator(FrameSpec spec);

  /// Modulate a payload bit vector. Bits are padded (with zero bits, then
  /// zero-index constellation symbols) up to a whole number of OFDM
  /// symbols; the receiver discards padding because the payload length is
  /// agreed over the control channel.
  TxFrame ModulateBits(Modulation m, const std::vector<std::uint8_t>& bits) const;

  /// The RTS channel-probing frame: preamble + guard + one block pilot
  /// symbol (known values on every pilot AND data bin, nulls silent) so
  /// the receiver can estimate per-bin channel response and noise.
  TxFrame MakeProbeFrame() const;

  /// Symbols needed for n_bits of payload under modulation m.
  std::size_t SymbolsForBits(Modulation m, std::size_t n_bits) const;

  const FrameSpec& spec() const { return spec_; }

 private:
  FrameSpec spec_;
  audio::Samples preamble_;
  /// Precomputed at construction so the per-symbol loop carries no map
  /// churn: pilot loads, ascending data bins, and the probe symbol's
  /// all-pilot load set.
  std::vector<BinLoad> pilot_loads_;
  std::vector<std::size_t> data_bins_;
  std::vector<BinLoad> probe_loads_;
};

}  // namespace wearlock::modem
