// Sub-channel planning: which FFT bins carry data, pilots, and which are
// intentionally left null (for the Eq. 3 noise estimate), plus the
// noise-ranked sub-channel selection of §III-7 "Channel probing and
// sub-channel selection".
//
// Bin indexing is 1-based to match the paper ("We index our channels from
// 1-256"); bin k sits at k * Fs / N Hz.
#pragma once

#include <cstddef>
#include <vector>

namespace wearlock::modem {

struct SubchannelPlan {
  std::size_t fft_size = 256;
  double sample_rate_hz = 44100.0;
  /// Bins carrying payload symbols (paper default: 12 bins).
  std::vector<std::size_t> data;
  /// Equal-spaced unit-power pilot bins (paper default: 8 bins).
  std::vector<std::size_t> pilots;
  /// In-band bins deliberately kept silent; used as the null set N of the
  /// pilot-SNR estimator.
  std::vector<std::size_t> nulls;

  /// Paper defaults for the audible 1-6 kHz phone->watch band:
  /// data {16,17,18,20,21,22,24,25,26,28,29,30},
  /// pilots {7,11,15,19,23,27,31,35}, remaining in-band bins null.
  static SubchannelPlan Audible();

  /// The same assignment "shifted with higher index" into the 15-20 kHz
  /// near-ultrasound band used by the phone->phone pair (shift +80 bins).
  static SubchannelPlan NearUltrasound();

  double bin_hz() const { return sample_rate_hz / static_cast<double>(fft_size); }
  double FrequencyOfBin(std::size_t bin) const {
    return static_cast<double>(bin) * bin_hz();
  }

  /// Occupied bandwidth (Hz) spanned by pilot+data bins.
  double OccupiedBandwidthHz() const;

  /// Bandwidth actually carrying payload: |D| * bin width.
  double DataBandwidthHz() const;

  /// Validity: non-empty disjoint sets, all bins within (0, N/2).
  /// @throws std::invalid_argument describing the first violation.
  void Validate() const;

  bool IsData(std::size_t bin) const;
  bool IsPilot(std::size_t bin) const;
  bool IsNull(std::size_t bin) const;
};

/// Noise-ranked data-bin selection. Given per-bin noise power from a
/// probing round, re-picks `plan.data.size()` data bins from the
/// candidate pool (in-band bins that are not pilots), ordered primarily
/// by ascending noise power and secondarily by ascending frequency -
/// "from low frequency to high frequency, and from low noise power to
/// high noise power". Bins left over become nulls.
///
/// @param noise_power  indexed by bin (size >= fft_size/2); linear power.
/// @param quantize_db  noise levels within this many dB are treated as
///        equal so the frequency preference can kick in (default 3 dB).
SubchannelPlan SelectSubchannels(const SubchannelPlan& plan,
                                 const std::vector<double>& noise_power,
                                 double quantize_db = 3.0);

}  // namespace wearlock::modem
