#include "modem/golden.h"

#include <cstdio>

#include "dsp/checksum.h"
#include "sim/rng.h"

namespace wearlock::modem {

GoldenVector ComputeGoldenVector(Modulation m, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> bits(kGoldenBits);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));

  const AcousticModem modem;
  const TxFrame tx = modem.Modulate(m, bits);

  GoldenVector golden;
  golden.modulation = m;
  golden.waveform_fnv = dsp::ChecksumDoubles(tx.samples);
  golden.n_samples = tx.samples.size();

  // Clean loopback: the transmitted waveform fed straight back, no
  // channel. Any modulation must survive its own TX path bit-exactly.
  const auto rx = modem.Demodulate(tx.samples, m, bits.size());
  golden.demodulated = rx.has_value();
  if (rx) golden.bits_fnv = dsp::ChecksumBytes(rx->bits);
  return golden;
}

namespace {

const char* EnumeratorName(Modulation m) {
  switch (m) {
    case Modulation::kBask: return "kBask";
    case Modulation::kQask: return "kQask";
    case Modulation::kBpsk: return "kBpsk";
    case Modulation::kQpsk: return "kQpsk";
    case Modulation::k8Psk: return "k8Psk";
    case Modulation::k16Qam: return "k16Qam";
  }
  return "kQpsk";
}

}  // namespace

std::string FormatGoldenRow(const GoldenVector& golden) {
  char row[128];
  std::snprintf(row, sizeof(row),
                "{Modulation::%s, 0x%016llXull, 0x%016llXull},",
                EnumeratorName(golden.modulation),
                static_cast<unsigned long long>(golden.waveform_fnv),
                static_cast<unsigned long long>(golden.bits_fnv));
  return row;
}

}  // namespace wearlock::modem
