// RX path of the acoustic modem (Fig. 3, right): silence gate, preamble
// detection, coarse+fine synchronization, FFT, channel estimation,
// equalization, constellation de-mapping - plus the RTS probe analysis
// (noise ranking, pilot SNR, NLOS delay spread) that drives adaptation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "audio/signal.h"
#include "modem/constellation.h"
#include "modem/detector.h"
#include "modem/equalizer.h"
#include "modem/frame.h"
#include "modem/nlos.h"

namespace wearlock::modem {

struct DemodConfig {
  DetectorConfig detector{};
  /// +/- search range (samples) of the cyclic-prefix fine sync.
  long fine_sync_range = 48;
  /// CP-correlation quality gate: below this the fine-sync result is
  /// noise (low SNR, or the probe's repeated symbols making the metric
  /// ambiguous) and a small back-off into the cyclic prefix is used
  /// instead - a few samples early is a harmless circular shift that the
  /// per-symbol equalizer absorbs, while a wrong offset is fatal.
  double min_sync_metric = 0.45;
  NlosConfig nlos{};
};

struct DemodResult {
  std::vector<std::uint8_t> bits;   ///< exactly the requested n_bits
  double preamble_score = 0.0;
  std::size_t preamble_start = 0;
  std::vector<long> fine_offsets;   ///< per-symbol fine-sync correction
  double mean_pilot_snr_db = 0.0;   ///< averaged over symbols
};

/// Everything Phase 1 learns from the RTS probing packet.
struct ProbeAnalysis {
  double preamble_score = 0.0;
  std::size_t preamble_start = 0;
  DelayProfile delay_profile;
  bool nlos = false;
  double pilot_snr_db = 0.0;        ///< Eq. 3 on the block pilot symbol
  std::vector<double> noise_power;  ///< per-bin, from pre-preamble ambience
  double ambient_spl_db = 0.0;      ///< SPL of the pre-preamble segment
  ChannelEstimate channel;
};

class Demodulator {
 public:
  explicit Demodulator(FrameSpec spec, DemodConfig config = {});

  /// Demodulate a payload of n_bits (the length is agreed over the
  /// control channel). Returns nullopt when no preamble is found or the
  /// recording is too short for the expected frame.
  std::optional<DemodResult> Demodulate(const audio::Samples& recording,
                                        Modulation m, std::size_t n_bits) const;

  /// Soft-output variant: per-bit LLRs (positive = bit 0 likelier) for
  /// soft-decision channel decoding. Same synchronization/equalization
  /// chain as Demodulate.
  std::optional<std::vector<double>> DemodulateSoft(
      const audio::Samples& recording, Modulation m, std::size_t n_bits) const;

  /// Analyze an RTS probe recording (preamble + guard + block pilot).
  std::optional<ProbeAnalysis> AnalyzeProbe(const audio::Samples& recording) const;

  const FrameSpec& spec() const { return spec_; }
  const DemodConfig& config() const { return config_; }

 private:
  /// Spectrum of symbol `index` at a given common fine-sync offset;
  /// nullopt if out of bounds.
  std::optional<dsp::ComplexVec> SymbolSpectrumAt(
      const audio::Samples& recording, std::size_t symbols_start,
      std::size_t index, long offset) const;

  /// Joint fine-sync offset for a frame of n_symbols, with the
  /// min_sync_metric fallback applied.
  long FrameOffset(const audio::Samples& recording, std::size_t symbols_start,
                   std::size_t n_symbols) const;

  FrameSpec spec_;
  DemodConfig config_;
  PreambleDetector detector_;
};

}  // namespace wearlock::modem
