// RX path of the acoustic modem (Fig. 3, right): silence gate, preamble
// detection, coarse+fine synchronization, FFT, channel estimation,
// equalization, constellation de-mapping - plus the RTS probe analysis
// (noise ranking, pilot SNR, NLOS delay spread) that drives adaptation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "audio/signal.h"
#include "modem/constellation.h"
#include "modem/detector.h"
#include "modem/equalizer.h"
#include "modem/frame.h"
#include "modem/nlos.h"

namespace wearlock::modem {

struct DemodConfig {
  DetectorConfig detector{};
  /// +/- search range (samples) of the cyclic-prefix fine sync.
  long fine_sync_range = 48;
  /// CP-correlation quality gate: below this the fine-sync result is
  /// noise (low SNR, or the probe's repeated symbols making the metric
  /// ambiguous) and a small back-off into the cyclic prefix is used
  /// instead - a few samples early is a harmless circular shift that the
  /// per-symbol equalizer absorbs, while a wrong offset is fatal.
  double min_sync_metric = 0.45;
  NlosConfig nlos{};
};

struct DemodResult {
  std::vector<std::uint8_t> bits;   ///< exactly the requested n_bits
  double preamble_score = 0.0;
  std::size_t preamble_start = 0;
  std::vector<long> fine_offsets;   ///< per-symbol fine-sync correction
  double mean_pilot_snr_db = 0.0;   ///< averaged over symbols
};

/// Everything Phase 1 learns from the RTS probing packet.
struct ProbeAnalysis {
  double preamble_score = 0.0;
  std::size_t preamble_start = 0;
  DelayProfile delay_profile;
  bool nlos = false;
  double pilot_snr_db = 0.0;        ///< Eq. 3 on the block pilot symbol
  std::vector<double> noise_power;  ///< per-bin, from pre-preamble ambience
  double ambient_spl_db = 0.0;      ///< SPL of the pre-preamble segment
  ChannelEstimate channel;
};

class Demodulator {
 public:
  explicit Demodulator(FrameSpec spec, DemodConfig config = {});

  /// Demodulate a payload of n_bits (the length is agreed over the
  /// control channel). Returns nullopt when no preamble is found or the
  /// recording is too short for the expected frame. The recording is a
  /// view: callers (the streaming receiver) pass slices without copying,
  /// and the per-symbol chain runs on this thread's dsp::Workspace.
  std::optional<DemodResult> Demodulate(std::span<const double> recording,
                                        Modulation m, std::size_t n_bits) const;

  /// Soft-output variant: per-bit LLRs (positive = bit 0 likelier) for
  /// soft-decision channel decoding. Same synchronization/equalization
  /// chain as Demodulate.
  std::optional<std::vector<double>> DemodulateSoft(
      std::span<const double> recording, Modulation m,
      std::size_t n_bits) const;

  /// Analyze an RTS probe recording (preamble + guard + block pilot).
  std::optional<ProbeAnalysis> AnalyzeProbe(
      std::span<const double> recording) const;

  const FrameSpec& spec() const { return spec_; }
  const DemodConfig& config() const { return config_; }

 private:
  /// Spectrum of symbol `index` at a given common fine-sync offset,
  /// computed into ws slot CSlot::kSymbolSpectrum through the cached FFT
  /// plan; nullptr if out of bounds. The pointer is valid until the next
  /// call on the same workspace.
  const dsp::ComplexVec* SymbolSpectrumInto(std::span<const double> recording,
                                            std::size_t symbols_start,
                                            std::size_t index, long offset,
                                            dsp::Workspace& ws) const;

  /// Joint fine-sync offset for a frame of n_symbols, with the
  /// min_sync_metric fallback applied.
  long FrameOffset(std::span<const double> recording, std::size_t symbols_start,
                   std::size_t n_symbols) const;

  FrameSpec spec_;
  DemodConfig config_;
  PreambleDetector detector_;
  /// Per-instance caches resolved at construction: sorted data bins,
  /// pilot geometry, and the symbol FFT plan (null for non-power-of-two
  /// FFT sizes, where the legacy any-size path is used).
  std::vector<std::size_t> data_bins_;
  PilotGeometry geometry_;
  std::shared_ptr<const dsp::FftPlan> fft_plan_;
};

}  // namespace wearlock::modem
