#include "modem/constellation.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wearlock::modem {
namespace {

constexpr double kPi = std::numbers::pi;

double QFunction(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

/// Normalize points to unit average energy.
std::vector<Complex> Normalized(std::vector<Complex> pts) {
  double energy = 0.0;
  for (const Complex& p : pts) energy += std::norm(p);
  energy /= static_cast<double>(pts.size());
  const double s = energy > 0.0 ? 1.0 / std::sqrt(energy) : 1.0;
  for (Complex& p : pts) p *= s;
  return pts;
}

std::vector<Complex> MakePoints(Modulation m) {
  switch (m) {
    case Modulation::kBask:
      // On-off keying: symbol 0 = off, symbol 1 = on.
      return Normalized({{0.0, 0.0}, {std::sqrt(2.0), 0.0}});
    case Modulation::kQask: {
      // 4-level ASK with Gray labels 00,01,11,10 on ascending amplitude.
      std::vector<Complex> pts(4);
      const double levels[4] = {0.0, 1.0, 3.0, 2.0};  // index = Gray label
      for (unsigned sym = 0; sym < 4; ++sym) pts[sym] = {levels[sym], 0.0};
      return Normalized(pts);
    }
    case Modulation::kBpsk:
      return Normalized({{1.0, 0.0}, {-1.0, 0.0}});
    case Modulation::kQpsk: {
      // Gray mapping: 00 01 11 10 counter-clockwise from 45 degrees.
      std::vector<Complex> pts(4);
      const unsigned order[4] = {0, 1, 3, 2};
      for (unsigned i = 0; i < 4; ++i) {
        const double ang = kPi / 4.0 + kPi / 2.0 * static_cast<double>(i);
        pts[order[i]] = std::polar(1.0, ang);
      }
      return Normalized(pts);
    }
    case Modulation::k8Psk: {
      std::vector<Complex> pts(8);
      const unsigned gray[8] = {0, 1, 3, 2, 6, 7, 5, 4};
      for (unsigned i = 0; i < 8; ++i) {
        const double ang = kPi / 8.0 + kPi / 4.0 * static_cast<double>(i);
        pts[gray[i]] = std::polar(1.0, ang);
      }
      return Normalized(pts);
    }
    case Modulation::k16Qam: {
      // Square 16QAM, Gray coded per axis: levels -3,-1,1,3 labelled
      // 00,01,11,10. Symbol = (I bits << 2) | Q bits.
      std::vector<Complex> pts(16);
      const double level_for_gray[4] = {-3.0, -1.0, 3.0, 1.0};
      for (unsigned ib = 0; ib < 4; ++ib) {
        for (unsigned qb = 0; qb < 4; ++qb) {
          pts[(ib << 2) | qb] = {level_for_gray[ib], level_for_gray[qb]};
        }
      }
      return Normalized(pts);
    }
  }
  throw std::invalid_argument("MakePoints: unknown modulation");
}

}  // namespace

const std::vector<Modulation>& AllModulations() {
  static const std::vector<Modulation> kAll = {
      Modulation::kBask, Modulation::kBpsk, Modulation::kQask,
      Modulation::kQpsk, Modulation::k8Psk, Modulation::k16Qam};
  return kAll;
}

std::string ToString(Modulation m) {
  switch (m) {
    case Modulation::kBask: return "BASK";
    case Modulation::kQask: return "QASK";
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::k8Psk: return "8PSK";
    case Modulation::k16Qam: return "16QAM";
  }
  return "?";
}

unsigned BitsPerSymbol(Modulation m) {
  switch (m) {
    case Modulation::kBask:
    case Modulation::kBpsk: return 1;
    case Modulation::kQask:
    case Modulation::kQpsk: return 2;
    case Modulation::k8Psk: return 3;
    case Modulation::k16Qam: return 4;
  }
  return 0;
}

unsigned ModulationOrder(Modulation m) { return 1u << BitsPerSymbol(m); }

Constellation::Constellation(Modulation m, std::vector<Complex> points)
    : modulation_(m), bits_(BitsPerSymbol(m)), points_(std::move(points)) {}

const Constellation& Constellation::Get(Modulation m) {
  static const Constellation kBask(Modulation::kBask, MakePoints(Modulation::kBask));
  static const Constellation kQask(Modulation::kQask, MakePoints(Modulation::kQask));
  static const Constellation kBpsk(Modulation::kBpsk, MakePoints(Modulation::kBpsk));
  static const Constellation kQpsk(Modulation::kQpsk, MakePoints(Modulation::kQpsk));
  static const Constellation k8Psk(Modulation::k8Psk, MakePoints(Modulation::k8Psk));
  static const Constellation k16Qam(Modulation::k16Qam, MakePoints(Modulation::k16Qam));
  switch (m) {
    case Modulation::kBask: return kBask;
    case Modulation::kQask: return kQask;
    case Modulation::kBpsk: return kBpsk;
    case Modulation::kQpsk: return kQpsk;
    case Modulation::k8Psk: return k8Psk;
    case Modulation::k16Qam: return k16Qam;
  }
  throw std::invalid_argument("Constellation::Get: unknown modulation");
}

Complex Constellation::Map(unsigned symbol) const {
  if (symbol >= points_.size()) {
    throw std::out_of_range("Constellation::Map: symbol out of range");
  }
  return points_[symbol];
}

unsigned Constellation::Demap(Complex received) const {
  unsigned best = 0;
  double best_d = std::norm(received - points_[0]);
  for (unsigned i = 1; i < points_.size(); ++i) {
    const double d = std::norm(received - points_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

std::vector<Complex> MapBits(Modulation m, const std::vector<std::uint8_t>& bits) {
  const Constellation& c = Constellation::Get(m);
  const unsigned bps = c.bits_per_symbol();
  const std::size_t n_symbols = (bits.size() + bps - 1) / bps;
  std::vector<Complex> out;
  out.reserve(n_symbols);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    unsigned sym = 0;
    for (unsigned b = 0; b < bps; ++b) {
      const std::size_t idx = s * bps + b;
      const unsigned bit = idx < bits.size() ? (bits[idx] & 1u) : 0u;
      sym = (sym << 1) | bit;
    }
    out.push_back(c.Map(sym));
  }
  return out;
}

std::vector<std::uint8_t> DemapSymbols(Modulation m,
                                       const std::vector<Complex>& symbols) {
  std::vector<std::uint8_t> bits;
  bits.reserve(symbols.size() * BitsPerSymbol(m));
  DemapSymbolsInto(m, symbols, bits);
  return bits;
}

void DemapSymbolsInto(Modulation m, std::span<const Complex> symbols,
                      std::vector<std::uint8_t>& out) {
  const Constellation& c = Constellation::Get(m);
  const unsigned bps = c.bits_per_symbol();
  for (const Complex& s : symbols) {
    const unsigned sym = c.Demap(s);
    for (unsigned b = 0; b < bps; ++b) {
      out.push_back(static_cast<std::uint8_t>((sym >> (bps - 1 - b)) & 1u));
    }
  }
}

std::vector<double> DemapSymbolsSoft(Modulation m,
                                     const std::vector<Complex>& symbols) {
  std::vector<double> llrs;
  llrs.reserve(symbols.size() * BitsPerSymbol(m));
  DemapSymbolsSoftInto(m, symbols, llrs);
  return llrs;
}

void DemapSymbolsSoftInto(Modulation m, std::span<const Complex> symbols,
                          std::vector<double>& out) {
  const Constellation& c = Constellation::Get(m);
  const unsigned bps = c.bits_per_symbol();
  for (const Complex& r : symbols) {
    for (unsigned b = 0; b < bps; ++b) {
      const unsigned mask = 1u << (bps - 1 - b);
      double best0 = 1e30, best1 = 1e30;
      for (unsigned sym = 0; sym < c.size(); ++sym) {
        const double d = std::norm(r - c.Map(sym));
        if (sym & mask) {
          best1 = std::min(best1, d);
        } else {
          best0 = std::min(best0, d);
        }
      }
      out.push_back(best1 - best0);
    }
  }
}

double TheoreticalBer(Modulation m, double ebn0_db) {
  const double g = std::pow(10.0, ebn0_db / 10.0);  // Eb/N0, linear
  switch (m) {
    case Modulation::kBask:
      // Coherent OOK: d/2 = sqrt(Eb/2) -> Pb = Q(sqrt(Eb/N0)).
      return QFunction(std::sqrt(g));
    case Modulation::kBpsk:
      return QFunction(std::sqrt(2.0 * g));
    case Modulation::kQpsk:
      return QFunction(std::sqrt(2.0 * g));
    case Modulation::kQask: {
      // 4-PAM: Pb ~= (3/4) Q(sqrt(4/5 * Eb/N0 * 2)) / 2 bits...
      // Standard M-PAM with Gray coding: Pb = 2(M-1)/(M log2 M) *
      // Q(sqrt(6 log2 M / (M^2 - 1) * Eb/N0)).
      const double M = 4.0, k = 2.0;
      return 2.0 * (M - 1.0) / (M * k) *
             QFunction(std::sqrt(6.0 * k / (M * M - 1.0) * g));
    }
    case Modulation::k8Psk: {
      const double M = 8.0, k = 3.0;
      return 2.0 / k * QFunction(std::sqrt(2.0 * k * g) * std::sin(kPi / M));
    }
    case Modulation::k16Qam: {
      const double M = 16.0, k = 4.0;
      return 4.0 / k * (1.0 - 1.0 / std::sqrt(M)) *
             QFunction(std::sqrt(3.0 * k / (M - 1.0) * g));
    }
  }
  throw std::invalid_argument("TheoreticalBer: unknown modulation");
}

std::size_t CountBitErrors(const std::vector<std::uint8_t>& a,
                           const std::vector<std::uint8_t>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("CountBitErrors: length mismatch");
  }
  std::size_t errors = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & 1u) != (b[i] & 1u)) ++errors;
  }
  return errors;
}

double BitErrorRate(const std::vector<std::uint8_t>& a,
                    const std::vector<std::uint8_t>& b) {
  if (a.empty()) return 0.0;
  return static_cast<double>(CountBitErrors(a, b)) / static_cast<double>(a.size());
}

}  // namespace wearlock::modem
