// Pilot-based channel estimation and one-tap equalization (paper §III-6).
//
// Pilots are equal-spaced, unit-power, and known a-priori. Extracting
// them post-FFT gives H at the pilot bins; an FFT-based interpolation
// expands that comb to every in-band bin, and equalization divides each
// received bin by its estimate: s_hat(k) = z(k) / H(k).
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/fft.h"
#include "modem/frame.h"

namespace wearlock::modem {

/// Channel frequency response over the pilot span.
class ChannelEstimate {
 public:
  ChannelEstimate() = default;
  ChannelEstimate(std::size_t first_bin, dsp::ComplexVec response);

  /// H(bin). Bins outside the estimated span clamp to the nearest edge
  /// estimate (data bins are kept inside the span by construction).
  dsp::Complex At(std::size_t bin) const;

  /// |H| averaged over the span (sanity/diagnostic).
  double MeanMagnitude() const;

  /// Elementwise average with another estimate (same span required);
  /// used to combine estimates from repeated probe symbols.
  static ChannelEstimate Average(const std::vector<ChannelEstimate>& estimates);

  std::size_t first_bin() const { return first_bin_; }
  std::size_t last_bin() const { return first_bin_ + response_.size() - 1; }
  bool empty() const { return response_.empty(); }

 private:
  std::size_t first_bin_ = 0;
  dsp::ComplexVec response_;
};

/// Estimate the channel from one received symbol spectrum using the
/// plan's pilot set. Pilots must be equally spaced (validated).
/// @throws std::invalid_argument if pilots are not equally spaced.
ChannelEstimate EstimateChannel(const FrameSpec& spec,
                                const dsp::ComplexVec& spectrum);

/// Equalize the listed bins of a spectrum: returns s_hat(k) = z(k)/H(k)
/// in the same order as `bins`. Bins where |H| is tiny (deep fade) pass
/// through scaled by 1/epsilon to avoid blowups.
std::vector<dsp::Complex> Equalize(const ChannelEstimate& estimate,
                                   const dsp::ComplexVec& spectrum,
                                   const std::vector<std::size_t>& bins);

}  // namespace wearlock::modem
