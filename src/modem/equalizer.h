// Pilot-based channel estimation and one-tap equalization (paper §III-6).
//
// Pilots are equal-spaced, unit-power, and known a-priori. Extracting
// them post-FFT gives H at the pilot bins; an FFT-based interpolation
// expands that comb to every in-band bin, and equalization divides each
// received bin by its estimate: s_hat(k) = z(k) / H(k).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.h"
#include "modem/frame.h"

namespace wearlock::dsp {
class FftPlan;    // dsp/fft_plan.h
class Workspace;  // dsp/workspace.h
}  // namespace wearlock::dsp

namespace wearlock::modem {

/// Channel frequency response over the pilot span.
class ChannelEstimate {
 public:
  ChannelEstimate() = default;
  ChannelEstimate(std::size_t first_bin, dsp::ComplexVec response);

  /// H(bin). Bins outside the estimated span clamp to the nearest edge
  /// estimate (data bins are kept inside the span by construction).
  dsp::Complex At(std::size_t bin) const;

  /// |H| averaged over the span (sanity/diagnostic).
  double MeanMagnitude() const;

  /// Elementwise average with another estimate (same span required);
  /// used to combine estimates from repeated probe symbols.
  static ChannelEstimate Average(const std::vector<ChannelEstimate>& estimates);

  std::size_t first_bin() const { return first_bin_; }
  std::size_t last_bin() const { return first_bin_ + response_.size() - 1; }
  bool empty() const { return response_.empty(); }

 private:
  std::size_t first_bin_ = 0;
  dsp::ComplexVec response_;
};

/// Estimate the channel from one received symbol spectrum using the
/// plan's pilot set. Pilots must be equally spaced (validated).
/// @throws std::invalid_argument if pilots are not equally spaced.
ChannelEstimate EstimateChannel(const FrameSpec& spec,
                                const dsp::ComplexVec& spectrum);

/// Equalize the listed bins of a spectrum: returns s_hat(k) = z(k)/H(k)
/// in the same order as `bins`. Bins where |H| is tiny (deep fade) pass
/// through scaled by 1/epsilon to avoid blowups.
std::vector<dsp::Complex> Equalize(const ChannelEstimate& estimate,
                                   const dsp::ComplexVec& spectrum,
                                   const std::vector<std::size_t>& bins);

/// Pilot geometry of a FrameSpec, precomputed once so the per-symbol
/// estimator does no sorting, no PilotValue trigonometry, and no plan
/// lookups. Construction never throws on a degenerate pilot set; the
/// estimator raises EstimateChannel's errors at call time instead (same
/// contract as the free function).
class PilotGeometry {
 public:
  explicit PilotGeometry(const FrameSpec& spec);

  std::size_t count() const { return pilots_.size(); }
  std::size_t spacing() const { return spacing_; }
  std::size_t first_bin() const { return pilots_.empty() ? 0 : pilots_.front(); }
  std::size_t dense_len() const { return count() * spacing_; }
  bool uniform() const { return uniform_; }
  std::size_t pilot(std::size_t i) const { return pilots_[i]; }
  const dsp::Complex& pilot_value(std::size_t i) const { return values_[i]; }
  /// Cached interpolation plans (null when the shape is not power-of-two;
  /// the interpolator then falls back to its any-size path).
  const dsp::FftPlan* fwd_plan() const { return fwd_plan_.get(); }
  const dsp::FftPlan* inv_plan() const { return inv_plan_.get(); }

 private:
  std::vector<std::size_t> pilots_;  ///< ascending
  dsp::ComplexVec values_;
  std::size_t spacing_ = 0;
  bool uniform_ = false;
  std::shared_ptr<const dsp::FftPlan> fwd_plan_;
  std::shared_ptr<const dsp::FftPlan> inv_plan_;
};

/// Non-owning view of a channel estimate whose response lives in a
/// Workspace slot. Valid until the next EstimateChannelInto (or other
/// kInterpPadded owner) call on the same workspace.
struct ChannelView {
  std::size_t first_bin = 0;
  std::span<const dsp::Complex> response;

  /// Same clamping semantics as ChannelEstimate::At.
  dsp::Complex At(std::size_t bin) const {
    if (response.empty()) return dsp::Complex(1.0, 0.0);
    if (bin < first_bin) return response.front();
    const std::size_t idx = bin - first_bin;
    if (idx >= response.size()) return response.back();
    return response[idx];
  }
};

/// Workspace EstimateChannel: bit-identical response values computed
/// into ws scratch (slots kEqPilots, kEqDerot, and the interpolator's).
/// @throws std::invalid_argument exactly as EstimateChannel does.
ChannelView EstimateChannelInto(const PilotGeometry& geometry,
                                const dsp::ComplexVec& spectrum,
                                dsp::Workspace& ws);

/// Workspace Equalize: identical values into ws slot kEqualized; the
/// returned span is valid until the next EqualizeInto on the workspace.
std::span<const dsp::Complex> EqualizeInto(const ChannelView& estimate,
                                           const dsp::ComplexVec& spectrum,
                                           std::span<const std::size_t> bins,
                                           dsp::Workspace& ws);

}  // namespace wearlock::modem
