#include "modem/frame.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/chirp.h"
#include "dsp/fft_plan.h"
#include "dsp/workspace.h"

namespace wearlock::modem {

dsp::Complex PilotValue(std::size_t bin) {
  // Golden-ratio phase scrambling: decorrelated phases, |value| = 1.
  constexpr double kGolden = 0.6180339887498949;
  const double frac = std::fmod(static_cast<double>(bin) * kGolden, 1.0);
  return std::polar(1.0, 2.0 * std::numbers::pi * frac);
}

audio::Samples MakePreamble(const FrameSpec& spec) {
  std::size_t lo = spec.plan.fft_size, hi = 0;
  for (std::size_t b : spec.plan.pilots) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  for (std::size_t b : spec.plan.data) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  dsp::ChirpSpec chirp;
  chirp.f_min_hz = spec.plan.FrequencyOfBin(lo);
  chirp.f_max_hz = spec.plan.FrequencyOfBin(hi);
  chirp.length_samples = spec.preamble_samples;
  chirp.sample_rate_hz = spec.plan.sample_rate_hz;
  chirp.amplitude = 1.0;
  chirp.edge_fade_samples = spec.preamble_samples / 16;
  return dsp::MakeChirp(chirp);
}

audio::Samples BuildSymbol(const FrameSpec& spec,
                           const std::map<std::size_t, dsp::Complex>& loads) {
  const std::size_t n = spec.fft_size();
  dsp::ComplexVec spectrum(n, dsp::Complex(0.0, 0.0));
  for (const auto& [bin, value] : loads) {
    if (bin == 0 || bin >= n / 2) {
      throw std::invalid_argument("BuildSymbol: bin out of (0, N/2)");
    }
    spectrum[bin] = value;
    spectrum[n - bin] = std::conj(value);  // Hermitian -> real signal
  }
  audio::Samples body = dsp::IfftReal(std::move(spectrum));
  // Cyclic prefix: copy of the tail, prepended.
  audio::Samples symbol;
  symbol.reserve(spec.cyclic_prefix_samples + n);
  symbol.insert(symbol.end(), body.end() - static_cast<long>(spec.cyclic_prefix_samples),
                body.end());
  symbol.insert(symbol.end(), body.begin(), body.end());
  return symbol;
}

// lint: hot-path
void WriteSymbol(const FrameSpec& spec, const dsp::FftPlan& plan,
                 std::span<const BinLoad> fixed,
                 std::span<const std::size_t> data_bins,
                 std::span<const dsp::Complex> data_values,
                 dsp::Workspace& ws, std::span<double> out) {
  const std::size_t n = spec.fft_size();
  const std::size_t cp = spec.cyclic_prefix_samples;
  if (data_bins.size() != data_values.size()) {
    throw std::invalid_argument("WriteSymbol: data_bins/data_values mismatch");
  }
  if (out.size() != spec.symbol_samples()) {
    throw std::invalid_argument("WriteSymbol: out size != symbol_samples");
  }
  dsp::ComplexVec& spectrum = ws.ComplexZeroed(dsp::CSlot::kSymbolBuild, n);
  const auto load = [&](std::size_t bin, const dsp::Complex& value) {
    if (bin == 0 || bin >= n / 2) {
      throw std::invalid_argument("BuildSymbol: bin out of (0, N/2)");
    }
    spectrum[bin] = value;
    spectrum[n - bin] = std::conj(value);  // Hermitian -> real signal
  };
  for (const BinLoad& f : fixed) load(f.bin, f.value);
  for (std::size_t i = 0; i < data_bins.size(); ++i) {
    load(data_bins[i], data_values[i]);
  }
  plan.Inverse(spectrum.data());
  // Body goes to out[cp..cp+n); the cyclic prefix is then the body tail,
  // which already sits at out[n..n+cp).
  for (std::size_t i = 0; i < n; ++i) out[cp + i] = spectrum[i].real();
  for (std::size_t j = 0; j < cp; ++j) out[j] = out[n + j];
}

dsp::ComplexVec SymbolSpectrum(const FrameSpec& spec,
                               const audio::Samples& body) {
  if (body.size() != spec.fft_size()) {
    throw std::invalid_argument("SymbolSpectrum: body size != FFT size");
  }
  return dsp::FftReal(body);
}

void NormalizeFrame(const FrameSpec& spec, audio::Samples& frame) {
  double peak = 0.0;
  for (double v : frame) peak = std::max(peak, std::abs(v));
  if (peak <= 0.0) return;
  const double g = spec.peak_amplitude / peak;
  for (double& v : frame) v *= g;
}

}  // namespace wearlock::modem
