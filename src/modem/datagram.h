// Datagram layer: arbitrary byte payloads over the acoustic modem.
//
// WearLock itself only ever ships 32-bit OTP tokens whose length is
// agreed over the control channel, but the underlying OFDM modem is a
// general transport. This layer adds what standalone use needs:
//   [16-bit length | payload bytes | CRC-16/CCITT]
// optionally channel-coded, so a receiver can recover a datagram without
// any out-of-band length agreement and detect residual corruption.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "modem/coding.h"
#include "modem/modem.h"

namespace wearlock::modem {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
std::uint16_t Crc16(const std::vector<std::uint8_t>& bytes);

/// Bytes -> bits (MSB first) and back.
std::vector<std::uint8_t> BitsFromBytes(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> BytesFromBits(const std::vector<std::uint8_t>& bits);

struct DatagramConfig {
  Modulation modulation = Modulation::kQpsk;
  CodeScheme code = CodeScheme::kHamming74;
  /// Max accepted payload (guards the length field against corruption).
  std::size_t max_payload_bytes = 256;
  /// > 1 block-interleaves the coded payload+CRC (the header stays in
  /// place so the two-pass length decode still works), spreading an
  /// on-air error burst across code blocks. 1 = off.
  std::size_t interleave_depth = 1;
};

/// Frame a payload into an acoustic waveform.
/// @throws std::invalid_argument if payload exceeds max_payload_bytes.
TxFrame SendDatagram(const AcousticModem& modem, const DatagramConfig& config,
                     const std::vector<std::uint8_t>& payload);

struct DatagramResult {
  std::vector<std::uint8_t> payload;
  bool crc_ok = false;
  double preamble_score = 0.0;
};

/// Recover a datagram from a recording. nullopt when no frame is found
/// or the header is unusable; a present result with crc_ok == false
/// means a frame arrived but was corrupted beyond the code's capability.
std::optional<DatagramResult> ReceiveDatagram(const AcousticModem& modem,
                                              const DatagramConfig& config,
                                              const audio::Samples& recording);

}  // namespace wearlock::modem
