#include "modem/modulator.h"

#include <algorithm>

#include "dsp/window.h"

namespace wearlock::modem {

Modulator::Modulator(FrameSpec spec) : spec_(spec), preamble_(MakePreamble(spec)) {
  spec_.plan.Validate();
}

std::size_t Modulator::SymbolsForBits(Modulation m, std::size_t n_bits) const {
  const std::size_t bits_per_ofdm =
      spec_.plan.data.size() * BitsPerSymbol(m);
  return (n_bits + bits_per_ofdm - 1) / bits_per_ofdm;
}

TxFrame Modulator::ModulateBits(Modulation m,
                                const std::vector<std::uint8_t>& bits) const {
  const Constellation& c = Constellation::Get(m);
  std::vector<dsp::Complex> symbols = MapBits(m, bits);
  // Pad the symbol stream to a whole number of OFDM symbols.
  const std::size_t per_ofdm = spec_.plan.data.size();
  while (symbols.size() % per_ofdm != 0) symbols.push_back(c.Map(0));
  const std::size_t n_ofdm = symbols.size() / per_ofdm;

  // Data bins are filled in ascending frequency order.
  std::vector<std::size_t> data_bins = spec_.plan.data;
  std::sort(data_bins.begin(), data_bins.end());

  TxFrame frame;
  frame.n_bits = bits.size();
  frame.n_symbols = n_ofdm;
  frame.samples = preamble_;
  audio::Append(frame.samples,
                audio::Silence(spec_.preamble_guard_samples));
  for (std::size_t s = 0; s < n_ofdm; ++s) {
    std::map<std::size_t, dsp::Complex> loads;
    for (std::size_t b : spec_.plan.pilots) loads[b] = PilotValue(b);
    for (std::size_t i = 0; i < per_ofdm; ++i) {
      loads[data_bins[i]] = symbols[s * per_ofdm + i];
    }
    audio::Append(frame.samples, BuildSymbol(spec_, loads));
  }
  NormalizeFrame(spec_, frame.samples);
  // Soften the very start against the speaker rise effect.
  dsp::ApplyFadeIn(frame.samples, 8);
  return frame;
}

TxFrame Modulator::MakeProbeFrame() const {
  TxFrame frame;
  frame.n_bits = 0;
  frame.n_symbols = spec_.probe_symbols;
  frame.samples = preamble_;
  audio::Append(frame.samples,
                audio::Silence(spec_.preamble_guard_samples));
  std::map<std::size_t, dsp::Complex> loads;
  for (std::size_t b : spec_.plan.pilots) loads[b] = PilotValue(b);
  for (std::size_t b : spec_.plan.data) loads[b] = PilotValue(b);
  const audio::Samples symbol = BuildSymbol(spec_, loads);
  for (std::size_t s = 0; s < spec_.probe_symbols; ++s) {
    audio::Append(frame.samples, symbol);
  }
  NormalizeFrame(spec_, frame.samples);
  dsp::ApplyFadeIn(frame.samples, 8);
  return frame;
}

}  // namespace wearlock::modem
