#include "modem/modulator.h"

#include <algorithm>

#include "dsp/fft_plan.h"
#include "dsp/window.h"
#include "dsp/workspace.h"

namespace wearlock::modem {

Modulator::Modulator(FrameSpec spec) : spec_(spec), preamble_(MakePreamble(spec)) {
  spec_.plan.Validate();
  pilot_loads_.reserve(spec_.plan.pilots.size());
  for (std::size_t b : spec_.plan.pilots) {
    pilot_loads_.push_back(BinLoad{b, PilotValue(b)});
  }
  // Data bins are filled in ascending frequency order.
  data_bins_ = spec_.plan.data;
  std::sort(data_bins_.begin(), data_bins_.end());
  probe_loads_ = pilot_loads_;
  probe_loads_.reserve(pilot_loads_.size() + spec_.plan.data.size());
  for (std::size_t b : spec_.plan.data) {
    probe_loads_.push_back(BinLoad{b, PilotValue(b)});
  }
}

std::size_t Modulator::SymbolsForBits(Modulation m, std::size_t n_bits) const {
  const std::size_t bits_per_ofdm =
      spec_.plan.data.size() * BitsPerSymbol(m);
  return (n_bits + bits_per_ofdm - 1) / bits_per_ofdm;
}

TxFrame Modulator::ModulateBits(Modulation m,
                                const std::vector<std::uint8_t>& bits) const {
  const Constellation& c = Constellation::Get(m);
  std::vector<dsp::Complex> symbols = MapBits(m, bits);
  // Pad the symbol stream to a whole number of OFDM symbols.
  const std::size_t per_ofdm = spec_.plan.data.size();
  while (symbols.size() % per_ofdm != 0) symbols.push_back(c.Map(0));
  const std::size_t n_ofdm = symbols.size() / per_ofdm;

  TxFrame frame;
  frame.n_bits = bits.size();
  frame.n_symbols = n_ofdm;
  // Assemble in place: preamble, zero guard (from the fill), then each
  // symbol written directly into its slice - no per-symbol vectors.
  frame.samples.assign(spec_.FrameSamples(n_ofdm), 0.0);
  std::copy(preamble_.begin(), preamble_.end(), frame.samples.begin());
  const auto plan = dsp::PlanCache::Shared().Get(spec_.fft_size());
  dsp::Workspace& ws = dsp::Workspace::PerThread();
  const std::span<double> out(frame.samples);
  const std::span<const dsp::Complex> all_symbols(symbols);
  for (std::size_t s = 0; s < n_ofdm; ++s) {
    WriteSymbol(spec_, *plan, pilot_loads_, data_bins_,
                all_symbols.subspan(s * per_ofdm, per_ofdm), ws,
                out.subspan(spec_.header_samples() + s * spec_.symbol_samples(),
                            spec_.symbol_samples()));
  }
  NormalizeFrame(spec_, frame.samples);
  // Soften the very start against the speaker rise effect.
  dsp::ApplyFadeIn(frame.samples, 8);
  return frame;
}

TxFrame Modulator::MakeProbeFrame() const {
  TxFrame frame;
  frame.n_bits = 0;
  frame.n_symbols = spec_.probe_symbols;
  frame.samples.assign(spec_.FrameSamples(spec_.probe_symbols), 0.0);
  std::copy(preamble_.begin(), preamble_.end(), frame.samples.begin());
  const auto plan = dsp::PlanCache::Shared().Get(spec_.fft_size());
  const std::span<double> out(frame.samples);
  if (spec_.probe_symbols > 0) {
    const std::span<double> first =
        out.subspan(spec_.header_samples(), spec_.symbol_samples());
    WriteSymbol(spec_, *plan, probe_loads_, {}, {},
                dsp::Workspace::PerThread(), first);
    // The block pilot symbol repeats verbatim.
    for (std::size_t s = 1; s < spec_.probe_symbols; ++s) {
      std::copy(first.begin(), first.end(),
                out.begin() +
                    static_cast<std::ptrdiff_t>(spec_.header_samples() +
                                                s * spec_.symbol_samples()));
    }
  }
  NormalizeFrame(spec_, frame.samples);
  dsp::ApplyFadeIn(frame.samples, 8);
  return frame;
}

}  // namespace wearlock::modem
