#include "modem/drift.h"

#include <algorithm>
#include <cmath>

#include "dsp/resample.h"
#include "modem/detector.h"

namespace wearlock::modem {
namespace {

/// Normalized correlation of recording[at, at+n) against `ref`.
double CorrAt(std::span<const double> recording, std::span<const double> ref,
              std::size_t at) {
  const std::size_t n = ref.size();
  if (at + n > recording.size()) return 0.0;
  double dot = 0.0, ex = 0.0, er = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = recording[at + i];
    dot += x * ref[i];
    ex += x * x;
    er += ref[i] * ref[i];
  }
  const double denom = std::sqrt(ex * er);
  return denom > 1e-30 ? dot / denom : 0.0;
}

}  // namespace

DriftEstimate EstimateDrift(std::span<const double> recording,
                            const FrameSpec& spec, std::size_t expected_start,
                            const DriftConfig& config) {
  DriftEstimate est;
  const PreambleDetector detector(spec);
  const auto detection = detector.Detect(recording);
  if (!detection) return est;
  est.valid = true;
  est.shift_samples = static_cast<long>(detection->preamble_start) -
                      static_cast<long>(expected_start);
  if (config.clock_age_s > 0.0) {
    est.sro_ppm = static_cast<double>(est.shift_samples) /
                  (config.clock_age_s * audio::kSampleRate) * 1e6;
  }

  // Rate from pilot spacing: the probe's block-pilot symbols are
  // identical on the wire, so the lag maximizing the correlation between
  // the first and last pilot bodies *is* the received span of
  // (probe_symbols - 1) symbol periods. Sub-sample refinement comes from
  // a parabola through the peak and its neighbors.
  if (spec.probe_symbols < 2) return est;
  const std::size_t span_symbols = spec.probe_symbols - 1;
  const double nominal =
      static_cast<double>(span_symbols * spec.symbol_samples());
  const std::size_t first_body = detection->preamble_start +
                                 spec.header_samples() +
                                 spec.cyclic_prefix_samples;
  if (first_body + spec.fft_size() > recording.size()) return est;
  const std::span<const double> ref =
      recording.subspan(first_body, spec.fft_size());
  const long radius =
      static_cast<long>(std::ceil(config.max_rate_ppm * 1e-6 * nominal)) + 3;

  long best_lag = 0;
  double best = -2.0;
  std::vector<double> scores(static_cast<std::size_t>(2 * radius + 1), -2.0);
  for (long d = -radius; d <= radius; ++d) {
    const long at = static_cast<long>(first_body) +
                    static_cast<long>(nominal) + d;
    if (at < 0) continue;
    const double score = CorrAt(recording, ref, static_cast<std::size_t>(at));
    scores[static_cast<std::size_t>(d + radius)] = score;
    if (score > best) {
      best = score;
      best_lag = d;
    }
  }
  est.rate_score = best;
  if (best < config.min_rate_score) return est;

  // Parabolic sub-sample refinement around the peak.
  double lag = static_cast<double>(best_lag);
  const std::size_t c = static_cast<std::size_t>(best_lag + radius);
  if (c > 0 && c + 1 < scores.size() && scores[c - 1] > -2.0 &&
      scores[c + 1] > -2.0) {
    const double denom = scores[c - 1] - 2.0 * scores[c] + scores[c + 1];
    if (std::abs(denom) > 1e-12) {
      const double delta = 0.5 * (scores[c - 1] - scores[c + 1]) / denom;
      if (std::abs(delta) <= 1.0) lag += delta;
    }
  }
  // Received span m maps to transmitted span `nominal` via m = nominal /
  // rate (the channel renders y[i] = x[i * rate]).
  const double measured = nominal + lag;
  if (measured > 0.0) {
    const double rate = nominal / measured;
    est.rate_ppm = (rate - 1.0) * 1e6;
    if (std::abs(est.rate_ppm) > config.max_rate_ppm) {
      est.rate_ppm = 0.0;  // outside the searched envelope: distrust it
    }
  }
  return est;
}

audio::Samples CompensateRate(const audio::Samples& recording,
                              double rate_ppm) {
  if (rate_ppm == 0.0) return recording;
  // The channel produced y[i] = x[i * rate]; resampling y at 1/rate
  // restores x's timeline.
  return dsp::WarpTimeSinc(recording, 1.0 / (1.0 + rate_ppm * 1e-6));
}

}  // namespace wearlock::modem
