#include "modem/detector.h"

#include <algorithm>
#include <cmath>

#include "dsp/correlate.h"
#include "dsp/spl.h"
#include "dsp/workspace.h"
#include "obs/instrument.h"

namespace wearlock::modem {

PreambleDetector::PreambleDetector(FrameSpec spec, DetectorConfig config)
    : spec_(spec), config_(config), preamble_(MakePreamble(spec)) {}

std::vector<double> PreambleDetector::Scores(
    std::span<const double> recording) const {
  if (recording.size() < preamble_.size()) return {};
  return dsp::NormalizedCrossCorrelate(recording, preamble_);
}

// lint: hot-path
std::optional<std::size_t> PreambleDetector::FindSignalOnset(
    std::span<const double> recording) const {
  const std::size_t w = config_.energy_window;
  if (recording.size() < w || w == 0) return std::nullopt;
  // Window RMS sequence, in this thread's workspace.
  dsp::Workspace& ws = dsp::Workspace::PerThread();
  const std::size_t n_windows = recording.size() / w;
  if (n_windows == 0) return std::nullopt;
  dsp::RealVec& window_rms = ws.RealBuf(dsp::RSlot::kOnsetRms, n_windows);
  for (std::size_t k = 0; k < n_windows; ++k) {
    const std::size_t i = k * w;
    double e = 0.0;
    for (std::size_t j = 0; j < w; ++j) e += recording[i + j] * recording[i + j];
    window_rms[k] = std::sqrt(e / static_cast<double>(w));
  }
  // Noise floor: quietest decile (robust when most of the buffer is
  // signal).
  dsp::RealVec& sorted = ws.RealBuf(dsp::RSlot::kOnsetSorted, n_windows);
  std::copy(window_rms.begin(), window_rms.end(), sorted.begin());
  std::sort(sorted.begin(), sorted.end());
  const double floor_rms =
      std::max(sorted[sorted.size() / 10], dsp::kReferencePressure);
  const double gate = floor_rms * std::pow(10.0, config_.energy_gate_db / 20.0);
  for (std::size_t i = 0; i < window_rms.size(); ++i) {
    if (window_rms[i] > gate) return i * w;
  }
  return std::nullopt;
}

// lint: hot-path
std::optional<Detection> PreambleDetector::Detect(
    std::span<const double> recording) const {
  WL_SPAN_V(span, "modem.sync.detect");
  WL_TIMED_SERIES("modem.sync.host_ms");
  WL_COUNT("modem.sync.calls");
  const auto onset = FindSignalOnset(recording);
  if (!onset) {
    WL_COUNT("modem.sync.silent");
    return std::nullopt;
  }
  // Search from a little before the gate opening (the gate has window
  // granularity). The region is a view, not a copy, and the correlation
  // scores land in workspace scratch.
  const std::size_t begin =
      *onset >= config_.energy_window ? *onset - config_.energy_window : 0;
  const std::span<const double> region = recording.subspan(begin);
  if (region.size() < preamble_.size()) return std::nullopt;
  dsp::Workspace& ws = dsp::Workspace::PerThread();
  dsp::RealVec& scores = ws.RealBuf(dsp::RSlot::kDetectorScores,
                                    region.size() - preamble_.size() + 1);
  dsp::NormalizedCrossCorrelateInto(region, preamble_, ws, scores);
  const dsp::PeakResult peak = dsp::FindPeak(scores);
  if (peak.score < config_.score_threshold) {
    WL_COUNT("modem.sync.no_preamble");
    return std::nullopt;
  }
  Detection d;
  d.preamble_start = begin + peak.index;
  d.score = peak.score;
  d.search_begin = begin;
  WL_SPAN_ATTR(span, "score", d.score);
  WL_HIST_BOUNDS("modem.sync.score",
                 ::wearlock::obs::Histogram::LinearBounds(0.05, 0.05, 19),
                 d.score);
  return d;
}

}  // namespace wearlock::modem
