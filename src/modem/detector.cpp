#include "modem/detector.h"

#include <algorithm>
#include <cmath>

#include "dsp/correlate.h"
#include "dsp/spl.h"
#include "obs/instrument.h"

namespace wearlock::modem {

PreambleDetector::PreambleDetector(FrameSpec spec, DetectorConfig config)
    : spec_(spec), config_(config), preamble_(MakePreamble(spec)) {}

std::vector<double> PreambleDetector::Scores(
    const audio::Samples& recording) const {
  if (recording.size() < preamble_.size()) return {};
  return dsp::NormalizedCrossCorrelate(recording, preamble_);
}

std::optional<std::size_t> PreambleDetector::FindSignalOnset(
    const audio::Samples& recording) const {
  const std::size_t w = config_.energy_window;
  if (recording.size() < w || w == 0) return std::nullopt;
  // Window RMS sequence.
  std::vector<double> window_rms;
  window_rms.reserve(recording.size() / w);
  for (std::size_t i = 0; i + w <= recording.size(); i += w) {
    double e = 0.0;
    for (std::size_t j = 0; j < w; ++j) e += recording[i + j] * recording[i + j];
    window_rms.push_back(std::sqrt(e / static_cast<double>(w)));
  }
  if (window_rms.empty()) return std::nullopt;
  // Noise floor: quietest decile (robust when most of the buffer is
  // signal).
  std::vector<double> sorted = window_rms;
  std::sort(sorted.begin(), sorted.end());
  const double floor_rms =
      std::max(sorted[sorted.size() / 10], dsp::kReferencePressure);
  const double gate = floor_rms * std::pow(10.0, config_.energy_gate_db / 20.0);
  for (std::size_t i = 0; i < window_rms.size(); ++i) {
    if (window_rms[i] > gate) return i * w;
  }
  return std::nullopt;
}

std::optional<Detection> PreambleDetector::Detect(
    const audio::Samples& recording) const {
  WL_SPAN_V(span, "modem.sync.detect");
  WL_TIMED_SERIES("modem.sync.host_ms");
  WL_COUNT("modem.sync.calls");
  const auto onset = FindSignalOnset(recording);
  if (!onset) {
    WL_COUNT("modem.sync.silent");
    return std::nullopt;
  }
  // Search from a little before the gate opening (the gate has window
  // granularity).
  const std::size_t begin =
      *onset >= config_.energy_window ? *onset - config_.energy_window : 0;
  audio::Samples region(recording.begin() + static_cast<long>(begin),
                        recording.end());
  const std::vector<double> scores = Scores(region);
  if (scores.empty()) return std::nullopt;
  const dsp::PeakResult peak = dsp::FindPeak(scores);
  if (peak.score < config_.score_threshold) {
    WL_COUNT("modem.sync.no_preamble");
    return std::nullopt;
  }
  Detection d;
  d.preamble_start = begin + peak.index;
  d.score = peak.score;
  d.search_begin = begin;
  WL_SPAN_ATTR(span, "score", d.score);
  WL_HIST_BOUNDS("modem.sync.score",
                 ::wearlock::obs::Histogram::LinearBounds(0.05, 0.05, 19),
                 d.score);
  return d;
}

}  // namespace wearlock::modem
