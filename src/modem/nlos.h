// NLOS filtering from the preamble delay profile (paper §III-7 "NLOS
// filtering").
//
// The cross-correlation of the received RTS preamble against the known
// chirp approximates the channel's delay profile A(t_n). Body blocking
// suppresses the direct path and spreads energy into late reflections,
// which shows up as a large RMS delay spread:
//
//   tau_hat = sum(t_n A(t_n)) / sum(A(t_n))
//   tau_rms = sqrt( sum((t_n - tau_hat)^2 A(t_n)) / sum(A(t_n)) )
//
// tau_rms > tau* => assume severe body blocking and abort (or relax the
// BER requirement, as the case study does).
#pragma once

#include <cstddef>
#include <vector>

namespace wearlock::modem {

struct DelayProfile {
  /// Power delay profile samples A(t_n) (non-negative).
  std::vector<double> a;
  /// Time step between profile samples (seconds) = 1/Fs.
  double dt_s = 0.0;
  /// Mean excess delay tau_hat (seconds).
  double mean_delay_s = 0.0;
  /// RMS delay spread tau_rms (seconds).
  double rms_delay_s = 0.0;
};

/// Build the delay profile from preamble correlation scores. The profile
/// window spans [peak - pre, peak + post] (clamped to valid indices);
/// scores are rectified and squared into powers, and values below
/// `floor_fraction` of the peak power are zeroed - the floor must sit
/// above the squared correlation-noise level of loud rooms or ambient
/// noise masquerades as delay spread. @throws std::invalid_argument for empty scores.
DelayProfile ComputeDelayProfile(const std::vector<double>& corr_scores,
                                 std::size_t peak_index, double sample_rate_hz,
                                 std::size_t pre = 64, std::size_t post = 384,
                                 double floor_fraction = 0.08);

struct NlosConfig {
  /// tau* threshold on the RMS delay spread (seconds). LOS indoor paths
  /// measure well under 1 ms; the body-blocked profile spreads to several
  /// ms.
  double rms_delay_threshold_s = 0.0008;
};

/// True if the profile indicates severe body blocking.
bool IsNlos(const DelayProfile& profile, const NlosConfig& config = {});

}  // namespace wearlock::modem
