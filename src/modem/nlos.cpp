#include "modem/nlos.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wearlock::modem {

DelayProfile ComputeDelayProfile(const std::vector<double>& corr_scores,
                                 std::size_t peak_index, double sample_rate_hz,
                                 std::size_t pre, std::size_t post,
                                 double floor_fraction) {
  if (corr_scores.empty()) {
    throw std::invalid_argument("ComputeDelayProfile: empty scores");
  }
  if (peak_index >= corr_scores.size()) {
    throw std::invalid_argument("ComputeDelayProfile: peak out of range");
  }
  if (sample_rate_hz <= 0.0) {
    throw std::invalid_argument("ComputeDelayProfile: bad sample rate");
  }
  const std::size_t begin = peak_index >= pre ? peak_index - pre : 0;
  const std::size_t end = std::min(corr_scores.size(), peak_index + post + 1);

  DelayProfile profile;
  profile.dt_s = 1.0 / sample_rate_hz;
  profile.a.reserve(end - begin);
  double peak_power = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double p = corr_scores[i] > 0.0 ? corr_scores[i] * corr_scores[i] : 0.0;
    peak_power = std::max(peak_power, p);
    profile.a.push_back(p);
  }
  const double floor = peak_power * floor_fraction;
  for (double& p : profile.a) {
    if (p < floor) p = 0.0;
  }

  double sum_a = 0.0, sum_ta = 0.0;
  for (std::size_t n = 0; n < profile.a.size(); ++n) {
    const double t = static_cast<double>(n) * profile.dt_s;
    sum_a += profile.a[n];
    sum_ta += t * profile.a[n];
  }
  if (sum_a <= 0.0) return profile;  // all-noise window: zero spread
  profile.mean_delay_s = sum_ta / sum_a;
  double sum_var = 0.0;
  for (std::size_t n = 0; n < profile.a.size(); ++n) {
    const double t = static_cast<double>(n) * profile.dt_s;
    sum_var += (t - profile.mean_delay_s) * (t - profile.mean_delay_s) * profile.a[n];
  }
  profile.rms_delay_s = std::sqrt(sum_var / sum_a);
  return profile;
}

bool IsNlos(const DelayProfile& profile, const NlosConfig& config) {
  return profile.rms_delay_s > config.rms_delay_threshold_s;
}

}  // namespace wearlock::modem
