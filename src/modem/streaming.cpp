#include "modem/streaming.h"

#include <algorithm>

namespace wearlock::modem {

std::string ToString(StreamState state) {
  switch (state) {
    case StreamState::kSearching: return "searching";
    case StreamState::kCollecting: return "collecting";
    case StreamState::kDone: return "done";
    case StreamState::kFailed: return "failed";
  }
  return "?";
}

namespace {

DetectorConfig StreamingDetector(const StreamingConfig& config) {
  DetectorConfig det = config.demod.detector;
  det.score_threshold = config.detection_threshold;
  return det;
}

std::size_t FrameSymbols(const FrameSpec& spec, const StreamingConfig& config) {
  const std::size_t bits_per_ofdm =
      spec.plan.data.size() * BitsPerSymbol(config.modulation);
  return (config.payload_bits + bits_per_ofdm - 1) / bits_per_ofdm;
}

}  // namespace

StreamingReceiver::StreamingReceiver(FrameSpec spec, StreamingConfig config)
    : spec_(spec),
      config_(config),
      detector_(spec, StreamingDetector(config)),
      demodulator_(spec, config.demod),
      frame_symbols_(FrameSymbols(spec, config)) {
  spec_.plan.Validate();
}

void StreamingReceiver::Reset() {
  // Release the backing store, don't just clear it: a receiver parked
  // after a long session should not pin a frame's worth of audio.
  audio::Samples().swap(buffer_);
  head_ = 0;
  decode_attempts_ = 0;
  consumed_ = 0;
  discarded_ = 0;
  preamble_start_ = 0;
  state_ = StreamState::kSearching;
  result_.reset();
}

StreamState StreamingReceiver::Push(const audio::Samples& chunk) {
  if (state_ == StreamState::kDone || state_ == StreamState::kFailed) {
    return state_;
  }
  // Compact the discarded prefix before growing, so the backing store
  // never holds more than the retained tail plus this chunk. This is a
  // bounded memmove; with warm capacity the insert below cannot
  // reallocate.
  if (head_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  consumed_ += chunk.size();

  if (state_ == StreamState::kSearching) {
    TrySearch();
    // Bound memory while idle: drop audio that can no longer contain the
    // start of a frame we would still catch. O(1) - the head index moves;
    // the bytes leave at the next Push's compaction.
    if (state_ == StreamState::kSearching &&
        buffered_samples() > config_.search_retain_samples) {
      const std::size_t drop =
          buffered_samples() - config_.search_retain_samples;
      head_ += drop;
      discarded_ += drop;
    }
  }
  if (state_ == StreamState::kCollecting) TryDecode();
  return state_;
}

void StreamingReceiver::TrySearch() {
  // Cheap gate first; the correlator only runs when energy shows up.
  const std::span<const double> view = View();
  const auto detection = detector_.Detect(view);
  if (!detection) return;
  // A peak at the very end of the buffer may be the rising edge of a
  // still-arriving chirp; wait for the next chunk to confirm it is a
  // maximum rather than a slope.
  if (detection->preamble_start + 2 * spec_.preamble_samples > view.size()) {
    return;
  }
  preamble_start_ = discarded_ + detection->preamble_start;
  state_ = StreamState::kCollecting;
}

void StreamingReceiver::TryDecode() {
  const std::size_t local_start = preamble_start_ - discarded_;
  const std::size_t need = local_start + spec_.FrameSamples(frame_symbols_) +
                           config_.guard_tail_samples;
  if (buffered_samples() < need) return;  // keep collecting

  const auto result = demodulator_.Demodulate(View(), config_.modulation,
                                              config_.payload_bits);
  if (result) {
    result_ = result;
    state_ = StreamState::kDone;
    return;
  }
  // A decode failure usually means the lock was a false positive (noise
  // peak) or the frame was clipped; discard through the suspect preamble
  // and re-arm, giving up after a few attempts.
  if (++decode_attempts_ >= config_.max_decode_attempts) {
    state_ = StreamState::kFailed;
    return;
  }
  const std::size_t drop =
      std::min(buffered_samples(), preamble_start_ - discarded_ + 1);
  head_ += drop;
  discarded_ += drop;
  state_ = StreamState::kSearching;
}

}  // namespace wearlock::modem
