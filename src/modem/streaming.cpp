#include "modem/streaming.h"

#include <algorithm>

namespace wearlock::modem {

std::string ToString(StreamState state) {
  switch (state) {
    case StreamState::kSearching: return "searching";
    case StreamState::kCollecting: return "collecting";
    case StreamState::kDone: return "done";
    case StreamState::kFailed: return "failed";
  }
  return "?";
}

namespace {

DetectorConfig StreamingDetector(const StreamingConfig& config) {
  DetectorConfig det = config.demod.detector;
  det.score_threshold = config.detection_threshold;
  return det;
}

}  // namespace

StreamingReceiver::StreamingReceiver(FrameSpec spec, StreamingConfig config)
    : spec_(spec),
      config_(config),
      detector_(spec, StreamingDetector(config)),
      demodulator_(spec, config.demod) {
  spec_.plan.Validate();
}

void StreamingReceiver::Reset() {
  buffer_.clear();
  decode_attempts_ = 0;
  consumed_ = 0;
  discarded_ = 0;
  preamble_start_ = 0;
  state_ = StreamState::kSearching;
  result_.reset();
}

StreamState StreamingReceiver::Push(const audio::Samples& chunk) {
  if (state_ == StreamState::kDone || state_ == StreamState::kFailed) {
    return state_;
  }
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  consumed_ += chunk.size();

  if (state_ == StreamState::kSearching) {
    TrySearch();
    // Bound memory while idle: drop audio that can no longer contain the
    // start of a frame we would still catch.
    if (state_ == StreamState::kSearching &&
        buffer_.size() > config_.search_retain_samples) {
      const std::size_t drop = buffer_.size() - config_.search_retain_samples;
      buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(drop));
      discarded_ += drop;
    }
  }
  if (state_ == StreamState::kCollecting) TryDecode();
  return state_;
}

void StreamingReceiver::TrySearch() {
  // Cheap gate first; the correlator only runs when energy shows up.
  const auto detection = detector_.Detect(buffer_);
  if (!detection) return;
  // A peak at the very end of the buffer may be the rising edge of a
  // still-arriving chirp; wait for the next chunk to confirm it is a
  // maximum rather than a slope.
  if (detection->preamble_start + 2 * spec_.preamble_samples > buffer_.size()) {
    return;
  }
  preamble_start_ = discarded_ + detection->preamble_start;
  state_ = StreamState::kCollecting;
}

void StreamingReceiver::TryDecode() {
  const Modulator shape(spec_);
  const std::size_t n_symbols =
      shape.SymbolsForBits(config_.modulation, config_.payload_bits);
  const std::size_t local_start = preamble_start_ - discarded_;
  const std::size_t need = local_start + spec_.FrameSamples(n_symbols) +
                           config_.guard_tail_samples;
  if (buffer_.size() < need) return;  // keep collecting

  const auto result = demodulator_.Demodulate(buffer_, config_.modulation,
                                              config_.payload_bits);
  if (result) {
    result_ = result;
    state_ = StreamState::kDone;
    return;
  }
  // A decode failure usually means the lock was a false positive (noise
  // peak) or the frame was clipped; discard through the suspect preamble
  // and re-arm, giving up after a few attempts.
  if (++decode_attempts_ >= config_.max_decode_attempts) {
    state_ = StreamState::kFailed;
    return;
  }
  const std::size_t drop =
      std::min(buffer_.size(), preamble_start_ - discarded_ + 1);
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(drop));
  discarded_ += drop;
  state_ = StreamState::kSearching;
}

}  // namespace wearlock::modem
