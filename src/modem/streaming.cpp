#include "modem/streaming.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace wearlock::modem {

std::string ToString(StreamState state) {
  switch (state) {
    case StreamState::kSearching: return "searching";
    case StreamState::kCollecting: return "collecting";
    case StreamState::kDone: return "done";
    case StreamState::kFailed: return "failed";
  }
  return "?";
}

namespace {

DetectorConfig StreamingDetector(const StreamingConfig& config) {
  DetectorConfig det = config.demod.detector;
  det.score_threshold = config.detection_threshold;
  return det;
}

std::size_t FrameSymbols(const FrameSpec& spec, const StreamingConfig& config) {
  const std::size_t bits_per_ofdm =
      spec.plan.data.size() * BitsPerSymbol(config.modulation);
  return (config.payload_bits + bits_per_ofdm - 1) / bits_per_ofdm;
}

}  // namespace

StreamingReceiver::StreamingReceiver(FrameSpec spec, StreamingConfig config)
    : spec_(spec),
      config_(config),
      detector_(spec, StreamingDetector(config)),
      demodulator_(spec, config.demod),
      frame_symbols_(FrameSymbols(spec, config)) {
  spec_.plan.Validate();
}

void StreamingReceiver::Reset() {
  // Release the backing store, don't just clear it: a receiver parked
  // after a long session should not pin a frame's worth of audio.
  audio::Samples().swap(buffer_);
  head_ = 0;
  decode_attempts_ = 0;
  consumed_ = 0;
  discarded_ = 0;
  preamble_start_ = 0;
  state_ = StreamState::kSearching;
  result_.reset();
  audio::Samples().swap(warp_pending_);
  warp_base_ = 0;
  warp_out_ = 0;
}

audio::Samples StreamingReceiver::WarpIngest(const audio::Samples& chunk) {
  // Same kernel as dsp::WarpTimeSinc (Hann-windowed sinc, DC-normalized),
  // run incrementally: an output sample is emitted only once its whole
  // kernel support has arrived, and the phase accumulator carries the
  // fractional position across chunks - so a given input stream yields
  // the same compensated stream for any chunking.
  constexpr double kPi = std::numbers::pi;
  const double step = 1.0 / (1.0 + config_.compensate_rate_ppm * 1e-6);
  const long long half = static_cast<long long>(config_.resample_taps / 2);
  warp_pending_.insert(warp_pending_.end(), chunk.begin(), chunk.end());
  const auto available = static_cast<long long>(warp_base_) +
                         static_cast<long long>(warp_pending_.size());
  audio::Samples out;
  while (true) {
    const double pos = static_cast<double>(warp_out_) * step;
    const long long centre = static_cast<long long>(std::floor(pos));
    if (centre + half >= available) break;  // kernel not fully covered yet
    double acc = 0.0;
    double norm = 0.0;
    for (long long k = centre - half; k <= centre + half; ++k) {
      const double d = pos - static_cast<double>(k);
      const double w =
          0.5 + 0.5 * std::cos(kPi * d / (static_cast<double>(half) + 1.0));
      const double s = std::abs(d) < 1e-12
                           ? 1.0
                           : std::sin(kPi * d) / (kPi * d);
      const double h = s * w;
      norm += h;
      const long long rel = k - static_cast<long long>(warp_base_);
      if (k >= 0 && rel >= 0 &&
          rel < static_cast<long long>(warp_pending_.size())) {
        acc += warp_pending_[static_cast<std::size_t>(rel)] * h;
      }
    }
    out.push_back(std::abs(norm) > 1e-12 ? acc / norm : 0.0);
    ++warp_out_;
  }
  // Drop input the next output's kernel can no longer reach.
  const long long next_centre = static_cast<long long>(
      std::floor(static_cast<double>(warp_out_) * step));
  const long long keep_from = std::max<long long>(0, next_centre - half);
  if (keep_from > static_cast<long long>(warp_base_)) {
    const std::size_t drop =
        static_cast<std::size_t>(keep_from - static_cast<long long>(warp_base_));
    warp_pending_.erase(warp_pending_.begin(),
                        warp_pending_.begin() + static_cast<long>(drop));
    warp_base_ = static_cast<std::uint64_t>(keep_from);
  }
  return out;
}

StreamState StreamingReceiver::Push(const audio::Samples& raw) {
  if (state_ == StreamState::kDone || state_ == StreamState::kFailed) {
    return state_;
  }
  const audio::Samples chunk =
      config_.compensate_rate_ppm != 0.0 ? WarpIngest(raw) : raw;
  // Compact the discarded prefix before growing, so the backing store
  // never holds more than the retained tail plus this chunk. This is a
  // bounded memmove; with warm capacity the insert below cannot
  // reallocate.
  if (head_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  consumed_ += chunk.size();

  if (state_ == StreamState::kSearching) {
    TrySearch();
    // Bound memory while idle: drop audio that can no longer contain the
    // start of a frame we would still catch. O(1) - the head index moves;
    // the bytes leave at the next Push's compaction.
    if (state_ == StreamState::kSearching &&
        buffered_samples() > config_.search_retain_samples) {
      const std::size_t drop =
          buffered_samples() - config_.search_retain_samples;
      head_ += drop;
      discarded_ += drop;
    }
  }
  if (state_ == StreamState::kCollecting) TryDecode();
  return state_;
}

void StreamingReceiver::TrySearch() {
  // Cheap gate first; the correlator only runs when energy shows up.
  const std::span<const double> view = View();
  const auto detection = detector_.Detect(view);
  if (!detection) return;
  // A peak at the very end of the buffer may be the rising edge of a
  // still-arriving chirp; wait for the next chunk to confirm it is a
  // maximum rather than a slope.
  if (detection->preamble_start + 2 * spec_.preamble_samples > view.size()) {
    return;
  }
  preamble_start_ = discarded_ + detection->preamble_start;
  state_ = StreamState::kCollecting;
}

void StreamingReceiver::TryDecode() {
  const std::size_t local_start = preamble_start_ - discarded_;
  const std::size_t need = local_start + spec_.FrameSamples(frame_symbols_) +
                           config_.guard_tail_samples;
  if (buffered_samples() < need) return;  // keep collecting

  const auto result = demodulator_.Demodulate(View(), config_.modulation,
                                              config_.payload_bits);
  if (result) {
    result_ = result;
    state_ = StreamState::kDone;
    return;
  }
  // A decode failure usually means the lock was a false positive (noise
  // peak) or the frame was clipped; discard through the suspect preamble
  // and re-arm, giving up after a few attempts.
  if (++decode_attempts_ >= config_.max_decode_attempts) {
    state_ = StreamState::kFailed;
    return;
  }
  const std::size_t drop =
      std::min(buffered_samples(), preamble_start_ - discarded_ + 1);
  head_ += drop;
  discarded_ += drop;
  state_ = StreamState::kSearching;
}

}  // namespace wearlock::modem
