#include "modem/datagram.h"

#include <stdexcept>

namespace wearlock::modem {
namespace {

constexpr std::size_t kHeaderBits = 16;
constexpr std::size_t kCrcBits = 16;

std::vector<std::uint8_t> U16Bits(std::uint16_t v) {
  std::vector<std::uint8_t> bits(16);
  for (int i = 0; i < 16; ++i) {
    bits[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (15 - i)) & 1u);
  }
  return bits;
}

std::uint16_t BitsU16(const std::vector<std::uint8_t>& bits, std::size_t at) {
  std::uint16_t v = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    v = static_cast<std::uint16_t>((v << 1) | (bits[at + i] & 1u));
  }
  return v;
}

/// Interleave (or undo) the coded bits past the header block. The
/// header's coded prefix must stay in place: pass 1 of ReceiveDatagram
/// decodes it before the payload length (and thus the interleaved
/// span's extent) is known.
std::vector<std::uint8_t> MapBody(const std::vector<std::uint8_t>& coded,
                                  const DatagramConfig& config,
                                  std::size_t header_coded, bool inverse) {
  if (config.interleave_depth <= 1 || coded.size() <= header_coded) {
    return coded;
  }
  std::vector<std::uint8_t> out(coded.begin(),
                                coded.begin() + static_cast<long>(header_coded));
  const std::vector<std::uint8_t> body(
      coded.begin() + static_cast<long>(header_coded), coded.end());
  const auto mapped = inverse ? Deinterleave(body, config.interleave_depth)
                              : Interleave(body, config.interleave_depth);
  out.insert(out.end(), mapped.begin(), mapped.end());
  return out;
}

}  // namespace

std::uint16_t Crc16(const std::vector<std::uint8_t>& bytes) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t b : bytes) {
    crc ^= static_cast<std::uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::vector<std::uint8_t> BitsFromBytes(const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint8_t> bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 7; i >= 0; --i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1u));
    }
  }
  return bits;
}

std::vector<std::uint8_t> BytesFromBits(const std::vector<std::uint8_t>& bits) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(bits.size() / 8);
  for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
    std::uint8_t b = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      b = static_cast<std::uint8_t>((b << 1) | (bits[i + j] & 1u));
    }
    bytes.push_back(b);
  }
  return bytes;
}

TxFrame SendDatagram(const AcousticModem& modem, const DatagramConfig& config,
                     const std::vector<std::uint8_t>& payload) {
  if (payload.size() > config.max_payload_bytes) {
    throw std::invalid_argument("SendDatagram: payload too large");
  }
  std::vector<std::uint8_t> bits =
      U16Bits(static_cast<std::uint16_t>(payload.size()));
  const auto payload_bits = BitsFromBytes(payload);
  bits.insert(bits.end(), payload_bits.begin(), payload_bits.end());
  const auto crc_bits = U16Bits(Crc16(payload));
  bits.insert(bits.end(), crc_bits.begin(), crc_bits.end());
  const auto coded = MapBody(Encode(config.code, bits), config,
                             EncodedLength(config.code, kHeaderBits),
                             /*inverse=*/false);
  return modem.Modulate(config.modulation, coded);
}

std::optional<DatagramResult> ReceiveDatagram(const AcousticModem& modem,
                                              const DatagramConfig& config,
                                              const audio::Samples& recording) {
  // Pass 1: just the coded header (16 payload bits align with whole code
  // blocks for every scheme).
  const std::size_t header_coded = EncodedLength(config.code, kHeaderBits);
  const auto header_demod =
      modem.Demodulate(recording, config.modulation, header_coded);
  if (!header_demod) return std::nullopt;
  const auto header_bits = Decode(config.code, header_demod->bits);
  if (header_bits.size() < kHeaderBits) return std::nullopt;
  const std::uint16_t length = BitsU16(header_bits, 0);
  if (length > config.max_payload_bytes) return std::nullopt;

  // Pass 2: the whole frame now that the length is known.
  const std::size_t total_plain = kHeaderBits + 8u * length + kCrcBits;
  const std::size_t total_coded = EncodedLength(config.code, total_plain);
  const auto demod =
      modem.Demodulate(recording, config.modulation, total_coded);
  if (!demod) return std::nullopt;
  auto plain = Decode(
      config.code, MapBody(demod->bits, config, header_coded, /*inverse=*/true));
  if (plain.size() < total_plain) return std::nullopt;

  DatagramResult result;
  result.preamble_score = demod->preamble_score;
  const std::vector<std::uint8_t> payload_bits(
      plain.begin() + kHeaderBits, plain.begin() + kHeaderBits + 8u * length);
  result.payload = BytesFromBits(payload_bits);
  const std::uint16_t crc_rx = BitsU16(plain, kHeaderBits + 8u * length);
  result.crc_ok = crc_rx == Crc16(result.payload);
  return result;
}

}  // namespace wearlock::modem
