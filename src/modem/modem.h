// AcousticModem: the shared TX/RX facade (the paper implements the modem
// as one common module used by both the phone and watch apps).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "modem/adaptive.h"
#include "modem/demodulator.h"
#include "modem/modulator.h"

namespace wearlock::modem {

/// Convert a 32-bit word into its bit vector (MSB first) and back -
/// the OTP token's on-air representation.
/// @throws std::invalid_argument unless bits has exactly 32 entries,
/// every one of them 0 or 1 (a value > 1 is a caller bug that silent
/// masking used to hide).
std::vector<std::uint8_t> BitsFromWord(std::uint32_t word);
std::uint32_t WordFromBits(const std::vector<std::uint8_t>& bits);

class AcousticModem {
 public:
  explicit AcousticModem(FrameSpec spec = {}, DemodConfig demod_config = {});

  /// TX: data frame carrying `bits` under modulation `m`.
  TxFrame Modulate(Modulation m, const std::vector<std::uint8_t>& bits) const;

  /// TX: RTS channel-probing frame.
  TxFrame MakeProbeFrame() const;

  /// RX: recover n_bits from a recording (a non-owning view).
  std::optional<DemodResult> Demodulate(std::span<const double> recording,
                                        Modulation m, std::size_t n_bits) const;

  /// RX: soft per-bit LLRs for soft-decision decoding.
  std::optional<std::vector<double>> DemodulateSoft(
      std::span<const double> recording, Modulation m,
      std::size_t n_bits) const;

  /// RX: analyze an RTS probe.
  std::optional<ProbeAnalysis> AnalyzeProbe(
      std::span<const double> recording) const;

  /// Re-plan data sub-channels from probed per-bin noise and return a
  /// modem configured with the new plan (modems are cheap value types).
  AcousticModem WithSelectedSubchannels(const std::vector<double>& noise_power) const;

  /// Replace the whole plan (e.g. after the TX side receives the chosen
  /// plan over the control channel).
  AcousticModem WithPlan(const SubchannelPlan& plan) const;

  const FrameSpec& spec() const { return spec_; }
  const Modulator& modulator() const { return modulator_; }
  const Demodulator& demodulator() const { return demodulator_; }

 private:
  FrameSpec spec_;
  DemodConfig demod_config_;
  Modulator modulator_;
  Demodulator demodulator_;
};

}  // namespace wearlock::modem
