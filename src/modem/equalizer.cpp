#include "modem/equalizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft_plan.h"
#include "dsp/workspace.h"

namespace wearlock::modem {

ChannelEstimate::ChannelEstimate(std::size_t first_bin, dsp::ComplexVec response)
    : first_bin_(first_bin), response_(std::move(response)) {}

dsp::Complex ChannelEstimate::At(std::size_t bin) const {
  if (response_.empty()) return dsp::Complex(1.0, 0.0);
  if (bin < first_bin_) return response_.front();
  const std::size_t idx = bin - first_bin_;
  if (idx >= response_.size()) return response_.back();
  return response_[idx];
}

ChannelEstimate ChannelEstimate::Average(
    const std::vector<ChannelEstimate>& estimates) {
  if (estimates.empty()) return ChannelEstimate();
  dsp::ComplexVec acc(estimates.front().response_.size(), dsp::Complex(0.0, 0.0));
  for (const ChannelEstimate& e : estimates) {
    if (e.first_bin_ != estimates.front().first_bin_ ||
        e.response_.size() != acc.size()) {
      throw std::invalid_argument("ChannelEstimate::Average: span mismatch");
    }
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += e.response_[i];
  }
  for (auto& c : acc) c /= static_cast<double>(estimates.size());
  return ChannelEstimate(estimates.front().first_bin_, std::move(acc));
}

double ChannelEstimate::MeanMagnitude() const {
  if (response_.empty()) return 0.0;
  double acc = 0.0;
  for (const dsp::Complex& h : response_) acc += std::abs(h);
  return acc / static_cast<double>(response_.size());
}

ChannelEstimate EstimateChannel(const FrameSpec& spec,
                                const dsp::ComplexVec& spectrum) {
  std::vector<std::size_t> pilots = spec.plan.pilots;
  std::sort(pilots.begin(), pilots.end());
  if (pilots.size() < 2) {
    throw std::invalid_argument("EstimateChannel: need >= 2 pilots");
  }
  const std::size_t spacing = pilots[1] - pilots[0];
  for (std::size_t i = 1; i < pilots.size(); ++i) {
    if (pilots[i] - pilots[i - 1] != spacing) {
      throw std::invalid_argument("EstimateChannel: pilots not equally spaced");
    }
  }
  // Raw estimates at pilot bins: H(p) = z(p) / pilot value (unit power).
  dsp::ComplexVec h_pilots(pilots.size());
  for (std::size_t i = 0; i < pilots.size(); ++i) {
    h_pilots[i] = spectrum[pilots[i]] / PilotValue(pilots[i]);
  }
  // Residual bulk delay rotates phase linearly across frequency; with a
  // pilot spacing of several bins the rotation between pilots can get near
  // pi, which aliases through the FFT interpolation. Estimate the slope
  // (phase advance per pilot), derotate, interpolate the now slowly
  // varying response, and re-apply the slope on the dense grid.
  dsp::Complex slope_acc(0.0, 0.0);
  for (std::size_t i = 1; i < h_pilots.size(); ++i) {
    slope_acc += h_pilots[i] * std::conj(h_pilots[i - 1]);
  }
  const double slope = std::arg(slope_acc);  // radians per pilot spacing
  dsp::ComplexVec derotated(h_pilots.size());
  for (std::size_t i = 0; i < h_pilots.size(); ++i) {
    derotated[i] =
        h_pilots[i] * std::polar(1.0, -slope * static_cast<double>(i));
  }
  // FFT interpolation expands the comb by the pilot spacing, giving an
  // estimate at every bin from the first pilot onward.
  dsp::ComplexVec dense =
      dsp::FftInterpolate(derotated, pilots.size() * spacing);
  for (std::size_t j = 0; j < dense.size(); ++j) {
    dense[j] *= std::polar(
        1.0, slope * static_cast<double>(j) / static_cast<double>(spacing));
  }
  return ChannelEstimate(pilots.front(), dense);
}

std::vector<dsp::Complex> Equalize(const ChannelEstimate& estimate,
                                   const dsp::ComplexVec& spectrum,
                                   const std::vector<std::size_t>& bins) {
  constexpr double kEpsilon = 1e-9;
  std::vector<dsp::Complex> out;
  out.reserve(bins.size());
  for (std::size_t bin : bins) {
    dsp::Complex h = estimate.At(bin);
    if (std::abs(h) < kEpsilon) {
      h = dsp::Complex(kEpsilon, 0.0);
    }
    out.push_back(spectrum[bin] / h);
  }
  return out;
}

PilotGeometry::PilotGeometry(const FrameSpec& spec)
    : pilots_(spec.plan.pilots) {
  std::sort(pilots_.begin(), pilots_.end());
  values_.reserve(pilots_.size());
  for (std::size_t p : pilots_) values_.push_back(PilotValue(p));
  if (pilots_.size() < 2) return;
  spacing_ = pilots_[1] - pilots_[0];
  for (std::size_t i = 1; i < pilots_.size(); ++i) {
    if (pilots_[i] - pilots_[i - 1] != spacing_) return;
  }
  uniform_ = true;
  if (dsp::IsPowerOfTwo(count()) && dsp::IsPowerOfTwo(dense_len()) &&
      dense_len() > count()) {
    fwd_plan_ = dsp::PlanCache::Shared().Get(count());
    inv_plan_ = dsp::PlanCache::Shared().Get(dense_len());
  }
}

// lint: hot-path
ChannelView EstimateChannelInto(const PilotGeometry& geometry,
                                const dsp::ComplexVec& spectrum,
                                dsp::Workspace& ws) {
  if (geometry.count() < 2) {
    throw std::invalid_argument("EstimateChannel: need >= 2 pilots");
  }
  if (!geometry.uniform()) {
    throw std::invalid_argument("EstimateChannel: pilots not equally spaced");
  }
  const std::size_t m = geometry.count();
  // Raw estimates at pilot bins: H(p) = z(p) / pilot value (unit power).
  dsp::ComplexVec& h_pilots = ws.ComplexBuf(dsp::CSlot::kEqPilots, m);
  for (std::size_t i = 0; i < m; ++i) {
    h_pilots[i] = spectrum[geometry.pilot(i)] / geometry.pilot_value(i);
  }
  // Same bulk-delay derotation as EstimateChannel (see the free function
  // for the rationale); only the storage differs.
  dsp::Complex slope_acc(0.0, 0.0);
  for (std::size_t i = 1; i < m; ++i) {
    slope_acc += h_pilots[i] * std::conj(h_pilots[i - 1]);
  }
  const double slope = std::arg(slope_acc);  // radians per pilot spacing
  dsp::ComplexVec& derotated = ws.ComplexBuf(dsp::CSlot::kEqDerot, m);
  for (std::size_t i = 0; i < m; ++i) {
    derotated[i] =
        h_pilots[i] * std::polar(1.0, -slope * static_cast<double>(i));
  }
  dsp::ComplexVec& dense = dsp::FftInterpolateInto(
      derotated, geometry.dense_len(), ws, geometry.fwd_plan(),
      geometry.inv_plan());
  const double spacing = static_cast<double>(geometry.spacing());
  for (std::size_t j = 0; j < dense.size(); ++j) {
    dense[j] *= std::polar(1.0, slope * static_cast<double>(j) / spacing);
  }
  return ChannelView{geometry.first_bin(), {dense.data(), dense.size()}};
}

// lint: hot-path
std::span<const dsp::Complex> EqualizeInto(const ChannelView& estimate,
                                           const dsp::ComplexVec& spectrum,
                                           std::span<const std::size_t> bins,
                                           dsp::Workspace& ws) {
  constexpr double kEpsilon = 1e-9;
  dsp::ComplexVec& out = ws.ComplexBuf(dsp::CSlot::kEqualized, bins.size());
  for (std::size_t k = 0; k < bins.size(); ++k) {
    dsp::Complex h = estimate.At(bins[k]);
    if (std::abs(h) < kEpsilon) {
      h = dsp::Complex(kEpsilon, 0.0);
    }
    out[k] = spectrum[bins[k]] / h;
  }
  return {out.data(), out.size()};
}

}  // namespace wearlock::modem
