// Physical frame layout and OFDM symbol construction (Fig. 3 TX path).
//
// A WearLock frame is:
//   [chirp preamble | post-preamble guard | (CP + symbol body) x n]
// with paper defaults: 256-sample preamble, 1024-sample guard, 128-sample
// cyclic prefix, 256-point FFT at 44.1 kHz.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "audio/signal.h"
#include "dsp/fft.h"
#include "modem/subchannel.h"

namespace wearlock::dsp {
class FftPlan;    // dsp/fft_plan.h
class Workspace;  // dsp/workspace.h
}  // namespace wearlock::dsp

namespace wearlock::modem {

struct FrameSpec {
  SubchannelPlan plan = SubchannelPlan::Audible();
  std::size_t preamble_samples = 256;
  std::size_t preamble_guard_samples = 1024;
  std::size_t cyclic_prefix_samples = 128;
  /// Block-pilot symbols in the RTS probe frame; more symbols average
  /// down the pilot-SNR estimation noise that the secure-range bound
  /// keys on.
  std::size_t probe_symbols = 3;
  /// Frames are peak-normalized to this digital amplitude before hitting
  /// the speaker (avoids driver clipping).
  double peak_amplitude = 0.95;

  std::size_t fft_size() const { return plan.fft_size; }
  std::size_t symbol_samples() const {
    return cyclic_prefix_samples + plan.fft_size;
  }
  /// Samples before the first OFDM symbol.
  std::size_t header_samples() const {
    return preamble_samples + preamble_guard_samples;
  }
  /// Total frame length for n symbols.
  std::size_t FrameSamples(std::size_t n_symbols) const {
    return header_samples() + n_symbols * symbol_samples();
  }
  /// Symbol duration including guard (Tg + Ts in the rate formula).
  double SymbolSeconds() const {
    return static_cast<double>(symbol_samples()) / plan.sample_rate_hz;
  }
  /// Raw data rate R = |D| * log2(M) / (Tg + Ts) for a modulation with
  /// `bits_per_symbol` bits (rc = 1, no channel coding).
  double DataRateBps(unsigned bits_per_symbol) const {
    return static_cast<double>(plan.data.size()) *
           static_cast<double>(bits_per_symbol) / SymbolSeconds();
  }
};

/// Deterministic unit-magnitude pilot value for a bin (pseudo-random
/// phase; keeps the pilot symbol's PAPR low while staying known a-priori
/// on both sides).
dsp::Complex PilotValue(std::size_t bin);

/// The frame's chirp preamble: an LFM sweep across the plan's occupied
/// band (Doppler-tolerant, strong autocorrelation).
audio::Samples MakePreamble(const FrameSpec& spec);

/// Build one time-domain OFDM symbol (CP prepended) from bin loads.
/// Bins not present in `loads` stay zero. Hermitian symmetry is applied
/// internally so the output is real.
/// @throws std::invalid_argument if a bin is out of (0, N/2).
audio::Samples BuildSymbol(const FrameSpec& spec,
                           const std::map<std::size_t, dsp::Complex>& loads);

/// One spectral load for WriteSymbol: `value` goes to `bin` (the
/// Hermitian mirror bin is filled internally).
struct BinLoad {
  std::size_t bin = 0;
  dsp::Complex value;
};

/// Hot-path symbol builder: writes one CP-prefixed OFDM symbol - exactly
/// spec.symbol_samples() samples, bit-identical to BuildSymbol on the
/// same loads - into `out`, running the IFFT through a cached plan and
/// the workspace's scratch so steady-state calls allocate nothing.
/// `fixed` carries precomputed loads (pilots); `data_bins[i]` carries
/// `data_values[i]`. All bins must be distinct.
/// @throws std::invalid_argument on a bin out of (0, N/2), a
/// data_bins/data_values length mismatch, or a mis-sized `out`.
void WriteSymbol(const FrameSpec& spec, const dsp::FftPlan& plan,
                 std::span<const BinLoad> fixed,
                 std::span<const std::size_t> data_bins,
                 std::span<const dsp::Complex> data_values,
                 dsp::Workspace& ws, std::span<double> out);

/// FFT of one received symbol body (CP already stripped): returns the
/// complex spectrum (size N).
dsp::ComplexVec SymbolSpectrum(const FrameSpec& spec,
                               const audio::Samples& body);

/// Peak-normalize a frame to spec.peak_amplitude (no-op on silence).
void NormalizeFrame(const FrameSpec& spec, audio::Samples& frame);

}  // namespace wearlock::modem
