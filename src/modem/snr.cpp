#include "modem/snr.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fft_plan.h"
#include "dsp/spl.h"
#include "dsp/workspace.h"

namespace wearlock::modem {
namespace {

double MeanBinPower(const dsp::ComplexVec& spectrum,
                    const std::vector<std::size_t>& bins) {
  if (bins.empty()) throw std::invalid_argument("MeanBinPower: empty bin set");
  double acc = 0.0;
  for (std::size_t b : bins) acc += std::norm(spectrum[b]);
  return acc / static_cast<double>(bins.size());
}

}  // namespace

double PilotSnrLinear(const FrameSpec& spec, const dsp::ComplexVec& spectrum) {
  const double p_pilot = MeanBinPower(spectrum, spec.plan.pilots);
  const double p_null = MeanBinPower(spectrum, spec.plan.nulls);
  if (p_null <= 0.0) return p_pilot > 0.0 ? 1e12 : 0.0;
  return std::max(0.0, (p_pilot - p_null) / p_null);
}

double PilotSnrDb(const FrameSpec& spec, const dsp::ComplexVec& spectrum) {
  const double lin = PilotSnrLinear(spec, spectrum);
  if (lin <= 0.0) return -100.0;
  return 10.0 * std::log10(lin);
}

double EbN0Db(const FrameSpec& spec, Modulation m, double snr_db) {
  const double bandwidth = spec.plan.OccupiedBandwidthHz();
  const double rate = spec.DataRateBps(BitsPerSymbol(m));
  return dsp::EbN0FromSnrDb(snr_db, bandwidth, rate);
}

std::vector<double> NoisePowerPerBin(
    const FrameSpec& spec, const std::vector<dsp::ComplexVec>& spectra) {
  if (spectra.empty()) {
    throw std::invalid_argument("NoisePowerPerBin: no spectra");
  }
  std::vector<double> power(spec.fft_size(), 0.0);
  for (const dsp::ComplexVec& s : spectra) {
    if (s.size() != spec.fft_size()) {
      throw std::invalid_argument("NoisePowerPerBin: spectrum size mismatch");
    }
    for (std::size_t k = 0; k < s.size(); ++k) power[k] += std::norm(s[k]);
  }
  for (double& p : power) p /= static_cast<double>(spectra.size());
  return power;
}

std::vector<double> NoisePowerFromAmbient(const FrameSpec& spec,
                                          std::span<const double> ambient) {
  const std::size_t n = spec.fft_size();
  if (ambient.size() < n) {
    throw std::invalid_argument("NoisePowerFromAmbient: recording shorter than FFT");
  }
  // Accumulate |X(k)|^2 window by window through one reused spectrum
  // buffer; summation order matches NoisePowerPerBin over the same
  // windows, so the result is bit-identical to the old materialize-
  // everything path.
  const auto plan = dsp::PlanCache::Shared().Get(n);
  dsp::Workspace& ws = dsp::Workspace::PerThread();
  std::vector<double> power(n, 0.0);
  std::size_t windows = 0;
  for (std::size_t i = 0; i + n <= ambient.size(); i += n) {
    dsp::ComplexVec& spectrum = ws.ComplexBuf(dsp::CSlot::kNoiseSpectrum, n);
    for (std::size_t j = 0; j < n; ++j) {
      spectrum[j] = dsp::Complex(ambient[i + j], 0.0);
    }
    plan->Forward(spectrum.data());
    for (std::size_t k = 0; k < n; ++k) power[k] += std::norm(spectrum[k]);
    ++windows;
  }
  for (double& p : power) p /= static_cast<double>(windows);
  return power;
}

}  // namespace wearlock::modem
