// Silence gating and preamble detection (paper §III-4).
//
// An energy detector first skips sections whose SPL stays below the
// predefined noise gate; only then does the (more expensive) normalized
// cross-correlator search for the chirp preamble and threshold its score
// (the paper aborts below 0.05).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "audio/signal.h"
#include "modem/frame.h"

namespace wearlock::modem {

struct DetectorConfig {
  /// Normalized correlation score below which no preamble is declared.
  double score_threshold = 0.05;
  /// Energy gate: SPL (dB) above the measured noise floor that marks
  /// "signal present".
  double energy_gate_db = 6.0;
  /// Window for the energy detector (samples).
  std::size_t energy_window = 256;
};

struct Detection {
  std::size_t preamble_start = 0;  ///< sample index of the chirp start
  double score = 0.0;              ///< normalized correlation peak
  std::size_t search_begin = 0;    ///< where the energy gate opened
};

class PreambleDetector {
 public:
  PreambleDetector(FrameSpec spec, DetectorConfig config = {});

  /// Find the preamble in a recording. Returns nullopt if the energy
  /// gate never opens or the correlation peak is under threshold.
  /// Runs entirely on this thread's dsp::Workspace - no region copies,
  /// no per-call score vectors.
  std::optional<Detection> Detect(std::span<const double> recording) const;

  /// Raw normalized correlation scores against the preamble template
  /// (exposed for the NLOS delay-profile analysis).
  std::vector<double> Scores(std::span<const double> recording) const;

  /// First sample index whose surrounding window exceeds the noise floor
  /// by the energy gate, or nullopt if the recording stays silent.
  /// The noise floor is estimated from the quietest decile of windows.
  std::optional<std::size_t> FindSignalOnset(
      std::span<const double> recording) const;

  const DetectorConfig& config() const { return config_; }

 private:
  FrameSpec spec_;
  DetectorConfig config_;
  audio::Samples preamble_;
};

}  // namespace wearlock::modem
