// Fine time-domain synchronization using the cyclic prefix (paper Eq. 2).
//
// Coarse sync comes from the preamble correlation peak; residual offset
// (fractional propagation delay, speaker group delay) is recovered per
// symbol by sliding a +/-tau window and finding where the CP best matches
// the symbol tail it was copied from.
#pragma once

#include <cstddef>
#include <span>

#include "modem/frame.h"

namespace wearlock::modem {

struct FineSyncResult {
  long offset = 0;     ///< best tf in [-tau, tau]
  double metric = 0.0; ///< normalized CP correlation at the best offset
};

/// Search tf in [-search_range, +search_range] around `cp_start` (the
/// nominal first sample of the cyclic prefix) maximizing the normalized
/// correlation between the CP window and the window one FFT-size later.
/// Out-of-bounds offsets are skipped; if nothing is in bounds, offset 0 /
/// metric 0 is returned.
FineSyncResult FineSync(std::span<const double> recording, std::size_t cp_start,
                        const FrameSpec& spec, long search_range);

/// Joint fine sync: the timing offset is common to every symbol of a
/// frame (it is a property of the propagation path, not of the symbol),
/// so summing the CP metric across all `n_symbols` before picking the
/// argmax averages out per-symbol noise. This also disambiguates probe
/// frames whose repeated identical symbols make the single-symbol metric
/// flat: the first and last symbols border silence and anchor the true
/// offset.
FineSyncResult FineSyncJoint(std::span<const double> recording,
                             std::size_t symbols_start, std::size_t n_symbols,
                             const FrameSpec& spec, long search_range);

}  // namespace wearlock::modem
