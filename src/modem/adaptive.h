// Adaptive modulation (paper §III-7).
//
// Unlike classic rate-maximizing adaptation, WearLock picks the mode that
// keeps BER under a target MaxBER at the *intended* receiver while the
// natural propagation loss pushes any farther eavesdropper past that BER.
// Higher-order modes are preferred when SNR allows: packets get shorter
// and the secure radius shrinks.
#pragma once

#include <optional>
#include <vector>

#include "modem/constellation.h"
#include "modem/frame.h"

namespace wearlock::modem {

/// The three transmission modes WearLock ships (16QAM was found unusable
/// on real audio hardware; BASK/BPSK are kept for benchmarks only).
const std::vector<Modulation>& WearlockModes();

/// Minimum Eb/N0 (dB) at which `m` theoretically meets `max_ber`.
/// Numerically inverts TheoreticalBer (monotone in Eb/N0).
/// @throws std::invalid_argument if max_ber is outside (0, 0.5).
double RequiredEbN0Db(Modulation m, double max_ber);

/// Minimum Eb/N0 (dB) at which `m` meets `max_ber` on the *measured*
/// channel - the direct analogue of reading thresholds off Fig. 5.
/// Calibrated from bench/fig5_ber_ebn0 on the simulated hardware (which,
/// like the paper's, has error floors: 8PSK bottoms out near BER 0.04 and
/// 16QAM is unusable for tight targets). Returns +infinity when the mode
/// cannot reach max_ber at any SNR.
double MeasuredRequiredEbN0Db(Modulation m, double max_ber);

/// The lowest BER the mode achieves on the measured channel (its error
/// floor; ~0 for the binary/quaternary schemes).
double MeasuredBerFloor(Modulation m);

struct AdaptiveConfig {
  /// Target BER bound (the MaxBER line of Fig. 5).
  double max_ber = 0.1;
  /// Headroom added to the measured requirement (probing noise, channel
  /// drift between RTS and data phases).
  double margin_db = 2.0;
  /// Candidate modes, preferred first. Defaults to {8PSK, QPSK, QASK}.
  std::vector<Modulation> modes{Modulation::k8Psk, Modulation::kQpsk,
                                Modulation::kQask};
  /// Use the Fig. 5-calibrated table (default); false falls back to the
  /// textbook AWGN requirement (useful for ablation).
  bool use_measured_table = true;
};

/// Pick the highest-order mode whose required Eb/N0 (plus margin) fits
/// the measured value; nullopt if even the most robust candidate does not
/// fit (caller aborts or re-probes at higher volume).
std::optional<Modulation> SelectMode(double measured_ebn0_db,
                                     const AdaptiveConfig& config = {});

/// Like SelectMode, but converts the measured carrier SNR into each
/// candidate's own Eb/N0 first (the data rate R differs per mode, so the
/// same SNR buys different Eb/N0). This is the call sites' entry point.
std::optional<Modulation> SelectModeFromSnr(const FrameSpec& spec,
                                            double snr_db,
                                            const AdaptiveConfig& config = {});

/// Probing transmit SPL: loud enough that a receiver anywhere within
/// `range_m` still clears `snr_min_db` over the ambient noise
/// (paper: SPLtx - 20 log10(range/d0) - SPLnoise > SNRmin).
double ProbeTxSpl(double spl_noise_db, double snr_min_db, double range_m,
                  double reference_distance_m);

}  // namespace wearlock::modem
