#include "modem/adaptive.h"

#include <cmath>
#include <limits>
#include <vector>
#include <stdexcept>

#include "dsp/spl.h"
#include "modem/snr.h"

namespace wearlock::modem {

const std::vector<Modulation>& WearlockModes() {
  static const std::vector<Modulation> kModes = {
      Modulation::kQask, Modulation::kQpsk, Modulation::k8Psk};
  return kModes;
}

double RequiredEbN0Db(Modulation m, double max_ber) {
  if (max_ber <= 0.0 || max_ber >= 0.5) {
    throw std::invalid_argument("RequiredEbN0Db: max_ber must be in (0, 0.5)");
  }
  // TheoreticalBer decreases monotonically with Eb/N0; bisect.
  double lo = -20.0, hi = 80.0;
  if (TheoreticalBer(m, lo) < max_ber) return lo;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (TheoreticalBer(m, mid) > max_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

namespace {

struct CurvePoint {
  double ebn0_db;
  double ber;
};

// Measured BER-vs-Eb/N0 curves from bench/fig5_ber_ebn0 (white-noise
// channel, 0.3 m, default hardware models); regenerate that bench and
// refresh these rows whenever the receiver or the hardware models
// change. Ordered by ascending Eb/N0.
// These play the role of the paper's Fig. 5 scatter data: the adaptive
// controller reads mode thresholds off them instead of trusting textbook
// AWGN formulas, because the simulated hardware (like the real one) has
// phase-response floors.
const std::vector<CurvePoint>& MeasuredCurve(Modulation m) {
  static const std::vector<CurvePoint> kBask = {
      {2.6, 0.274}, {9.1, 0.161}, {12.5, 0.070},
      {15.2, 0.020}, {18.1, 0.0006}, {21.4, 0.0004}};
  static const std::vector<CurvePoint> kBpsk = {
      {2.3, 0.165}, {9.2, 0.055}, {12.7, 0.007},
      {15.5, 0.0015}, {18.5, 0.0005}, {21.8, 0.0002}};
  static const std::vector<CurvePoint> kQask = {
      {5.2, 0.316}, {9.2, 0.260}, {12.4, 0.165}, {15.1, 0.103},
      {18.7, 0.045}, {21.2, 0.010}, {23.6, 0.0048}, {24.5, 0.0006}};
  static const std::vector<CurvePoint> kQpsk = {
      {5.3, 0.165}, {9.5, 0.077}, {12.8, 0.030},
      {15.4, 0.008}, {19.1, 0.0030}, {22.2, 0.0005}};
  static const std::vector<CurvePoint> k8Psk = {
      {4.7, 0.250}, {7.8, 0.165}, {10.9, 0.122}, {13.6, 0.080},
      {17.5, 0.060}, {20.4, 0.050}, {24.9, 0.043}};
  static const std::vector<CurvePoint> k16Qam = {
      {3.1, 0.268}, {6.3, 0.212}, {9.5, 0.144}, {12.2, 0.094},
      {15.9, 0.062}, {19.1, 0.047}, {24.6, 0.037}};
  switch (m) {
    case Modulation::kBask: return kBask;
    case Modulation::kBpsk: return kBpsk;
    case Modulation::kQask: return kQask;
    case Modulation::kQpsk: return kQpsk;
    case Modulation::k8Psk: return k8Psk;
    case Modulation::k16Qam: return k16Qam;
  }
  throw std::invalid_argument("MeasuredCurve: unknown modulation");
}

}  // namespace

double MeasuredBerFloor(Modulation m) { return MeasuredCurve(m).back().ber; }

double MeasuredRequiredEbN0Db(Modulation m, double max_ber) {
  if (max_ber <= 0.0 || max_ber >= 0.5) {
    throw std::invalid_argument("MeasuredRequiredEbN0Db: max_ber in (0, 0.5)");
  }
  const auto& curve = MeasuredCurve(m);
  // Below the mode's floor the target is unreachable at any SNR.
  if (max_ber < curve.back().ber) {
    return std::numeric_limits<double>::infinity();
  }
  // Above the first point's BER, any positive SNR works; report the first
  // measured point as a conservative minimum.
  if (max_ber >= curve.front().ber) return curve.front().ebn0_db;
  // Interpolate linearly in (log10(ber), ebn0).
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (max_ber >= curve[i].ber) {
      const double y0 = std::log10(curve[i - 1].ber);
      const double y1 = std::log10(std::max(curve[i].ber, 1e-6));
      const double t = (std::log10(max_ber) - y0) / (y1 - y0);
      return curve[i - 1].ebn0_db +
             t * (curve[i].ebn0_db - curve[i - 1].ebn0_db);
    }
  }
  return curve.back().ebn0_db;
}

std::optional<Modulation> SelectMode(double measured_ebn0_db,
                                     const AdaptiveConfig& config) {
  for (Modulation m : config.modes) {
    const double required = config.use_measured_table
                                ? MeasuredRequiredEbN0Db(m, config.max_ber)
                                : RequiredEbN0Db(m, config.max_ber);
    if (measured_ebn0_db >= required + config.margin_db) {
      return m;
    }
  }
  return std::nullopt;
}

std::optional<Modulation> SelectModeFromSnr(const FrameSpec& spec,
                                            double snr_db,
                                            const AdaptiveConfig& config) {
  for (Modulation m : config.modes) {
    const double ebn0 = EbN0Db(spec, m, snr_db);
    const double required = config.use_measured_table
                                ? MeasuredRequiredEbN0Db(m, config.max_ber)
                                : RequiredEbN0Db(m, config.max_ber);
    if (ebn0 >= required + config.margin_db) return m;
  }
  return std::nullopt;
}

double ProbeTxSpl(double spl_noise_db, double snr_min_db, double range_m,
                  double reference_distance_m) {
  const double loss =
      dsp::SpreadingLossDb(range_m, reference_distance_m);
  return spl_noise_db + snr_min_db + loss;
}

}  // namespace wearlock::modem
