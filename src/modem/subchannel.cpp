#include "modem/subchannel.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace wearlock::modem {
namespace {

SubchannelPlan MakeDefault(std::size_t shift) {
  SubchannelPlan plan;
  plan.data = {16, 17, 18, 20, 21, 22, 24, 25, 26, 28, 29, 30};
  plan.pilots = {7, 11, 15, 19, 23, 27, 31, 35};
  for (std::size_t& b : plan.data) b += shift;
  for (std::size_t& b : plan.pilots) b += shift;
  // Null set: every in-band bin (pilot span) not used for data or pilots.
  const std::size_t lo = plan.pilots.front();
  const std::size_t hi = plan.pilots.back();
  for (std::size_t b = lo; b <= hi; ++b) {
    if (!plan.IsData(b) && !plan.IsPilot(b)) plan.nulls.push_back(b);
  }
  plan.Validate();
  return plan;
}

}  // namespace

SubchannelPlan SubchannelPlan::Audible() { return MakeDefault(0); }

// +80 bins * 172.3 Hz = +13.8 kHz: pilots land on 15.0-19.8 kHz.
SubchannelPlan SubchannelPlan::NearUltrasound() { return MakeDefault(80); }

double SubchannelPlan::OccupiedBandwidthHz() const {
  std::size_t lo = fft_size, hi = 0;
  for (std::size_t b : data) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  for (std::size_t b : pilots) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  if (hi < lo) return 0.0;
  return static_cast<double>(hi - lo + 1) * bin_hz();
}

double SubchannelPlan::DataBandwidthHz() const {
  return static_cast<double>(data.size()) * bin_hz();
}

void SubchannelPlan::Validate() const {
  if (fft_size < 4) throw std::invalid_argument("SubchannelPlan: fft_size too small");
  if (data.empty()) throw std::invalid_argument("SubchannelPlan: no data bins");
  if (pilots.empty()) throw std::invalid_argument("SubchannelPlan: no pilot bins");
  std::set<std::size_t> seen;
  auto check = [&](const std::vector<std::size_t>& bins, const char* what) {
    for (std::size_t b : bins) {
      if (b == 0 || b >= fft_size / 2) {
        throw std::invalid_argument(std::string("SubchannelPlan: ") + what +
                                    " bin out of (0, N/2)");
      }
      if (!seen.insert(b).second) {
        throw std::invalid_argument(std::string("SubchannelPlan: ") + what +
                                    " bin reused across sets");
      }
    }
  };
  check(data, "data");
  check(pilots, "pilot");
  check(nulls, "null");
}

bool SubchannelPlan::IsData(std::size_t bin) const {
  return std::find(data.begin(), data.end(), bin) != data.end();
}
bool SubchannelPlan::IsPilot(std::size_t bin) const {
  return std::find(pilots.begin(), pilots.end(), bin) != pilots.end();
}
bool SubchannelPlan::IsNull(std::size_t bin) const {
  return std::find(nulls.begin(), nulls.end(), bin) != nulls.end();
}

SubchannelPlan SelectSubchannels(const SubchannelPlan& plan,
                                 const std::vector<double>& noise_power,
                                 double quantize_db) {
  plan.Validate();
  if (noise_power.size() < plan.fft_size / 2) {
    throw std::invalid_argument("SelectSubchannels: noise vector too short");
  }
  if (quantize_db <= 0.0) {
    throw std::invalid_argument("SelectSubchannels: quantize_db must be > 0");
  }
  // Candidate pool: the whole in-band span minus pilots. Keeping the
  // span bounded by the pilot set means every chosen bin stays inside
  // pilot interpolation coverage.
  const std::size_t lo = plan.pilots.front();
  const std::size_t hi = plan.pilots.back();
  struct Candidate {
    std::size_t bin;
    long level;  // quantized noise (dB / quantize_db)
  };
  std::vector<Candidate> pool;
  for (std::size_t b = lo; b <= hi; ++b) {
    if (plan.IsPilot(b)) continue;
    const double p = std::max(noise_power[b], 1e-30);
    const long level = std::lround(10.0 * std::log10(p) / quantize_db);
    pool.push_back({b, level});
  }
  if (pool.size() < plan.data.size()) {
    throw std::invalid_argument("SelectSubchannels: pool smaller than |D|");
  }
  std::stable_sort(pool.begin(), pool.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.level != b.level) return a.level < b.level;
                     return a.bin < b.bin;  // prefer low frequency on ties
                   });
  SubchannelPlan out = plan;
  out.data.clear();
  out.nulls.clear();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (i < plan.data.size()) {
      out.data.push_back(pool[i].bin);
    } else {
      out.nulls.push_back(pool[i].bin);
    }
  }
  std::sort(out.data.begin(), out.data.end());
  std::sort(out.nulls.begin(), out.nulls.end());
  out.Validate();
  return out;
}

}  // namespace wearlock::modem
