#include "modem/demodulator.h"

#include <algorithm>
#include <cmath>

#include "dsp/spl.h"
#include "modem/snr.h"
#include "modem/sync.h"
#include "obs/instrument.h"

#if WEARLOCK_OBS_ENABLED
namespace {

// Pilot SNR observations span roughly -10..50 dB.
std::vector<double> SnrBoundsDb() {
  return wearlock::obs::Histogram::LinearBounds(-10.0, 2.5, 24);
}

}  // namespace
#endif

namespace wearlock::modem {

Demodulator::Demodulator(FrameSpec spec, DemodConfig config)
    : spec_(spec), config_(config), detector_(spec, config.detector) {
  spec_.plan.Validate();
}

long Demodulator::FrameOffset(const audio::Samples& recording,
                              std::size_t symbols_start,
                              std::size_t n_symbols) const {
  WL_SPAN_V(span, "modem.sync.fine");
  const FineSyncResult sync = FineSyncJoint(
      recording, symbols_start, n_symbols, spec_, config_.fine_sync_range);
  WL_SPAN_ATTR(span, "metric", sync.metric);
  if (sync.metric < config_.min_sync_metric) {
    // Unreliable metric: fall back to a conservative back-off into the CP.
    WL_COUNT("modem.sync.fine_fallback");
    return -static_cast<long>(spec_.cyclic_prefix_samples / 8);
  }
  WL_SPAN_ATTR(span, "offset", static_cast<double>(sync.offset));
  return sync.offset;
}

std::optional<dsp::ComplexVec> Demodulator::SymbolSpectrumAt(
    const audio::Samples& recording, std::size_t symbols_start,
    std::size_t index, long offset) const {
  const std::size_t cp_start = symbols_start + index * spec_.symbol_samples();
  const long body_start_signed = static_cast<long>(cp_start) + offset +
                                 static_cast<long>(spec_.cyclic_prefix_samples);
  if (body_start_signed < 0) return std::nullopt;
  const std::size_t body_start = static_cast<std::size_t>(body_start_signed);
  if (body_start + spec_.fft_size() > recording.size()) return std::nullopt;
  audio::Samples body(recording.begin() + static_cast<long>(body_start),
                      recording.begin() +
                          static_cast<long>(body_start + spec_.fft_size()));
  return SymbolSpectrum(spec_, body);
}

std::optional<DemodResult> Demodulator::Demodulate(
    const audio::Samples& recording, Modulation m, std::size_t n_bits) const {
  WL_SPAN_V(span, "modem.demod");
  WL_TIMED_SERIES("modem.demod.host_ms");
  WL_COUNT("modem.demod.calls");
  const auto detection = detector_.Detect(recording);
  if (!detection) {
    WL_COUNT("modem.demod.no_preamble");
    return std::nullopt;
  }

  const std::size_t bits_per_ofdm =
      spec_.plan.data.size() * BitsPerSymbol(m);
  const std::size_t n_ofdm = (n_bits + bits_per_ofdm - 1) / bits_per_ofdm;
  const std::size_t symbols_start =
      detection->preamble_start + spec_.header_samples();

  std::vector<std::size_t> data_bins = spec_.plan.data;
  std::sort(data_bins.begin(), data_bins.end());

  DemodResult result;
  result.preamble_score = detection->score;
  result.preamble_start = detection->preamble_start;
  double snr_acc = 0.0;
  const long offset = FrameOffset(recording, symbols_start, n_ofdm);
  WL_SPAN_V(eq_span, "modem.equalize_demap");
  WL_SPAN_ATTR(eq_span, "n_symbols", static_cast<double>(n_ofdm));
  for (std::size_t s = 0; s < n_ofdm; ++s) {
    const auto spectrum = SymbolSpectrumAt(recording, symbols_start, s, offset);
    if (!spectrum) {
      WL_COUNT("modem.demod.truncated");
      return std::nullopt;  // frame truncated
    }
    result.fine_offsets.push_back(offset);
    snr_acc += PilotSnrDb(spec_, *spectrum);

    const ChannelEstimate channel = EstimateChannel(spec_, *spectrum);
    const std::vector<dsp::Complex> equalized =
        Equalize(channel, *spectrum, data_bins);
    const std::vector<std::uint8_t> bits = DemapSymbols(m, equalized);
    result.bits.insert(result.bits.end(), bits.begin(), bits.end());
  }
  result.mean_pilot_snr_db =
      n_ofdm > 0 ? snr_acc / static_cast<double>(n_ofdm) : 0.0;
  if (result.bits.size() < n_bits) return std::nullopt;
  result.bits.resize(n_bits);
  WL_SPAN_ATTR(span, "pilot_snr_db", result.mean_pilot_snr_db);
  WL_HIST_BOUNDS("modem.demod.pilot_snr_db", SnrBoundsDb(),
                 result.mean_pilot_snr_db);
  return result;
}

std::optional<std::vector<double>> Demodulator::DemodulateSoft(
    const audio::Samples& recording, Modulation m, std::size_t n_bits) const {
  WL_SPAN_V(span, "modem.demod_soft");
  WL_TIMED_SERIES("modem.demod_soft.host_ms");
  WL_COUNT("modem.demod_soft.calls");
  const auto detection = detector_.Detect(recording);
  if (!detection) return std::nullopt;
  const std::size_t bits_per_ofdm = spec_.plan.data.size() * BitsPerSymbol(m);
  const std::size_t n_ofdm = (n_bits + bits_per_ofdm - 1) / bits_per_ofdm;
  const std::size_t symbols_start =
      detection->preamble_start + spec_.header_samples();
  std::vector<std::size_t> data_bins = spec_.plan.data;
  std::sort(data_bins.begin(), data_bins.end());

  std::vector<double> llrs;
  const long offset = FrameOffset(recording, symbols_start, n_ofdm);
  for (std::size_t s = 0; s < n_ofdm; ++s) {
    const auto spectrum = SymbolSpectrumAt(recording, symbols_start, s, offset);
    if (!spectrum) return std::nullopt;
    const ChannelEstimate channel = EstimateChannel(spec_, *spectrum);
    const std::vector<dsp::Complex> equalized =
        Equalize(channel, *spectrum, data_bins);
    const std::vector<double> chunk = DemapSymbolsSoft(m, equalized);
    llrs.insert(llrs.end(), chunk.begin(), chunk.end());
  }
  if (llrs.size() < n_bits) return std::nullopt;
  llrs.resize(n_bits);
#if WEARLOCK_OBS_ENABLED
  // LLR confidence profile: mean |LLR| says how separable the
  // constellation was after equalization.
  double abs_acc = 0.0;
  for (const double llr : llrs) abs_acc += std::fabs(llr);
  const double mean_abs = abs_acc / static_cast<double>(llrs.size());
  WL_SPAN_ATTR(span, "mean_abs_llr", mean_abs);
  WL_HIST_BOUNDS("modem.demod_soft.mean_abs_llr",
                 ::wearlock::obs::Histogram::ExponentialBounds(0.01, 2.0, 16),
                 mean_abs);
#endif
  return llrs;
}

std::optional<ProbeAnalysis> Demodulator::AnalyzeProbe(
    const audio::Samples& recording) const {
  WL_SPAN_V(span, "modem.probe_analysis");
  WL_TIMED_SERIES("modem.probe_analysis.host_ms");
  WL_COUNT("modem.probe_analysis.calls");
  const auto detection = detector_.Detect(recording);
  if (!detection) {
    WL_COUNT("modem.probe_analysis.no_preamble");
    return std::nullopt;
  }

  ProbeAnalysis probe;
  probe.preamble_score = detection->score;
  probe.preamble_start = detection->preamble_start;

  // Delay profile from the full correlation trace around the peak.
  {
    WL_SPAN("modem.probe.delay_profile");
    const std::vector<double> scores = detector_.Scores(recording);
    if (!scores.empty()) {
      // The detection ran on a trimmed region; recover the peak index in
      // the full-trace coordinates (they match because Scores uses lag 0
      // at recording[0] and preamble_start is absolute).
      const std::size_t peak =
          std::min(detection->preamble_start, scores.size() - 1);
      probe.delay_profile = ComputeDelayProfile(
          scores, peak, spec_.plan.sample_rate_hz);
      probe.nlos = IsNlos(probe.delay_profile, config_.nlos);
    }
  }

  // Ambient noise characterization from the pre-preamble segment.
  {
    WL_SPAN_V(noise_span, "modem.probe.noise_rank");
    if (detection->preamble_start >= spec_.fft_size()) {
      audio::Samples ambient(
          recording.begin(),
          recording.begin() + static_cast<long>(detection->preamble_start));
      probe.noise_power = NoisePowerFromAmbient(spec_, ambient);
      probe.ambient_spl_db = dsp::SplOf(ambient);
    } else {
      probe.noise_power.assign(spec_.fft_size(), 0.0);
      probe.ambient_spl_db = -100.0;
    }
    WL_SPAN_ATTR(noise_span, "ambient_spl_db", probe.ambient_spl_db);
  }

  // Pilot SNR and channel estimate averaged over the block pilot
  // symbols (the first must be present; later ones may be truncated).
  WL_SPAN_V(pilot_span, "modem.probe.channel_estimate");
  const std::size_t symbols_start =
      detection->preamble_start + spec_.header_samples();
  double snr_acc = 0.0;
  std::size_t snr_n = 0;
  const std::size_t probe_symbols = std::max<std::size_t>(spec_.probe_symbols, 1);
  const long offset = FrameOffset(recording, symbols_start, probe_symbols);
  std::vector<ChannelEstimate> estimates;
  for (std::size_t s = 0; s < probe_symbols; ++s) {
    const auto spectrum = SymbolSpectrumAt(recording, symbols_start, s, offset);
    if (!spectrum) break;
    snr_acc += PilotSnrDb(spec_, *spectrum);
    ++snr_n;
    estimates.push_back(EstimateChannel(spec_, *spectrum));
  }
  if (snr_n == 0) return std::nullopt;
  probe.pilot_snr_db = snr_acc / static_cast<double>(snr_n);
  probe.channel = ChannelEstimate::Average(estimates);
  WL_SPAN_ATTR(span, "pilot_snr_db", probe.pilot_snr_db);
  WL_SPAN_ATTR(span, "nlos", probe.nlos ? 1.0 : 0.0);
  WL_HIST_BOUNDS("modem.probe.pilot_snr_db", SnrBoundsDb(),
                 probe.pilot_snr_db);
  return probe;
}

}  // namespace wearlock::modem
