#include "modem/demodulator.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft_plan.h"
#include "dsp/spl.h"
#include "dsp/workspace.h"
#include "modem/snr.h"
#include "modem/sync.h"
#include "obs/instrument.h"

#if WEARLOCK_OBS_ENABLED
namespace {

// Pilot SNR observations span roughly -10..50 dB.
std::vector<double> SnrBoundsDb() {
  return wearlock::obs::Histogram::LinearBounds(-10.0, 2.5, 24);
}

}  // namespace
#endif

namespace wearlock::modem {

Demodulator::Demodulator(FrameSpec spec, DemodConfig config)
    : spec_(spec),
      config_(config),
      detector_(spec, config.detector),
      geometry_(spec) {
  spec_.plan.Validate();
  data_bins_ = spec_.plan.data;
  std::sort(data_bins_.begin(), data_bins_.end());
  if (dsp::IsPowerOfTwo(spec_.fft_size())) {
    fft_plan_ = dsp::PlanCache::Shared().Get(spec_.fft_size());
  }
}

long Demodulator::FrameOffset(std::span<const double> recording,
                              std::size_t symbols_start,
                              std::size_t n_symbols) const {
  WL_SPAN_V(span, "modem.sync.fine");
  const FineSyncResult sync = FineSyncJoint(
      recording, symbols_start, n_symbols, spec_, config_.fine_sync_range);
  WL_SPAN_ATTR(span, "metric", sync.metric);
  if (sync.metric < config_.min_sync_metric) {
    // Unreliable metric: fall back to a conservative back-off into the CP.
    WL_COUNT("modem.sync.fine_fallback");
    return -static_cast<long>(spec_.cyclic_prefix_samples / 8);
  }
  WL_SPAN_ATTR(span, "offset", static_cast<double>(sync.offset));
  return sync.offset;
}

// lint: hot-path
const dsp::ComplexVec* Demodulator::SymbolSpectrumInto(
    std::span<const double> recording, std::size_t symbols_start,
    std::size_t index, long offset, dsp::Workspace& ws) const {
  const std::size_t cp_start = symbols_start + index * spec_.symbol_samples();
  const long body_start_signed = static_cast<long>(cp_start) + offset +
                                 static_cast<long>(spec_.cyclic_prefix_samples);
  if (body_start_signed < 0) return nullptr;
  const std::size_t body_start = static_cast<std::size_t>(body_start_signed);
  const std::size_t n = spec_.fft_size();
  if (body_start + n > recording.size()) return nullptr;
  dsp::ComplexVec& spectrum = ws.ComplexBuf(dsp::CSlot::kSymbolSpectrum, n);
  if (fft_plan_ != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      spectrum[i] = dsp::Complex(recording[body_start + i], 0.0);
    }
    fft_plan_->Forward(spectrum.data());
  } else {
    // Cold any-size fallback (a plan requires a power-of-two size).
    const audio::Samples body(recording.begin() + static_cast<long>(body_start),
                              recording.begin() +
                                  static_cast<long>(body_start + n));
    spectrum = SymbolSpectrum(spec_, body);
  }
  return &spectrum;
}

std::optional<DemodResult> Demodulator::Demodulate(
    std::span<const double> recording, Modulation m, std::size_t n_bits) const {
  WL_SPAN_V(span, "modem.demod");
  WL_TIMED_SERIES("modem.demod.host_ms");
  WL_COUNT("modem.demod.calls");
  const auto detection = detector_.Detect(recording);
  if (!detection) {
    WL_COUNT("modem.demod.no_preamble");
    return std::nullopt;
  }

  const std::size_t bits_per_ofdm =
      spec_.plan.data.size() * BitsPerSymbol(m);
  const std::size_t n_ofdm = (n_bits + bits_per_ofdm - 1) / bits_per_ofdm;
  const std::size_t symbols_start =
      detection->preamble_start + spec_.header_samples();

  DemodResult result;
  result.preamble_score = detection->score;
  result.preamble_start = detection->preamble_start;
  result.bits.reserve(n_ofdm * bits_per_ofdm);
  double snr_acc = 0.0;
  const long offset = FrameOffset(recording, symbols_start, n_ofdm);
  // The fine-sync offset is common to the frame (see FrameOffset).
  result.fine_offsets.assign(n_ofdm, offset);
  dsp::Workspace& ws = dsp::Workspace::PerThread();
  WL_SPAN_V(eq_span, "modem.equalize_demap");
  WL_SPAN_ATTR(eq_span, "n_symbols", static_cast<double>(n_ofdm));
  for (std::size_t s = 0; s < n_ofdm; ++s) {
    const dsp::ComplexVec* spectrum =
        SymbolSpectrumInto(recording, symbols_start, s, offset, ws);
    if (spectrum == nullptr) {
      WL_COUNT("modem.demod.truncated");
      return std::nullopt;  // frame truncated
    }
    snr_acc += PilotSnrDb(spec_, *spectrum);

    const ChannelView channel = EstimateChannelInto(geometry_, *spectrum, ws);
    const std::span<const dsp::Complex> equalized =
        EqualizeInto(channel, *spectrum, data_bins_, ws);
    DemapSymbolsInto(m, equalized, result.bits);
  }
  result.mean_pilot_snr_db =
      n_ofdm > 0 ? snr_acc / static_cast<double>(n_ofdm) : 0.0;
  if (result.bits.size() < n_bits) return std::nullopt;
  result.bits.resize(n_bits);
  WL_SPAN_ATTR(span, "pilot_snr_db", result.mean_pilot_snr_db);
  WL_HIST_BOUNDS("modem.demod.pilot_snr_db", SnrBoundsDb(),
                 result.mean_pilot_snr_db);
  return result;
}

std::optional<std::vector<double>> Demodulator::DemodulateSoft(
    std::span<const double> recording, Modulation m, std::size_t n_bits) const {
  WL_SPAN_V(span, "modem.demod_soft");
  WL_TIMED_SERIES("modem.demod_soft.host_ms");
  WL_COUNT("modem.demod_soft.calls");
  const auto detection = detector_.Detect(recording);
  if (!detection) return std::nullopt;
  const std::size_t bits_per_ofdm = spec_.plan.data.size() * BitsPerSymbol(m);
  const std::size_t n_ofdm = (n_bits + bits_per_ofdm - 1) / bits_per_ofdm;
  const std::size_t symbols_start =
      detection->preamble_start + spec_.header_samples();

  std::vector<double> llrs;
  llrs.reserve(n_ofdm * bits_per_ofdm);
  const long offset = FrameOffset(recording, symbols_start, n_ofdm);
  dsp::Workspace& ws = dsp::Workspace::PerThread();
  for (std::size_t s = 0; s < n_ofdm; ++s) {
    const dsp::ComplexVec* spectrum =
        SymbolSpectrumInto(recording, symbols_start, s, offset, ws);
    if (spectrum == nullptr) return std::nullopt;
    const ChannelView channel = EstimateChannelInto(geometry_, *spectrum, ws);
    const std::span<const dsp::Complex> equalized =
        EqualizeInto(channel, *spectrum, data_bins_, ws);
    DemapSymbolsSoftInto(m, equalized, llrs);
  }
  if (llrs.size() < n_bits) return std::nullopt;
  llrs.resize(n_bits);
#if WEARLOCK_OBS_ENABLED
  // LLR confidence profile: mean |LLR| says how separable the
  // constellation was after equalization.
  double abs_acc = 0.0;
  for (const double llr : llrs) abs_acc += std::fabs(llr);
  const double mean_abs = abs_acc / static_cast<double>(llrs.size());
  WL_SPAN_ATTR(span, "mean_abs_llr", mean_abs);
  WL_HIST_BOUNDS("modem.demod_soft.mean_abs_llr",
                 ::wearlock::obs::Histogram::ExponentialBounds(0.01, 2.0, 16),
                 mean_abs);
#endif
  return llrs;
}

std::optional<ProbeAnalysis> Demodulator::AnalyzeProbe(
    std::span<const double> recording) const {
  WL_SPAN_V(span, "modem.probe_analysis");
  WL_TIMED_SERIES("modem.probe_analysis.host_ms");
  WL_COUNT("modem.probe_analysis.calls");
  const auto detection = detector_.Detect(recording);
  if (!detection) {
    WL_COUNT("modem.probe_analysis.no_preamble");
    return std::nullopt;
  }

  ProbeAnalysis probe;
  probe.preamble_score = detection->score;
  probe.preamble_start = detection->preamble_start;

  // Delay profile from the full correlation trace around the peak.
  {
    WL_SPAN("modem.probe.delay_profile");
    const std::vector<double> scores = detector_.Scores(recording);
    if (!scores.empty()) {
      // The detection ran on a trimmed region; recover the peak index in
      // the full-trace coordinates (they match because Scores uses lag 0
      // at recording[0] and preamble_start is absolute).
      const std::size_t peak =
          std::min(detection->preamble_start, scores.size() - 1);
      probe.delay_profile = ComputeDelayProfile(
          scores, peak, spec_.plan.sample_rate_hz);
      probe.nlos = IsNlos(probe.delay_profile, config_.nlos);
    }
  }

  // Ambient noise characterization from the pre-preamble segment.
  {
    WL_SPAN_V(noise_span, "modem.probe.noise_rank");
    if (detection->preamble_start >= spec_.fft_size()) {
      const std::span<const double> ambient =
          recording.first(detection->preamble_start);
      probe.noise_power = NoisePowerFromAmbient(spec_, ambient);
      probe.ambient_spl_db =
          dsp::SplOf(audio::Samples(ambient.begin(), ambient.end()));
    } else {
      probe.noise_power.assign(spec_.fft_size(), 0.0);
      probe.ambient_spl_db = -100.0;
    }
    WL_SPAN_ATTR(noise_span, "ambient_spl_db", probe.ambient_spl_db);
  }

  // Pilot SNR and channel estimate averaged over the block pilot
  // symbols (the first must be present; later ones may be truncated).
  WL_SPAN_V(pilot_span, "modem.probe.channel_estimate");
  const std::size_t symbols_start =
      detection->preamble_start + spec_.header_samples();
  double snr_acc = 0.0;
  std::size_t snr_n = 0;
  const std::size_t probe_symbols = std::max<std::size_t>(spec_.probe_symbols, 1);
  const long offset = FrameOffset(recording, symbols_start, probe_symbols);
  dsp::Workspace& ws = dsp::Workspace::PerThread();
  std::vector<ChannelEstimate> estimates;
  for (std::size_t s = 0; s < probe_symbols; ++s) {
    const dsp::ComplexVec* spectrum =
        SymbolSpectrumInto(recording, symbols_start, s, offset, ws);
    if (spectrum == nullptr) break;
    snr_acc += PilotSnrDb(spec_, *spectrum);
    ++snr_n;
    estimates.push_back(EstimateChannel(spec_, *spectrum));
  }
  if (snr_n == 0) return std::nullopt;
  probe.pilot_snr_db = snr_acc / static_cast<double>(snr_n);
  probe.channel = ChannelEstimate::Average(estimates);
  WL_SPAN_ATTR(span, "pilot_snr_db", probe.pilot_snr_db);
  WL_SPAN_ATTR(span, "nlos", probe.nlos ? 1.0 : 0.0);
  WL_HIST_BOUNDS("modem.probe.pilot_snr_db", SnrBoundsDb(),
                 probe.pilot_snr_db);
  return probe;
}

}  // namespace wearlock::modem
