// Constellation mapping / de-mapping for the modulation schemes the
// paper's modem supports (§III-7): BASK, QASK (4-ASK), BPSK, QPSK, 8PSK
// and 16QAM. All constellations are normalized to unit average symbol
// energy so Eb/N0 comparisons across schemes are fair.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dsp/fft.h"

namespace wearlock::modem {

using dsp::Complex;

enum class Modulation { kBask, kQask, kBpsk, kQpsk, k8Psk, k16Qam };

/// All schemes in ascending modulation order (for sweeps).
const std::vector<Modulation>& AllModulations();

std::string ToString(Modulation m);
unsigned BitsPerSymbol(Modulation m);
unsigned ModulationOrder(Modulation m);  // M = 2^bits

/// A concrete symbol alphabet with Gray-coded bit labels.
class Constellation {
 public:
  /// Shared immutable instance per scheme.
  static const Constellation& Get(Modulation m);

  Modulation modulation() const { return modulation_; }
  unsigned bits_per_symbol() const { return bits_; }
  std::size_t size() const { return points_.size(); }

  /// Complex point for a symbol index in [0, M). @throws if out of range.
  Complex Map(unsigned symbol) const;

  /// Nearest-point hard decision.
  unsigned Demap(Complex received) const;

  const std::vector<Complex>& points() const { return points_; }

 private:
  Constellation(Modulation m, std::vector<Complex> points);

  Modulation modulation_;
  unsigned bits_;
  std::vector<Complex> points_;
};

/// Pack a bit vector (values 0/1) into constellation symbols, padding the
/// tail with zero bits. Bits are consumed MSB-first per symbol.
std::vector<Complex> MapBits(Modulation m, const std::vector<std::uint8_t>& bits);

/// Inverse of MapBits; returns symbols.size() * bits_per_symbol bits.
std::vector<std::uint8_t> DemapSymbols(Modulation m,
                                       const std::vector<Complex>& symbols);

/// Appending DemapSymbols: identical bits pushed onto `out`. Hot callers
/// reserve `out` for the whole frame so per-symbol calls never
/// reallocate.
void DemapSymbolsInto(Modulation m, std::span<const Complex> symbols,
                      std::vector<std::uint8_t>& out);

/// Soft demapping: per-bit log-likelihood ratios via the max-log
/// approximation, LLR = min_{s: bit=1} |r-s|^2 - min_{s: bit=0} |r-s|^2,
/// so positive means "bit 0 more likely". Units are squared distance
/// (the common noise variance cancels in the soft decoders).
std::vector<double> DemapSymbolsSoft(Modulation m,
                                     const std::vector<Complex>& symbols);

/// Appending DemapSymbolsSoft: identical LLRs pushed onto `out`.
void DemapSymbolsSoftInto(Modulation m, std::span<const Complex> symbols,
                          std::vector<double>& out);

/// Textbook AWGN bit-error-rate approximation (Gray coding assumed) at a
/// given Eb/N0 in dB. Used for the adaptive-modulation mode table and as
/// the reference ranking in Fig. 5.
double TheoreticalBer(Modulation m, double ebn0_db);

/// Count differing bits between equal-length bit vectors.
/// @throws std::invalid_argument on length mismatch.
std::size_t CountBitErrors(const std::vector<std::uint8_t>& a,
                           const std::vector<std::uint8_t>& b);

/// Fraction of differing bits.
double BitErrorRate(const std::vector<std::uint8_t>& a,
                    const std::vector<std::uint8_t>& b);

}  // namespace wearlock::modem
