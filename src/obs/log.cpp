#include "obs/log.h"

#include <cstdio>
#include <utility>

namespace wearlock::obs {
namespace {

LogSink& SinkSlot() {
  static LogSink sink;  // default: discard
  return sink;
}

LogLevel& ThresholdSlot() {
  static LogLevel threshold = LogLevel::kInfo;
  return threshold;
}

}  // namespace

const char* ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void SetLogSink(LogSink sink) { SinkSlot() = std::move(sink); }

void SetLogThreshold(LogLevel level) { ThresholdSlot() = level; }

void Log(LogLevel level, const std::string& component,
         const std::string& message) {
  if (level < ThresholdSlot()) return;
  const LogSink& sink = SinkSlot();
  if (sink) sink(level, component, message);
}

LogSink StderrLogSink() {
  return [](LogLevel level, const std::string& component,
            const std::string& message) {
    std::fprintf(stderr, "%-5s %s: %s\n", ToString(level), component.c_str(),
                 message.c_str());
  };
}

}  // namespace wearlock::obs
