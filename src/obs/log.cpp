#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace wearlock::obs {
namespace {

// Sink installation and emission may race (the concurrency stress test
// swaps sinks while worker threads log), so the sink lives behind a
// mutex and Log() works on a copy taken under the lock - a sink being
// replaced mid-call still sees out its current record. The threshold
// is a relaxed atomic: it gates the hot path and needs no ordering
// with respect to the sink swap.
std::mutex g_log_mu;
LogSink g_sink;  // default: discard. lint: guarded-by(g_log_mu)
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

}  // namespace

const char* ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void SetLogSink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_log_mu);
  g_sink = std::move(sink);
}

void SetLogThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void Log(LogLevel level, const std::string& component,
         const std::string& message) {
  if (level < g_threshold.load(std::memory_order_relaxed)) return;
  LogSink sink;
  {
    const std::lock_guard<std::mutex> lock(g_log_mu);
    sink = g_sink;
  }
  if (sink) sink(level, component, message);
}

LogSink StderrLogSink() {
  return [](LogLevel level, const std::string& component,
            const std::string& message) {
    std::fprintf(stderr, "%-5s %s: %s\n", ToString(level), component.c_str(),
                 message.c_str());
  };
}

}  // namespace wearlock::obs
