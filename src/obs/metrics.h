// MetricsRegistry: counters, gauges, fixed-bucket histograms and raw
// sample series for the WearLock pipeline (the substrate behind the
// paper's Figs. 4-12 style per-stage measurements).
//
// Design: registration (name -> metric) is mutex-guarded and slow-path;
// observation is lock-free on std::atomic (Counter/Gauge/Histogram) so
// hot DSP loops can record without serializing. Series keeps exact raw
// samples (bounded) for bench-grade statistics and is mutex-guarded -
// it is meant for per-call timings, not per-sample loops.
//
// Metric names are dotted lowercase paths, "<layer>.<stage>.<what>[_unit]"
// e.g. "modem.demod.host_ms", "protocol.attempt.unlocked",
// "link.message_ms". See docs/observability.md for the full scheme.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sketch.h"

namespace wearlock::obs {

/// Monotonically increasing event count. Lock-free increments.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Fleet fold: counts add. Exact and order-insensitive.
  void Merge(const Counter& other) { Add(other.value()); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double value with lock-free set/add (CAS loop for add;
/// the value is stored bit-packed in a 64-bit atomic).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  void Add(double delta);
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  /// Fleet fold: "last written" has no cross-shard order, so merged
  /// gauges keep the maximum - exact and order-insensitive, and the
  /// useful reading for the high-water gauges the pipeline exports
  /// (workspace bytes, streaming capacity, thread counts).
  void Merge(const Gauge& other);

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Fixed-bucket histogram. Buckets are upper-bound inclusive: a value v
/// lands in the first bucket with v <= bounds[i]; values above the last
/// bound land in the implicit overflow bucket. Observation is lock-free.
class Histogram {
 public:
  /// @param bounds strictly ascending bucket upper bounds.
  /// @throws std::invalid_argument on empty or non-ascending bounds.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  double mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> BucketCounts() const;

  /// `n` bounds starting at `start`, each `factor` times the previous.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               std::size_t n);
  /// `n` bounds start, start+step, ...
  static std::vector<double> LinearBounds(double start, double step,
                                          std::size_t n);
  /// Default latency bounds: 0.1 ms .. ~6.9 s, x1.75 steps.
  static std::vector<double> DefaultLatencyBounds();

  /// Fleet fold: bucket-wise count addition plus sum accumulation.
  /// Bucket/count merging is exact; the sum is a double accumulate
  /// (see MetricsSnapshot for the exact cross-shard path).
  /// @throws std::invalid_argument when bounds differ (buckets would
  /// not align).
  void Merge(const Histogram& other);

 private:
  friend class MetricsRegistry;  // snapshot-merge fast path

  /// Raw fold used by MetricsRegistry::Merge: adds per-bucket counts
  /// (`buckets` must have bounds()+1 entries), `count` and `sum`.
  void MergeData(const std::vector<std::uint64_t>& buckets,
                 std::uint64_t count, double sum);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Exact raw samples in observation order, for bench-grade statistics
/// (medians, percentiles) where histogram approximation is not enough.
/// Bounded: observations past the cap are counted but not stored.
class Series {
 public:
  explicit Series(std::size_t cap = 1 << 16) : cap_(cap) {}

  void Observe(double v);
  std::vector<double> Values() const;
  std::uint64_t count() const;    ///< total observations, including dropped
  std::uint64_t dropped() const;  ///< observations past the cap
  void Clear();

  /// Fleet fold: append another shard's stored values (capped like
  /// Observe) while accounting its full observation count, so merged
  /// series keep an honest dropped() even when values fall off.
  void Merge(const std::vector<double>& values, std::uint64_t count);

 private:
  mutable std::mutex mu_;
  std::size_t cap_;
  std::vector<double> values_;
  std::uint64_t count_ = 0;
};

/// A detached, mergeable copy of a registry's state - the unit the
/// fleet pipeline ships between shards. Merge() is designed to be
/// order-insensitive: counters/buckets are integer adds, gauges fold
/// by max, per-source histogram sums accumulate through an ExactSum,
/// sketches merge exactly, and series concatenate as multisets
/// (WriteJson emits them in a canonical sorted order). So any merge
/// tree over the same set of per-shard snapshots - 1 shard or 8,
/// forward or reverse order - serializes byte-identically, provided
/// each shard's own contents are deterministic (per-task registries
/// under sim::ParallelExecutor are; see docs/parallelism.md).
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    /// bounds+1 entries; the authoritative count is their sum, read
    /// in one pass so a snapshot taken mid-hammer stays internally
    /// consistent (count == sum of buckets, always).
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    /// Exact fold over the (per-source rounded) double sums.
    ExactSum sum;
  };
  struct SeriesData {
    std::uint64_t count = 0;  ///< total observations incl. dropped
    std::vector<double> values;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, Sketch> sketches;
  std::map<std::string, SeriesData> series;

  /// Fold another snapshot in (see class comment for the semantics).
  /// @throws std::invalid_argument on histogram-bounds mismatch.
  void Merge(const MetricsSnapshot& other);

  /// Same JSON shape as MetricsRegistry::WriteJson plus a "sketches"
  /// section; series values are emitted sorted (canonical multiset
  /// order) so merge order never leaks into the bytes.
  void WriteJson(std::ostream& os) const;
};

/// Named metric store. Get* registers on first use and returns a
/// reference that stays valid for the registry's lifetime. Each metric
/// kind has its own namespace (a counter and a gauge may share a name,
/// though the naming scheme discourages it).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// First caller's bounds win; later calls with different bounds get
  /// the existing histogram.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});
  Series& GetSeries(const std::string& name);
  /// Mergeable quantile sketch (first caller's relative accuracy
  /// wins, like histogram bounds).
  Sketch& GetSketch(const std::string& name,
                    double relative_accuracy = Sketch::kDefaultAccuracy);

  /// Series values by name; empty vector when the series was never
  /// registered (lookup without registering).
  std::vector<double> SeriesValues(const std::string& name) const;

  /// Counter value by name without registering; 0 when absent. Lets
  /// const consumers (record building, assertions) read counts.
  std::uint64_t CounterValue(const std::string& name) const;

  /// Detached copy of every metric, safe to take while other threads
  /// observe (each histogram's bucket array is read in one pass and
  /// its count derived from it, so the invariant
  /// count == sum(buckets) holds even mid-Observe).
  MetricsSnapshot Snapshot() const;

  /// Fold a snapshot into this registry's live metrics - the shard
  /// merge hook sim::ParallelExecutor::MapWithMetrics builds on.
  /// Counters add, gauges fold by max, histogram buckets add (bounds
  /// must match; absent metrics are created), sketches merge,
  /// series append.
  void Merge(const MetricsSnapshot& snapshot);

  /// Snapshot every metric as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...},
  ///  "sketches":{...},"series":{...}}
  void WriteJson(std::ostream& os) const;

  /// Drop every registered metric. References handed out before a Clear
  /// are invalidated - benches only, between isolated measurement runs.
  void Clear();

  /// Process-wide default registry (used when no registry is installed
  /// via ScopedMetricsRegistry).
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Sketch>> sketches_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

/// The registry instrumented library code writes to: the innermost
/// ScopedMetricsRegistry on this thread, or Default() when none is
/// installed. Never null.
MetricsRegistry* CurrentMetrics();

/// RAII installer: routes this thread's instrumentation into `registry`
/// for the scope's lifetime (e.g. one UnlockSession attempt, or one
/// isolated bench measurement loop).
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace wearlock::obs
