#include "obs/trace.h"

#include <algorithm>
#include <utility>

#include "obs/json.h"

namespace wearlock::obs {
namespace {

thread_local Tracer* g_current_tracer = nullptr;

void WriteArgs(std::ostream& os, const SpanRecord& span) {
  os << "{";
  for (std::size_t i = 0; i < span.attrs.size(); ++i) {
    os << (i ? "," : "") << "\"" << JsonEscape(span.attrs[i].first)
       << "\":" << span.attrs[i].second;
  }
  os << "}";
}

}  // namespace

Tracer::Tracer(ClockFn now) : now_(std::move(now)) {}

std::size_t Tracer::BeginSpan(std::string name, std::string category) {
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return SpanRecord::kNoParent;
  }
  SpanRecord span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start_ms = Now();
  span.end_ms = span.start_ms;
  span.depth = static_cast<int>(stack_.size());
  span.parent = stack_.empty() ? SpanRecord::kNoParent : stack_.back();
  const std::size_t id = spans_.size();
  spans_.push_back(std::move(span));
  stack_.push_back(id);
  events_.push_back({true, id});
  return id;
}

void Tracer::EndSpan(std::size_t id) {
  if (id >= spans_.size() || spans_[id].finished) return;
  const auto it = std::find(stack_.begin(), stack_.end(), id);
  if (it == stack_.end()) return;
  const double now = Now();
  // Close children left open (out-of-order end) at the same timestamp,
  // innermost first so B/E events stay properly nested.
  while (!stack_.empty()) {
    const std::size_t top = stack_.back();
    stack_.pop_back();
    spans_[top].end_ms = now;
    spans_[top].finished = true;
    events_.push_back({false, top});
    if (top == id) break;
  }
}

void Tracer::Annotate(std::size_t id, const std::string& key,
                      std::string value) {
  if (id >= spans_.size()) return;
  // Built piecewise to dodge GCC 12's -Wrestrict false positive.
  std::string quoted(1, '"');
  quoted += JsonEscape(value);
  quoted += '"';
  spans_[id].attrs.emplace_back(key, std::move(quoted));
}

void Tracer::Annotate(std::size_t id, const std::string& key, double value) {
  if (id >= spans_.size()) return;
  spans_[id].attrs.emplace_back(key, JsonNumber(value));
}

void Tracer::Clear() {
  spans_.clear();
  stack_.clear();
  events_.clear();
  dropped_ = 0;
}

void Tracer::WriteJsonl(std::ostream& os) const {
  for (const SpanRecord& span : spans_) {
    os << "{\"name\":\"" << JsonEscape(span.name) << "\",\"cat\":\""
       << JsonEscape(span.category)
       << "\",\"start_ms\":" << JsonNumber(span.start_ms)
       << ",\"end_ms\":" << JsonNumber(span.end_ms)
       << ",\"depth\":" << span.depth << ",\"parent\":";
    if (span.parent == SpanRecord::kNoParent) {
      os << "null";
    } else {
      os << span.parent;
    }
    if (!span.finished) os << ",\"unfinished\":true";
    os << ",\"args\":";
    WriteArgs(os, span);
    os << "}\n";
  }
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const char* ph, const SpanRecord& span, bool with_args) {
    os << (first ? "" : ",") << "{\"ph\":\"" << ph << "\",\"name\":\""
       << JsonEscape(span.name) << "\",\"cat\":\"" << JsonEscape(span.category)
       << "\",\"ts\":"
       << JsonNumber((ph[0] == 'B' ? span.start_ms : span.end_ms) * 1000.0)
       << ",\"pid\":1,\"tid\":1";
    if (with_args) {
      os << ",\"args\":";
      WriteArgs(os, span);
    }
    os << "}";
    first = false;
  };
  for (const Event& event : events_) {
    const SpanRecord& span = spans_[event.span];
    if (event.begin) {
      emit("B", span, false);
    } else {
      emit("E", span, true);  // args collected by span end are complete
    }
  }
  // Spans still open at export time: close them so the JSON stays
  // loadable (trace viewers dislike dangling B events).
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    emit("E", spans_[*it], true);
  }
  os << "]}";
}

Tracer* CurrentTracer() { return g_current_tracer; }

ScopedTracer::ScopedTracer(Tracer* tracer) : previous_(g_current_tracer) {
  g_current_tracer = tracer;
}

ScopedTracer::~ScopedTracer() { g_current_tracer = previous_; }

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name, const char* category)
    : tracer_(tracer) {
  if (tracer_ != nullptr) id_ = tracer_->BeginSpan(name, category);
}

ScopedSpan::~ScopedSpan() { End(); }

void ScopedSpan::End() {
  if (tracer_ != nullptr && id_ != SpanRecord::kNoParent) {
    tracer_->EndSpan(id_);  // idempotent: a finished span stays finished
  }
}

void ScopedSpan::Attr(const std::string& key, const std::string& value) {
  if (tracer_ != nullptr && id_ != SpanRecord::kNoParent) {
    tracer_->Annotate(id_, key, value);
  }
}

void ScopedSpan::Attr(const std::string& key, double value) {
  if (tracer_ != nullptr && id_ != SpanRecord::kNoParent) {
    tracer_->Annotate(id_, key, value);
  }
}

}  // namespace wearlock::obs
