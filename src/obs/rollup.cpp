#include "obs/rollup.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

namespace wearlock::obs {

WilsonInterval WilsonScore(std::uint64_t successes, std::uint64_t trials,
                           double z) {
  WilsonInterval interval;
  if (trials == 0) return interval;  // vacuous {0, 0, 1}
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z / denom * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  interval.rate = p;
  interval.low = std::max(0.0, center - half);
  interval.high = std::min(1.0, center + half);
  return interval;
}

std::string DefaultCohortKey(const SessionRecord& record) {
  constexpr double kBin = 0.25;
  const double lo =
      std::floor(std::max(0.0, record.distance_m) / kBin) * kBin;
  char dist[40];
  std::snprintf(dist, sizeof(dist), "%.2f-%.2f", lo, lo + kBin);
  std::string key = "config=" + record.config + ";dist=" + dist +
                    ";env=" + record.environment +
                    ";faults=" + record.fault_spec;
  // The attack axis only appears when armed, so unattacked cohorts keep
  // their historical keys (the committed golden rollup pins them).
  if (!record.attack_spec.empty()) key += ";attack=" + record.attack_spec;
  // Same contract for the channel axis: clean-channel cohorts keep
  // their historical keys, impaired cells get their own cohorts.
  if (!record.impairment_spec.empty()) {
    key += ";chan=" + record.impairment_spec;
  }
  return key;
}

void TelemetrySink::Cohort::Merge(const Cohort& other) {
  sessions += other.sessions;
  genuine += other.genuine;
  impostor += other.impostor;
  genuine_unlocked += other.genuine_unlocked;
  false_accepts += other.false_accepts;
  for (const auto& [name, count] : other.outcomes) outcomes[name] += count;
  retries += other.retries;
  chase_decisions += other.chase_decisions;
  degrades += other.degrades;
  fault_events += other.fault_events;
  for (const auto& [name, sketch] : other.stages) {
    auto it = stages.find(name);
    if (it == stages.end()) {
      stages.emplace(name, sketch);
    } else {
      it->second.Merge(sketch);
    }
  }
}

TelemetrySink::TelemetrySink(CohortKeyFn keyer) : keyer_(std::move(keyer)) {}

void TelemetrySink::Ingest(const SessionRecord& record) {
  Cohort& cohort = cohorts_[keyer_(record)];
  cohort.sessions += 1;
  if (record.same_body) {
    cohort.genuine += 1;
    if (record.unlocked) cohort.genuine_unlocked += 1;
  } else {
    cohort.impostor += 1;
    if (record.unlocked || record.false_accept) cohort.false_accepts += 1;
  }
  cohort.outcomes[record.outcome] += 1;
  cohort.retries += record.retries;
  cohort.chase_decisions += record.chase_decisions;
  cohort.degrades += record.degrades;
  cohort.fault_events += record.fault_events;

  auto observe = [&cohort](const char* stage, double v) {
    auto it = cohort.stages.find(stage);
    if (it == cohort.stages.end()) {
      it = cohort.stages.emplace(stage, Sketch()).first;
    }
    it->second.Observe(v);
  };
  observe("total", record.total_ms);
  observe("phase1_audio", record.phase1_audio_ms);
  observe("phase1_comm", record.phase1_comm_ms);
  observe("phase1_compute", record.phase1_compute_ms);
  observe("phase2_audio", record.phase2_audio_ms);
  observe("phase2_comm", record.phase2_comm_ms);
  observe("phase2_compute", record.phase2_compute_ms);
  observe("pilot_snr_db", record.pilot_snr_db);
  observe("ebn0_db", record.ebn0_db);
  observe("token_ber", record.token_ber);
}

std::size_t TelemetrySink::IngestJsonl(const std::string& text,
                                       std::string* error) {
  std::size_t ingested = 0;
  std::size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string reason;
    const std::optional<SessionRecord> record =
        SessionRecord::FromJsonl(line, &reason);
    if (!record.has_value()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + reason;
      }
      return ingested;
    }
    Ingest(*record);
    ++ingested;
  }
  return ingested;
}

void TelemetrySink::Merge(const TelemetrySink& other) {
  for (const auto& [key, cohort] : other.cohorts_) {
    auto it = cohorts_.find(key);
    if (it == cohorts_.end()) {
      cohorts_.emplace(key, cohort);
    } else {
      it->second.Merge(cohort);
    }
  }
}

void TelemetrySink::WriteJson(std::ostream& os) const {
  // Built piecewise: the `"\"" + JsonEscape(s) + "\""` chain trips
  // GCC 12's -Wrestrict false positive at -O2.
  auto str = [](const std::string& s) {
    std::string quoted(1, '"');
    quoted += JsonEscape(s);
    quoted += '"';
    return quoted;
  };
  auto interval = [&os](const char* name, const WilsonInterval& w) {
    os << "\"" << name << "\":{\"rate\":" << JsonNumber(w.rate)
       << ",\"low\":" << JsonNumber(w.low)
       << ",\"high\":" << JsonNumber(w.high) << "}";
  };
  os << "{\"schema\":" << str(kRollupSchema) << ",\"cohorts\":{";
  bool first_cohort = true;
  for (const auto& [key, cohort] : cohorts_) {
    os << (first_cohort ? "" : ",") << str(key) << ":{"
       << "\"sessions\":" << cohort.sessions
       << ",\"genuine\":" << cohort.genuine
       << ",\"impostor\":" << cohort.impostor
       << ",\"genuine_unlocked\":" << cohort.genuine_unlocked
       << ",\"false_accepts\":" << cohort.false_accepts << ",\"outcomes\":{";
    bool first = true;
    for (const auto& [name, count] : cohort.outcomes) {
      os << (first ? "" : ",") << str(name) << ":" << count;
      first = false;
    }
    os << "},\"retries\":" << cohort.retries
       << ",\"chase_decisions\":" << cohort.chase_decisions
       << ",\"degrades\":" << cohort.degrades
       << ",\"fault_events\":" << cohort.fault_events << ",";
    interval("unlock_rate", cohort.UnlockRate());
    os << ",";
    interval("false_accept_rate", cohort.FalseAcceptRate());
    os << ",\"stages\":{";
    first = true;
    for (const auto& [name, sketch] : cohort.stages) {
      os << (first ? "" : ",") << str(name) << ":{\"sketch\":";
      sketch.WriteJson(os);
      os << ",\"p50\":" << JsonNumber(sketch.Quantile(0.50))
         << ",\"p90\":" << JsonNumber(sketch.Quantile(0.90))
         << ",\"p99\":" << JsonNumber(sketch.Quantile(0.99)) << "}";
      first = false;
    }
    os << "}}";
    first_cohort = false;
  }
  os << "}}";
}

bool TelemetrySink::MergeJson(const JsonValue& v, std::string* error) {
  auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!v.is_object()) return fail("rollup is not a JSON object");
  if (const JsonValue* schema = v.Find("schema");
      schema == nullptr || schema->StringOr("") != kRollupSchema) {
    return fail("missing or unsupported rollup schema");
  }
  const JsonValue* cohorts = v.Find("cohorts");
  if (cohorts == nullptr || !cohorts->is_object()) {
    return fail("rollup has no cohorts object");
  }
  auto count = [](const JsonValue& c, const char* key) {
    const JsonValue* f = c.Find(key);
    return static_cast<std::uint64_t>(f != nullptr ? f->NumberOr(0.0) : 0.0);
  };
  for (const auto& [key, c] : cohorts->object) {
    if (!c.is_object()) return fail("cohort " + key + " is not an object");
    Cohort parsed;
    parsed.sessions = count(c, "sessions");
    parsed.genuine = count(c, "genuine");
    parsed.impostor = count(c, "impostor");
    parsed.genuine_unlocked = count(c, "genuine_unlocked");
    parsed.false_accepts = count(c, "false_accepts");
    if (const JsonValue* outcomes = c.Find("outcomes");
        outcomes != nullptr && outcomes->is_object()) {
      for (const auto& [name, n] : outcomes->object) {
        parsed.outcomes[name] +=
            static_cast<std::uint64_t>(n.NumberOr(0.0));
      }
    }
    parsed.retries = static_cast<std::int64_t>(count(c, "retries"));
    parsed.chase_decisions =
        static_cast<std::int64_t>(count(c, "chase_decisions"));
    parsed.degrades = static_cast<std::int64_t>(count(c, "degrades"));
    parsed.fault_events = static_cast<std::int64_t>(count(c, "fault_events"));
    if (const JsonValue* stages = c.Find("stages");
        stages != nullptr && stages->is_object()) {
      for (const auto& [name, stage] : stages->object) {
        const JsonValue* sk = stage.Find("sketch");
        if (sk == nullptr) {
          return fail("cohort " + key + " stage " + name + " has no sketch");
        }
        std::string reason;
        std::optional<Sketch> sketch = Sketch::FromJson(*sk, &reason);
        if (!sketch.has_value()) {
          return fail("cohort " + key + " stage " + name + ": " + reason);
        }
        parsed.stages.emplace(name, std::move(*sketch));
      }
    }
    auto it = cohorts_.find(key);
    if (it == cohorts_.end()) {
      cohorts_.emplace(key, std::move(parsed));
    } else {
      it->second.Merge(parsed);
    }
  }
  return true;
}

}  // namespace wearlock::obs
