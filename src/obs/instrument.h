// Instrumentation macros - the only obs API that hot library code
// should touch. With WEARLOCK_OBS_ENABLED=0 (CMake -DWEARLOCK_OBS=OFF)
// every macro compiles to nothing, so disabled overhead is zero; with
// it on, spans are a null-check when no tracer is installed and metric
// observations are lock-free atomics.
//
//   WL_SPAN("modem.demod");            // RAII span, anonymous
//   WL_SPAN_V(span, "phase2.demod");   // named variable, for attrs
//   WL_SPAN_ATTR(span, "snr_db", snr);
//   WL_SPAN_END(span);                 // close early, before scope exit
//   WL_COUNT("modem.demod.calls");
//   WL_COUNT_N("link.bytes", n);
//   WL_GAUGE_SET("modem.plan.data_bins", bins);
//   WL_HIST("modem.pilot_snr_db", snr);
//   WL_SERIES("protocol.unlock.total_ms", ms);
//   WL_TIMED_SERIES("modem.demod.host_ms");  // RAII host-time sample
#pragma once

#ifndef WEARLOCK_OBS_ENABLED
#define WEARLOCK_OBS_ENABLED 1
#endif

#if WEARLOCK_OBS_ENABLED

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wearlock::obs {

/// Host wall-clock stopwatch (steady_clock). Host time is
/// nondeterministic, so it feeds metrics (series/histograms), never
/// span timestamps - those stay on the virtual clock. This is the one
/// sanctioned wall-clock reader besides sim::TimeHostMs, hence the
/// determinism-rule suppressions.
class HostTimer {
 public:
  HostTimer() : start_(std::chrono::steady_clock::now()) {}  // NOLINT(determinism)
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)  // NOLINT(determinism)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;  // NOLINT(determinism)
};

/// RAII: observes the scope's host-time duration into a Series on the
/// current registry at destruction (so early returns are measured too).
class ScopedSeriesTimer {
 public:
  explicit ScopedSeriesTimer(const char* name) : name_(name) {}
  ~ScopedSeriesTimer() {
    CurrentMetrics()->GetSeries(name_).Observe(timer_.ElapsedMs());
  }
  ScopedSeriesTimer(const ScopedSeriesTimer&) = delete;
  ScopedSeriesTimer& operator=(const ScopedSeriesTimer&) = delete;

 private:
  const char* name_;
  HostTimer timer_;
};

}  // namespace wearlock::obs

#define WL_OBS_CONCAT_INNER(a, b) a##b
#define WL_OBS_CONCAT(a, b) WL_OBS_CONCAT_INNER(a, b)

#define WL_SPAN(name)                                         \
  ::wearlock::obs::ScopedSpan WL_OBS_CONCAT(wl_span_, __LINE__)( \
      ::wearlock::obs::CurrentTracer(), name)
#define WL_SPAN_V(var, name) \
  ::wearlock::obs::ScopedSpan var(::wearlock::obs::CurrentTracer(), name)
#define WL_SPAN_ATTR(var, key, value) var.Attr(key, value)
#define WL_SPAN_END(var) var.End()
#define WL_COUNT(name) \
  ::wearlock::obs::CurrentMetrics()->GetCounter(name).Add()
#define WL_COUNT_N(name, n) \
  ::wearlock::obs::CurrentMetrics()->GetCounter(name).Add(n)
#define WL_GAUGE_SET(name, v) \
  ::wearlock::obs::CurrentMetrics()->GetGauge(name).Set(v)
#define WL_HIST(name, v) \
  ::wearlock::obs::CurrentMetrics()->GetHistogram(name).Observe(v)
#define WL_HIST_BOUNDS(name, bounds, v) \
  ::wearlock::obs::CurrentMetrics()->GetHistogram(name, bounds).Observe(v)
#define WL_SERIES(name, v) \
  ::wearlock::obs::CurrentMetrics()->GetSeries(name).Observe(v)
#define WL_TIMED_SERIES(name)                  \
  ::wearlock::obs::ScopedSeriesTimer WL_OBS_CONCAT(wl_timer_, __LINE__)( \
      name)

#else  // WEARLOCK_OBS_ENABLED

#define WL_SPAN(name) \
  do {                \
  } while (false)
#define WL_SPAN_V(var, name) \
  do {                       \
  } while (false)
#define WL_SPAN_ATTR(var, key, value) \
  do {                                \
  } while (false)
#define WL_SPAN_END(var) \
  do {                   \
  } while (false)
#define WL_COUNT(name) \
  do {                 \
  } while (false)
#define WL_COUNT_N(name, n) \
  do {                      \
  } while (false)
#define WL_GAUGE_SET(name, v) \
  do {                        \
  } while (false)
#define WL_HIST(name, v) \
  do {                   \
  } while (false)
#define WL_HIST_BOUNDS(name, bounds, v) \
  do {                                  \
  } while (false)
#define WL_SERIES(name, v) \
  do {                     \
  } while (false)
#define WL_TIMED_SERIES(name) \
  do {                        \
  } while (false)

#endif  // WEARLOCK_OBS_ENABLED
