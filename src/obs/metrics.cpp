#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "obs/json.h"

namespace wearlock::obs {
namespace {

thread_local MetricsRegistry* g_current_metrics = nullptr;

/// Atomic-double accumulate via CAS (std::atomic<double>::fetch_add is
/// C++20 but keeping the storage uint64 gives one code path for init,
/// load and add).
void AtomicAddDouble(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      expected, std::bit_cast<std::uint64_t>(
                    std::bit_cast<double>(expected) + delta),
      std::memory_order_relaxed)) {
  }
}

template <typename T, typename... Args>
T& GetOrCreate(std::map<std::string, std::unique_ptr<T>>& store,
               const std::string& name, Args&&... args) {
  auto it = store.find(name);
  if (it == store.end()) {
    it = store.emplace(name, std::make_unique<T>(std::forward<Args>(args)...))
             .first;
  }
  return *it->second;
}

}  // namespace

void Gauge::Add(double delta) { AtomicAddDouble(bits_, delta); }

void Gauge::Merge(const Gauge& other) {
  Set(std::max(value(), other.value()));
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must strictly ascend");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_bits_, v);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 std::size_t n) {
  if (start <= 0.0 || factor <= 1.0 || n == 0) {
    throw std::invalid_argument("ExponentialBounds: start>0, factor>1, n>0");
  }
  std::vector<double> bounds(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i, v *= factor) bounds[i] = v;
  return bounds;
}

std::vector<double> Histogram::LinearBounds(double start, double step,
                                            std::size_t n) {
  if (step <= 0.0 || n == 0) {
    throw std::invalid_argument("LinearBounds: step>0, n>0");
  }
  std::vector<double> bounds(n);
  for (std::size_t i = 0; i < n; ++i) {
    bounds[i] = start + static_cast<double>(i) * step;
  }
  return bounds;
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return ExponentialBounds(0.1, 1.75, 20);
}

void Histogram::Merge(const Histogram& other) {
  if (other.bounds_ != bounds_) {
    throw std::invalid_argument("Histogram::Merge: bounds differ");
  }
  MergeData(other.BucketCounts(), other.count(), other.sum());
}

void Histogram::MergeData(const std::vector<std::uint64_t>& buckets,
                          std::uint64_t count, double sum) {
  if (buckets.size() != bounds_.size() + 1) {
    throw std::invalid_argument("Histogram::Merge: bucket layout mismatch");
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  AtomicAddDouble(sum_bits_, sum);
}

void Series::Observe(double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  if (values_.size() < cap_) values_.push_back(v);
}

std::vector<double> Series::Values() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

std::uint64_t Series::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::uint64_t Series::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ - values_.size();
}

void Series::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
  count_ = 0;
}

void Series::Merge(const std::vector<double>& values, std::uint64_t count) {
  const std::lock_guard<std::mutex> lock(mu_);
  count_ += count;
  for (const double v : values) {
    if (values_.size() >= cap_) break;
    values_.push_back(v);
  }
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(counters_, name);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(gauges_, name);
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBounds();
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

Series& MetricsRegistry::GetSeries(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(series_, name);
}

Sketch& MetricsRegistry::GetSketch(const std::string& name,
                                   double relative_accuracy) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = sketches_.find(name);
  if (it == sketches_.end()) {
    it = sketches_.emplace(name, std::make_unique<Sketch>(relative_accuracy))
             .first;
  }
  return *it->second;
}

std::uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

std::vector<double> MetricsRegistry::SeriesValues(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  return it != series_.end() ? it->second->Values() : std::vector<double>{};
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = hist->bounds();
    data.buckets = hist->BucketCounts();
    // The count is derived from the one-pass bucket read, not the
    // separate count_ atomic: an Observe racing the snapshot bumps
    // bucket and count in two steps, and reading both would let
    // count != sum(buckets) escape into serialized output.
    for (const std::uint64_t b : data.buckets) data.count += b;
    data.sum.Add(hist->sum());
    snap.histograms.emplace(name, std::move(data));
  }
  for (const auto& [name, sketch] : sketches_) {
    snap.sketches.emplace(name, *sketch);  // copy ctor locks the source
  }
  for (const auto& [name, s] : series_) {
    MetricsSnapshot::SeriesData data;
    data.values = s->Values();  // read values first so count >= size
    data.count = s->count();
    snap.series.emplace(name, std::move(data));
  }
  return snap;
}

void MetricsRegistry::Merge(const MetricsSnapshot& snapshot) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : snapshot.counters) {
    GetOrCreate(counters_, name).Add(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      // Fresh gauge: take the snapshot value as-is; max against the
      // default-constructed 0.0 would clip negative readings.
      GetOrCreate(gauges_, name).Set(value);
    } else {
      it->second->Set(std::max(it->second->value(), value));
    }
  }
  for (const auto& [name, data] : snapshot.histograms) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, std::make_unique<Histogram>(data.bounds))
               .first;
    } else if (it->second->bounds() != data.bounds) {
      throw std::invalid_argument(
          "MetricsRegistry::Merge: histogram bounds differ for " + name);
    }
    it->second->MergeData(data.buckets, data.count, data.sum.Value());
  }
  for (const auto& [name, sketch] : snapshot.sketches) {
    auto it = sketches_.find(name);
    if (it == sketches_.end()) {
      it = sketches_
               .emplace(name,
                        std::make_unique<Sketch>(sketch.relative_accuracy()))
               .first;
    }
    it->second->Merge(sketch);
  }
  for (const auto& [name, data] : snapshot.series) {
    GetOrCreate(series_, name).Merge(data.values, data.count);
  }
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) {
    const auto [it, inserted] = gauges.emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [name, data] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, data);
      continue;
    }
    HistogramData& mine = it->second;
    if (mine.bounds != data.bounds) {
      throw std::invalid_argument(
          "MetricsSnapshot::Merge: histogram bounds differ for " + name);
    }
    for (std::size_t i = 0; i < mine.buckets.size(); ++i) {
      mine.buckets[i] += data.buckets[i];
    }
    mine.count += data.count;
    mine.sum.Merge(data.sum);
  }
  for (const auto& [name, sketch] : other.sketches) {
    auto it = sketches.find(name);
    if (it == sketches.end()) {
      sketches.emplace(name, sketch);
    } else {
      it->second.Merge(sketch);
    }
  }
  for (const auto& [name, data] : other.series) {
    SeriesData& mine = series[name];
    mine.count += data.count;
    mine.values.insert(mine.values.end(), data.values.begin(),
                       data.values.end());
  }
}

void MetricsSnapshot::WriteJson(std::ostream& os) const {
  auto key = [](const std::string& name) {
    // Built piecewise: a `"x" + str + "y"` concatenation chain trips
    // GCC 12's -Wrestrict false positive at -O2 under -Werror.
    std::string k(1, '"');
    k += JsonEscape(name);
    k += "\":";
    return k;
  };
  // IEEE-754 total order: a canonical sort that distinguishes -0.0
  // from 0.0 and places NaNs deterministically, so merged series
  // bytes never depend on concatenation order.
  auto total_order_key = [](double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    return (bits & (1ULL << 63)) ? ~bits : bits | (1ULL << 63);
  };

  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ",") << key(name)
       << JsonNumber(static_cast<double>(value));
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "" : ",") << key(name) << JsonNumber(value);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, data] : histograms) {
    os << (first ? "" : ",") << key(name) << "{\"count\":"
       << JsonNumber(static_cast<double>(data.count))
       << ",\"sum\":" << JsonNumber(data.sum.Value()) << ",\"bounds\":[";
    for (std::size_t i = 0; i < data.bounds.size(); ++i) {
      os << (i ? "," : "") << JsonNumber(data.bounds[i]);
    }
    os << "],\"buckets\":[";
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      os << (i ? "," : "")
         << JsonNumber(static_cast<double>(data.buckets[i]));
    }
    os << "]}";
    first = false;
  }
  os << "},\"sketches\":{";
  first = true;
  for (const auto& [name, sketch] : sketches) {
    os << (first ? "" : ",") << key(name);
    sketch.WriteJson(os);
    first = false;
  }
  os << "},\"series\":{";
  first = true;
  for (const auto& [name, data] : series) {
    std::vector<double> sorted = data.values;
    std::sort(sorted.begin(), sorted.end(),
              [&](double a, double b) {
                return total_order_key(a) < total_order_key(b);
              });
    os << (first ? "" : ",") << key(name) << "{\"count\":"
       << JsonNumber(static_cast<double>(data.count)) << ",\"values\":[";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      os << (i ? "," : "") << JsonNumber(sorted[i]);
    }
    os << "]}";
    first = false;
  }
  os << "}}";
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  // Serialize from a detached snapshot: a single consistent read of
  // every metric (histogram count == sum of buckets even while other
  // threads observe), plus canonical series ordering.
  Snapshot().WriteJson(os);
}

void MetricsRegistry::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  sketches_.clear();
  series_.clear();
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: instrumented code may observe during static
  // destruction, so the default registry must never be destroyed.
  static MetricsRegistry* const registry =
      new MetricsRegistry();  // NOLINT(banned-api): intentional leak
  return *registry;
}

MetricsRegistry* CurrentMetrics() {
  return g_current_metrics != nullptr ? g_current_metrics
                                      : &MetricsRegistry::Default();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry* registry)
    : previous_(g_current_metrics) {
  g_current_metrics = registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  g_current_metrics = previous_;
}

}  // namespace wearlock::obs
