#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "obs/json.h"

namespace wearlock::obs {
namespace {

thread_local MetricsRegistry* g_current_metrics = nullptr;

/// Atomic-double accumulate via CAS (std::atomic<double>::fetch_add is
/// C++20 but keeping the storage uint64 gives one code path for init,
/// load and add).
void AtomicAddDouble(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      expected, std::bit_cast<std::uint64_t>(
                    std::bit_cast<double>(expected) + delta),
      std::memory_order_relaxed)) {
  }
}

template <typename T, typename... Args>
T& GetOrCreate(std::map<std::string, std::unique_ptr<T>>& store,
               const std::string& name, Args&&... args) {
  auto it = store.find(name);
  if (it == store.end()) {
    it = store.emplace(name, std::make_unique<T>(std::forward<Args>(args)...))
             .first;
  }
  return *it->second;
}

}  // namespace

void Gauge::Add(double delta) { AtomicAddDouble(bits_, delta); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must strictly ascend");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_bits_, v);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 std::size_t n) {
  if (start <= 0.0 || factor <= 1.0 || n == 0) {
    throw std::invalid_argument("ExponentialBounds: start>0, factor>1, n>0");
  }
  std::vector<double> bounds(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i, v *= factor) bounds[i] = v;
  return bounds;
}

std::vector<double> Histogram::LinearBounds(double start, double step,
                                            std::size_t n) {
  if (step <= 0.0 || n == 0) {
    throw std::invalid_argument("LinearBounds: step>0, n>0");
  }
  std::vector<double> bounds(n);
  for (std::size_t i = 0; i < n; ++i) {
    bounds[i] = start + static_cast<double>(i) * step;
  }
  return bounds;
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return ExponentialBounds(0.1, 1.75, 20);
}

void Series::Observe(double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  if (values_.size() < cap_) values_.push_back(v);
}

std::vector<double> Series::Values() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

std::uint64_t Series::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::uint64_t Series::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ - values_.size();
}

void Series::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
  count_ = 0;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(counters_, name);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(gauges_, name);
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBounds();
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

Series& MetricsRegistry::GetSeries(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(series_, name);
}

std::vector<double> MetricsRegistry::SeriesValues(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  return it != series_.end() ? it->second->Values() : std::vector<double>{};
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  auto key = [](const std::string& name) {
    return "\"" + JsonEscape(name) + "\":";
  };

  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "" : ",") << key(name)
       << JsonNumber(static_cast<double>(counter->value()));
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "" : ",") << key(name) << JsonNumber(gauge->value());
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    os << (first ? "" : ",") << key(name) << "{\"count\":"
       << JsonNumber(static_cast<double>(hist->count()))
       << ",\"sum\":" << JsonNumber(hist->sum()) << ",\"bounds\":[";
    const auto& bounds = hist->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      os << (i ? "," : "") << JsonNumber(bounds[i]);
    }
    os << "],\"buckets\":[";
    const auto counts = hist->BucketCounts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      os << (i ? "," : "") << JsonNumber(static_cast<double>(counts[i]));
    }
    os << "]}";
    first = false;
  }
  os << "},\"series\":{";
  first = true;
  for (const auto& [name, s] : series_) {
    os << (first ? "" : ",") << key(name) << "{\"count\":"
       << JsonNumber(static_cast<double>(s->count())) << ",\"values\":[";
    const auto values = s->Values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      os << (i ? "," : "") << JsonNumber(values[i]);
    }
    os << "]}";
    first = false;
  }
  os << "}}";
}

void MetricsRegistry::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: instrumented code may observe during static
  // destruction, so the default registry must never be destroyed.
  static MetricsRegistry* const registry =
      new MetricsRegistry();  // NOLINT(banned-api): intentional leak
  return *registry;
}

MetricsRegistry* CurrentMetrics() {
  return g_current_metrics != nullptr ? g_current_metrics
                                      : &MetricsRegistry::Default();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry* registry)
    : previous_(g_current_metrics) {
  g_current_metrics = registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  g_current_metrics = previous_;
}

}  // namespace wearlock::obs
