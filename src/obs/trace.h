// Hierarchical span tracing for a WearLock unlock attempt.
//
// Spans are timestamped from a caller-supplied clock - in the simulator
// that is sim::VirtualClock, so timelines live on modeled time, not
// wall time. Same-seed sessions replay the same span structure (names,
// order, nesting); durations can still jitter where the simulation
// advances virtual time by host-measured compute. Exporters:
//   * JSONL: one span object per line (easy to grep/join)
//   * Chrome trace_event JSON: open in chrome://tracing or
//     https://ui.perfetto.dev (B/E duration events, one track)
//
// Span names follow the same dotted scheme as metrics:
// "phase1.probe_tx", "modem.sync.detect", "session.verdict", ...
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace wearlock::obs {

/// Returns "now" in milliseconds. Bind this to sim::VirtualClock::now
/// for deterministic traces, or to a host steady clock in tools that
/// have no virtual time.
using ClockFn = std::function<double()>;

struct SpanRecord {
  std::string name;
  std::string category;
  double start_ms = 0.0;
  double end_ms = 0.0;
  int depth = 0;  ///< 0 = root
  /// Index of the parent span in Tracer::spans(), or kNoParent.
  std::size_t parent = kNoParent;
  bool finished = false;
  /// Key/value annotations (values pre-stringified; numeric values keep
  /// their JSON form via the exporter).
  std::vector<std::pair<std::string, std::string>> attrs;

  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
};

class Tracer {
 public:
  /// Without a clock every event stamps 0.0 until BindClock is called.
  explicit Tracer(ClockFn now = {});

  void BindClock(ClockFn now) { now_ = std::move(now); }

  /// Open a span; returns its id (index into spans()). Spans nest by
  /// call order: the new span's parent is the innermost open span.
  std::size_t BeginSpan(std::string name, std::string category = "wearlock");

  /// Close a span. Tolerates out-of-order closes by unwinding the open
  /// stack down to `id` (children left open are closed at the same
  /// timestamp).
  void EndSpan(std::size_t id);

  /// Attach a key/value annotation to an open or closed span.
  void Annotate(std::size_t id, const std::string& key, std::string value);
  void Annotate(std::size_t id, const std::string& key, double value);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  /// Number of currently open spans.
  std::size_t open_depth() const { return stack_.size(); }
  /// Spans dropped because the cap was reached.
  std::uint64_t dropped() const { return dropped_; }

  void Clear();

  /// One JSON object per line:
  /// {"name":..,"cat":..,"start_ms":..,"end_ms":..,"depth":..,"parent":..,
  ///  "args":{..}}
  void WriteJsonl(std::ostream& os) const;

  /// Chrome trace_event format: {"traceEvents":[{"ph":"B"/"E",...},...]}.
  /// Timestamps are microseconds of virtual time.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  /// Begin/end emission order, kept so the Chrome exporter can replay
  /// B/E events exactly as they happened (correct nesting even for
  /// zero-duration spans).
  struct Event {
    bool begin;
    std::size_t span;
  };

  double Now() const { return now_ ? now_() : 0.0; }

  ClockFn now_;
  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> stack_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
  /// Runaway-loop backstop; a full unlock attempt is a few dozen spans.
  static constexpr std::size_t kMaxSpans = 1 << 20;
};

/// The tracer instrumented library code writes to, or nullptr when no
/// ScopedTracer is installed on this thread (spans become no-ops).
Tracer* CurrentTracer();

/// RAII installer, mirroring ScopedMetricsRegistry.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
};

/// RAII span: opens on construction, closes on destruction. Null-tracer
/// safe (every member is a no-op), so instrumentation sites don't need
/// to check whether tracing is active.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name,
             const char* category = "wearlock");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Attr(const std::string& key, const std::string& value);
  void Attr(const std::string& key, double value);

  /// Close the span before scope exit (idempotent; the destructor then
  /// does nothing). Lets a stage that declares outer-scope results end
  /// its span without an artificial block.
  void End();

  Tracer* tracer() const { return tracer_; }
  std::size_t id() const { return id_; }

 private:
  Tracer* tracer_;
  std::size_t id_ = SpanRecord::kNoParent;
};

}  // namespace wearlock::obs
